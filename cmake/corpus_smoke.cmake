# ctest smoke: drive the fleet corpus CLI end to end — a small sharded
# build interrupted via --limit-shards, a resume run that completes the
# fleet, `corpus info` over the shard directory, a streamed CSV merge, and
# the streamed-vs-monolithic training parity assert from the corpus test
# binary.  Also pins the CLI contract: unknown subcommands exit 2.
#
# Invoked as:
#   cmake -DHMDCTL=<path-to-hmdctl> -DCORPUS_TESTS=<path-to-drlhmd_corpus_tests>
#         -P corpus_smoke.cmake
foreach(var IN ITEMS HMDCTL CORPUS_TESTS)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "corpus_smoke: pass -D${var}=...")
  endif()
endforeach()

set(dir "${CMAKE_CURRENT_BINARY_DIR}/corpus_smoke_shards")
file(REMOVE_RECURSE "${dir}")
set(build_args --benign 6 --malware 6 --windows 2 --shards 4
    --profiles testbed-i7,embedded-small --out "${dir}")

# 1. Interrupted build: only 2 of 4 shards may be written.
execute_process(
  COMMAND ${HMDCTL} corpus build ${build_args} --limit-shards 2
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "interrupted corpus build exited ${status}:\n${err}")
endif()
string(FIND "${out}" "[INCOMPLETE]" found)
if(found EQUAL -1)
  message(FATAL_ERROR "limit-shards build not reported incomplete:\n${out}")
endif()
string(FIND "${out}" "2/4 on disk (2 built, 0 resumed)" found)
if(found EQUAL -1)
  message(FATAL_ERROR "unexpected interrupted-build accounting:\n${out}")
endif()

# 2. Resume: the surviving shards are kept, the missing ones simulated.
execute_process(
  COMMAND ${HMDCTL} corpus build ${build_args}
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "resume corpus build exited ${status}:\n${err}")
endif()
string(FIND "${out}" "4/4 on disk (2 built, 2 resumed)" found)
if(found EQUAL -1)
  message(FATAL_ERROR "resume did not keep the finished shards:\n${out}")
endif()
string(FIND "${out}" "[INCOMPLETE]" found)
if(NOT found EQUAL -1)
  message(FATAL_ERROR "resumed build still incomplete:\n${out}")
endif()

# 3. Shard table: every CRC must check out.
execute_process(
  COMMAND ${HMDCTL} corpus info "${dir}"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "corpus info exited ${status}:\n${out}${err}")
endif()
string(FIND "${out}" "4 shards, 24 valid rows" found)
if(found EQUAL -1)
  message(FATAL_ERROR "corpus info totals wrong:\n${out}")
endif()

# 4. Streamed merge to CSV (open() re-verifies every shard CRC).
execute_process(
  COMMAND ${HMDCTL} corpus merge "${dir}" --out
          "${CMAKE_CURRENT_BINARY_DIR}/corpus_smoke_merged.csv"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "corpus merge exited ${status}:\n${out}${err}")
endif()
if(NOT EXISTS "${CMAKE_CURRENT_BINARY_DIR}/corpus_smoke_merged.csv")
  message(FATAL_ERROR "corpus merge wrote no CSV")
endif()

# 5. CLI contract: unknown subcommand exits 2.
execute_process(
  COMMAND ${HMDCTL} corpus frobnicate
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE status)
if(NOT status EQUAL 2)
  message(FATAL_ERROR
    "unknown corpus subcommand exited ${status}, expected 2:\n${out}${err}")
endif()

# 6. Streamed training parity over a multi-shard directory: every detector
# trained through fit_stream serializes byte-identically to fit().
execute_process(
  COMMAND ${CORPUS_TESTS}
          --gtest_filter=StreamingParityTest.EveryDetectorTrainsByteIdentically
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "streaming parity assert failed:\n${out}${err}")
endif()

file(REMOVE_RECURSE "${dir}")
message(STATUS "corpus smoke ok")
