# ctest smoke: run `hmdctl telemetry` on a small corpus and validate that
# the emitted document is real JSON with the expected top-level structure.
#
# Invoked as:
#   cmake -DHMDCTL=<path-to-hmdctl> -P telemetry_smoke.cmake
if(NOT DEFINED HMDCTL)
  message(FATAL_ERROR "telemetry_smoke: pass -DHMDCTL=<path to hmdctl>")
endif()

execute_process(
  COMMAND ${HMDCTL} telemetry --benign 40 --malware 40 --windows 3 --seed 7
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "hmdctl telemetry exited ${status}:\n${err}")
endif()
string(STRIP "${out}" out)
if(out STREQUAL "")
  message(FATAL_ERROR "hmdctl telemetry produced no output")
endif()

if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  # string(JSON) both parses the document and checks the expected keys.
  foreach(key IN ITEMS config stream trace metrics)
    string(JSON section ERROR_VARIABLE json_err GET "${out}" ${key})
    if(NOT json_err STREQUAL "NOTFOUND")
      message(FATAL_ERROR
        "telemetry JSON missing or unparsable key '${key}': ${json_err}")
    endif()
  endforeach()
  # All eight pipeline phases must appear as spans in the trace.
  string(JSON spans GET "${out}" trace spans)
  foreach(phase IN ITEMS
      pipeline.acquire pipeline.engineer pipeline.baseline pipeline.attack
      pipeline.predict pipeline.defend pipeline.control pipeline.protect)
    string(FIND "${spans}" "${phase}" found)
    if(found EQUAL -1)
      message(FATAL_ERROR "telemetry trace missing phase span '${phase}'")
    endif()
  endforeach()
  # Per-stage latency histograms with streaming quantiles.
  string(JSON metrics GET "${out}" metrics)
  foreach(needle IN ITEMS
      drlhmd.runtime.stage_latency_us "\"p50\"" "\"p95\"" "\"p99\""
      drlhmd.runtime.verdicts drlhmd.pipeline.phase_seconds
      drlhmd.serve.queue_depth drlhmd.serve.dropped_total
      drlhmd.serve.enqueued drlhmd.serve.e2e_us)
    string(FIND "${metrics}" "${needle}" found)
    if(found EQUAL -1)
      message(FATAL_ERROR "telemetry metrics missing '${needle}'")
    endif()
  endforeach()
else()
  # Pre-3.19 CMake cannot parse JSON; settle for a shape check.
  string(FIND "${out}" "\"metrics\"" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "telemetry output lacks a metrics section")
  endif()
endif()

message(STATUS "telemetry smoke ok (${status})")
