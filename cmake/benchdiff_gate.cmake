# ctest perf gate: run a bench binary, take its BENCH_*.json (last stdout
# line), and diff it against the checked-in baseline with tools/benchdiff.
# Fails when a compared metric regresses past TOLERANCE.
#
# Invoked as:
#   cmake -DBENCH=<bench_binary> -DBENCHDIFF=<benchdiff>
#         -DBASELINE=<BENCH_x.json> [-DMETRIC=<substr>] [-DTOLERANCE=<T>]
#         [-DBENCH_ARGS=<semicolon-list>] -P benchdiff_gate.cmake
foreach(var IN ITEMS BENCH BENCHDIFF BASELINE)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "benchdiff_gate: pass -D${var}=...")
  endif()
endforeach()
if(NOT DEFINED METRIC)
  # Default gate: the dimensionless speedup ratios (absolute ns/sample
  # shifts with the host).
  set(METRIC speedup)
endif()
if(NOT DEFINED TOLERANCE)
  # Speedup ratios are dimensionless but still noisy on a loaded or
  # differently-shaped host; the gate exists to catch real collapses
  # (pipeline falls back to the row path, vectorization lost), not 10%
  # jitter.
  set(TOLERANCE 0.75)
endif()
if(NOT DEFINED BENCH_ARGS)
  set(BENCH_ARGS "")
endif()

execute_process(
  COMMAND ${BENCH} ${BENCH_ARGS}
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "bench exited ${status}:\n${err}")
endif()

# The bench prints tables first and the JSON document as the last line.
string(STRIP "${out}" out)
string(REGEX REPLACE ".*\n" "" candidate_json "${out}")
if(candidate_json STREQUAL "")
  message(FATAL_ERROR "bench produced no JSON document")
endif()
set(candidate_file "${CMAKE_CURRENT_BINARY_DIR}/benchdiff_candidate.json")
file(WRITE "${candidate_file}" "${candidate_json}\n")

execute_process(
  COMMAND ${BENCHDIFF} ${BASELINE} ${candidate_file}
          --metric ${METRIC} --tolerance ${TOLERANCE}
  OUTPUT_VARIABLE diff_out
  ERROR_VARIABLE diff_err
  RESULT_VARIABLE diff_status)
message(STATUS "benchdiff report:\n${diff_out}")
if(NOT diff_status EQUAL 0)
  message(FATAL_ERROR
    "benchdiff gate failed (exit ${diff_status}):\n${diff_out}${diff_err}")
endif()

message(STATUS "benchdiff gate ok (tolerance ${TOLERANCE})")
