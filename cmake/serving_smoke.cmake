# ctest smoke: drive the DetectionServer with hmdload at a low offered load
# and validate (a) the run sheds nothing — the load is far below capacity,
# so any drop is a data-plane bug, not noise — and (b) the emitted
# BENCH_serving.json parses and carries the drlhmd-bench/1 schema with the
# serving metrics benchdiff gates on.
#
# Invoked as:
#   cmake -DHMDLOAD=<path-to-hmdload> -P serving_smoke.cmake
if(NOT DEFINED HMDLOAD)
  message(FATAL_ERROR "serving_smoke: pass -DHMDLOAD=<path to hmdload>")
endif()

execute_process(
  COMMAND ${HMDLOAD} --smoke
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE status)
# hmdload --smoke exits nonzero on any drop or drain timeout.
if(NOT status EQUAL 0)
  message(FATAL_ERROR "hmdload --smoke exited ${status}:\n${err}")
endif()

# The JSON document is the last stdout line.
string(STRIP "${out}" out)
string(REGEX REPLACE ".*\n" "" doc "${out}")
if(doc STREQUAL "")
  message(FATAL_ERROR "hmdload produced no JSON document")
endif()

if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  string(JSON schema ERROR_VARIABLE json_err GET "${doc}" schema)
  if(NOT json_err STREQUAL "NOTFOUND")
    message(FATAL_ERROR "BENCH_serving.json unparsable: ${json_err}")
  endif()
  if(NOT schema STREQUAL "drlhmd-bench/1")
    message(FATAL_ERROR "unexpected bench schema '${schema}'")
  endif()
  foreach(needle IN ITEMS
      p0.sustained_per_sec p0.p99_us p0.p999_us p0.drop_rate
      p0.delivered_ratio)
    string(FIND "${doc}" "${needle}" found)
    if(found EQUAL -1)
      message(FATAL_ERROR "serving JSON missing metric '${needle}'")
    endif()
  endforeach()
  # Zero drops, every attempted sample answered: the contract the CI smoke
  # job asserts at low offered load.
  string(JSON n_metrics LENGTH "${doc}" metrics)
  math(EXPR last "${n_metrics} - 1")
  foreach(i RANGE ${last})
    string(JSON name GET "${doc}" metrics ${i} name)
    string(JSON value GET "${doc}" metrics ${i} value)
    if(name STREQUAL "p0.drop_rate" AND NOT value EQUAL 0)
      message(FATAL_ERROR "smoke run dropped samples (drop_rate=${value})")
    endif()
    if(name STREQUAL "p0.delivered_ratio" AND NOT value EQUAL 1)
      message(FATAL_ERROR
        "smoke run lost verdicts (delivered_ratio=${value})")
    endif()
  endforeach()
else()
  string(FIND "${doc}" "drlhmd-bench/1" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "serving output lacks the bench schema marker")
  endif()
endif()

message(STATUS "serving smoke ok")
