// Thread-count invariance: the whole point of the deterministic parallel
// layer is that DRLHMD_THREADS=1 and DRLHMD_THREADS=4 produce bitwise
// identical artifacts.  Every test here runs the same computation at both
// widths and compares exact bytes / exact doubles.
#include <gtest/gtest.h>

#include <vector>

#include "adversarial/feature_importance.hpp"
#include "adversarial/lowprofool.hpp"
#include "ml/cross_validation.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbdt.hpp"
#include "ml/matrix.hpp"
#include "ml/random_forest.hpp"
#include "sim/dataset_builder.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace drlhmd {
namespace {

class ThreadSweep : public ::testing::Test {
 protected:
  void TearDown() override { util::set_parallel_threads(saved_); }

  /// Runs `fn` with the pool at 1 thread and at 4 threads and returns both
  /// results for comparison.
  template <typename Fn>
  auto at_widths(Fn&& fn) {
    util::set_parallel_threads(1);
    auto serial = fn();
    util::set_parallel_threads(4);
    auto parallel = fn();
    return std::pair{std::move(serial), std::move(parallel)};
  }

 private:
  std::size_t saved_ = util::parallel_thread_count();
};

ml::Dataset blobs(std::size_t n_per_class, std::uint64_t seed = 17) {
  util::Rng rng(seed);
  ml::Dataset d;
  for (std::size_t i = 0; i < n_per_class; ++i) {
    std::vector<double> benign(4), malware(4);
    for (std::size_t c = 0; c < 4; ++c) {
      benign[c] = rng.normal(0.0, 1.0);
      malware[c] = rng.normal(2.0, 1.2);
    }
    d.push(std::move(benign), 0);
    d.push(std::move(malware), 1);
  }
  d.shuffle(rng);
  return d;
}

TEST_F(ThreadSweep, RandomForestBytesIdentical) {
  const ml::Dataset train = blobs(300);
  ml::RandomForestConfig cfg;
  cfg.n_trees = 20;
  const auto [serial, parallel] = at_widths([&] {
    ml::RandomForest forest(cfg);
    forest.fit(train);
    return forest.serialize();
  });
  EXPECT_EQ(serial, parallel);
}

TEST_F(ThreadSweep, LargeDecisionTreeBytesIdentical) {
  // 3000 rows puts the root (and first splits) over the parallel
  // split-scan threshold, exercising the fresh-sort path.
  const ml::Dataset train = blobs(1500);
  const auto [serial, parallel] = at_widths([&] {
    ml::DecisionTree tree;
    tree.fit(train);
    return tree.serialize();
  });
  EXPECT_EQ(serial, parallel);
}

TEST_F(ThreadSweep, GbdtBytesIdentical) {
  const ml::Dataset train = blobs(400);  // over the parallel-scan threshold
  ml::GbdtConfig cfg;
  cfg.n_rounds = 25;
  const auto [serial, parallel] = at_widths([&] {
    ml::Gbdt model(cfg);
    model.fit(train);
    return model.serialize();
  });
  EXPECT_EQ(serial, parallel);
}

TEST_F(ThreadSweep, MatmulBitsIdentical) {
  util::Rng rng(23);
  const ml::Matrix a = ml::Matrix::randn(96, 48, 1.0, rng);
  const ml::Matrix b = ml::Matrix::randn(48, 32, 1.0, rng);
  const auto [serial, parallel] = at_widths([&] { return a.matmul(b); });
  ASSERT_TRUE(serial.same_shape(parallel));
  for (std::size_t r = 0; r < serial.rows(); ++r)
    for (std::size_t c = 0; c < serial.cols(); ++c)
      EXPECT_EQ(serial.at(r, c), parallel.at(r, c));  // exact, not NEAR
}

TEST_F(ThreadSweep, MatmulPackedPathMatchesReferenceBitwise) {
  util::Rng rng(29);
  ml::Matrix a = ml::Matrix::randn(40, 24, 1.0, rng);
  const ml::Matrix b = ml::Matrix::randn(24, 16, 1.0, rng);
  a.at(3, 7) = 0.0;  // exercise the zero-skip
  a.at(20, 0) = 0.0;
  // Reference: the classic i-k-j accumulation the tiny-matrix path (and
  // the seed implementation) uses.
  ml::Matrix want(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double v = a.at(i, k);
      if (v == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j)
        want.at(i, j) += v * b.at(k, j);
    }
  const ml::Matrix got = a.matmul(b);
  ASSERT_TRUE(got.same_shape(want));
  for (std::size_t r = 0; r < want.rows(); ++r)
    for (std::size_t c = 0; c < want.cols(); ++c)
      EXPECT_EQ(got.at(r, c), want.at(r, c));
}

TEST_F(ThreadSweep, LowProFoolAttacksIdentical) {
  const ml::Dataset train = blobs(200);
  ml::LogisticRegression surrogate;
  surrogate.fit(train);
  const ml::FeatureBounds bounds = ml::feature_bounds(train);
  const std::vector<double> importance =
      adversarial::importance_from_lr(surrogate);
  const adversarial::LowProFool attacker(surrogate, bounds, importance);

  const auto [serial, parallel] =
      at_widths([&] { return attacker.attack_dataset(train); });
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(serial.y, parallel.y);
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial.row_copy(i), parallel.row_copy(i));  // vector<double> exact compare

  const auto [report1, report4] =
      at_widths([&] { return attacker.evaluate_campaign(train); });
  EXPECT_EQ(report1.attempted, report4.attempted);
  EXPECT_EQ(report1.succeeded, report4.succeeded);
  EXPECT_EQ(report1.mean_weighted_norm, report4.mean_weighted_norm);
  EXPECT_EQ(report1.mean_linf, report4.mean_linf);
}

TEST_F(ThreadSweep, CrossValidationIdentical) {
  const ml::Dataset data = blobs(120);
  const ml::DecisionTree prototype;
  const auto [serial, parallel] =
      at_widths([&] { return ml::cross_validate(prototype, data, 5); });
  ASSERT_EQ(serial.folds.size(), parallel.folds.size());
  for (std::size_t f = 0; f < serial.folds.size(); ++f) {
    EXPECT_EQ(serial.folds[f].accuracy, parallel.folds[f].accuracy);
    EXPECT_EQ(serial.folds[f].f1, parallel.folds[f].f1);
    EXPECT_EQ(serial.folds[f].auc, parallel.folds[f].auc);
  }
}

TEST_F(ThreadSweep, CorpusIdentical) {
  sim::CorpusConfig cfg;
  cfg.benign_apps = 6;
  cfg.malware_apps = 6;
  cfg.windows_per_app = 2;
  cfg.monitor.window_cycles = 20000;
  cfg.monitor.warmup_cycles = 5000;
  const auto [serial, parallel] = at_widths([&] { return build_corpus(cfg); });
  ASSERT_EQ(serial.records.size(), parallel.records.size());
  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    EXPECT_EQ(serial.records[i].app, parallel.records[i].app);
    EXPECT_EQ(serial.records[i].malware, parallel.records[i].malware);
    EXPECT_EQ(serial.records[i].features, parallel.records[i].features);
  }
}

}  // namespace
}  // namespace drlhmd
