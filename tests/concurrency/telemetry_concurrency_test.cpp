// Telemetry under concurrency: the sharded tail recorder must lose nothing
// under contention, and — because sums accumulate in integer ticks — the
// same multiset of observations must snapshot bitwise identically no matter
// how many threads recorded it (DRLHMD_THREADS=1/2/8 equivalence).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/tail_histogram.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace drlhmd {
namespace {

/// Deterministic latency-like value for index i (same multiset every run).
double sample_value(std::size_t i) {
  return static_cast<double>((i * 2654435761u) % 100000) / 100.0 + 0.125;
}

class TelemetrySweep : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::Telemetry::set_enabled(false);
    obs::Telemetry::reset();
    util::set_parallel_threads(saved_);
  }

 private:
  std::size_t saved_ = util::parallel_thread_count();
};

TEST_F(TelemetrySweep, ShardedObserveStressLosesNothing) {
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  obs::ShardedTailHistogram tail;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tail, t] {
      for (int i = 0; i < kIters; ++i)
        tail.observe(sample_value(static_cast<std::size_t>(t) * kIters +
                                  static_cast<std::size_t>(i)));
    });
  }
  for (auto& w : workers) w.join();

  const auto snap = tail.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(snap.dropped, 0u);
  // Tick sums are exact: the concurrent total equals the serial total.
  obs::TailHistogram serial;
  for (std::size_t i = 0; i < std::size_t{kThreads} * kIters; ++i)
    serial.observe(sample_value(i));
  EXPECT_EQ(snap.sum, serial.sum());
  EXPECT_EQ(snap.min, serial.min());
  EXPECT_EQ(snap.max, serial.max());
}

TEST_F(TelemetrySweep, SnapshotsBitwiseIdenticalAcrossThreadWidths) {
  // The same deterministic observations recorded from parallel_for chunks
  // at widths 1, 2, and 8 must aggregate to bitwise identical snapshots —
  // integer-tick state makes the result order-independent.
  const auto run_at_width = [](std::size_t width) {
    util::set_parallel_threads(width);
    obs::ShardedTailHistogram tail;
    util::parallel_for("telemetry_sweep", 0, 8192, 128,
                       [&](std::size_t i) { tail.observe(sample_value(i)); });
    return tail.snapshot();
  };
  const auto s1 = run_at_width(1);
  const auto s2 = run_at_width(2);
  const auto s8 = run_at_width(8);

  const auto expect_bitwise_equal = [](const obs::TailHistogram::Snapshot& a,
                                       const obs::TailHistogram::Snapshot& b) {
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.saturated, b.saturated);
    EXPECT_EQ(a.sum, b.sum);  // exact doubles, not NEAR
    EXPECT_EQ(a.min, b.min);
    EXPECT_EQ(a.max, b.max);
    EXPECT_EQ(a.p50, b.p50);
    EXPECT_EQ(a.p90, b.p90);
    EXPECT_EQ(a.p99, b.p99);
    EXPECT_EQ(a.p999, b.p999);
    EXPECT_EQ(a.p9999, b.p9999);
    ASSERT_EQ(a.buckets.size(), b.buckets.size());
    for (std::size_t i = 0; i < a.buckets.size(); ++i) {
      EXPECT_EQ(a.buckets[i].lo, b.buckets[i].lo);
      EXPECT_EQ(a.buckets[i].hi, b.buckets[i].hi);
      EXPECT_EQ(a.buckets[i].count, b.buckets[i].count);
    }
  };
  expect_bitwise_equal(s1, s2);
  expect_bitwise_equal(s1, s8);
}

TEST_F(TelemetrySweep, ParallelBridgeRecordsChunksAndFlowEvents) {
  obs::Telemetry::reset();
  obs::Telemetry::set_enabled(true);
  util::set_parallel_threads(2);

  std::atomic<std::uint64_t> sink{0};
  util::parallel_for("bridge_probe", 0, 256, 16, [&](std::size_t i) {
    sink.fetch_add(i, std::memory_order_relaxed);
  });
  obs::Telemetry::set_enabled(false);

  // 256 items at grain 16 => 16 chunks, each recorded into the exact tail.
  const auto snap = obs::Telemetry::metrics().snapshot();
  const auto* tail = snap.find_tail("drlhmd.parallel.chunk_us",
                                    {{"label", "bridge_probe"}});
  ASSERT_NE(tail, nullptr);
  EXPECT_EQ(tail->data.count, 16u);
  const auto* chunks =
      snap.find_counter("drlhmd.parallel.chunks", {{"label", "bridge_probe"}});
  ASSERT_NE(chunks, nullptr);
  EXPECT_EQ(chunks->value, 16u);

  // The fork span and all 16 chunk slices share one nonzero flow id.
  const auto events = obs::Telemetry::tracer().events();
  std::uint64_t flow = 0;
  std::size_t chunk_events = 0;
  for (const auto& ev : events) {
    if (ev.name == "parallel.bridge_probe") {
      EXPECT_EQ(ev.category, "parallel");
      EXPECT_FALSE(ev.open);
      flow = ev.flow_id;
    }
  }
  ASSERT_NE(flow, 0u);
  for (const auto& ev : events) {
    if (ev.name.rfind("bridge_probe.chunk", 0) == 0) {
      EXPECT_EQ(ev.flow_id, flow);
      EXPECT_EQ(ev.category, "parallel");
      ++chunk_events;
    }
  }
  EXPECT_EQ(chunk_events, 16u);
}

TEST_F(TelemetrySweep, DisabledTelemetryObservesNoRegions) {
  obs::Telemetry::reset();
  obs::Telemetry::set_enabled(false);
  util::set_parallel_threads(2);
  util::parallel_for("unobserved_probe", 0, 64, 8, [](std::size_t) {});
  const auto snap = obs::Telemetry::metrics().snapshot();
  EXPECT_EQ(snap.find_tail("drlhmd.parallel.chunk_us",
                           {{"label", "unobserved_probe"}}),
            nullptr);
  EXPECT_EQ(snap.find_counter("drlhmd.parallel.regions",
                              {{"label", "unobserved_probe"}}),
            nullptr);
}

}  // namespace
}  // namespace drlhmd
