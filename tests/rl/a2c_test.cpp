#include "rl/a2c.hpp"

#include <gtest/gtest.h>

namespace drlhmd::rl {
namespace {

/// One-step environment: action 1 pays when the single observation bit is
/// set, action 0 pays when it is clear.
class ContextualBanditEnv final : public Environment {
 public:
  explicit ContextualBanditEnv(std::uint64_t seed) : rng_(seed) {}

  std::vector<double> reset() override {
    bit_ = rng_.bernoulli(0.5);
    return {bit_ ? 1.0 : 0.0, bit_ ? 0.0 : 1.0};
  }

  StepResult step(std::size_t action) override {
    StepResult r;
    r.reward = (action == (bit_ ? 1u : 0u)) ? 1.0 : 0.0;
    r.done = true;
    return r;
  }

  std::size_t observation_size() const override { return 2; }
  std::size_t action_count() const override { return 2; }

 private:
  util::Rng rng_;
  bool bit_ = false;
};

A2CConfig fast_config() {
  A2CConfig cfg;
  cfg.hidden = {16, 16};
  cfg.actor_lr = 5e-3;
  cfg.critic_lr = 1e-2;
  return cfg;
}

TEST(A2CTest, ConstructionValidation) {
  EXPECT_THROW(A2C(0, 2), std::invalid_argument);
  EXPECT_THROW(A2C(2, 1), std::invalid_argument);
  A2CConfig bad;
  bad.hidden = {};
  EXPECT_THROW(A2C(2, 2, bad), std::invalid_argument);
  bad = {};
  bad.gamma = 1.5;
  EXPECT_THROW(A2C(2, 2, bad), std::invalid_argument);
  bad = {};
  bad.actor_lr = 0.0;
  EXPECT_THROW(A2C(2, 2, bad), std::invalid_argument);
}

TEST(A2CTest, PolicyIsDistribution) {
  A2C agent(3, 4);
  const std::vector<double> obs = {0.1, -0.2, 0.3};
  const auto probs = agent.policy(obs);
  ASSERT_EQ(probs.size(), 4u);
  double total = 0.0;
  for (double p : probs) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(A2CTest, ShapeChecks) {
  A2C agent(3, 2);
  const std::vector<double> wrong = {1.0};
  EXPECT_THROW(agent.policy(wrong), std::invalid_argument);
  EXPECT_THROW(agent.value(wrong), std::invalid_argument);
  const std::vector<double> ok = {0.0, 0.0, 0.0};
  EXPECT_THROW(agent.update(ok, 7, 1.0, 0.0, true), std::invalid_argument);
}

TEST(A2CTest, OnPolicyUpdatesConcentrateOnRewardedAction) {
  // On-policy: sample actions from the current policy, pay only action 1.
  // (Feeding a fixed action/reward forever is off-policy: once the critic
  // matches the constant return, the advantage is zero-mean noise and the
  // actor random-walks.)
  A2C agent(2, 2, fast_config());
  const std::vector<double> obs = {1.0, 0.0};
  util::Rng rng(31);
  for (int i = 0; i < 400; ++i) {
    const std::size_t a = agent.act(obs, rng);
    agent.update(obs, a, a == 1 ? 1.0 : 0.0, 0.0, true);
  }
  EXPECT_GT(agent.policy(obs)[1], 0.8);
  EXPECT_EQ(agent.act_greedy(obs), 1u);
}

TEST(A2CTest, CriticLearnsStateValue) {
  A2C agent(2, 2, fast_config());
  const std::vector<double> good = {1.0, 0.0};
  const std::vector<double> bad = {0.0, 1.0};
  util::Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    agent.update(good, agent.act(good, rng), 10.0, 0.0, true);
    agent.update(bad, agent.act(bad, rng), 0.0, 0.0, true);
  }
  EXPECT_GT(agent.value(good), 7.0);
  EXPECT_LT(agent.value(bad), 3.0);
}

TEST(A2CTest, SolvesContextualBandit) {
  A2C agent(2, 2, fast_config());
  ContextualBanditEnv env(17);
  util::Rng rng(19);
  for (int episode = 0; episode < 1500; ++episode)
    agent.train_episode(env, rng);
  // Evaluate greedy policy.
  int correct = 0;
  for (int i = 0; i < 200; ++i) {
    const auto obs = env.reset();
    const std::size_t action = agent.act_greedy(obs);
    const StepResult r = env.step(action);
    correct += r.reward > 0.5 ? 1 : 0;
  }
  EXPECT_GT(correct, 180);
}

TEST(A2CTest, TrainEpisodeReportsStats) {
  A2C agent(2, 2, fast_config());
  ContextualBanditEnv env(23);
  util::Rng rng(29);
  const EpisodeStats stats = agent.train_episode(env, rng);
  EXPECT_EQ(stats.steps, 1u);
  EXPECT_GE(stats.episode_reward, 0.0);
}

TEST(A2CTest, SerializeRoundTripPreservesPolicyAndValue) {
  A2C agent(3, 2, fast_config());
  const std::vector<double> obs = {0.5, -0.5, 1.0};
  for (int i = 0; i < 50; ++i) agent.update(obs, 0, 1.0, 0.0, true);
  const A2C restored = A2C::deserialize(agent.serialize());
  EXPECT_EQ(restored.observation_size(), 3u);
  EXPECT_EQ(restored.action_count(), 2u);
  const auto p1 = agent.policy(obs);
  const auto p2 = restored.policy(obs);
  for (std::size_t i = 0; i < p1.size(); ++i) EXPECT_DOUBLE_EQ(p1[i], p2[i]);
  EXPECT_DOUBLE_EQ(agent.value(obs), restored.value(obs));
}

TEST(A2CTest, DeterministicGivenSeed) {
  A2C a(2, 2), b(2, 2);
  const std::vector<double> obs = {0.3, 0.7};
  const auto pa = a.policy(obs);
  const auto pb = b.policy(obs);
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

}  // namespace
}  // namespace drlhmd::rl
