#include "rl/bandits.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace drlhmd::rl {
namespace {

/// Run a Bernoulli bandit problem and return the fraction of pulls spent on
/// the best arm.
double best_arm_share(Bandit& bandit, std::span<const double> means,
                      std::size_t steps, std::uint64_t seed) {
  util::Rng rng(seed);
  for (std::size_t t = 0; t < steps; ++t) {
    const std::size_t arm = bandit.select();
    bandit.update(arm, rng.bernoulli(means[arm]) ? 1.0 : 0.0);
  }
  std::size_t best = 0;
  for (std::size_t a = 1; a < means.size(); ++a)
    if (means[a] > means[best]) best = a;
  std::uint64_t total = 0;
  for (std::size_t a = 0; a < means.size(); ++a) total += bandit.pulls(a);
  return static_cast<double>(bandit.pulls(best)) / static_cast<double>(total);
}

const std::vector<double> kMeans = {0.2, 0.45, 0.8};

class BanditSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(BanditSweep, ConvergesToBestArm) {
  auto bandit = make_bandit(GetParam(), kMeans.size());
  const double share = best_arm_share(*bandit, kMeans, 5000, 11);
  EXPECT_GT(share, 0.6) << bandit->name();
  EXPECT_EQ(bandit->best_arm(), 2u) << bandit->name();
}

TEST_P(BanditSweep, ExploresEveryArm) {
  auto bandit = make_bandit(GetParam(), kMeans.size());
  best_arm_share(*bandit, kMeans, 2000, 13);
  for (std::size_t a = 0; a < kMeans.size(); ++a)
    EXPECT_GT(bandit->pulls(a), 0u) << bandit->name();
}

TEST_P(BanditSweep, MeanRewardEstimatesConverge) {
  auto bandit = make_bandit(GetParam(), kMeans.size());
  best_arm_share(*bandit, kMeans, 20000, 17);
  // The most-pulled arm's estimate must be accurate.
  EXPECT_NEAR(bandit->mean_reward(bandit->best_arm()), 0.8, 0.05)
      << bandit->name();
}

INSTANTIATE_TEST_SUITE_P(Kinds, BanditSweep,
                         ::testing::Values("ucb", "epsilon-greedy", "thompson"));

TEST(EpsilonGreedyTest, Validation) {
  EXPECT_THROW(EpsilonGreedyBandit(0), std::invalid_argument);
  EpsilonGreedyConfig bad;
  bad.epsilon = 1.5;
  EXPECT_THROW(EpsilonGreedyBandit(2, bad), std::invalid_argument);
  EpsilonGreedyBandit ok(2);
  EXPECT_THROW(ok.update(5, 1.0), std::out_of_range);
  EXPECT_THROW(ok.pulls(5), std::out_of_range);
}

TEST(EpsilonGreedyTest, ZeroEpsilonIsPureGreedy) {
  EpsilonGreedyConfig cfg;
  cfg.epsilon = 0.0;
  EpsilonGreedyBandit bandit(2, cfg);
  bandit.update(0, 1.0);
  bandit.update(1, 0.0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(bandit.select(), 0u);
    bandit.update(0, 1.0);
  }
}

TEST(ThompsonTest, Validation) {
  EXPECT_THROW(ThompsonBandit(0), std::invalid_argument);
  ThompsonConfig bad;
  bad.prior_alpha = 0.0;
  EXPECT_THROW(ThompsonBandit(2, bad), std::invalid_argument);
  ThompsonBandit ok(2);
  EXPECT_THROW(ok.update(9, 1.0), std::out_of_range);
}

TEST(ThompsonTest, FractionalRewardsUpdatePosterior) {
  ThompsonBandit bandit(2);
  for (int i = 0; i < 200; ++i) {
    bandit.update(0, 0.9);
    bandit.update(1, 0.1);
  }
  // Posterior concentrated: arm 0 must be selected nearly always.
  std::size_t arm0 = 0;
  for (int i = 0; i < 200; ++i) arm0 += bandit.select() == 0 ? 1 : 0;
  EXPECT_GT(arm0, 180u);
  EXPECT_NEAR(bandit.mean_reward(0), 0.9, 1e-9);
}

TEST(MakeBanditTest, UnknownKindThrows) {
  EXPECT_THROW(make_bandit("sarsa", 3), std::invalid_argument);
}

TEST(UcbAdapterTest, DelegatesToUcb) {
  UcbBanditAdapter bandit(3);
  EXPECT_EQ(bandit.arm_count(), 3u);
  EXPECT_EQ(bandit.name(), "UCB1");
  bandit.update(1, 1.0);
  EXPECT_EQ(bandit.pulls(1), 1u);
  EXPECT_DOUBLE_EQ(bandit.mean_reward(1), 1.0);
}

}  // namespace
}  // namespace drlhmd::rl
