#include "rl/adversarial_predictor.hpp"

#include <gtest/gtest.h>

namespace drlhmd::rl {
namespace {

/// Adversarial samples cluster at (-3, ...); legitimate traffic at (+1, ...).
struct PredictorFixture {
  ml::Dataset adversarial;
  ml::Dataset legitimate;

  explicit PredictorFixture(std::size_t n_adv = 300, std::size_t n_legit = 600,
                            std::uint64_t seed = 3) {
    util::Rng rng(seed);
    for (std::size_t i = 0; i < n_adv; ++i) {
      std::vector<double> row(4);
      for (auto& v : row) v = rng.normal(-3.0, 0.5);
      adversarial.push(std::move(row), 1);
    }
    for (std::size_t i = 0; i < n_legit; ++i) {
      std::vector<double> row(4);
      for (auto& v : row) v = rng.normal(1.0, 0.8);
      legitimate.push(std::move(row), i % 2 == 0 ? 1 : 0);
    }
  }
};

AdversarialPredictorConfig fast_config() {
  AdversarialPredictorConfig cfg;
  cfg.a2c.hidden = {32, 32, 32, 32};
  cfg.epochs = 4;
  return cfg;
}

TEST(AdversarialPredictorTest, ConstructionValidation) {
  EXPECT_THROW(AdversarialPredictor(0), std::invalid_argument);
  AdversarialPredictorConfig bad;
  bad.epochs = 0;
  EXPECT_THROW(AdversarialPredictor(4, bad), std::invalid_argument);
}

TEST(AdversarialPredictorTest, RequiresTrainingBeforeInference) {
  AdversarialPredictor predictor(4);
  const std::vector<double> x = {0, 0, 0, 0};
  EXPECT_THROW(predictor.feedback_reward(x), std::logic_error);
  EXPECT_FALSE(predictor.trained());
}

TEST(AdversarialPredictorTest, TrainRejectsBadInputs) {
  AdversarialPredictor predictor(4, fast_config());
  const PredictorFixture fx;
  EXPECT_THROW(predictor.train(ml::Dataset{}, fx.legitimate),
               std::invalid_argument);
  ml::Dataset narrow;
  narrow.push({1.0}, 1);
  EXPECT_THROW(predictor.train(narrow, fx.legitimate), std::invalid_argument);
}

TEST(AdversarialPredictorTest, DiscriminatesAdversarialFromLegitimate) {
  const PredictorFixture fx;
  AdversarialPredictor predictor(4, fast_config());
  predictor.train(fx.adversarial, fx.legitimate);
  EXPECT_TRUE(predictor.trained());

  const ml::MetricReport m = predictor.evaluate(fx.adversarial, fx.legitimate);
  EXPECT_GT(m.accuracy, 0.97);
  EXPECT_GT(m.f1, 0.95);
  EXPECT_GT(m.auc, 0.99);
}

TEST(AdversarialPredictorTest, FeedbackRewardSeparatesClasses) {
  const PredictorFixture fx;
  AdversarialPredictor predictor(4, fast_config());
  predictor.train(fx.adversarial, fx.legitimate);

  double adv_mean = 0.0, legit_mean = 0.0;
  for (const auto& row : fx.adversarial.rows_copy())
    adv_mean += predictor.feedback_reward(row);
  for (const auto& row : fx.legitimate.rows_copy())
    legit_mean += predictor.feedback_reward(row);
  adv_mean /= static_cast<double>(fx.adversarial.size());
  legit_mean /= static_cast<double>(fx.legitimate.size());

  // Paper: reward ~100 for adversarial, ~0 for unlabeled traffic.
  EXPECT_GT(adv_mean, 60.0);
  EXPECT_LT(legit_mean, 25.0);
}

TEST(AdversarialPredictorTest, RewardTraceShapeMatchesStream) {
  const PredictorFixture fx;
  AdversarialPredictor predictor(4, fast_config());
  predictor.train(fx.adversarial, fx.legitimate);

  std::vector<std::vector<double>> stream;
  for (std::size_t i = 0; i < 10; ++i) stream.push_back(fx.adversarial.row_copy(i));
  for (std::size_t i = 0; i < 10; ++i) stream.push_back(fx.legitimate.row_copy(i));
  const auto trace = predictor.reward_trace(stream);
  ASSERT_EQ(trace.size(), 20u);
  // First half (adversarial) must sit well above the second half.
  double first = 0.0, second = 0.0;
  for (std::size_t i = 0; i < 10; ++i) first += trace[i];
  for (std::size_t i = 10; i < 20; ++i) second += trace[i];
  EXPECT_GT(first / 10.0, second / 10.0 + 40.0);
}

TEST(AdversarialPredictorTest, MeanEpisodeRewardReported) {
  const PredictorFixture fx(100, 100);
  AdversarialPredictor predictor(4, fast_config());
  predictor.train(fx.adversarial, fx.legitimate);
  // Half the stream is adversarial with max reward 100 when flagged.
  EXPECT_GT(predictor.mean_training_episode_reward(), 5.0);
  EXPECT_LT(predictor.mean_training_episode_reward(), 100.0);
}

}  // namespace
}  // namespace drlhmd::rl
