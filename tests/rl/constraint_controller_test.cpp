#include "rl/constraint_controller.hpp"

#include <gtest/gtest.h>

#include "ml/decision_tree.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/model_zoo.hpp"
#include "util/rng.hpp"

namespace drlhmd::rl {
namespace {

ml::Dataset blobs(std::size_t n_per_class, double gap, std::uint64_t seed) {
  util::Rng rng(seed);
  ml::Dataset d;
  for (std::size_t i = 0; i < n_per_class; ++i) {
    std::vector<double> benign(4), malware(4);
    for (int c = 0; c < 4; ++c) {
      benign[c] = rng.normal(0.0, 1.0);
      malware[c] = rng.normal(gap, 1.0);
    }
    d.push(std::move(benign), 0);
    d.push(std::move(malware), 1);
  }
  d.shuffle(rng);
  return d;
}

/// Fixture with a deliberately-shaped model set: DT is cheap but weak (it
/// trains on very little data), MLP is expensive but strong.
struct ControllerFixture {
  ml::Dataset train = blobs(300, 2.0, 5);
  ml::Dataset val = blobs(150, 2.0, 6);
  std::unique_ptr<ml::Classifier> weak_cheap;
  std::unique_ptr<ml::Classifier> strong_costly;
  std::vector<ml::Classifier*> models;
  std::vector<ModelProfile> profiles;

  ControllerFixture() {
    ml::DecisionTreeConfig weak_cfg;
    weak_cfg.max_depth = 1;  // decision stump: fast, small, weak
    weak_cheap = std::make_unique<ml::DecisionTree>(weak_cfg);
    weak_cheap->fit(train);
    strong_costly = ml::make_model(ml::ModelKind::kMlp);
    strong_costly->fit(train);
    models = {weak_cheap.get(), strong_costly.get()};
    profiles = profile_models(models, val);
  }
};

TEST(PolicyNameTest, AllPoliciesNamed) {
  EXPECT_NE(policy_name(ConstraintPolicy::kFastInference).find("Agent 1"),
            std::string::npos);
  EXPECT_NE(policy_name(ConstraintPolicy::kSmallMemory).find("Agent 2"),
            std::string::npos);
  EXPECT_NE(policy_name(ConstraintPolicy::kBestDetection).find("Agent 3"),
            std::string::npos);
}

TEST(ModelProfileTest, MeasuresAllDimensions) {
  const ControllerFixture fx;
  ASSERT_EQ(fx.profiles.size(), 2u);
  for (const auto& p : fx.profiles) {
    EXPECT_GT(p.latency_us, 0.0);
    EXPECT_GT(p.memory_bytes, 0u);
    EXPECT_GT(p.metrics.accuracy, 0.5);
  }
  // The stump must be smaller and faster than the MLP.
  EXPECT_LT(fx.profiles[0].memory_bytes, fx.profiles[1].memory_bytes);
  EXPECT_LT(fx.profiles[0].latency_us, fx.profiles[1].latency_us);
  // And weaker.
  EXPECT_LT(fx.profiles[0].metrics.f1, fx.profiles[1].metrics.f1);
}

TEST(ModelProfileTest, Validation) {
  const ControllerFixture fx;
  ml::LogisticRegression untrained;
  EXPECT_THROW(profile_model(untrained, fx.val), std::logic_error);
  EXPECT_THROW(profile_model(*fx.weak_cheap, ml::Dataset{}), std::invalid_argument);
  EXPECT_THROW(profile_model(*fx.weak_cheap, fx.val, 0), std::invalid_argument);
}

TEST(ConstraintControllerTest, ConstructionValidation) {
  const ControllerFixture fx;
  EXPECT_THROW(ConstraintController({}, {}), std::invalid_argument);
  EXPECT_THROW(ConstraintController(fx.models, {}), std::invalid_argument);
  ml::LogisticRegression untrained;
  std::vector<ml::Classifier*> with_untrained = {&untrained};
  std::vector<ModelProfile> one_profile = {fx.profiles[0]};
  EXPECT_THROW(ConstraintController(with_untrained, one_profile),
               std::invalid_argument);
}

TEST(ConstraintControllerTest, DetectionAgentPicksStrongModel) {
  const ControllerFixture fx;
  ConstraintControllerConfig cfg;
  cfg.policy = ConstraintPolicy::kBestDetection;
  ConstraintController controller(fx.models, fx.profiles, cfg);
  controller.train(fx.train);
  EXPECT_EQ(controller.selected_model(), 1u);  // the MLP
}

TEST(ConstraintControllerTest, SpeedAgentPicksCheapModel) {
  const ControllerFixture fx;
  ConstraintControllerConfig cfg;
  cfg.policy = ConstraintPolicy::kFastInference;
  ConstraintController controller(fx.models, fx.profiles, cfg);
  controller.train(fx.train);
  EXPECT_EQ(controller.selected_model(), 0u);  // the stump
}

TEST(ConstraintControllerTest, MemoryAgentPicksSmallModel) {
  const ControllerFixture fx;
  ConstraintControllerConfig cfg;
  cfg.policy = ConstraintPolicy::kSmallMemory;
  ConstraintController controller(fx.models, fx.profiles, cfg);
  controller.train(fx.train);
  EXPECT_EQ(controller.selected_model(), 0u);
}

TEST(ConstraintControllerTest, ConstraintScoresNormalized) {
  const ControllerFixture fx;
  ConstraintController controller(fx.models, fx.profiles);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_GT(controller.constraint_score(i), 0.0);
    EXPECT_LE(controller.constraint_score(i), 1.0);
  }
  EXPECT_THROW(controller.constraint_score(9), std::out_of_range);
}

TEST(ConstraintControllerTest, StateIs14TupleWithFiveModels) {
  // Paper state: 4 HPCs + 5 predictions + 5 constraint flags.
  ml::Dataset train = blobs(100, 3.0, 7);
  auto zoo = ml::make_classical_models();
  std::vector<ml::Classifier*> models;
  for (auto& m : zoo) {
    m->fit(train);
    models.push_back(m.get());
  }
  const auto profiles = profile_models(models, train);
  ConstraintController controller(models, profiles);
  const auto state = controller.build_state(train.row_copy(0));
  EXPECT_EQ(state.size(), 14u);
  // Predictions and flags are binary.
  for (std::size_t i = 4; i < 14; ++i)
    EXPECT_TRUE(state[i] == 0.0 || state[i] == 1.0);
}

TEST(ConstraintControllerTest, PredictRoutesThroughSelectedModel) {
  const ControllerFixture fx;
  ConstraintControllerConfig cfg;
  cfg.policy = ConstraintPolicy::kBestDetection;
  ConstraintController controller(fx.models, fx.profiles, cfg);
  controller.train(fx.train);
  const ml::Dataset test = blobs(50, 2.0, 9);
  const std::size_t sel = controller.selected_model();
  for (const auto& row : test.rows_copy()) {
    EXPECT_EQ(controller.predict(row), fx.models[sel]->predict(row));
    EXPECT_DOUBLE_EQ(controller.predict_proba(row),
                     fx.models[sel]->predict_proba(row));
  }
}

TEST(ConstraintControllerTest, EvaluateUsesSelectedModel) {
  const ControllerFixture fx;
  ConstraintControllerConfig cfg;
  cfg.policy = ConstraintPolicy::kBestDetection;
  ConstraintController controller(fx.models, fx.profiles, cfg);
  controller.train(fx.train);
  const ml::Dataset test = blobs(100, 2.0, 11);
  const ml::MetricReport m = controller.evaluate(test);
  EXPECT_GT(m.f1, 0.85);
}

TEST(ConstraintControllerTest, ObserveUpdatesBandit) {
  const ControllerFixture fx;
  ConstraintController controller(fx.models, fx.profiles);
  const auto pulls_before = controller.bandit().total_pulls();
  controller.observe(fx.train.row_copy(0), fx.train.y[0]);
  EXPECT_EQ(controller.bandit().total_pulls(), pulls_before + 1);
}

TEST(ConstraintControllerTest, TrainRejectsEmptyStream) {
  const ControllerFixture fx;
  ConstraintController controller(fx.models, fx.profiles);
  EXPECT_THROW(controller.train(ml::Dataset{}), std::invalid_argument);
}

}  // namespace
}  // namespace drlhmd::rl
