#include "rl/ucb.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hpp"

namespace drlhmd::rl {
namespace {

TEST(UcbTest, ConstructionValidation) {
  EXPECT_THROW(UcbBandit(0), std::invalid_argument);
  UcbConfig bad;
  bad.exploration = -1.0;
  EXPECT_THROW(UcbBandit(2, bad), std::invalid_argument);
}

TEST(UcbTest, ExploresEveryArmFirst) {
  UcbBandit bandit(4);
  std::set<std::size_t> first_picks;
  for (int i = 0; i < 4; ++i) {
    const std::size_t arm = bandit.select();
    first_picks.insert(arm);
    bandit.update(arm, 0.0);
  }
  EXPECT_EQ(first_picks.size(), 4u);
}

TEST(UcbTest, ConvergesToBestArm) {
  UcbBandit bandit(3);
  util::Rng rng(5);
  const double means[] = {0.2, 0.5, 0.8};
  for (int t = 0; t < 5000; ++t) {
    const std::size_t arm = bandit.select();
    bandit.update(arm, rng.bernoulli(means[arm]) ? 1.0 : 0.0);
  }
  EXPECT_GT(bandit.pulls(2), bandit.pulls(0));
  EXPECT_GT(bandit.pulls(2), bandit.pulls(1));
  EXPECT_GT(static_cast<double>(bandit.pulls(2)) /
                static_cast<double>(bandit.total_pulls()),
            0.7);
  EXPECT_NEAR(bandit.mean_reward(2), 0.8, 0.05);
}

TEST(UcbTest, UcbIsInfinityForUnexploredArm) {
  UcbBandit bandit(2);
  bandit.update(0, 1.0);
  EXPECT_TRUE(std::isinf(bandit.ucb(1)));
  EXPECT_FALSE(std::isinf(bandit.ucb(0)));
  // With a single pull the bonus is sqrt(ln(1)/1) = 0: UCB equals the mean.
  EXPECT_GE(bandit.ucb(0), bandit.mean_reward(0));
}

TEST(UcbTest, ZeroExplorationIsGreedy) {
  UcbConfig cfg;
  cfg.exploration = 0.0;
  UcbBandit bandit(2, cfg);
  bandit.update(0, 1.0);
  bandit.update(1, 0.0);
  for (int i = 0; i < 100; ++i) {
    const std::size_t arm = bandit.select();
    EXPECT_EQ(arm, 0u);
    bandit.update(arm, 1.0);
  }
}

TEST(UcbTest, BoundsChecking) {
  UcbBandit bandit(2);
  EXPECT_THROW(bandit.update(5, 1.0), std::out_of_range);
  EXPECT_THROW(bandit.pulls(5), std::out_of_range);
  EXPECT_THROW(bandit.mean_reward(5), std::out_of_range);
  EXPECT_THROW(bandit.ucb(5), std::out_of_range);
}

TEST(UcbTest, ResetClearsState) {
  UcbBandit bandit(2);
  bandit.update(0, 1.0);
  bandit.reset();
  EXPECT_EQ(bandit.total_pulls(), 0u);
  EXPECT_EQ(bandit.pulls(0), 0u);
  EXPECT_EQ(bandit.mean_reward(0), 0.0);
}

TEST(UcbTest, TracksAccounting) {
  UcbBandit bandit(2);
  bandit.update(0, 0.5);
  bandit.update(0, 1.0);
  bandit.update(1, 0.0);
  EXPECT_EQ(bandit.total_pulls(), 3u);
  EXPECT_EQ(bandit.pulls(0), 2u);
  EXPECT_DOUBLE_EQ(bandit.mean_reward(0), 0.75);
}

}  // namespace
}  // namespace drlhmd::rl
