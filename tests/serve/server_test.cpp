// DetectionServer behavior: session/drop accounting under backpressure,
// adaptive flush reasons, background drain workers, and the drlhmd.serve.*
// metrics surface.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/framework.hpp"

namespace drlhmd::serve {
namespace {

core::FrameworkConfig serve_framework_config() {
  core::FrameworkConfig cfg;
  cfg.corpus.benign_apps = 40;
  cfg.corpus.malware_apps = 40;
  cfg.corpus.windows_per_app = 4;
  cfg.seed = 2024;
  return cfg;
}

core::RuntimeConfig frozen_runtime_config() {
  // Frozen models: no retrains or integrity sweeps mid-test, so verdict
  // streams depend only on the rows.
  core::RuntimeConfig cfg;
  cfg.retrain_threshold = 0;
  cfg.integrity_check_period = 0;
  return cfg;
}

/// Expensive trained pipeline shared across the suite.
class ServerFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    framework_ = new core::Framework(serve_framework_config());
    framework_->run_all();
  }
  static void TearDownTestSuite() {
    delete framework_;
    framework_ = nullptr;
  }
  static core::Framework* framework_;
};

core::Framework* ServerFixture::framework_ = nullptr;

TEST_F(ServerFixture, RejectsInvalidConfig) {
  core::DetectionRuntime runtime(*framework_, frozen_runtime_config());
  ServeConfig cfg;
  EXPECT_THROW(DetectionServer(runtime, 0, cfg), std::invalid_argument);
  EXPECT_THROW(DetectionServer(runtime, kMaxSampleFeatures + 1, cfg),
               std::invalid_argument);
  cfg.hosts = 0;
  EXPECT_THROW(DetectionServer(runtime, framework_->test_set().num_features(),
                               cfg),
               std::invalid_argument);
}

TEST_F(ServerFixture, ManualPollAnswersEveryAcceptedSample) {
  core::DetectionRuntime runtime(*framework_, frozen_runtime_config());
  const ml::Dataset& mix = framework_->attacked_test_mix();
  const std::size_t cols = mix.num_features();

  ServeConfig cfg;
  cfg.hosts = 4;
  cfg.ring_capacity = 4096;
  cfg.completion_capacity = 4096;
  cfg.max_batch = 16;
  DetectionServer server(runtime, cols, cfg);

  const std::size_t n = std::min<std::size_t>(mix.size(), 64);
  std::vector<std::size_t> per_host(cfg.hosts, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto host = static_cast<std::uint32_t>(i % cfg.hosts);
    const std::vector<double> row = mix.row_copy(i);
    const auto res = server.try_enqueue(host, row);
    ASSERT_TRUE(res.accepted);
    EXPECT_EQ(res.seq, per_host[host]);  // per-host sequence stamping
    ++per_host[host];
  }
  EXPECT_EQ(server.poll(), n);

  std::size_t popped = 0;
  for (std::uint32_t host = 0; host < cfg.hosts; ++host) {
    VerdictRecord rec;
    std::uint32_t expected_seq = 0;
    while (server.try_pop_verdict(host, rec)) {
      EXPECT_EQ(rec.host, host);
      EXPECT_EQ(rec.seq, expected_seq++);  // in-order per host
      EXPECT_GE(rec.verdict_tick_ns, rec.enqueue_tick_ns);
      EXPECT_NE(rec.verdict, core::TrafficVerdict::kDropped);
      ++popped;
    }
    const HostSessionSnapshot s = server.session(host);
    EXPECT_EQ(s.enqueued, per_host[host]);
    EXPECT_EQ(s.delivered, per_host[host]);
    EXPECT_EQ(s.dropped, 0u);
  }
  EXPECT_EQ(popped, n);

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.enqueued, n);
  EXPECT_EQ(stats.scored, n);
  EXPECT_EQ(stats.delivered, n);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST_F(ServerFixture, FullRingBurnsSequenceNumbersAndCountsDrops) {
  core::DetectionRuntime runtime(*framework_, frozen_runtime_config());
  const ml::Dataset& mix = framework_->attacked_test_mix();

  ServeConfig cfg;
  cfg.hosts = 1;
  cfg.ring_capacity = 2;  // already a power of two; floor for the ring
  cfg.completion_capacity = 64;
  DetectionServer server(runtime, mix.num_features(), cfg);

  const std::size_t attempts = 10;
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < attempts; ++i) {
    const std::vector<double> row = mix.row_copy(i % mix.size());
    const auto res = server.try_enqueue(0, row);
    // Sequence numbers are stamped on arrival, shed or not.
    EXPECT_EQ(res.seq, i);
    accepted += res.accepted ? 1 : 0;
  }
  ASSERT_LT(accepted, attempts);  // the tiny ring must have shed some

  const HostSessionSnapshot before = server.session(0);
  EXPECT_EQ(before.enqueued, accepted);
  EXPECT_EQ(before.dropped, attempts - accepted);
  EXPECT_EQ(before.next_seq, attempts);
  EXPECT_EQ(before.last_verdict, core::TrafficVerdict::kDropped);

  server.poll();
  // Gaps in the delivered sequence stream are exactly the drops.
  VerdictRecord rec;
  std::vector<std::uint32_t> seqs;
  while (server.try_pop_verdict(0, rec)) seqs.push_back(rec.seq);
  ASSERT_EQ(seqs.size(), accepted);
  std::size_t gaps = 0;
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    if (i > 0) {
      ASSERT_GT(seqs[i], prev);
      gaps += seqs[i] - prev - 1;
    } else {
      gaps += seqs[0];
    }
    prev = seqs[i];
  }
  gaps += (attempts - 1) - prev;  // drops after the last delivered sample
  EXPECT_EQ(gaps, attempts - accepted);
  EXPECT_EQ(server.stats().dropped, attempts - accepted);
}

TEST_F(ServerFixture, AdaptiveFlushReasonsAreAccounted) {
  core::DetectionRuntime runtime(*framework_, frozen_runtime_config());
  const ml::Dataset& mix = framework_->attacked_test_mix();

  ServeConfig cfg;
  cfg.hosts = 2;
  cfg.ring_capacity = 256;
  cfg.completion_capacity = 256;
  cfg.max_batch = 4;
  cfg.max_wait_us = 200.0;
  DetectionServer server(runtime, mix.num_features(), cfg);

  // 9 staged rows at max_batch=4: poll() flushes 4+4 as kFull and the
  // final 1 as a forced kDrain.
  for (std::size_t i = 0; i < 9; ++i) {
    ASSERT_TRUE(server
                    .try_enqueue(static_cast<std::uint32_t>(i % cfg.hosts),
                                 mix.row_copy(i % mix.size()))
                    .accepted);
  }
  EXPECT_EQ(server.poll(), 9u);
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.flush_full, 2u);
  EXPECT_EQ(stats.flush_drain, 1u);
  EXPECT_EQ(stats.batches, 3u);

  // A partial batch left to age under a background worker flushes as kWait.
  server.start();
  ASSERT_TRUE(server.try_enqueue(0, mix.row_copy(0)).accepted);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().flush_wait == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.stop();
  EXPECT_GE(server.stats().flush_wait, 1u);
  EXPECT_EQ(server.stats().scored, 10u);
}

TEST_F(ServerFixture, BackgroundWorkersDrainEverythingOnStop) {
  core::DetectionRuntime runtime(*framework_, frozen_runtime_config());
  const ml::Dataset& mix = framework_->attacked_test_mix();

  ServeConfig cfg;
  cfg.hosts = 8;
  cfg.ring_capacity = 4096;
  cfg.completion_capacity = 1024;
  cfg.max_batch = 32;
  DetectionServer server(runtime, mix.num_features(), cfg);

  server.start();
  EXPECT_TRUE(server.running());
  EXPECT_THROW(server.poll(), std::logic_error);

  const std::size_t n = 200;
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto res = server.try_enqueue(static_cast<std::uint32_t>(i % cfg.hosts),
                                        mix.row_copy(i % mix.size()));
    accepted += res.accepted ? 1 : 0;
  }
  ASSERT_EQ(accepted, n);  // ring far larger than the burst
  server.stop();  // drains rings + staged rows before joining
  EXPECT_FALSE(server.running());

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.scored, n);
  EXPECT_EQ(stats.delivered, n);
  EXPECT_EQ(stats.queue_depth, 0u);

  std::size_t popped = 0;
  for (std::uint32_t host = 0; host < cfg.hosts; ++host) {
    VerdictRecord rec;
    while (server.try_pop_verdict(host, rec)) ++popped;
  }
  EXPECT_EQ(popped, n);
}

TEST_F(ServerFixture, PublishesServeGaugesAndCounters) {
  core::DetectionRuntime runtime(*framework_, frozen_runtime_config());
  const ml::Dataset& mix = framework_->attacked_test_mix();

  ServeConfig cfg;
  cfg.hosts = 3;
  cfg.ring_capacity = 64;
  cfg.completion_capacity = 64;
  DetectionServer server(runtime, mix.num_features(), cfg);

  for (std::size_t i = 0; i < 12; ++i) {
    server.try_enqueue(static_cast<std::uint32_t>(i % cfg.hosts),
                       mix.row_copy(i % mix.size()));
  }
  // Gauges reflect pre-drain occupancy...
  server.publish_gauges();
  const obs::MetricsSnapshot staged = server.metrics().snapshot();
  const auto* depth = staged.find_gauge("drlhmd.serve.queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_DOUBLE_EQ(depth->value, 12.0);

  server.poll();
  server.publish_gauges();
  const obs::MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_DOUBLE_EQ(snap.find_gauge("drlhmd.serve.queue_depth")->value, 0.0);
  EXPECT_DOUBLE_EQ(snap.find_gauge("drlhmd.serve.dropped_total")->value, 0.0);
  EXPECT_DOUBLE_EQ(snap.find_gauge("drlhmd.serve.sessions")->value, 3.0);
  EXPECT_EQ(snap.find_counter("drlhmd.serve.enqueued")->value, 12u);
  EXPECT_EQ(snap.find_counter("drlhmd.serve.scored")->value, 12u);
  EXPECT_EQ(snap.find_counter("drlhmd.serve.delivered")->value, 12u);
  // The e2e tail recorder saw every verdict.
  const auto* e2e = snap.find_tail("drlhmd.serve.e2e_us");
  ASSERT_NE(e2e, nullptr);
  EXPECT_EQ(e2e->data.count, 12u);
}

TEST_F(ServerFixture, EnqueueValidatesHostAndWidth) {
  core::DetectionRuntime runtime(*framework_, frozen_runtime_config());
  const std::size_t cols = framework_->test_set().num_features();
  DetectionServer server(runtime, cols, ServeConfig{});
  const std::vector<double> narrow(cols - 1, 0.0);
  const std::vector<double> row(cols, 0.0);
  EXPECT_THROW(server.try_enqueue(999999, row), std::out_of_range);
  EXPECT_THROW(server.try_enqueue(0, narrow), std::invalid_argument);
  VerdictRecord rec;
  EXPECT_THROW(server.try_pop_verdict(999999, rec), std::out_of_range);
  EXPECT_THROW(server.session(999999), std::out_of_range);
}

}  // namespace
}  // namespace drlhmd::serve
