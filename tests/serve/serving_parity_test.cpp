// Acceptance proof: verdicts flowing through the serving data plane
// (enqueue -> ring -> adaptive batcher -> process_batch -> completion
// queue) are bitwise-identical to direct process_batch calls on the same
// rows, regardless of how the batcher slices them (max_batch 1, 16, 256).
#include <gtest/gtest.h>

#include <vector>

#include "core/framework.hpp"
#include "serve/server.hpp"

namespace drlhmd::serve {
namespace {

core::FrameworkConfig parity_framework_config() {
  core::FrameworkConfig cfg;
  cfg.corpus.benign_apps = 40;
  cfg.corpus.malware_apps = 40;
  cfg.corpus.windows_per_app = 4;
  cfg.seed = 2024;
  return cfg;
}

core::RuntimeConfig frozen_runtime_config() {
  // Frozen models: with retraining and integrity sweeps off, verdicts are a
  // pure function of the rows, so two runtimes over the same trained
  // pipeline must agree exactly.
  core::RuntimeConfig cfg;
  cfg.retrain_threshold = 0;
  cfg.integrity_check_period = 0;
  return cfg;
}

class ServingParityFixture : public ::testing::TestWithParam<std::size_t> {
 protected:
  static void SetUpTestSuite() {
    framework_ = new core::Framework(parity_framework_config());
    framework_->run_all();
  }
  static void TearDownTestSuite() {
    delete framework_;
    framework_ = nullptr;
  }
  static core::Framework* framework_;
};

core::Framework* ServingParityFixture::framework_ = nullptr;

TEST_P(ServingParityFixture, VerdictsMatchDirectBatchAtEveryBatchBound) {
  const std::size_t max_batch = GetParam();
  const ml::Dataset& mix = framework_->attacked_test_mix();
  ASSERT_GT(mix.size(), 0u);

  // Reference: one direct batch pass over the whole mix.
  core::DetectionRuntime reference(*framework_, frozen_runtime_config());
  const std::vector<core::TrafficVerdict> expected =
      reference.process_batch(mix.X.view());
  ASSERT_EQ(expected.size(), mix.size());

  // Served: same rows pushed through the ring + adaptive batcher.  A single
  // host keeps the delivered order identical to the enqueue order.
  core::DetectionRuntime served_runtime(*framework_, frozen_runtime_config());
  ServeConfig cfg;
  cfg.hosts = 1;
  cfg.ring_capacity = ring_capacity_for(mix.size());
  cfg.completion_capacity = ring_capacity_for(mix.size());
  cfg.max_batch = max_batch;
  DetectionServer server(served_runtime, mix.num_features(), cfg);

  for (std::size_t i = 0; i < mix.size(); ++i)
    ASSERT_TRUE(server.try_enqueue(0, mix.row_copy(i)).accepted);
  ASSERT_EQ(server.poll(), mix.size());

  std::vector<core::TrafficVerdict> got;
  got.reserve(mix.size());
  VerdictRecord rec;
  while (server.try_pop_verdict(0, rec)) {
    EXPECT_EQ(rec.seq, got.size());  // delivered in enqueue order
    got.push_back(rec.verdict);
  }
  EXPECT_EQ(got, expected);

  // The batcher really did slice at max_batch: ceil(n / max_batch) flushes.
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.batches, (mix.size() + max_batch - 1) / max_batch);
  EXPECT_EQ(stats.scored, mix.size());
  // And the served runtime tallied exactly what the reference did.
  EXPECT_EQ(served_runtime.stats().processed, reference.stats().processed);
  EXPECT_EQ(served_runtime.stats().benign, reference.stats().benign);
  EXPECT_EQ(served_runtime.stats().malware, reference.stats().malware);
  EXPECT_EQ(served_runtime.stats().adversarial, reference.stats().adversarial);
}

INSTANTIATE_TEST_SUITE_P(BatchBounds, ServingParityFixture,
                         ::testing::Values(std::size_t{1}, std::size_t{16},
                                           std::size_t{256}));

}  // namespace
}  // namespace drlhmd::serve
