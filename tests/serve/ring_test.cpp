// Ring-buffer edge cases: capacity rounding, wraparound at the index
// boundary, full-ring drop accounting, and a multi-producer stress run
// (TSan-clean under the tsan preset, which runs this binary through its
// `concurrency` label).
#include "serve/ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace drlhmd::serve {
namespace {

TEST(RingCapacityTest, RoundsUpToPowerOfTwo) {
  EXPECT_EQ(ring_capacity_for(0), 2u);
  EXPECT_EQ(ring_capacity_for(1), 2u);
  EXPECT_EQ(ring_capacity_for(2), 2u);
  EXPECT_EQ(ring_capacity_for(3), 4u);
  EXPECT_EQ(ring_capacity_for(4), 4u);
  EXPECT_EQ(ring_capacity_for(5), 8u);
  EXPECT_EQ(ring_capacity_for(1000), 1024u);
  EXPECT_EQ(ring_capacity_for(1024), 1024u);
}

TEST(SpscRingTest, PushPopFifo) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRingTest, FullRingRejectsAndCallerCountsTheDrop) {
  SpscRing<int> ring(2);
  std::size_t drops = 0;
  for (int i = 0; i < 5; ++i) {
    if (!ring.try_push(i)) ++drops;
  }
  // Capacity 2: the last three pushes are shed, never silently absorbed.
  EXPECT_EQ(drops, 3u);
  EXPECT_EQ(ring.size(), 2u);
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);  // the shed pushes displaced nothing
}

TEST(SpscRingTest, WrapsCleanlyAcrossTheCapacityBoundary) {
  SpscRing<std::uint64_t> ring(8);
  // Many times around the ring with a persistent 3-element backlog, so
  // every slot is reused and the head/tail masks wrap repeatedly.
  std::uint64_t next_push = 0, next_pop = 0;
  for (int round = 0; round < 1000; ++round) {
    while (ring.size() < 3) ASSERT_TRUE(ring.try_push(next_push++));
    std::uint64_t out = 0;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, next_pop++);
  }
  while (next_pop < next_push) {
    std::uint64_t out = 0;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, next_pop++);
  }
  EXPECT_EQ(ring.size(), 0u);
}

TEST(SpscRingTest, PopBulkDrainsInOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(ring.try_push(i));
  std::vector<int> out(4, -1);
  EXPECT_EQ(ring.pop_bulk(out), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(ring.pop_bulk(out), 2u);
  EXPECT_EQ(out[0], 4);
  EXPECT_EQ(out[1], 5);
}

TEST(SpscRingTest, TwoThreadHandoffDeliversEverythingInOrder) {
  SpscRing<std::uint64_t> ring(16);
  constexpr std::uint64_t kItems = 50000;
  // Yield on full/empty: on a single-core host a pure spin burns whole
  // scheduler quanta before the peer can make progress.
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems;) {
      if (ring.try_push(i)) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::uint64_t expected = 0;
  while (expected < kItems) {
    std::uint64_t out = 0;
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(ring.size(), 0u);
}

TEST(MpscRingTest, PushPopFifoSingleProducer) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(MpscRingTest, FullRingSheds) {
  MpscRing<int> ring(2);
  std::size_t drops = 0;
  for (int i = 0; i < 7; ++i) {
    if (!ring.try_push(i)) ++drops;
  }
  EXPECT_EQ(drops, 5u);
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  // Freed cell becomes reusable: the next push lands.
  EXPECT_TRUE(ring.try_push(41));
}

TEST(MpscRingTest, WrapsCleanlyAcrossTheCapacityBoundary) {
  MpscRing<std::uint64_t> ring(4);
  std::uint64_t next_push = 0, next_pop = 0;
  for (int round = 0; round < 1000; ++round) {
    while (ring.try_push(next_push)) ++next_push;
    std::uint64_t out = 0;
    while (ring.try_pop(out)) EXPECT_EQ(out, next_pop++);
  }
  EXPECT_EQ(next_pop, next_push);
}

struct Tagged {
  std::uint32_t producer;
  std::uint32_t seq;
};

TEST(MpscRingTest, EightProducersOneConsumerStress) {
  constexpr std::size_t kProducers = 8;
  constexpr std::uint32_t kPerProducer = 20000;
  MpscRing<Tagged> ring(64);  // small on purpose: constant wrap + backoff

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint32_t i = 0; i < kPerProducer;) {
        if (ring.try_push({static_cast<std::uint32_t>(p), i})) {
          ++i;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  // Single consumer: every producer's stream must arrive gap-free and in
  // order (MPSC interleaves producers but never reorders one producer).
  std::array<std::uint32_t, kProducers> next_seq{};
  std::uint64_t received = 0;
  Tagged out{};
  while (received < kProducers * static_cast<std::uint64_t>(kPerProducer)) {
    if (!ring.try_pop(out)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_LT(out.producer, kProducers);
    ASSERT_EQ(out.seq, next_seq[out.producer]);
    ++next_seq[out.producer];
    ++received;
  }
  for (auto& t : producers) t.join();
  for (std::size_t p = 0; p < kProducers; ++p)
    EXPECT_EQ(next_seq[p], kPerProducer);
  EXPECT_EQ(ring.size(), 0u);
}

}  // namespace
}  // namespace drlhmd::serve
