// Steady-state zero-allocation proof for the serving hot path.
//
// This binary replaces the global allocation functions with counting
// wrappers (armed only inside the measured window, so gtest bookkeeping
// and test setup never pollute the count).  After warm-up — which grows
// the per-thread arenas and the thread pool's region slot to their
// high-water marks — DetectionRuntime::process_batch into caller-owned
// verdict storage must perform exactly zero heap allocations per call:
// every gather buffer, score array, flag array, and NN activation comes
// out of the per-thread bump arenas (src/util/arena.hpp).
//
// Runs under the plain preset only (label `alloc`): sanitizers intercept
// operator new themselves and are excluded via the preset label filters.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/runtime.hpp"
#include "serve/server.hpp"
#include "util/parallel.hpp"

namespace {

std::atomic<bool> g_armed{false};
std::atomic<std::uint64_t> g_allocs{0};

void note_alloc() {
  if (g_armed.load(std::memory_order_relaxed))
    g_allocs.fetch_add(1, std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  note_alloc();
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  note_alloc();
  void* p = nullptr;
  if (posix_memalign(&p, align, size != 0 ? size : align) != 0)
    throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  note_alloc();
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  note_alloc();
  return std::malloc(size != 0 ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace drlhmd {
namespace {

/// Shares one trained pipeline plus a predictor-unflagged row probe across
/// the batch and serving zero-alloc proofs (training is the expensive part).
class ZeroAllocFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::FrameworkConfig cfg;
    cfg.corpus.benign_apps = 80;
    cfg.corpus.malware_apps = 80;
    cfg.corpus.windows_per_app = 4;
    framework_ = new core::Framework(cfg);
    framework_->run_all();

    // Pre-filter to rows the predictor does not flag: flagged rows grow the
    // quarantine database, which is an intentional allocation.  Verdicts
    // are deterministic (frozen const models), so the filtered rows stay
    // unflagged on every pass below.
    core::DetectionRuntime scout(*framework_, frozen_config());
    const ml::Dataset& test = framework_->test_set();
    std::vector<core::TrafficVerdict> first(test.size());
    scout.process_batch(test.X.view(), first);
    probe_ = new ml::FeatureMatrix();
    probe_->reserve_rows(64);
    for (std::size_t i = 0; i < test.size() && probe_->rows() < 64; ++i)
      if (first[i] != core::TrafficVerdict::kAdversarialMalware)
        probe_->push_row(test.row_copy(i));
  }
  static void TearDownTestSuite() {
    delete probe_;
    probe_ = nullptr;
    delete framework_;
    framework_ = nullptr;
  }
  static core::RuntimeConfig frozen_config() {
    core::RuntimeConfig rcfg;
    rcfg.retrain_threshold = 0;       // adaptive retrain allocates by design
    rcfg.integrity_check_period = 0;  // vault re-hash allocates by design
    return rcfg;
  }
  static core::Framework* framework_;
  static ml::FeatureMatrix* probe_;
};

core::Framework* ZeroAllocFixture::framework_ = nullptr;
ml::FeatureMatrix* ZeroAllocFixture::probe_ = nullptr;

TEST_F(ZeroAllocFixture, SteadyStateProcessBatchDoesNotAllocate) {
  core::DetectionRuntime runtime(*framework_, frozen_config());
  const ml::FeatureMatrix& probe = *probe_;
  ASSERT_GE(probe.rows(), 16u) << "predictor flagged nearly everything";

  const std::size_t saved_threads = util::parallel_thread_count();
  std::vector<core::TrafficVerdict> verdicts(probe.rows());
  for (const std::size_t width : {std::size_t{1}, std::size_t{2}}) {
    util::set_parallel_threads(width);
    // Warm-up: arenas and the pool's region slot grow to high water.
    for (int pass = 0; pass < 5; ++pass)
      runtime.process_batch(probe.view(), verdicts);

    g_allocs.store(0);
    g_armed.store(true);
    for (int pass = 0; pass < 10; ++pass)
      runtime.process_batch(probe.view(), verdicts);
    g_armed.store(false);
    const std::uint64_t allocs = g_allocs.load();
    EXPECT_EQ(allocs, 0u) << "heap allocations in steady-state "
                             "process_batch at DRLHMD_THREADS="
                          << width;
  }
  util::set_parallel_threads(saved_threads);
}

TEST_F(ZeroAllocFixture, SteadyStateServingDrainLoopDoesNotAllocate) {
  core::DetectionRuntime runtime(*framework_, frozen_config());
  const ml::FeatureMatrix& probe = *probe_;
  ASSERT_GE(probe.rows(), 16u) << "predictor flagged nearly everything";
  const std::size_t cols = probe.cols();

  serve::ServeConfig scfg;
  scfg.hosts = 4;
  scfg.ring_capacity = 256;
  scfg.completion_capacity = 256;
  scfg.max_batch = 16;
  serve::DetectionServer server(runtime, cols, scfg);

  // One manual-pump pass over the probe: enqueue, drain, pop verdicts.
  // The gather buffer is preallocated — gather_row writes in place.
  std::vector<double> row(cols);
  const auto pump = [&] {
    for (std::size_t i = 0; i < probe.rows(); ++i) {
      probe.view().gather_row(i, row);
      server.try_enqueue(static_cast<std::uint32_t>(i % scfg.hosts), row);
    }
    server.poll();
    serve::VerdictRecord rec;
    for (std::uint32_t host = 0; host < scfg.hosts; ++host)
      while (server.try_pop_verdict(host, rec)) {
      }
  };

  // Warm-up: runtime arenas reach high water and the serve tail recorders
  // (e2e_us/batch_rows/score_us) allocate this thread's shard slots.
  for (int pass = 0; pass < 5; ++pass) pump();

  // Armed: the whole enqueue -> ring -> stage -> score -> completion-queue
  // loop must stay off the heap.
  g_allocs.store(0);
  g_armed.store(true);
  for (int pass = 0; pass < 10; ++pass) pump();
  g_armed.store(false);
  EXPECT_EQ(g_allocs.load(), 0u)
      << "heap allocations in the steady-state serving drain loop";

  const serve::ServeStats stats = server.stats();
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.delivered, stats.scored);
}

}  // namespace
}  // namespace drlhmd
