#include "integrity/sha256.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace drlhmd::integrity {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(to_hex(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(to_hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(to_hex(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, LongerTwoBlockMessage) {
  EXPECT_EQ(
      to_hex(sha256("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
                    "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")),
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  EXPECT_EQ(to_hex(hasher.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64 bytes: exactly one block before padding.
  const std::string block(64, 'x');
  // Reference computed with coreutils sha256sum.
  EXPECT_EQ(to_hex(sha256(block)),
            "7ce100971f64e7001e8fe5a51973ecdfe1ced42befe7ee8d5fd6219506b5393c");
}

TEST(Sha256Test, IncrementalEqualsOneShot) {
  const std::string message = "The quick brown fox jumps over the lazy dog";
  Sha256 hasher;
  for (char c : message)
    hasher.update(std::string_view(&c, 1));
  EXPECT_EQ(to_hex(hasher.finish()), to_hex(sha256(message)));
}

TEST(Sha256Test, SplitAtArbitraryBoundaries) {
  const std::string message(300, 'z');
  for (std::size_t split : {1u, 37u, 63u, 64u, 65u, 128u, 299u}) {
    Sha256 hasher;
    hasher.update(std::string_view(message).substr(0, split));
    hasher.update(std::string_view(message).substr(split));
    EXPECT_EQ(to_hex(hasher.finish()), to_hex(sha256(message))) << split;
  }
}

TEST(Sha256Test, BinaryInput) {
  std::vector<std::uint8_t> bytes = {0x00, 0xFF, 0x10, 0x80};
  const auto d1 = sha256(bytes);
  bytes[0] = 0x01;
  const auto d2 = sha256(bytes);
  EXPECT_NE(to_hex(d1), to_hex(d2));
}

TEST(Sha256Test, UseAfterFinishThrows) {
  Sha256 hasher;
  hasher.update("abc");
  hasher.finish();
  EXPECT_THROW(hasher.update("more"), std::logic_error);
  EXPECT_THROW(hasher.finish(), std::logic_error);
}

TEST(Sha256Test, HexIs64LowercaseChars) {
  const auto hex = to_hex(sha256("x"));
  EXPECT_EQ(hex.size(), 64u);
  for (char c : hex)
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
}

}  // namespace
}  // namespace drlhmd::integrity
