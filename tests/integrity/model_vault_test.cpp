#include "integrity/model_vault.hpp"

#include <gtest/gtest.h>

#include "ml/logistic_regression.hpp"
#include "util/rng.hpp"

namespace drlhmd::integrity {
namespace {

std::vector<std::uint8_t> trained_lr_bytes(std::uint64_t seed = 3) {
  util::Rng rng(seed);
  ml::Dataset d;
  for (int i = 0; i < 100; ++i) {
    d.push({rng.normal(0, 1), rng.normal(0, 1)}, 0);
    d.push({rng.normal(3, 1), rng.normal(3, 1)}, 1);
  }
  ml::LogisticRegression lr;
  lr.fit(d);
  return lr.serialize();
}

TEST(ModelVaultTest, DeployAndVerifyIntact) {
  ModelVault vault;
  const auto bytes = trained_lr_bytes();
  const std::string digest = vault.deploy("LR", bytes, 20240623);
  EXPECT_EQ(digest.size(), 64u);
  EXPECT_EQ(vault.verify("LR", bytes), VerificationStatus::kIntact);
  EXPECT_EQ(vault.size(), 1u);
}

TEST(ModelVaultTest, DetectsTampering) {
  ModelVault vault;
  auto bytes = trained_lr_bytes();
  vault.deploy("LR", bytes, 20240623);
  bytes[bytes.size() / 2] ^= 0x01;  // single-bit flip
  EXPECT_EQ(vault.verify("LR", bytes), VerificationStatus::kTampered);
}

TEST(ModelVaultTest, UnknownModel) {
  ModelVault vault;
  const auto bytes = trained_lr_bytes();
  EXPECT_EQ(vault.verify("ghost", bytes), VerificationStatus::kUnknownModel);
  EXPECT_FALSE(vault.restore("ghost").has_value());
  EXPECT_FALSE(vault.record("ghost").has_value());
}

TEST(ModelVaultTest, RestoreReturnsGoldenCopy) {
  ModelVault vault;
  const auto bytes = trained_lr_bytes();
  vault.deploy("LR", bytes, 1);
  const auto restored = vault.restore("LR");
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, bytes);
  // The restored bytes must deserialize into a working model.
  EXPECT_NO_THROW(ml::LogisticRegression::deserialize(*restored));
}

TEST(ModelVaultTest, DigestBindsNameAndTimestamp) {
  const auto bytes = trained_lr_bytes();
  const std::string d1 = ModelVault::compute_digest("A", 1, bytes);
  const std::string d2 = ModelVault::compute_digest("B", 1, bytes);
  const std::string d3 = ModelVault::compute_digest("A", 2, bytes);
  EXPECT_NE(d1, d2);
  EXPECT_NE(d1, d3);
  EXPECT_EQ(d1, ModelVault::compute_digest("A", 1, bytes));
}

TEST(ModelVaultTest, RedeployReplacesRecord) {
  ModelVault vault;
  const auto v1 = trained_lr_bytes(1);
  const auto v2 = trained_lr_bytes(2);
  vault.deploy("LR", v1, 1);
  vault.deploy("LR", v2, 2);
  EXPECT_EQ(vault.size(), 1u);
  EXPECT_EQ(vault.verify("LR", v2), VerificationStatus::kIntact);
  EXPECT_EQ(vault.verify("LR", v1), VerificationStatus::kTampered);
}

TEST(ModelVaultTest, EmptyNameRejected) {
  ModelVault vault;
  EXPECT_THROW(vault.deploy("", {1, 2, 3}, 0), std::invalid_argument);
}

TEST(ModelVaultTest, RecordExposesMetadata) {
  ModelVault vault;
  vault.deploy("LR", {1, 2, 3}, 42);
  const auto rec = vault.record("LR");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->model_name, "LR");
  EXPECT_EQ(rec->deployed_at, 42u);
  EXPECT_EQ(rec->digest_hex.size(), 64u);
}

}  // namespace
}  // namespace drlhmd::integrity
