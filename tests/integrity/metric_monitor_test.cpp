#include "integrity/metric_monitor.hpp"

#include <gtest/gtest.h>

#include "ml/logistic_regression.hpp"
#include "ml/decision_tree.hpp"
#include "util/rng.hpp"

namespace drlhmd::integrity {
namespace {

ml::Dataset blobs(std::size_t n, double gap, std::uint64_t seed) {
  util::Rng rng(seed);
  ml::Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    d.push({rng.normal(0, 1), rng.normal(0, 1)}, 0);
    d.push({rng.normal(gap, 1), rng.normal(gap, 1)}, 1);
  }
  return d;
}

TEST(MetricMonitorTest, ToleranceValidation) {
  EXPECT_THROW(MetricMonitor(0.0), std::invalid_argument);
  EXPECT_THROW(MetricMonitor(-1.0), std::invalid_argument);
}

TEST(MetricMonitorTest, UnchangedModelShowsNoDeviation) {
  const ml::Dataset train = blobs(200, 3.0, 1);
  const ml::Dataset reserved = blobs(100, 3.0, 2);
  ml::LogisticRegression lr;
  lr.fit(train);

  MetricMonitor monitor(0.02);
  monitor.record_baseline(lr, reserved);
  const DeviationReport report = monitor.assess(lr, reserved);
  EXPECT_FALSE(report.deviated);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(monitor.tracked_models(), 1u);
}

TEST(MetricMonitorTest, SwappedModelTriggersDeviation) {
  const ml::Dataset train = blobs(200, 3.0, 1);
  const ml::Dataset reserved = blobs(100, 3.0, 2);
  ml::LogisticRegression good;
  good.fit(train);

  // An "attacker-replaced" model: trained on inverted labels.
  ml::Dataset poisoned = train;
  for (auto& y : poisoned.y) y = 1 - y;
  ml::LogisticRegression bad;
  bad.fit(poisoned);

  MetricMonitor monitor(0.05);
  monitor.record_baseline(good, reserved);
  // Same name, different behaviour -> the monitor flags it.
  const DeviationReport report = monitor.assess(bad, reserved);
  EXPECT_TRUE(report.deviated);
  EXPECT_FALSE(report.violations.empty());
}

TEST(MetricMonitorTest, AssessWithoutBaselineThrows) {
  const ml::Dataset reserved = blobs(50, 3.0, 3);
  ml::LogisticRegression lr;
  lr.fit(reserved);
  MetricMonitor monitor;
  EXPECT_THROW(monitor.assess(lr, reserved), std::logic_error);
}

TEST(MetricMonitorTest, BaselineAccessor) {
  const ml::Dataset train = blobs(100, 3.0, 4);
  ml::LogisticRegression lr;
  lr.fit(train);
  MetricMonitor monitor;
  EXPECT_FALSE(monitor.baseline("LR").has_value());
  monitor.record_baseline(lr, train);
  const auto baseline = monitor.baseline("LR");
  ASSERT_TRUE(baseline.has_value());
  EXPECT_EQ(baseline->model_name, "LR");
  EXPECT_GT(baseline->metrics.accuracy, 0.9);
}

TEST(MetricMonitorTest, LooseToleranceSuppressesSmallDrift) {
  const ml::Dataset train = blobs(200, 2.0, 5);
  const ml::Dataset reserved_a = blobs(100, 2.0, 6);
  const ml::Dataset reserved_b = blobs(100, 2.0, 7);  // different draw
  ml::DecisionTree tree;
  tree.fit(train);
  MetricMonitor loose(0.25);
  loose.record_baseline(tree, reserved_a);
  EXPECT_FALSE(loose.assess(tree, reserved_b).deviated);
}

}  // namespace
}  // namespace drlhmd::integrity
