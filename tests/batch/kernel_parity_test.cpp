// Quantized-kernel vs exact-path parity for the ensemble detectors.
//
// The tree kernels (ForestKernel, DESIGN.md §12) quantize thresholds onto
// a per-feature cut grid that preserves every comparison, so the kernel
// must reach the same leaf as the exact path for every input — including
// NaN/inf — and may differ only by the float rounding of leaf payloads.
// For a single DecisionTree that pins the kernel score exactly:
//   kernel == double(float(exact))
// (the DT's predict_proba_batch_fast stays on the bitwise-exact sweep —
// one tree cannot amortize the encode stage — so its kernel is probed
// directly here).  The Q15 MLP/NN mirror is error-bounded instead:
// probabilities within 1e-3 and identical labels away from the boundary.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "ml/conv_net.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbdt.hpp"
#include "ml/mlp.hpp"
#include "ml/preprocess.hpp"
#include "ml/random_forest.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace drlhmd {
namespace {

ml::Dataset blobs(std::size_t n_per_class, double gap, std::uint64_t seed,
                  std::size_t width = 4) {
  util::Rng rng(seed);
  ml::Dataset d;
  for (std::size_t i = 0; i < n_per_class; ++i) {
    std::vector<double> benign(width), malware(width);
    for (std::size_t c = 0; c < width; ++c) {
      benign[c] = rng.normal(0.0, 1.0);
      malware[c] = rng.normal(gap, 1.0);
    }
    d.push(std::move(benign), 0);
    d.push(std::move(malware), 1);
  }
  d.shuffle(rng);
  return d;
}

const std::vector<std::size_t> kWidths = {1, 2, 8};

/// Same leaf => probabilities agree to float-leaf rounding; labels agree
/// whenever the exact score is not razor-close to the 0.5 threshold.
void expect_kernel_parity(const std::vector<double>& exact,
                          const std::vector<double>& fast, double tol,
                          const char* what) {
  ASSERT_EQ(exact.size(), fast.size()) << what;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(exact[i], fast[i], tol) << what << ": row " << i;
    if (std::abs(exact[i] - 0.5) > tol)
      EXPECT_EQ(exact[i] >= 0.5, fast[i] >= 0.5) << what << ": row " << i;
  }
}

class KernelParity : public ::testing::Test {
 protected:
  void TearDown() override { util::set_parallel_threads(saved_); }

 private:
  std::size_t saved_ = util::parallel_thread_count();
};

TEST_F(KernelParity, DecisionTreeKernelIsFloatRoundedExact) {
  ml::DecisionTree tree;
  tree.fit(blobs(150, 1.5, 17));
  ASSERT_TRUE(tree.kernel().ready());
  const ml::Dataset test = blobs(101, 1.5, 91);  // odd count: partial block

  std::vector<double> exact(test.size()), fast(test.size());
  tree.predict_proba_batch(test.view(), exact);
  std::fill(fast.begin(), fast.end(), 0.0);
  tree.kernel().accumulate(test.view(), fast);
  for (std::size_t i = 0; i < test.size(); ++i)
    EXPECT_EQ(fast[i], static_cast<double>(static_cast<float>(exact[i])))
        << "row " << i;  // same leaf, float-rounded payload — exactly

  // Unfused, the DT fast path IS the exact sweep (a lone tree cannot
  // amortize the encode stage), so it must match bitwise.
  tree.predict_proba_batch_fast(test.view(), fast);
  for (std::size_t i = 0; i < test.size(); ++i)
    EXPECT_EQ(fast[i], exact[i]) << "row " << i;
}

TEST_F(KernelParity, RandomForestFastMatchesExact) {
  ml::RandomForest forest;
  forest.fit(blobs(150, 1.5, 17));
  ASSERT_TRUE(forest.kernel().ready());
  EXPECT_EQ(forest.kernel().tree_count(), forest.tree_count());
  const ml::Dataset test = blobs(101, 1.5, 91);

  std::vector<double> exact(test.size()), fast(test.size());
  forest.predict_proba_batch(test.view(), exact);
  for (const std::size_t width : kWidths) {
    util::set_parallel_threads(width);
    forest.predict_proba_batch_fast(test.view(), fast);
    expect_kernel_parity(exact, fast, 1e-5, "RF");
  }
}

TEST_F(KernelParity, GbdtFastMatchesExact) {
  ml::Gbdt gbdt;
  gbdt.fit(blobs(150, 1.5, 17));
  ASSERT_TRUE(gbdt.kernel().ready());
  const ml::Dataset test = blobs(101, 1.5, 91);

  std::vector<double> exact(test.size()), fast(test.size());
  gbdt.predict_proba_batch(test.view(), exact);
  for (const std::size_t width : kWidths) {
    util::set_parallel_threads(width);
    gbdt.predict_proba_batch_fast(test.view(), fast);
    expect_kernel_parity(exact, fast, 1e-4, "LightGBM");
  }
}

TEST_F(KernelParity, OffsetSlicesMatchExactPath) {
  ml::RandomForest forest;
  forest.fit(blobs(120, 1.5, 23));
  const ml::Dataset test = blobs(80, 1.5, 29);

  const struct {
    std::size_t begin, count;
  } slices[] = {{0, 37}, {1, 64}, {33, 127}, {159, 1}, {7, 0}};
  for (const auto& s : slices) {
    std::vector<double> exact(s.count), fast(s.count);
    const ml::BatchView view = test.view().rows_slice(s.begin, s.count);
    forest.predict_proba_batch(view, exact);
    forest.predict_proba_batch_fast(view, fast);
    expect_kernel_parity(exact, fast, 1e-5, "RF slice");
  }
}

TEST_F(KernelParity, NanAndInfReachTheSameLeaf) {
  ml::DecisionTree tree;
  ml::Gbdt gbdt;
  const ml::Dataset train = blobs(150, 1.5, 41);
  tree.fit(train);
  gbdt.fit(train);

  // Every row carries a NaN or +/-inf in some column; the cut-index code
  // must route them exactly like `v <= t ? left : right` (NaN and +inf go
  // right, -inf goes left).
  ml::Dataset probe = blobs(40, 1.5, 43);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < probe.size(); ++i) {
    const double special = i % 3 == 0 ? nan : (i % 3 == 1 ? inf : -inf);
    probe.X.mutable_view().col(i % 4)[i] = special;
  }

  std::vector<double> exact(probe.size()), fast(probe.size());
  tree.predict_proba_batch(probe.view(), exact);
  std::fill(fast.begin(), fast.end(), 0.0);
  tree.kernel().accumulate(probe.view(), fast);
  for (std::size_t i = 0; i < probe.size(); ++i)
    EXPECT_EQ(fast[i], static_cast<double>(static_cast<float>(exact[i])))
        << "DT row " << i;

  gbdt.predict_proba_batch(probe.view(), exact);
  gbdt.predict_proba_batch_fast(probe.view(), fast);
  expect_kernel_parity(exact, fast, 1e-4, "LightGBM NaN/inf");
}

TEST_F(KernelParity, FusedKernelScoresRawColumns) {
  // Train in scaled space (the pipeline's model space), then fuse the
  // scaler + a non-trivial feature selection into the kernel: the fast
  // path consumes the raw 6-wide batch and must reach the same leaves the
  // exact path reaches on the scaled, selected view.
  const std::size_t kRawWidth = 6;
  const std::vector<std::uint32_t> selected = {0, 2, 3, 5};
  ml::Dataset raw = blobs(150, 1.5, 47, kRawWidth);

  ml::Dataset model_space;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::vector<double> row = raw.row_copy(i);
    std::vector<double> picked;
    for (const std::uint32_t c : selected) picked.push_back(row[c]);
    model_space.push(picked, raw.y[i]);
  }
  ml::StandardScaler scaler;
  scaler.fit(model_space);
  model_space = scaler.transform(model_space);

  ml::DecisionTree tree;
  ml::RandomForest forest;
  ml::Gbdt gbdt;
  tree.fit(model_space);
  forest.fit(model_space);
  gbdt.fit(model_space);
  tree.fuse_preprocess(scaler.mean(), scaler.scale(), selected);
  forest.fuse_preprocess(scaler.mean(), scaler.scale(), selected);
  gbdt.fuse_preprocess(scaler.mean(), scaler.scale(), selected);
  EXPECT_TRUE(tree.kernel().fused());

  ml::Dataset raw_probe = blobs(77, 1.5, 53, kRawWidth);
  ml::Dataset probe_model_space;
  for (std::size_t i = 0; i < raw_probe.size(); ++i) {
    const std::vector<double> row = raw_probe.row_copy(i);
    std::vector<double> picked;
    for (const std::uint32_t c : selected) picked.push_back(row[c]);
    probe_model_space.push(scaler.transform(picked), raw_probe.y[i]);
  }

  std::vector<double> exact(raw_probe.size()), fast(raw_probe.size());
  tree.predict_proba_batch(probe_model_space.view(), exact);
  tree.predict_proba_batch_fast(raw_probe.view(), fast);
  for (std::size_t i = 0; i < raw_probe.size(); ++i)
    EXPECT_EQ(fast[i], static_cast<double>(static_cast<float>(exact[i])))
        << "fused DT row " << i;

  forest.predict_proba_batch(probe_model_space.view(), exact);
  forest.predict_proba_batch_fast(raw_probe.view(), fast);
  expect_kernel_parity(exact, fast, 1e-5, "fused RF");

  gbdt.predict_proba_batch(probe_model_space.view(), exact);
  gbdt.predict_proba_batch_fast(raw_probe.view(), fast);
  expect_kernel_parity(exact, fast, 1e-4, "fused LightGBM");
}

TEST_F(KernelParity, QuantizedMlpWithinErrorBound) {
  ml::MlpClassifier mlp;
  mlp.fit(blobs(150, 2.5, 17));
  ASSERT_TRUE(mlp.quantized_ready());
  const ml::Dataset test = blobs(101, 2.5, 91);

  std::vector<double> exact(test.size()), quant(test.size());
  mlp.predict_proba_batch(test.view(), exact);
  for (const std::size_t width : kWidths) {
    util::set_parallel_threads(width);
    mlp.predict_proba_batch_quantized(test.view(), quant);
    expect_kernel_parity(exact, quant, 1e-3, "MLP Q15");
  }
}

TEST_F(KernelParity, QuantizedConvNetWithinErrorBound) {
  ml::ConvNetClassifier nn;
  nn.fit(blobs(150, 2.5, 19));
  ASSERT_TRUE(nn.quantized_ready());
  const ml::Dataset test = blobs(101, 2.5, 93);

  std::vector<double> exact(test.size()), quant(test.size());
  nn.predict_proba_batch(test.view(), exact);
  for (const std::size_t width : kWidths) {
    util::set_parallel_threads(width);
    nn.predict_proba_batch_quantized(test.view(), quant);
    expect_kernel_parity(exact, quant, 1e-3, "NN Q15");
  }
}

TEST_F(KernelParity, KernelSurvivesSerializationRoundtrip) {
  ml::RandomForest forest;
  forest.fit(blobs(100, 1.5, 59));
  const std::vector<std::uint8_t> bytes = forest.serialize();
  const ml::RandomForest copy = ml::RandomForest::deserialize(bytes);
  ASSERT_TRUE(copy.kernel().ready());  // derived artifact, rebuilt on load

  const ml::Dataset test = blobs(50, 1.5, 61);
  std::vector<double> original(test.size()), restored(test.size());
  forest.predict_proba_batch_fast(test.view(), original);
  copy.predict_proba_batch_fast(test.view(), restored);
  EXPECT_EQ(original, restored);
}

}  // namespace
}  // namespace drlhmd
