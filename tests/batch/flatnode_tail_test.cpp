// FlatNode lockstep tail coverage: the 16-lane traversal's partial-block
// handling (count < kTraversalLanes) must be bit-for-bit identical to the
// scalar row path at awkward batch sizes (1, 15, 17), over non-zero
// BatchView offsets, and in the presence of NaN/inf values (which the
// `v <= threshold ? 0 : 1` compare routes right/right/left respectively).
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "ml/decision_tree.hpp"
#include "ml/gbdt.hpp"
#include "ml/random_forest.hpp"
#include "util/rng.hpp"

namespace drlhmd {
namespace {

ml::Dataset blobs(std::size_t n_per_class, double gap, std::uint64_t seed) {
  util::Rng rng(seed);
  ml::Dataset d;
  for (std::size_t i = 0; i < n_per_class; ++i) {
    std::vector<double> benign(4), malware(4);
    for (std::size_t c = 0; c < 4; ++c) {
      benign[c] = rng.normal(0.0, 1.0);
      malware[c] = rng.normal(gap, 1.0);
    }
    d.push(std::move(benign), 0);
    d.push(std::move(malware), 1);
  }
  d.shuffle(rng);
  return d;
}

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Batch sizes around the 16-lane block: a lone row, one short of a full
/// block, and one past it (full block + 1-lane tail).
const std::size_t kTailSizes[] = {1, 15, 17};

template <typename Model>
void expect_tail_parity(const Model& model, const ml::Dataset& pool,
                        const char* what) {
  for (const std::size_t size : kTailSizes) {
    // Offset 0 and a deliberately odd non-zero base: the slice's column
    // pointers then start mid-storage, which is what the runtime's
    // mid-batch re-score path produces.
    for (const std::size_t offset : {std::size_t{0}, std::size_t{5}}) {
      ASSERT_LE(offset + size, pool.size());
      const ml::BatchView view = pool.X.view().rows_slice(offset, size);
      std::vector<double> batch(size);
      model.predict_proba_batch(view, batch);
      for (std::size_t i = 0; i < size; ++i) {
        const double row = model.predict_proba(pool.row_copy(offset + i));
        EXPECT_TRUE(same_bits(row, batch[i]))
            << what << ": size " << size << " offset " << offset << " row "
            << i << " batch=" << batch[i] << " row-path=" << row;
      }
    }
  }
}

TEST(FlatNodeTail, PartialBlocksMatchScalarPath) {
  const ml::Dataset train = blobs(150, 1.5, 71);
  const ml::Dataset pool = blobs(20, 1.5, 73);

  ml::DecisionTree tree;
  tree.fit(train);
  expect_tail_parity(tree, pool, "DT");

  ml::RandomForest forest;
  forest.fit(train);
  expect_tail_parity(forest, pool, "RF");

  ml::Gbdt gbdt;
  gbdt.fit(train);
  expect_tail_parity(gbdt, pool, "LightGBM");
}

TEST(FlatNodeTail, NanAndInfMatchScalarPathBitForBit) {
  const ml::Dataset train = blobs(150, 1.5, 79);
  ml::Dataset pool = blobs(20, 1.5, 83);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const double special = i % 3 == 0 ? nan : (i % 3 == 1 ? inf : -inf);
    pool.X.mutable_view().col(i % 4)[i] = special;
  }

  ml::DecisionTree tree;
  tree.fit(train);
  expect_tail_parity(tree, pool, "DT NaN/inf");

  ml::RandomForest forest;
  forest.fit(train);
  expect_tail_parity(forest, pool, "RF NaN/inf");

  ml::Gbdt gbdt;
  gbdt.fit(train);
  expect_tail_parity(gbdt, pool, "LightGBM NaN/inf");
}

}  // namespace
}  // namespace drlhmd
