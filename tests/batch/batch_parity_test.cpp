// Row-vs-batch exact parity for the columnar data plane.
//
// The batch-first Classifier API promises that predict_proba_batch is a
// pure vectorization: for every detector, batch scores must be bit-for-bit
// identical to calling predict_proba on each row — at any DRLHMD_THREADS
// width, over the full view, over offset row slices (non-zero view base),
// and through the runtime's pipelined batch path.  Any drift here means a
// batch override reordered floating-point work, which would silently break
// the repo-wide determinism guarantee.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "ml/model_zoo.hpp"
#include "rl/adversarial_predictor.hpp"
#include "rl/constraint_controller.hpp"
#include "rl/model_profile.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace drlhmd {
namespace {

/// Two overlapping Gaussian blobs in 4-D (the engineered feature width).
ml::Dataset blobs(std::size_t n_per_class, double gap, std::uint64_t seed) {
  util::Rng rng(seed);
  ml::Dataset d;
  for (std::size_t i = 0; i < n_per_class; ++i) {
    std::vector<double> benign(4), malware(4);
    for (std::size_t c = 0; c < 4; ++c) {
      benign[c] = rng.normal(0.0, 1.0);
      malware[c] = rng.normal(gap, 1.0);
    }
    d.push(std::move(benign), 0);
    d.push(std::move(malware), 1);
  }
  d.shuffle(rng);
  return d;
}

/// Bitwise equality of doubles (NaN-safe, -0.0 != +0.0 on purpose: the
/// parity claim is "same bits", not "same value").
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(same_bits(a[i], b[i]))
        << what << ": row " << i << " batch=" << b[i] << " row-path=" << a[i];
}

const std::vector<std::size_t> kWidths = {1, 2, 8};

class BatchParity : public ::testing::TestWithParam<ml::ModelKind> {
 protected:
  void TearDown() override { util::set_parallel_threads(saved_); }

 private:
  std::size_t saved_ = util::parallel_thread_count();
};

TEST_P(BatchParity, BatchMatchesRowPathBitForBit) {
  auto model = ml::make_model(GetParam());
  model->fit(blobs(150, 1.5, 17));
  const ml::Dataset test = blobs(101, 1.5, 91);  // odd count: partial block

  std::vector<double> row_scores(test.size());
  for (std::size_t i = 0; i < test.size(); ++i)
    row_scores[i] = model->predict_proba(test.row_copy(i));

  for (const std::size_t width : kWidths) {
    util::set_parallel_threads(width);
    std::vector<double> batch_scores(test.size());
    model->predict_proba_batch(test.view(), batch_scores);
    expect_bitwise_equal(row_scores, batch_scores, model->name().c_str());
  }
}

TEST_P(BatchParity, OffsetSlicesMatchRowPathBitForBit) {
  auto model = ml::make_model(GetParam());
  model->fit(blobs(120, 1.5, 23));
  const ml::Dataset test = blobs(80, 1.5, 29);

  // Slices with non-zero base exercise the (base + begin, stride) indexing
  // that the runtime's mid-batch re-score path depends on.
  const struct {
    std::size_t begin, count;
  } slices[] = {{0, 37}, {1, 64}, {33, 127}, {159, 1}, {7, 0}};
  for (const auto& s : slices) {
    std::vector<double> row_scores(s.count);
    for (std::size_t i = 0; i < s.count; ++i)
      row_scores[i] = model->predict_proba(test.row_copy(s.begin + i));
    std::vector<double> batch_scores(s.count);
    model->predict_proba_batch(test.view().rows_slice(s.begin, s.count),
                               batch_scores);
    expect_bitwise_equal(row_scores, batch_scores, model->name().c_str());
  }
}

TEST_P(BatchParity, OutSizeMismatchThrows) {
  auto model = ml::make_model(GetParam());
  model->fit(blobs(60, 2.0, 31));
  const ml::Dataset test = blobs(10, 2.0, 37);
  std::vector<double> wrong(test.size() + 1);
  EXPECT_THROW(model->predict_proba_batch(test.view(), wrong),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllModels, BatchParity,
                         ::testing::Values(ml::ModelKind::kRf,
                                           ml::ModelKind::kDt,
                                           ml::ModelKind::kLr,
                                           ml::ModelKind::kMlp,
                                           ml::ModelKind::kLightGbm,
                                           ml::ModelKind::kNn),
                         [](const auto& info) {
                           switch (info.param) {
                             case ml::ModelKind::kRf: return "RF";
                             case ml::ModelKind::kDt: return "DT";
                             case ml::ModelKind::kLr: return "LR";
                             case ml::ModelKind::kMlp: return "MLP";
                             case ml::ModelKind::kLightGbm: return "LightGBM";
                             case ml::ModelKind::kNn: return "NN";
                           }
                           return "unknown";
                         });

// ------------------------------------------------- RL batch consumers --

class RlBatchParity : public ::testing::Test {
 protected:
  void TearDown() override { util::set_parallel_threads(saved_); }

 private:
  std::size_t saved_ = util::parallel_thread_count();
};

TEST_F(RlBatchParity, PredictorFeedbackRewardBatchMatchesRowPath) {
  const ml::Dataset adversarial = blobs(40, 3.0, 41);
  const ml::Dataset legitimate = blobs(40, 0.5, 43);
  rl::AdversarialPredictorConfig cfg;
  cfg.epochs = 2;
  rl::AdversarialPredictor predictor(4, cfg);
  predictor.train(adversarial, legitimate);

  const ml::Dataset probe = blobs(33, 1.0, 47);
  std::vector<double> row_rewards(probe.size());
  std::vector<std::uint8_t> row_flags(probe.size());
  for (std::size_t i = 0; i < probe.size(); ++i) {
    const std::vector<double> row = probe.row_copy(i);
    row_rewards[i] = predictor.feedback_reward(row);
    row_flags[i] = predictor.is_adversarial(row) ? 1 : 0;
  }
  for (const std::size_t width : kWidths) {
    util::set_parallel_threads(width);
    std::vector<double> batch_rewards(probe.size());
    predictor.feedback_reward_batch(probe.view(), batch_rewards);
    expect_bitwise_equal(row_rewards, batch_rewards, "predictor");
    std::vector<std::uint8_t> batch_flags(probe.size());
    predictor.is_adversarial_batch(probe.view(), batch_flags);
    EXPECT_EQ(row_flags, batch_flags);
  }
}

TEST_F(RlBatchParity, ControllerPredictBatchMatchesRowPath) {
  const ml::Dataset train = blobs(150, 2.0, 53);
  auto models = ml::make_classical_models();
  std::vector<ml::Classifier*> raw;
  std::vector<rl::ModelProfile> profiles;
  for (auto& m : models) {
    m->fit(train);
    raw.push_back(m.get());
    profiles.push_back(rl::profile_model(*m, train));
  }
  rl::ConstraintControllerConfig cfg;
  cfg.training_epochs = 1;
  rl::ConstraintController controller(raw, profiles, cfg);
  controller.train(train);

  const ml::Dataset probe = blobs(60, 2.0, 59);
  std::vector<int> row_preds(probe.size());
  for (std::size_t i = 0; i < probe.size(); ++i)
    row_preds[i] = controller.predict(probe.row_copy(i));
  for (const std::size_t width : kWidths) {
    util::set_parallel_threads(width);
    std::vector<int> batch_preds(probe.size());
    controller.predict_batch(probe.view(), batch_preds);
    EXPECT_EQ(row_preds, batch_preds);
  }
}

}  // namespace
}  // namespace drlhmd
