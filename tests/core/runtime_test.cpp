#include "core/runtime.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "obs/telemetry.hpp"

namespace drlhmd::core {
namespace {

FrameworkConfig runtime_config() {
  FrameworkConfig cfg;
  cfg.corpus.benign_apps = 80;
  cfg.corpus.malware_apps = 80;
  cfg.corpus.windows_per_app = 4;
  return cfg;
}

/// Expensive pipeline shared across the suite.
class RuntimeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    framework_ = new Framework(runtime_config());
    framework_->run_all();
  }
  static void TearDownTestSuite() {
    delete framework_;
    framework_ = nullptr;
  }
  static Framework* framework_;
};

Framework* RuntimeFixture::framework_ = nullptr;

TEST(RuntimeConstructionTest, RequiresTrainedPipeline) {
  Framework fresh(runtime_config());
  EXPECT_THROW(DetectionRuntime{fresh}, std::logic_error);
}

TEST(VerdictNameTest, AllNamed) {
  EXPECT_EQ(verdict_name(TrafficVerdict::kBenign), "benign");
  EXPECT_EQ(verdict_name(TrafficVerdict::kMalware), "malware");
  EXPECT_EQ(verdict_name(TrafficVerdict::kAdversarialMalware),
            "adversarial-malware");
  EXPECT_EQ(verdict_name(TrafficVerdict::kDropped), "dropped");
}

TEST_F(RuntimeFixture, FlagsAdversarialTraffic) {
  DetectionRuntime runtime(*framework_);
  std::size_t flagged = 0;
  const auto& adv = framework_->adversarial_test();
  for (const auto& row : adv.rows_copy())
    flagged += runtime.process(row) == TrafficVerdict::kAdversarialMalware ? 1 : 0;
  EXPECT_GT(static_cast<double>(flagged) / static_cast<double>(adv.size()), 0.9);
  EXPECT_EQ(runtime.stats().adversarial, flagged);
  EXPECT_EQ(runtime.quarantine_size(), flagged);
}

TEST_F(RuntimeFixture, RoutesLegitimateTrafficToDetectors) {
  DetectionRuntime runtime(*framework_);
  const auto& test = framework_->test_set();
  std::size_t correct = 0, routed = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const TrafficVerdict v = runtime.process(test.row_copy(i));
    if (v == TrafficVerdict::kAdversarialMalware) continue;  // predictor FP
    ++routed;
    const int pred = v == TrafficVerdict::kMalware ? 1 : 0;
    correct += pred == test.y[i] ? 1 : 0;
  }
  ASSERT_GT(routed, test.size() / 2);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(routed), 0.8);
}

TEST_F(RuntimeFixture, ProcessStreamReportsMetrics) {
  DetectionRuntime runtime(*framework_);
  const auto m = runtime.process_stream(framework_->attacked_test_mix());
  // Adversarial verdicts count as malware: detection on the attacked mix
  // should be strong (predictor + defended models).
  EXPECT_GT(m.f1, 0.85);
  EXPECT_EQ(runtime.stats().processed, framework_->attacked_test_mix().size());
}

TEST_F(RuntimeFixture, BatchVerdictsMatchSequentialProcess) {
  const auto& mix = framework_->attacked_test_mix();
  DetectionRuntime sequential(*framework_);
  std::vector<TrafficVerdict> expected;
  expected.reserve(mix.size());
  for (const auto& row : mix.rows_copy()) expected.push_back(sequential.process(row));

  DetectionRuntime batched(*framework_);
  const std::vector<TrafficVerdict> got = batched.process_batch(mix.X.view());
  EXPECT_EQ(got, expected);
  EXPECT_EQ(batched.stats().processed, sequential.stats().processed);
  EXPECT_EQ(batched.stats().adversarial, sequential.stats().adversarial);
  EXPECT_EQ(batched.stats().malware, sequential.stats().malware);
  EXPECT_EQ(batched.stats().benign, sequential.stats().benign);
}

TEST_F(RuntimeFixture, BatchTallyReportsPerBatchVerdictDeltas) {
  const auto& mix = framework_->attacked_test_mix();
  DetectionRuntime runtime(*framework_);
  const std::size_t n = std::min<std::size_t>(mix.size(), 32);
  std::vector<TrafficVerdict> verdicts(n);
  const BatchOutcome outcome =
      runtime.process_batch_tally(mix.X.view().rows_slice(0, n),
                                  std::span<TrafficVerdict>(verdicts));
  // The tally is the per-batch delta of the registry counters, so it must
  // agree exactly with the verdicts written into the span.
  std::size_t benign = 0, malware = 0, adversarial = 0;
  for (const TrafficVerdict v : verdicts) {
    benign += v == TrafficVerdict::kBenign ? 1 : 0;
    malware += v == TrafficVerdict::kMalware ? 1 : 0;
    adversarial += v == TrafficVerdict::kAdversarialMalware ? 1 : 0;
  }
  EXPECT_EQ(outcome.benign, benign);
  EXPECT_EQ(outcome.malware, malware);
  EXPECT_EQ(outcome.adversarial, adversarial);
  EXPECT_EQ(outcome.benign + outcome.malware + outcome.adversarial, n);

  // A second batch tallies only its own rows, not the running totals.
  const BatchOutcome again =
      runtime.process_batch_tally(mix.X.view().rows_slice(0, n),
                                  std::span<TrafficVerdict>(verdicts));
  EXPECT_EQ(again.benign + again.malware + again.adversarial, n);
  EXPECT_EQ(runtime.stats().processed, 2 * n);
}

TEST_F(RuntimeFixture, IntegrityValidationPasses) {
  DetectionRuntime runtime(*framework_);
  EXPECT_TRUE(runtime.validate_integrity());
  EXPECT_EQ(runtime.stats().integrity_checks, 1u);
  EXPECT_EQ(runtime.stats().integrity_alarms, 0u);
}

TEST_F(RuntimeFixture, PeriodicIntegrityChecksFire) {
  RuntimeConfig cfg;
  cfg.integrity_check_period = 10;
  cfg.retrain_threshold = 0;
  DetectionRuntime runtime(*framework_, cfg);
  const auto& test = framework_->test_set();
  for (std::size_t i = 0; i < 35 && i < test.size(); ++i)
    runtime.process(test.row_copy(i));
  EXPECT_GE(runtime.stats().integrity_checks, 3u);
}

TEST_F(RuntimeFixture, AdaptiveRetrainingTriggersAndResetsQuarantine) {
  RuntimeConfig cfg;
  cfg.retrain_threshold = 25;
  cfg.integrity_check_period = 0;
  DetectionRuntime runtime(*framework_, cfg);
  const auto& adv = framework_->adversarial_test();
  for (std::size_t i = 0; i < 30 && i < adv.size(); ++i)
    runtime.process(adv.row_copy(i));
  EXPECT_GE(runtime.stats().retrains, 1u);
  EXPECT_LT(runtime.quarantine_size(), 25u);
  // After the retrain the defended models stay functional and vaulted.
  EXPECT_TRUE(runtime.validate_integrity());
}

TEST_F(RuntimeFixture, StatsViewMatchesRegistryCounters) {
  DetectionRuntime runtime(*framework_);
  runtime.process_stream(framework_->attacked_test_mix());
  runtime.validate_integrity();

  const RuntimeStats stats = runtime.stats();
  const obs::MetricsSnapshot snap = runtime.metrics().snapshot();
  const auto counter = [&snap](const char* name, const obs::Labels& labels) {
    const auto* sample = snap.find_counter(name, labels);
    return sample != nullptr ? sample->value : std::uint64_t{0};
  };
  EXPECT_EQ(counter("drlhmd.runtime.processed", {}), stats.processed);
  EXPECT_EQ(counter("drlhmd.runtime.verdicts", {{"verdict", "benign"}}),
            stats.benign);
  EXPECT_EQ(counter("drlhmd.runtime.verdicts", {{"verdict", "malware"}}),
            stats.malware);
  EXPECT_EQ(counter("drlhmd.runtime.verdicts", {{"verdict", "adversarial"}}),
            stats.adversarial);
  EXPECT_EQ(counter("drlhmd.runtime.integrity.checks", {}),
            stats.integrity_checks);
  EXPECT_EQ(counter("drlhmd.runtime.retrains", {}), stats.retrains);
  // Every processed sample got exactly one verdict.
  EXPECT_EQ(stats.benign + stats.malware + stats.adversarial, stats.processed);
  // Quarantine size is surfaced as a gauge off the same registry.
  const auto* quarantine = snap.find_gauge("drlhmd.runtime.quarantine_size");
  ASSERT_NE(quarantine, nullptr);
  EXPECT_DOUBLE_EQ(quarantine->value,
                   static_cast<double>(runtime.quarantine_size()));
}

TEST_F(RuntimeFixture, StageLatencyHistogramsRecordWhenTelemetryEnabled) {
  obs::Telemetry::set_enabled(true);
  DetectionRuntime runtime(*framework_);
  const auto& mix = framework_->attacked_test_mix();
  const std::size_t n = std::min<std::size_t>(mix.size(), 40);
  for (std::size_t i = 0; i < n; ++i) runtime.process(mix.row_copy(i));
  obs::Telemetry::set_enabled(false);

  const obs::MetricsSnapshot snap = runtime.metrics().snapshot();
  const auto* total = snap.find_histogram("drlhmd.runtime.stage_latency_us",
                                          {{"stage", "total"}});
  const auto* predictor = snap.find_histogram("drlhmd.runtime.stage_latency_us",
                                              {{"stage", "predictor"}});
  ASSERT_NE(total, nullptr);
  ASSERT_NE(predictor, nullptr);
  EXPECT_EQ(total->data.count, n);
  EXPECT_EQ(predictor->data.count, n);
  EXPECT_LE(total->data.p50, total->data.p95);
  EXPECT_LE(total->data.p95, total->data.p99);
  EXPECT_GT(total->data.max, 0.0);

  // With telemetry off, further samples bump counters but not histograms.
  runtime.process(mix.row_copy(0));
  const auto after = runtime.metrics().snapshot();
  EXPECT_EQ(after.find_histogram("drlhmd.runtime.stage_latency_us",
                                 {{"stage", "total"}})
                ->data.count,
            n);
  EXPECT_EQ(after.find_counter("drlhmd.runtime.processed")->value, n + 1);
}

TEST_F(RuntimeFixture, IncrementalUpdateRejectsBenignLabels) {
  ml::Dataset bogus;
  bogus.push({0.0, 0.0, 0.0, 0.0}, 0);
  EXPECT_THROW(framework_->incremental_defense_update(bogus),
               std::invalid_argument);
  // Empty update is a no-op.
  EXPECT_NO_THROW(framework_->incremental_defense_update(ml::Dataset{}));
}

}  // namespace
}  // namespace drlhmd::core
