// Integration tests over the full multi-phase pipeline with a reduced
// corpus.  These assert the paper's qualitative findings end-to-end:
// attacks succeed and degrade detection, the predictor separates
// adversarial traffic, adversarial training restores detection, and the
// constraint agents specialize.
#include "core/framework.hpp"

#include <gtest/gtest.h>

namespace drlhmd::core {
namespace {

FrameworkConfig small_config() {
  FrameworkConfig cfg;
  cfg.corpus.benign_apps = 90;
  cfg.corpus.malware_apps = 90;
  cfg.corpus.windows_per_app = 4;
  return cfg;
}

/// Shared fixture: the pipeline is expensive, so run it once per suite.
class FrameworkPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    framework_ = new Framework(small_config());
    framework_->run_all();
  }
  static void TearDownTestSuite() {
    delete framework_;
    framework_ = nullptr;
  }

  static Framework* framework_;
};

Framework* FrameworkPipeline::framework_ = nullptr;

TEST(FrameworkPhaseOrderTest, PhasesEnforcePrerequisites) {
  Framework fw(small_config());
  EXPECT_THROW(fw.engineer_features(), std::logic_error);
  EXPECT_THROW(fw.train_baselines(), std::logic_error);
  EXPECT_THROW(fw.generate_attacks(), std::logic_error);
  EXPECT_THROW(fw.train_predictor(), std::logic_error);
  EXPECT_THROW(fw.train_defenses(), std::logic_error);
  EXPECT_THROW(fw.train_controllers(), std::logic_error);
  EXPECT_THROW(fw.protect_models(), std::logic_error);
  EXPECT_THROW(fw.evaluate_scenarios(), std::logic_error);
  EXPECT_THROW(fw.corpus(), std::logic_error);
}

TEST(FrameworkConfigTest, Validation) {
  FrameworkConfig cfg;
  cfg.top_k_features = 0;
  EXPECT_THROW(Framework{cfg}, std::invalid_argument);
}

TEST_F(FrameworkPipeline, FeatureEngineeringSelectsPaperFeatures) {
  const auto& names = framework_->selected_feature_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "LLC-load-misses");
  EXPECT_EQ(names[1], "LLC-loads");
  EXPECT_EQ(names[2], "cache-misses");
  EXPECT_EQ(names[3], "cache-references");
  EXPECT_EQ(framework_->train_set().num_features(), 4u);
}

TEST_F(FrameworkPipeline, SplitsFollowPaperProtocol) {
  const std::size_t total = framework_->train_set().size() +
                            framework_->val_set().size() +
                            framework_->test_set().size();
  // 80:20 then 80:20 -> 64% / 16% / 20%.
  EXPECT_NEAR(static_cast<double>(framework_->train_set().size()) /
                  static_cast<double>(total),
              0.64, 0.02);
  EXPECT_NEAR(static_cast<double>(framework_->test_set().size()) /
                  static_cast<double>(total),
              0.20, 0.02);
}

TEST_F(FrameworkPipeline, FeaturesAreStandardScaled) {
  const auto& train = framework_->train_set();
  for (std::size_t c = 0; c < train.num_features(); ++c) {
    double sum = 0.0, sum_sq = 0.0;
    for (const auto& row : train.rows_copy()) {
      sum += row[c];
      sum_sq += row[c] * row[c];
    }
    const double n = static_cast<double>(train.size());
    EXPECT_NEAR(sum / n, 0.0, 1e-6);
    EXPECT_NEAR(sum_sq / n, 1.0, 1e-6);
  }
}

TEST_F(FrameworkPipeline, BaselinesDetectMalware) {
  for (const auto& model : framework_->baseline_models()) {
    const auto m = model->evaluate(framework_->test_set());
    EXPECT_GT(m.f1, 0.70) << model->name();
    EXPECT_GT(m.auc, 0.75) << model->name();
  }
}

TEST_F(FrameworkPipeline, AttackSucceedsAgainstSurrogate) {
  const auto report = framework_->attack_report();
  EXPECT_GT(report.attempted, 0u);
  EXPECT_GT(report.success_rate, 0.95);  // paper: 100%
}

TEST_F(FrameworkPipeline, AttackDegradesDetectors) {
  const auto rows = framework_->evaluate_scenarios();
  ASSERT_EQ(rows.size(), 6u);
  // At least one tree-based detector collapses hard (paper: RF/LightGBM to
  // F1 ~0.1-0.2), and on average detection drops substantially.
  double min_adv_f1 = 1.0, mean_drop = 0.0;
  for (const auto& row : rows) {
    min_adv_f1 = std::min(min_adv_f1, row.adversarial.f1);
    mean_drop += row.regular.f1 - row.adversarial.f1;
  }
  mean_drop /= static_cast<double>(rows.size());
  EXPECT_LT(min_adv_f1, 0.35);
  EXPECT_GT(mean_drop, 0.2);
}

TEST_F(FrameworkPipeline, AdversarialTrainingRestoresDetection) {
  for (const auto& row : framework_->evaluate_scenarios()) {
    if (row.model == "NN") continue;  // the paper's NN fails here too
    EXPECT_GT(row.defended.f1, row.adversarial.f1) << row.model;
    EXPECT_GT(row.defended.f1, 0.8) << row.model;
    // Defended TPR is high (paper: 0.88-0.97).
    EXPECT_GT(row.defended.tpr, 0.85) << row.model;
  }
}

TEST_F(FrameworkPipeline, PredictorSeparatesAdversarialTraffic) {
  const auto m = framework_->evaluate_predictor();
  EXPECT_GT(m.accuracy, 0.9);
  EXPECT_GT(m.f1, 0.85);
  EXPECT_GT(m.auc, 0.95);
}

TEST_F(FrameworkPipeline, RewardTraceIsStepShaped) {
  const auto trace = framework_->predictor_reward_trace();
  const std::size_t n_adv = framework_->adversarial_test().size();
  ASSERT_EQ(trace.size(), n_adv + framework_->test_set().size());
  double adv_mean = 0.0, legit_mean = 0.0;
  for (std::size_t i = 0; i < n_adv; ++i) adv_mean += trace[i];
  for (std::size_t i = n_adv; i < trace.size(); ++i) legit_mean += trace[i];
  adv_mean /= static_cast<double>(n_adv);
  legit_mean /= static_cast<double>(trace.size() - n_adv);
  EXPECT_GT(adv_mean, legit_mean + 30.0);
}

TEST_F(FrameworkPipeline, MergedTrainContainsAllThreeClasses) {
  const auto& merged = framework_->merged_train();
  EXPECT_EQ(merged.size(), framework_->train_set().size() +
                               framework_->adversarial_train().size());
  EXPECT_GT(framework_->adversarial_train().size(), 0u);
}

TEST_F(FrameworkPipeline, ControllersSpecialize) {
  const auto& fast = framework_->controller(rl::ConstraintPolicy::kFastInference);
  const auto& small = framework_->controller(rl::ConstraintPolicy::kSmallMemory);
  const auto& strong = framework_->controller(rl::ConstraintPolicy::kBestDetection);

  // The detection agent's routed F1 beats or matches the cheap agents'.
  const auto& mix = framework_->attacked_test_mix();
  const double f1_strong = strong.evaluate(mix).f1;
  EXPECT_GT(f1_strong, 0.8);
  EXPECT_GE(f1_strong + 1e-9, fast.evaluate(mix).f1 - 0.05);

  // The cheap agents pick models no slower/larger than the strong agent's.
  EXPECT_LE(fast.profile(fast.selected_model()).latency_us,
            strong.profile(strong.selected_model()).latency_us + 1e-9);
  EXPECT_LE(small.profile(small.selected_model()).memory_bytes,
            strong.profile(strong.selected_model()).memory_bytes);
}

TEST_F(FrameworkPipeline, VaultProtectsDeployedModels) {
  auto& vault = framework_->vault();
  EXPECT_EQ(vault.size(), framework_->defended_models().size());
  for (const auto& model : framework_->defended_models()) {
    EXPECT_EQ(vault.verify(model->name(), model->serialize()),
              integrity::VerificationStatus::kIntact);
  }
  // Tampered bytes are caught.
  auto bytes = framework_->defended_models()[0]->serialize();
  bytes[bytes.size() - 1] ^= 0xFF;
  EXPECT_EQ(vault.verify(framework_->defended_models()[0]->name(), bytes),
            integrity::VerificationStatus::kTampered);
}

TEST_F(FrameworkPipeline, MetricMonitorAcceptsUnmodifiedModels) {
  auto& monitor = framework_->metric_monitor();
  for (const auto& model : framework_->defended_models()) {
    const auto report = monitor.assess(*model, framework_->defense_val_mix());
    EXPECT_FALSE(report.deviated) << model->name();
  }
}

TEST(FrameworkModesTest, MutualInfoModeSelectsKFeatures) {
  FrameworkConfig cfg = small_config();
  cfg.corpus.benign_apps = 30;
  cfg.corpus.malware_apps = 30;
  cfg.feature_mode = FeatureSelectionMode::kMutualInfo;
  cfg.top_k_features = 6;
  Framework fw(cfg);
  fw.acquire_data();
  fw.engineer_features();
  EXPECT_EQ(fw.selected_feature_names().size(), 6u);
  EXPECT_EQ(fw.train_set().num_features(), 6u);
}

}  // namespace
}  // namespace drlhmd::core
