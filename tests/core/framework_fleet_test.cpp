// Framework fleet mode: the out-of-core acquire/engineer path over a
// sharded corpus directory, interruption semantics, and checkpoint
// manifests carrying the fleet configuration (format v2).
#include "core/framework.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>

namespace drlhmd::core {
namespace {

std::string fresh_dir(const std::string& leaf) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / leaf).string();
  std::filesystem::remove_all(dir);
  return dir;
}

FrameworkConfig fleet_config(const std::string& shard_dir) {
  FrameworkConfig cfg;
  cfg.corpus.benign_apps = 45;
  cfg.corpus.malware_apps = 45;
  cfg.corpus.windows_per_app = 2;
  cfg.fleet.out_dir = shard_dir;
  cfg.fleet.shards = 3;
  cfg.fleet.profiles = {"testbed-i7", "embedded-small"};
  return cfg;
}

TEST(FrameworkFleetTest, AcquireEngineerTrainOverShardDirectory) {
  Framework fw(fleet_config(fresh_dir("fw-fleet")));
  ASSERT_TRUE(fw.fleet_mode());
  fw.acquire_data();
  fw.engineer_features();

  // Same engineered space as the in-RAM path: the paper's 4 features,
  // standard-scaled, split 64/16/20.
  const auto& names = fw.selected_feature_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "LLC-load-misses");
  EXPECT_EQ(fw.train_set().num_features(), 4u);
  const std::size_t total =
      fw.train_set().size() + fw.val_set().size() + fw.test_set().size();
  EXPECT_GT(total, 0u);
  EXPECT_LE(total, 90u * 2u);  // clean() may drop rows, never add them

  // Downstream phases consume the fleet-engineered splits unchanged.
  fw.train_baselines();
  EXPECT_FALSE(fw.baseline_models().empty());
}

TEST(FrameworkFleetTest, InterruptedFleetBuildMustBeResumed) {
  const std::string dir = fresh_dir("fw-fleet-interrupt");
  FrameworkConfig cfg = fleet_config(dir);
  cfg.fleet.limit_shards = 1;
  Framework fw(cfg);
  // One shard of three lands on disk; the phase refuses to complete.
  EXPECT_THROW(fw.acquire_data(), std::logic_error);
  EXPECT_THROW(fw.engineer_features(), std::logic_error);

  // A framework without the limit resumes the remaining shards.
  Framework resumed(fleet_config(dir));
  resumed.acquire_data();
  resumed.engineer_features();
  EXPECT_EQ(resumed.train_set().num_features(), 4u);
}

TEST(FrameworkFleetTest, CheckpointCarriesFleetConfig) {
  const std::string shard_dir = fresh_dir("fw-fleet-ckpt-shards");
  const std::string ckpt_dir = fresh_dir("fw-fleet-ckpt");
  Framework fw(fleet_config(shard_dir));
  fw.acquire_data();
  fw.engineer_features();
  fw.save_checkpoint(ckpt_dir);

  // resume() reads config from the manifest (v2 appends the fleet
  // fields), reopens the shard directory for anything it needs, and
  // restores the engineered splits.
  Framework restored = Framework::resume(ckpt_dir);
  EXPECT_TRUE(restored.fleet_mode());
  EXPECT_EQ(restored.selected_feature_names(), fw.selected_feature_names());
  EXPECT_EQ(restored.train_set().size(), fw.train_set().size());
  EXPECT_EQ(restored.test_set().size(), fw.test_set().size());
}

}  // namespace
}  // namespace drlhmd::core
