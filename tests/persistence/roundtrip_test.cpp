// serialize -> deserialize -> serialize byte-equality for every persistable
// component: the six detectors (through the polymorphic loader), the A2C
// agent, the adversarial predictor, the UCB bandit and the three constraint
// controllers, the fitted scaler, datasets, corpus, vault, and monitor.
// Byte equality is the strongest round-trip statement: a restored object
// cannot differ in any serialized state from the original.
#include <gtest/gtest.h>

#include "integrity/metric_monitor.hpp"
#include "integrity/model_vault.hpp"
#include "ml/model_zoo.hpp"
#include "ml/preprocess.hpp"
#include "rl/a2c.hpp"
#include "rl/adversarial_predictor.hpp"
#include "rl/constraint_controller.hpp"
#include "rl/ucb.hpp"
#include "sim/dataset_builder.hpp"
#include "util/rng.hpp"

namespace drlhmd {
namespace {

/// Two separable Gaussian blobs in 4-D (the engineered feature width).
ml::Dataset blobs(std::size_t n_per_class, double gap = 3.0,
                  std::uint64_t seed = 5) {
  util::Rng rng(seed);
  ml::Dataset d;
  d.feature_names = {"f0", "f1", "f2", "f3"};
  for (std::size_t i = 0; i < n_per_class; ++i) {
    std::vector<double> benign(4), malware(4);
    for (std::size_t c = 0; c < 4; ++c) {
      benign[c] = rng.normal(0.0, 1.0);
      malware[c] = rng.normal(gap, 1.0);
    }
    d.push(std::move(benign), 0);
    d.push(std::move(malware), 1);
  }
  d.shuffle(rng);
  return d;
}

// ------------------------------------------------------- Six detectors --

class DetectorRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DetectorRoundTrip, SerializeDeserializeSerializeIsByteIdentical) {
  auto models = ml::make_all_models(11);
  ASSERT_LT(GetParam(), models.size());
  auto& model = models[GetParam()];
  const ml::Dataset train = blobs(60);
  model->fit(train);

  const std::vector<std::uint8_t> first = model->serialize();
  EXPECT_FALSE(ml::classifier_magic(first).empty());
  const std::unique_ptr<ml::Classifier> restored = ml::load_classifier(first);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->name(), model->name());
  EXPECT_TRUE(restored->trained());
  EXPECT_EQ(restored->serialize(), first);

  // The restored model must also score identically.
  const ml::Dataset probe = blobs(20, 3.0, 77);
  for (const auto& row : probe.rows_copy())
    EXPECT_EQ(restored->predict_proba(row), model->predict_proba(row));
}

INSTANTIATE_TEST_SUITE_P(AllSixModels, DetectorRoundTrip,
                         ::testing::Range<std::size_t>(0, 6));

TEST(DetectorRoundTrip, LoadClassifierRejectsGarbage) {
  const std::vector<std::uint8_t> garbage = {'X', 'X', 'X', 'X'};
  EXPECT_ANY_THROW(ml::load_classifier(garbage));
  EXPECT_ANY_THROW(ml::load_classifier({}));
}

TEST(DetectorRoundTrip, TruncatedModelBytesThrow) {
  auto models = ml::make_all_models(11);
  const ml::Dataset train = blobs(40);
  for (auto& model : models) {
    model->fit(train);
    const auto bytes = model->serialize();
    // Cut at a spread of points including just-short-of-complete.
    for (const std::size_t cut :
         {std::size_t{0}, std::size_t{3}, bytes.size() / 2, bytes.size() - 1}) {
      std::vector<std::uint8_t> truncated(
          bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut));
      EXPECT_ANY_THROW(ml::load_classifier(truncated))
          << model->name() << " cut at " << cut;
    }
  }
}

// ----------------------------------------------------------- RL agents --

TEST(A2CRoundTrip, ByteIdenticalAfterTraining) {
  rl::A2CConfig cfg;
  cfg.hidden = {8, 8};
  rl::A2C agent(4, 2, cfg);
  util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> obs = {rng.normal(), rng.normal(), rng.normal(),
                                     rng.normal()};
    agent.update(obs, rng.next() % 2, obs[0] > 0 ? 1.0 : 0.0, 0.0, true);
  }
  const auto first = agent.serialize();
  const rl::A2C restored = rl::A2C::deserialize(first);
  EXPECT_EQ(restored.serialize(), first);
  EXPECT_EQ(restored.observation_size(), 4u);
  EXPECT_EQ(restored.action_count(), 2u);
  const std::vector<double> probe = {0.5, -0.5, 1.0, 0.0};
  EXPECT_EQ(restored.value(probe), agent.value(probe));
  EXPECT_EQ(restored.policy(probe), agent.policy(probe));
}

TEST(PredictorRoundTrip, ByteIdenticalAndSameRewards) {
  rl::AdversarialPredictorConfig cfg;
  cfg.a2c.hidden = {8, 8};
  cfg.epochs = 2;
  rl::AdversarialPredictor predictor(4, cfg);
  predictor.train(blobs(30, 4.0, 21), blobs(30, 0.5, 22));

  const auto first = predictor.serialize();
  const rl::AdversarialPredictor restored =
      rl::AdversarialPredictor::deserialize(first);
  EXPECT_EQ(restored.serialize(), first);
  EXPECT_TRUE(restored.trained());
  const ml::Dataset probe = blobs(10, 4.0, 23);
  for (const auto& row : probe.rows_copy()) {
    EXPECT_EQ(restored.feedback_reward(row), predictor.feedback_reward(row));
    EXPECT_EQ(restored.is_adversarial(row), predictor.is_adversarial(row));
  }
}

TEST(UcbRoundTrip, ByteIdenticalWithLearnedState) {
  rl::UcbBandit bandit(5);
  util::Rng rng(9);
  for (int i = 0; i < 200; ++i)
    bandit.update(rng.next() % 5, rng.uniform());
  const auto first = bandit.serialize();
  const rl::UcbBandit restored = rl::UcbBandit::deserialize(first);
  EXPECT_EQ(restored.serialize(), first);
  EXPECT_EQ(restored.select(), bandit.select());
  EXPECT_EQ(restored.total_pulls(), bandit.total_pulls());
}

// ---------------------------------------------- Constraint controllers --

class ControllerRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    train_ = blobs(60);
    all_models_ = ml::make_all_models(13);
    for (std::size_t i = 0; i + 1 < all_models_.size(); ++i) {
      all_models_[i]->fit(train_);
      classical_.push_back(all_models_[i].get());
    }
    profiles_ = rl::profile_models(classical_, train_);
  }

  ml::Dataset train_;
  std::vector<std::unique_ptr<ml::Classifier>> all_models_;
  std::vector<ml::Classifier*> classical_;
  std::vector<rl::ModelProfile> profiles_;
};

TEST_F(ControllerRoundTrip, AllThreePoliciesByteIdentical) {
  for (const rl::ConstraintPolicy policy :
       {rl::ConstraintPolicy::kFastInference, rl::ConstraintPolicy::kSmallMemory,
        rl::ConstraintPolicy::kBestDetection}) {
    rl::ConstraintControllerConfig cfg;
    cfg.policy = policy;
    cfg.training_epochs = 2;
    rl::ConstraintController controller(classical_, profiles_, cfg);
    controller.train(train_);

    const auto first = controller.serialize();
    const rl::ConstraintController restored =
        rl::ConstraintController::deserialize(first, classical_);
    EXPECT_EQ(restored.serialize(), first)
        << rl::policy_name(policy);
    EXPECT_EQ(restored.selected_model(), controller.selected_model());
    for (std::size_t arm = 0; arm < classical_.size(); ++arm)
      EXPECT_EQ(restored.constraint_score(arm), controller.constraint_score(arm));
    const std::vector<double> probe = train_.row_copy(0);
    EXPECT_EQ(restored.predict(probe), controller.predict(probe));
  }
}

TEST_F(ControllerRoundTrip, RejectsMisalignedModels) {
  rl::ConstraintController controller(classical_, profiles_, {});
  const auto bytes = controller.serialize();
  // Wrong count.
  std::vector<ml::Classifier*> fewer(classical_.begin(), classical_.end() - 1);
  EXPECT_ANY_THROW(rl::ConstraintController::deserialize(bytes, fewer));
  // Wrong order (names no longer align with the stored profiles).
  std::vector<ml::Classifier*> swapped = classical_;
  std::swap(swapped[0], swapped[1]);
  EXPECT_ANY_THROW(rl::ConstraintController::deserialize(bytes, swapped));
}

// ----------------------------------------------- Data + preprocessing --

TEST(DatasetRoundTrip, ByteIdentical) {
  const ml::Dataset data = blobs(25);
  const auto first = data.serialize();
  const ml::Dataset restored = ml::Dataset::deserialize(first);
  EXPECT_EQ(restored.serialize(), first);
  EXPECT_EQ(restored.X, data.X);
  EXPECT_EQ(restored.y, data.y);
  EXPECT_EQ(restored.feature_names, data.feature_names);
}

TEST(ScalerRoundTrip, ByteIdenticalAndSameTransforms) {
  ml::StandardScaler scaler;
  const ml::Dataset data = blobs(30);
  scaler.fit(data);
  const auto first = scaler.serialize();
  const ml::StandardScaler restored = ml::StandardScaler::deserialize(first);
  EXPECT_EQ(restored.serialize(), first);
  const ml::Dataset a = scaler.transform(data);
  const ml::Dataset b = restored.transform(data);
  EXPECT_EQ(a.X, b.X);
}

TEST(CorpusRoundTrip, ByteIdentical) {
  sim::CorpusConfig cfg;
  cfg.benign_apps = 3;
  cfg.malware_apps = 3;
  cfg.windows_per_app = 2;
  const sim::HpcCorpus corpus = sim::build_corpus(cfg);
  const auto first = sim::serialize_corpus(corpus);
  const sim::HpcCorpus restored = sim::deserialize_corpus(first);
  EXPECT_EQ(sim::serialize_corpus(restored), first);
  EXPECT_EQ(restored.records.size(), corpus.records.size());
  EXPECT_EQ(restored.feature_names, corpus.feature_names);
  for (std::size_t i = 0; i < corpus.records.size(); ++i)
    EXPECT_EQ(restored.records[i].features, corpus.records[i].features);
}

// ------------------------------------------------------ Integrity pair --

TEST(VaultRoundTrip, ByteIdenticalAndSelfChecking) {
  integrity::ModelVault vault;
  vault.deploy("RF", {1, 2, 3, 4}, 100);
  vault.deploy("MLP", {5, 6}, 101);
  const auto first = vault.serialize();
  const integrity::ModelVault restored = integrity::ModelVault::deserialize(first);
  EXPECT_EQ(restored.serialize(), first);
  EXPECT_EQ(restored.model_names(), (std::vector<std::string>{"MLP", "RF"}));
  EXPECT_EQ(restored.verify("RF", std::vector<std::uint8_t>{1, 2, 3, 4}),
            integrity::VerificationStatus::kIntact);
  EXPECT_EQ(restored.verify("RF", std::vector<std::uint8_t>{9, 9}),
            integrity::VerificationStatus::kTampered);
}

TEST(VaultRoundTrip, TamperedGoldenBytesRejectedOnLoad) {
  integrity::ModelVault vault;
  vault.deploy("RF", {1, 2, 3, 4}, 100);
  auto bytes = vault.serialize();
  // Flip the last payload byte: part of a stored golden copy, so the
  // recomputed digest can no longer match the stored digest.
  bytes.back() ^= 0x01;
  EXPECT_ANY_THROW(integrity::ModelVault::deserialize(bytes));
}

TEST(MonitorRoundTrip, ByteIdenticalWithBaselines) {
  const ml::Dataset reserved = blobs(30);
  auto models = ml::make_all_models(17);
  models[0]->fit(reserved);
  integrity::MetricMonitor monitor(0.05);
  monitor.record_baseline(*models[0], reserved);

  const auto first = monitor.serialize();
  const integrity::MetricMonitor restored =
      integrity::MetricMonitor::deserialize(first);
  EXPECT_EQ(restored.serialize(), first);
  EXPECT_EQ(restored.tracked_models(), 1u);
  EXPECT_DOUBLE_EQ(restored.tolerance(), 0.05);
  EXPECT_FALSE(restored.assess(*models[0], reserved).deviated);
}

}  // namespace
}  // namespace drlhmd
