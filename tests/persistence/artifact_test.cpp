// Artifact envelope + directory store behaviors: framing, CRC integrity,
// atomic replacement, name validation, and corrupt-input rejection.
#include "util/artifact_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "util/artifact.hpp"

namespace drlhmd::util {
namespace {

std::string fresh_dir(const std::string& leaf) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / leaf).string();
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<std::uint8_t> payload_of(std::initializer_list<int> values) {
  std::vector<std::uint8_t> p;
  for (int v : values) p.push_back(static_cast<std::uint8_t>(v));
  return p;
}

TEST(Crc32Test, MatchesKnownVectors) {
  // IEEE CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const std::string check = "123456789";
  std::vector<std::uint8_t> bytes(check.begin(), check.end());
  EXPECT_EQ(crc32(bytes), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(ArtifactTest, WrapUnwrapRoundTrip) {
  const auto payload = payload_of({1, 2, 3, 0, 255});
  const auto bytes = wrap_artifact("drlhmd.test", 7, payload);
  const Artifact art = unwrap_artifact(bytes);
  EXPECT_EQ(art.kind, "drlhmd.test");
  EXPECT_EQ(art.version, 7u);
  EXPECT_EQ(art.payload, payload);
}

TEST(ArtifactTest, EmptyPayloadRoundTrips) {
  const auto bytes = wrap_artifact("drlhmd.empty", 1, {});
  const Artifact art = unwrap_artifact(bytes);
  EXPECT_EQ(art.kind, "drlhmd.empty");
  EXPECT_TRUE(art.payload.empty());
}

TEST(ArtifactTest, BadMagicRejected) {
  auto bytes = wrap_artifact("drlhmd.test", 1, payload_of({1, 2, 3}));
  bytes[0] ^= 0xFF;
  EXPECT_THROW(unwrap_artifact(bytes), std::invalid_argument);
}

TEST(ArtifactTest, FlippedPayloadByteFailsCrc) {
  auto bytes = wrap_artifact("drlhmd.test", 1, payload_of({1, 2, 3, 4}));
  // Payload sits between the header and the trailing 4-byte CRC.
  bytes[bytes.size() - 5] ^= 0x01;
  EXPECT_THROW(unwrap_artifact(bytes), std::invalid_argument);
}

TEST(ArtifactTest, EveryTruncationRejected) {
  const auto bytes = wrap_artifact("drlhmd.test", 1, payload_of({9, 8, 7}));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> truncated(
        bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_ANY_THROW(unwrap_artifact(truncated)) << "cut at " << cut;
  }
}

TEST(ArtifactTest, TrailingGarbageRejected) {
  auto bytes = wrap_artifact("drlhmd.test", 1, payload_of({1}));
  bytes.push_back(0x00);
  EXPECT_THROW(unwrap_artifact(bytes), std::invalid_argument);
}

TEST(ArtifactStoreTest, PutGetListRemove) {
  const ArtifactStore store(fresh_dir("artifact-store-basic"));
  EXPECT_TRUE(store.list().empty());
  EXPECT_FALSE(store.contains("alpha"));

  store.put("alpha", "drlhmd.test", 1, payload_of({1, 2}));
  store.put("beta", "drlhmd.test", 2, payload_of({3}));
  EXPECT_TRUE(store.contains("alpha"));
  EXPECT_EQ(store.list(), (std::vector<std::string>{"alpha", "beta"}));

  const Artifact art = store.get("beta");
  EXPECT_EQ(art.kind, "drlhmd.test");
  EXPECT_EQ(art.version, 2u);
  EXPECT_EQ(art.payload, payload_of({3}));

  store.remove("alpha");
  EXPECT_FALSE(store.contains("alpha"));
  EXPECT_EQ(store.list(), std::vector<std::string>{"beta"});
}

TEST(ArtifactStoreTest, PutOverwritesAtomically) {
  const ArtifactStore store(fresh_dir("artifact-store-overwrite"));
  store.put("model", "drlhmd.test", 1, payload_of({1, 1, 1}));
  store.put("model", "drlhmd.test", 1, payload_of({2, 2}));
  EXPECT_EQ(store.get("model").payload, payload_of({2, 2}));
  // The temporary used for the atomic rename must not linger.
  for (const auto& entry :
       std::filesystem::directory_iterator(store.directory()))
    EXPECT_EQ(entry.path().extension(), ".art") << entry.path();
}

TEST(ArtifactStoreTest, MissingArtifactThrows) {
  const ArtifactStore store(fresh_dir("artifact-store-missing"));
  EXPECT_THROW(store.get("ghost"), std::runtime_error);
}

TEST(ArtifactStoreTest, OnDiskCorruptionDetectedOnGet) {
  const ArtifactStore store(fresh_dir("artifact-store-corrupt"));
  store.put("model", "drlhmd.test", 1, payload_of({1, 2, 3, 4, 5, 6, 7, 8}));

  // Flip one payload byte directly in the backing file.
  const std::string path = store.path_for("model");
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekp(-8, std::ios::end);  // inside the payload (before the CRC)
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(-8, std::ios::end);
  byte = static_cast<char>(byte ^ 0x40);
  f.write(&byte, 1);
  f.close();

  EXPECT_ANY_THROW(store.get("model"));
}

TEST(ArtifactStoreTest, RejectsUnsafeNames) {
  const ArtifactStore store(fresh_dir("artifact-store-names"));
  const auto payload = payload_of({1});
  EXPECT_THROW(store.put("", "k", 1, payload), std::invalid_argument);
  EXPECT_THROW(store.put("../escape", "k", 1, payload), std::invalid_argument);
  EXPECT_THROW(store.put("a/b", "k", 1, payload), std::invalid_argument);
  EXPECT_THROW(store.put(".hidden", "k", 1, payload), std::invalid_argument);
  EXPECT_THROW(store.put("sp ace", "k", 1, payload), std::invalid_argument);
  EXPECT_NO_THROW(store.put("ok-name_1.v2", "k", 1, payload));
}

}  // namespace
}  // namespace drlhmd::util
