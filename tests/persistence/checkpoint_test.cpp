// Framework checkpoint/resume and runtime cold start.
//
// The acceptance bar: resuming a checkpoint and running the remaining
// phases yields *bitwise identical* evaluate_scenarios() output versus the
// uninterrupted run, and a tampered checkpoint is refused at resume time.
#include "core/framework.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/runtime.hpp"
#include "util/artifact_store.hpp"

namespace drlhmd::core {
namespace {

FrameworkConfig small_config() {
  FrameworkConfig cfg;
  cfg.corpus.benign_apps = 60;
  cfg.corpus.malware_apps = 60;
  cfg.corpus.windows_per_app = 3;
  return cfg;
}

std::string fresh_dir(const std::string& leaf) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / leaf).string();
  std::filesystem::remove_all(dir);
  return dir;
}

/// Flatten scenario evaluations to bytes for bitwise comparison.
std::vector<std::uint8_t> evaluation_bytes(
    const std::vector<ScenarioEvaluation>& rows) {
  util::ByteWriter w;
  for (const auto& row : rows) {
    w.write_string(row.model);
    ml::write_metric_report(w, row.regular);
    ml::write_metric_report(w, row.adversarial);
    ml::write_metric_report(w, row.defended);
  }
  return w.take();
}

/// Shared fixture: one uninterrupted pipeline run + one saved checkpoint,
/// reused by every test in the suite (the pipeline is the expensive part).
class CheckpointSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    framework_ = new Framework(small_config());
    framework_->run_all();
    checkpoint_dir_ = new std::string(fresh_dir("ckpt-full"));
    framework_->save_checkpoint(*checkpoint_dir_);
  }
  static void TearDownTestSuite() {
    delete framework_;
    framework_ = nullptr;
    delete checkpoint_dir_;
    checkpoint_dir_ = nullptr;
  }

  static Framework* framework_;
  static std::string* checkpoint_dir_;
};

Framework* CheckpointSuite::framework_ = nullptr;
std::string* CheckpointSuite::checkpoint_dir_ = nullptr;

TEST_F(CheckpointSuite, AllPhasesMarkedDone) {
  for (std::size_t p = 0; p < kPhaseCount; ++p)
    EXPECT_TRUE(framework_->phase_done(static_cast<Phase>(p)))
        << phase_name(static_cast<Phase>(p));
}

TEST_F(CheckpointSuite, CheckpointContainsExpectedArtifacts) {
  const util::ArtifactStore store(*checkpoint_dir_);
  for (const char* name :
       {"manifest", "corpus", "preprocess", "dataset-train", "dataset-test",
        "predictor", "dataset-merged_train", "profiles", "controller-fast",
        "controller-small", "controller-best", "vault", "monitor"})
    EXPECT_TRUE(store.contains(name)) << name;
  // Six baseline + six defended model artifacts.
  std::size_t baseline = 0, defended = 0;
  for (const auto& name : store.list()) {
    baseline += name.rfind("model-baseline-", 0) == 0;
    defended += name.rfind("model-defended-", 0) == 0;
  }
  EXPECT_EQ(baseline, framework_->baseline_models().size());
  EXPECT_EQ(defended, framework_->defended_models().size());
}

TEST_F(CheckpointSuite, ResumeRestoresEveryPhaseBitwise) {
  Framework resumed = Framework::resume(*checkpoint_dir_);
  for (std::size_t p = 0; p < kPhaseCount; ++p)
    EXPECT_TRUE(resumed.phase_done(static_cast<Phase>(p)));

  // run_all() on a complete checkpoint re-runs nothing and the restored
  // state evaluates bitwise identically to the uninterrupted run.
  resumed.run_all();
  EXPECT_EQ(evaluation_bytes(resumed.evaluate_scenarios()),
            evaluation_bytes(framework_->evaluate_scenarios()));
  EXPECT_EQ(resumed.predictor().serialize(), framework_->predictor().serialize());
  for (std::size_t i = 0; i < framework_->defended_models().size(); ++i)
    EXPECT_EQ(resumed.defended_models()[i]->serialize(),
              framework_->defended_models()[i]->serialize());
  EXPECT_EQ(resumed.scaler().serialize(), framework_->scaler().serialize());
  EXPECT_EQ(resumed.selected_feature_names(),
            framework_->selected_feature_names());
  for (const rl::ConstraintPolicy policy :
       {rl::ConstraintPolicy::kFastInference, rl::ConstraintPolicy::kSmallMemory,
        rl::ConstraintPolicy::kBestDetection})
    EXPECT_EQ(resumed.controller(policy).serialize(),
              framework_->controller(policy).serialize());
}

TEST_F(CheckpointSuite, PartialCheckpointResumesAndMatchesUninterruptedRun) {
  // Interrupt after the attack phase: everything later must be recomputed
  // by resume + run_all, and the detectors' scenario metrics must be
  // bitwise identical to the uninterrupted fixture run.
  const std::string dir = fresh_dir("ckpt-partial");
  {
    Framework fw(small_config());
    fw.acquire_data();
    fw.engineer_features();
    fw.train_baselines();
    fw.generate_attacks();
    EXPECT_TRUE(fw.phase_done(Phase::kAttack));
    EXPECT_FALSE(fw.phase_done(Phase::kPredict));
    fw.save_checkpoint(dir);
  }

  Framework resumed = Framework::resume(dir);
  EXPECT_TRUE(resumed.phase_done(Phase::kAttack));
  EXPECT_FALSE(resumed.phase_done(Phase::kPredict));
  resumed.run_all();  // re-runs predict..protect only
  EXPECT_TRUE(resumed.phase_done(Phase::kProtect));

  EXPECT_EQ(evaluation_bytes(resumed.evaluate_scenarios()),
            evaluation_bytes(framework_->evaluate_scenarios()));
  EXPECT_EQ(resumed.predictor().serialize(), framework_->predictor().serialize());
  EXPECT_EQ(resumed.attack_report().success_rate,
            framework_->attack_report().success_rate);
}

TEST_F(CheckpointSuite, RerunningEarlierPhaseInvalidatesDownstream) {
  Framework resumed = Framework::resume(*checkpoint_dir_);
  EXPECT_TRUE(resumed.phase_done(Phase::kProtect));
  resumed.train_defenses();  // re-running phase 6 invalidates 7 and 8
  EXPECT_TRUE(resumed.phase_done(Phase::kDefend));
  EXPECT_FALSE(resumed.phase_done(Phase::kControl));
  EXPECT_FALSE(resumed.phase_done(Phase::kProtect));
}

TEST_F(CheckpointSuite, ColdStartServesTrafficFromCheckpoint) {
  ColdStart cold = cold_start(*checkpoint_dir_);
  ASSERT_NE(cold.framework, nullptr);
  ASSERT_NE(cold.runtime, nullptr);

  // The cold-started runtime scores the attacked stream exactly as a
  // runtime attached to the uninterrupted framework does.
  RuntimeConfig cfg;
  cfg.retrain_threshold = 0;
  cfg.integrity_check_period = 0;
  DetectionRuntime warm(*framework_, cfg);
  const ml::MetricReport warm_report =
      warm.process_stream(framework_->attacked_test_mix());
  const ml::MetricReport cold_report =
      cold.runtime->process_stream(cold.framework->attacked_test_mix());
  util::ByteWriter wa, wb;
  ml::write_metric_report(wa, warm_report);
  ml::write_metric_report(wb, cold_report);
  EXPECT_EQ(wa.bytes(), wb.bytes());
  EXPECT_TRUE(cold.runtime->validate_integrity());
}

TEST_F(CheckpointSuite, ColdStartRefusesIncompleteCheckpoint) {
  const std::string dir = fresh_dir("ckpt-incomplete");
  Framework fw(small_config());
  fw.acquire_data();
  fw.save_checkpoint(dir);
  EXPECT_THROW(cold_start(dir), std::runtime_error);
}

TEST_F(CheckpointSuite, TamperedModelArtifactRefusedAtResume) {
  // Copy the good checkpoint, then swap a defended model's payload for the
  // corresponding *baseline* model's bytes.  The envelope is re-wrapped, so
  // its CRC is valid — only the vault's SHA-256 digest can catch it.
  const std::string dir = fresh_dir("ckpt-tampered");
  std::filesystem::copy(*checkpoint_dir_, dir);
  const util::ArtifactStore store(dir);
  std::string victim;
  for (const auto& name : store.list())
    if (name.rfind("model-defended-", 0) == 0) { victim = name; break; }
  ASSERT_FALSE(victim.empty());
  const util::Artifact art = store.get(victim);
  store.put(victim, art.kind, art.version,
            framework_->baseline_models().front()->serialize());

  try {
    Framework resumed = Framework::resume(dir);
    FAIL() << "tampered checkpoint was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("tampered"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(cold_start(dir), std::runtime_error);
}

TEST_F(CheckpointSuite, BitRotRefusedAtResume) {
  // Flip one byte in a dataset artifact on disk: the envelope CRC fails.
  const std::string dir = fresh_dir("ckpt-bitrot");
  std::filesystem::copy(*checkpoint_dir_, dir);
  const util::ArtifactStore store(dir);
  const std::string path = store.path_for("dataset-train");
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekp(-20, std::ios::end);
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(-20, std::ios::end);
  byte = static_cast<char>(byte ^ 0x10);
  f.write(&byte, 1);
  f.close();

  EXPECT_ANY_THROW(Framework::resume(dir));
}

TEST_F(CheckpointSuite, ResumeRejectsMissingManifest) {
  const std::string dir = fresh_dir("ckpt-empty");
  const util::ArtifactStore store(dir);  // creates the empty directory
  EXPECT_THROW(Framework::resume(dir), std::runtime_error);
}

TEST_F(CheckpointSuite, SaveIsIdempotent) {
  // Saving the same framework twice produces an identical artifact set.
  const std::string dir = fresh_dir("ckpt-again");
  framework_->save_checkpoint(dir);
  const util::ArtifactStore a(*checkpoint_dir_), b(dir);
  ASSERT_EQ(a.list(), b.list());
  for (const auto& name : a.list()) {
    const util::Artifact aa = a.get(name), bb = b.get(name);
    EXPECT_EQ(aa.kind, bb.kind) << name;
    EXPECT_EQ(aa.payload, bb.payload) << name;
  }
}

}  // namespace
}  // namespace drlhmd::core
