#include "adversarial/lowprofool.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace drlhmd::adversarial {
namespace {

struct AttackFixture {
  ml::Dataset train;
  ml::LogisticRegression surrogate;
  ml::FeatureBounds bounds;
  std::vector<double> importance;

  explicit AttackFixture(double gap = 3.0, std::uint64_t seed = 11) {
    util::Rng rng(seed);
    for (int i = 0; i < 400; ++i) {
      std::vector<double> benign(4), malware(4);
      for (int c = 0; c < 4; ++c) {
        benign[c] = rng.normal(0.0, 1.0);
        malware[c] = rng.normal(gap, 1.0);
      }
      train.push(std::move(benign), 0);
      train.push(std::move(malware), 1);
    }
    surrogate.fit(train);
    bounds = ml::feature_bounds(train);
    importance = importance_from_lr(surrogate);
  }

  LowProFool make_attacker(LowProFoolConfig cfg = {}) const {
    return LowProFool(surrogate, bounds, importance, cfg);
  }

  ml::Dataset malware_rows() const {
    ml::Dataset out;
    for (std::size_t i = 0; i < train.size(); ++i)
      if (train.y[i] == 1) out.push(train.row_copy(i), 1);
    return out;
  }
};

TEST(LowProFoolTest, AttackFlipsSurrogatePrediction) {
  const AttackFixture fx;
  const LowProFool attacker = fx.make_attacker();
  const ml::Dataset malware = fx.malware_rows();
  const AttackResult result = attacker.attack(malware.row_copy(0));
  EXPECT_TRUE(result.success);
  EXPECT_EQ(fx.surrogate.predict(result.adversarial), 0);
  // And with high confidence (margin).
  EXPECT_LE(fx.surrogate.predict_proba(result.adversarial), 0.1);
}

TEST(LowProFoolTest, PerturbationConsistentWithAdversarial) {
  const AttackFixture fx;
  const LowProFool attacker = fx.make_attacker();
  const auto x = fx.malware_rows().row_copy(0);
  const AttackResult result = attacker.attack(x);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(result.adversarial[i], x[i] + result.perturbation[i], 1e-9);
}

TEST(LowProFoolTest, RespectsClipBounds) {
  const AttackFixture fx;
  const LowProFool attacker = fx.make_attacker();
  for (std::size_t i = 0; i < 20; ++i) {
    const AttackResult result = attacker.attack(fx.malware_rows().row_copy(i));
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_GE(result.adversarial[c], fx.bounds.lo[c] - 1e-9);
      EXPECT_LE(result.adversarial[c], fx.bounds.hi[c] + 1e-9);
    }
  }
}

TEST(LowProFoolTest, CampaignSuccessRateHighOnSeparableData) {
  const AttackFixture fx;
  const LowProFool attacker = fx.make_attacker();
  const AttackCampaignReport report = attacker.evaluate_campaign(fx.malware_rows());
  EXPECT_EQ(report.attempted, 400u);
  EXPECT_GT(report.success_rate, 0.95);
  EXPECT_GT(report.mean_weighted_norm, 0.0);
  EXPECT_GT(report.mean_linf, 0.0);
}

TEST(LowProFoolTest, HigherLambdaYieldsSmallerPerturbations) {
  const AttackFixture fx;
  LowProFoolConfig lo;
  lo.lambda = 0.01;
  LowProFoolConfig hi;
  hi.lambda = 5.0;
  const auto report_lo = fx.make_attacker(lo).evaluate_campaign(fx.malware_rows());
  const auto report_hi = fx.make_attacker(hi).evaluate_campaign(fx.malware_rows());
  // Stronger imperceptibility pressure must not increase the mean norm.
  EXPECT_LE(report_hi.mean_weighted_norm, report_lo.mean_weighted_norm + 1e-6);
}

TEST(LowProFoolTest, AttackDatasetPerturbsOnlyMalware) {
  const AttackFixture fx;
  const LowProFool attacker = fx.make_attacker();
  const ml::Dataset attacked = attacker.attack_dataset(fx.train);
  ASSERT_EQ(attacked.size(), fx.train.size());
  for (std::size_t i = 0; i < attacked.size(); ++i) {
    EXPECT_EQ(attacked.y[i], fx.train.y[i]);  // ground truth preserved
    if (fx.train.y[i] == 0) {
      EXPECT_EQ(attacked.row_copy(i), fx.train.row_copy(i));  // benign untouched
    } else {
      EXPECT_NE(attacked.row_copy(i), fx.train.row_copy(i));  // malware perturbed
    }
  }
}

TEST(LowProFoolTest, AdversarialSamplesEvadeDetection) {
  const AttackFixture fx;
  const LowProFool attacker = fx.make_attacker();
  const ml::Dataset malware = fx.malware_rows();
  const ml::Dataset attacked = attacker.attack_dataset(malware);
  // Surrogate TPR on attacked malware collapses.
  const ml::MetricReport m = fx.surrogate.evaluate(attacked);
  EXPECT_LT(m.tpr, 0.05);
}

TEST(LowProFoolTest, MinimalNormOnBestStep) {
  // On an easy instance, the kept perturbation must be no larger than the
  // largest one explored (best-tracking works).
  const AttackFixture fx;
  LowProFoolConfig cfg;
  cfg.max_steps = 200;
  const LowProFool attacker = fx.make_attacker(cfg);
  const AttackResult result = attacker.attack(fx.malware_rows().row_copy(3));
  EXPECT_TRUE(result.success);
  EXPECT_LE(result.steps_used, 200u);
  EXPECT_NEAR(result.weighted_norm,
              [&] {
                double acc = 0.0;
                for (std::size_t i = 0; i < 4; ++i)
                  acc += std::pow(std::abs(result.perturbation[i] *
                                           attacker.importance()[i]),
                                  2.0);
                return std::sqrt(acc);
              }(),
              1e-9);
}

TEST(LowProFoolTest, ConfigValidation) {
  const AttackFixture fx;
  LowProFoolConfig bad;
  bad.max_steps = 0;
  EXPECT_THROW(fx.make_attacker(bad), std::invalid_argument);
  bad = {};
  bad.step_size = 0.0;
  EXPECT_THROW(fx.make_attacker(bad), std::invalid_argument);
  bad = {};
  bad.p_norm = 0.5;
  EXPECT_THROW(fx.make_attacker(bad), std::invalid_argument);
  bad = {};
  bad.target_label = 3;
  EXPECT_THROW(fx.make_attacker(bad), std::invalid_argument);
  bad = {};
  bad.confidence_margin = 0.3;
  EXPECT_THROW(fx.make_attacker(bad), std::invalid_argument);
  bad = {};
  bad.momentum = 1.0;
  EXPECT_THROW(fx.make_attacker(bad), std::invalid_argument);
}

TEST(LowProFoolTest, ConstructionRejectsMismatchedWidths) {
  const AttackFixture fx;
  std::vector<double> short_importance = {1.0, 1.0};
  EXPECT_THROW(LowProFool(fx.surrogate, fx.bounds, short_importance),
               std::invalid_argument);
  ml::LogisticRegression untrained;
  EXPECT_THROW(LowProFool(untrained, fx.bounds, fx.importance), std::logic_error);
}

TEST(LowProFoolTest, WidthMismatchOnAttackThrows) {
  const AttackFixture fx;
  const LowProFool attacker = fx.make_attacker();
  EXPECT_THROW(attacker.attack(std::vector<double>{1.0}), std::invalid_argument);
}

/// p-norm sweep: the attack works for l1, l2 and higher norms.
class PNormSweep : public ::testing::TestWithParam<double> {};

TEST_P(PNormSweep, CampaignStillSucceeds) {
  const AttackFixture fx;
  LowProFoolConfig cfg;
  cfg.p_norm = GetParam();
  // The l1 penalty gradient does not vanish at the kink, so the default
  // imperceptibility weight stalls the descent; use a lighter weight there.
  if (GetParam() == 1.0) cfg.lambda = 0.05;
  const auto report = fx.make_attacker(cfg).evaluate_campaign(fx.malware_rows());
  EXPECT_GT(report.success_rate, 0.9) << "p=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Norms, PNormSweep, ::testing::Values(1.0, 2.0, 3.0));

}  // namespace
}  // namespace drlhmd::adversarial
