#include "adversarial/feature_importance.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace drlhmd::adversarial {
namespace {

TEST(NormalizeImportanceTest, UnitL2Norm) {
  const auto v = normalize_importance({3.0, 4.0});
  EXPECT_NEAR(v[0], 0.6, 1e-12);
  EXPECT_NEAR(v[1], 0.8, 1e-12);
}

TEST(NormalizeImportanceTest, AllZeroBecomesUniform) {
  const auto v = normalize_importance({0.0, 0.0, 0.0, 0.0});
  for (double x : v) EXPECT_NEAR(x, 0.5, 1e-12);
}

TEST(NormalizeImportanceTest, Errors) {
  EXPECT_THROW(normalize_importance({}), std::invalid_argument);
  EXPECT_THROW(normalize_importance({1.0, -1.0}), std::invalid_argument);
}

TEST(ImportanceFromLrTest, ReflectsCoefficientMagnitudes) {
  // Feature 0 drives the label; feature 1 is noise.
  util::Rng rng(3);
  ml::Dataset d;
  for (int i = 0; i < 500; ++i) {
    const int label = rng.bernoulli(0.5) ? 1 : 0;
    d.push({label == 1 ? rng.normal(2, 0.5) : rng.normal(-2, 0.5),
            rng.normal(0, 1)},
           label);
  }
  ml::LogisticRegression lr;
  lr.fit(d);
  const auto v = importance_from_lr(lr);
  EXPECT_GT(v[0], 5.0 * v[1]);
  const double norm = std::sqrt(v[0] * v[0] + v[1] * v[1]);
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(ImportanceFromLrTest, UntrainedThrows) {
  ml::LogisticRegression lr;
  EXPECT_THROW(importance_from_lr(lr), std::logic_error);
}

TEST(ImportancePearsonTest, CorrelatedFeatureDominates) {
  util::Rng rng(5);
  ml::Dataset d;
  for (int i = 0; i < 1000; ++i) {
    const int label = rng.bernoulli(0.5) ? 1 : 0;
    d.push({static_cast<double>(label) + rng.normal(0, 0.1), rng.normal(0, 1)},
           label);
  }
  const auto v = importance_pearson(d);
  EXPECT_GT(v[0], 0.9);
  EXPECT_LT(v[1], 0.3);
}

TEST(ImportancePearsonTest, EmptyThrows) {
  EXPECT_THROW(importance_pearson(ml::Dataset{}), std::invalid_argument);
}

}  // namespace
}  // namespace drlhmd::adversarial
