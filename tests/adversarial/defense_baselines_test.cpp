#include "adversarial/defense_baselines.hpp"

#include <gtest/gtest.h>

#include "adversarial/lowprofool.hpp"
#include "ml/logistic_regression.hpp"
#include "util/rng.hpp"

namespace drlhmd::adversarial {
namespace {

ml::Dataset blobs(std::size_t n, double gap, std::uint64_t seed) {
  util::Rng rng(seed);
  ml::Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> benign(4), malware(4);
    for (int c = 0; c < 4; ++c) {
      benign[c] = rng.normal(0.0, 1.0);
      malware[c] = rng.normal(gap, 1.0);
    }
    d.push(std::move(benign), 0);
    d.push(std::move(malware), 1);
  }
  d.shuffle(rng);
  return d;
}

TEST(RandomizedEnsembleTest, Validation) {
  EXPECT_THROW(RandomizedEnsembleDefense({}), std::invalid_argument);
  std::vector<std::unique_ptr<ml::Classifier>> with_null;
  with_null.push_back(nullptr);
  EXPECT_THROW(RandomizedEnsembleDefense(std::move(with_null)),
               std::invalid_argument);
}

TEST(RandomizedEnsembleTest, FitTrainsAllMembers) {
  RandomizedEnsembleDefense defense(make_diverse_committee());
  EXPECT_FALSE(defense.trained());
  defense.fit(blobs(150, 3.0, 1));
  EXPECT_TRUE(defense.trained());
  EXPECT_EQ(defense.member_count(), 5u);
  EXPECT_THROW(defense.member(10), std::out_of_range);
}

TEST(RandomizedEnsembleTest, DetectsCleanMalware) {
  RandomizedEnsembleDefense defense(make_diverse_committee());
  defense.fit(blobs(300, 3.0, 2));
  const auto m = defense.evaluate(blobs(150, 3.0, 3));
  EXPECT_GT(m.accuracy, 0.95);
}

TEST(MajorityVoteTest, DetectsCleanMalwareAtLeastAsWellAsRandomPick) {
  auto committee_a = make_diverse_committee();
  auto committee_b = make_diverse_committee();
  RandomizedEnsembleDefense randomized(std::move(committee_a));
  MajorityVoteDefense majority(std::move(committee_b));
  const ml::Dataset train = blobs(300, 1.5, 4);
  const ml::Dataset test = blobs(300, 1.5, 5);
  randomized.fit(train);
  majority.fit(train);
  EXPECT_GE(majority.evaluate(test).accuracy + 0.03,
            randomized.evaluate(test).accuracy);
}

TEST(MajorityVoteTest, ProbaIsMeanOfMembers) {
  MajorityVoteDefense defense(make_diverse_committee());
  defense.fit(blobs(150, 3.0, 6));
  const std::vector<double> x = {3.0, 3.0, 3.0, 3.0};
  const double p = defense.predict_proba(x);
  EXPECT_GT(p, 0.5);
  EXPECT_LE(p, 1.0);
}

TEST(DefenseComparisonTest, RandomizationBluntsSurrogateAttacks) {
  // Craft adversarial samples against an LR surrogate; the randomized
  // committee should retain materially more detection than the surrogate
  // itself (which drops to ~zero).
  const ml::Dataset train = blobs(400, 3.0, 7);
  ml::LogisticRegression surrogate;
  surrogate.fit(train);

  ml::Dataset malware;
  for (std::size_t i = 0; i < train.size(); ++i)
    if (train.y[i] == 1) malware.push(train.row_copy(i), 1);

  LowProFool attacker(surrogate, ml::feature_bounds(train),
                      importance_from_lr(surrogate));
  const ml::Dataset attacked = attacker.attack_dataset(malware);

  RandomizedEnsembleDefense defense(make_diverse_committee());
  defense.fit(train);

  const double surrogate_tpr = surrogate.evaluate(attacked).tpr;
  const double committee_tpr = defense.evaluate(attacked).tpr;
  EXPECT_LT(surrogate_tpr, 0.05);
  EXPECT_GT(committee_tpr, surrogate_tpr);
}

}  // namespace
}  // namespace drlhmd::adversarial
