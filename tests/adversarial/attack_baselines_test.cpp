#include "adversarial/attack_baselines.hpp"

#include <gtest/gtest.h>

#include "ml/random_forest.hpp"
#include "util/rng.hpp"

namespace drlhmd::adversarial {
namespace {

struct BaselineFixture {
  ml::Dataset train;
  ml::LogisticRegression surrogate;
  ml::FeatureBounds bounds;

  BaselineFixture() {
    util::Rng rng(21);
    for (int i = 0; i < 400; ++i) {
      std::vector<double> benign(4), malware(4);
      for (int c = 0; c < 4; ++c) {
        benign[c] = rng.normal(0.0, 1.0);
        malware[c] = rng.normal(3.0, 1.0);
      }
      train.push(std::move(benign), 0);
      train.push(std::move(malware), 1);
    }
    surrogate.fit(train);
    bounds = ml::feature_bounds(train);
  }

  ml::Dataset malware_rows() const {
    ml::Dataset out;
    for (std::size_t i = 0; i < train.size(); ++i)
      if (train.y[i] == 1) out.push(train.row_copy(i), 1);
    return out;
  }
};

TEST(FgsmTest, Validation) {
  const BaselineFixture fx;
  FgsmConfig bad;
  bad.epsilon = 0.0;
  EXPECT_THROW(FgsmAttack(fx.surrogate, fx.bounds, bad), std::invalid_argument);
  bad = {};
  bad.target_label = 7;
  EXPECT_THROW(FgsmAttack(fx.surrogate, fx.bounds, bad), std::invalid_argument);
  ml::LogisticRegression untrained;
  EXPECT_THROW(FgsmAttack(untrained, fx.bounds), std::logic_error);
}

TEST(FgsmTest, LargeEpsilonEvadesSurrogate) {
  const BaselineFixture fx;
  FgsmConfig cfg;
  cfg.epsilon = 4.0;
  FgsmAttack attack(fx.surrogate, fx.bounds, cfg);
  const auto report = attack.evaluate_campaign(fx.malware_rows());
  EXPECT_GT(report.success_rate, 0.9);
}

TEST(FgsmTest, TinyEpsilonFails) {
  const BaselineFixture fx;
  FgsmConfig cfg;
  cfg.epsilon = 0.05;
  FgsmAttack attack(fx.surrogate, fx.bounds, cfg);
  const auto report = attack.evaluate_campaign(fx.malware_rows());
  EXPECT_LT(report.success_rate, 0.2);
}

TEST(FgsmTest, PerturbationIsSignedUniform) {
  const BaselineFixture fx;
  FgsmConfig cfg;
  cfg.epsilon = 1.0;
  FgsmAttack attack(fx.surrogate, fx.bounds, cfg);
  const auto result = attack.attack(fx.malware_rows().row_copy(0));
  // Without clipping, every component would be exactly +-epsilon; with
  // clipping it can only shrink.
  for (double r : result.perturbation) EXPECT_LE(std::abs(r), 1.0 + 1e-12);
  EXPECT_EQ(result.steps_used, 1u);
}

TEST(FgsmTest, RespectsClipBounds) {
  const BaselineFixture fx;
  FgsmConfig cfg;
  cfg.epsilon = 50.0;  // would fly far out of range without clipping
  FgsmAttack attack(fx.surrogate, fx.bounds, cfg);
  const auto result = attack.attack(fx.malware_rows().row_copy(0));
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_GE(result.adversarial[c], fx.bounds.lo[c] - 1e-9);
    EXPECT_LE(result.adversarial[c], fx.bounds.hi[c] + 1e-9);
  }
}

TEST(RandomNoiseTest, RarelyEvades) {
  const BaselineFixture fx;
  RandomNoiseConfig cfg;
  cfg.epsilon = 1.0;
  RandomNoiseAttack attack(fx.surrogate, fx.bounds, cfg);
  const auto report = attack.evaluate_campaign(fx.malware_rows());
  // Undirected noise of the same magnitude as a successful FGSM step must
  // be far less effective — the null hypothesis the gradient refutes.
  EXPECT_LT(report.success_rate, 0.1);
}

TEST(RandomNoiseTest, Validation) {
  const BaselineFixture fx;
  RandomNoiseConfig bad;
  bad.epsilon = -1.0;
  EXPECT_THROW(RandomNoiseAttack(fx.surrogate, fx.bounds, bad),
               std::invalid_argument);
}

TEST(RandomNoiseTest, PerturbationBounded) {
  const BaselineFixture fx;
  RandomNoiseConfig cfg;
  cfg.epsilon = 0.5;
  RandomNoiseAttack attack(fx.surrogate, fx.bounds, cfg);
  for (int i = 0; i < 10; ++i) {
    const auto result = attack.attack(fx.malware_rows().row_copy(i));
    for (double r : result.perturbation) EXPECT_LE(std::abs(r), 0.5 + 1e-12);
  }
}

TEST(AttackComparisonTest, GradientBeatsNoiseAtEqualBudget) {
  const BaselineFixture fx;
  const double eps = 2.0;
  FgsmConfig fcfg;
  fcfg.epsilon = eps;
  RandomNoiseConfig ncfg;
  ncfg.epsilon = eps;
  FgsmAttack fgsm(fx.surrogate, fx.bounds, fcfg);
  RandomNoiseAttack noise(fx.surrogate, fx.bounds, ncfg);
  const auto malware = fx.malware_rows();
  EXPECT_GT(fgsm.evaluate_campaign(malware).success_rate,
            noise.evaluate_campaign(malware).success_rate + 0.3);
}

TEST(AttackBaselinesTest, DatasetHelpersPreserveLabels) {
  const BaselineFixture fx;
  FgsmConfig cfg;
  cfg.epsilon = 4.0;
  FgsmAttack attack(fx.surrogate, fx.bounds, cfg);
  const ml::Dataset attacked = attack.attack_dataset(fx.train);
  ASSERT_EQ(attacked.size(), fx.train.size());
  EXPECT_EQ(attacked.y, fx.train.y);
}

}  // namespace
}  // namespace drlhmd::adversarial
