#include "ml/nn.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace drlhmd::ml::nn {
namespace {

/// Scalar test loss L = 0.5 * sum(out^2); dL/dout = out.
double scalar_loss(const Matrix& out) {
  double total = 0.0;
  for (double v : out.flat()) total += 0.5 * v * v;
  return total;
}

/// Central-difference check of dL/dInput for an arbitrary layer stack.
void check_input_gradient(Network& net, Matrix input, double tolerance = 1e-5) {
  const Matrix out = net.forward(input);
  Matrix grad_out = out;  // dL/dout for the scalar loss above
  const Matrix analytic = net.backward(grad_out);

  const double eps = 1e-5;
  for (std::size_t i = 0; i < input.size(); ++i) {
    Matrix plus = input, minus = input;
    plus.flat()[i] += eps;
    minus.flat()[i] -= eps;
    const double numeric =
        (scalar_loss(net.forward(plus)) - scalar_loss(net.forward(minus))) /
        (2.0 * eps);
    EXPECT_NEAR(analytic.flat()[i], numeric, tolerance)
        << "gradient mismatch at input index " << i;
  }
}

TEST(DenseTest, ForwardComputesAffine) {
  util::Rng rng(1);
  Dense layer(2, 2, rng);
  const Matrix x = Matrix::from_rows({{1.0, 2.0}});
  const Matrix out = layer.forward(x);
  const Matrix& w = layer.weights();
  const Matrix& b = layer.bias();
  EXPECT_NEAR(out(0, 0), 1.0 * w(0, 0) + 2.0 * w(1, 0) + b(0, 0), 1e-12);
  EXPECT_NEAR(out(0, 1), 1.0 * w(0, 1) + 2.0 * w(1, 1) + b(0, 1), 1e-12);
}

TEST(DenseTest, InputGradientMatchesFiniteDifference) {
  util::Rng rng(2);
  Network net;
  net.add(std::make_unique<Dense>(4, 3, rng));
  check_input_gradient(net, Matrix::randn(2, 4, 1.0, rng));
}

TEST(ReluTest, ForwardZeroesNegatives) {
  Relu relu;
  const Matrix x = Matrix::from_rows({{-1.0, 0.0, 2.0}});
  const Matrix out = relu.forward(x);
  EXPECT_EQ(out(0, 0), 0.0);
  EXPECT_EQ(out(0, 1), 0.0);
  EXPECT_EQ(out(0, 2), 2.0);
}

TEST(ReluTest, BackwardMasksGradient) {
  Relu relu;
  const Matrix x = Matrix::from_rows({{-1.0, 3.0}});
  relu.forward(x);
  const Matrix g = Matrix::from_rows({{5.0, 7.0}});
  const Matrix gin = relu.backward(g);
  EXPECT_EQ(gin(0, 0), 0.0);
  EXPECT_EQ(gin(0, 1), 7.0);
}

TEST(MlpGradientTest, DeepStackGradientMatchesFiniteDifference) {
  util::Rng rng(3);
  Network net = make_mlp(5, {8, 8}, 3, rng);
  // Keep inputs away from ReLU kinks for a clean finite-difference check.
  Matrix input = Matrix::randn(2, 5, 1.0, rng);
  check_input_gradient(net, input, 1e-4);
}

TEST(Conv1DTest, OutputShape) {
  util::Rng rng(4);
  Conv1D conv(2, 3, 6, 2, rng);
  EXPECT_EQ(conv.out_length(), 5u);
  EXPECT_EQ(conv.out_width(), 15u);
  const Matrix x = Matrix::randn(3, 12, 1.0, rng);
  const Matrix out = conv.forward(x);
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 15u);
}

TEST(Conv1DTest, KnownConvolution) {
  util::Rng rng(5);
  Conv1D conv(1, 1, 3, 2, rng);
  // Forward on a known signal, derive expected from layer weights.
  const Matrix x = Matrix::from_rows({{1.0, 2.0, 3.0}});
  const Matrix out = conv.forward(x);
  ASSERT_EQ(out.cols(), 2u);
  // out[p] = w0*x[p] + w1*x[p+1] + b; consistency between positions:
  // (out[1]-b) - (out[0]-b) = w0*(x1-x0) + w1*(x2-x1) = w0 + w1.
  // We can't read w directly (private), but linearity must hold:
  const Matrix x2 = Matrix::from_rows({{2.0, 4.0, 6.0}});
  const Matrix out2 = conv.forward(x2);
  // f(2x) - f(0) = 2 (f(x) - f(0)); evaluate f(0) to get the bias.
  const Matrix zero = Matrix::from_rows({{0.0, 0.0, 0.0}});
  const Matrix outz = conv.forward(zero);
  for (std::size_t c = 0; c < 2; ++c)
    EXPECT_NEAR(out2(0, c) - outz(0, c), 2.0 * (out(0, c) - outz(0, c)), 1e-12);
}

TEST(Conv1DTest, InputGradientMatchesFiniteDifference) {
  util::Rng rng(6);
  Network net;
  net.add(std::make_unique<Conv1D>(1, 4, 6, 2, rng));
  check_input_gradient(net, Matrix::randn(2, 6, 1.0, rng));
}

TEST(Conv1DTest, StackedConvGradient) {
  util::Rng rng(7);
  Network net;
  auto c1 = std::make_unique<Conv1D>(1, 3, 6, 2, rng);
  const std::size_t l1 = c1->out_length();
  net.add(std::move(c1));
  net.add(std::make_unique<Conv1D>(3, 2, l1, 2, rng));
  check_input_gradient(net, Matrix::randn(1, 6, 1.0, rng), 1e-4);
}

TEST(Conv1DTest, ConstructionValidation) {
  util::Rng rng(8);
  EXPECT_THROW(Conv1D(0, 1, 4, 2, rng), std::invalid_argument);
  EXPECT_THROW(Conv1D(1, 1, 2, 3, rng), std::invalid_argument);
}

TEST(SoftmaxTest, RowsSumToOneAndOrderPreserved) {
  const Matrix logits = Matrix::from_rows({{1.0, 2.0, 3.0}, {-1.0, -1.0, -1.0}});
  const Matrix p = softmax(logits);
  for (std::size_t r = 0; r < 2; ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < 3; ++c) total += p(r, c);
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
  EXPECT_GT(p(0, 2), p(0, 1));
  EXPECT_NEAR(p(1, 0), 1.0 / 3.0, 1e-12);
}

TEST(SoftmaxTest, NumericallyStableForLargeLogits) {
  const Matrix logits = Matrix::from_rows({{1000.0, 1001.0}});
  const Matrix p = softmax(logits);
  EXPECT_TRUE(std::isfinite(p(0, 0)));
  EXPECT_NEAR(p(0, 0) + p(0, 1), 1.0, 1e-12);
}

TEST(LossTest, SoftmaxCrossEntropyKnownValue) {
  const Matrix logits = Matrix::from_rows({{0.0, 0.0}});
  const std::vector<int> labels = {1};
  const LossResult loss = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(loss.loss, std::log(2.0), 1e-12);
  EXPECT_NEAR(loss.grad(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(loss.grad(0, 1), -0.5, 1e-12);
}

TEST(LossTest, SoftmaxCrossEntropyGradientNumeric) {
  util::Rng rng(9);
  Matrix logits = Matrix::randn(3, 4, 1.0, rng);
  const std::vector<int> labels = {0, 2, 3};
  const LossResult analytic = softmax_cross_entropy(logits, labels);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Matrix plus = logits, minus = logits;
    plus.flat()[i] += eps;
    minus.flat()[i] -= eps;
    const double numeric = (softmax_cross_entropy(plus, labels).loss -
                            softmax_cross_entropy(minus, labels).loss) /
                           (2.0 * eps);
    EXPECT_NEAR(analytic.grad.flat()[i], numeric, 1e-6);
  }
}

TEST(LossTest, SoftmaxCrossEntropyErrors) {
  const Matrix logits(2, 2);
  const std::vector<int> wrong_size = {0};
  EXPECT_THROW(softmax_cross_entropy(logits, wrong_size), std::invalid_argument);
  const std::vector<int> bad_label = {0, 5};
  EXPECT_THROW(softmax_cross_entropy(logits, bad_label), std::invalid_argument);
}

TEST(LossTest, MseKnownValueAndGradient) {
  const Matrix pred = Matrix::from_rows({{1.0, 3.0}});
  const Matrix target = Matrix::from_rows({{0.0, 0.0}});
  const LossResult loss = mse_loss(pred, target);
  EXPECT_NEAR(loss.loss, (1.0 + 9.0) / 2.0, 1e-12);
  EXPECT_NEAR(loss.grad(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(loss.grad(0, 1), 3.0, 1e-12);
  EXPECT_THROW(mse_loss(pred, Matrix(2, 1)), std::invalid_argument);
}

TEST(NetworkTest, TrainingReducesLoss) {
  util::Rng rng(10);
  Network net = make_mlp(2, {16}, 2, rng);
  // XOR-ish labels: not linearly separable, needs the hidden layer.
  const Matrix x = Matrix::from_rows({{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  const std::vector<int> y = {0, 1, 1, 0};
  double first_loss = 0.0, last_loss = 0.0;
  for (int epoch = 0; epoch < 400; ++epoch) {
    net.zero_grad();
    const Matrix logits = net.forward(x);
    const LossResult loss = softmax_cross_entropy(logits, y);
    if (epoch == 0) first_loss = loss.loss;
    last_loss = loss.loss;
    net.backward(loss.grad);
    net.adam_step(0.01);
  }
  EXPECT_LT(last_loss, 0.3 * first_loss);
}

TEST(NetworkTest, CopyIsIndependent) {
  util::Rng rng(11);
  Network a = make_mlp(2, {4}, 2, rng);
  Network b = a;  // deep copy
  const Matrix x = Matrix::from_rows({{1.0, -1.0}});
  const Matrix before = b.forward(x);
  // Train a; b must not change.
  const std::vector<int> y = {1};
  for (int i = 0; i < 50; ++i) {
    a.zero_grad();
    const LossResult loss = softmax_cross_entropy(a.forward(x), y);
    a.backward(loss.grad);
    a.adam_step(0.05);
  }
  const Matrix after = b.forward(x);
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(before.flat()[i], after.flat()[i]);
}

TEST(NetworkTest, SerializeRoundTripPreservesOutputs) {
  util::Rng rng(12);
  Network net;
  net.add(std::make_unique<Conv1D>(1, 3, 4, 2, rng));
  net.add(std::make_unique<Relu>());
  net.add(std::make_unique<Dense>(9, 2, rng));
  const Matrix x = Matrix::randn(2, 4, 1.0, rng);
  const Matrix expected = net.forward(x);

  Network restored = Network::deserialize(net.serialize());
  const Matrix actual = restored.forward(x);
  ASSERT_TRUE(actual.same_shape(expected));
  for (std::size_t i = 0; i < actual.size(); ++i)
    EXPECT_DOUBLE_EQ(actual.flat()[i], expected.flat()[i]);
}

TEST(NetworkTest, DeserializeRejectsGarbage) {
  const std::vector<std::uint8_t> garbage = {1, 2, 3};
  EXPECT_THROW(Network::deserialize(garbage), std::exception);
}

TEST(NetworkTest, ParamCount) {
  util::Rng rng(13);
  Network net = make_mlp(4, {8}, 2, rng);
  // dense(4->8): 32+8; dense(8->2): 16+2.
  EXPECT_EQ(net.param_count(), 58u);
}

}  // namespace
}  // namespace drlhmd::ml::nn
