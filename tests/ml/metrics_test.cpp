#include "ml/metrics.hpp"

#include <gtest/gtest.h>

namespace drlhmd::ml {
namespace {

TEST(ConfusionMatrixTest, CountsCells) {
  ConfusionMatrix cm;
  cm.add(1, 1);  // tp
  cm.add(1, 0);  // fn
  cm.add(0, 1);  // fp
  cm.add(0, 0);  // tn
  cm.add(1, 1);  // tp
  EXPECT_EQ(cm.tp, 2u);
  EXPECT_EQ(cm.fn, 1u);
  EXPECT_EQ(cm.fp, 1u);
  EXPECT_EQ(cm.tn, 1u);
  EXPECT_EQ(cm.total(), 5u);
  EXPECT_THROW(cm.add(2, 0), std::invalid_argument);
  EXPECT_THROW(cm.add(0, -1), std::invalid_argument);
}

TEST(MetricsTest, KnownValues) {
  // tp=4, fp=1, tn=3, fn=2
  const std::vector<int> truth = {1, 1, 1, 1, 1, 1, 0, 0, 0, 0};
  const std::vector<int> pred = {1, 1, 1, 1, 0, 0, 1, 0, 0, 0};
  const MetricReport m = evaluate_predictions(truth, pred);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.7);
  EXPECT_DOUBLE_EQ(m.precision, 4.0 / 5.0);
  EXPECT_DOUBLE_EQ(m.recall, 4.0 / 6.0);
  EXPECT_DOUBLE_EQ(m.tpr, m.recall);
  EXPECT_DOUBLE_EQ(m.fpr, 0.25);
  EXPECT_DOUBLE_EQ(m.tnr, 0.75);
  EXPECT_DOUBLE_EQ(m.fnr, 2.0 / 6.0);
  const double f1 = 2.0 * m.precision * m.recall / (m.precision + m.recall);
  EXPECT_DOUBLE_EQ(m.f1, f1);
}

TEST(MetricsTest, ComplementaryIdentities) {
  const std::vector<int> truth = {1, 0, 1, 0, 1, 1, 0};
  const std::vector<int> pred = {1, 1, 0, 0, 1, 0, 1};
  const MetricReport m = evaluate_predictions(truth, pred);
  EXPECT_NEAR(m.tpr + m.fnr, 1.0, 1e-12);
  EXPECT_NEAR(m.fpr + m.tnr, 1.0, 1e-12);
}

TEST(MetricsTest, DegenerateAllNegativePredictions) {
  const std::vector<int> truth = {1, 1, 0};
  const std::vector<int> pred = {0, 0, 0};
  const MetricReport m = evaluate_predictions(truth, pred);
  EXPECT_EQ(m.precision, 0.0);
  EXPECT_EQ(m.recall, 0.0);
  EXPECT_EQ(m.f1, 0.0);
  EXPECT_EQ(m.fpr, 0.0);
}

TEST(MetricsTest, SizeMismatchThrows) {
  const std::vector<int> truth = {1};
  const std::vector<int> pred = {1, 0};
  EXPECT_THROW(evaluate_predictions(truth, pred), std::invalid_argument);
  const std::vector<double> scores = {0.5, 0.6};
  EXPECT_THROW(evaluate_scores(truth, scores), std::invalid_argument);
}

TEST(AucTest, PerfectSeparationIsOne) {
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(roc_auc(truth, scores), 1.0);
}

TEST(AucTest, InvertedSeparationIsZero) {
  const std::vector<int> truth = {1, 1, 0, 0};
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(roc_auc(truth, scores), 0.0);
}

TEST(AucTest, AllTiedScoresIsHalf) {
  const std::vector<int> truth = {0, 1, 0, 1};
  const std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(roc_auc(truth, scores), 0.5);
}

TEST(AucTest, KnownPartialOverlap) {
  // positives: 0.4, 0.8; negatives: 0.2, 0.6
  // pairs: (0.4>0.2)=1, (0.4<0.6)=0, (0.8>0.2)=1, (0.8>0.6)=1 -> 3/4
  const std::vector<int> truth = {1, 1, 0, 0};
  const std::vector<double> scores = {0.4, 0.8, 0.2, 0.6};
  EXPECT_DOUBLE_EQ(roc_auc(truth, scores), 0.75);
}

TEST(AucTest, SingleClassReturnsHalf) {
  const std::vector<int> truth = {1, 1};
  const std::vector<double> scores = {0.3, 0.7};
  EXPECT_EQ(roc_auc(truth, scores), 0.5);
}

TEST(MetricsTest, EvaluateScoresThresholds) {
  const std::vector<int> truth = {0, 1};
  const std::vector<double> scores = {0.4, 0.6};
  const MetricReport at_half = evaluate_scores(truth, scores, 0.5);
  EXPECT_DOUBLE_EQ(at_half.accuracy, 1.0);
  const MetricReport at_low = evaluate_scores(truth, scores, 0.3);
  EXPECT_DOUBLE_EQ(at_low.fpr, 1.0);
}

TEST(MetricsTest, RowFormattingMatchesHeader) {
  const MetricReport m;
  EXPECT_EQ(metric_row(m).size(), metric_header().size());
  EXPECT_EQ(metric_header()[0], "ACC");
  EXPECT_EQ(metric_header()[2], "AUC");
}

}  // namespace
}  // namespace drlhmd::ml
