#include <gtest/gtest.h>

#include <cmath>

#include "ml/conv_net.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbdt.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/mlp.hpp"
#include "ml/model_zoo.hpp"
#include "ml/random_forest.hpp"
#include "util/rng.hpp"

namespace drlhmd::ml {
namespace {

/// Two well-separated Gaussian blobs in 4-D (the engineered feature width).
Dataset blobs(std::size_t n_per_class, double gap = 3.0, std::uint64_t seed = 5) {
  util::Rng rng(seed);
  Dataset d;
  for (std::size_t i = 0; i < n_per_class; ++i) {
    std::vector<double> benign(4), malware(4);
    for (std::size_t c = 0; c < 4; ++c) {
      benign[c] = rng.normal(0.0, 1.0);
      malware[c] = rng.normal(gap, 1.0);
    }
    d.push(std::move(benign), 0);
    d.push(std::move(malware), 1);
  }
  d.shuffle(rng);
  return d;
}

/// XOR in two dimensions: linearly inseparable.
Dataset xor_data(std::size_t n, std::uint64_t seed = 7) {
  util::Rng rng(seed);
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const bool a = rng.bernoulli(0.5), b = rng.bernoulli(0.5);
    d.push({a ? 1.0 + rng.normal(0, 0.1) : rng.normal(0, 0.1),
            b ? 1.0 + rng.normal(0, 0.1) : rng.normal(0, 0.1)},
           (a != b) ? 1 : 0);
  }
  return d;
}

// ---------------------------------------------------------------- Sweep --

class ModelSweep : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ModelSweep, LearnsSeparableBlobs) {
  auto model = make_model(GetParam());
  const Dataset train = blobs(200);
  const Dataset test = blobs(100, 3.0, 99);
  model->fit(train);
  EXPECT_TRUE(model->trained());
  const MetricReport m = model->evaluate(test);
  EXPECT_GT(m.accuracy, 0.95) << model->name();
  EXPECT_GT(m.auc, 0.97) << model->name();
}

TEST_P(ModelSweep, ProbabilitiesAreProbabilities) {
  auto model = make_model(GetParam());
  model->fit(blobs(100));
  const Dataset test = blobs(50, 3.0, 123);
  for (const auto& row : test.rows_copy()) {
    const double p = model->predict_proba(row);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST_P(ModelSweep, DeterministicRetraining) {
  auto a = make_model(GetParam());
  auto b = make_model(GetParam());
  const Dataset train = blobs(120);
  a->fit(train);
  b->fit(train);
  const Dataset test = blobs(20, 3.0, 321);
  for (const auto& row : test.rows_copy())
    EXPECT_DOUBLE_EQ(a->predict_proba(row), b->predict_proba(row)) << a->name();
}

TEST_P(ModelSweep, CloneUntrainedIsFreshAndEquivalent) {
  auto model = make_model(GetParam());
  const Dataset train = blobs(120);
  model->fit(train);
  auto clone = model->clone_untrained();
  EXPECT_FALSE(clone->trained());
  clone->fit(train);
  const Dataset test = blobs(20, 3.0, 456);
  for (const auto& row : test.rows_copy())
    EXPECT_DOUBLE_EQ(model->predict_proba(row), clone->predict_proba(row));
}

TEST_P(ModelSweep, PredictBeforeFitThrows) {
  auto model = make_model(GetParam());
  const std::vector<double> x = {0.0, 0.0, 0.0, 0.0};
  EXPECT_THROW(model->predict_proba(x), std::logic_error);
}

TEST_P(ModelSweep, FitEmptyDatasetThrows) {
  auto model = make_model(GetParam());
  EXPECT_THROW(model->fit(Dataset{}), std::invalid_argument);
}

TEST_P(ModelSweep, SerializedFormIsNonEmptyAndStable) {
  auto model = make_model(GetParam());
  model->fit(blobs(80));
  const auto bytes1 = model->serialize();
  const auto bytes2 = model->serialize();
  EXPECT_FALSE(bytes1.empty());
  EXPECT_EQ(bytes1, bytes2);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelSweep,
                         ::testing::Values(ModelKind::kRf, ModelKind::kDt,
                                           ModelKind::kLr, ModelKind::kMlp,
                                           ModelKind::kLightGbm, ModelKind::kNn),
                         [](const auto& info) {
                           switch (info.param) {
                             case ModelKind::kRf: return "RF";
                             case ModelKind::kDt: return "DT";
                             case ModelKind::kLr: return "LR";
                             case ModelKind::kMlp: return "MLP";
                             case ModelKind::kLightGbm: return "LightGBM";
                             case ModelKind::kNn: return "NN";
                           }
                           return "unknown";
                         });

// -------------------------------------------------- Model-specific tests --

TEST(LogisticRegressionTest, SerializeRoundTrip) {
  LogisticRegression lr;
  lr.fit(blobs(100));
  const LogisticRegression restored = LogisticRegression::deserialize(lr.serialize());
  const Dataset test = blobs(20, 3.0, 11);
  for (const auto& row : test.rows_copy())
    EXPECT_DOUBLE_EQ(lr.predict_proba(row), restored.predict_proba(row));
}

TEST(LogisticRegressionTest, GradientsPointAlongWeights) {
  LogisticRegression lr;
  lr.fit(blobs(200));
  const std::vector<double> x = {1.0, 1.0, 1.0, 1.0};
  const auto grad = lr.probability_gradient(x);
  const auto& w = lr.weights();
  // dP/dx_i = p(1-p) w_i: same sign as w_i.
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (w[i] > 1e-6) EXPECT_GT(grad[i], 0.0);
    if (w[i] < -1e-6) EXPECT_LT(grad[i], 0.0);
  }
}

TEST(LogisticRegressionTest, LossGradientNumericCheck) {
  LogisticRegression lr;
  lr.fit(blobs(200));
  const std::vector<double> x = {0.5, -0.3, 1.2, 0.1};
  const auto grad = lr.loss_gradient(x, 0);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::vector<double> plus = x, minus = x;
    plus[i] += eps;
    minus[i] -= eps;
    const double bce_plus = -std::log(1.0 - lr.predict_proba(plus));
    const double bce_minus = -std::log(1.0 - lr.predict_proba(minus));
    EXPECT_NEAR(grad[i], (bce_plus - bce_minus) / (2 * eps), 1e-5);
  }
  EXPECT_THROW(lr.loss_gradient(x, 2), std::invalid_argument);
}

TEST(LogisticRegressionTest, ConfigValidation) {
  LogisticRegressionConfig bad;
  bad.learning_rate = 0.0;
  EXPECT_THROW(LogisticRegression{bad}, std::invalid_argument);
  bad = {};
  bad.epochs = 0;
  EXPECT_THROW(LogisticRegression{bad}, std::invalid_argument);
}

TEST(DecisionTreeTest, SolvesXor) {
  DecisionTree tree;
  tree.fit(xor_data(400));
  const MetricReport m = tree.evaluate(xor_data(200, 99));
  EXPECT_GT(m.accuracy, 0.95);
}

TEST(DecisionTreeTest, DepthRespectsLimit) {
  DecisionTreeConfig cfg;
  cfg.max_depth = 3;
  DecisionTree tree(cfg);
  tree.fit(blobs(200, 0.5));  // hard data forces deep growth if allowed
  EXPECT_LE(tree.depth(), 4u);  // max_depth internal splits -> depth+1 nodes
}

TEST(DecisionTreeTest, PureNodeStopsSplitting) {
  Dataset d;
  for (int i = 0; i < 50; ++i) d.push({1.0, 2.0}, 1);
  DecisionTree tree;
  tree.fit(d);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict_proba(std::vector<double>{1.0, 2.0}), 1.0);
}

TEST(DecisionTreeTest, WeightedFitIgnoresZeroWeightRows) {
  Dataset d;
  d.push({0.0}, 0);
  d.push({0.1}, 0);
  d.push({0.9}, 1);
  d.push({1.0}, 1);
  d.push({0.4}, 1);  // will be masked out
  const std::vector<std::uint32_t> weights = {1, 1, 1, 1, 0};
  DecisionTreeConfig cfg;
  cfg.min_samples_split = 2;
  cfg.min_samples_leaf = 1;
  DecisionTree tree(cfg);
  tree.fit_weighted(d, weights);
  // With the third row ignored, threshold sits at 0.5: 0.4 -> benign side.
  EXPECT_LT(tree.predict_proba(std::vector<double>{0.2}), 0.5);
  const std::vector<std::uint32_t> zeros = {0, 0, 0, 0, 0};
  EXPECT_THROW(tree.fit_weighted(d, zeros), std::invalid_argument);
}

TEST(DecisionTreeTest, SerializeRoundTrip) {
  DecisionTree tree;
  tree.fit(xor_data(200));
  const DecisionTree restored = DecisionTree::deserialize(tree.serialize());
  const Dataset test = xor_data(50, 3);
  for (const auto& row : test.rows_copy())
    EXPECT_DOUBLE_EQ(tree.predict_proba(row), restored.predict_proba(row));
}

TEST(RandomForestTest, OutperformsSingleTreeOnNoisyData) {
  const Dataset train = blobs(300, 1.2);
  const Dataset test = blobs(300, 1.2, 1234);
  DecisionTree tree;
  tree.fit(train);
  RandomForest forest;
  forest.fit(train);
  EXPECT_GE(forest.evaluate(test).auc, tree.evaluate(test).auc - 0.005);
  EXPECT_EQ(forest.tree_count(), RandomForestConfig{}.n_trees);
}

TEST(RandomForestTest, SerializeRoundTrip) {
  RandomForestConfig cfg;
  cfg.n_trees = 5;
  RandomForest forest(cfg);
  forest.fit(blobs(100));
  const RandomForest restored = RandomForest::deserialize(forest.serialize());
  const Dataset test = blobs(20, 3.0, 77);
  for (const auto& row : test.rows_copy())
    EXPECT_DOUBLE_EQ(forest.predict_proba(row), restored.predict_proba(row));
}

TEST(GbdtTest, SolvesXor) {
  Gbdt model;
  model.fit(xor_data(400));
  EXPECT_GT(model.evaluate(xor_data(200, 99)).accuracy, 0.95);
}

TEST(GbdtTest, MoreRoundsFitTrainingDataBetter) {
  GbdtConfig small;
  small.n_rounds = 2;
  GbdtConfig large;
  large.n_rounds = 60;
  const Dataset train = blobs(200, 1.0);
  Gbdt a(small), b(large);
  a.fit(train);
  b.fit(train);
  EXPECT_GE(b.evaluate(train).accuracy, a.evaluate(train).accuracy);
  EXPECT_EQ(b.tree_count(), 60u);
}

TEST(GbdtTest, RawScoreIsLogOdds) {
  Gbdt model;
  const Dataset train = blobs(150);
  model.fit(train);
  const std::vector<double> x = train.row_copy(0);
  const double raw = model.raw_score(x);
  const double p = model.predict_proba(x);
  EXPECT_NEAR(p, 1.0 / (1.0 + std::exp(-raw)), 1e-12);
}

TEST(GbdtTest, SerializeRoundTrip) {
  GbdtConfig cfg;
  cfg.n_rounds = 10;
  Gbdt model(cfg);
  model.fit(blobs(100));
  const Gbdt restored = Gbdt::deserialize(model.serialize());
  const Dataset test = blobs(20, 3.0, 88);
  for (const auto& row : test.rows_copy())
    EXPECT_DOUBLE_EQ(model.predict_proba(row), restored.predict_proba(row));
}

TEST(GbdtTest, ConfigValidation) {
  GbdtConfig bad;
  bad.max_bins = 1;
  EXPECT_THROW(Gbdt{bad}, std::invalid_argument);
  bad = {};
  bad.max_leaves = 1;
  EXPECT_THROW(Gbdt{bad}, std::invalid_argument);
}

TEST(MlpTest, SolvesXor) {
  MlpConfig cfg;
  cfg.epochs = 150;
  MlpClassifier mlp(cfg);
  mlp.fit(xor_data(400));
  EXPECT_GT(mlp.evaluate(xor_data(200, 99)).accuracy, 0.95);
}

TEST(MlpTest, SerializeRoundTrip) {
  MlpClassifier mlp;
  mlp.fit(blobs(100));
  const MlpClassifier restored = MlpClassifier::deserialize(mlp.serialize());
  const Dataset test = blobs(20, 3.0, 55);
  for (const auto& row : test.rows_copy())
    EXPECT_DOUBLE_EQ(mlp.predict_proba(row), restored.predict_proba(row));
}

TEST(ConvNetTest, ArchitectureIs2Conv3Fc) {
  ConvNetClassifier nn;
  nn.fit(blobs(100));
  EXPECT_GT(nn.param_count(), 0u);
  // 4 features, kernel 2: conv(1->8), conv(8->16), fc(32->32), fc(32->16),
  // fc(16->2) — forward must work on 4-wide input.
  EXPECT_NO_THROW(nn.predict_proba(std::vector<double>{0, 0, 0, 0}));
}

TEST(ConvNetTest, AdaptsKernelToNarrowInput) {
  // 2 features cannot carry two valid kernel-2 convolutions; the net clamps
  // the kernel to 1 instead of failing.
  ConvNetClassifier nn;
  nn.fit(xor_data(200));
  EXPECT_GT(nn.evaluate(xor_data(100, 31)).accuracy, 0.8);
}

TEST(ConvNetTest, SerializeRoundTrip) {
  ConvNetClassifier nn;
  nn.fit(blobs(80));
  const ConvNetClassifier restored = ConvNetClassifier::deserialize(nn.serialize());
  const Dataset test = blobs(20, 3.0, 66);
  for (const auto& row : test.rows_copy())
    EXPECT_DOUBLE_EQ(nn.predict_proba(row), restored.predict_proba(row));
}

TEST(ModelZooTest, ClassicalExcludesNn) {
  const auto classical = make_classical_models();
  ASSERT_EQ(classical.size(), 5u);
  for (const auto& m : classical) EXPECT_NE(m->name(), "NN");
  const auto all = make_all_models();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all.back()->name(), "NN");
  EXPECT_EQ(all[0]->name(), "RF");
  EXPECT_EQ(all[4]->name(), "LightGBM");
}

}  // namespace
}  // namespace drlhmd::ml
