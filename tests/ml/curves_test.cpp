#include "ml/curves.hpp"

#include <gtest/gtest.h>

#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace drlhmd::ml {
namespace {

TEST(RocCurveTest, PerfectSeparation) {
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const auto curve = roc_curve(truth, scores);
  // First point (0,0), last point (1,1).
  EXPECT_EQ(curve.front().fpr, 0.0);
  EXPECT_EQ(curve.front().tpr, 0.0);
  EXPECT_EQ(curve.back().fpr, 1.0);
  EXPECT_EQ(curve.back().tpr, 1.0);
  EXPECT_NEAR(auc_from_curve(curve), 1.0, 1e-12);
}

TEST(RocCurveTest, AreaMatchesRankAuc) {
  util::Rng rng(3);
  std::vector<int> truth;
  std::vector<double> scores;
  for (int i = 0; i < 500; ++i) {
    const int label = rng.bernoulli(0.4) ? 1 : 0;
    truth.push_back(label);
    scores.push_back(rng.normal(label == 1 ? 1.0 : 0.0, 1.0));
  }
  const double rank_auc = roc_auc(truth, scores);
  const double curve_auc = auc_from_curve(roc_curve(truth, scores));
  EXPECT_NEAR(rank_auc, curve_auc, 1e-9);
}

TEST(RocCurveTest, TiesCollapseToOnePoint) {
  const std::vector<int> truth = {0, 1, 0, 1};
  const std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  const auto curve = roc_curve(truth, scores);
  ASSERT_EQ(curve.size(), 2u);  // origin + single tied point
  EXPECT_NEAR(auc_from_curve(curve), 0.5, 1e-12);
}

TEST(RocCurveTest, MonotoneNondecreasing) {
  util::Rng rng(5);
  std::vector<int> truth;
  std::vector<double> scores;
  for (int i = 0; i < 200; ++i) {
    truth.push_back(rng.bernoulli(0.5) ? 1 : 0);
    scores.push_back(rng.uniform());
  }
  const auto curve = roc_curve(truth, scores);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].fpr + 1e-12, curve[i - 1].fpr);
    EXPECT_GE(curve[i].tpr + 1e-12, curve[i - 1].tpr);
    EXPECT_LE(curve[i].threshold, curve[i - 1].threshold);
  }
}

TEST(RocCurveTest, Errors) {
  const std::vector<int> truth = {0, 1};
  const std::vector<double> short_scores = {0.5};
  EXPECT_THROW(roc_curve(truth, short_scores), std::invalid_argument);
  const std::vector<int> bad = {0, 2};
  const std::vector<double> scores = {0.5, 0.6};
  EXPECT_THROW(roc_curve(bad, scores), std::invalid_argument);
  EXPECT_THROW(roc_curve({}, {}), std::invalid_argument);
}

TEST(PrCurveTest, PerfectSeparation) {
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const auto curve = pr_curve(truth, scores);
  // At the highest threshold precision is 1; at the end recall is 1.
  EXPECT_EQ(curve.front().precision, 1.0);
  EXPECT_EQ(curve.back().recall, 1.0);
}

TEST(PrCurveTest, RecallNondecreasing) {
  util::Rng rng(7);
  std::vector<int> truth;
  std::vector<double> scores;
  for (int i = 0; i < 300; ++i) {
    truth.push_back(rng.bernoulli(0.3) ? 1 : 0);
    scores.push_back(rng.uniform());
  }
  const auto curve = pr_curve(truth, scores);
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_GE(curve[i].recall + 1e-12, curve[i - 1].recall);
}

TEST(ThresholdForFprTest, RespectsBudget) {
  util::Rng rng(9);
  std::vector<int> truth;
  std::vector<double> scores;
  for (int i = 0; i < 1000; ++i) {
    const int label = rng.bernoulli(0.5) ? 1 : 0;
    truth.push_back(label);
    scores.push_back(rng.normal(label == 1 ? 1.5 : 0.0, 1.0));
  }
  for (const double budget : {0.01, 0.05, 0.2}) {
    const double threshold = threshold_for_fpr(truth, scores, budget);
    const MetricReport m = evaluate_scores(truth, scores, threshold);
    EXPECT_LE(m.fpr, budget + 1e-9) << budget;
  }
  EXPECT_THROW(threshold_for_fpr(truth, scores, 1.5), std::invalid_argument);
}

TEST(ThresholdForFprTest, ZeroBudgetMeansNoFalsePositives) {
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<double> scores = {0.1, 0.6, 0.7, 0.9};
  const double threshold = threshold_for_fpr(truth, scores, 0.0);
  const MetricReport m = evaluate_scores(truth, scores, threshold);
  EXPECT_EQ(m.fpr, 0.0);
  EXPECT_GT(m.tpr, 0.0);
}

}  // namespace
}  // namespace drlhmd::ml
