// DSH1 shard format: round trip, zero-copy aliasing, CRC detection,
// truncation handling and multi-shard aggregation.
#include "ml/sharded_dataset.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "ml/data_source.hpp"
#include "ml/dataset.hpp"

namespace drlhmd::ml {
namespace {

std::string fresh_dir(const std::string& leaf) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / leaf).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Dataset make_dataset(std::size_t rows, std::size_t cols, double salt) {
  Dataset data;
  for (std::size_t c = 0; c < cols; ++c)
    data.feature_names.push_back("f" + std::to_string(c));
  data.X = FeatureMatrix(rows, cols);
  for (std::size_t c = 0; c < cols; ++c) {
    const std::span<double> col = data.X.col(c);
    for (std::size_t r = 0; r < rows; ++r)
      col[r] = salt + static_cast<double>(r) * 1.25 + static_cast<double>(c) * 0.5;
  }
  for (std::size_t r = 0; r < rows; ++r) data.y.push_back(r % 2 == 0 ? 0 : 1);
  return data;
}

void write_one(const std::string& dir, std::uint32_t index,
               const Dataset& data, const std::string& profile) {
  write_shard((std::filesystem::path(dir) / shard_file_name(index)).string(),
              index, profile, data.feature_names, data.X, data.y);
}

TEST(ShardedDatasetTest, SingleShardRoundTrip) {
  const std::string dir = fresh_dir("dsh-roundtrip");
  const Dataset data = make_dataset(37, 5, 0.0);
  write_one(dir, 0, data, "testbed-i7");

  const ShardedDataset source = ShardedDataset::open(dir);
  ASSERT_EQ(source.num_shards(), 1u);
  EXPECT_EQ(source.rows(), 37u);
  EXPECT_EQ(source.num_features(), 5u);
  EXPECT_EQ(source.feature_names(), data.feature_names);
  EXPECT_EQ(source.profile_id(0), "testbed-i7");
  EXPECT_GT(source.mapped_bytes(), 37u * 5u * sizeof(double));

  const BatchView view = source.shard(0);
  ASSERT_EQ(view.rows(), 37u);
  ASSERT_EQ(view.cols(), 5u);
  for (std::size_t c = 0; c < 5; ++c)
    for (std::size_t r = 0; r < 37; ++r)
      EXPECT_EQ(view.col(c)[r], data.X.at(r, c));  // bitwise via mmap
  const std::span<const int> labels = source.labels(0);
  ASSERT_EQ(labels.size(), 37u);
  for (std::size_t r = 0; r < 37; ++r) EXPECT_EQ(labels[r], data.y[r]);
}

TEST(ShardedDatasetTest, MultiShardAggregation) {
  const std::string dir = fresh_dir("dsh-multi");
  const Dataset a = make_dataset(11, 3, 1.0);
  const Dataset b = make_dataset(7, 3, 2.0);
  const Dataset c = make_dataset(19, 3, 3.0);
  // Write out of order: open() must sort by header shard index.
  write_one(dir, 2, c, "p2");
  write_one(dir, 0, a, "p0");
  write_one(dir, 1, b, "p1");

  const ShardedDataset source = ShardedDataset::open(dir);
  ASSERT_EQ(source.num_shards(), 3u);
  EXPECT_EQ(source.rows(), 11u + 7u + 19u);
  EXPECT_EQ(source.profile_id(0), "p0");
  EXPECT_EQ(source.profile_id(1), "p1");
  EXPECT_EQ(source.profile_id(2), "p2");
  source.validate();

  // Materializing through the DataSource concatenates in shard order.
  const Dataset merged = materialize(source);
  EXPECT_EQ(merged.size(), source.rows());
  EXPECT_EQ(merged.X.at(0, 0), a.X.at(0, 0));
  EXPECT_EQ(merged.X.at(11, 0), b.X.at(0, 0));
  EXPECT_EQ(merged.X.at(18, 2), c.X.at(0, 2));
  EXPECT_EQ(merged.y[17], b.y[6]);
}

TEST(ShardedDatasetTest, CrcCorruptionDetected) {
  const std::string dir = fresh_dir("dsh-crc");
  write_one(dir, 0, make_dataset(16, 4, 5.0), "p");
  const std::string path =
      (std::filesystem::path(dir) / shard_file_name(0)).string();

  // Flip one payload byte near the end of the file.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-5, std::ios::end);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-5, std::ios::end);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }

  EXPECT_THROW(ShardedDataset::open(dir), std::runtime_error);
  // Lenient inspection still lists it, flagged.
  const std::vector<ShardInfo> infos = ShardedDataset::inspect(dir);
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_FALSE(infos[0].crc_ok);
  EXPECT_EQ(infos[0].rows, 16u);
  // CRC verification can be explicitly skipped (merge tooling on known-good
  // local files).
  EXPECT_NO_THROW(ShardedDataset::open(dir, /*verify_crc=*/false));
}

TEST(ShardedDatasetTest, TruncatedShardRejected) {
  const std::string dir = fresh_dir("dsh-trunc");
  write_one(dir, 0, make_dataset(16, 4, 7.0), "p");
  const std::string path =
      (std::filesystem::path(dir) / shard_file_name(0)).string();
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 64);

  EXPECT_ANY_THROW(ShardedDataset::open(dir));
  const std::vector<ShardInfo> infos = ShardedDataset::inspect(dir);
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_FALSE(infos[0].crc_ok);
}

TEST(ShardedDatasetTest, MismatchedFeatureNamesRejected) {
  const std::string dir = fresh_dir("dsh-names");
  write_one(dir, 0, make_dataset(8, 3, 0.0), "p");
  Dataset other = make_dataset(8, 3, 1.0);
  other.feature_names[1] = "different";
  write_one(dir, 1, other, "p");
  EXPECT_THROW(ShardedDataset::open(dir), std::invalid_argument);
}

TEST(ShardedDatasetTest, EmptyDirectoryRejected) {
  const std::string dir = fresh_dir("dsh-empty");
  EXPECT_THROW(ShardedDataset::open(dir), std::invalid_argument);
  EXPECT_TRUE(ShardedDataset::inspect(dir).empty());
}

}  // namespace
}  // namespace drlhmd::ml
