#include "ml/multiclass.hpp"

#include <gtest/gtest.h>

#include "ml/decision_tree.hpp"
#include "ml/logistic_regression.hpp"
#include "util/rng.hpp"

namespace drlhmd::ml {
namespace {

/// Three well-separated 2-D clusters.
MulticlassDataset clusters(std::size_t n_per_class, double gap, std::uint64_t seed) {
  util::Rng rng(seed);
  MulticlassDataset d;
  d.class_names = {"alpha", "beta", "gamma"};
  const double centers[3][2] = {{0, 0}, {gap, 0}, {0, gap}};
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < n_per_class; ++i) {
      d.push({centers[c][0] + rng.normal(0, 0.7),
              centers[c][1] + rng.normal(0, 0.7)},
             c);
    }
  }
  return d;
}

TEST(MulticlassDatasetTest, Validation) {
  MulticlassDataset d = clusters(5, 3.0, 1);
  EXPECT_NO_THROW(d.validate());
  EXPECT_EQ(d.count_class(0), 5u);

  MulticlassDataset bad_label = d;
  bad_label.y[0] = 9;
  EXPECT_THROW(bad_label.validate(), std::invalid_argument);

  // Ragged rows cannot be constructed: columnar storage rejects them at
  // push time rather than at validate time.
  MulticlassDataset ragged = d;
  EXPECT_THROW(ragged.push({1.0, 2.0, 3.0}, 0), std::invalid_argument);

  MulticlassDataset no_classes = d;
  no_classes.class_names.clear();
  EXPECT_THROW(no_classes.validate(), std::invalid_argument);
}

TEST(OneVsRestTest, LearnsSeparableClusters) {
  const LogisticRegression prototype;
  OneVsRestClassifier model(prototype);
  model.fit(clusters(150, 5.0, 2));
  const auto report = model.evaluate(clusters(80, 5.0, 3));
  EXPECT_GT(report.accuracy, 0.95);
  EXPECT_GT(report.macro_recall, 0.95);
  EXPECT_EQ(model.class_count(), 3u);
}

TEST(OneVsRestTest, ConfusionRowsSumToClassCounts) {
  const DecisionTree prototype;
  OneVsRestClassifier model(prototype);
  model.fit(clusters(100, 3.0, 4));
  const MulticlassDataset test = clusters(40, 3.0, 5);
  const auto report = model.evaluate(test);
  for (std::size_t c = 0; c < 3; ++c) {
    std::size_t row_total = 0;
    for (std::size_t p = 0; p < 3; ++p) row_total += report.confusion[c][p];
    EXPECT_EQ(row_total, test.count_class(c));
  }
}

TEST(OneVsRestTest, ScoresOnePerClass) {
  const LogisticRegression prototype;
  OneVsRestClassifier model(prototype);
  model.fit(clusters(50, 4.0, 6));
  const std::vector<double> x = {4.0, 0.0};  // near class beta
  const auto s = model.scores(x);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(model.predict(x), 1u);
  for (double v : s) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(OneVsRestTest, Errors) {
  const LogisticRegression prototype;
  OneVsRestClassifier model(prototype);
  const std::vector<double> x = {0.0, 0.0};
  EXPECT_THROW(model.predict(x), std::logic_error);
  EXPECT_THROW(model.fit(MulticlassDataset{}), std::invalid_argument);

  MulticlassDataset missing_class = clusters(10, 3.0, 7);
  missing_class.class_names.push_back("never-seen");
  EXPECT_THROW(model.fit(missing_class), std::invalid_argument);

  model.fit(clusters(30, 3.0, 8));
  MulticlassDataset wrong_k = clusters(10, 3.0, 9);
  wrong_k.class_names.push_back("extra");
  EXPECT_THROW(model.evaluate(wrong_k), std::invalid_argument);
}

TEST(OneVsRestTest, OverlappingClustersDegrade) {
  const LogisticRegression prototype;
  OneVsRestClassifier model(prototype);
  model.fit(clusters(150, 0.5, 10));
  const auto report = model.evaluate(clusters(80, 0.5, 11));
  EXPECT_LT(report.accuracy, 0.9);
  EXPECT_GT(report.accuracy, 0.3);  // still better than chance
}

}  // namespace
}  // namespace drlhmd::ml
