#include "ml/cross_validation.hpp"

#include <gtest/gtest.h>

#include "ml/decision_tree.hpp"
#include "ml/logistic_regression.hpp"
#include "util/rng.hpp"

namespace drlhmd::ml {
namespace {

Dataset blobs(std::size_t n_per_class, double gap, std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset d;
  for (std::size_t i = 0; i < n_per_class; ++i) {
    d.push({rng.normal(0, 1), rng.normal(0, 1)}, 0);
    d.push({rng.normal(gap, 1), rng.normal(gap, 1)}, 1);
  }
  return d;
}

TEST(StratifiedFoldsTest, EveryFoldBalanced) {
  const Dataset d = blobs(50, 3.0, 1);
  util::Rng rng(2);
  const auto folds = stratified_folds(d, 5, rng);
  ASSERT_EQ(folds.size(), d.size());
  std::vector<std::size_t> pos_per_fold(5, 0), neg_per_fold(5, 0);
  for (std::size_t i = 0; i < d.size(); ++i) {
    ASSERT_LT(folds[i], 5u);
    (d.y[i] == 1 ? pos_per_fold : neg_per_fold)[folds[i]] += 1;
  }
  for (std::size_t f = 0; f < 5; ++f) {
    EXPECT_EQ(pos_per_fold[f], 10u);
    EXPECT_EQ(neg_per_fold[f], 10u);
  }
}

TEST(StratifiedFoldsTest, KBelowTwoThrows) {
  const Dataset d = blobs(10, 3.0, 1);
  util::Rng rng(3);
  EXPECT_THROW(stratified_folds(d, 1, rng), std::invalid_argument);
}

TEST(CrossValidateTest, HighScoresOnSeparableData) {
  LogisticRegression prototype;
  const auto result = cross_validate(prototype, blobs(100, 4.0, 4), 5);
  ASSERT_EQ(result.folds.size(), 5u);
  EXPECT_GT(result.mean_accuracy(), 0.95);
  EXPECT_GT(result.mean_f1(), 0.95);
  EXPECT_GT(result.mean_auc(), 0.99);
  EXPECT_LT(result.stddev_f1(), 0.06);
}

TEST(CrossValidateTest, HardDataShowsVariance) {
  DecisionTree prototype;
  const auto result = cross_validate(prototype, blobs(60, 0.8, 5), 4);
  EXPECT_LT(result.mean_accuracy(), 0.9);  // overlapping classes
  EXPECT_GT(result.mean_accuracy(), 0.5);
}

TEST(CrossValidateTest, DeterministicInSeed) {
  LogisticRegression prototype;
  const Dataset d = blobs(60, 2.0, 6);
  const auto a = cross_validate(prototype, d, 3, 42);
  const auto b = cross_validate(prototype, d, 3, 42);
  ASSERT_EQ(a.folds.size(), b.folds.size());
  for (std::size_t f = 0; f < a.folds.size(); ++f)
    EXPECT_DOUBLE_EQ(a.folds[f].f1, b.folds[f].f1);
}

TEST(CrossValidateTest, Errors) {
  LogisticRegression prototype;
  EXPECT_THROW(cross_validate(prototype, blobs(30, 2.0, 7), 1),
               std::invalid_argument);
  EXPECT_THROW(cross_validate(prototype, blobs(3, 2.0, 8), 10),
               std::invalid_argument);
}

TEST(CrossValidationResultTest, EmptyIsZero) {
  const CrossValidationResult empty;
  EXPECT_EQ(empty.mean_accuracy(), 0.0);
  EXPECT_EQ(empty.mean_f1(), 0.0);
  EXPECT_EQ(empty.stddev_f1(), 0.0);
}

}  // namespace
}  // namespace drlhmd::ml
