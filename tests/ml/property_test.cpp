// Randomized algebraic/metric property sweeps across seeds.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/matrix.hpp"
#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "ml/mutual_info.hpp"
#include "ml/preprocess.hpp"
#include "util/rng.hpp"

namespace drlhmd::ml {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  util::Rng rng{GetParam()};
};

TEST_P(SeedSweep, MatrixMultiplicationAssociative) {
  const Matrix a = Matrix::randn(3, 4, 1.0, rng);
  const Matrix b = Matrix::randn(4, 5, 1.0, rng);
  const Matrix c = Matrix::randn(5, 2, 1.0, rng);
  const Matrix left = a.matmul(b).matmul(c);
  const Matrix right = a.matmul(b.matmul(c));
  ASSERT_TRUE(left.same_shape(right));
  for (std::size_t i = 0; i < left.size(); ++i)
    EXPECT_NEAR(left.flat()[i], right.flat()[i], 1e-9);
}

TEST_P(SeedSweep, TransposeReversesProduct) {
  const Matrix a = Matrix::randn(3, 4, 1.0, rng);
  const Matrix b = Matrix::randn(4, 5, 1.0, rng);
  const Matrix lhs = a.matmul(b).transposed();
  const Matrix rhs = b.transposed().matmul(a.transposed());
  for (std::size_t i = 0; i < lhs.size(); ++i)
    EXPECT_NEAR(lhs.flat()[i], rhs.flat()[i], 1e-9);
}

TEST_P(SeedSweep, DistributiveLaw) {
  const Matrix a = Matrix::randn(3, 4, 1.0, rng);
  const Matrix b = Matrix::randn(4, 2, 1.0, rng);
  const Matrix c = Matrix::randn(4, 2, 1.0, rng);
  const Matrix lhs = a.matmul(b + c);
  const Matrix rhs = a.matmul(b) + a.matmul(c);
  for (std::size_t i = 0; i < lhs.size(); ++i)
    EXPECT_NEAR(lhs.flat()[i], rhs.flat()[i], 1e-9);
}

TEST_P(SeedSweep, ThresholdMonotonicity) {
  // Raising the decision threshold can only reduce TPR and FPR.
  std::vector<int> truth;
  std::vector<double> scores;
  for (int i = 0; i < 300; ++i) {
    truth.push_back(rng.bernoulli(0.4) ? 1 : 0);
    scores.push_back(rng.uniform());
  }
  double last_tpr = 1.1, last_fpr = 1.1;
  for (double threshold = 0.0; threshold <= 1.01; threshold += 0.1) {
    const MetricReport m = evaluate_scores(truth, scores, threshold);
    EXPECT_LE(m.tpr, last_tpr + 1e-12);
    EXPECT_LE(m.fpr, last_fpr + 1e-12);
    last_tpr = m.tpr;
    last_fpr = m.fpr;
  }
}

TEST_P(SeedSweep, AucInvariantUnderMonotoneTransform) {
  std::vector<int> truth;
  std::vector<double> scores, transformed;
  for (int i = 0; i < 200; ++i) {
    truth.push_back(rng.bernoulli(0.5) ? 1 : 0);
    const double s = rng.uniform();
    scores.push_back(s);
    transformed.push_back(std::exp(3.0 * s) + 5.0);  // strictly increasing
  }
  EXPECT_NEAR(roc_auc(truth, scores), roc_auc(truth, transformed), 1e-12);
}

TEST_P(SeedSweep, ScalerRoundTrip) {
  Dataset d;
  for (int i = 0; i < 50; ++i)
    d.push({rng.normal(5, 2), rng.normal(-3, 0.5), rng.uniform(0, 100)}, i % 2);
  StandardScaler scaler;
  scaler.fit(d);
  for (const auto& row : d.rows_copy()) {
    const auto restored = scaler.inverse_transform(scaler.transform(row));
    for (std::size_t c = 0; c < row.size(); ++c)
      EXPECT_NEAR(restored[c], row[c], 1e-9);
  }
}

TEST_P(SeedSweep, MutualInfoInvariantUnderColumnPermutation) {
  Dataset d;
  for (int i = 0; i < 400; ++i) {
    const int label = rng.bernoulli(0.5) ? 1 : 0;
    d.push({label + rng.normal(0, 0.5), rng.normal(0, 1)}, label);
  }
  const auto direct = mutual_information(d);
  const std::vector<std::size_t> swap_idx = {1, 0};
  const auto swapped = mutual_information(d.select_features(swap_idx));
  EXPECT_NEAR(direct.scores[0], swapped.scores[1], 1e-12);
  EXPECT_NEAR(direct.scores[1], swapped.scores[0], 1e-12);
}

TEST_P(SeedSweep, ModelsStayProbabilisticOnOutOfRangeInputs) {
  Dataset train;
  for (int i = 0; i < 120; ++i) {
    train.push({rng.normal(0, 1), rng.normal(0, 1), rng.normal(0, 1),
                rng.normal(0, 1)},
               0);
    train.push({rng.normal(3, 1), rng.normal(3, 1), rng.normal(3, 1),
                rng.normal(3, 1)},
               1);
  }
  for (const ModelKind kind : {ModelKind::kRf, ModelKind::kDt, ModelKind::kLr,
                               ModelKind::kLightGbm}) {
    auto model = make_model(kind);
    model->fit(train);
    // Far outside the training envelope.
    for (const double magnitude : {-1e6, 1e6}) {
      const std::vector<double> x(4, magnitude);
      const double p = model->predict_proba(x);
      EXPECT_GE(p, 0.0) << model->name();
      EXPECT_LE(p, 1.0) << model->name();
      EXPECT_TRUE(std::isfinite(p)) << model->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1ull, 7ull, 42ull, 1234ull, 99999ull));

}  // namespace
}  // namespace drlhmd::ml
