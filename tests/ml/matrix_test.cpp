#include "ml/matrix.hpp"

#include <gtest/gtest.h>

namespace drlhmd::ml {
namespace {

TEST(MatrixTest, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  for (double v : m.flat()) EXPECT_EQ(v, 1.5);
  EXPECT_TRUE(Matrix{}.empty());
}

TEST(MatrixTest, FromRowsAndAccess) {
  const Matrix m = Matrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), std::invalid_argument);
}

TEST(MatrixTest, RowVector) {
  const std::vector<double> v = {1, 2, 3};
  const Matrix m = Matrix::row_vector(v);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(0, 2), 3.0);
}

TEST(MatrixTest, MatmulKnownResult) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  const Matrix c = a.matmul(b);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MatmulShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a.matmul(b), std::invalid_argument);
}

TEST(MatrixTest, TransposeMatmulEqualsExplicit) {
  util::Rng rng(1);
  const Matrix a = Matrix::randn(4, 3, 1.0, rng);
  const Matrix b = Matrix::randn(4, 5, 1.0, rng);
  const Matrix fast = a.transpose_matmul(b);
  const Matrix slow = a.transposed().matmul(b);
  ASSERT_TRUE(fast.same_shape(slow));
  for (std::size_t i = 0; i < fast.size(); ++i)
    EXPECT_NEAR(fast.flat()[i], slow.flat()[i], 1e-12);
}

TEST(MatrixTest, MatmulTransposeEqualsExplicit) {
  util::Rng rng(2);
  const Matrix a = Matrix::randn(3, 4, 1.0, rng);
  const Matrix b = Matrix::randn(5, 4, 1.0, rng);
  const Matrix fast = a.matmul_transpose(b);
  const Matrix slow = a.matmul(b.transposed());
  ASSERT_TRUE(fast.same_shape(slow));
  for (std::size_t i = 0; i < fast.size(); ++i)
    EXPECT_NEAR(fast.flat()[i], slow.flat()[i], 1e-12);
}

TEST(MatrixTest, TransposedTwiceIsIdentity) {
  util::Rng rng(3);
  const Matrix a = Matrix::randn(3, 7, 1.0, rng);
  const Matrix b = a.transposed().transposed();
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.flat()[i], b.flat()[i]);
}

TEST(MatrixTest, ArithmeticOperators) {
  const Matrix a = Matrix::from_rows({{1, 2}});
  const Matrix b = Matrix::from_rows({{3, 5}});
  const Matrix sum = a + b;
  EXPECT_EQ(sum(0, 0), 4.0);
  const Matrix diff = b - a;
  EXPECT_EQ(diff(0, 1), 3.0);
  const Matrix scaled = a * 2.0;
  EXPECT_EQ(scaled(0, 1), 4.0);
  Matrix c = a;
  c += b;
  EXPECT_EQ(c(0, 0), 4.0);
  c -= b;
  EXPECT_EQ(c(0, 0), 1.0);
  c *= 3.0;
  EXPECT_EQ(c(0, 1), 6.0);
}

TEST(MatrixTest, ShapeMismatchOnArithmeticThrows) {
  Matrix a(1, 2);
  const Matrix b(2, 1);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a.hadamard(b), std::invalid_argument);
}

TEST(MatrixTest, Hadamard) {
  const Matrix a = Matrix::from_rows({{2, 3}});
  const Matrix b = Matrix::from_rows({{4, 5}});
  const Matrix h = a.hadamard(b);
  EXPECT_EQ(h(0, 0), 8.0);
  EXPECT_EQ(h(0, 1), 15.0);
}

TEST(MatrixTest, AddRowBroadcast) {
  Matrix m = Matrix::from_rows({{1, 1}, {2, 2}});
  const Matrix bias = Matrix::from_rows({{10, 20}});
  m.add_row_broadcast(bias);
  EXPECT_EQ(m(0, 1), 21.0);
  EXPECT_EQ(m(1, 0), 12.0);
  const Matrix wrong(2, 2);
  EXPECT_THROW(m.add_row_broadcast(wrong), std::invalid_argument);
}

TEST(MatrixTest, ColumnSums) {
  const Matrix m = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix s = m.column_sums();
  EXPECT_EQ(s.rows(), 1u);
  EXPECT_EQ(s(0, 0), 4.0);
  EXPECT_EQ(s(0, 1), 6.0);
}

TEST(MatrixTest, RandnMoments) {
  util::Rng rng(5);
  const Matrix m = Matrix::randn(100, 100, 2.0, rng);
  double sum = 0.0, sum_sq = 0.0;
  for (double v : m.flat()) {
    sum += v;
    sum_sq += v * v;
  }
  const double n = static_cast<double>(m.size());
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 4.0, 0.15);
}

}  // namespace
}  // namespace drlhmd::ml
