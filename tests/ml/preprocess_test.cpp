#include "ml/preprocess.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace drlhmd::ml {
namespace {

Dataset simple_data() {
  Dataset d;
  d.push({1.0, 10.0}, 0);
  d.push({2.0, 10.0}, 0);
  d.push({3.0, 10.0}, 1);
  return d;
}

TEST(StandardScalerTest, TransformsToZeroMeanUnitVariance) {
  Dataset d;
  for (int i = 0; i < 100; ++i) d.push({static_cast<double>(i), 5.0 * i + 3.0}, 0);
  StandardScaler scaler;
  scaler.fit(d);
  const Dataset scaled = scaler.transform(d);
  for (std::size_t c = 0; c < 2; ++c) {
    double sum = 0.0, sum_sq = 0.0;
    for (const auto& row : scaled.rows_copy()) {
      sum += row[c];
      sum_sq += row[c] * row[c];
    }
    EXPECT_NEAR(sum / 100.0, 0.0, 1e-9);
    EXPECT_NEAR(sum_sq / 100.0, 1.0, 1e-9);
  }
}

TEST(StandardScalerTest, ConstantFeatureScalesByOne) {
  StandardScaler scaler;
  scaler.fit(simple_data());
  EXPECT_EQ(scaler.scale()[1], 1.0);
  const auto out = scaler.transform(std::vector<double>{2.0, 10.0});
  EXPECT_NEAR(out[1], 0.0, 1e-12);
}

TEST(StandardScalerTest, InverseTransformRoundTrips) {
  StandardScaler scaler;
  scaler.fit(simple_data());
  const std::vector<double> original = {2.5, 10.0};
  const auto scaled = scaler.transform(original);
  const auto restored = scaler.inverse_transform(scaled);
  EXPECT_NEAR(restored[0], original[0], 1e-12);
  EXPECT_NEAR(restored[1], original[1], 1e-12);
}

TEST(StandardScalerTest, Errors) {
  StandardScaler scaler;
  EXPECT_THROW(scaler.fit(Dataset{}), std::invalid_argument);
  scaler.fit(simple_data());
  EXPECT_THROW(scaler.transform(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(scaler.inverse_transform(std::vector<double>{1.0, 2.0, 3.0}),
               std::invalid_argument);
  EXPECT_TRUE(scaler.fitted());
}

TEST(CleanTest, DropsNonFiniteRows) {
  Dataset d = simple_data();
  d.push({std::numeric_limits<double>::quiet_NaN(), 1.0}, 1);
  d.push({std::numeric_limits<double>::infinity(), 1.0}, 0);
  const Dataset cleaned = clean(d);
  EXPECT_EQ(cleaned.size(), 3u);
  for (const auto& row : cleaned.rows_copy())
    for (double v : row) EXPECT_TRUE(std::isfinite(v));
}

TEST(CleanTest, WinsorizesOutliers) {
  Dataset d;
  for (int i = 0; i < 999; ++i) d.push({static_cast<double>(i % 10)}, 0);
  d.push({1e9}, 0);  // counter glitch
  const Dataset cleaned = clean(d, 0.001, 0.99);
  double max_val = 0.0;
  for (const auto& row : cleaned.rows_copy()) max_val = std::max(max_val, row[0]);
  EXPECT_LT(max_val, 100.0);
  EXPECT_EQ(cleaned.size(), 1000u);
}

TEST(CleanTest, BadQuantilesThrow) {
  EXPECT_THROW(clean(simple_data(), 0.9, 0.1), std::invalid_argument);
}

TEST(CleanTest, PreservesLabelsAndNames) {
  Dataset d = simple_data();
  d.feature_names = {"a", "b"};
  const Dataset cleaned = clean(d);
  EXPECT_EQ(cleaned.y, d.y);
  EXPECT_EQ(cleaned.feature_names, d.feature_names);
}

TEST(FeatureBoundsTest, ComputesMinMax) {
  const FeatureBounds b = feature_bounds(simple_data());
  EXPECT_EQ(b.lo[0], 1.0);
  EXPECT_EQ(b.hi[0], 3.0);
  EXPECT_EQ(b.lo[1], 10.0);
  EXPECT_EQ(b.hi[1], 10.0);
}

TEST(FeatureBoundsTest, ClipClampsIntoRange) {
  const FeatureBounds b = feature_bounds(simple_data());
  std::vector<double> row = {-5.0, 20.0};
  b.clip(row);
  EXPECT_EQ(row[0], 1.0);
  EXPECT_EQ(row[1], 10.0);
  std::vector<double> wrong = {1.0};
  EXPECT_THROW(b.clip(wrong), std::invalid_argument);
}

TEST(FeatureBoundsTest, EmptyDataThrows) {
  EXPECT_THROW(feature_bounds(Dataset{}), std::invalid_argument);
}

}  // namespace
}  // namespace drlhmd::ml
