#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

namespace drlhmd::ml {
namespace {

Dataset make_data(std::size_t n_benign, std::size_t n_malware) {
  Dataset d;
  d.feature_names = {"f0", "f1"};
  for (std::size_t i = 0; i < n_benign; ++i)
    d.push({static_cast<double>(i), 0.0}, 0);
  for (std::size_t i = 0; i < n_malware; ++i)
    d.push({static_cast<double>(i), 1.0}, 1);
  return d;
}

TEST(DatasetTest, BasicAccounting) {
  const Dataset d = make_data(3, 5);
  EXPECT_EQ(d.size(), 8u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_EQ(d.count_label(0), 3u);
  EXPECT_EQ(d.count_label(1), 5u);
}

TEST(DatasetTest, ValidateCatchesProblems) {
  Dataset d = make_data(2, 2);
  EXPECT_NO_THROW(d.validate());

  // Ragged rows can no longer be constructed: the columnar storage rejects
  // them at push time instead of at validate time.
  Dataset ragged = d;
  EXPECT_THROW(ragged.push({1.0, 2.0, 3.0}, 0), std::invalid_argument);

  Dataset bad_label = d;
  bad_label.y[0] = 2;
  EXPECT_THROW(bad_label.validate(), std::invalid_argument);

  Dataset mismatch = d;
  mismatch.y.pop_back();
  EXPECT_THROW(mismatch.validate(), std::invalid_argument);

  Dataset bad_names = d;
  bad_names.feature_names.push_back("extra");
  EXPECT_THROW(bad_names.validate(), std::invalid_argument);
}

TEST(DatasetTest, AppendMergesRows) {
  Dataset a = make_data(2, 1);
  const Dataset b = make_data(1, 2);
  a.append(b);
  EXPECT_EQ(a.size(), 6u);
  EXPECT_EQ(a.count_label(1), 3u);
}

TEST(DatasetTest, AppendRejectsWidthMismatch) {
  Dataset a = make_data(1, 1);
  Dataset b;
  b.push({1.0}, 0);
  EXPECT_THROW(a.append(b), std::invalid_argument);
}

TEST(DatasetTest, ShuffleKeepsPairsAligned) {
  Dataset d;
  for (int i = 0; i < 100; ++i)
    d.push({static_cast<double>(i)}, i % 2);
  util::Rng rng(3);
  d.shuffle(rng);
  for (std::size_t i = 0; i < d.size(); ++i) {
    // Feature value parity must still match the label.
    EXPECT_EQ(static_cast<int>(d.at(i, 0)) % 2, d.y[i]);
  }
}

TEST(DatasetTest, SelectFeaturesReordersColumns) {
  Dataset d = make_data(1, 1);
  const std::vector<std::size_t> idx = {1, 0};
  const Dataset sel = d.select_features(idx);
  EXPECT_EQ(sel.num_features(), 2u);
  EXPECT_EQ(sel.feature_names[0], "f1");
  EXPECT_EQ(sel.at(0, 0), d.at(0, 1));
  const std::vector<std::size_t> bad = {5};
  EXPECT_THROW(d.select_features(bad), std::out_of_range);
}

TEST(StratifiedSplitTest, PreservesClassBalance) {
  const Dataset d = make_data(100, 60);
  util::Rng rng(5);
  const TrainTestSplit split = stratified_split(d, 0.25, rng);
  EXPECT_EQ(split.test.count_label(0), 25u);
  EXPECT_EQ(split.test.count_label(1), 15u);
  EXPECT_EQ(split.train.count_label(0), 75u);
  EXPECT_EQ(split.train.count_label(1), 45u);
}

TEST(StratifiedSplitTest, NoRowLostOrDuplicated) {
  Dataset d;
  for (int i = 0; i < 50; ++i) d.push({static_cast<double>(i)}, i % 2);
  util::Rng rng(7);
  const TrainTestSplit split = stratified_split(d, 0.3, rng);
  std::set<double> seen;
  for (const double v : split.train.col(0)) seen.insert(v);
  for (const double v : split.test.col(0)) seen.insert(v);
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(split.train.size() + split.test.size(), 50u);
}

TEST(StratifiedSplitTest, BadFractionThrows) {
  const Dataset d = make_data(4, 4);
  util::Rng rng(1);
  EXPECT_THROW(stratified_split(d, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(stratified_split(d, 1.0, rng), std::invalid_argument);
}

TEST(PaperProtocolSplitTest, ProportionsMatch80_20_Twice) {
  const Dataset d = make_data(500, 500);
  util::Rng rng(11);
  const TrainValTest split = paper_protocol_split(d, rng);
  // 80:20 outer, then 80:20 of the 800 -> 640 / 160 / 200.
  EXPECT_EQ(split.test.size(), 200u);
  EXPECT_EQ(split.val.size(), 160u);
  EXPECT_EQ(split.train.size(), 640u);
}

}  // namespace
}  // namespace drlhmd::ml
