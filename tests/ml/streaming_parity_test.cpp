// Streamed-vs-monolithic exact parity: every detector trained through
// fit_stream over a multi-shard mmap-backed ShardedDataset must serialize
// byte-identically to fit() on the equivalent in-RAM dataset, and streamed
// scaler fitting / mutual information must reproduce the in-RAM results
// exactly.  This is the contract that makes the out-of-core corpus path a
// pure plumbing change, never a modeling change.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <vector>

#include "ml/data_source.hpp"
#include "ml/model_zoo.hpp"
#include "ml/mutual_info.hpp"
#include "ml/preprocess.hpp"
#include "ml/sharded_dataset.hpp"
#include "util/rng.hpp"

namespace drlhmd::ml {
namespace {

std::string fresh_dir(const std::string& leaf) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / leaf).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Learnable synthetic dataset: label depends on two columns plus noise.
Dataset make_dataset(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset data;
  for (std::size_t c = 0; c < cols; ++c)
    data.feature_names.push_back("f" + std::to_string(c));
  data.X = FeatureMatrix(0, cols);
  data.X.reserve_rows(rows);
  std::vector<double> row(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) row[c] = rng.normal();
    const int label = row[0] + 0.5 * row[1] + 0.3 * rng.normal() > 0.0 ? 1 : 0;
    data.push(row, label);
  }
  return data;
}

Dataset slice(const Dataset& data, std::size_t begin, std::size_t end) {
  Dataset out;
  out.feature_names = data.feature_names;
  out.X = FeatureMatrix(0, data.num_features());
  out.X.reserve_rows(end - begin);
  for (std::size_t r = begin; r < end; ++r) out.push_from(data, r);
  return out;
}

/// Write `data` to `dir` as three uneven shards (row order preserved).
void write_three_shards(const std::string& dir, const Dataset& data) {
  const std::size_t n = data.size();
  const std::size_t cuts[4] = {0, n / 4, n / 2 + 7, n};
  for (std::uint32_t s = 0; s < 3; ++s) {
    const Dataset part = slice(data, cuts[s], cuts[s + 1]);
    write_shard((std::filesystem::path(dir) / shard_file_name(s)).string(), s,
                "profile-" + std::to_string(s), part.feature_names, part.X,
                part.y);
  }
}

class StreamingParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = make_dataset(260, 8, 1234);
    dir_ = fresh_dir("streaming-parity");
    write_three_shards(dir_, data_);
    source_ = std::make_unique<ShardedDataset>(ShardedDataset::open(dir_));
    ASSERT_EQ(source_->num_shards(), 3u);
    ASSERT_EQ(source_->rows(), data_.size());
  }

  Dataset data_;
  std::string dir_;
  std::unique_ptr<ShardedDataset> source_;
};

TEST_F(StreamingParityTest, EveryDetectorTrainsByteIdentically) {
  for (const auto& prototype : make_all_models(7)) {
    auto mono = prototype->clone_untrained();
    auto streamed = prototype->clone_untrained();
    mono->fit(data_);
    streamed->fit_stream(*source_);
    EXPECT_EQ(mono->serialize(), streamed->serialize())
        << prototype->name() << ": streamed fit diverged from monolithic fit";
  }
}

TEST_F(StreamingParityTest, ScalerFitsIdentically) {
  StandardScaler mono, streamed;
  mono.fit(data_);
  streamed.fit_stream(*source_);
  EXPECT_EQ(mono.serialize(), streamed.serialize());
}

TEST_F(StreamingParityTest, MutualInformationIsExact) {
  const MutualInfoResult mono = mutual_information(data_, 16);
  const MutualInfoResult streamed = mutual_information(*source_, 16);
  ASSERT_EQ(mono.scores.size(), streamed.scores.size());
  for (std::size_t f = 0; f < mono.scores.size(); ++f)
    EXPECT_EQ(mono.scores[f], streamed.scores[f]) << "feature " << f;
  EXPECT_EQ(mono.ranking, streamed.ranking);
  const auto top_mono = select_top_k_features(data_, 3, 16);
  const auto top_streamed = select_top_k_features(*source_, 3, 16);
  EXPECT_EQ(top_mono, top_streamed);
}

TEST_F(StreamingParityTest, MaterializePreservesRowOrder) {
  const Dataset merged = materialize(*source_);
  ASSERT_EQ(merged.size(), data_.size());
  ASSERT_EQ(merged.num_features(), data_.num_features());
  for (std::size_t r = 0; r < merged.size(); ++r) {
    EXPECT_EQ(merged.y[r], data_.y[r]);
    for (std::size_t c = 0; c < merged.num_features(); ++c)
      EXPECT_EQ(merged.X.at(r, c), data_.X.at(r, c));
  }
}

TEST_F(StreamingParityTest, SingleShardAdapterIsZeroCopy) {
  const DatasetSource adapter(data_);
  // The single-shard view must alias the dataset's own storage.
  EXPECT_EQ(adapter.shard(0).col(0).data(), data_.X.col(0).data());
  EXPECT_EQ(adapter.labels(0).data(), data_.y.data());
  const ColumnAccess cols(adapter);
  EXPECT_EQ(cols.col(2).data(), data_.X.col(2).data());
}

}  // namespace
}  // namespace drlhmd::ml
