#include "ml/mutual_info.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace drlhmd::ml {
namespace {

/// Three features: perfectly informative, noisy, independent.
Dataset crafted_data(std::size_t n = 2000) {
  util::Rng rng(7);
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const int label = rng.bernoulli(0.5) ? 1 : 0;
    const double informative = label == 1 ? rng.normal(10.0, 1.0) : rng.normal(0.0, 1.0);
    const double noisy = label == 1 ? rng.normal(1.0, 2.0) : rng.normal(0.0, 2.0);
    const double independent = rng.normal(0.0, 1.0);
    d.push({informative, noisy, independent}, label);
  }
  return d;
}

TEST(MutualInfoTest, RankingOrdersByInformativeness) {
  const auto result = mutual_information(crafted_data());
  EXPECT_EQ(result.ranking[0], 0u);  // informative first
  EXPECT_EQ(result.ranking[2], 2u);  // independent last
  EXPECT_GT(result.scores[0], result.scores[1]);
  EXPECT_GT(result.scores[1], result.scores[2]);
}

TEST(MutualInfoTest, PerfectFeatureApproachesLabelEntropy) {
  const auto result = mutual_information(crafted_data());
  // I(informative; Y) should be close to H(Y) ~= ln 2 for a balanced split.
  EXPECT_GT(result.scores[0], 0.6);
  EXPECT_LE(result.scores[0], std::log(2.0) + 0.01);
}

TEST(MutualInfoTest, IndependentFeatureNearZero) {
  const auto result = mutual_information(crafted_data());
  EXPECT_LT(result.scores[2], 0.05);
}

TEST(MutualInfoTest, ScoresNonNegative) {
  const auto result = mutual_information(crafted_data(500));
  for (double s : result.scores) EXPECT_GE(s, 0.0);
}

TEST(MutualInfoTest, ConstantFeatureHasZeroMi) {
  Dataset d;
  util::Rng rng(9);
  for (int i = 0; i < 500; ++i) d.push({5.0}, rng.bernoulli(0.5) ? 1 : 0);
  const auto result = mutual_information(d);
  EXPECT_NEAR(result.scores[0], 0.0, 1e-9);
}

TEST(MutualInfoTest, SelectTopKClampsToWidth) {
  const Dataset d = crafted_data(300);
  const auto top2 = select_top_k_features(d, 2);
  EXPECT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], 0u);
  const auto top10 = select_top_k_features(d, 10);
  EXPECT_EQ(top10.size(), 3u);
}

TEST(MutualInfoTest, Errors) {
  EXPECT_THROW(mutual_information(Dataset{}), std::invalid_argument);
  EXPECT_THROW(mutual_information(crafted_data(50), 1), std::invalid_argument);
}

/// Bin-count sweep: the qualitative ranking is robust to the bin choice.
class MiBinSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MiBinSweep, InformativeFeatureAlwaysWins) {
  const auto result = mutual_information(crafted_data(), GetParam());
  EXPECT_EQ(result.ranking[0], 0u);
  EXPECT_GT(result.scores[0], 2.0 * result.scores[2] + 0.1);
}

INSTANTIATE_TEST_SUITE_P(Bins, MiBinSweep, ::testing::Values(4u, 8u, 16u, 32u, 64u));

}  // namespace
}  // namespace drlhmd::ml
