#include "ml/feature_matrix.hpp"

#include <gtest/gtest.h>

#include "ml/dataset.hpp"

namespace drlhmd::ml {
namespace {

FeatureMatrix iota_matrix(std::size_t rows, std::size_t cols) {
  FeatureMatrix m;
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<double> row(cols);
    for (std::size_t c = 0; c < cols; ++c)
      row[c] = static_cast<double>(r * cols + c);
    m.push_row(row);
  }
  return m;
}

TEST(FeatureMatrixTest, PushRowFixesWidthAndRejectsRagged) {
  FeatureMatrix m;
  m.push_row({1.0, 2.0, 3.0});
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_THROW(m.push_row({1.0}), std::invalid_argument);
  EXPECT_THROW(m.push_row({1.0, 2.0, 3.0, 4.0}), std::invalid_argument);
  m.push_row({4.0, 5.0, 6.0});
  EXPECT_EQ(m.rows(), 2u);
}

TEST(FeatureMatrixTest, FromRowsRejectsRaggedAtTheSource) {
  EXPECT_THROW(FeatureMatrix::from_rows({{1.0, 2.0}, {3.0}}),
               std::invalid_argument);
  const FeatureMatrix m = FeatureMatrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.at(1, 0), 3.0);
}

TEST(FeatureMatrixTest, ColumnsAreContiguousSpans) {
  const FeatureMatrix m = iota_matrix(5, 3);
  const ColumnView c1 = m.col(1);
  ASSERT_EQ(c1.size(), 5u);
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_EQ(c1[r], static_cast<double>(r * 3 + 1));
    // Contiguity: span indexing and pointer arithmetic agree.
    EXPECT_EQ(&c1[r], c1.data() + r);
  }
}

TEST(FeatureMatrixTest, ViewIsZeroCopy) {
  const FeatureMatrix m = iota_matrix(4, 2);
  const BatchView v = m.view();
  EXPECT_EQ(v.rows(), 4u);
  EXPECT_EQ(v.cols(), 2u);
  // The view aliases the matrix storage, it does not copy it.
  EXPECT_EQ(v.col(0).data(), m.col(0).data());
  EXPECT_EQ(v.at(2, 1), m.at(2, 1));
}

TEST(FeatureMatrixTest, RowsSliceSharesStorageAndOffsetsRows) {
  const FeatureMatrix m = iota_matrix(8, 3);
  const BatchView slice = m.view().rows_slice(2, 4);
  EXPECT_EQ(slice.rows(), 4u);
  EXPECT_EQ(slice.cols(), 3u);
  EXPECT_EQ(slice.stride(), m.view().stride());
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_EQ(slice.at(r, c), m.at(r + 2, c));
  // Slicing a slice composes.
  const BatchView inner = slice.rows_slice(1, 2);
  EXPECT_EQ(inner.at(0, 0), m.at(3, 0));
}

TEST(FeatureMatrixTest, GatherRowAndRowCopyMatchColumnAccess) {
  const FeatureMatrix m = iota_matrix(3, 4);
  const std::vector<double> row = m.row_copy(1);
  ASSERT_EQ(row.size(), 4u);
  for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(row[c], m.at(1, c));
  std::vector<double> out(3);
  EXPECT_THROW(m.gather_row(0, out), std::invalid_argument);
}

TEST(FeatureMatrixTest, AppendBulkCopiesColumns) {
  FeatureMatrix a = iota_matrix(3, 2);
  const FeatureMatrix b = iota_matrix(2, 2);
  a.append(b);
  EXPECT_EQ(a.rows(), 5u);
  EXPECT_EQ(a.at(3, 0), b.at(0, 0));
  EXPECT_EQ(a.at(4, 1), b.at(1, 1));
  const FeatureMatrix wide = iota_matrix(1, 3);
  EXPECT_THROW(a.append(wide), std::invalid_argument);
}

TEST(FeatureMatrixTest, SelectColumnsReordersAndBoundsChecks) {
  const FeatureMatrix m = iota_matrix(3, 3);
  const std::vector<std::size_t> idx = {2, 0};
  const FeatureMatrix sel = m.select_columns(idx);
  EXPECT_EQ(sel.cols(), 2u);
  EXPECT_EQ(sel.at(1, 0), m.at(1, 2));
  EXPECT_EQ(sel.at(1, 1), m.at(1, 0));
  const std::vector<std::size_t> bad = {9};
  EXPECT_THROW(m.select_columns(bad), std::out_of_range);
}

TEST(FeatureMatrixTest, GrowthPreservesValuesAcrossRepacks) {
  FeatureMatrix m;
  for (std::size_t r = 0; r < 100; ++r)  // forces several capacity doublings
    m.push_row({static_cast<double>(r), static_cast<double>(2 * r)});
  for (std::size_t r = 0; r < 100; ++r) {
    EXPECT_EQ(m.at(r, 0), static_cast<double>(r));
    EXPECT_EQ(m.at(r, 1), static_cast<double>(2 * r));
  }
}

TEST(FeatureMatrixTest, EqualityIgnoresCapacity) {
  // a grew incrementally (capacity 8 for 4 rows); b was built tight
  // (capacity == rows).  Same values => equal despite different strides.
  FeatureMatrix a = iota_matrix(4, 2);
  FeatureMatrix b = FeatureMatrix::from_rows(
      {a.row_copy(0), a.row_copy(1), a.row_copy(2), a.row_copy(3)});
  EXPECT_TRUE(a == b);
  b.push_row({0.0, 0.0});
  EXPECT_FALSE(a == b);
}

TEST(FeatureMatrixTest, MutableViewWritesThrough) {
  FeatureMatrix m = iota_matrix(3, 2);
  MutableBatchView v = m.mutable_view();
  v.at(1, 1) = -7.0;
  for (double& x : v.col(0)) x *= 2.0;
  EXPECT_EQ(m.at(1, 1), -7.0);
  EXPECT_EQ(m.at(2, 0), 8.0);
}

// ------------------------------------------ Dataset::append regressions --

Dataset named_data(std::vector<std::string> names) {
  Dataset d;
  d.feature_names = std::move(names);
  d.push({1.0, 2.0}, 0);
  d.push({3.0, 4.0}, 1);
  return d;
}

TEST(DatasetAppendTest, RejectsMismatchedFeatureNames) {
  Dataset a = named_data({"f0", "f1"});
  const Dataset b = named_data({"g0", "g1"});
  // Regression: this used to merge silently, leaving rows whose columns
  // mean different things under one header.
  EXPECT_THROW(a.append(b), std::invalid_argument);
  EXPECT_EQ(a.size(), 2u);  // target unchanged on failure
}

TEST(DatasetAppendTest, RejectsWidthMismatchEvenUnnamed) {
  Dataset a = named_data({"f0", "f1"});
  Dataset narrow;
  narrow.push({1.0}, 0);
  EXPECT_THROW(a.append(narrow), std::invalid_argument);
}

TEST(DatasetAppendTest, UnnamedSideIsCompatibleAndAdoptsNames) {
  // Runtime quarantine datasets carry no names; appending them into a named
  // DB (and vice versa) must keep working.
  Dataset named = named_data({"f0", "f1"});
  Dataset unnamed;
  unnamed.push({5.0, 6.0}, 1);
  EXPECT_NO_THROW(named.append(unnamed));
  EXPECT_EQ(named.size(), 3u);

  Dataset empty_names;
  empty_names.push({7.0, 8.0}, 0);
  const Dataset donor = named_data({"f0", "f1"});
  empty_names.append(donor);
  EXPECT_EQ(empty_names.feature_names, donor.feature_names);
}

TEST(DatasetAppendTest, MatchingNamesStillMerge) {
  Dataset a = named_data({"f0", "f1"});
  const Dataset b = named_data({"f0", "f1"});
  EXPECT_NO_THROW(a.append(b));
  EXPECT_EQ(a.size(), 4u);
}

TEST(DatasetTest, NumFeaturesTrustworthyByConstruction) {
  // Regression: num_features() used to trust X.front() on possibly-ragged
  // row storage.  Raggedness now dies in FeatureMatrix at push time, so
  // num_features() is always the true rectangular width.
  Dataset d;
  EXPECT_EQ(d.num_features(), 0u);
  d.push({1.0, 2.0, 3.0}, 0);
  EXPECT_EQ(d.num_features(), 3u);
  EXPECT_THROW(d.push({1.0}, 0), std::invalid_argument);
  EXPECT_EQ(d.num_features(), 3u);
  EXPECT_EQ(d.size(), 1u);
}

}  // namespace
}  // namespace drlhmd::ml
