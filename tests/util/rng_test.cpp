#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace drlhmd::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double total = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) total += rng.uniform();
  EXPECT_NEAR(total / kN, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(RngTest, NextBelowAlwaysBelowBound) {
  Rng rng(17);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(RngTest, NextBelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(19);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(23);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntBadRangeThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(29);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.03);
}

TEST(RngTest, NormalScaled) {
  Rng rng(31);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(37);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(41);
  double total = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) total += rng.exponential(2.0);
  EXPECT_NEAR(total / kN, 0.5, 0.02);
}

TEST(RngTest, ExponentialBadRateThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(RngTest, ParetoAboveScale) {
  Rng rng(43);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 3.0), 2.0);
  EXPECT_THROW(rng.pareto(0.0, 1.0), std::invalid_argument);
}

TEST(RngTest, LognormalPositive) {
  Rng rng(47);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(53);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[rng.categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kN, 0.75, 0.02);
}

TEST(RngTest, CategoricalErrors) {
  Rng rng(1);
  EXPECT_THROW(rng.categorical({}), std::invalid_argument);
  const std::vector<double> neg = {1.0, -0.5};
  EXPECT_THROW(rng.categorical(neg), std::invalid_argument);
  const std::vector<double> zero = {0.0, 0.0};
  EXPECT_THROW(rng.categorical(zero), std::invalid_argument);
}

TEST(RngTest, GeometricMeanMatches) {
  Rng rng(59);
  double total = 0.0;
  constexpr int kN = 100000;
  const double p = 0.2;
  for (int i = 0; i < kN; ++i) total += static_cast<double>(rng.geometric(p));
  EXPECT_NEAR(total / kN, (1.0 - p) / p, 0.1);
}

TEST(RngTest, GeometricEdgeCases) {
  Rng rng(1);
  EXPECT_EQ(rng.geometric(1.0), 0u);
  EXPECT_THROW(rng.geometric(0.0), std::invalid_argument);
  EXPECT_THROW(rng.geometric(1.5), std::invalid_argument);
}

TEST(RngTest, ZipfWithinRangeAndSkewed) {
  Rng rng(61);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.zipf(10, 1.5);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], counts[9]);
}

TEST(RngTest, ZipfErrors) {
  Rng rng(1);
  EXPECT_THROW(rng.zipf(0, 2.0), std::invalid_argument);
  EXPECT_THROW(rng.zipf(10, 1.0), std::invalid_argument);
  EXPECT_EQ(rng.zipf(1, 2.0), 0u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(67);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(71);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(73);
  const auto sample = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(79);
  Rng child = parent.split();
  // Child should not replay the parent's stream.
  Rng parent2(79);
  parent2.split();
  int same = 0;
  for (int i = 0; i < 50; ++i) same += (child.next() == parent.next()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

/// Property sweep: every seed produces valid uniform output.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformStaysInRangeAndIsDeterministic) {
  Rng a(GetParam()), b(GetParam());
  for (int i = 0; i < 200; ++i) {
    const double u = a.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_EQ(u, b.uniform());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 2ull, 42ull, 1234567ull,
                                           0xFFFFFFFFFFFFFFFFull));

}  // namespace
}  // namespace drlhmd::util
