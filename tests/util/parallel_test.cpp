#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/telemetry.hpp"

namespace drlhmd::util {
namespace {

/// Restores the pool width configured before a test tampered with it.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(parallel_thread_count()) {}
  ~ThreadCountGuard() { set_parallel_threads(saved_); }

 private:
  std::size_t saved_;
};

TEST(ParallelConfigTest, ThreadCountIsPositive) {
  EXPECT_GE(parallel_thread_count(), 1u);
}

TEST(ParallelConfigTest, SetThreadsTakesEffect) {
  ThreadCountGuard guard;
  set_parallel_threads(3);
  EXPECT_EQ(parallel_thread_count(), 3u);
  set_parallel_threads(1);
  EXPECT_EQ(parallel_thread_count(), 1u);
}

TEST(ParallelForTest, EmptyRangeRunsNothing) {
  std::atomic<int> calls{0};
  parallel_for(0, 0, 1, [&](std::size_t) { calls.fetch_add(1); });
  parallel_for(5, 5, 1, [&](std::size_t) { calls.fetch_add(1); });
  parallel_for(7, 3, 1, [&](std::size_t) { calls.fetch_add(1); });  // end < begin
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, GrainLargerThanRangeIsOneChunk) {
  std::vector<int> hits(5, 0);
  parallel_for_chunks("test.grain", 0, 5, 100,
                      [&](std::size_t chunk, std::size_t b, std::size_t e) {
                        EXPECT_EQ(chunk, 0u);
                        EXPECT_EQ(b, 0u);
                        EXPECT_EQ(e, 5u);
                        for (std::size_t i = b; i < e; ++i) hits[i] += 1;
                      });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    set_parallel_threads(threads);
    constexpr std::size_t kN = 1337;
    std::vector<std::atomic<int>> hits(kN);
    parallel_for("test.cover", 3, 3 + kN, 17,
                 [&](std::size_t i) { hits[i - 3].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, ExceptionsPropagateToCaller) {
  ThreadCountGuard guard;
  set_parallel_threads(4);
  EXPECT_THROW(
      parallel_for("test.throw", 0, 100, 1,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must stay usable after a throwing region.
  std::atomic<int> calls{0};
  parallel_for("test.after_throw", 0, 8, 1,
               [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 8);
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  ThreadCountGuard guard;
  set_parallel_threads(4);
  std::atomic<int> inner_total{0};
  std::atomic<bool> saw_region_flag{false};
  parallel_for("test.outer", 0, 8, 1, [&](std::size_t) {
    if (in_parallel_region()) saw_region_flag.store(true);
    // Nested region: must degrade to inline execution, not deadlock.
    parallel_for("test.inner", 0, 4, 1,
                 [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 8 * 4);
  EXPECT_TRUE(saw_region_flag.load());
  EXPECT_FALSE(in_parallel_region());
}

TEST(ParallelMapTest, SlotsMatchIndices) {
  ThreadCountGuard guard;
  set_parallel_threads(4);
  const std::vector<std::size_t> out =
      parallel_map("test.map", 10, 110, 7, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], (i + 10) * (i + 10));
}

TEST(ParallelMapTest, ResultsIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  set_parallel_threads(1);
  const auto serial =
      parallel_map("test.det", 0, 257, 9, [](std::size_t i) { return 3 * i + 1; });
  set_parallel_threads(4);
  const auto parallel =
      parallel_map("test.det", 0, 257, 9, [](std::size_t i) { return 3 * i + 1; });
  EXPECT_EQ(serial, parallel);
}

TEST(ChunkRngTest, StreamsAreDeterministicAndDistinct) {
  Rng a = chunk_rng(99, 0);
  Rng a2 = chunk_rng(99, 0);
  Rng b = chunk_rng(99, 1);
  EXPECT_EQ(a.next(), a2.next());  // same (seed, chunk) => same stream
  Rng a3 = chunk_rng(99, 0);
  EXPECT_NE(a3.next(), b.next());  // different chunks => different streams
}

TEST(ParallelStatsTest, RegionsAreCounted) {
  ThreadCountGuard guard;
  set_parallel_threads(2);
  const ParallelStats before = parallel_stats();
  parallel_for("test.stats", 0, 64, 8, [](std::size_t) {});
  const ParallelStats after = parallel_stats();
  EXPECT_EQ(after.threads, 2u);
  EXPECT_GT(after.regions + after.serial_regions,
            before.regions + before.serial_regions);
}

TEST(ParallelTelemetryTest, BridgeRecordsRegionsWhenEnabled) {
  ThreadCountGuard guard;
  set_parallel_threads(4);
  obs::Telemetry::set_enabled(true);
  obs::Telemetry::reset();
  std::atomic<int> touched{0};
  parallel_for("test.bridge", 0, 64, 8,
               [&](std::size_t) { touched.fetch_add(1); });
  obs::Telemetry::set_enabled(false);
  EXPECT_EQ(touched.load(), 64);

  const obs::MetricsSnapshot snap = obs::Telemetry::metrics().snapshot();
  const auto* regions = snap.find_counter("drlhmd.parallel.regions",
                                          {{"label", "test.bridge"}});
  ASSERT_NE(regions, nullptr);
  EXPECT_GE(regions->value, 1u);
  const auto* chunks = snap.find_counter("drlhmd.parallel.chunks",
                                         {{"label", "test.bridge"}});
  ASSERT_NE(chunks, nullptr);
  EXPECT_EQ(chunks->value, 8u);  // 64 items / grain 8
  EXPECT_NE(snap.find_gauge("drlhmd.parallel.pool_size"), nullptr);
}

TEST(ParallelResolveGrainTest, AutoGrainIsDeterministic) {
  EXPECT_EQ(parallel_resolve_grain(10, 4), 4u);
  EXPECT_EQ(parallel_resolve_grain(10, 0), 1u);       // 10/64 -> min 1
  EXPECT_EQ(parallel_resolve_grain(6400, 0), 100u);   // n/64
}

}  // namespace
}  // namespace drlhmd::util
