#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

namespace drlhmd::util {
namespace {

TEST(Arena, AllocatesAlignedStorage) {
  Arena arena;
  void* a = arena.allocate(3, 1);
  void* b = arena.allocate(8, 8);
  void* c = arena.allocate(16, 64);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
  EXPECT_TRUE(arena.owns(a));
  EXPECT_TRUE(arena.owns(b));
  EXPECT_TRUE(arena.owns(c));
  int x = 0;
  EXPECT_FALSE(arena.owns(&x));
}

TEST(Arena, TypedAllocSpans) {
  Arena arena;
  auto d = arena.alloc<double>(17);
  ASSERT_EQ(d.size(), 17u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % alignof(double), 0u);
  for (std::size_t i = 0; i < d.size(); ++i) d[i] = static_cast<double>(i);
  auto u = arena.alloc<std::uint16_t>(5);
  ASSERT_EQ(u.size(), 5u);
  // The double span must be untouched by the later allocation.
  for (std::size_t i = 0; i < d.size(); ++i)
    EXPECT_EQ(d[i], static_cast<double>(i));
  EXPECT_TRUE(arena.alloc<int>(0).empty());
}

TEST(Arena, GrowsAcrossChunksAndKeepsCapacity) {
  Arena arena(1024);
  const std::size_t cap0 = arena.capacity();
  EXPECT_GT(cap0, 0u);
  // Force growth well past the first chunk.
  for (int i = 0; i < 8; ++i) arena.allocate(cap0, 16);
  EXPECT_GT(arena.capacity(), cap0);
  const std::size_t grown = arena.capacity();
  const auto allocs = arena.chunk_allocations();
  // A rewind keeps every chunk: repeating the same sequence must not grow.
  arena.reset();
  for (int i = 0; i < 8; ++i) arena.allocate(cap0, 16);
  EXPECT_EQ(arena.capacity(), grown);
  EXPECT_EQ(arena.chunk_allocations(), allocs);
}

TEST(Arena, MarkRewindReusesStorage) {
  Arena arena;
  const Arena::Mark m = arena.mark();
  void* first = arena.allocate(256, 16);
  arena.rewind(m);
  void* second = arena.allocate(256, 16);
  EXPECT_EQ(first, second);
  EXPECT_LE(arena.used(), arena.high_water());
}

TEST(Arena, ScopeRewindsLifo) {
  Arena arena;
  auto outer = arena.alloc<int>(8);
  outer[0] = 41;
  std::size_t used_before = arena.used();
  {
    ArenaScope scope(arena);
    auto inner = scope.alloc<int>(1024);
    inner[0] = 7;
    EXPECT_GT(arena.used(), used_before);
  }
  EXPECT_EQ(arena.used(), used_before);
  EXPECT_EQ(outer[0], 41);  // outer storage survives inner scope exit
  EXPECT_GE(arena.scope_reuses(), 1u);
}

TEST(Arena, HighWaterTracksPeak) {
  Arena arena;
  {
    ArenaScope scope(arena);
    scope.alloc<double>(1000);
  }
  EXPECT_GE(arena.high_water(), 1000 * sizeof(double));
  EXPECT_EQ(arena.used(), 0u);
}

TEST(Arena, SteadyStateNeedsNoNewChunks) {
  Arena arena;
  // Warm-up pass establishes the footprint.
  {
    ArenaScope scope(arena);
    scope.alloc<double>(4096);
    scope.alloc<std::uint16_t>(9999);
  }
  const auto warm = arena.chunk_allocations();
  for (int pass = 0; pass < 100; ++pass) {
    ArenaScope scope(arena);
    scope.alloc<double>(4096);
    scope.alloc<std::uint16_t>(9999);
  }
  EXPECT_EQ(arena.chunk_allocations(), warm);
}

TEST(Arena, ScratchArenaIsPerThread) {
  Arena* main_arena = &scratch_arena();
  EXPECT_EQ(main_arena, &scratch_arena());
  Arena* other = nullptr;
  std::thread t([&] { other = &scratch_arena(); });
  t.join();
  EXPECT_NE(other, nullptr);
  EXPECT_NE(other, main_arena);
}

TEST(Arena, StatsAggregateLiveAndRetired) {
  const ArenaStats before = arena_stats();
  {
    ArenaScope scope(scratch_arena());
    scope.alloc<double>(1 << 16);
  }
  std::thread t([] {
    ArenaScope scope(scratch_arena());
    scope.alloc<double>(1 << 15);
  });
  t.join();  // that thread's arena retires into the registry totals
  const ArenaStats after = arena_stats();
  EXPECT_GE(after.arenas, 1u);
  EXPECT_GE(after.high_water_bytes, (1u << 16) * sizeof(double));
  EXPECT_GT(after.scope_reuses, before.scope_reuses);
  EXPECT_GE(after.chunk_allocations, before.chunk_allocations);
}

}  // namespace
}  // namespace drlhmd::util
