#include "util/csv.hpp"

#include <gtest/gtest.h>

namespace drlhmd::util {
namespace {

TEST(CsvTest, ParsesSimpleDocument) {
  const auto doc = parse_csv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_EQ(doc.header.size(), 3u);
  EXPECT_EQ(doc.header[0], "a");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][2], "6");
}

TEST(CsvTest, HandlesCrLf) {
  const auto doc = parse_csv("x,y\r\n1,2\r\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(CsvTest, HandlesMissingTrailingNewline) {
  const auto doc = parse_csv("x,y\n1,2");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(CsvTest, QuotedFieldsWithCommasAndQuotes) {
  const auto doc = parse_csv("name,val\n\"a,b\",\"say \"\"hi\"\"\"\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "a,b");
  EXPECT_EQ(doc.rows[0][1], "say \"hi\"");
}

TEST(CsvTest, QuotedNewlineInsideField) {
  const auto doc = parse_csv("a,b\n\"line1\nline2\",x\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "line1\nline2");
}

TEST(CsvTest, EmptyFieldsPreserved) {
  const auto doc = parse_csv("a,b,c\n,,\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "");
  EXPECT_EQ(doc.rows[0][2], "");
}

TEST(CsvTest, RaggedRowThrows) {
  EXPECT_THROW(parse_csv("a,b\n1,2,3\n"), std::invalid_argument);
  EXPECT_THROW(parse_csv("a,b\n1\n"), std::invalid_argument);
}

TEST(CsvTest, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("a\n\"oops\n"), std::invalid_argument);
}

TEST(CsvTest, EmptyInputYieldsEmptyDocument) {
  const auto doc = parse_csv("");
  EXPECT_TRUE(doc.header.empty());
  EXPECT_TRUE(doc.rows.empty());
}

TEST(CsvTest, RoundTripWithQuoting) {
  CsvDocument doc;
  doc.header = {"id", "payload"};
  doc.rows = {{"1", "plain"}, {"2", "with,comma"}, {"3", "with\"quote"}};
  const auto parsed = parse_csv(write_csv(doc));
  EXPECT_EQ(parsed.header, doc.header);
  EXPECT_EQ(parsed.rows, doc.rows);
}

TEST(CsvTest, ColumnIndexLookup) {
  CsvDocument doc;
  doc.header = {"alpha", "beta"};
  EXPECT_EQ(doc.column_index("beta"), 1u);
  EXPECT_THROW(doc.column_index("gamma"), std::out_of_range);
}

TEST(CsvTest, FileRoundTrip) {
  CsvDocument doc;
  doc.header = {"k", "v"};
  doc.rows = {{"x", "1"}};
  const std::string path = ::testing::TempDir() + "/drlhmd_csv_test.csv";
  write_csv_file(doc, path);
  const auto loaded = read_csv_file(path);
  EXPECT_EQ(loaded.rows, doc.rows);
  EXPECT_THROW(read_csv_file(path + ".does-not-exist"), std::runtime_error);
}

}  // namespace
}  // namespace drlhmd::util
