#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace drlhmd::util {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.sample_variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats rs;
  rs.add(5.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_EQ(rs.mean(), 5.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.min(), 5.0);
  EXPECT_EQ(rs.max(), 5.0);
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 6.2);
  double var = 0.0;
  for (double x : xs) var += (x - 6.2) * (x - 6.2);
  EXPECT_NEAR(rs.variance(), var / 5.0, 1e-12);
  EXPECT_NEAR(rs.sample_variance(), var / 4.0, 1e-12);
  EXPECT_EQ(rs.min(), 1.0);
  EXPECT_EQ(rs.max(), 16.0);
}

TEST(RunningStatsTest, MergeEqualsCombinedStream) {
  Rng rng(3);
  RunningStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.mean(), mean_before);
  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_EQ(c.mean(), mean_before);
}

TEST(StatsTest, MeanAndVariance) {
  const std::vector<double> xs = {2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(xs), 4.0);
  EXPECT_NEAR(variance(xs), 8.0 / 3.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(8.0 / 3.0), 1e-12);
  EXPECT_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(StatsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(StatsTest, QuantileInterpolation) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(StatsTest, QuantileErrors) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.1), std::invalid_argument);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg = ys;
  for (auto& v : neg) v = -v;
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantSideIsZero) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_EQ(pearson(xs, ys), 0.0);
}

TEST(StatsTest, PearsonSizeMismatchThrows) {
  const std::vector<double> xs = {1.0};
  const std::vector<double> ys = {1.0, 2.0};
  EXPECT_THROW(pearson(xs, ys), std::invalid_argument);
}

TEST(StatsTest, PearsonNearZeroForIndependent) {
  Rng rng(9);
  std::vector<double> xs(5000), ys(5000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.normal();
    ys[i] = rng.normal();
  }
  EXPECT_NEAR(pearson(xs, ys), 0.0, 0.05);
}

TEST(StatsTest, EntropyUniformIsLogN) {
  const std::vector<std::size_t> counts = {10, 10, 10, 10};
  EXPECT_NEAR(entropy_from_counts(counts), std::log(4.0), 1e-12);
}

TEST(StatsTest, EntropyDegenerateIsZero) {
  const std::vector<std::size_t> counts = {42, 0, 0};
  EXPECT_EQ(entropy_from_counts(counts), 0.0);
  EXPECT_EQ(entropy_from_counts(std::vector<std::size_t>{}), 0.0);
}

TEST(StatsTest, HistogramBinsAndClamping) {
  const std::vector<double> xs = {-5.0, 0.1, 0.9, 1.5, 100.0};
  const auto h = histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 2u);  // -5 clamped into first bin, 0.1
  EXPECT_EQ(h[1], 3u);  // 0.9, 1.5 clamped, 100 clamped
}

TEST(StatsTest, HistogramErrors) {
  EXPECT_THROW(histogram({}, 0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(histogram({}, 1.0, 1.0, 4), std::invalid_argument);
}

}  // namespace
}  // namespace drlhmd::util
