#include "util/serialize.hpp"

#include <gtest/gtest.h>

namespace drlhmd::util {
namespace {

TEST(SerializeTest, RoundTripScalars) {
  ByteWriter w;
  w.write_u8(0xAB);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFull);
  w.write_i64(-42);
  w.write_f64(3.14159);
  const auto bytes = w.take();

  ByteReader r(bytes);
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_DOUBLE_EQ(r.read_f64(), 3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(SerializeTest, RoundTripStringsAndVectors) {
  ByteWriter w;
  w.write_string("hello world");
  w.write_string("");
  const std::vector<double> doubles = {1.5, -2.5, 0.0};
  w.write_f64_vec(doubles);
  const std::vector<std::uint64_t> ints = {7, 8, 9};
  w.write_u64_vec(ints);
  const auto bytes = w.take();

  ByteReader r(bytes);
  EXPECT_EQ(r.read_string(), "hello world");
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_f64_vec(), doubles);
  EXPECT_EQ(r.read_u64_vec(), ints);
  EXPECT_TRUE(r.exhausted());
}

TEST(SerializeTest, TruncatedInputThrows) {
  ByteWriter w;
  w.write_u64(1);
  auto bytes = w.take();
  bytes.pop_back();
  ByteReader r(bytes);
  EXPECT_THROW(r.read_u64(), std::out_of_range);
}

TEST(SerializeTest, TruncatedStringThrows) {
  ByteWriter w;
  w.write_string("abcdef");
  auto bytes = w.take();
  bytes.resize(bytes.size() - 3);
  ByteReader r(bytes);
  EXPECT_THROW(r.read_string(), std::out_of_range);
}

TEST(SerializeTest, HugeLengthPrefixRejected) {
  // A corrupt length prefix must not cause a huge allocation or overflow.
  ByteWriter w;
  w.write_u64(~0ull);
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW(r.read_string(), std::out_of_range);
}

TEST(SerializeTest, RemainingTracksPosition) {
  ByteWriter w;
  w.write_u32(1);
  w.write_u32(2);
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(r.remaining(), 8u);
  r.read_u32();
  EXPECT_EQ(r.remaining(), 4u);
  EXPECT_FALSE(r.exhausted());
  r.read_u32();
  EXPECT_TRUE(r.exhausted());
}

TEST(SerializeTest, WriterSizeMatchesContent) {
  ByteWriter w;
  EXPECT_EQ(w.size(), 0u);
  w.write_u8(1);
  EXPECT_EQ(w.size(), 1u);
  w.write_f64(1.0);
  EXPECT_EQ(w.size(), 9u);
}

}  // namespace
}  // namespace drlhmd::util
