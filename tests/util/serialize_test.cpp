#include "util/serialize.hpp"

#include <gtest/gtest.h>

namespace drlhmd::util {
namespace {

TEST(SerializeTest, RoundTripScalars) {
  ByteWriter w;
  w.write_u8(0xAB);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFull);
  w.write_i64(-42);
  w.write_f64(3.14159);
  const auto bytes = w.take();

  ByteReader r(bytes);
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_DOUBLE_EQ(r.read_f64(), 3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(SerializeTest, RoundTripStringsAndVectors) {
  ByteWriter w;
  w.write_string("hello world");
  w.write_string("");
  const std::vector<double> doubles = {1.5, -2.5, 0.0};
  w.write_f64_vec(doubles);
  const std::vector<std::uint64_t> ints = {7, 8, 9};
  w.write_u64_vec(ints);
  const auto bytes = w.take();

  ByteReader r(bytes);
  EXPECT_EQ(r.read_string(), "hello world");
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_f64_vec(), doubles);
  EXPECT_EQ(r.read_u64_vec(), ints);
  EXPECT_TRUE(r.exhausted());
}

TEST(SerializeTest, TruncatedInputThrows) {
  ByteWriter w;
  w.write_u64(1);
  auto bytes = w.take();
  bytes.pop_back();
  ByteReader r(bytes);
  EXPECT_THROW(r.read_u64(), std::out_of_range);
}

TEST(SerializeTest, TruncatedStringThrows) {
  ByteWriter w;
  w.write_string("abcdef");
  auto bytes = w.take();
  bytes.resize(bytes.size() - 3);
  ByteReader r(bytes);
  EXPECT_THROW(r.read_string(), std::out_of_range);
}

TEST(SerializeTest, HugeLengthPrefixRejected) {
  // A corrupt length prefix must not cause a huge allocation or overflow.
  ByteWriter w;
  w.write_u64(~0ull);
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW(r.read_string(), std::out_of_range);
}

TEST(SerializeTest, RoundTripBytes) {
  ByteWriter w;
  const std::vector<std::uint8_t> blob = {0x00, 0xFF, 0x42, 0x42};
  w.write_bytes(blob);
  w.write_bytes({});
  const auto bytes = w.take();

  ByteReader r(bytes);
  EXPECT_EQ(r.read_bytes(), blob);
  EXPECT_EQ(r.read_bytes(), std::vector<std::uint8_t>{});
  EXPECT_TRUE(r.exhausted());
}

TEST(SerializeTest, WriteBytesMatchesPerByteLoop) {
  // write_bytes must stay wire-compatible with the legacy encoding
  // (u64 count + that many write_u8 calls) used by older model formats.
  const std::vector<std::uint8_t> blob = {1, 2, 3, 4, 5};
  ByteWriter blobbed, looped;
  blobbed.write_bytes(blob);
  looped.write_u64(blob.size());
  for (std::uint8_t b : blob) looped.write_u8(b);
  EXPECT_EQ(blobbed.bytes(), looped.bytes());
}

TEST(SerializeTest, TruncationSweepAlwaysThrowsNeverOverreads) {
  // A composite message cut at EVERY possible byte boundary must throw
  // std::out_of_range from some read — never crash or read past the end.
  ByteWriter w;
  const std::vector<double> doubles = {1.0, 2.0, 3.0};
  const std::vector<std::uint64_t> ints = {4, 5};
  const std::vector<std::uint8_t> blob = {9, 9, 9};
  w.write_string("kind");
  w.write_u32(7);
  w.write_f64_vec(doubles);
  w.write_u64_vec(ints);
  w.write_bytes(blob);
  const auto full = w.take();

  const auto read_all = [](ByteReader& r) {
    r.read_string();
    r.read_u32();
    r.read_f64_vec();
    r.read_u64_vec();
    r.read_bytes();
  };
  {
    ByteReader r(full);
    EXPECT_NO_THROW(read_all(r));
    EXPECT_TRUE(r.exhausted());
  }
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> truncated(full.begin(),
                                        full.begin() + static_cast<std::ptrdiff_t>(cut));
    ByteReader r(truncated);
    EXPECT_THROW(read_all(r), std::out_of_range) << "cut at byte " << cut;
  }
}

TEST(SerializeTest, HugeVectorLengthPrefixesRejectedWithoutAllocating) {
  // Length prefixes claiming up to 2^64-1 elements must be rejected by the
  // bounds check before any allocation is attempted.
  for (const std::uint64_t huge :
       {~0ull, ~0ull / 8, 1ull << 62, 1ull << 32}) {
    ByteWriter w;
    w.write_u64(huge);
    const auto bytes = w.take();
    {
      ByteReader r(bytes);
      EXPECT_THROW(r.read_f64_vec(), std::out_of_range);
    }
    {
      ByteReader r(bytes);
      EXPECT_THROW(r.read_u64_vec(), std::out_of_range);
    }
    {
      ByteReader r(bytes);
      EXPECT_THROW(r.read_bytes(), std::out_of_range);
    }
    {
      ByteReader r(bytes);
      EXPECT_THROW(r.read_string(), std::out_of_range);
    }
  }
}

TEST(SerializeTest, ReadPastEndOfEmptyInputThrows) {
  ByteReader r(std::span<const std::uint8_t>{});
  EXPECT_TRUE(r.exhausted());
  EXPECT_THROW(r.read_u8(), std::out_of_range);
}

TEST(SerializeTest, RemainingTracksPosition) {
  ByteWriter w;
  w.write_u32(1);
  w.write_u32(2);
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(r.remaining(), 8u);
  r.read_u32();
  EXPECT_EQ(r.remaining(), 4u);
  EXPECT_FALSE(r.exhausted());
  r.read_u32();
  EXPECT_TRUE(r.exhausted());
}

TEST(SerializeTest, WriterSizeMatchesContent) {
  ByteWriter w;
  EXPECT_EQ(w.size(), 0u);
  w.write_u8(1);
  EXPECT_EQ(w.size(), 1u);
  w.write_f64(1.0);
  EXPECT_EQ(w.size(), 9u);
}

}  // namespace
}  // namespace drlhmd::util
