#include "util/table.hpp"

#include <gtest/gtest.h>

namespace drlhmd::util {
namespace {

TEST(TableTest, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, MismatchedRowThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(TableTest, RendersAlignedColumns) {
  Table t({"model", "f1"});
  t.add_row({"RF", "0.92"});
  t.add_row({"LightGBM", "0.95"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("model"), std::string::npos);
  EXPECT_NE(out.find("LightGBM"), std::string::npos);
  // Header line and separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(Table::fmt(0.12345, 2), "0.12");
  EXPECT_EQ(Table::fmt(1.0, 0), "1");
  EXPECT_EQ(Table::pct(0.961, 1), "96.1%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(TableTest, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"}).add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, BannerContainsTitle) {
  const std::string b = banner("Table 2");
  EXPECT_NE(b.find("Table 2"), std::string::npos);
  EXPECT_NE(b.find("=="), std::string::npos);
}

}  // namespace
}  // namespace drlhmd::util
