#include "obs/benchdiff.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace drlhmd::obs {
namespace {

JsonValue parse(const std::string& text) {
  auto doc = json_parse(text);
  EXPECT_TRUE(doc.has_value()) << text;
  return *doc;
}

/// A unified drlhmd-bench/1 document with one lower-is-better latency
/// metric and one higher-is-better speedup metric.
std::string unified_doc(double row_ns, double speedup) {
  return std::string("{\"schema\":\"drlhmd-bench/1\",\"bench\":\"batch\","
                     "\"context\":{\"test_rows\":512},\"metrics\":["
                     "{\"name\":\"rf.row_ns_per_sample\",\"value\":") +
         std::to_string(row_ns) +
         ",\"unit\":\"ns\",\"higher_is_better\":false}," +
         "{\"name\":\"rf.batch_speedup\",\"value\":" +
         std::to_string(speedup) +
         ",\"unit\":\"x\",\"higher_is_better\":true}]}";
}

TEST(DirectionTest, InferredFromLeafSegment) {
  EXPECT_EQ(direction_for_path("rf.row_ns_per_sample"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(direction_for_path("threads4.rf_fit_seconds"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(direction_for_path("threads4.rf_speedup"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(direction_for_path("eval.f1"), MetricDirection::kHigherIsBetter);
  EXPECT_EQ(direction_for_path("context.test_rows"),
            MetricDirection::kInformational);
  // Only the leaf decides: a suggestive parent key cannot flip direction.
  EXPECT_EQ(direction_for_path("speedup_suite.n_trees"),
            MetricDirection::kInformational);
}

TEST(FlattenTest, UnifiedSchemaCollapsesMetricObjects) {
  const auto metrics = flatten_bench(parse(unified_doc(100.0, 4.0)));
  const BenchMetric* row = nullptr;
  const BenchMetric* speedup = nullptr;
  for (const auto& m : metrics) {
    if (m.path == "metrics.rf.row_ns_per_sample") row = &m;
    if (m.path == "metrics.rf.batch_speedup") speedup = &m;
  }
  ASSERT_NE(row, nullptr);
  ASSERT_NE(speedup, nullptr);
  EXPECT_DOUBLE_EQ(row->value, 100.0);
  EXPECT_EQ(row->direction, MetricDirection::kLowerIsBetter);
  EXPECT_DOUBLE_EQ(speedup->value, 4.0);
  EXPECT_EQ(speedup->direction, MetricDirection::kHigherIsBetter);
}

TEST(FlattenTest, LegacyFreeFormJsonKeysArraysByDistinguishingMember) {
  const JsonValue doc = parse(
      "{\"models\":[{\"model\":\"rf\",\"row_ns_per_sample\":120},"
      "{\"model\":\"gbdt\",\"row_ns_per_sample\":80}],\"rows\":512}");
  const auto metrics = flatten_bench(doc);
  bool saw_rf = false, saw_gbdt = false;
  for (const auto& m : metrics) {
    if (m.path == "models.rf.row_ns_per_sample") {
      saw_rf = true;
      EXPECT_DOUBLE_EQ(m.value, 120.0);
      EXPECT_EQ(m.direction, MetricDirection::kLowerIsBetter);
    }
    if (m.path == "models.gbdt.row_ns_per_sample") saw_gbdt = true;
  }
  EXPECT_TRUE(saw_rf);
  EXPECT_TRUE(saw_gbdt);
}

TEST(BenchDiffTest, InjectedTwoXRegressionFailsAtDefaultTolerance) {
  // The acceptance case for the perf gate: a candidate whose lower-is-better
  // latency doubled must regress at the default 10% tolerance.
  const JsonValue baseline = parse(unified_doc(100.0, 4.0));
  const JsonValue candidate = parse(unified_doc(200.0, 4.0));
  const BenchDiff diff = bench_diff(baseline, candidate);
  // Two declared metrics plus context.test_rows (informational).
  ASSERT_EQ(diff.compared.size(), 3u);
  const auto regressions = diff.regressions(0.10);
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_EQ(regressions[0].path, "metrics.rf.row_ns_per_sample");
  EXPECT_DOUBLE_EQ(regressions[0].badness(), 2.0);
}

TEST(BenchDiffTest, HigherIsBetterRegressesWhenItDrops) {
  const JsonValue baseline = parse(unified_doc(100.0, 4.0));
  const JsonValue candidate = parse(unified_doc(100.0, 1.5));
  const auto regressions =
      bench_diff(baseline, candidate).regressions(0.10);
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_EQ(regressions[0].path, "metrics.rf.batch_speedup");
  EXPECT_NEAR(regressions[0].badness(), 4.0 / 1.5, 1e-9);
}

TEST(BenchDiffTest, WithinToleranceAndImprovementsPass) {
  const JsonValue baseline = parse(unified_doc(100.0, 4.0));
  // 5% slower + faster speedup: both inside a 10% tolerance.
  const JsonValue candidate = parse(unified_doc(105.0, 5.0));
  const BenchDiff diff = bench_diff(baseline, candidate);
  EXPECT_TRUE(diff.regressions(0.10).empty());
  // The same 2x regression passes a sufficiently loose tolerance.
  const JsonValue doubled = parse(unified_doc(200.0, 4.0));
  EXPECT_TRUE(bench_diff(baseline, doubled).regressions(1.5).empty());
  EXPECT_FALSE(bench_diff(baseline, doubled).regressions(0.5).empty());
}

TEST(BenchDiffTest, MetricFiltersRestrictComparison) {
  const JsonValue baseline = parse(unified_doc(100.0, 4.0));
  const JsonValue candidate = parse(unified_doc(200.0, 4.0));
  // Filtering to speedup metrics hides the latency regression entirely.
  const BenchDiff diff = bench_diff(baseline, candidate, {"speedup"});
  ASSERT_EQ(diff.compared.size(), 1u);
  EXPECT_EQ(diff.compared[0].path, "metrics.rf.batch_speedup");
  EXPECT_TRUE(diff.regressions(0.10).empty());
}

TEST(BenchDiffTest, ExplicitDirectionBeatsPathInference) {
  // A metric whose name reads lower-is-better but is declared
  // higher_is_better: the declaration wins, so halving it regresses.
  const char* tmpl =
      "{\"metrics\":[{\"name\":\"weird_seconds\",\"value\":%s,"
      "\"higher_is_better\":true}]}";
  char base_buf[160], cand_buf[160];
  std::snprintf(base_buf, sizeof base_buf, tmpl, "10.0");
  std::snprintf(cand_buf, sizeof cand_buf, tmpl, "5.0");
  const auto regressions =
      bench_diff(parse(base_buf), parse(cand_buf)).regressions(0.10);
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_EQ(regressions[0].direction, MetricDirection::kHigherIsBetter);
}

TEST(BenchDiffTest, MissingAndNewMetricsAreReportedNotRegressed) {
  const JsonValue baseline =
      parse("{\"metrics\":[{\"name\":\"a_seconds\",\"value\":1.0},"
            "{\"name\":\"b_seconds\",\"value\":2.0}]}");
  const JsonValue candidate =
      parse("{\"metrics\":[{\"name\":\"b_seconds\",\"value\":2.0},"
            "{\"name\":\"c_seconds\",\"value\":3.0}]}");
  const BenchDiff diff = bench_diff(baseline, candidate);
  ASSERT_EQ(diff.compared.size(), 1u);
  EXPECT_EQ(diff.compared[0].path, "metrics.b_seconds");
  ASSERT_EQ(diff.baseline_only.size(), 1u);
  EXPECT_EQ(diff.baseline_only[0], "metrics.a_seconds");
  ASSERT_EQ(diff.candidate_only.size(), 1u);
  EXPECT_EQ(diff.candidate_only[0], "metrics.c_seconds");
  EXPECT_TRUE(diff.regressions(0.10).empty());
}

TEST(BenchDiffTest, InformationalAndNonPositiveValuesNeverRegress) {
  const JsonValue baseline =
      parse("{\"context\":{\"rows\":100},"
            "\"metrics\":[{\"name\":\"x_seconds\",\"value\":0.0}]}");
  const JsonValue candidate =
      parse("{\"context\":{\"rows\":999},"
            "\"metrics\":[{\"name\":\"x_seconds\",\"value\":5.0}]}");
  EXPECT_TRUE(bench_diff(baseline, candidate).regressions(0.0).empty());
}

TEST(BenchDiffTest, RenderFlagsRegressions) {
  const JsonValue baseline = parse(unified_doc(100.0, 4.0));
  const JsonValue candidate = parse(unified_doc(200.0, 4.0));
  const std::string report =
      render_bench_diff(bench_diff(baseline, candidate), 0.10);
  EXPECT_NE(report.find("REGRESSED"), std::string::npos);
  EXPECT_NE(report.find("metrics.rf.row_ns_per_sample"), std::string::npos);
  EXPECT_NE(report.find("1 regressed"), std::string::npos);
}

}  // namespace
}  // namespace drlhmd::obs
