#include "obs/trace_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace drlhmd::obs {
namespace {

/// Count trace records with a given "ph" value.
std::size_t count_phase(const JsonValue& doc, const std::string& ph) {
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr) return 0;
  std::size_t n = 0;
  for (const auto& ev : events->array) {
    const JsonValue* p = ev.find("ph");
    if (p != nullptr && p->is_string() && p->string == ph) ++n;
  }
  return n;
}

TEST(ChromeTraceTest, EmptyTracerExportsValidDocument) {
  const std::string json = to_chrome_trace({});
  ASSERT_TRUE(json_valid(json)) << json;
  const auto doc = json_parse(json);
  ASSERT_TRUE(doc.has_value());
  ASSERT_NE(doc->find("traceEvents"), nullptr);
  EXPECT_TRUE(doc->find("traceEvents")->is_array());
}

TEST(ChromeTraceTest, ClosedSpansBecomeCompleteEvents) {
  Tracer tracer;
  {
    Span outer = tracer.span("pipeline");
    Span inner = tracer.span("train", "phase");
  }
  const std::string json = to_chrome_trace(tracer.events());
  ASSERT_TRUE(json_valid(json)) << json;
  const auto doc = json_parse(json);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(count_phase(*doc, "X"), 2u);
  EXPECT_EQ(count_phase(*doc, "B"), 0u);

  const JsonValue& events = *doc->find("traceEvents");
  ASSERT_EQ(events.array.size(), 2u);
  for (const auto& ev : events.array) {
    ASSERT_NE(ev.find("name"), nullptr);
    ASSERT_NE(ev.find("cat"), nullptr);
    EXPECT_EQ(ev.find("cat")->string, "phase");
    ASSERT_NE(ev.find("pid"), nullptr);
    ASSERT_NE(ev.find("tid"), nullptr);
    ASSERT_NE(ev.find("ts"), nullptr);
    ASSERT_NE(ev.find("dur"), nullptr);
    EXPECT_GE(ev.find("dur")->number, 0.0);
  }
}

TEST(ChromeTraceTest, OpenSpanBecomesBeginEvent) {
  Tracer tracer;
  Span open = tracer.span("still_running");
  const std::string json = to_chrome_trace(tracer.events());
  ASSERT_TRUE(json_valid(json)) << json;
  const auto doc = json_parse(json);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(count_phase(*doc, "B"), 1u);
  EXPECT_EQ(count_phase(*doc, "X"), 0u);
}

TEST(ChromeTraceTest, FlowMembersEmitArrowChain) {
  Tracer tracer;
  const std::uint64_t flow = tracer.next_flow_id();
  ASSERT_NE(flow, 0u);
  {
    Span fork = tracer.span("parallel.fit", "parallel", flow);
    // Chunk slices reported after the fact from "worker threads".
    tracer.complete_event("fit.chunk0", "parallel", 10.0, 5.0, flow);
    tracer.complete_event("fit.chunk1", "parallel", 12.0, 6.0, flow);
  }
  const std::string json = to_chrome_trace(tracer.events());
  ASSERT_TRUE(json_valid(json)) << json;
  const auto doc = json_parse(json);
  ASSERT_TRUE(doc.has_value());

  // 3 slices (fork span + 2 chunks) and a 3-member flow chain s -> t -> f.
  EXPECT_EQ(count_phase(*doc, "X"), 3u);
  EXPECT_EQ(count_phase(*doc, "s"), 1u);
  EXPECT_EQ(count_phase(*doc, "t"), 1u);
  EXPECT_EQ(count_phase(*doc, "f"), 1u);

  const JsonValue& events = *doc->find("traceEvents");
  bool saw_finish = false;
  for (const auto& ev : events.array) {
    const JsonValue* ph = ev.find("ph");
    if (ph == nullptr || !ph->is_string()) continue;
    if (ph->string == "s" || ph->string == "t" || ph->string == "f") {
      EXPECT_EQ(ev.find("cat")->string, "flow");
      ASSERT_NE(ev.find("id"), nullptr);
      EXPECT_EQ(ev.find("id")->number, static_cast<double>(flow));
    }
    if (ph->string == "f") {
      saw_finish = true;
      ASSERT_NE(ev.find("bp"), nullptr);  // bind to enclosing slice
      EXPECT_EQ(ev.find("bp")->string, "e");
    }
  }
  EXPECT_TRUE(saw_finish);
}

TEST(ChromeTraceTest, SingleMemberFlowEmitsNoArrow) {
  Tracer tracer;
  const std::uint64_t flow = tracer.next_flow_id();
  { Span solo = tracer.span("solo", "parallel", flow); }
  const auto doc = json_parse(to_chrome_trace(tracer.events()));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(count_phase(*doc, "s"), 0u);  // an arrow needs two endpoints
  EXPECT_EQ(count_phase(*doc, "f"), 0u);
}

TEST(ChromeTraceTest, EscapesSpecialCharactersInNames) {
  Tracer tracer;
  { Span s = tracer.span("weird \"name\"\nwith\\specials"); }
  const std::string json = to_chrome_trace(tracer.events());
  EXPECT_TRUE(json_valid(json)) << json;
}

TEST(ChromeTraceTest, WriteFileRoundTrips) {
  Tracer tracer;
  { Span s = tracer.span("roundtrip"); }
  const std::string path = ::testing::TempDir() + "trace_export_test.json";
  ASSERT_TRUE(write_chrome_trace_file(tracer, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string loaded = buffer.str();
  EXPECT_TRUE(json_valid(loaded)) << loaded;
  EXPECT_NE(loaded.find("roundtrip"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ChromeTraceTest, WriteFileFailsOnBadPath) {
  Tracer tracer;
  EXPECT_FALSE(
      write_chrome_trace_file(tracer, "/nonexistent-dir-xyz/trace.json"));
}

}  // namespace
}  // namespace drlhmd::obs
