#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "util/rng.hpp"

namespace drlhmd::obs {
namespace {

TEST(MetricKeyTest, LabelsAreSortedAndCanonical) {
  EXPECT_EQ(metric_key("m", {}), "m");
  EXPECT_EQ(metric_key("m", {{"b", "2"}, {"a", "1"}}), "m{a=1,b=2}");
  EXPECT_EQ(metric_key("m", {{"a", "1"}, {"b", "2"}}),
            metric_key("m", {{"b", "2"}, {"a", "1"}}));
}

TEST(CounterTest, IncrementsMonotonically) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(P2QuantileTest, ExactForSmallSamples) {
  P2Quantile p50(0.5);
  p50.observe(3.0);
  p50.observe(1.0);
  p50.observe(2.0);
  EXPECT_DOUBLE_EQ(p50.estimate(), 2.0);
}

TEST(P2QuantileTest, TracksUniformStreamQuantiles) {
  // 10k uniform [0,1000) samples: p50/p95/p99 estimates must land close to
  // the true quantiles without retaining the stream.
  util::Rng rng(7);
  P2Quantile p50(0.5), p95(0.95), p99(0.99);
  std::vector<double> all;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform() * 1000.0;
    all.push_back(x);
    p50.observe(x);
    p95.observe(x);
    p99.observe(x);
  }
  std::sort(all.begin(), all.end());
  EXPECT_NEAR(p50.estimate(), all[all.size() / 2], 25.0);
  EXPECT_NEAR(p95.estimate(), all[all.size() * 95 / 100], 25.0);
  EXPECT_NEAR(p99.estimate(), all[all.size() * 99 / 100], 25.0);
}

TEST(HistogramTest, BucketsPartitionObservations) {
  Histogram h({1.0, 10.0, 100.0});
  for (const double v : {0.5, 0.7, 5.0, 50.0, 5000.0}) h.observe(v);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 5u);
  ASSERT_EQ(snap.buckets.size(), 4u);  // 3 bounds + the +inf tail
  EXPECT_EQ(snap.buckets[0], 2u);      // <= 1
  EXPECT_EQ(snap.buckets[1], 1u);      // <= 10
  EXPECT_EQ(snap.buckets[2], 1u);      // <= 100
  EXPECT_EQ(snap.buckets[3], 1u);      // +inf
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 5000.0);
  EXPECT_DOUBLE_EQ(snap.sum, 5056.2);
  const std::uint64_t total = snap.buckets[0] + snap.buckets[1] +
                              snap.buckets[2] + snap.buckets[3];
  EXPECT_EQ(total, snap.count);
}

TEST(HistogramTest, QuantilesOrderedOnSkewedStream) {
  Histogram h({});
  // Mostly-fast latencies with a slow tail, the runtime's typical shape.
  for (int i = 0; i < 950; ++i) h.observe(10.0 + (i % 7));
  for (int i = 0; i < 50; ++i) h.observe(500.0 + i);
  const auto snap = h.snapshot();
  EXPECT_LE(snap.p50, snap.p95);
  EXPECT_LE(snap.p95, snap.p99);
  EXPECT_LT(snap.p50, 20.0);
  EXPECT_GT(snap.p99, 100.0);
}

TEST(MetricsRegistryTest, HandlesAreStableAndIdentityAddressed) {
  MetricsRegistry reg;
  Counter& a = reg.counter("drlhmd.test.hits", {{"shard", "0"}});
  Counter& b = reg.counter("drlhmd.test.hits", {{"shard", "0"}});
  Counter& c = reg.counter("drlhmd.test.hits", {{"shard", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.inc(3);
  c.inc();
  const auto snap = reg.snapshot();
  const auto* s0 = snap.find_counter("drlhmd.test.hits", {{"shard", "0"}});
  const auto* s1 = snap.find_counter("drlhmd.test.hits", {{"shard", "1"}});
  ASSERT_NE(s0, nullptr);
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s0->value, 3u);
  EXPECT_EQ(s1->value, 1u);
}

TEST(MetricsRegistryTest, ConcurrentUpdatesFromManyThreads) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      // Every thread resolves its own handles (exercises registry locking)
      // and hammers shared metrics.
      Counter& hits = reg.counter("drlhmd.test.concurrent.hits");
      Gauge& level = reg.gauge("drlhmd.test.concurrent.level");
      Histogram& lat = reg.histogram("drlhmd.test.concurrent.latency_us");
      for (int i = 0; i < kIters; ++i) {
        hits.inc();
        level.add(1.0);
        lat.observe(static_cast<double>((t * kIters + i) % 100));
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.find_counter("drlhmd.test.concurrent.hits")->value,
            static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_DOUBLE_EQ(snap.find_gauge("drlhmd.test.concurrent.level")->value,
                   static_cast<double>(kThreads * kIters));
  EXPECT_EQ(snap.find_histogram("drlhmd.test.concurrent.latency_us")->data.count,
            static_cast<std::uint64_t>(kThreads * kIters));
}

TEST(MetricsSnapshotTest, JsonIsValidAndCarriesAllSections) {
  MetricsRegistry reg;
  reg.counter("drlhmd.test.count").inc(5);
  reg.gauge("drlhmd.test.level", {{"k", "v"}}).set(1.25);
  reg.histogram("drlhmd.test.lat_us").observe(42.0);
  const std::string json = reg.snapshot().to_json();
  EXPECT_TRUE(json_valid(json));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("drlhmd.test.count"), std::string::npos);
}

TEST(MetricsSnapshotTest, TableRendersEveryMetric) {
  MetricsRegistry reg;
  reg.counter("drlhmd.test.count").inc();
  reg.histogram("drlhmd.test.lat_us").observe(1.0);
  const std::string table = reg.snapshot().to_table();
  EXPECT_NE(table.find("drlhmd.test.count"), std::string::npos);
  EXPECT_NE(table.find("drlhmd.test.lat_us"), std::string::npos);
  EXPECT_NE(table.find("p95"), std::string::npos);
}

TEST(MetricsRegistryTest, ClearEmptiesTheRegistry) {
  MetricsRegistry reg;
  reg.counter("a").inc();
  reg.gauge("b").set(1);
  reg.histogram("c").observe(1);
  EXPECT_EQ(reg.size(), 3u);
  reg.clear();
  EXPECT_EQ(reg.size(), 0u);
}

}  // namespace
}  // namespace drlhmd::obs
