#include "obs/json.hpp"

#include <gtest/gtest.h>

namespace drlhmd::obs {
namespace {

TEST(JsonWriterTest, ObjectWithScalars) {
  JsonWriter w;
  w.begin_object()
      .kv("name", "x")
      .kv("count", std::uint64_t{7})
      .kv("ratio", 0.5)
      .kv("on", true)
      .key("none")
      .null()
      .end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"x","count":7,"ratio":0.5,"on":true,"none":null})");
  EXPECT_TRUE(json_valid(w.str()));
}

TEST(JsonWriterTest, NestedArraysAndObjects) {
  JsonWriter w;
  w.begin_object().key("rows").begin_array();
  for (int i = 0; i < 3; ++i)
    w.begin_object().kv("i", static_cast<std::int64_t>(i)).end_object();
  w.end_array().end_object();
  EXPECT_EQ(w.str(), R"({"rows":[{"i":0},{"i":1},{"i":2}]})");
  EXPECT_TRUE(json_valid(w.str()));
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters) {
  JsonWriter w;
  w.begin_object().kv("msg", "a\"b\\c\nd\te\x01" "f").end_object();
  EXPECT_EQ(w.str(), "{\"msg\":\"a\\\"b\\\\c\\nd\\te\\u0001f\"}");
  EXPECT_TRUE(json_valid(w.str()));
}

TEST(JsonWriterTest, NonFiniteNumbersEmitNull) {
  JsonWriter w;
  w.begin_array()
      .value(std::numeric_limits<double>::quiet_NaN())
      .value(std::numeric_limits<double>::infinity())
      .end_array();
  EXPECT_EQ(w.str(), "[null,null]");
  EXPECT_TRUE(json_valid(w.str()));
}

TEST(JsonWriterTest, MisuseThrows) {
  JsonWriter w;
  w.begin_object();
  EXPECT_THROW(w.value(1.0), std::logic_error);  // value without key
  EXPECT_THROW(w.end_array(), std::logic_error);
  EXPECT_THROW(w.str(), std::logic_error);  // document not complete
}

TEST(JsonWriterTest, RawInjectsSubDocument) {
  JsonWriter inner;
  inner.begin_object().kv("k", std::uint64_t{1}).end_object();
  JsonWriter w;
  w.begin_object().key("sub").raw(inner.str()).end_object();
  EXPECT_EQ(w.str(), R"({"sub":{"k":1}})");
  EXPECT_TRUE(json_valid(w.str()));
}

TEST(JsonValidTest, AcceptsCanonicalDocuments) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid("[]"));
  EXPECT_TRUE(json_valid("  {\"a\": [1, -2.5, 3e4, \"s\", null, true]}  "));
  EXPECT_TRUE(json_valid("\"lone string\""));
  EXPECT_TRUE(json_valid("-0.25"));
}

TEST(JsonValidTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("{\"a\":}"));
  EXPECT_FALSE(json_valid("[1,]"));
  EXPECT_FALSE(json_valid("{\"a\":1}}"));
  EXPECT_FALSE(json_valid("{'a':1}"));
  EXPECT_FALSE(json_valid("01"));
  EXPECT_FALSE(json_valid("\"unterminated"));
  EXPECT_FALSE(json_valid("{\"a\":1 \"b\":2}"));
}

}  // namespace
}  // namespace drlhmd::obs
