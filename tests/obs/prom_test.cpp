#include "obs/prom.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "obs/metrics.hpp"

namespace drlhmd::obs {
namespace {

MetricsSnapshot populated_snapshot() {
  MetricsRegistry reg;
  reg.counter("drlhmd.runtime.verdicts", {{"verdict", "benign"}}).inc(10);
  reg.counter("drlhmd.runtime.verdicts", {{"verdict", "malware"}}).inc(3);
  reg.gauge("drlhmd.pipeline.progress").set(0.5);
  Histogram& legacy = reg.histogram("drlhmd.runtime.stage_latency_us");
  for (int i = 0; i < 100; ++i) legacy.observe(10.0 + i);
  ShardedTailHistogram& tail = reg.tail("drlhmd.runtime.stage_tail_us", {},
                                        {{"stage", "predictor"}});
  for (int i = 0; i < 1000; ++i) tail.observe(5.0 + (i % 50));
  return reg.snapshot();
}

TEST(PromNameTest, SanitizesToExpositionCharset) {
  EXPECT_EQ(prom_name("drlhmd.runtime.stage_tail_us"),
            "drlhmd_runtime_stage_tail_us");
  EXPECT_EQ(prom_name("already_fine:name"), "already_fine:name");
  EXPECT_EQ(prom_name("9starts_with_digit"), "_9starts_with_digit");
  EXPECT_EQ(prom_name("has spaces-and-dashes"), "has_spaces_and_dashes");
}

TEST(PromExportTest, PopulatedSnapshotPassesLint) {
  const std::string text = to_prometheus(populated_snapshot());
  std::string error;
  EXPECT_TRUE(prom_lint(text, &error)) << error << "\n" << text;

  // All four metric families present with their exposition types.
  EXPECT_NE(text.find("# TYPE drlhmd_runtime_verdicts counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE drlhmd_pipeline_progress gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE drlhmd_runtime_stage_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE drlhmd_runtime_stage_tail_us summary"),
            std::string::npos);
  // Labeled series, cumulative buckets, and summary quantiles.
  EXPECT_NE(text.find("drlhmd_runtime_verdicts{verdict=\"benign\"} 10"),
            std::string::npos);
  EXPECT_NE(text.find("_bucket{le=\"+Inf\"}"), std::string::npos);
  EXPECT_NE(text.find("{stage=\"predictor\",quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("drlhmd_runtime_stage_tail_us_count"),
            std::string::npos);
}

TEST(PromExportTest, EmptyTailExportsNonFiniteLiterals) {
  // An empty tail histogram has NaN quantiles — the exposition format spells
  // that "NaN", and the linter must accept it.
  MetricsRegistry reg;
  reg.tail("drlhmd.test.empty_tail_us");
  reg.gauge("drlhmd.test.pos").set(std::numeric_limits<double>::infinity());
  reg.gauge("drlhmd.test.neg").set(-std::numeric_limits<double>::infinity());
  const std::string text = to_prometheus(reg.snapshot());
  std::string error;
  EXPECT_TRUE(prom_lint(text, &error)) << error << "\n" << text;
  EXPECT_NE(text.find("quantile=\"0.5\"} NaN"), std::string::npos);
  EXPECT_NE(text.find("drlhmd_test_pos +Inf"), std::string::npos);
  EXPECT_NE(text.find("drlhmd_test_neg -Inf"), std::string::npos);
}

TEST(PromExportTest, LabelValuesAreEscaped) {
  MetricsRegistry reg;
  reg.counter("drlhmd.test.weird", {{"path", "a\\b\"c\nd"}}).inc();
  const std::string text = to_prometheus(reg.snapshot());
  std::string error;
  EXPECT_TRUE(prom_lint(text, &error)) << error << "\n" << text;
  EXPECT_NE(text.find("path=\"a\\\\b\\\"c\\nd\""), std::string::npos);
}

TEST(PromExportTest, TypeLineEmittedOncePerLabeledFamily) {
  const std::string text = to_prometheus(populated_snapshot());
  // Two verdict label sets share one family: exactly one TYPE line.
  const std::string needle = "# TYPE drlhmd_runtime_verdicts counter";
  const std::size_t first = text.find(needle);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(needle, first + 1), std::string::npos);
}

TEST(PromLintTest, AcceptsCommentsBlanksAndTimestamps) {
  const std::string text =
      "# HELP metric_a something\n"
      "# TYPE metric_a counter\n"
      "metric_a 1\n"
      "\n"
      "# TYPE metric_b gauge\n"
      "metric_b{x=\"y\"} 2.5 1712345678901\n";
  std::string error;
  EXPECT_TRUE(prom_lint(text, &error)) << error;
}

TEST(PromLintTest, RejectsMalformedDocuments) {
  std::string error;
  // Sample with no preceding TYPE declaration.
  EXPECT_FALSE(prom_lint("orphan_metric 1\n", &error));
  EXPECT_NE(error.find("no preceding TYPE"), std::string::npos);
  // Invalid metric name.
  EXPECT_FALSE(prom_lint("# TYPE bad-name counter\nbad-name 1\n", &error));
  // Unknown type keyword.
  EXPECT_FALSE(prom_lint("# TYPE m widget\nm 1\n", &error));
  // Duplicate TYPE line.
  EXPECT_FALSE(
      prom_lint("# TYPE m counter\n# TYPE m counter\nm 1\n", &error));
  EXPECT_NE(error.find("duplicate TYPE"), std::string::npos);
  // Unparsable value.
  EXPECT_FALSE(prom_lint("# TYPE m gauge\nm banana\n", &error));
  // Bad escape in a label value.
  EXPECT_FALSE(prom_lint("# TYPE m gauge\nm{l=\"a\\q\"} 1\n", &error));
  // Unterminated label block.
  EXPECT_FALSE(prom_lint("# TYPE m gauge\nm{l=\"v\" 1\n", &error));
  // Malformed timestamp.
  EXPECT_FALSE(prom_lint("# TYPE m gauge\nm 1 12.5\n", &error));
}

TEST(PromLintTest, ResolvesChildSeriesThroughFamilyType) {
  // _bucket/_sum/_count ride on the parent histogram/summary TYPE...
  std::string error;
  EXPECT_TRUE(prom_lint("# TYPE lat histogram\n"
                        "lat_bucket{le=\"+Inf\"} 3\n"
                        "lat_sum 12\n"
                        "lat_count 3\n",
                        &error))
      << error;
  // ...but not on a counter family.
  EXPECT_FALSE(prom_lint("# TYPE lat counter\nlat_sum 12\n", &error));
}

}  // namespace
}  // namespace drlhmd::obs
