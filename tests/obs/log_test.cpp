#include "obs/log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "obs/json.hpp"

namespace drlhmd::obs {
namespace {

/// Restores logger defaults around every test so suites don't leak sinks.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::instance().reset();
    Logger::instance().set_stderr_sink(false);
  }
  void TearDown() override { Logger::instance().reset(); }
};

TEST_F(LogTest, LevelNamesAreStable) {
  EXPECT_STREQ(level_name(LogLevel::kTrace), "trace");
  EXPECT_STREQ(level_name(LogLevel::kDebug), "debug");
  EXPECT_STREQ(level_name(LogLevel::kInfo), "info");
  EXPECT_STREQ(level_name(LogLevel::kWarn), "warn");
  EXPECT_STREQ(level_name(LogLevel::kError), "error");
}

TEST_F(LogTest, LevelFilteringGatesTheMacro) {
  std::vector<LogRecord> seen;
  Logger::instance().set_callback(
      [&seen](const LogRecord& r) { seen.push_back(r); });
  Logger::instance().set_level(LogLevel::kWarn);

  DRLHMD_LOG(Info) << "dropped";
  DRLHMD_LOG(Warn) << "kept " << 1;
  DRLHMD_LOG(Error) << "kept " << 2;

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].message, "kept 1");
  EXPECT_EQ(seen[0].level, LogLevel::kWarn);
  EXPECT_EQ(seen[1].message, "kept 2");
  EXPECT_GT(seen[1].line, 0);
}

TEST_F(LogTest, DisabledLevelDoesNotEvaluateStreamExpression) {
  Logger::instance().set_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 42;
  };
  DRLHMD_LOG(Debug) << "x" << expensive();
  EXPECT_EQ(evaluations, 0);
  DRLHMD_LOG(Error) << "x" << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, MacroIsDanglingElseSafe) {
  Logger::instance().set_level(LogLevel::kOff);
  bool else_branch = false;
  if (false)
    DRLHMD_LOG(Info) << "then";
  else
    else_branch = true;
  EXPECT_TRUE(else_branch);
}

TEST_F(LogTest, JsonlSinkRoundTrips) {
  const std::string path =
      ::testing::TempDir() + "/drlhmd_log_roundtrip.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(Logger::instance().open_jsonl(path));
  Logger::instance().set_level(LogLevel::kInfo);

  DRLHMD_LOG(Info) << "sample " << 1 << " verdict=\"benign\"";
  DRLHMD_LOG(Warn) << "alarm line\nsecond line";
  Logger::instance().close_jsonl();

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  for (const auto& line : lines) {
    EXPECT_TRUE(json_valid(line)) << line;
    EXPECT_NE(line.find("\"ts_ms\""), std::string::npos);
    EXPECT_NE(line.find("\"level\""), std::string::npos);
    EXPECT_NE(line.find("\"msg\""), std::string::npos);
  }
  // Quotes and the embedded newline survived the escape/parse round-trip.
  EXPECT_NE(lines[0].find("verdict=\\\"benign\\\""), std::string::npos);
  EXPECT_NE(lines[1].find("\\n"), std::string::npos);
  EXPECT_NE(lines[1].find("\"warn\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(LogTest, RecordSerializesItsFields) {
  LogRecord record;
  record.level = LogLevel::kError;
  record.ts_ms = 12.5;
  record.file = "runtime.cpp";
  record.line = 99;
  record.message = "integrity alarm";
  const std::string line = record.to_jsonl();
  EXPECT_TRUE(json_valid(line));
  EXPECT_EQ(line,
            R"({"ts_ms":12.5,"level":"error","file":"runtime.cpp",)"
            R"("line":99,"msg":"integrity alarm"})");
}

}  // namespace
}  // namespace drlhmd::obs
