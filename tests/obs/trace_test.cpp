#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/telemetry.hpp"

namespace drlhmd::obs {
namespace {

TEST(SpanTest, DefaultConstructedIsInertNoOp) {
  Span span;
  EXPECT_FALSE(span.active());
  span.end();  // harmless
}

TEST(TracerTest, RecordsNestingOrderAndDepth) {
  Tracer tracer;
  {
    Span outer = tracer.span("outer");
    {
      Span middle = tracer.span("middle");
      Span inner = tracer.span("inner");
    }
    Span sibling = tracer.span("sibling");
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[0].parent, TraceEvent::kNoParent);
  EXPECT_EQ(events[1].name, "middle");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[1].parent, 0u);
  EXPECT_EQ(events[2].name, "inner");
  EXPECT_EQ(events[2].depth, 2);
  EXPECT_EQ(events[2].parent, 1u);
  EXPECT_EQ(events[3].name, "sibling");
  EXPECT_EQ(events[3].depth, 1);
  EXPECT_EQ(events[3].parent, 0u);
  for (const auto& ev : events) {
    EXPECT_FALSE(ev.open);
    EXPECT_GE(ev.dur_us, 0.0);
  }
  // Children close no later than their parent; the parent covers them.
  EXPECT_GE(events[0].dur_us, events[1].dur_us);
  EXPECT_GE(events[1].dur_us, events[2].dur_us);
}

TEST(TracerTest, ExplicitEndIsIdempotent) {
  Tracer tracer;
  Span span = tracer.span("phase");
  span.end();
  span.end();
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].open);
}

TEST(TracerTest, MoveTransfersOwnership) {
  Tracer tracer;
  {
    Span a = tracer.span("moved");
    Span b = std::move(a);
    EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(b.active());
  }
  ASSERT_EQ(tracer.events().size(), 1u);
  EXPECT_FALSE(tracer.events()[0].open);
}

TEST(TracerTest, JsonExportIsValidAndNamesSpans) {
  Tracer tracer;
  {
    Span outer = tracer.span("pipeline");
    Span inner = tracer.span("pipeline.acquire");
  }
  const std::string json = tracer.to_json();
  EXPECT_TRUE(json_valid(json));
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("pipeline.acquire"), std::string::npos);
  EXPECT_NE(json.find("\"dur_us\""), std::string::npos);
}

TEST(TracerTest, TableIndentsByDepth) {
  Tracer tracer;
  {
    Span outer = tracer.span("outer");
    Span inner = tracer.span("inner");
  }
  const std::string table = tracer.to_table();
  EXPECT_NE(table.find("outer"), std::string::npos);
  EXPECT_NE(table.find("  inner"), std::string::npos);
}

TEST(TracerTest, ClearResetsEventsAndStack) {
  Tracer tracer;
  { Span s = tracer.span("x"); }
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  { Span s = tracer.span("y"); }
  ASSERT_EQ(tracer.events().size(), 1u);
  EXPECT_EQ(tracer.events()[0].depth, 0);
}

TEST(TelemetryTest, PhaseSpanIsInertWhenDisabled) {
  Telemetry::set_enabled(false);
  Telemetry::reset();
  {
    Span span = phase_span("should-not-record");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(Telemetry::tracer().size(), 0u);

  Telemetry::set_enabled(true);
  {
    Span span = phase_span("records");
    EXPECT_TRUE(span.active());
  }
  EXPECT_EQ(Telemetry::tracer().size(), 1u);
  Telemetry::set_enabled(false);
  Telemetry::reset();
}

TEST(TelemetryTest, ScopedLatencyObservesMicroseconds) {
  Histogram h({});
  { ScopedLatency lat(&h); }
  { ScopedLatency noop(nullptr); }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.max, 0.0);
}

}  // namespace
}  // namespace drlhmd::obs
