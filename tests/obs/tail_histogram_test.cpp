#include "obs/tail_histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace drlhmd::obs {
namespace {

/// Skewed latency-like stream: mostly-fast samples with a heavy tail, the
/// shape the runtime's stage timings actually have.
std::vector<double> skewed_stream(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform();
    // Exponential body (~40us scale) plus occasional 100x tail spikes.
    double v = -40.0 * std::log(1.0 - 0.999 * u);
    if (rng.uniform() < 0.01) v *= 100.0;
    out.push_back(v);
  }
  return out;
}

/// The oracle quantile: rank ceil(q*n) of the sorted samples (matching the
/// histogram's rank definition).
double oracle_quantile(std::vector<double> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  std::size_t rank =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(sorted.size())));
  if (rank < 1) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

TEST(TailLayoutTest, IndexValueMapsAreConsistent) {
  const TailLayout layout(TailConfig{});
  for (std::uint64_t ticks : {0ull, 1ull, 100ull, 255ull, 256ull, 257ull,
                              1000ull, 123456ull, 99999999ull}) {
    const std::size_t idx = layout.index_for(ticks);
    EXPECT_LE(layout.lowest_equivalent(idx), ticks);
    EXPECT_GE(layout.highest_equivalent(idx), ticks);
    // A bucket's whole range must map back to the same slot.
    EXPECT_EQ(layout.index_for(layout.lowest_equivalent(idx)), idx);
    EXPECT_EQ(layout.index_for(layout.highest_equivalent(idx)), idx);
  }
}

TEST(TailLayoutTest, BucketRelativeWidthBoundedByPrecision) {
  // Every bucket's width must stay within 2^-precision_bits of its value —
  // that is the exactness guarantee behind "exact-within-bucket" quantiles.
  const TailLayout layout(TailConfig{});
  const double rel = 1.0 / static_cast<double>(1 << layout.precision_bits());
  for (std::size_t idx = 0; idx < layout.num_counts(); ++idx) {
    const std::uint64_t lo = layout.lowest_equivalent(idx);
    const std::uint64_t hi = layout.highest_equivalent(idx);
    if (lo == 0) continue;
    EXPECT_LE(static_cast<double>(hi - lo),
              static_cast<double>(hi) * rel)
        << "bucket " << idx;
  }
}

TEST(TailLayoutTest, RejectsBadConfigs) {
  TailConfig bad;
  bad.precision_bits = 0;
  EXPECT_THROW(TailLayout{bad}, std::invalid_argument);
  bad = TailConfig{};
  bad.precision_bits = 15;
  EXPECT_THROW(TailLayout{bad}, std::invalid_argument);
  bad = TailConfig{};
  bad.max_value = -1.0;
  EXPECT_THROW(TailLayout{bad}, std::invalid_argument);
  bad = TailConfig{};
  bad.ticks_per_unit = 0.0;
  EXPECT_THROW(TailLayout{bad}, std::invalid_argument);
}

TEST(TailHistogramTest, QuantilesMatchSortedOracleWithinBucketError) {
  const std::vector<double> samples = skewed_stream(50000, 11);
  TailHistogram h;
  for (const double v : samples) h.observe(v);
  ASSERT_EQ(h.count(), samples.size());

  const double rel =
      1.0 / static_cast<double>(1 << h.layout().precision_bits());
  const double tick = 1.0 / h.layout().ticks_per_unit();
  for (const double q : {0.5, 0.9, 0.99, 0.999, 0.9999}) {
    const double oracle = oracle_quantile(samples, q);
    const double est = h.quantile(q);
    // The estimate is the top of the bucket holding the oracle-ranked
    // sample: within one bucket's relative width (plus tick rounding).
    EXPECT_NEAR(est, oracle, oracle * rel + tick)
        << "q=" << q;
  }
}

TEST(TailHistogramTest, SumMinMaxAreExactInTicks) {
  TailHistogram h;
  const std::vector<double> samples = {0.25, 1.5, 3.75, 100.0, 42.125};
  double tick_sum = 0.0;
  for (const double v : samples) {
    h.observe(v);
    tick_sum += std::llround(v * h.layout().ticks_per_unit());
  }
  EXPECT_EQ(h.count(), samples.size());
  EXPECT_DOUBLE_EQ(h.sum(), tick_sum / h.layout().ticks_per_unit());
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(TailHistogramTest, DropsNonFiniteAndNegative) {
  TailHistogram h;
  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(std::numeric_limits<double>::infinity());
  h.observe(-std::numeric_limits<double>::infinity());
  h.observe(-1.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.dropped(), 4u);
  EXPECT_TRUE(std::isnan(h.min()));
  EXPECT_TRUE(std::isnan(h.max()));
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  h.observe(7.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.dropped(), 4u);  // the good sample is unaffected
  EXPECT_DOUBLE_EQ(h.min(), 7.0);
}

TEST(TailHistogramTest, SaturatesAboveRangeButStaysCounted) {
  TailConfig cfg;
  cfg.max_value = 1000.0;
  TailHistogram h(cfg);
  h.observe(10.0);
  h.observe(1e12);  // far beyond the range
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.saturated(), 1u);
  EXPECT_EQ(h.dropped(), 0u);
  // The saturated sample is clamped into the top bucket, not lost.
  EXPECT_LE(h.max(), h.layout().max_value() + 1.0);
  EXPECT_GE(h.quantile(1.0), 1000.0 * 0.99);
}

TEST(TailHistogramTest, MergeEqualsSerialRecording) {
  const std::vector<double> samples = skewed_stream(9000, 23);
  TailHistogram serial;
  TailHistogram parts[3];
  for (std::size_t i = 0; i < samples.size(); ++i) {
    serial.observe(samples[i]);
    parts[i % 3].observe(samples[i]);
  }
  TailHistogram merged;
  for (const auto& p : parts) merged.merge(p);
  EXPECT_EQ(merged.counts(), serial.counts());
  EXPECT_EQ(merged.count(), serial.count());
  EXPECT_EQ(merged.sum(), serial.sum());    // exact: integer tick sums
  EXPECT_EQ(merged.min(), serial.min());
  EXPECT_EQ(merged.max(), serial.max());
  for (const double q : {0.5, 0.9, 0.99, 0.999})
    EXPECT_EQ(merged.quantile(q), serial.quantile(q));
}

TEST(TailHistogramTest, MergeIsAssociativeAndCommutative) {
  TailHistogram a, b, c;
  for (const double v : skewed_stream(2000, 31)) a.observe(v);
  for (const double v : skewed_stream(2000, 37)) b.observe(v);
  for (const double v : skewed_stream(2000, 41)) c.observe(v);

  TailHistogram ab_c;  // (a + b) + c
  ab_c.merge(a);
  ab_c.merge(b);
  ab_c.merge(c);
  TailHistogram c_ba;  // c + (b + a): different order AND grouping
  TailHistogram ba;
  ba.merge(b);
  ba.merge(a);
  c_ba.merge(c);
  c_ba.merge(ba);

  EXPECT_EQ(ab_c.counts(), c_ba.counts());
  EXPECT_EQ(ab_c.count(), c_ba.count());
  EXPECT_EQ(ab_c.sum(), c_ba.sum());  // bitwise: sums accumulate in ticks
  EXPECT_EQ(ab_c.min(), c_ba.min());
  EXPECT_EQ(ab_c.max(), c_ba.max());
  const auto s1 = ab_c.snapshot(), s2 = c_ba.snapshot();
  EXPECT_EQ(s1.p50, s2.p50);
  EXPECT_EQ(s1.p99, s2.p99);
  EXPECT_EQ(s1.p9999, s2.p9999);
}

TEST(TailHistogramTest, MergeLayoutMismatchThrows) {
  TailConfig other;
  other.precision_bits = 5;
  TailHistogram a, b(other);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(TailHistogramTest, SnapshotBucketsAreConsistent) {
  TailHistogram h;
  for (const double v : skewed_stream(5000, 43)) h.observe(v);
  const auto snap = h.snapshot();
  std::uint64_t total = 0;
  double prev_hi = -1.0;
  for (const auto& b : snap.buckets) {
    EXPECT_GT(b.count, 0u);
    EXPECT_LE(b.lo, b.hi);
    EXPECT_GT(b.lo, prev_hi);  // ascending, non-overlapping
    prev_hi = b.hi;
    total += b.count;
  }
  EXPECT_EQ(total, snap.count);
  // Snapshot::quantile walks the bucket list and must agree with the
  // histogram's own counts-array walk.
  for (const double q : {0.5, 0.9, 0.99, 0.999, 0.9999})
    EXPECT_EQ(snap.quantile(q), h.quantile(q));
  EXPECT_EQ(snap.p50, h.quantile(0.5));
  EXPECT_EQ(snap.p9999, h.quantile(0.9999));
  EXPECT_DOUBLE_EQ(snap.mean(), snap.sum / static_cast<double>(snap.count));
}

TEST(ShardedTailHistogramTest, ConcurrentObservesAggregateExactly) {
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  ShardedTailHistogram sharded;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sharded, t] {
      for (int i = 0; i < kIters; ++i)
        sharded.observe(static_cast<double>((t * 131 + i) % 500) + 0.25);
    });
  }
  for (auto& w : workers) w.join();

  // The aggregate must be the exact histogram a serial recorder produces
  // from the same multiset of observations.
  TailHistogram serial;
  for (int t = 0; t < kThreads; ++t)
    for (int i = 0; i < kIters; ++i)
      serial.observe(static_cast<double>((t * 131 + i) % 500) + 0.25);

  const TailHistogram merged = sharded.aggregate();
  EXPECT_EQ(merged.count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(merged.counts(), serial.counts());
  EXPECT_EQ(merged.sum(), serial.sum());
  EXPECT_EQ(merged.min(), serial.min());
  EXPECT_EQ(merged.max(), serial.max());
  const auto got = sharded.snapshot(), want = serial.snapshot();
  EXPECT_EQ(got.p50, want.p50);
  EXPECT_EQ(got.p99, want.p99);
  EXPECT_EQ(got.p999, want.p999);
}

TEST(ShardedTailHistogramTest, DroppedAndSaturatedPropagate) {
  TailConfig cfg;
  cfg.max_value = 100.0;
  ShardedTailHistogram sharded(cfg);
  sharded.observe(std::numeric_limits<double>::quiet_NaN());
  sharded.observe(-3.0);
  sharded.observe(1e9);
  sharded.observe(5.0);
  const TailHistogram agg = sharded.aggregate();
  EXPECT_EQ(agg.dropped(), 2u);
  EXPECT_EQ(agg.saturated(), 1u);
  EXPECT_EQ(agg.count(), 2u);  // saturated sample still counted
}

}  // namespace
}  // namespace drlhmd::obs
