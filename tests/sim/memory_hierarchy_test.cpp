#include "sim/memory_hierarchy.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace drlhmd::sim {
namespace {

TEST(MemoryHierarchyTest, ColdLoadWalksAllLevels) {
  MemoryHierarchy mh(HierarchyConfig{});
  EventCounts counts;
  const std::uint32_t latency = mh.access_data(0x100000, false, counts);
  // Miss everywhere -> memory latency (no TLB hit possible on first touch).
  EXPECT_GE(latency, mh.config().mem_latency);
  EXPECT_EQ(counts[HpcEvent::kL1DcacheLoads], 1u);
  EXPECT_EQ(counts[HpcEvent::kL1DcacheLoadMisses], 1u);
  EXPECT_EQ(counts[HpcEvent::kL2Accesses], 1u);
  EXPECT_EQ(counts[HpcEvent::kL2Misses], 1u);
  EXPECT_EQ(counts[HpcEvent::kCacheReferences], 1u);
  EXPECT_EQ(counts[HpcEvent::kCacheMisses], 1u);
  EXPECT_EQ(counts[HpcEvent::kLlcLoads], 1u);
  EXPECT_EQ(counts[HpcEvent::kLlcLoadMisses], 1u);
  EXPECT_EQ(counts[HpcEvent::kDtlbLoads], 1u);
  EXPECT_EQ(counts[HpcEvent::kDtlbLoadMisses], 1u);
}

TEST(MemoryHierarchyTest, WarmLoadHitsL1) {
  MemoryHierarchy mh(HierarchyConfig{});
  EventCounts counts;
  mh.access_data(0x100000, false, counts);
  const std::uint32_t latency = mh.access_data(0x100000, false, counts);
  EXPECT_EQ(latency, mh.config().l1_latency);
  EXPECT_EQ(counts[HpcEvent::kL1DcacheLoads], 2u);
  EXPECT_EQ(counts[HpcEvent::kL1DcacheLoadMisses], 1u);
  EXPECT_EQ(counts[HpcEvent::kL2Accesses], 1u);  // unchanged
}

TEST(MemoryHierarchyTest, StoresCountSeparately) {
  MemoryHierarchy mh(HierarchyConfig{});
  EventCounts counts;
  mh.access_data(0x200000, true, counts);
  EXPECT_EQ(counts[HpcEvent::kL1DcacheStores], 1u);
  EXPECT_EQ(counts[HpcEvent::kL1DcacheStoreMisses], 1u);
  EXPECT_EQ(counts[HpcEvent::kLlcStores], 1u);
  EXPECT_EQ(counts[HpcEvent::kLlcStoreMisses], 1u);
  EXPECT_EQ(counts[HpcEvent::kMemStores], 1u);
  EXPECT_EQ(counts[HpcEvent::kL1DcacheLoads], 0u);
}

TEST(MemoryHierarchyTest, InstructionFetchUsesSeparateL1) {
  MemoryHierarchy mh(HierarchyConfig{});
  EventCounts counts;
  mh.access_instruction(0x400000, counts);
  EXPECT_EQ(counts[HpcEvent::kL1IcacheLoads], 1u);
  EXPECT_EQ(counts[HpcEvent::kL1IcacheLoadMisses], 1u);
  EXPECT_EQ(counts[HpcEvent::kItlbLoads], 1u);
  // Second fetch of the same line: cheap.
  const std::uint32_t latency = mh.access_instruction(0x400000, counts);
  EXPECT_EQ(latency, 0u);
}

TEST(MemoryHierarchyTest, L2IsSharedBetweenCodeAndData) {
  MemoryHierarchy mh(HierarchyConfig{});
  EventCounts counts;
  mh.access_instruction(0x400000, counts);
  // Data access to the same line: L1D misses but L2 already has the line.
  const std::uint32_t latency = mh.access_data(0x400000, false, counts);
  EXPECT_LE(latency, mh.config().l2_latency + mh.config().tlb_miss_penalty);
  EXPECT_EQ(counts[HpcEvent::kL2Misses], 1u);  // only the fetch missed L2
}

TEST(MemoryHierarchyTest, LatencyOrderingAcrossLevels) {
  const HierarchyConfig cfg;
  EXPECT_LT(cfg.l1_latency, cfg.l2_latency);
  EXPECT_LT(cfg.l2_latency, cfg.llc_latency);
  EXPECT_LT(cfg.llc_latency, cfg.mem_latency);
}

TEST(MemoryHierarchyTest, CountingInvariantsUnderRandomTraffic) {
  MemoryHierarchy mh(HierarchyConfig{});
  EventCounts counts;
  util::Rng rng(77);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t addr = rng.next_below(8ull << 20);
    mh.access_data(addr, rng.bernoulli(0.3), counts);
  }
  // Structural inequalities of an exclusive-path walk.
  EXPECT_EQ(counts[HpcEvent::kL1DcacheLoads] + counts[HpcEvent::kL1DcacheStores],
            20000u);
  EXPECT_EQ(counts[HpcEvent::kL2Accesses],
            counts[HpcEvent::kL1DcacheLoadMisses] +
                counts[HpcEvent::kL1DcacheStoreMisses]);
  EXPECT_EQ(counts[HpcEvent::kCacheReferences], counts[HpcEvent::kL2Misses]);
  EXPECT_LE(counts[HpcEvent::kCacheMisses], counts[HpcEvent::kCacheReferences]);
  EXPECT_EQ(counts[HpcEvent::kLlcLoads] + counts[HpcEvent::kLlcStores],
            counts[HpcEvent::kCacheReferences]);
  EXPECT_EQ(counts[HpcEvent::kLlcLoadMisses] + counts[HpcEvent::kLlcStoreMisses],
            counts[HpcEvent::kCacheMisses]);
  EXPECT_LE(counts[HpcEvent::kDtlbLoadMisses], counts[HpcEvent::kDtlbLoads]);
}

TEST(MemoryHierarchyTest, SmallWorkingSetBecomesL1Resident) {
  MemoryHierarchy mh(HierarchyConfig{});
  EventCounts counts;
  util::Rng rng(5);
  // 8 KiB working set << 16 KiB L1D.
  for (int i = 0; i < 50000; ++i)
    mh.access_data(rng.next_below(8 * 1024), false, counts);
  const double l1_miss_rate =
      static_cast<double>(counts[HpcEvent::kL1DcacheLoadMisses]) / 50000.0;
  EXPECT_LT(l1_miss_rate, 0.02);
}

TEST(MemoryHierarchyTest, HugeWorkingSetMissesLlc) {
  MemoryHierarchy mh(HierarchyConfig{});
  EventCounts counts;
  util::Rng rng(6);
  // 64 MiB >> 1 MiB LLC.
  for (int i = 0; i < 50000; ++i)
    mh.access_data(rng.next_below(64ull << 20), false, counts);
  const double llc_miss_rate =
      static_cast<double>(counts[HpcEvent::kCacheMisses]) /
      static_cast<double>(counts[HpcEvent::kCacheReferences]);
  EXPECT_GT(llc_miss_rate, 0.9);
}

TEST(MemoryHierarchyTest, LlcResidentSetHitsLlc) {
  MemoryHierarchy mh(HierarchyConfig{});
  EventCounts counts;
  util::Rng rng(7);
  // 512 KiB: misses L2 (128 KiB) but fits LLC (1 MiB). Warm up first.
  for (int i = 0; i < 30000; ++i)
    mh.access_data(rng.next_below(512 * 1024), false, counts);
  EventCounts warm;
  for (int i = 0; i < 30000; ++i)
    mh.access_data(rng.next_below(512 * 1024), false, warm);
  const double llc_miss_rate =
      static_cast<double>(warm[HpcEvent::kCacheMisses]) /
      static_cast<double>(warm[HpcEvent::kCacheReferences]);
  EXPECT_LT(llc_miss_rate, 0.1);
  EXPECT_GT(warm[HpcEvent::kCacheReferences], 10000u);
}

TEST(MemoryHierarchyTest, FlushAllResetsResidency) {
  MemoryHierarchy mh(HierarchyConfig{});
  EventCounts counts;
  mh.access_data(0x1234, false, counts);
  mh.flush_all();
  const std::uint32_t latency = mh.access_data(0x1234, false, counts);
  EXPECT_GE(latency, mh.config().mem_latency);
}

TEST(EventCountsTest, DeltaSince) {
  EventCounts a, b;
  b.increment(HpcEvent::kCycles, 100);
  b.increment(HpcEvent::kInstructions, 40);
  a.increment(HpcEvent::kCycles, 30);
  const EventCounts d = b.delta_since(a);
  EXPECT_EQ(d[HpcEvent::kCycles], 70u);
  EXPECT_EQ(d[HpcEvent::kInstructions], 40u);
}

TEST(EventNamesTest, RoundTripAllEvents) {
  for (std::size_t i = 0; i < kNumHpcEvents; ++i) {
    const auto e = static_cast<HpcEvent>(i);
    EXPECT_EQ(event_from_name(event_name(e)), e);
  }
  EXPECT_THROW(event_from_name("not-an-event"), std::out_of_range);
  EXPECT_GE(kNumHpcEvents, 30u);  // paper: "+30 events"
}

}  // namespace
}  // namespace drlhmd::sim
