#include "sim/branch_predictor.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace drlhmd::sim {
namespace {

TEST(BimodalTest, LearnsAlwaysTaken) {
  BimodalPredictor p(10);
  for (int i = 0; i < 10; ++i) p.observe(0x400, true);
  EXPECT_TRUE(p.predict(0x400));
  // After warm-up the misprediction rate must be tiny.
  p.reset_stats();
  for (int i = 0; i < 100; ++i) p.observe(0x400, true);
  EXPECT_EQ(p.stats().mispredictions, 0u);
}

TEST(BimodalTest, LearnsAlwaysNotTaken) {
  BimodalPredictor p(10);
  for (int i = 0; i < 10; ++i) p.observe(0x400, false);
  EXPECT_FALSE(p.predict(0x400));
}

TEST(BimodalTest, TwoBitHysteresisSurvivesOneFlip) {
  BimodalPredictor p(10);
  for (int i = 0; i < 10; ++i) p.observe(0x400, true);  // saturated taken
  p.observe(0x400, false);                              // one anomaly
  EXPECT_TRUE(p.predict(0x400));                        // still predicts taken
}

TEST(BimodalTest, DistinctPcsIndependent) {
  BimodalPredictor p(12);
  for (int i = 0; i < 10; ++i) {
    p.observe(0x1000, true);
    p.observe(0x2000, false);
  }
  EXPECT_TRUE(p.predict(0x1000));
  EXPECT_FALSE(p.predict(0x2000));
}

TEST(BimodalTest, AlternatingPatternIsHard) {
  BimodalPredictor p(10);
  for (int i = 0; i < 1000; ++i) p.observe(0x400, i % 2 == 0);
  // Bimodal cannot learn strict alternation.
  EXPECT_GT(p.stats().misprediction_rate(), 0.4);
}

TEST(GshareTest, LearnsAlternatingPatternViaHistory) {
  GsharePredictor p(14, 8);
  for (int i = 0; i < 2000; ++i) p.observe(0x400, i % 2 == 0);
  // With history, the tail of the run should be near-perfect; overall rate
  // is dominated by warm-up, so re-measure after training.
  p.reset_stats();
  for (int i = 0; i < 500; ++i) p.observe(0x400, i % 2 == 0);
  EXPECT_LT(p.stats().misprediction_rate(), 0.05);
}

TEST(GshareTest, LearnsShortPeriodicPattern) {
  GsharePredictor p(14, 10);
  auto pattern = [](int i) { return (i % 4) != 3; };  // TTT N TTT N ...
  for (int i = 0; i < 4000; ++i) p.observe(0x80, pattern(i));
  p.reset_stats();
  for (int i = 0; i < 400; ++i) p.observe(0x80, pattern(i));
  EXPECT_LT(p.stats().misprediction_rate(), 0.05);
}

TEST(PredictorTest, RandomBranchesNearChance) {
  GsharePredictor p;
  util::Rng rng(3);
  for (int i = 0; i < 20000; ++i) p.observe(0x400, rng.bernoulli(0.5));
  EXPECT_NEAR(p.stats().misprediction_rate(), 0.5, 0.05);
}

TEST(PredictorTest, BiasedBranchesBeatChance) {
  GsharePredictor p;
  util::Rng rng(5);
  for (int i = 0; i < 20000; ++i) p.observe(0x400, rng.bernoulli(0.9));
  EXPECT_LT(p.stats().misprediction_rate(), 0.2);
}

TEST(PredictorTest, StatsCountEveryObservation) {
  BimodalPredictor p;
  for (int i = 0; i < 37; ++i) p.observe(0x10, true);
  EXPECT_EQ(p.stats().predictions, 37u);
  EXPECT_LE(p.stats().mispredictions, 37u);
}

TEST(PredictorTest, ConstructionValidation) {
  EXPECT_THROW(BimodalPredictor(0), std::invalid_argument);
  EXPECT_THROW(BimodalPredictor(30), std::invalid_argument);
  EXPECT_THROW(GsharePredictor(0, 8), std::invalid_argument);
  EXPECT_THROW(GsharePredictor(12, 0), std::invalid_argument);
  EXPECT_THROW(GsharePredictor(12, 40), std::invalid_argument);
}

TEST(PredictorTest, FactoriesProduceWorkingPredictors) {
  auto bimodal = make_bimodal();
  auto gshare = make_gshare();
  for (int i = 0; i < 20; ++i) {
    bimodal->observe(0x4, true);
    gshare->observe(0x4, true);
  }
  EXPECT_TRUE(bimodal->predict(0x4));
  EXPECT_TRUE(gshare->predict(0x4));
}

/// Sweep: both predictors converge on strongly biased sites regardless of
/// table size.
class PredictorSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PredictorSizeSweep, BiasedSiteConverges) {
  BimodalPredictor bimodal(GetParam());
  GsharePredictor gshare(GetParam(), 8);
  util::Rng rng(GetParam());
  for (int i = 0; i < 4000; ++i) {
    const bool taken = rng.bernoulli(0.95);
    bimodal.observe(0x1234, taken);
    gshare.observe(0x1234, taken);
  }
  EXPECT_LT(bimodal.stats().misprediction_rate(), 0.15);
  EXPECT_LT(gshare.stats().misprediction_rate(), 0.25);
}

INSTANTIATE_TEST_SUITE_P(TableBits, PredictorSizeSweep,
                         ::testing::Values(4u, 8u, 12u, 16u));

}  // namespace
}  // namespace drlhmd::sim
