#include "sim/prefetcher.hpp"

#include <gtest/gtest.h>

#include "sim/memory_hierarchy.hpp"
#include "util/rng.hpp"

namespace drlhmd::sim {
namespace {

TEST(NextLinePrefetcherTest, PrefetchesFollowingLines) {
  NextLinePrefetcher pf(64, 2);
  const auto out = pf.observe(0x1010);  // line base 0x1000
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 0x1040u);
  EXPECT_EQ(out[1], 0x1080u);
  EXPECT_EQ(pf.stats().triggers, 1u);
  EXPECT_EQ(pf.stats().issued, 2u);
}

TEST(NextLinePrefetcherTest, Validation) {
  EXPECT_THROW(NextLinePrefetcher(48, 2), std::invalid_argument);
  EXPECT_THROW(NextLinePrefetcher(64, 0), std::invalid_argument);
  EXPECT_THROW(NextLinePrefetcher(64, 17), std::invalid_argument);
}

TEST(StridePrefetcherTest, LearnsConstantStride) {
  StridePrefetcher pf(16, 2, 64);
  // Train: three accesses at stride 128 confirm the stride.
  EXPECT_TRUE(pf.observe(0x10000).empty());   // allocate entry
  EXPECT_TRUE(pf.observe(0x10080).empty());   // stride seen once
  const auto out = pf.observe(0x10100);       // stride confirmed
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 0x10180u);
  EXPECT_EQ(out[1], 0x10200u);
}

TEST(StridePrefetcherTest, NegativeStride) {
  StridePrefetcher pf(16, 1, 64);
  pf.observe(0x20000);
  pf.observe(0x20000 - 64);
  const auto out = pf.observe(0x20000 - 128);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0x20000u - 192u);
}

TEST(StridePrefetcherTest, RandomAccessesStayQuiet) {
  StridePrefetcher pf(16, 4, 64);
  util::Rng rng(3);
  std::size_t issued = 0;
  for (int i = 0; i < 2000; ++i)
    issued += pf.observe(0x100000 + rng.next_below(1 << 19)).size();
  // Random addresses in one region almost never confirm a stride.
  EXPECT_LT(issued, 200u);
}

TEST(StridePrefetcherTest, DistinctRegionsTrackedSeparately) {
  StridePrefetcher pf(64, 1, 64);
  // Interleave two streams in different 1 MiB regions.
  std::uint64_t a = 0x10000000, b = 0x40000000;
  std::size_t issued = 0;
  for (int i = 0; i < 8; ++i) {
    issued += pf.observe(a).size();
    issued += pf.observe(b).size();
    a += 64;
    b += 256;
  }
  EXPECT_GT(issued, 8u);  // both streams locked on
}

TEST(StridePrefetcherTest, Validation) {
  EXPECT_THROW(StridePrefetcher(0, 2, 64), std::invalid_argument);
  EXPECT_THROW(StridePrefetcher(8, 0, 64), std::invalid_argument);
  EXPECT_THROW(StridePrefetcher(8, 2, 48), std::invalid_argument);
}

TEST(HierarchyPrefetchTest, StreamingMissesDropWithStridePrefetch) {
  HierarchyConfig off;
  off.prefetch = HierarchyConfig::Prefetch::kNone;
  HierarchyConfig on;
  on.prefetch = HierarchyConfig::Prefetch::kStride;

  auto run_stream = [](const HierarchyConfig& cfg) {
    MemoryHierarchy mh(cfg);
    EventCounts counts;
    // Stream 8 MiB at 64B stride (every access a new line).
    for (std::uint64_t addr = 0; addr < (8ull << 20); addr += 64)
      mh.access_data(0x10000000 + addr, false, counts);
    return counts;
  };

  const EventCounts miss_off = run_stream(off);
  const EventCounts miss_on = run_stream(on);
  EXPECT_EQ(miss_on[HpcEvent::kLlcPrefetches] > 0, true);
  // With the stride prefetcher, demand LLC misses collapse.
  EXPECT_LT(miss_on[HpcEvent::kCacheMisses],
            miss_off[HpcEvent::kCacheMisses] / 4);
  // Prefetch traffic is accounted on its own counters, not demand events.
  EXPECT_EQ(miss_off[HpcEvent::kLlcPrefetches], 0u);
}

TEST(HierarchyPrefetchTest, NextLineHelpsSequentialFetch) {
  HierarchyConfig cfg;
  cfg.prefetch = HierarchyConfig::Prefetch::kNextLine;
  MemoryHierarchy mh(cfg);
  EventCounts counts;
  for (std::uint64_t addr = 0; addr < (2ull << 20); addr += 64)
    mh.access_data(0x20000000 + addr, false, counts);
  EXPECT_GT(counts[HpcEvent::kLlcPrefetches], 0u);
  // The second access of every pair should find its line prefetched in L2.
  EXPECT_LT(counts[HpcEvent::kCacheMisses], counts[HpcEvent::kL1DcacheLoadMisses]);
}

TEST(HierarchyPrefetchTest, DefaultPlatformHasNoPrefetcher) {
  const HierarchyConfig cfg;
  EXPECT_EQ(cfg.prefetch, HierarchyConfig::Prefetch::kNone);
  MemoryHierarchy mh(cfg);
  EXPECT_EQ(mh.prefetcher(), nullptr);
}

}  // namespace
}  // namespace drlhmd::sim
