#include <gtest/gtest.h>

#include "sim/core.hpp"
#include "sim/perf_monitor.hpp"

namespace drlhmd::sim {
namespace {

Workload simple_workload(std::uint64_t seed) {
  WorkloadSpec spec;
  spec.name = "mux-test";
  spec.family = "test";
  PhaseSpec p;
  p.load_frac = 0.3;
  p.store_frac = 0.1;
  p.branch_frac = 0.1;
  p.working_set_bytes = 64 * 1024;
  p.stream_bytes = 64 * 1024;
  p.branch_sites = 32;
  spec.phases = {p};
  return Workload(spec, seed);
}

TEST(MultiplexingTest, DisabledByDefault) {
  const PerfMonitorConfig cfg;
  EXPECT_EQ(cfg.pmu_counters, 0u);
}

TEST(MultiplexingTest, NoiseIsMultiplicativeAndBounded) {
  Core core_a(CoreConfig{}, HierarchyConfig{}, simple_workload(5), 5);
  Core core_b(CoreConfig{}, HierarchyConfig{}, simple_workload(5), 5);

  PerfMonitorConfig clean_cfg{.window_cycles = 50000, .warmup_cycles = 5000};
  PerfMonitorConfig mux_cfg = clean_cfg;
  mux_cfg.pmu_counters = 8;

  PerfMonitor clean(core_a, clean_cfg);
  PerfMonitor noisy(core_b, mux_cfg);
  clean.warm_up();
  noisy.warm_up();

  const HpcSample s_clean = clean.sample_window();
  const HpcSample s_noisy = noisy.sample_window();
  bool any_different = false;
  for (std::size_t e = 0; e < kNumHpcEvents; ++e) {
    if (s_clean.values[e] <= 0.0) continue;
    const double ratio = s_noisy.values[e] / s_clean.values[e];
    EXPECT_GT(ratio, 0.5) << event_name(static_cast<HpcEvent>(e));
    EXPECT_LT(ratio, 1.5) << event_name(static_cast<HpcEvent>(e));
    any_different |= ratio != 1.0;
  }
  EXPECT_TRUE(any_different);
}

TEST(MultiplexingTest, NoiseIsUnbiasedOnAverage) {
  Core core(CoreConfig{}, HierarchyConfig{}, simple_workload(9), 9);
  PerfMonitorConfig cfg{.window_cycles = 20000, .warmup_cycles = 2000};
  cfg.pmu_counters = 8;
  PerfMonitor monitor(core, cfg);
  monitor.warm_up();

  // Instructions-per-window is roughly stationary for this workload; the
  // multiplex noise should average out over many windows.
  const auto samples = monitor.collect(200);
  const auto instr = static_cast<std::size_t>(HpcEvent::kInstructions);
  const auto cyc = static_cast<std::size_t>(HpcEvent::kCycles);
  double ratio_sum = 0.0;
  for (const auto& s : samples) ratio_sum += s.values[instr] / s.values[cyc];
  const double mean_ratio = ratio_sum / static_cast<double>(samples.size());
  // Compare to a clean monitor on an identical core.
  Core clean_core(CoreConfig{}, HierarchyConfig{}, simple_workload(9), 9);
  PerfMonitorConfig clean_cfg = cfg;
  clean_cfg.pmu_counters = 0;
  PerfMonitor clean(clean_core, clean_cfg);
  clean.warm_up();
  const auto clean_samples = clean.collect(200);
  double clean_sum = 0.0;
  for (const auto& s : clean_samples)
    clean_sum += s.values[instr] / s.values[cyc];
  EXPECT_NEAR(mean_ratio, clean_sum / 200.0, 0.02);
}

TEST(MultiplexingTest, MoreGroupsMoreNoise) {
  auto variance_for = [](std::uint32_t pmu) {
    Core core(CoreConfig{}, HierarchyConfig{}, simple_workload(13), 13);
    PerfMonitorConfig cfg{.window_cycles = 20000, .warmup_cycles = 2000};
    cfg.pmu_counters = pmu;
    PerfMonitor monitor(core, cfg);
    monitor.warm_up();
    const auto samples = monitor.collect(150);
    const auto idx = static_cast<std::size_t>(HpcEvent::kInstructions);
    double mean = 0.0;
    for (const auto& s : samples) mean += s.values[idx];
    mean /= static_cast<double>(samples.size());
    double var = 0.0;
    for (const auto& s : samples)
      var += (s.values[idx] - mean) * (s.values[idx] - mean);
    return var / (mean * mean * static_cast<double>(samples.size()));
  };
  // Fewer hardware counters -> more multiplex groups -> larger relative
  // variance.
  EXPECT_GT(variance_for(2), variance_for(16));
}

}  // namespace
}  // namespace drlhmd::sim
