#include <gtest/gtest.h>

#include "sim/cache.hpp"
#include "util/rng.hpp"

namespace drlhmd::sim {
namespace {

CacheConfig srrip_cache(std::uint32_t ways = 4, std::uint64_t sets = 4) {
  CacheConfig c;
  c.name = "srrip";
  c.line_bytes = 64;
  c.associativity = ways;
  c.size_bytes = 64ull * ways * sets;
  c.policy = ReplacementPolicy::kSrrip;
  return c;
}

TEST(SrripTest, BasicHitMiss) {
  Cache cache(srrip_cache());
  EXPECT_FALSE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1000));
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(SrripTest, AccountingInvariants) {
  Cache cache(srrip_cache(4, 8));
  util::Rng rng(11);
  for (int i = 0; i < 10000; ++i) cache.access(rng.next_below(1 << 16));
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 10000u);
  EXPECT_LE(cache.stats().evictions, cache.stats().misses);
}

TEST(SrripTest, ScanResistance) {
  // A hot working set that fits, interleaved with a long streaming scan.
  // SRRIP should keep substantially more of the hot set resident than LRU:
  // scan lines enter with a distant re-reference prediction and age out
  // before displacing frequently re-referenced hot lines.
  auto run = [](ReplacementPolicy policy) {
    CacheConfig cfg = srrip_cache(8, 16);  // 8 KiB, 128 lines
    cfg.policy = policy;
    Cache cache(cfg);
    util::Rng rng(3);
    // Hot set: 48 lines, re-touched often; scan: fresh lines every round.
    std::uint64_t scan_cursor = 1 << 24;
    std::uint64_t hot_hits = 0, hot_accesses = 0;
    for (int round = 0; round < 3000; ++round) {
      // 3 hot touches per scan line — a scan-heavy mix.
      for (int h = 0; h < 3; ++h) {
        const std::uint64_t hot_line = rng.next_below(48) * 64;
        ++hot_accesses;
        hot_hits += cache.access(hot_line) ? 1 : 0;
      }
      cache.access(scan_cursor);
      scan_cursor += 64;
    }
    return static_cast<double>(hot_hits) / static_cast<double>(hot_accesses);
  };
  const double srrip_hit_rate = run(ReplacementPolicy::kSrrip);
  const double lru_hit_rate = run(ReplacementPolicy::kLru);
  EXPECT_GT(srrip_hit_rate, lru_hit_rate);
  EXPECT_GT(srrip_hit_rate, 0.85);
}

TEST(SrripTest, WorksAsLlcPolicyEndToEnd) {
  // The SRRIP policy can be plugged into the hierarchy without breaking
  // the counting invariants.
  CacheConfig cfg = srrip_cache(16, 64);
  Cache cache(cfg);
  for (std::uint64_t a = 0; a < (1u << 20); a += 64) cache.access(a);
  EXPECT_EQ(cache.stats().accesses,
            cache.stats().hits + cache.stats().misses);
}

}  // namespace
}  // namespace drlhmd::sim
