#include "sim/tlb.hpp"

#include <gtest/gtest.h>

namespace drlhmd::sim {
namespace {

TEST(TlbTest, SamePageHitsAfterFirstAccess) {
  Tlb tlb(TlbConfig{});
  EXPECT_FALSE(tlb.access(0x1000));
  EXPECT_TRUE(tlb.access(0x1FFF));  // same 4K page
  EXPECT_FALSE(tlb.access(0x2000)); // next page
}

TEST(TlbTest, CapacityEviction) {
  TlbConfig cfg;
  cfg.entries = 4;
  cfg.associativity = 4;  // fully associative with 4 entries
  Tlb tlb(cfg);
  for (std::uint64_t p = 0; p < 5; ++p) tlb.access(p * 4096);
  // Page 0 is the LRU entry and must have been evicted.
  EXPECT_FALSE(tlb.access(0));
  EXPECT_EQ(tlb.stats().misses, 6u);
}

TEST(TlbTest, FlushForgetsTranslations) {
  Tlb tlb(TlbConfig{});
  tlb.access(0x5000);
  tlb.flush();
  EXPECT_FALSE(tlb.access(0x5000));
}

TEST(TlbTest, ConfigValidation) {
  TlbConfig bad;
  bad.entries = 0;
  EXPECT_THROW(Tlb{bad}, std::invalid_argument);
  bad = TlbConfig{};
  bad.entries = 10;
  bad.associativity = 4;  // 10 not divisible by 4
  EXPECT_THROW(Tlb{bad}, std::invalid_argument);
}

TEST(TlbTest, StatsAccumulate) {
  Tlb tlb(TlbConfig{});
  for (int i = 0; i < 10; ++i) tlb.access(0x1000);
  EXPECT_EQ(tlb.stats().accesses, 10u);
  EXPECT_EQ(tlb.stats().hits, 9u);
  tlb.reset_stats();
  EXPECT_EQ(tlb.stats().accesses, 0u);
}

}  // namespace
}  // namespace drlhmd::sim
