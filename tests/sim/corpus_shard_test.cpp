// Fleet-scale sharded corpus builds: machine-profile registry, shard
// determinism across thread counts, per-shard resume after a simulated
// interrupt, and the parameter-fingerprint guard.
#include "sim/corpus_shard.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <vector>

#include "ml/sharded_dataset.hpp"
#include "sim/machine_profile.hpp"
#include "util/parallel.hpp"

namespace drlhmd::sim {
namespace {

std::string fresh_dir(const std::string& leaf) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / leaf).string();
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<char> file_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

CorpusConfig small_corpus() {
  CorpusConfig cfg;
  cfg.benign_apps = 8;
  cfg.malware_apps = 8;
  cfg.windows_per_app = 2;
  cfg.seed = 77;
  return cfg;
}

FleetConfig small_fleet(const std::string& out_dir) {
  FleetConfig fleet;
  fleet.shards = 3;
  fleet.out_dir = out_dir;
  fleet.profiles = {"testbed-i7", "embedded-small"};
  return fleet;
}

class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(util::parallel_thread_count()) {}
  ~ThreadCountGuard() { util::set_parallel_threads(saved_); }

 private:
  std::size_t saved_;
};

TEST(MachineProfileTest, RegistryHasUniqueStableIds) {
  const auto& profiles = machine_profiles();
  ASSERT_GE(profiles.size(), 4u);
  std::set<std::string> ids;
  for (const auto& p : profiles) {
    EXPECT_FALSE(p.id.empty());
    EXPECT_FALSE(p.description.empty());
    EXPECT_TRUE(ids.insert(p.id).second) << "duplicate profile id " << p.id;
  }
  // Profile 0 is the nominal testbed: default configs, so a single-profile
  // fleet reproduces build_corpus machine-for-machine.
  EXPECT_EQ(profiles[0].id, "testbed-i7");
  EXPECT_EQ(profiles[0].hierarchy.llc.size_bytes, HierarchyConfig{}.llc.size_bytes);
}

TEST(MachineProfileTest, LookupByIdAndUnknownThrows) {
  const MachineProfile& p = machine_profile("server-srrip");
  EXPECT_EQ(p.id, "server-srrip");
  EXPECT_EQ(p.hierarchy.llc.policy, ReplacementPolicy::kSrrip);
  EXPECT_THROW(machine_profile("no-such-machine"), std::invalid_argument);
}

TEST(ShardAppCountTest, PartitionCoversTotalContiguously) {
  for (std::size_t total : {0u, 1u, 7u, 8u, 300u}) {
    std::size_t sum = 0;
    for (std::size_t s = 0; s < 3; ++s) sum += shard_app_count(total, 3, s);
    EXPECT_EQ(sum, total);
  }
  EXPECT_EQ(shard_app_count(8, 3, 0), 3u);  // remainder lands on leading shards
  EXPECT_EQ(shard_app_count(8, 3, 1), 3u);
  EXPECT_EQ(shard_app_count(8, 3, 2), 2u);
}

TEST(CorpusShardTest, BuildsAllShardsWithExpectedRows) {
  const std::string dir = fresh_dir("fleet-basic");
  const ShardBuildStats stats = build_corpus_sharded(small_corpus(), small_fleet(dir));
  EXPECT_EQ(stats.shards_total, 3u);
  EXPECT_EQ(stats.shards_built, 3u);
  EXPECT_EQ(stats.shards_resumed, 0u);
  EXPECT_TRUE(stats.complete);
  EXPECT_EQ(stats.rows, 16u * 2u);  // (8+8) apps x 2 windows

  const ml::ShardedDataset source = ml::ShardedDataset::open(dir);
  ASSERT_EQ(source.num_shards(), 3u);
  EXPECT_EQ(source.rows(), 32u);
  // Profiles assigned round-robin over the restricted set.
  EXPECT_EQ(source.profile_id(0), "testbed-i7");
  EXPECT_EQ(source.profile_id(1), "embedded-small");
  EXPECT_EQ(source.profile_id(2), "testbed-i7");
  source.validate();
  // Per-profile row accounting matches the shard assignment.
  ASSERT_EQ(stats.rows_per_profile.size(), 2u);
  EXPECT_EQ(stats.rows_per_profile.at("testbed-i7"),
            source.shard(0).rows() + source.shard(2).rows());
  EXPECT_EQ(stats.rows_per_profile.at("embedded-small"), source.shard(1).rows());
}

TEST(CorpusShardTest, ShardBytesAreThreadCountInvariant) {
  ThreadCountGuard guard;
  const CorpusConfig cfg = small_corpus();
  std::vector<std::vector<std::vector<char>>> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::set_parallel_threads(threads);
    const std::string dir = fresh_dir("fleet-t" + std::to_string(threads));
    build_corpus_sharded(cfg, small_fleet(dir));
    std::vector<std::vector<char>> shards;
    for (std::uint32_t s = 0; s < 3; ++s)
      shards.push_back(file_bytes(
          (std::filesystem::path(dir) / ml::shard_file_name(s)).string()));
    runs.push_back(std::move(shards));
  }
  for (std::size_t run = 1; run < runs.size(); ++run)
    for (std::size_t s = 0; s < 3; ++s) {
      ASSERT_FALSE(runs[run][s].empty());
      EXPECT_EQ(runs[run][s], runs[0][s])
          << "shard " << s << " differs between thread counts";
    }
}

TEST(CorpusShardTest, ResumesPerShardAfterInterrupt) {
  const CorpusConfig cfg = small_corpus();

  // Reference: one uninterrupted build.
  const std::string full_dir = fresh_dir("fleet-full");
  build_corpus_sharded(cfg, small_fleet(full_dir));

  // Interrupted build: stop after 2 new shards, then resume.
  const std::string dir = fresh_dir("fleet-resume");
  FleetConfig interrupted = small_fleet(dir);
  interrupted.limit_shards = 2;
  const ShardBuildStats first = build_corpus_sharded(cfg, interrupted);
  EXPECT_EQ(first.shards_built, 2u);
  EXPECT_EQ(first.shards_resumed, 0u);
  EXPECT_FALSE(first.complete);
  EXPECT_FALSE(std::filesystem::exists(
      std::filesystem::path(dir) / ml::shard_file_name(2)));

  const ShardBuildStats second = build_corpus_sharded(cfg, small_fleet(dir));
  EXPECT_EQ(second.shards_built, 1u);
  EXPECT_EQ(second.shards_resumed, 2u);
  EXPECT_TRUE(second.complete);

  // Resume must not have re-simulated or perturbed the surviving shards:
  // every shard file is byte-identical to the uninterrupted build.
  for (std::uint32_t s = 0; s < 3; ++s) {
    const auto resumed = file_bytes(
        (std::filesystem::path(dir) / ml::shard_file_name(s)).string());
    const auto reference = file_bytes(
        (std::filesystem::path(full_dir) / ml::shard_file_name(s)).string());
    ASSERT_FALSE(resumed.empty());
    EXPECT_EQ(resumed, reference) << "shard " << s;
  }

  // A third run is a pure no-op resume.
  const ShardBuildStats third = build_corpus_sharded(cfg, small_fleet(dir));
  EXPECT_EQ(third.shards_built, 0u);
  EXPECT_EQ(third.shards_resumed, 3u);
  EXPECT_TRUE(third.complete);
}

TEST(CorpusShardTest, RefusesMismatchedResumeParameters) {
  const std::string dir = fresh_dir("fleet-mismatch");
  FleetConfig fleet = small_fleet(dir);
  fleet.limit_shards = 1;  // keep the test cheap: one shard is enough state
  build_corpus_sharded(small_corpus(), fleet);

  CorpusConfig other = small_corpus();
  other.seed = 78;
  EXPECT_THROW(build_corpus_sharded(other, fleet), std::runtime_error);

  FleetConfig more_shards = fleet;
  more_shards.shards = 4;
  EXPECT_THROW(build_corpus_sharded(small_corpus(), more_shards),
               std::runtime_error);

  // Changing only limit_shards is a legal resume, not a mismatch.
  FleetConfig no_limit = fleet;
  no_limit.limit_shards = 0;
  EXPECT_NO_THROW(build_corpus_sharded(small_corpus(), no_limit));
}

TEST(CorpusShardTest, RejectsBadConfig) {
  FleetConfig fleet;
  fleet.out_dir = fresh_dir("fleet-bad");
  fleet.shards = 0;
  EXPECT_THROW(build_corpus_sharded(small_corpus(), fleet), std::invalid_argument);
  fleet.shards = 2;
  fleet.profiles = {"no-such-machine"};
  EXPECT_THROW(build_corpus_sharded(small_corpus(), fleet), std::invalid_argument);
  FleetConfig no_dir;
  no_dir.out_dir.clear();
  EXPECT_THROW(build_corpus_sharded(small_corpus(), no_dir), std::invalid_argument);
}

}  // namespace
}  // namespace drlhmd::sim
