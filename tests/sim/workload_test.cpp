#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/workload_profiles.hpp"

namespace drlhmd::sim {
namespace {

WorkloadSpec single_phase_spec() {
  WorkloadSpec spec;
  spec.name = "test-app";
  spec.family = "test";
  PhaseSpec p;
  p.name = "only";
  p.load_frac = 0.3;
  p.store_frac = 0.1;
  p.branch_frac = 0.2;
  p.sequential_frac = 0.5;
  p.working_set_bytes = 1 << 20;
  p.stream_bytes = 1 << 20;
  p.branch_sites = 64;
  spec.phases = {p};
  return spec;
}

TEST(WorkloadSpecTest, ValidationCatchesBadFractions) {
  WorkloadSpec spec = single_phase_spec();
  spec.phases[0].load_frac = 0.8;
  spec.phases[0].store_frac = 0.3;  // sum > 1
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = single_phase_spec();
  spec.phases[0].sequential_frac = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = single_phase_spec();
  spec.phases[0].taken_bias = -0.1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = single_phase_spec();
  spec.phases.clear();
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = single_phase_spec();
  spec.code_footprint_bytes = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = single_phase_spec();
  spec.phases[0].branch_sites = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  EXPECT_NO_THROW(single_phase_spec().validate());
}

TEST(WorkloadTest, DeterministicForSameSeed) {
  Workload a(single_phase_spec(), 42);
  Workload b(single_phase_spec(), 42);
  for (int i = 0; i < 1000; ++i) {
    const MicroOp x = a.next();
    const MicroOp y = b.next();
    EXPECT_EQ(static_cast<int>(x.kind), static_cast<int>(y.kind));
    EXPECT_EQ(x.addr, y.addr);
    EXPECT_EQ(x.taken, y.taken);
  }
}

TEST(WorkloadTest, OpMixMatchesSpec) {
  Workload w(single_phase_spec(), 7);
  int loads = 0, stores = 0, branches = 0, alu = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    switch (w.next().kind) {
      case OpKind::kLoad: ++loads; break;
      case OpKind::kStore: ++stores; break;
      case OpKind::kBranch: ++branches; break;
      case OpKind::kAlu: ++alu; break;
    }
  }
  EXPECT_NEAR(static_cast<double>(loads) / kN, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(stores) / kN, 0.1, 0.02);
  EXPECT_NEAR(static_cast<double>(branches) / kN, 0.2, 0.02);
  EXPECT_NEAR(static_cast<double>(alu) / kN, 0.4, 0.02);
}

TEST(WorkloadTest, BranchSitesWithinRange) {
  Workload w(single_phase_spec(), 11);
  for (int i = 0; i < 20000; ++i) {
    const MicroOp op = w.next();
    if (op.kind == OpKind::kBranch) EXPECT_LT(op.branch_site, 64u);
  }
}

TEST(WorkloadTest, BiasedSitesProduceBiasedOutcomes) {
  WorkloadSpec spec = single_phase_spec();
  spec.phases[0].taken_bias = 0.9;
  spec.phases[0].branch_entropy = 0.0;  // every site strongly biased
  Workload w(spec, 13);
  int taken = 0, total = 0;
  for (int i = 0; i < 100000; ++i) {
    const MicroOp op = w.next();
    if (op.kind == OpKind::kBranch) {
      taken += op.taken ? 1 : 0;
      ++total;
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(taken) / total, 0.85);
}

TEST(WorkloadTest, MultiPhaseVisitsAllPhases) {
  WorkloadSpec spec = single_phase_spec();
  PhaseSpec second = spec.phases[0];
  second.name = "second";
  second.mean_ops = 50;
  spec.phases[0].mean_ops = 50;
  spec.phases.push_back(second);
  Workload w(spec, 17);
  std::set<std::size_t> visited;
  for (int i = 0; i < 5000; ++i) {
    w.next();
    visited.insert(w.current_phase_index());
  }
  EXPECT_EQ(visited.size(), 2u);
}

TEST(WorkloadProfilesTest, FamilyNamesUnique) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < kNumProgramFamilies; ++i)
    names.insert(family_name(static_cast<ProgramFamily>(i)));
  EXPECT_EQ(names.size(), kNumProgramFamilies);
}

TEST(WorkloadProfilesTest, BenignMalwareSplit) {
  EXPECT_EQ(benign_families().size(), kNumBenignFamilies);
  EXPECT_EQ(malware_families().size(), kNumMalwareFamilies);
  for (ProgramFamily f : benign_families()) EXPECT_FALSE(family_is_malware(f));
  for (ProgramFamily f : malware_families()) EXPECT_TRUE(family_is_malware(f));
}

TEST(WorkloadProfilesTest, AllTemplatesValidate) {
  for (std::size_t i = 0; i < kNumProgramFamilies; ++i) {
    const auto spec = family_template(static_cast<ProgramFamily>(i));
    EXPECT_NO_THROW(spec.validate());
    EXPECT_FALSE(spec.phases.empty());
  }
}

TEST(WorkloadProfilesTest, RansomwareHasThreePhases) {
  const auto spec = family_template(ProgramFamily::kRansomware);
  ASSERT_EQ(spec.phases.size(), 3u);
  EXPECT_EQ(spec.phases[0].name, "sweep-read");
  EXPECT_EQ(spec.phases[2].name, "write-back");
  // Write-back is store-dominated.
  EXPECT_GT(spec.phases[2].store_frac, spec.phases[2].load_frac);
}

TEST(WorkloadProfilesTest, ApplicationsAreJitteredButValid) {
  util::Rng rng(23);
  const auto base = family_template(ProgramFamily::kDatabase);
  const auto app1 = make_application(ProgramFamily::kDatabase, 1, rng);
  const auto app2 = make_application(ProgramFamily::kDatabase, 2, rng);
  EXPECT_NO_THROW(app1.validate());
  EXPECT_NO_THROW(app2.validate());
  EXPECT_NE(app1.name, app2.name);
  // Jitter must actually change parameters between instances.
  EXPECT_NE(app1.phases[0].working_set_bytes, app2.phases[0].working_set_bytes);
  EXPECT_EQ(app1.family, base.family);
  EXPECT_EQ(app1.malware, base.malware);
}

/// Every family template yields runnable applications for many app ids.
class FamilySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FamilySweep, ApplicationsRunAndStayInFamilyCharacter) {
  util::Rng rng(GetParam() * 100 + 1);
  const auto family = static_cast<ProgramFamily>(GetParam());
  const auto spec = make_application(family, 0, rng);
  Workload w(spec, 99);
  for (int i = 0; i < 10000; ++i) {
    const MicroOp op = w.next();
    if (op.kind == OpKind::kLoad || op.kind == OpKind::kStore)
      EXPECT_GT(op.addr, 0u);
  }
  EXPECT_EQ(w.is_malware(), family_is_malware(family));
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilySweep,
                         ::testing::Range<std::size_t>(0, kNumProgramFamilies));

}  // namespace
}  // namespace drlhmd::sim
