#include "sim/cache.hpp"

#include <gtest/gtest.h>

namespace drlhmd::sim {
namespace {

CacheConfig tiny_cache(std::uint32_t ways = 2, std::uint64_t sets = 2) {
  CacheConfig c;
  c.name = "tiny";
  c.line_bytes = 64;
  c.associativity = ways;
  c.size_bytes = 64ull * ways * sets;
  return c;
}

TEST(CacheConfigTest, NumSets) {
  CacheConfig c;
  c.size_bytes = 32 * 1024;
  c.line_bytes = 64;
  c.associativity = 8;
  EXPECT_EQ(c.num_sets(), 64u);
}

TEST(CacheConfigTest, ValidationRejectsBadGeometry) {
  CacheConfig c = tiny_cache();
  c.size_bytes = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = tiny_cache();
  c.line_bytes = 48;  // not a power of two
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = tiny_cache();
  c.size_bytes = 64 * 3;  // 1.5 sets at 2 ways
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = tiny_cache(2, 3);  // 3 sets: not a power of two
  EXPECT_THROW(c.validate(), std::invalid_argument);

  EXPECT_NO_THROW(tiny_cache().validate());
}

TEST(CacheTest, FirstAccessMissesThenHits) {
  Cache cache(tiny_cache());
  EXPECT_FALSE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1010));  // same 64B line
  EXPECT_EQ(cache.stats().accesses, 3u);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CacheTest, LruEvictsLeastRecentlyUsed) {
  // 2-way, 2 sets; set index = bit 6. Same-set lines differ by 128.
  Cache cache(tiny_cache());
  cache.access(0);    // set 0, line A
  cache.access(128);  // set 0, line B
  cache.access(0);    // touch A -> B is LRU
  cache.access(256);  // set 0, line C -> evicts B
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(128));
  EXPECT_TRUE(cache.contains(256));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CacheTest, FifoEvictsOldestInsertion) {
  CacheConfig c = tiny_cache();
  c.policy = ReplacementPolicy::kFifo;
  Cache cache(c);
  cache.access(0);
  cache.access(128);
  cache.access(0);    // hit; FIFO order unchanged
  cache.access(256);  // evicts the oldest insertion: line 0
  EXPECT_FALSE(cache.contains(0));
  EXPECT_TRUE(cache.contains(128));
}

TEST(CacheTest, DifferentSetsDoNotConflict) {
  Cache cache(tiny_cache());
  cache.access(0);    // set 0
  cache.access(64);   // set 1
  cache.access(128);  // set 0
  cache.access(192);  // set 1
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(64));
  EXPECT_TRUE(cache.contains(128));
  EXPECT_TRUE(cache.contains(192));
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(CacheTest, ContainsDoesNotTouchState) {
  Cache cache(tiny_cache());
  cache.access(0);
  cache.access(128);
  // Probing A must not refresh its recency.
  ASSERT_TRUE(cache.contains(0));
  cache.access(256);  // LRU is line 0
  EXPECT_FALSE(cache.contains(0));
  // contains() also must not count as an access.
  EXPECT_EQ(cache.stats().accesses, 3u);
}

TEST(CacheTest, InvalidateRemovesLine) {
  Cache cache(tiny_cache());
  cache.access(0x40);
  EXPECT_TRUE(cache.invalidate(0x40));
  EXPECT_FALSE(cache.contains(0x40));
  EXPECT_FALSE(cache.invalidate(0x40));  // already gone
}

TEST(CacheTest, FlushEmptiesEverything) {
  Cache cache(tiny_cache());
  for (std::uint64_t a = 0; a < 4 * 64; a += 64) cache.access(a);
  cache.flush();
  for (std::uint64_t a = 0; a < 4 * 64; a += 64) EXPECT_FALSE(cache.contains(a));
}

TEST(CacheTest, ResetStatsKeepsContents) {
  Cache cache(tiny_cache());
  cache.access(0);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_TRUE(cache.contains(0));
}

TEST(CacheTest, MissRateComputation) {
  Cache cache(tiny_cache());
  EXPECT_EQ(cache.stats().miss_rate(), 0.0);
  cache.access(0);
  cache.access(0);
  EXPECT_DOUBLE_EQ(cache.stats().miss_rate(), 0.5);
}

TEST(CacheTest, WorkingSetLargerThanCacheThrashes) {
  Cache cache(tiny_cache(2, 2));  // 4 lines total
  // Cycle through 8 distinct lines of the same set repeatedly -> ~all miss.
  for (int round = 0; round < 10; ++round)
    for (std::uint64_t i = 0; i < 8; ++i) cache.access(i * 128);
  EXPECT_GT(cache.stats().miss_rate(), 0.9);
}

TEST(CacheTest, WorkingSetFitsCacheConverges) {
  Cache cache(tiny_cache(4, 4));  // 16 lines
  for (int round = 0; round < 10; ++round)
    for (std::uint64_t i = 0; i < 8; ++i) cache.access(i * 64);
  // 8 cold misses, everything else hits.
  EXPECT_EQ(cache.stats().misses, 8u);
}

/// Property sweep over policies: counting invariants hold for random access
/// streams under every replacement policy.
class CachePolicySweep : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(CachePolicySweep, AccountingInvariants) {
  CacheConfig c = tiny_cache(4, 8);
  c.policy = GetParam();
  Cache cache(c);
  util::Rng rng(99);
  for (int i = 0; i < 5000; ++i) cache.access(rng.next_below(1 << 16));
  const CacheStats& s = cache.stats();
  EXPECT_EQ(s.accesses, 5000u);
  EXPECT_EQ(s.hits + s.misses, s.accesses);
  EXPECT_LE(s.evictions, s.misses);
  // The cache can never hold more lines than its capacity, so evictions are
  // at least misses - capacity.
  EXPECT_GE(s.evictions + 32, s.misses);
}

INSTANTIATE_TEST_SUITE_P(Policies, CachePolicySweep,
                         ::testing::Values(ReplacementPolicy::kLru,
                                           ReplacementPolicy::kFifo,
                                           ReplacementPolicy::kRandom));

}  // namespace
}  // namespace drlhmd::sim
