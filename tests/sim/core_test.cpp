#include "sim/core.hpp"

#include <gtest/gtest.h>

#include "sim/perf_monitor.hpp"
#include "sim/workload_profiles.hpp"

namespace drlhmd::sim {
namespace {

Workload test_workload(std::uint64_t seed = 1) {
  WorkloadSpec spec;
  spec.name = "core-test";
  spec.family = "test";
  PhaseSpec p;
  p.load_frac = 0.3;
  p.store_frac = 0.1;
  p.branch_frac = 0.15;
  p.working_set_bytes = 256 * 1024;
  p.stream_bytes = 256 * 1024;
  p.branch_sites = 128;
  spec.phases = {p};
  return Workload(spec, seed);
}

Core make_core(std::uint64_t seed = 2) {
  return Core(CoreConfig{}, HierarchyConfig{}, test_workload(seed), seed);
}

TEST(CoreTest, StepAdvancesCyclesAndInstructions) {
  Core core = make_core();
  core.step();
  EXPECT_EQ(core.instructions(), 1u);
  EXPECT_GE(core.cycles(), 1u);
}

TEST(CoreTest, RunInstructionsExact) {
  Core core = make_core();
  core.run_instructions(1000);
  EXPECT_EQ(core.instructions(), 1000u);
}

TEST(CoreTest, RunCyclesReachesBudget) {
  Core core = make_core();
  core.run_cycles(50000);
  EXPECT_GE(core.cycles(), 50000u);
  // Overshoot bounded by one instruction's worst-case cost.
  EXPECT_LT(core.cycles(), 60000u);
}

TEST(CoreTest, IpcWithinPhysicalBounds) {
  Core core = make_core();
  core.run_cycles(1000000);  // include warm-up; memory-bound IPC is low
  EXPECT_GT(core.ipc(), 0.01);
  EXPECT_LE(core.ipc(), 1.0);  // in-order, 1-wide
}

TEST(CoreTest, DeterministicGivenSeeds) {
  Core a = make_core(7);
  Core b = make_core(7);
  a.run_instructions(5000);
  b.run_instructions(5000);
  EXPECT_EQ(a.cycles(), b.cycles());
  for (std::size_t i = 0; i < kNumHpcEvents; ++i)
    EXPECT_EQ(a.counts().raw()[i], b.counts().raw()[i]);
}

TEST(CoreTest, BranchCountsConsistent) {
  Core core = make_core();
  core.run_instructions(50000);
  const auto& c = core.counts();
  EXPECT_GT(c[HpcEvent::kBranches], 0u);
  EXPECT_LE(c[HpcEvent::kBranchMisses], c[HpcEvent::kBranches]);
  EXPECT_EQ(c[HpcEvent::kBranches], c[HpcEvent::kBranchLoads]);
  EXPECT_EQ(c[HpcEvent::kBranchMisses], c[HpcEvent::kBranchLoadMisses]);
  // ~15% of micro-ops are branches.
  EXPECT_NEAR(static_cast<double>(c[HpcEvent::kBranches]) / 50000.0, 0.15, 0.02);
}

TEST(CoreTest, FetchCountsMatchInstructions) {
  Core core = make_core();
  core.run_instructions(10000);
  const auto& c = core.counts();
  EXPECT_EQ(c[HpcEvent::kL1IcacheLoads], 10000u);
  EXPECT_EQ(c[HpcEvent::kItlbLoads], 10000u);
  EXPECT_EQ(c[HpcEvent::kInstructions], 10000u);
}

TEST(CoreTest, MemoryOpsCounted) {
  Core core = make_core();
  core.run_instructions(50000);
  const auto& c = core.counts();
  const double mem_frac =
      static_cast<double>(c[HpcEvent::kMemLoads] + c[HpcEvent::kMemStores]) / 50000.0;
  EXPECT_NEAR(mem_frac, 0.4, 0.02);
  EXPECT_GT(c[HpcEvent::kAluOps], 0u);
}

TEST(CoreTest, ContextSwitchesHappenOnSchedule) {
  CoreConfig cfg;
  cfg.context_switch_period = 100000;
  Core core(cfg, HierarchyConfig{}, test_workload(), 3);
  core.run_cycles(1000000);
  const auto switches = core.counts()[HpcEvent::kContextSwitches];
  EXPECT_GE(switches, 8u);
  EXPECT_LE(switches, 11u);
}

TEST(CoreTest, MemoryParallelismReducesStalls) {
  CoreConfig blocking;
  blocking.memory_parallelism = 1.0;
  CoreConfig overlapped;
  overlapped.memory_parallelism = 8.0;
  Core slow(blocking, HierarchyConfig{}, test_workload(5), 5);
  Core fast(overlapped, HierarchyConfig{}, test_workload(5), 5);
  slow.run_instructions(20000);
  fast.run_instructions(20000);
  EXPECT_GT(slow.cycles(), fast.cycles());
  EXPECT_GT(slow.counts()[HpcEvent::kStalledCyclesBackend],
            fast.counts()[HpcEvent::kStalledCyclesBackend]);
}

TEST(PerfMonitorTest, SampleHasAllEvents) {
  Core core = make_core();
  PerfMonitor mon(core, PerfMonitorConfig{.window_cycles = 10000, .warmup_cycles = 1000});
  mon.warm_up();
  const HpcSample s = mon.sample_window();
  ASSERT_EQ(s.values.size(), kNumHpcEvents);
  EXPECT_GT(s.values[static_cast<std::size_t>(HpcEvent::kInstructions)], 0.0);
  EXPECT_GE(s.values[static_cast<std::size_t>(HpcEvent::kCycles)], 10000.0);
}

TEST(PerfMonitorTest, WindowsAreDeltasNotTotals) {
  Core core = make_core();
  PerfMonitor mon(core, PerfMonitorConfig{.window_cycles = 20000, .warmup_cycles = 0});
  const HpcSample first = mon.sample_window();
  const HpcSample second = mon.sample_window();
  const auto cyc = static_cast<std::size_t>(HpcEvent::kCycles);
  // Each window's cycle delta is ~window_cycles, not cumulative.
  EXPECT_NEAR(first.values[cyc], 20000.0, 6000.0);
  EXPECT_NEAR(second.values[cyc], 20000.0, 6000.0);
}

TEST(PerfMonitorTest, CollectReturnsRequestedWindows) {
  Core core = make_core();
  PerfMonitor mon(core, PerfMonitorConfig{.window_cycles = 5000, .warmup_cycles = 0});
  const auto samples = mon.collect(7);
  EXPECT_EQ(samples.size(), 7u);
}

TEST(PerfMonitorTest, FeatureNamesMatchEventCatalogue) {
  const auto names = PerfMonitor::feature_names();
  ASSERT_EQ(names.size(), kNumHpcEvents);
  EXPECT_EQ(names[0], "cycles");
  EXPECT_EQ(names[static_cast<std::size_t>(HpcEvent::kLlcLoadMisses)],
            "LLC-load-misses");
}

}  // namespace
}  // namespace drlhmd::sim
