// Property sweeps over hierarchy geometries: the counting invariants of the
// demand path must hold for any sane cache configuration and access stream.
#include <gtest/gtest.h>

#include "sim/memory_hierarchy.hpp"
#include "util/rng.hpp"

namespace drlhmd::sim {
namespace {

struct Geometry {
  const char* name;
  std::uint64_t l1d_kib;
  std::uint64_t l2_kib;
  std::uint64_t llc_kib;
  HierarchyConfig::Prefetch prefetch;
};

class GeometrySweep : public ::testing::TestWithParam<Geometry> {
 protected:
  HierarchyConfig config() const {
    HierarchyConfig cfg;
    const Geometry& g = GetParam();
    cfg.l1d.size_bytes = g.l1d_kib * 1024;
    cfg.l2.size_bytes = g.l2_kib * 1024;
    cfg.llc.size_bytes = g.llc_kib * 1024;
    cfg.prefetch = g.prefetch;
    return cfg;
  }
};

TEST_P(GeometrySweep, DemandPathInvariants) {
  MemoryHierarchy mh(config());
  EventCounts counts;
  util::Rng rng(31);
  constexpr int kAccesses = 30000;
  for (int i = 0; i < kAccesses; ++i) {
    // Mix of streaming, hot-set and sparse-random traffic.
    std::uint64_t addr;
    const double roll = rng.uniform();
    if (roll < 0.4) {
      addr = 0x1000000 + static_cast<std::uint64_t>(i) * 64 % (4u << 20);
    } else if (roll < 0.7) {
      addr = 0x8000000 + rng.next_below(32 * 1024);
    } else {
      addr = 0x10000000 + rng.next_below(64ull << 20);
    }
    mh.access_data(addr, rng.bernoulli(0.3), counts);
  }

  // Demand-event relations hold regardless of geometry or prefetcher.
  EXPECT_EQ(counts[HpcEvent::kL1DcacheLoads] + counts[HpcEvent::kL1DcacheStores],
            static_cast<std::uint64_t>(kAccesses));
  EXPECT_EQ(counts[HpcEvent::kL2Accesses],
            counts[HpcEvent::kL1DcacheLoadMisses] +
                counts[HpcEvent::kL1DcacheStoreMisses]);
  EXPECT_EQ(counts[HpcEvent::kCacheReferences], counts[HpcEvent::kL2Misses]);
  EXPECT_EQ(counts[HpcEvent::kLlcLoads] + counts[HpcEvent::kLlcStores],
            counts[HpcEvent::kCacheReferences]);
  EXPECT_EQ(counts[HpcEvent::kLlcLoadMisses] + counts[HpcEvent::kLlcStoreMisses],
            counts[HpcEvent::kCacheMisses]);
  EXPECT_LE(counts[HpcEvent::kCacheMisses], counts[HpcEvent::kCacheReferences]);
  EXPECT_LE(counts[HpcEvent::kDtlbLoadMisses], counts[HpcEvent::kDtlbLoads]);
  EXPECT_LE(counts[HpcEvent::kDtlbStoreMisses], counts[HpcEvent::kDtlbStores]);
  // Prefetch misses never exceed prefetch fills.
  EXPECT_LE(counts[HpcEvent::kLlcPrefetchMisses], counts[HpcEvent::kLlcPrefetches]);
}

TEST_P(GeometrySweep, HotSetSuffersOnlyColdLlcMisses) {
  // A 96 KiB hot set fits inside every LLC in the sweep, so after first
  // touch there are no capacity misses: total LLC misses stay within a
  // small multiple of the distinct-line count (cold misses + conflict
  // slack), regardless of where in the hierarchy the set settles.
  MemoryHierarchy mh(config());
  EventCounts counts;
  util::Rng rng(37);
  for (int i = 0; i < 40000; ++i)
    mh.access_data(rng.next_below(96 * 1024), false, counts);
  const std::uint64_t distinct_lines = 96 * 1024 / 64;
  EXPECT_LE(counts[HpcEvent::kCacheMisses], 2 * distinct_lines)
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep,
    ::testing::Values(
        Geometry{"tiny", 8, 64, 256, HierarchyConfig::Prefetch::kNone},
        Geometry{"nominal", 16, 128, 1024, HierarchyConfig::Prefetch::kNone},
        Geometry{"nominal_stride", 16, 128, 1024, HierarchyConfig::Prefetch::kStride},
        Geometry{"nominal_nextline", 16, 128, 1024,
                 HierarchyConfig::Prefetch::kNextLine},
        Geometry{"large", 32, 512, 4096, HierarchyConfig::Prefetch::kNone}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace drlhmd::sim
