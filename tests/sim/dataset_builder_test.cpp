#include "sim/dataset_builder.hpp"

#include <gtest/gtest.h>

#include <set>

namespace drlhmd::sim {
namespace {

CorpusConfig tiny_corpus() {
  CorpusConfig cfg;
  cfg.benign_apps = 8;
  cfg.malware_apps = 8;
  cfg.windows_per_app = 2;
  cfg.monitor.window_cycles = 20000;
  cfg.monitor.warmup_cycles = 5000;
  return cfg;
}

TEST(DatasetBuilderTest, CorpusHasExpectedShape) {
  const HpcCorpus corpus = build_corpus(tiny_corpus());
  EXPECT_EQ(corpus.records.size(), 32u);
  EXPECT_EQ(corpus.num_malware(), 16u);
  EXPECT_EQ(corpus.num_benign(), 16u);
  EXPECT_EQ(corpus.feature_names.size(), kNumHpcEvents);
  for (const auto& rec : corpus.records)
    EXPECT_EQ(rec.features.size(), kNumHpcEvents);
}

TEST(DatasetBuilderTest, FamiliesRoundRobin) {
  const HpcCorpus corpus = build_corpus(tiny_corpus());
  std::set<std::string> benign_names, malware_names;
  for (const auto& rec : corpus.records)
    (rec.malware ? malware_names : benign_names).insert(rec.family);
  EXPECT_EQ(benign_names.size(), 6u);  // 8 apps cover all 6 benign families
  EXPECT_EQ(malware_names.size(), 7u);
}

TEST(DatasetBuilderTest, DeterministicInSeed) {
  const HpcCorpus a = build_corpus(tiny_corpus());
  const HpcCorpus b = build_corpus(tiny_corpus());
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].app, b.records[i].app);
    EXPECT_EQ(a.records[i].features, b.records[i].features);
  }
}

TEST(DatasetBuilderTest, DifferentSeedsDiffer) {
  CorpusConfig cfg = tiny_corpus();
  const HpcCorpus a = build_corpus(cfg);
  cfg.seed = 777;
  const HpcCorpus b = build_corpus(cfg);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.records.size() && !any_diff; ++i)
    any_diff = a.records[i].features != b.records[i].features;
  EXPECT_TRUE(any_diff);
}

TEST(DatasetBuilderTest, ZeroWindowsRejected) {
  CorpusConfig cfg = tiny_corpus();
  cfg.windows_per_app = 0;
  EXPECT_THROW(build_corpus(cfg), std::invalid_argument);
}

TEST(DatasetBuilderTest, CsvRoundTrip) {
  const HpcCorpus corpus = build_corpus(tiny_corpus());
  const auto doc = corpus_to_csv(corpus);
  EXPECT_EQ(doc.rows.size(), corpus.records.size());
  EXPECT_EQ(doc.header.size(), 3 + kNumHpcEvents);

  const HpcCorpus restored = corpus_from_csv(doc);
  ASSERT_EQ(restored.records.size(), corpus.records.size());
  EXPECT_EQ(restored.feature_names, corpus.feature_names);
  for (std::size_t i = 0; i < corpus.records.size(); ++i) {
    EXPECT_EQ(restored.records[i].app, corpus.records[i].app);
    EXPECT_EQ(restored.records[i].malware, corpus.records[i].malware);
    for (std::size_t f = 0; f < kNumHpcEvents; ++f)
      EXPECT_NEAR(restored.records[i].features[f], corpus.records[i].features[f],
                  1e-5);
  }
}

TEST(DatasetBuilderTest, CsvRejectsBadLabel) {
  util::CsvDocument doc;
  doc.header = {"app", "family", "label", "cycles"};
  doc.rows = {{"a", "f", "bogus", "1.0"}};
  EXPECT_THROW(corpus_from_csv(doc), std::invalid_argument);
}

TEST(DatasetBuilderTest, CsvRejectsRaggedRows) {
  // A row with fewer fields than the header (truncated export, stray
  // newline) must fail loudly, not silently read out of bounds or zero-fill.
  util::CsvDocument doc;
  doc.header = {"app", "family", "label", "cycles", "insns"};
  doc.rows = {{"a", "f", "malware", "1.0", "2.0"},
              {"b", "f", "benign", "3.0"}};  // short row
  try {
    corpus_from_csv(doc);
    FAIL() << "ragged row accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("row 2"), std::string::npos)
        << e.what();
  }

  // And a row with extra fields is just as malformed.
  doc.rows = {{"a", "f", "malware", "1.0", "2.0", "3.0"}};
  EXPECT_THROW(corpus_from_csv(doc), std::invalid_argument);
}

TEST(DatasetBuilderTest, MalwareHasElevatedLlcMisses) {
  // The core HMD premise: malware families shift the LLC-miss distribution
  // upward relative to benign (with overlap).
  CorpusConfig cfg = tiny_corpus();
  cfg.benign_apps = 24;
  cfg.malware_apps = 24;
  cfg.monitor = PerfMonitorConfig{};  // default production windows
  const HpcCorpus corpus = build_corpus(cfg);
  const auto miss_idx = static_cast<std::size_t>(HpcEvent::kCacheMisses);
  double benign_sum = 0.0, malware_sum = 0.0;
  std::size_t nb = 0, nm = 0;
  for (const auto& rec : corpus.records) {
    if (rec.malware) {
      malware_sum += rec.features[miss_idx];
      ++nm;
    } else {
      benign_sum += rec.features[miss_idx];
      ++nb;
    }
  }
  EXPECT_GT(malware_sum / static_cast<double>(nm),
            1.2 * benign_sum / static_cast<double>(nb));
}

}  // namespace
}  // namespace drlhmd::sim
