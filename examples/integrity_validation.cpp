// Model-integrity validation (paper Section 2.7): deploy detectors into the
// SHA-256 vault, simulate an attacker tampering with one model's bytes and
// another being swapped for a poisoned look-alike, then show both the hash
// check and the metric monitor catching it and restore() recovering.
//
//   $ ./examples/integrity_validation
#include <cstdio>

#include "core/framework.hpp"
#include "ml/logistic_regression.hpp"
#include "util/table.hpp"

using namespace drlhmd;

namespace {

const char* status_name(integrity::VerificationStatus s) {
  switch (s) {
    case integrity::VerificationStatus::kIntact: return "INTACT";
    case integrity::VerificationStatus::kTampered: return "TAMPERED";
    case integrity::VerificationStatus::kUnknownModel: return "UNKNOWN";
  }
  return "?";
}

}  // namespace

int main() {
  core::FrameworkConfig config;
  config.corpus.benign_apps = 100;
  config.corpus.malware_apps = 100;
  config.corpus.windows_per_app = 4;
  core::Framework fw(config);
  fw.run_all();

  auto& vault = fw.vault();
  std::printf("%s", util::banner("Deployment records").c_str());
  util::Table records({"model", "deployed at", "SHA-256 digest (prefix)"});
  for (const auto& model : fw.defended_models()) {
    const auto rec = vault.record(model->name());
    records.add_row({model->name(), std::to_string(rec->deployed_at),
                     rec->digest_hex.substr(0, 16) + "..."});
  }
  std::printf("%s\n", records.to_string().c_str());

  // Scenario 1: bit-rot / direct tampering with stored model bytes.
  std::printf("%s", util::banner("Scenario 1: tampered model bytes").c_str());
  auto bytes = fw.defended_models()[2]->serialize();  // the LR detector
  std::printf("before tampering: %s\n",
              status_name(vault.verify("LR", bytes)));
  bytes[bytes.size() / 2] ^= 0x40;
  std::printf("after bit flip:   %s\n", status_name(vault.verify("LR", bytes)));
  const auto golden = vault.restore("LR");
  std::printf("restore(): %zu golden bytes -> %s\n\n", golden->size(),
              status_name(vault.verify("LR", *golden)));

  // Scenario 2: model swapped for a behaviourally-different impostor.
  // The hash catches it, and independently the metric monitor flags the
  // performance deviation on the reserved validation set.
  std::printf("%s", util::banner("Scenario 2: swapped (poisoned) model").c_str());
  ml::Dataset poisoned = fw.merged_train();
  for (auto& y : poisoned.y) y = 1 - y;  // label-flipped training
  ml::LogisticRegression impostor;
  impostor.fit(poisoned);
  std::printf("hash check on impostor bytes: %s\n",
              status_name(vault.verify("LR", impostor.serialize())));
  const auto report = fw.metric_monitor().assess(impostor, fw.defense_val_mix());
  std::printf("metric monitor: deviated=%s, violated metrics:",
              report.deviated ? "yes" : "no");
  for (const auto& v : report.violations) std::printf(" %s", v.c_str());
  std::printf("\n  (current accuracy %.2f vs recorded baseline)\n",
              report.current.accuracy);
  std::printf("\nCorrective action: restore the vaulted model and investigate.\n");
  return 0;
}
