// Checkpoint/restart walkthrough: train the front half of the pipeline,
// checkpoint it, "restart the process" by resuming into a brand-new
// Framework, finish the remaining phases from the restored state, then
// cold-start a serving runtime from the completed checkpoint — with the
// vault's SHA-256 digests standing guard against tampered artifacts.
//
//   $ ./examples/checkpoint_restart
#include <cstdio>
#include <filesystem>

#include "core/framework.hpp"
#include "core/runtime.hpp"
#include "util/artifact_store.hpp"

using namespace drlhmd;

namespace {

void print_phases(const core::Framework& fw, const char* heading) {
  std::printf("%s\n", heading);
  for (std::size_t p = 0; p < core::kPhaseCount; ++p) {
    const auto phase = static_cast<core::Phase>(p);
    std::printf("  %-9s %s\n", core::phase_name(phase),
                fw.phase_done(phase) ? "done" : "pending");
  }
}

}  // namespace

int main() {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "drlhmd-checkpoint-demo")
          .string();
  std::filesystem::remove_all(dir);

  core::FrameworkConfig config;
  config.corpus.benign_apps = 80;
  config.corpus.malware_apps = 80;
  config.corpus.windows_per_app = 3;

  // --- Session 1: train through the attack phase, then checkpoint. ------
  {
    core::Framework fw(config);
    fw.acquire_data();
    fw.engineer_features();
    fw.train_baselines();
    fw.generate_attacks();
    print_phases(fw, "session 1 (interrupted after the attack phase):");
    fw.save_checkpoint(dir);
    std::printf("checkpoint written to %s\n\n", dir.c_str());
  }  // the framework object dies here — simulating a process restart

  // --- Session 2: resume, finish the pipeline, checkpoint again. --------
  {
    core::Framework fw = core::Framework::resume(dir);
    print_phases(fw, "session 2 (restored from disk):");
    fw.run_all();  // re-runs only predict..protect
    std::printf("remaining phases completed; attack success %.1f%%\n\n",
                100.0 * fw.attack_report().success_rate);
    fw.save_checkpoint(dir);
  }

  // --- Session 3: cold-start the serving runtime from the checkpoint. ---
  {
    core::ColdStart cold = core::cold_start(dir);
    std::printf("cold start: vault verified %zu deployed models\n",
                cold.framework->vault().size());
    const ml::MetricReport report =
        cold.runtime->process_stream(cold.framework->attacked_test_mix());
    std::printf("served %zu samples from the restored deployment: F1 %.3f\n\n",
                cold.framework->attacked_test_mix().size(), report.f1);
  }

  // --- Tampering demo: a swapped model artifact is refused. -------------
  {
    const util::ArtifactStore store(dir);
    std::string victim;
    for (const auto& name : store.list())
      if (name.rfind("model-defended-", 0) == 0) { victim = name; break; }
    const util::Artifact good = store.get(victim);
    util::Artifact baseline = store.get("model-baseline-0-RF");
    store.put(victim, good.kind, good.version, baseline.payload);
    try {
      core::cold_start(dir);
      std::printf("ERROR: tampered checkpoint was accepted\n");
      return 1;
    } catch (const std::exception& e) {
      std::printf("tampered artifact '%s' refused as expected:\n  %s\n",
                  victim.c_str(), e.what());
    }
    store.put(victim, good.kind, good.version, good.payload);  // repair
  }

  std::filesystem::remove_all(dir);
  return 0;
}
