// Constraint-aware deployment: after adversarial training, three UCB agents
// schedule detectors under different run-time constraints. This example
// shows the deployment loop: stream samples, route through the scheduled
// model, keep adapting online via observe().
//
//   $ ./examples/constraint_aware_deployment
#include <cstdio>

#include "core/framework.hpp"
#include "util/table.hpp"

using namespace drlhmd;

int main() {
  core::FrameworkConfig config;
  config.corpus.benign_apps = 120;
  config.corpus.malware_apps = 120;
  config.corpus.windows_per_app = 4;
  core::Framework fw(config);
  fw.run_all();

  std::printf("%s", util::banner("Run-time defender selection").c_str());
  util::Table table({"agent", "scheduled model", "F1 on attacked mix",
                     "latency (us)", "memory (bytes)"});
  for (const auto policy :
       {rl::ConstraintPolicy::kFastInference, rl::ConstraintPolicy::kSmallMemory,
        rl::ConstraintPolicy::kBestDetection}) {
    const auto& agent = fw.controller(policy);
    const auto& profile = agent.profile(agent.selected_model());
    table.add_row({rl::policy_name(policy), profile.name,
                   util::Table::fmt(agent.evaluate(fw.attacked_test_mix()).f1),
                   util::Table::fmt(profile.latency_us, 4),
                   std::to_string(profile.memory_bytes)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Online adaptation: stream labeled traffic through Agent 3 and watch the
  // bandit's arm usage evolve (the paper's "dynamically adapting" behaviour).
  std::printf("%s", util::banner("Online adaptation (Agent 3)").c_str());
  // A fresh controller instance would normally be used per deployment; here
  // we continue training the framework's agent on the attacked mixture.
  auto& agent = const_cast<rl::ConstraintController&>(
      fw.controller(rl::ConstraintPolicy::kBestDetection));
  const auto& stream = fw.attacked_test_mix();
  std::size_t correct = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const int pred = agent.observe(stream.row_copy(i), stream.y[i]);
    correct += (pred == stream.y[i]) ? 1 : 0;
  }
  std::printf("Streamed %zu samples, online accuracy %s\n", stream.size(),
              util::Table::pct(static_cast<double>(correct) /
                               static_cast<double>(stream.size()))
                  .c_str());

  util::Table arms({"model", "pulls", "mean reward"});
  for (std::size_t arm = 0; arm < agent.model_count(); ++arm) {
    arms.add_row({agent.profile(arm).name,
                  std::to_string(agent.bandit().pulls(arm)),
                  util::Table::fmt(agent.bandit().mean_reward(arm), 3)});
  }
  std::printf("%s", arms.to_string().c_str());

  // The paper's 14-tuple MDP state for the first streamed sample.
  const auto state = agent.build_state(stream.row_copy(0));
  std::printf("\n14-tuple controller state for sample 0: [");
  for (std::size_t i = 0; i < state.size(); ++i)
    std::printf("%s%.2f", i ? ", " : "", state[i]);
  std::printf("]\n");
  return 0;
}
