// Quickstart: the whole framework in ~40 lines.
//
// Builds a small synthetic HPC corpus, runs the full adversarial-resilient
// pipeline (baselines -> LowProFool attack -> DRL predictor -> adversarial
// training -> constraint-aware controller), and prints the headline numbers.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/framework.hpp"
#include "util/table.hpp"

using namespace drlhmd;

int main() {
  core::FrameworkConfig config;
  config.corpus.benign_apps = 120;   // scale up to 1500 for paper-sized runs
  config.corpus.malware_apps = 120;
  config.corpus.windows_per_app = 4;

  core::Framework framework(config);
  framework.run_all();

  std::printf("Selected HPC features:");
  for (const auto& name : framework.selected_feature_names())
    std::printf(" %s", name.c_str());
  std::printf("\n\n");

  const auto attack = framework.attack_report();
  std::printf("LowProFool attack success rate: %s\n",
              util::Table::pct(attack.success_rate).c_str());

  const auto predictor = framework.evaluate_predictor();
  std::printf("DRL adversarial predictor:      F1 %s, accuracy %s\n",
              util::Table::pct(predictor.f1).c_str(),
              util::Table::pct(predictor.accuracy).c_str());

  std::printf("\n%-9s %12s %12s %12s\n", "model", "regular F1", "attacked F1",
              "defended F1");
  for (const auto& row : framework.evaluate_scenarios()) {
    std::printf("%-9s %12.2f %12.2f %12.2f\n", row.model.c_str(), row.regular.f1,
                row.adversarial.f1, row.defended.f1);
  }

  const auto& agent3 =
      framework.controller(rl::ConstraintPolicy::kBestDetection);
  const auto routed = agent3.evaluate(framework.attacked_test_mix());
  std::printf("\nConstraint-aware controller (Agent 3) routes to %s: F1 %s\n",
              agent3.profile(agent3.selected_model()).name.c_str(),
              util::Table::pct(routed.f1).c_str());
  return 0;
}
