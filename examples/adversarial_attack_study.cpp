// Adversarial attack study: trains an HMD detector, crafts LowProFool
// adversarial HPC vectors against it, and dissects a few of them —
// per-feature perturbations, surrogate confidence, and transferability to
// detectors the attacker never saw.
//
//   $ ./examples/adversarial_attack_study
#include <cstdio>

#include "adversarial/lowprofool.hpp"
#include "core/framework.hpp"
#include "ml/model_zoo.hpp"
#include "util/table.hpp"

using namespace drlhmd;

int main() {
  // Acquire + engineer a modest corpus through the framework front half.
  core::FrameworkConfig config;
  config.corpus.benign_apps = 120;
  config.corpus.malware_apps = 120;
  config.corpus.windows_per_app = 4;
  core::Framework fw(config);
  fw.acquire_data();
  fw.engineer_features();
  fw.train_baselines();

  // The attacker trains its own surrogate the same way defenders do.
  ml::LogisticRegression surrogate;
  surrogate.fit(fw.train_set());
  adversarial::LowProFool attacker(
      surrogate, ml::feature_bounds(fw.train_set()),
      adversarial::importance_from_lr(surrogate));

  // Grab the malware rows of the test split.
  ml::Dataset malware;
  malware.feature_names = fw.test_set().feature_names;
  for (std::size_t i = 0; i < fw.test_set().size(); ++i)
    if (fw.test_set().y[i] == 1) malware.push(fw.test_set().row_copy(i), 1);

  std::printf("%s", util::banner("Dissecting three adversarial samples").c_str());
  for (std::size_t s = 0; s < 3 && s < malware.size(); ++s) {
    const auto result = attacker.attack(malware.row_copy(s));
    std::printf("sample %zu: success=%s, steps=%zu, weighted norm=%.4f\n", s,
                result.success ? "yes" : "no", result.steps_used,
                result.weighted_norm);
    util::Table t({"feature", "original (scaled)", "adversarial", "perturbation"});
    for (std::size_t c = 0; c < malware.row_copy(s).size(); ++c) {
      t.add_row({fw.selected_feature_names()[c],
                 util::Table::fmt(malware.at(s, c), 3),
                 util::Table::fmt(result.adversarial[c], 3),
                 util::Table::fmt(result.perturbation[c], 3)});
    }
    std::printf("%s", t.to_string().c_str());
    std::printf("surrogate P(malware): %.3f -> %.3f\n\n",
                surrogate.predict_proba(malware.row_copy(s)),
                surrogate.predict_proba(result.adversarial));
  }

  // Transferability: the attack was tuned on LR only; measure every model.
  std::printf("%s", util::banner("Transferability to unseen detectors").c_str());
  const ml::Dataset attacked = attacker.attack_dataset(malware);
  util::Table transfer({"victim model", "TPR on legit malware", "TPR on adversarial"});
  for (const auto& model : fw.baseline_models()) {
    transfer.add_row({model->name(),
                      util::Table::fmt(model->evaluate(malware).tpr),
                      util::Table::fmt(model->evaluate(attacked).tpr)});
  }
  std::printf("%s", transfer.to_string().c_str());

  const auto campaign = attacker.evaluate_campaign(malware);
  std::printf("\nCampaign: %zu/%zu succeeded (%s) with mean l-inf %.3f\n",
              campaign.succeeded, campaign.attempted,
              util::Table::pct(campaign.success_rate).c_str(), campaign.mean_linf);
  return 0;
}
