// Online defense loop: the paper's Figure-1 deployment in action.
//
// A mixed traffic stream (benign, legitimate malware, adversarial malware)
// flows through the DetectionRuntime: the DRL predictor quarantines
// adversarial vectors, the constraint-aware controller classifies the rest,
// quarantined samples periodically trigger adversarial retraining, and the
// SHA-256 vault is re-validated on a fixed cadence.
//
//   $ ./examples/online_defense_loop
#include <cstdio>
#include <map>

#include "core/runtime.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace drlhmd;

int main() {
  core::FrameworkConfig config;
  config.corpus.benign_apps = 120;
  config.corpus.malware_apps = 120;
  config.corpus.windows_per_app = 4;
  core::Framework framework(config);
  framework.run_all();

  core::RuntimeConfig runtime_config;
  runtime_config.retrain_threshold = 60;
  runtime_config.integrity_check_period = 200;
  core::DetectionRuntime runtime(framework, runtime_config);

  // Build a shuffled mixed stream with ground truth for reporting.
  struct Packet {
    std::vector<double> x;
    const char* truth;
  };
  std::vector<Packet> stream;
  for (std::size_t i = 0; i < framework.test_set().size(); ++i)
    stream.push_back({framework.test_set().row_copy(i),
                      framework.test_set().y[i] == 1 ? "malware" : "benign"});
  for (std::size_t i = 0; i < framework.adversarial_test().size(); ++i)
    stream.push_back({framework.adversarial_test().row_copy(i), "adversarial"});
  util::Rng rng(5);
  rng.shuffle(stream);

  std::printf("%s", util::banner("Streaming mixed traffic").c_str());
  std::map<std::string, std::map<std::string, std::size_t>> confusion;
  for (const Packet& pkt : stream) {
    const core::TrafficVerdict verdict = runtime.process(pkt.x);
    ++confusion[pkt.truth][core::verdict_name(verdict)];
  }

  util::Table table({"ground truth", "-> benign", "-> malware", "-> adversarial"});
  for (const char* truth : {"benign", "malware", "adversarial"}) {
    auto& row = confusion[truth];
    table.add_row({truth, std::to_string(row["benign"]),
                   std::to_string(row["malware"]),
                   std::to_string(row["adversarial-malware"])});
  }
  std::printf("%s\n", table.to_string().c_str());

  const auto& stats = runtime.stats();
  std::printf("processed %llu samples: %llu benign, %llu malware, %llu adversarial\n",
              static_cast<unsigned long long>(stats.processed),
              static_cast<unsigned long long>(stats.benign),
              static_cast<unsigned long long>(stats.malware),
              static_cast<unsigned long long>(stats.adversarial));
  std::printf("adaptive retrains: %llu (threshold %zu quarantined samples)\n",
              static_cast<unsigned long long>(stats.retrains),
              runtime_config.retrain_threshold);
  std::printf("integrity checks: %llu, alarms: %llu\n",
              static_cast<unsigned long long>(stats.integrity_checks),
              static_cast<unsigned long long>(stats.integrity_alarms));
  return 0;
}
