// HPC trace explorer: run one application of every program family on the
// microarchitecture simulator and print its per-window perf counters —
// the raw substrate every experiment in the paper builds on.
//
//   $ ./examples/hpc_trace_explorer
#include <cstdio>

#include "sim/core.hpp"
#include "sim/perf_monitor.hpp"
#include "sim/workload_profiles.hpp"
#include "util/table.hpp"

using namespace drlhmd;

int main() {
  const sim::HierarchyConfig hierarchy;
  const sim::CoreConfig core_config;
  const sim::PerfMonitorConfig monitor_config;
  util::Rng rng(7);

  const sim::HpcEvent shown[] = {
      sim::HpcEvent::kInstructions,     sim::HpcEvent::kCycles,
      sim::HpcEvent::kLlcLoads,         sim::HpcEvent::kLlcLoadMisses,
      sim::HpcEvent::kCacheReferences,  sim::HpcEvent::kCacheMisses,
      sim::HpcEvent::kBranches,         sim::HpcEvent::kBranchMisses,
      sim::HpcEvent::kDtlbLoadMisses,
  };

  std::vector<std::string> header = {"family", "class", "window", "IPC"};
  for (const auto e : shown) header.emplace_back(sim::event_name(e));
  util::Table table(std::move(header));

  for (std::size_t f = 0; f < sim::kNumProgramFamilies; ++f) {
    const auto family = static_cast<sim::ProgramFamily>(f);
    const sim::WorkloadSpec spec = sim::make_application(family, 0, rng);
    sim::Core core(core_config, hierarchy, sim::Workload(spec, rng.next()),
                   rng.next());
    sim::PerfMonitor monitor(core, monitor_config);
    monitor.warm_up();
    for (int w = 0; w < 2; ++w) {
      const sim::HpcSample sample = monitor.sample_window();
      const double instr =
          sample.values[static_cast<std::size_t>(sim::HpcEvent::kInstructions)];
      const double cycles =
          sample.values[static_cast<std::size_t>(sim::HpcEvent::kCycles)];
      std::vector<std::string> row = {
          spec.family, spec.malware ? "malware" : "benign", std::to_string(w),
          util::Table::fmt(cycles > 0 ? instr / cycles : 0.0, 3)};
      for (const auto e : shown)
        row.push_back(util::Table::fmt(
            sample.values[static_cast<std::size_t>(e)], 0));
      table.add_row(std::move(row));
    }
  }
  std::printf("%s", util::banner("Per-window HPC samples by program family").c_str());
  std::printf("%s", table.to_string().c_str());
  std::printf("\nNote how malware families shift the LLC-level counters (the\n"
              "paper's top-4 features) relative to the benign archetypes.\n");
  return 0;
}
