// Per-sample inference cost: columnar batch path vs per-row path.
//
// For each of the six detectors, times (a) the legacy row loop —
// predict_proba(row) over materialized row vectors — and (b) one
// predict_proba_batch call over the dataset's zero-copy view, and reports
// nanoseconds per sample plus the batch speedup.  The two paths are bitwise
// identical by construction (see tests/batch), so this measures pure
// mechanical win: no per-row virtual dispatch or row gather, lockstep
// multi-lane tree traversal for the ensembles, whole-batch matmuls for the
// neural models.  Emits BENCH_batch.json (drlhmd-bench/1 schema) as the
// last stdout line, which is what the benchdiff regression gate consumes.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "ml/model_zoo.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace drlhmd;

namespace {

/// Two overlapping Gaussian blobs in 4-D (the engineered feature width).
ml::Dataset blobs(std::size_t n_per_class, std::uint64_t seed) {
  util::Rng rng(seed);
  ml::Dataset d;
  for (std::size_t i = 0; i < n_per_class; ++i) {
    std::vector<double> benign(4), malware(4);
    for (std::size_t c = 0; c < 4; ++c) {
      benign[c] = rng.normal(0.0, 1.0);
      malware[c] = rng.normal(1.5, 1.1);
    }
    d.push(std::move(benign), 0);
    d.push(std::move(malware), 1);
  }
  d.shuffle(rng);
  return d;
}

using bench::best_seconds;

}  // namespace

int main(int argc, char** argv) {
  bench::apply_bench_cli(argc, argv);
  const ml::Dataset train = blobs(400, 71);
  const ml::Dataset test = blobs(4000, 72);
  const std::size_t n = test.size();

  // Row path input: rows materialized up front so the row loop pays only
  // what it always paid (virtual call + row scan), not the gather.
  const std::vector<std::vector<double>> rows = test.rows_copy();

  util::Table table(
      {"model", "row ns/sample", "batch ns/sample", "batch speedup"});
  bench::BenchWriter json("batch_inference");
  json.context("test_rows", static_cast<std::uint64_t>(n));
  json.context("features", static_cast<std::uint64_t>(test.num_features()));
  json.context("build_type", std::string(bench::build_type()));
  json.context("threads",
               static_cast<std::uint64_t>(util::parallel_thread_count()));
  bench::warn_if_debug_build();

  double sink = 0.0;  // defeat dead-code elimination
  for (const auto kind :
       {ml::ModelKind::kRf, ml::ModelKind::kDt, ml::ModelKind::kLr,
        ml::ModelKind::kMlp, ml::ModelKind::kLightGbm, ml::ModelKind::kNn}) {
    auto model = ml::make_model(kind);
    model->fit(train);

    std::vector<double> scores(n);
    const double row_s = best_seconds([&] {
      for (std::size_t i = 0; i < n; ++i)
        scores[i] = model->predict_proba(rows[i]);
    });
    sink += scores[n / 2];
    const double batch_s = best_seconds(
        [&] { model->predict_proba_batch(test.view(), scores); });
    sink += scores[n / 2];

    const double row_ns = 1e9 * row_s / static_cast<double>(n);
    const double batch_ns = 1e9 * batch_s / static_cast<double>(n);
    const double speedup = batch_ns > 0.0 ? row_ns / batch_ns : 0.0;
    table.add_row({model->name(), util::Table::fmt(row_ns, 1),
                   util::Table::fmt(batch_ns, 1),
                   util::Table::fmt(speedup, 2)});
    std::fprintf(stderr, "[batch] %-8s row=%.1fns batch=%.1fns x%.2f\n",
                 model->name().c_str(), row_ns, batch_ns, speedup);

    json.metric(model->name() + ".row_ns_per_sample", row_ns, "ns", false);
    json.metric(model->name() + ".batch_ns_per_sample", batch_ns, "ns", false);
    json.metric(model->name() + ".batch_speedup", speedup, "x", true);
  }

  std::printf("%s\n%s\n", table.to_string().c_str(), json.str().c_str());
  return sink == -1.0 ? 1 : 0;
}
