// Reproduces the attack-generation claims (Section 2.4 / Table 1 row for
// this work): 100% success rate against the LR imperceptibility evaluator,
// detection-rate reduction of up to ~79%, plus an attack-budget ablation
// (steps and confidence margin vs success and transferability).
#include "bench_common.hpp"

#include "adversarial/lowprofool.hpp"

using namespace drlhmd;

namespace {

ml::Dataset rows_with_label(const ml::Dataset& data, int label) {
  ml::Dataset out;
  out.feature_names = data.feature_names;
  for (std::size_t i = 0; i < data.size(); ++i)
    if (data.y[i] == label) out.push(data.row_copy(i), label);
  return out;
}

}  // namespace

int main() {
  core::Framework fw = bench::build_pipeline(bench::bench_config());

  std::printf("%s", util::banner("Adversarial attack generation (Alg. 1)").c_str());
  const auto report = fw.attack_report();
  std::printf("Attack success rate (LR evaluator): %s   (paper: 100%%)\n",
              util::Table::pct(report.success_rate).c_str());
  std::printf("Mean weighted perturbation norm:    %.4f (scaled feature units)\n",
              report.mean_weighted_norm);
  std::printf("Mean l-inf perturbation:            %.4f\n\n", report.mean_linf);

  // Detection-rate reduction across the detector zoo.
  util::Table drop({"ML", "detection rate (TPR) regular", "TPR attacked", "reduction"});
  double max_reduction = 0.0;
  for (const auto& row : fw.evaluate_scenarios()) {
    const double reduction = row.regular.tpr - row.adversarial.tpr;
    max_reduction = std::max(max_reduction, reduction);
    drop.add_row({row.model, util::Table::fmt(row.regular.tpr),
                  util::Table::fmt(row.adversarial.tpr),
                  util::Table::pct(reduction)});
  }
  std::printf("%s\n", drop.to_string().c_str());
  std::printf("Max detection-rate reduction: %s (paper: up to 79%%)\n\n",
              util::Table::pct(max_reduction).c_str());

  // Budget ablation: success rate and transfer (vs the defended-from MLP
  // baseline) as a function of attack steps and confidence margin.
  std::printf("%s", util::banner("Attack-budget ablation").c_str());
  ml::LogisticRegression surrogate;
  surrogate.fit(fw.train_set());
  const auto importance = adversarial::importance_from_lr(surrogate);
  const auto bounds = ml::feature_bounds(fw.train_set());
  const ml::Dataset test_malware = rows_with_label(fw.test_set(), 1);
  const ml::Classifier* victim = fw.baseline_models()[0].get();  // RF

  util::Table ablation({"max steps", "confidence margin", "success vs LR",
                        "RF TPR on adversarials"});
  for (const std::size_t steps : {10u, 40u, 150u}) {
    for (const double margin : {0.6, 0.9, 0.99}) {
      adversarial::LowProFoolConfig cfg;
      cfg.max_steps = steps;
      cfg.confidence_margin = margin;
      adversarial::LowProFool attacker(surrogate, bounds, importance, cfg);
      const auto r = attacker.evaluate_campaign(test_malware);
      const ml::Dataset attacked = attacker.attack_dataset(test_malware);
      const auto m = victim->evaluate(attacked);
      ablation.add_row({std::to_string(steps), util::Table::fmt(margin),
                        util::Table::pct(r.success_rate),
                        util::Table::fmt(m.tpr)});
    }
  }
  std::printf("%s", ablation.to_string().c_str());
  std::printf("\nShape: deeper margins transfer better (lower victim TPR) at a\n"
              "larger perturbation cost; step budget saturates quickly.\n");
  return 0;
}
