// Reproduces Figure 4(b): scalability of adversarial learning.
//  - Training scaling (blue line): F1 on the attacked inference mixture as
//    the number of adversarial samples used for adversarial training grows
//    (0% = the undefended model under attack).
//  - Inference scaling (orange line): the fully-defended model's F1 as the
//    volume of adversarial samples at inference grows.
#include "bench_common.hpp"

#include "ml/model_zoo.hpp"

using namespace drlhmd;

int main() {
  core::Framework fw = bench::build_pipeline(bench::bench_config());

  std::printf("%s", util::banner("Figure 4(b): scalability analysis").c_str());

  const ml::Dataset& train = fw.train_set();
  const ml::Dataset& adv_train = fw.adversarial_train();
  const ml::Dataset& mix = fw.attacked_test_mix();

  // --- Training-phase scaling (blue): vary adversarial training pool size.
  std::printf("Training scaling: MLP detector, F1 on the attacked test mixture\n");
  util::Table blue({"adv. training samples", "fraction", "F1 (attacked mix)"});
  const double fractions[] = {0.0, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0};
  for (const double frac : fractions) {
    const auto n = static_cast<std::size_t>(
        frac * static_cast<double>(adv_train.size()));
    ml::Dataset merged = train;
    for (std::size_t i = 0; i < n; ++i) merged.push(adv_train.row_copy(i), adv_train.y[i]);
    auto model = ml::make_model(ml::ModelKind::kMlp);
    model->fit(merged);
    const auto m = model->evaluate(mix);
    blue.add_row({std::to_string(n), util::Table::pct(frac, 0),
                  util::Table::fmt(m.f1)});
  }
  std::printf("%s\n", blue.to_string().c_str());

  // --- Inference-phase scaling (orange): fully-defended model, growing
  // adversarial volume mixed into benign traffic.
  std::printf("Inference scaling: fully adversarially-trained MLP, growing attack volume\n");
  const ml::Classifier* defended_mlp = nullptr;
  for (const auto& model : fw.defended_models())
    if (model->name() == "MLP") defended_mlp = model.get();

  util::Table orange({"adv. samples at inference", "F1", "TPR"});
  const ml::Dataset& adv_test = fw.adversarial_test();
  ml::Dataset benign_only;
  benign_only.feature_names = fw.test_set().feature_names;
  for (std::size_t i = 0; i < fw.test_set().size(); ++i)
    if (fw.test_set().y[i] == 0) benign_only.push(fw.test_set().row_copy(i), 0);
  for (const double frac : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    const auto n = std::max<std::size_t>(
        1, static_cast<std::size_t>(frac * static_cast<double>(adv_test.size())));
    ml::Dataset stream = benign_only;
    for (std::size_t i = 0; i < n; ++i) stream.push(adv_test.row_copy(i), 1);
    const auto m = defended_mlp->evaluate(stream);
    orange.add_row({std::to_string(n), util::Table::fmt(m.f1),
                    util::Table::fmt(m.tpr)});
  }
  std::printf("%s\n", orange.to_string().c_str());
  std::printf("Paper shape: detection improves then plateaus with adversarial training\n"
              "samples (blue); the robust model stays flat as attack volume grows (orange).\n");
  return 0;
}
