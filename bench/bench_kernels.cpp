// Quantized-kernel inference cost vs the exact batch path.
//
// For the tree ensembles (RF, DT, LightGBM), times the exact FlatNode
// batch path against the arena-backed cut-index kernel
// (predict_proba_batch_fast / ForestKernel, DESIGN.md §12); for the
// neural detectors (MLP, NN), the exact double forward pass against the
// Q15 fixed-point mirror (predict_proba_batch_quantized).  Same data
// shapes as bench_batch_inference so `<model>.batch_ns_per_sample` here is
// directly comparable to BENCH_batch.json.  Emits BENCH_kernels.json
// (drlhmd-bench/1 schema) as the last stdout line — the benchdiff
// regression gate keys on the `*.kernel_speedup` metrics (trees only: the
// Q15 net mirror is a parity/footprint artifact, its int64 accumulators
// trade throughput for a proven error bound, so its timings are reported
// as plain metrics the gate does not threshold).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "ml/conv_net.hpp"
#include "ml/model_zoo.hpp"
#include "ml/mlp.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace drlhmd;

namespace {

/// Two overlapping Gaussian blobs in 4-D (the engineered feature width) —
/// identical shapes to bench_batch_inference.
ml::Dataset blobs(std::size_t n_per_class, std::uint64_t seed) {
  util::Rng rng(seed);
  ml::Dataset d;
  for (std::size_t i = 0; i < n_per_class; ++i) {
    std::vector<double> benign(4), malware(4);
    for (std::size_t c = 0; c < 4; ++c) {
      benign[c] = rng.normal(0.0, 1.0);
      malware[c] = rng.normal(1.5, 1.1);
    }
    d.push(std::move(benign), 0);
    d.push(std::move(malware), 1);
  }
  d.shuffle(rng);
  return d;
}

using bench::best_seconds;

}  // namespace

int main(int argc, char** argv) {
  bench::apply_bench_cli(argc, argv);
  const ml::Dataset train = blobs(400, 71);
  const ml::Dataset test = blobs(4000, 72);
  const std::size_t n = test.size();

  util::Table table(
      {"model", "batch ns/sample", "kernel ns/sample", "kernel speedup"});
  bench::BenchWriter json("kernels");
  json.context("test_rows", static_cast<std::uint64_t>(n));
  json.context("features", static_cast<std::uint64_t>(test.num_features()));
  json.context("build_type", std::string(bench::build_type()));
  json.context("threads",
               static_cast<std::uint64_t>(util::parallel_thread_count()));
  bench::warn_if_debug_build();

  double sink = 0.0;  // defeat dead-code elimination
  std::vector<double> scores(n);

  const auto report = [&](const std::string& name, double batch_s,
                          double kernel_s, bool gated) {
    const double batch_ns = 1e9 * batch_s / static_cast<double>(n);
    const double kernel_ns = 1e9 * kernel_s / static_cast<double>(n);
    const double speedup = kernel_ns > 0.0 ? batch_ns / kernel_ns : 0.0;
    table.add_row({name, util::Table::fmt(batch_ns, 1),
                   util::Table::fmt(kernel_ns, 1),
                   util::Table::fmt(speedup, 2)});
    std::fprintf(stderr, "[kernels] %-8s batch=%.1fns kernel=%.1fns x%.2f\n",
                 name.c_str(), batch_ns, kernel_ns, speedup);
    json.metric(name + ".batch_ns_per_sample", batch_ns, "ns", false);
    if (gated) {
      json.metric(name + ".kernel_ns_per_sample", kernel_ns, "ns", false);
      json.metric(name + ".kernel_speedup", speedup, "x", true);
    } else {
      json.metric(name + ".quantized_ns_per_sample", kernel_ns, "ns", false);
    }
  };

  // Tree ensembles: exact FlatNode batch path vs the quantized cut-index
  // kernel behind predict_proba_batch_fast.
  for (const auto kind :
       {ml::ModelKind::kRf, ml::ModelKind::kDt, ml::ModelKind::kLightGbm}) {
    auto model = ml::make_model(kind);
    model->fit(train);
    const double batch_s = best_seconds(
        [&] { model->predict_proba_batch(test.view(), scores); });
    sink += scores[n / 2];
    const double kernel_s = best_seconds(
        [&] { model->predict_proba_batch_fast(test.view(), scores); });
    sink += scores[n / 2];
    report(model->name(), batch_s, kernel_s, /*gated=*/true);
  }

  // Neural detectors: exact double forward vs the Q15 fixed-point mirror
  // (explicit opt-in API — not wired into the runtime decision path).
  {
    ml::MlpClassifier mlp;
    mlp.fit(train);
    const double batch_s =
        best_seconds([&] { mlp.predict_proba_batch(test.view(), scores); });
    sink += scores[n / 2];
    const double kernel_s = best_seconds(
        [&] { mlp.predict_proba_batch_quantized(test.view(), scores); });
    sink += scores[n / 2];
    report(mlp.name(), batch_s, kernel_s, /*gated=*/false);
  }
  {
    ml::ConvNetClassifier nn;
    nn.fit(train);
    const double batch_s =
        best_seconds([&] { nn.predict_proba_batch(test.view(), scores); });
    sink += scores[n / 2];
    const double kernel_s = best_seconds(
        [&] { nn.predict_proba_batch_quantized(test.view(), scores); });
    sink += scores[n / 2];
    report(nn.name(), batch_s, kernel_s, /*gated=*/false);
  }

  std::printf("%s\n%s\n", table.to_string().c_str(), json.str().c_str());
  return sink == -1.0 ? 1 : 0;
}
