// Ablation A: sensitivity of the HMD signal to the simulated platform —
// LLC capacity and perf sampling-window length. For each configuration the
// corpus is rebuilt and a baseline RF is trained on the pinned feature set.
#include "bench_common.hpp"

#include "ml/model_zoo.hpp"

using namespace drlhmd;

namespace {

struct Point {
  std::string label;
  core::FrameworkConfig cfg;
};

void run_points(const std::vector<Point>& points, util::Table& table) {
  for (const auto& point : points) {
    core::Framework fw(point.cfg);
    fw.acquire_data();
    fw.engineer_features();
    auto rf = ml::make_model(ml::ModelKind::kRf);
    rf->fit(fw.train_set());
    const auto m = rf->evaluate(fw.test_set());
    table.add_row({point.label, util::Table::fmt(m.f1), util::Table::fmt(m.auc),
                   util::Table::fmt(m.tpr), util::Table::fmt(m.fpr)});
  }
}

}  // namespace

int main() {
  // Run at a reduced corpus: this ablation rebuilds the corpus many times.
  core::FrameworkConfig base = bench::bench_config();
  base.corpus.benign_apps = std::max<std::size_t>(60, base.corpus.benign_apps / 3);
  base.corpus.malware_apps = std::max<std::size_t>(60, base.corpus.malware_apps / 3);

  std::printf("%s", util::banner("Ablation: LLC capacity").c_str());
  std::vector<Point> llc_points;
  for (const std::uint64_t kib : {256u, 512u, 1024u, 2048u, 4096u}) {
    Point p{std::to_string(kib) + " KiB LLC", base};
    p.cfg.corpus.hierarchy.llc.size_bytes = kib * 1024;
    llc_points.push_back(std::move(p));
  }
  util::Table llc_table({"configuration", "RF F1", "RF AUC", "TPR", "FPR"});
  run_points(llc_points, llc_table);
  std::printf("%s\n", llc_table.to_string().c_str());

  std::printf("%s", util::banner("Ablation: sampling window").c_str());
  std::vector<Point> window_points;
  for (const std::uint64_t cycles : {100'000u, 250'000u, 500'000u, 1'000'000u}) {
    Point p{std::to_string(cycles / 1000) + "k cycles/window", base};
    p.cfg.corpus.monitor.window_cycles = cycles;
    p.cfg.corpus.monitor.warmup_cycles = cycles / 2;
    window_points.push_back(std::move(p));
  }
  util::Table window_table({"configuration", "RF F1", "RF AUC", "TPR", "FPR"});
  run_points(window_points, window_table);
  std::printf("%s\n", window_table.to_string().c_str());

  std::printf("%s", util::banner("Ablation: hardware prefetcher").c_str());
  std::vector<Point> prefetch_points;
  const std::pair<sim::HierarchyConfig::Prefetch, const char*> prefetchers[] = {
      {sim::HierarchyConfig::Prefetch::kNone, "none"},
      {sim::HierarchyConfig::Prefetch::kNextLine, "next-line"},
      {sim::HierarchyConfig::Prefetch::kStride, "stride"}};
  for (const auto& [kind, name] : prefetchers) {
    Point p{name, base};
    p.cfg.corpus.hierarchy.prefetch = kind;
    prefetch_points.push_back(std::move(p));
  }
  util::Table prefetch_table({"configuration", "RF F1", "RF AUC", "TPR", "FPR"});
  run_points(prefetch_points, prefetch_table);
  std::printf("%s\n", prefetch_table.to_string().c_str());

  std::printf("%s", util::banner("Ablation: perf event multiplexing").c_str());
  std::vector<Point> mux_points;
  for (const std::uint32_t pmcs : {0u, 16u, 8u, 4u}) {
    Point p{pmcs == 0 ? std::string("no multiplexing")
                      : std::to_string(pmcs) + " hardware counters",
            base};
    p.cfg.corpus.monitor.pmu_counters = pmcs;
    mux_points.push_back(std::move(p));
  }
  util::Table mux_table({"configuration", "RF F1", "RF AUC", "TPR", "FPR"});
  run_points(mux_points, mux_table);
  std::printf("%s\n", mux_table.to_string().c_str());

  std::printf("%s", util::banner("Ablation: replacement policy").c_str());
  std::vector<Point> policy_points;
  const std::pair<sim::ReplacementPolicy, const char*> policies[] = {
      {sim::ReplacementPolicy::kLru, "LRU"},
      {sim::ReplacementPolicy::kFifo, "FIFO"},
      {sim::ReplacementPolicy::kRandom, "random"},
      {sim::ReplacementPolicy::kSrrip, "SRRIP"}};
  for (const auto& [policy, name] : policies) {
    Point p{name, base};
    p.cfg.corpus.hierarchy.llc.policy = policy;
    p.cfg.corpus.hierarchy.l2.policy = policy;
    policy_points.push_back(std::move(p));
  }
  util::Table policy_table({"configuration", "RF F1", "RF AUC", "TPR", "FPR"});
  run_points(policy_points, policy_table);
  std::printf("%s\n", policy_table.to_string().c_str());

  std::printf("Shape: the HMD signal survives moderate platform changes; extreme\n"
              "LLC sizes shift the class boundary (feature distributions move) and\n"
              "degrade a detector trained for the nominal platform's bands.\n");
  return 0;
}
