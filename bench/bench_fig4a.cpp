// Reproduces Figure 4(a): the three constraint-aware UCB agents' selected
// models with detection rate (F1), AUC, precision, recall, inference
// latency, memory footprint, overhead (latency*memory) and efficiency
// metric F1/(latency*memory), evaluated on the attacked inference mixture.
#include "bench_common.hpp"

using namespace drlhmd;

int main() {
  core::Framework fw = bench::build_pipeline(bench::bench_config());

  std::printf("%s", util::banner("Figure 4(a): constraint-aware agents").c_str());

  std::printf("Per-model profiles (Metric Monitor inputs, defended models):\n");
  util::Table profiles({"ML", "val F1", "latency (us)", "memory (bytes)"});
  for (const auto& p : fw.defended_profiles()) {
    profiles.add_row({p.name, util::Table::fmt(p.metrics.f1),
                      util::Table::fmt(p.latency_us, 4),
                      std::to_string(p.memory_bytes)});
  }
  std::printf("%s\n", profiles.to_string().c_str());

  util::Table agents({"Agent", "selected ML", "F1", "AUC", "Precision", "Recall",
                      "latency (us)", "memory (KB)", "overhead (lat*mem)",
                      "efficiency (F1/lat*mem)"});
  for (const rl::ConstraintPolicy policy :
       {rl::ConstraintPolicy::kFastInference, rl::ConstraintPolicy::kSmallMemory,
        rl::ConstraintPolicy::kBestDetection}) {
    const auto& controller = fw.controller(policy);
    const std::size_t sel = controller.selected_model();
    const auto& profile = controller.profile(sel);
    const auto m = controller.evaluate(fw.attacked_test_mix());
    const double mem_kb = static_cast<double>(profile.memory_bytes) / 1024.0;
    const double overhead = profile.latency_us * mem_kb;
    agents.add_row({rl::policy_name(policy), profile.name, util::Table::fmt(m.f1),
                    util::Table::fmt(m.auc), util::Table::fmt(m.precision),
                    util::Table::fmt(m.recall), util::Table::fmt(profile.latency_us, 4),
                    util::Table::fmt(mem_kb, 2), util::Table::fmt(overhead, 4),
                    util::Table::fmt(overhead > 0 ? m.f1 / overhead : 0.0, 2)});
  }
  std::printf("%s\n", agents.to_string().c_str());
  std::printf("Paper shape: Agent 1 fastest/smallest with fair detection (~89%%),\n"
              "Agent 3 best detection (>96%% F1) at higher latency/memory.\n");
  return 0;
}
