// Ablation B: feature engineering. Prints the mutual-information ranking of
// all 35 HPC events on the synthetic corpus, then sweeps the MI top-k
// feature count (k in {2,4,8,16}) against the paper's pinned 4-feature set,
// reporting baseline MLP/RF detection quality for each.
#include "bench_common.hpp"

#include "ml/model_zoo.hpp"
#include "ml/cross_validation.hpp"
#include "ml/mutual_info.hpp"

using namespace drlhmd;

int main() {
  core::FrameworkConfig base = bench::bench_config();

  // MI ranking over the raw corpus.
  core::Framework probe(base);
  probe.acquire_data();
  ml::Dataset raw;
  raw.feature_names = probe.corpus().feature_names;
  for (const auto& rec : probe.corpus().records)
    raw.push(rec.features, rec.malware ? 1 : 0);

  std::printf("%s", util::banner("Ablation: MI ranking of all HPC events").c_str());
  const auto mi = ml::mutual_information(raw, 16);
  util::Table ranking({"rank", "event", "MI (nats)"});
  for (std::size_t k = 0; k < 12; ++k) {
    const std::size_t f = mi.ranking[k];
    ranking.add_row({std::to_string(k + 1), raw.feature_names[f],
                     util::Table::fmt(mi.scores[f], 4)});
  }
  std::printf("%s\n", ranking.to_string().c_str());
  std::printf("Note: on this synthetic corpus several op-mix counters carry family\n"
              "fingerprints and out-rank the LLC events; the pipeline pins the paper's\n"
              "four LLC/cache features by default (see DESIGN.md).\n\n");

  std::printf("%s", util::banner("Ablation: feature-set sweep").c_str());
  util::Table sweep({"feature set", "k", "MLP F1", "MLP AUC", "RF F1", "RF AUC"});

  auto evaluate_mode = [&](core::FeatureSelectionMode mode, std::size_t k,
                           const std::string& label) {
    core::FrameworkConfig cfg = base;
    cfg.feature_mode = mode;
    cfg.top_k_features = k;
    core::Framework fw(cfg);
    fw.acquire_data();
    fw.engineer_features();
    fw.train_baselines();
    const auto& models = fw.baseline_models();
    const auto mlp = models[3]->evaluate(fw.test_set());
    const auto rf = models[0]->evaluate(fw.test_set());
    sweep.add_row({label, std::to_string(k), util::Table::fmt(mlp.f1),
                   util::Table::fmt(mlp.auc), util::Table::fmt(rf.f1),
                   util::Table::fmt(rf.auc)});
  };

  evaluate_mode(core::FeatureSelectionMode::kPaperFeatures, 4, "paper LLC/cache set");
  for (const std::size_t k : {2u, 4u, 8u, 16u})
    evaluate_mode(core::FeatureSelectionMode::kMutualInfo, k, "MI top-k");
  std::printf("%s\n", sweep.to_string().c_str());

  // 5-fold cross-validation on the pinned feature set, to put variance bars
  // on the single-split Table 2 numbers.
  std::printf("%s", util::banner("5-fold cross-validation (paper feature set)").c_str());
  core::Framework fw(base);
  fw.acquire_data();
  fw.engineer_features();
  ml::Dataset full = fw.train_set();
  full.append(fw.val_set());
  full.append(fw.test_set());
  util::Table cv_table({"model", "mean F1", "stddev F1", "mean AUC"});
  for (const auto& prototype : ml::make_classical_models()) {
    const auto cv = ml::cross_validate(*prototype, full, 5);
    cv_table.add_row({prototype->name(), util::Table::fmt(cv.mean_f1()),
                      util::Table::fmt(cv.stddev_f1(), 3),
                      util::Table::fmt(cv.mean_auc())});
  }
  std::printf("%s", cv_table.to_string().c_str());
  return 0;
}
