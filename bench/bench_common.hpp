// Shared setup for the reproduction harness: every bench binary builds the
// same full-scale pipeline (or a reduced one when DRLHMD_BENCH_SCALE is set
// between 0 and 1) and prints paper-style tables via util::Table.
//
// Setting DRLHMD_TELEMETRY=1 turns on the obs subsystem for the run: the
// pipeline records phase spans + gauges, and a JSON snapshot (metrics +
// trace) is emitted on stderr alongside the usual tables.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include <algorithm>

#include "core/framework.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace drlhmd::bench {

/// Apply the shared bench CLI: `--threads N` (or `--threads=N`) pins the
/// parallel pool width for the run, overriding ambient DRLHMD_THREADS so CI
/// can fix the thread count explicitly.  Unknown arguments are ignored (each
/// bench may layer its own flags on top).
inline void apply_bench_cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long n = -1;
    if (arg == "--threads" && i + 1 < argc) {
      n = std::atol(argv[++i]);
    } else if (arg.rfind("--threads=", 0) == 0) {
      n = std::atol(arg.c_str() + 10);
    } else {
      continue;
    }
    if (n < 1) {
      std::fprintf(stderr, "[bench] ignoring bad --threads value: %s\n",
                   arg.c_str());
      continue;
    }
    util::set_parallel_threads(static_cast<std::size_t>(n));
    std::fprintf(stderr, "[bench] --threads %ld (pool width %zu)\n", n,
                 util::parallel_thread_count());
  }
}

/// Discard warmup-iteration latencies from the telemetry recorders
/// (histograms + exact tails) so a DRLHMD_TELEMETRY=1 run's reported
/// quantiles cover only the measured region.  Counters and gauges keep
/// their values, and every cached metric handle stays valid.
inline void reset_telemetry_recorders() {
  if (obs::Telemetry::enabled()) obs::Telemetry::metrics().reset_recorders();
}

/// Best-of-N wall time: `warmup` untimed passes (caches, arenas, lazily
/// allocated tail shards), then the recorders are reset so the warmup's
/// latencies never pollute the measured tails, then N timed passes.
template <typename Fn>
double best_seconds(Fn&& fn, int reps = 9, int warmup = 1) {
  for (int w = 0; w < warmup; ++w) fn();
  reset_telemetry_recorders();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    util::Timer timer;
    fn();
    best = std::min(best, timer.elapsed_seconds());
  }
  return best;
}

/// Unified BENCH_*.json writer (schema "drlhmd-bench/1"): machine-run
/// context plus a flat list of named metrics, each carrying its unit and
/// direction so tools/benchdiff can compare documents without guessing.
///
///   {"schema":"drlhmd-bench/1","bench":"batch_inference",
///    "context":{"test_rows":8000,...},
///    "metrics":[{"name":"RF.batch_speedup","value":3.7,"unit":"x",
///                "higher_is_better":true},...]}
class BenchWriter {
 public:
  explicit BenchWriter(std::string bench_name)
      : bench_(std::move(bench_name)) {}

  void context(const std::string& key, std::uint64_t v) {
    context_.emplace_back(key, std::to_string(v));
  }
  void context(const std::string& key, const std::string& v) {
    obs::JsonWriter w;
    w.value(std::string_view(v));
    context_.emplace_back(key, w.str());
  }

  void metric(std::string name, double value, std::string unit,
              bool higher_is_better) {
    metrics_.push_back(
        {std::move(name), value, std::move(unit), higher_is_better});
  }

  /// Render the complete document.
  std::string str() const {
    obs::JsonWriter w;
    w.begin_object();
    w.kv("schema", std::string_view("drlhmd-bench/1"));
    w.kv("bench", std::string_view(bench_));
    w.key("context").begin_object();
    for (const auto& [k, v] : context_) w.key(k).raw(v);
    w.end_object();
    w.key("metrics").begin_array();
    for (const auto& m : metrics_) {
      w.begin_object()
          .kv("name", std::string_view(m.name))
          .kv("value", m.value)
          .kv("unit", std::string_view(m.unit))
          .kv("higher_is_better", m.higher_is_better)
          .end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
  }

 private:
  struct Metric {
    std::string name;
    double value;
    std::string unit;
    bool higher_is_better;
  };
  std::string bench_;
  std::vector<std::pair<std::string, std::string>> context_;  // key -> raw JSON
  std::vector<Metric> metrics_;
};

/// "release" when compiled with NDEBUG, "debug" otherwise.  Benches stamp
/// this into their JSON context so benchdiff comparisons against the
/// checked-in baselines can spot apples-to-oranges runs.
inline const char* build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

/// Loud stderr warning for benches running with assertions enabled: the
/// numbers are real but must not be written over the checked-in baselines.
inline void warn_if_debug_build() {
#ifndef NDEBUG
  std::fprintf(stderr,
               "[bench] WARNING: built without NDEBUG (assertions on) — "
               "timings are not comparable to the checked-in baselines\n");
#endif
}

inline double bench_scale() {
  if (const char* env = std::getenv("DRLHMD_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0 && s <= 1.0) return s;
  }
  return 1.0;
}

inline bool telemetry_requested() {
  const char* env = std::getenv("DRLHMD_TELEMETRY");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// One JSON document combining the registry snapshot and the phase trace.
inline std::string telemetry_json() {
  obs::JsonWriter w;
  w.begin_object();
  w.key("metrics").raw(obs::Telemetry::metrics().snapshot().to_json());
  w.key("trace").raw(obs::Telemetry::tracer().to_json());
  w.end_object();
  return w.str();
}

/// If DRLHMD_TELEMETRY is set, dump the snapshot to stderr (prefixed so it
/// is easy to grep out of the bench's table output).
inline void maybe_dump_telemetry() {
  if (!obs::Telemetry::enabled()) return;
  std::fprintf(stderr, "[telemetry] %s\n", telemetry_json().c_str());
}

/// Full-scale configuration used by every reproduction binary.
inline core::FrameworkConfig bench_config(std::uint64_t seed = 2024) {
  const double scale = bench_scale();
  core::FrameworkConfig cfg;
  cfg.corpus.benign_apps = static_cast<std::size_t>(300 * scale);
  cfg.corpus.malware_apps = static_cast<std::size_t>(300 * scale);
  cfg.corpus.windows_per_app = 5;
  cfg.seed = seed;
  return cfg;
}

/// Run the full pipeline with progress lines on stderr.  When
/// DRLHMD_TELEMETRY is set, telemetry is enabled for the whole process and
/// the registry/trace snapshot is printed once the pipeline completes.
inline core::Framework build_pipeline(const core::FrameworkConfig& cfg) {
  if (telemetry_requested()) obs::Telemetry::set_enabled(true);
  core::Framework fw(cfg);
  util::Timer timer;
  auto step = [&](const char* what, auto&& fn) {
    std::fprintf(stderr, "[pipeline] %-22s ", what);
    std::fflush(stderr);
    util::Timer t;
    fn();
    std::fprintf(stderr, "%6.2fs\n", t.elapsed_seconds());
  };
  step("acquire data", [&] { fw.acquire_data(); });
  step("engineer features", [&] { fw.engineer_features(); });
  step("train baselines", [&] { fw.train_baselines(); });
  step("generate attacks", [&] { fw.generate_attacks(); });
  step("train DRL predictor", [&] { fw.train_predictor(); });
  step("adversarial training", [&] { fw.train_defenses(); });
  step("train UCB controllers", [&] { fw.train_controllers(); });
  step("protect models", [&] { fw.protect_models(); });
  std::fprintf(stderr, "[pipeline] total %.2fs\n", timer.elapsed_seconds());
  maybe_dump_telemetry();
  return fw;
}

}  // namespace drlhmd::bench
