// Shared setup for the reproduction harness: every bench binary builds the
// same full-scale pipeline (or a reduced one when DRLHMD_BENCH_SCALE is set
// between 0 and 1) and prints paper-style tables via util::Table.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/framework.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace drlhmd::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("DRLHMD_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0 && s <= 1.0) return s;
  }
  return 1.0;
}

/// Full-scale configuration used by every reproduction binary.
inline core::FrameworkConfig bench_config(std::uint64_t seed = 2024) {
  const double scale = bench_scale();
  core::FrameworkConfig cfg;
  cfg.corpus.benign_apps = static_cast<std::size_t>(300 * scale);
  cfg.corpus.malware_apps = static_cast<std::size_t>(300 * scale);
  cfg.corpus.windows_per_app = 5;
  cfg.seed = seed;
  return cfg;
}

/// Run the full pipeline with progress lines on stderr.
inline core::Framework build_pipeline(const core::FrameworkConfig& cfg) {
  core::Framework fw(cfg);
  util::Timer timer;
  auto step = [&](const char* what, auto&& fn) {
    std::fprintf(stderr, "[pipeline] %-22s ", what);
    std::fflush(stderr);
    util::Timer t;
    fn();
    std::fprintf(stderr, "%6.2fs\n", t.elapsed_seconds());
  };
  step("acquire data", [&] { fw.acquire_data(); });
  step("engineer features", [&] { fw.engineer_features(); });
  step("train baselines", [&] { fw.train_baselines(); });
  step("generate attacks", [&] { fw.generate_attacks(); });
  step("train DRL predictor", [&] { fw.train_predictor(); });
  step("adversarial training", [&] { fw.train_defenses(); });
  step("train UCB controllers", [&] { fw.train_controllers(); });
  step("protect models", [&] { fw.protect_models(); });
  std::fprintf(stderr, "[pipeline] total %.2fs\n", timer.elapsed_seconds());
  return fw;
}

}  // namespace drlhmd::bench
