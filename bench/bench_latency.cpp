// google-benchmark microbenchmarks backing Figure 4(a)'s latency/memory
// columns: per-sample inference latency of every detector (baseline-trained)
// plus the A2C predictor and SHA-256 hashing of model bytes.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "sim/cache.hpp"
#include "core/framework.hpp"
#include "integrity/sha256.hpp"
#include "ml/model_zoo.hpp"
#include "rl/adversarial_predictor.hpp"
#include "util/rng.hpp"

using namespace drlhmd;

namespace {

/// Small synthetic 4-feature problem (models see the same width as the
/// engineered HPC space); built once and shared.
const ml::Dataset& train_data() {
  static const ml::Dataset data = [] {
    util::Rng rng(42);
    ml::Dataset d;
    for (int i = 0; i < 1000; ++i) {
      std::vector<double> benign(4), malware(4);
      for (int c = 0; c < 4; ++c) {
        benign[c] = rng.normal(0.0, 1.0);
        malware[c] = rng.normal(2.5, 1.0);
      }
      d.push(std::move(benign), 0);
      d.push(std::move(malware), 1);
    }
    return d;
  }();
  return data;
}

const ml::Classifier& model_for(ml::ModelKind kind) {
  static std::map<int, std::unique_ptr<ml::Classifier>> cache;
  auto& slot = cache[static_cast<int>(kind)];
  if (!slot) {
    slot = ml::make_model(kind);
    slot->fit(train_data());
  }
  return *slot;
}

void bench_predict(benchmark::State& state, ml::ModelKind kind) {
  const ml::Classifier& model = model_for(kind);
  const std::vector<double> x = {0.5, -0.2, 1.1, 0.3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_proba(x));
  }
  state.counters["model_bytes"] =
      static_cast<double>(model.serialize().size());
}

}  // namespace

BENCHMARK_CAPTURE(bench_predict, RF, ml::ModelKind::kRf);
BENCHMARK_CAPTURE(bench_predict, DT, ml::ModelKind::kDt);
BENCHMARK_CAPTURE(bench_predict, LR, ml::ModelKind::kLr);
BENCHMARK_CAPTURE(bench_predict, MLP, ml::ModelKind::kMlp);
BENCHMARK_CAPTURE(bench_predict, LightGBM, ml::ModelKind::kLightGbm);
BENCHMARK_CAPTURE(bench_predict, NN, ml::ModelKind::kNn);

static void bench_predictor_feedback(benchmark::State& state) {
  static const rl::AdversarialPredictor& predictor = [] {
    static rl::AdversarialPredictor p(4);
    util::Rng rng(7);
    ml::Dataset adv, legit;
    for (int i = 0; i < 200; ++i) {
      std::vector<double> a(4), l(4);
      for (int c = 0; c < 4; ++c) {
        a[c] = rng.normal(-3, 0.5);
        l[c] = rng.normal(1, 0.8);
      }
      adv.push(std::move(a), 1);
      legit.push(std::move(l), 0);
    }
    p.train(adv, legit);
    return std::ref(p).get();
  }();
  const std::vector<double> x = {0.5, -0.2, 1.1, 0.3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.feedback_reward(x));
  }
}
BENCHMARK(bench_predictor_feedback);

static void bench_sha256_model(benchmark::State& state) {
  const auto bytes = model_for(ml::ModelKind::kRf).serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(integrity::sha256(bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(bench_sha256_model);

static void bench_cache_access(benchmark::State& state) {
  sim::Cache cache(sim::CacheConfig{.name = "bench-llc",
                                    .size_bytes = 1 << 20,
                                    .line_bytes = 64,
                                    .associativity = 16});
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.next_below(8u << 20)));
  }
}
BENCHMARK(bench_cache_access);

BENCHMARK_MAIN();
