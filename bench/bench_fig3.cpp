// Reproduces Figure 3:
//  (a) True-positive rate per model under the three scenarios (TPR drops
//      under attack, recovers with adversarial training);
//  (b) the DRL adversarial predictor's feedback-reward trace over a stream
//      of adversarial samples followed by non-adversarial (malware/benign)
//      samples — a step-shaped series (~100 then ~0).
#include "bench_common.hpp"

using namespace drlhmd;

int main() {
  core::Framework fw = bench::build_pipeline(bench::bench_config());

  std::printf("%s", util::banner("Figure 3(a): TPR per scenario").c_str());
  util::Table tpr({"ML", "TPR regular", "TPR attacked", "TPR defended"});
  for (const auto& row : fw.evaluate_scenarios()) {
    tpr.add_row({row.model, util::Table::fmt(row.regular.tpr),
                 util::Table::fmt(row.adversarial.tpr),
                 util::Table::fmt(row.defended.tpr)});
  }
  std::printf("%s\n", tpr.to_string().c_str());

  std::printf("%s", util::banner("Figure 3(b): predictor feedback-reward trace").c_str());
  const auto pm = fw.evaluate_predictor();
  std::printf("Adversarial predictor: ACC=%s F1=%s precision=%s recall=%s "
              "(paper: 100%% across the board)\n\n",
              util::Table::fmt(pm.accuracy).c_str(), util::Table::fmt(pm.f1).c_str(),
              util::Table::fmt(pm.precision).c_str(),
              util::Table::fmt(pm.recall).c_str());

  const auto trace = fw.predictor_reward_trace();
  const std::size_t n_adv = fw.adversarial_test().size();
  std::printf("Stream: %zu adversarial samples then %zu non-adversarial samples\n",
              n_adv, trace.size() - n_adv);

  // Bucketed series (30 buckets) — the printable equivalent of the scatter.
  constexpr std::size_t kBuckets = 30;
  util::Table series({"bucket", "samples", "mean feedback reward", "segment"});
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::size_t lo = b * trace.size() / kBuckets;
    const std::size_t hi = (b + 1) * trace.size() / kBuckets;
    if (hi == lo) continue;
    double mean = 0.0;
    for (std::size_t i = lo; i < hi; ++i) mean += trace[i];
    mean /= static_cast<double>(hi - lo);
    const bool adversarial_segment = hi <= n_adv;
    const bool mixed = lo < n_adv && hi > n_adv;
    series.add_row({std::to_string(b),
                    std::to_string(lo) + ".." + std::to_string(hi - 1),
                    util::Table::fmt(mean, 1),
                    mixed ? "transition"
                          : (adversarial_segment ? "adversarial" : "non-adversarial")});
  }
  std::printf("%s", series.to_string().c_str());
  return 0;
}
