// Reproduces Figure 2: per-model F1 across the three scenarios, the
// degradation caused by adversarial attacks (blue down-arrows, up to -79%
// in the paper) and the recovery from adversarial training (up to +86% over
// the attacked F1, up to +10% over regular detection).
#include "bench_common.hpp"

using namespace drlhmd;

int main() {
  core::Framework fw = bench::build_pipeline(bench::bench_config());
  const auto rows = fw.evaluate_scenarios();

  std::printf("%s", util::banner("Figure 2: F1 under attack and after adversarial training").c_str());
  util::Table table({"ML", "F1 regular", "F1 attacked", "F1 defended",
                     "attack drop", "defense gain vs attack", "defense gain vs regular"});
  double max_drop = 0.0, max_gain_attack = 0.0, max_gain_regular = -1.0;
  for (const auto& row : rows) {
    const double drop = row.regular.f1 - row.adversarial.f1;
    const double gain_attack = row.defended.f1 - row.adversarial.f1;
    const double gain_regular = row.defended.f1 - row.regular.f1;
    if (row.model != "NN") {  // paper reports extremes over the classical models
      max_drop = std::max(max_drop, drop);
      max_gain_attack = std::max(max_gain_attack, gain_attack);
      max_gain_regular = std::max(max_gain_regular, gain_regular);
    }
    table.add_row({row.model, util::Table::fmt(row.regular.f1),
                   util::Table::fmt(row.adversarial.f1),
                   util::Table::fmt(row.defended.f1), util::Table::pct(drop),
                   util::Table::pct(gain_attack), util::Table::pct(gain_regular)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Max F1 degradation under attack:        %s (paper: up to 79%%)\n",
              util::Table::pct(max_drop).c_str());
  std::printf("Max F1 recovery vs attacked:            %s (paper: up to 86%%)\n",
              util::Table::pct(max_gain_attack).c_str());
  std::printf("Max F1 improvement vs regular:          %s (paper: up to 10%%)\n",
              util::Table::pct(max_gain_regular).c_str());
  return 0;
}
