// Bandit ablation: the paper picks UCB for the constraint-aware controller
// because it is lightweight; this bench pits UCB1 against epsilon-greedy and
// Thompson sampling on the exact controller problem (reward = correctness x
// constraint score over the five defended detectors) and on a synthetic
// Bernoulli problem with known regret structure.
#include "bench_common.hpp"

#include "rl/bandits.hpp"

using namespace drlhmd;

int main() {
  core::Framework fw = bench::build_pipeline(bench::bench_config());

  // Controller problem: arms = the five defended classical detectors,
  // stream = validation mixture, reward = correct * (w + (1-w)*cost).
  const auto& stream = fw.defense_val_mix();
  const auto& profiles = fw.defended_profiles();
  std::vector<const ml::Classifier*> models;
  for (std::size_t i = 0; i + 1 < fw.defended_models().size(); ++i)
    models.push_back(fw.defended_models()[i].get());

  double min_latency = profiles[0].latency_us;
  for (const auto& p : profiles) min_latency = std::min(min_latency, p.latency_us);

  std::printf("%s", util::banner("Bandit ablation on the controller problem").c_str());
  util::Table table({"bandit", "policy", "selected ML", "mean reward",
                     "best-arm pull share"});

  for (const char* kind : {"ucb", "epsilon-greedy", "thompson"}) {
    for (const double accuracy_weight : {0.30, 0.97}) {
      auto bandit = rl::make_bandit(kind, models.size(), 5);
      util::Rng rng(99);
      std::vector<std::size_t> order(stream.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      double reward_sum = 0.0;
      std::uint64_t steps = 0;
      for (int epoch = 0; epoch < 6; ++epoch) {
        rng.shuffle(order);
        for (const std::size_t row : order) {
          const std::size_t arm = bandit->select();
          const bool correct = models[arm]->predict(stream.row_copy(row)) == stream.y[row];
          const double cost = profiles[arm].latency_us > 0
                                  ? min_latency / profiles[arm].latency_us
                                  : 1.0;
          const double reward =
              correct ? accuracy_weight + (1.0 - accuracy_weight) * cost : 0.0;
          bandit->update(arm, reward);
          reward_sum += reward;
          ++steps;
        }
      }
      const std::size_t best = bandit->best_arm();
      std::uint64_t total = 0;
      for (std::size_t a = 0; a < models.size(); ++a) total += bandit->pulls(a);
      table.add_row({bandit->name(),
                     accuracy_weight > 0.5 ? "detection-weighted" : "speed-weighted",
                     profiles[best].name,
                     util::Table::fmt(reward_sum / static_cast<double>(steps), 4),
                     util::Table::pct(static_cast<double>(bandit->pulls(best)) /
                                      static_cast<double>(total))});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  // Synthetic regret check: Bernoulli arms with known gaps.
  std::printf("%s", util::banner("Synthetic Bernoulli problem (means .2/.5/.8)").c_str());
  util::Table synth({"bandit", "steps", "regret", "best-arm share"});
  const std::vector<double> means = {0.2, 0.5, 0.8};
  for (const char* kind : {"ucb", "epsilon-greedy", "thompson"}) {
    for (const std::size_t steps : {1000u, 10000u}) {
      auto bandit = rl::make_bandit(kind, means.size(), 7);
      util::Rng rng(7);
      double reward_sum = 0.0;
      for (std::size_t t = 0; t < steps; ++t) {
        const std::size_t arm = bandit->select();
        const double r = rng.bernoulli(means[arm]) ? 1.0 : 0.0;
        bandit->update(arm, r);
        reward_sum += r;
      }
      std::uint64_t total = 0;
      for (std::size_t a = 0; a < means.size(); ++a) total += bandit->pulls(a);
      synth.add_row({bandit->name(), std::to_string(steps),
                     util::Table::fmt(0.8 * static_cast<double>(steps) - reward_sum, 1),
                     util::Table::pct(static_cast<double>(bandit->pulls(2)) /
                                      static_cast<double>(total))});
    }
  }
  std::printf("%s\n", synth.to_string().c_str());
  std::printf("Shape: all three converge on this small arm set; UCB needs no\n"
              "tuning and carries no posterior state — the paper's rationale.\n");
  return 0;
}
