// Per-family analysis (beyond the paper's binary evaluation):
//   1. which malware families the binary detector catches / misses,
//   2. a 13-way program-family classifier (one-vs-rest RF) over the same
//      four LLC/cache features, with the full confusion structure.
// The paper's corpus has malware classes (worms, viruses, botnets,
// ransomware, ...); this bench quantifies how much family identity survives
// in the 4-feature HPC space.
#include "bench_common.hpp"

#include <map>

#include "ml/model_zoo.hpp"
#include "ml/random_forest.hpp"
#include "ml/multiclass.hpp"
#include "ml/mutual_info.hpp"
#include "ml/preprocess.hpp"
#include "sim/dataset_builder.hpp"

using namespace drlhmd;

int main() {
  // Build the corpus directly so family labels survive into evaluation.
  core::FrameworkConfig base = bench::bench_config();
  std::fprintf(stderr, "[families] building corpus...\n");
  const sim::HpcCorpus corpus = sim::build_corpus(base.corpus);

  // Engineer the paper's 4-feature space manually (keep family labels).
  std::vector<std::size_t> feature_idx;
  for (const char* name :
       {"LLC-load-misses", "LLC-loads", "cache-misses", "cache-references"})
    feature_idx.push_back(static_cast<std::size_t>(sim::event_from_name(name)));

  // Split records 80:20 by index parity-free shuffle.
  util::Rng rng(base.seed);
  std::vector<std::size_t> order(corpus.records.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  const std::size_t n_test = order.size() / 5;

  auto select = [&](const std::vector<double>& features) {
    std::vector<double> out;
    out.reserve(feature_idx.size());
    for (std::size_t idx : feature_idx) out.push_back(features[idx]);
    return out;
  };

  ml::Dataset train_binary;
  std::vector<std::string> test_family;
  ml::Dataset test_binary;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const auto& rec = corpus.records[order[k]];
    if (k < n_test) {
      test_binary.push(select(rec.features), rec.malware ? 1 : 0);
      test_family.push_back(rec.family);
    } else {
      train_binary.push(select(rec.features), rec.malware ? 1 : 0);
    }
  }
  ml::StandardScaler scaler;
  scaler.fit(train_binary);
  train_binary = scaler.transform(train_binary);
  test_binary = scaler.transform(test_binary);

  // ---- 1. Binary detector, per-family detection rates.
  auto rf = ml::make_model(ml::ModelKind::kRf);
  rf->fit(train_binary);

  std::map<std::string, std::pair<std::size_t, std::size_t>> per_family;  // hit/total
  for (std::size_t i = 0; i < test_binary.size(); ++i) {
    auto& slot = per_family[test_family[i]];
    ++slot.second;
    const int pred = rf->predict(test_binary.row_copy(i));
    if (pred == test_binary.y[i]) ++slot.first;
  }
  std::printf("%s", util::banner("Per-family detection (binary RF)").c_str());
  util::Table per_family_table({"family", "class", "windows", "correct rate"});
  for (const auto& [family, hit_total] : per_family) {
    bool is_malware = false;
    for (const auto f : sim::malware_families())
      if (sim::family_name(f) == family) is_malware = true;
    per_family_table.add_row(
        {family, is_malware ? "malware" : "benign",
         std::to_string(hit_total.second),
         util::Table::fmt(static_cast<double>(hit_total.first) /
                          static_cast<double>(hit_total.second))});
  }
  std::printf("%s\n", per_family_table.to_string().c_str());

  // ---- 2. 13-way family classifier.
  std::printf("%s", util::banner("13-way family classification (one-vs-rest RF)").c_str());
  ml::MulticlassDataset mc_train, mc_test;
  for (std::size_t f = 0; f < sim::kNumProgramFamilies; ++f) {
    const std::string name = sim::family_name(static_cast<sim::ProgramFamily>(f));
    mc_train.class_names.push_back(name);
    mc_test.class_names.push_back(name);
  }
  auto class_of = [&](const std::string& family) {
    for (std::size_t c = 0; c < mc_train.class_names.size(); ++c)
      if (mc_train.class_names[c] == family) return c;
    return mc_train.class_names.size();
  };
  for (std::size_t k = 0; k < order.size(); ++k) {
    const auto& rec = corpus.records[order[k]];
    auto& dst = (k < n_test) ? mc_test : mc_train;
    dst.push(scaler.transform(select(rec.features)), class_of(rec.family));
  }

  ml::RandomForestConfig rf_cfg;
  rf_cfg.n_trees = 30;
  const ml::RandomForest prototype(rf_cfg);
  ml::OneVsRestClassifier family_model(prototype);
  family_model.fit(mc_train);
  const auto report = family_model.evaluate(mc_test);

  std::printf("accuracy %s, macro recall %s over 13 families (chance ~7.7%%)\n\n",
              util::Table::pct(report.accuracy).c_str(),
              util::Table::pct(report.macro_recall).c_str());
  util::Table recall_table({"family", "recall", "most-confused-with"});
  for (std::size_t c = 0; c < mc_test.class_names.size(); ++c) {
    std::size_t worst = c;
    std::size_t worst_count = 0;
    for (std::size_t p = 0; p < mc_test.class_names.size(); ++p) {
      if (p == c) continue;
      if (report.confusion[c][p] > worst_count) {
        worst_count = report.confusion[c][p];
        worst = p;
      }
    }
    recall_table.add_row({mc_test.class_names[c],
                          util::Table::fmt(report.per_class_recall[c]),
                          worst_count > 0 ? mc_test.class_names[worst] : "-"});
  }
  std::printf("%s\n", recall_table.to_string().c_str());
  std::printf("Shape: family identity is partially recoverable from 4 HPC features;\n"
              "families engineered to overlap (spyware~interactive, database~virus)\n"
              "dominate the confusion, mirroring the benign/malware boundary cases.\n");
  return 0;
}
