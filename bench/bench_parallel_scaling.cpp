// Thread-scaling curve for the deterministic parallel layer.
//
// Times the two heaviest parallel consumers — RandomForest training and
// LowProFool batch attack generation — at pool widths 1/2/4/8 and emits a
// BENCH_parallel.json document with per-width wall times and speedups over
// the 1-thread run.  Because the layer is deterministic, every width
// produces bitwise identical models/attacks; only the wall clock moves.
//
// Speedup on a machine with fewer physical cores than the requested width
// is necessarily ~1x; `hardware_concurrency` is recorded so readers can
// judge the curve against the hardware that produced it.
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "adversarial/feature_importance.hpp"
#include "adversarial/lowprofool.hpp"
#include "bench_common.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/preprocess.hpp"
#include "ml/random_forest.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace drlhmd;

namespace {

ml::Dataset blobs(std::size_t n_per_class, std::uint64_t seed) {
  util::Rng rng(seed);
  ml::Dataset d;
  for (std::size_t i = 0; i < n_per_class; ++i) {
    std::vector<double> benign(4), malware(4);
    for (std::size_t c = 0; c < 4; ++c) {
      benign[c] = rng.normal(0.0, 1.0);
      malware[c] = rng.normal(2.0, 1.2);
    }
    d.push(std::move(benign), 0);
    d.push(std::move(malware), 1);
  }
  d.shuffle(rng);
  return d;
}

/// Best-of-3 wall time for one workload at the current pool width.
template <typename Fn>
double best_seconds(Fn&& fn) {
  return bench::best_seconds(std::forward<Fn>(fn), /*reps=*/3, /*warmup=*/1);
}

}  // namespace

int main() {
  const std::vector<std::size_t> widths = {1, 2, 4, 8};

  const ml::Dataset train = blobs(1000, 71);
  ml::RandomForestConfig rf_cfg;
  rf_cfg.n_trees = 48;

  ml::LogisticRegression surrogate;
  surrogate.fit(train);
  const ml::FeatureBounds bounds = ml::feature_bounds(train);
  const adversarial::LowProFool attacker(
      surrogate, bounds, adversarial::importance_from_lr(surrogate));

  std::vector<double> rf_seconds, attack_seconds;
  for (std::size_t width : widths) {
    util::set_parallel_threads(width);
    rf_seconds.push_back(best_seconds([&] {
      ml::RandomForest forest(rf_cfg);
      forest.fit(train);
    }));
    attack_seconds.push_back(
        best_seconds([&] { (void)attacker.attack_batch(train); }));
    std::fprintf(stderr, "[scaling] threads=%zu rf=%.3fs attack=%.3fs\n",
                 width, rf_seconds.back(), attack_seconds.back());
  }
  util::set_parallel_threads(0);  // back to the environment default

  util::Table table({"threads", "rf_fit_s", "rf_speedup", "attack_s",
                     "attack_speedup"});
  bench::BenchWriter json("parallel_scaling");
  json.context("hardware_concurrency",
               static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  json.context("rf_trees", static_cast<std::uint64_t>(rf_cfg.n_trees));
  json.context("dataset_rows", static_cast<std::uint64_t>(train.size()));
  for (std::size_t i = 0; i < widths.size(); ++i) {
    const double rf_speedup = rf_seconds[0] / rf_seconds[i];
    const double attack_speedup = attack_seconds[0] / attack_seconds[i];
    table.add_row({util::Table::fmt(static_cast<double>(widths[i]), 0),
                   util::Table::fmt(rf_seconds[i], 4),
                   util::Table::fmt(rf_speedup, 2),
                   util::Table::fmt(attack_seconds[i], 4),
                   util::Table::fmt(attack_speedup, 2)});
    const std::string prefix = "threads" + std::to_string(widths[i]);
    json.metric(prefix + ".rf_fit_seconds", rf_seconds[i], "s", false);
    json.metric(prefix + ".rf_speedup", rf_speedup, "x", true);
    json.metric(prefix + ".attack_seconds", attack_seconds[i], "s", false);
    json.metric(prefix + ".attack_speedup", attack_speedup, "x", true);
  }

  std::printf("%s\n%s\n", table.to_string().c_str(), json.str().c_str());
  return 0;
}
