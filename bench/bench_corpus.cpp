// Fleet-scale out-of-core corpus data plane: sharded build throughput,
// per-shard resume cost, and streamed (mmap-backed) feature selection +
// training over the shard directory.
//
// Emits BENCH_corpus.json (drlhmd-bench/1 schema) as the last stdout line.
// The benchdiff regression gate keys on `out_of_core_ratio` — total rows
// over the largest single shard's rows, i.e. how many times bigger than
// the peak in-RAM working set the corpus is.  The app population is sized
// as a multiple of the shard count, so the ratio equals the shard count
// exactly and is machine- and scale-independent; it collapses only if the
// build stops sharding (everything lands in one file) or shards go
// missing.  Absolute rows/sec metrics shift with the host and are
// reported ungated.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ml/model_zoo.hpp"
#include "ml/mutual_info.hpp"
#include "ml/sharded_dataset.hpp"
#include "sim/corpus_shard.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace drlhmd;

int main(int argc, char** argv) {
  bench::apply_bench_cli(argc, argv);
  bench::warn_if_debug_build();

  const double scale = bench::bench_scale();
  sim::FleetConfig fleet;
  fleet.shards = 8;
  // Keep each class a multiple of the shard count so every shard holds the
  // same number of apps and out_of_core_ratio is exactly fleet.shards.
  const std::size_t per_class =
      fleet.shards * std::max<std::size_t>(1, static_cast<std::size_t>(8 * scale));
  sim::CorpusConfig corpus;
  corpus.benign_apps = per_class;
  corpus.malware_apps = per_class;
  corpus.windows_per_app = 4;
  corpus.seed = 2024;

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "drlhmd_bench_corpus";
  std::filesystem::remove_all(dir);
  fleet.out_dir = dir.string();

  // Fresh fleet build (all shards simulated), then a pure resume pass
  // (every shard found complete on disk).
  const sim::ShardBuildStats built = sim::build_corpus_sharded(corpus, fleet);
  const sim::ShardBuildStats resumed = sim::build_corpus_sharded(corpus, fleet);
  const double rows = static_cast<double>(built.rows);
  const double build_rows_per_sec =
      built.build_seconds > 0.0 ? rows / built.build_seconds : 0.0;

  const ml::ShardedDataset source = ml::ShardedDataset::open(fleet.out_dir);
  std::size_t max_shard_rows = 0;
  for (std::size_t s = 0; s < source.num_shards(); ++s)
    max_shard_rows = std::max(max_shard_rows, source.shard(s).rows());
  const double out_of_core_ratio =
      max_shard_rows > 0 ? rows / static_cast<double>(max_shard_rows) : 0.0;

  // Streamed feature selection and streamed ensemble training over the
  // mmap'd shards — the two consumers the out-of-core path exists for.
  const double mi_s = bench::best_seconds(
      [&] { ml::select_top_k_features(source, 4, 16); }, /*reps=*/5);
  auto rf = ml::make_model(ml::ModelKind::kRf);
  const double rf_s = bench::best_seconds(
      [&] { rf->clone_untrained()->fit_stream(source); }, /*reps=*/3);

  util::Table table({"metric", "value"});
  table.add_row({"shards", std::to_string(built.shards_total)});
  table.add_row({"rows", std::to_string(built.rows)});
  table.add_row({"build rows/s", util::Table::fmt(build_rows_per_sec, 1)});
  table.add_row({"resume s", util::Table::fmt(resumed.build_seconds, 4)});
  table.add_row({"out-of-core ratio", util::Table::fmt(out_of_core_ratio, 2)});
  table.add_row({"streamed MI s", util::Table::fmt(mi_s, 4)});
  table.add_row({"streamed RF fit s", util::Table::fmt(rf_s, 4)});

  bench::BenchWriter json("corpus");
  json.context("shards", static_cast<std::uint64_t>(built.shards_total));
  json.context("apps", static_cast<std::uint64_t>(2 * per_class));
  json.context("rows", static_cast<std::uint64_t>(built.rows));
  json.context("mapped_bytes", static_cast<std::uint64_t>(source.mapped_bytes()));
  json.context("build_type", std::string(bench::build_type()));
  json.context("threads",
               static_cast<std::uint64_t>(util::parallel_thread_count()));
  json.metric("out_of_core_ratio", out_of_core_ratio, "x", true);
  json.metric("build_rows_per_second", build_rows_per_sec, "rows/s", true);
  json.metric("resume_seconds", resumed.build_seconds, "s", false);
  json.metric("streamed_mi_seconds", mi_s, "s", false);
  json.metric("streamed_rf_fit_seconds", rf_s, "s", false);

  std::filesystem::remove_all(dir);
  std::printf("%s\n%s\n", table.to_string().c_str(), json.str().c_str());
  return 0;
}
