// hmdload — open-loop load generator for the detection-as-a-service tier.
//
// Trains a reduced pipeline, wraps the DetectionRuntime in a
// DetectionServer, then sweeps offered load: at each point thousands of
// simulated hosts emit test-set rows with exponential inter-arrival times
// (serve/loadgen.hpp), and the report carries sustained samples/sec,
// coordinated-omission-safe p99/p999 end-to-end latency, and the drop rate
// under backpressure.  Emits BENCH_serving.json (drlhmd-bench/1 schema) as
// the last stdout line for the benchdiff_gate_serving ctest.
//
// Flags (on top of the shared --threads N override):
//   --loads R1,R2,...   offered samples/sec sweep points
//   --duration S        producer run time per point
//   --hosts N           simulated hosts
//   --max-batch N       adaptive batcher row cap
//   --max-wait-us U     adaptive batcher age cap
//   --smoke             one low-load point at reduced scale (CI smoke: the
//                       run must sustain the load with zero drops)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "util/table.hpp"

using namespace drlhmd;

namespace {

struct Options {
  std::vector<double> loads = {5000.0, 20000.0, 80000.0};
  double duration_s = 1.0;
  std::size_t hosts = 2048;
  std::size_t max_batch = 256;
  double max_wait_us = 500.0;
  bool smoke = false;
};

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.c_str() + prefix.size();
      if (arg == flag && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    const char* v = nullptr;
    if ((v = value("--loads")) != nullptr) {
      opt.loads.clear();
      for (const char* p = v; *p != '\0';) {
        opt.loads.push_back(std::atof(p));
        const char* comma = std::strchr(p, ',');
        if (comma == nullptr) break;
        p = comma + 1;
      }
    } else if ((v = value("--duration")) != nullptr) {
      opt.duration_s = std::atof(v);
    } else if ((v = value("--hosts")) != nullptr) {
      opt.hosts = static_cast<std::size_t>(std::atol(v));
    } else if ((v = value("--max-batch")) != nullptr) {
      opt.max_batch = static_cast<std::size_t>(std::atol(v));
    } else if ((v = value("--max-wait-us")) != nullptr) {
      opt.max_wait_us = std::atof(v);
    } else if (arg == "--smoke") {
      opt.smoke = true;
    }
  }
  if (opt.smoke) {
    // One gentle point the server must absorb without shedding a sample.
    opt.loads = {2000.0};
    opt.duration_s = 0.5;
    opt.hosts = 64;
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  bench::apply_bench_cli(argc, argv);
  const Options opt = parse_options(argc, argv);

  // Reduced pipeline: the serving bench measures the data plane, not
  // training.  Retraining and integrity sweeps are disabled so every point
  // sees the same frozen models (stable latency, no mid-sweep stalls).
  core::FrameworkConfig cfg;
  cfg.corpus.benign_apps = opt.smoke ? 40 : 80;
  cfg.corpus.malware_apps = opt.smoke ? 40 : 80;
  cfg.corpus.windows_per_app = 4;
  cfg.seed = 2024;
  std::fprintf(stderr, "[hmdload] training pipeline (%zu+%zu apps)...\n",
               cfg.corpus.benign_apps, cfg.corpus.malware_apps);
  core::Framework fw(cfg);
  fw.run_all();

  core::RuntimeConfig rcfg;
  rcfg.retrain_threshold = 0;
  rcfg.integrity_check_period = 0;
  core::DetectionRuntime runtime(fw, rcfg);

  const ml::Dataset& rows = fw.test_set();
  serve::ServeConfig scfg;
  scfg.hosts = opt.hosts;
  scfg.shards = 1;
  scfg.ring_capacity = 8192;
  scfg.completion_capacity = 256;
  scfg.max_batch = opt.max_batch;
  scfg.max_wait_us = opt.max_wait_us;
  serve::DetectionServer server(runtime, rows.num_features(), scfg);

  bench::BenchWriter json("serving");
  json.context("hosts", static_cast<std::uint64_t>(scfg.hosts));
  json.context("max_batch", static_cast<std::uint64_t>(scfg.max_batch));
  json.context("max_wait_us", static_cast<std::uint64_t>(scfg.max_wait_us));
  json.context("row_pool", static_cast<std::uint64_t>(rows.size()));
  json.context("build_type", std::string(bench::build_type()));
  json.context("threads",
               static_cast<std::uint64_t>(util::parallel_thread_count()));
  bench::warn_if_debug_build();

  util::Table table({"offered/s", "sustained/s", "p50 us", "p99 us",
                     "p999 us", "drop rate", "delivered"});
  bool all_drained = true;
  std::uint64_t total_dropped = 0;
  for (std::size_t i = 0; i < opt.loads.size(); ++i) {
    serve::LoadGenConfig lcfg;
    lcfg.offered_per_sec = opt.loads[i];
    lcfg.duration_s = opt.duration_s;
    lcfg.seed = 42 + i;
    const serve::LoadPointReport r =
        serve::run_open_loop(server, rows.X.view(), lcfg);
    all_drained = all_drained && r.drained;
    total_dropped += r.dropped;

    table.add_row({util::Table::fmt(r.offered_per_sec, 0),
                   util::Table::fmt(r.sustained_per_sec, 0),
                   util::Table::fmt(r.e2e_us.p50, 1),
                   util::Table::fmt(r.e2e_us.p99, 1),
                   util::Table::fmt(r.e2e_us.p999, 1),
                   util::Table::fmt(r.drop_rate, 4),
                   util::Table::fmt(static_cast<double>(r.delivered), 0)});
    std::fprintf(stderr,
                 "[hmdload] offered=%.0f/s sustained=%.0f/s p99=%.1fus "
                 "p999=%.1fus drops=%llu/%llu%s\n",
                 r.offered_per_sec, r.sustained_per_sec, r.e2e_us.p99,
                 r.e2e_us.p999,
                 static_cast<unsigned long long>(r.dropped),
                 static_cast<unsigned long long>(r.attempted),
                 r.drained ? "" : " [DRAIN TIMEOUT]");

    const std::string prefix = "p" + std::to_string(i);
    json.metric(prefix + ".offered_per_sec", r.offered_per_sec, "1/s", true);
    json.metric(prefix + ".sustained_per_sec", r.sustained_per_sec, "1/s",
                true);
    json.metric(prefix + ".p50_us", r.e2e_us.p50, "us", false);
    json.metric(prefix + ".p99_us", r.e2e_us.p99, "us", false);
    json.metric(prefix + ".p999_us", r.e2e_us.p999, "us", false);
    json.metric(prefix + ".drop_rate", r.drop_rate, "ratio", false);
    json.metric(prefix + ".delivered_ratio", r.delivered_ratio, "ratio",
                true);
  }

  const serve::ServeStats stats = server.stats();
  std::fprintf(stderr,
               "[hmdload] flushes full=%llu wait=%llu drain=%llu batches=%llu\n",
               static_cast<unsigned long long>(stats.flush_full),
               static_cast<unsigned long long>(stats.flush_wait),
               static_cast<unsigned long long>(stats.flush_drain),
               static_cast<unsigned long long>(stats.batches));

  std::printf("%s\n%s\n", table.to_string().c_str(), json.str().c_str());
  if (!all_drained) {
    std::fprintf(stderr, "[hmdload] FAIL: drain timeout\n");
    return 1;
  }
  if (opt.smoke && total_dropped != 0) {
    std::fprintf(stderr, "[hmdload] FAIL: smoke run dropped %llu samples\n",
                 static_cast<unsigned long long>(total_dropped));
    return 1;
  }
  return 0;
}
