// Defense comparison: the paper's adversarial-training defense vs. the two
// prior-work baselines its Table 1 lists (randomized-classifier / RHMD-style
// committees), plus attack baselines (FGSM, random noise) vs LowProFool —
// so both sides of the arms race are bracketed.
#include "bench_common.hpp"

#include "adversarial/attack_baselines.hpp"
#include "adversarial/defense_baselines.hpp"

using namespace drlhmd;

namespace {

ml::Dataset rows_with_label(const ml::Dataset& data, int label) {
  ml::Dataset out;
  out.feature_names = data.feature_names;
  for (std::size_t i = 0; i < data.size(); ++i)
    if (data.y[i] == label) out.push(data.row_copy(i), label);
  return out;
}

}  // namespace

int main() {
  core::Framework fw = bench::build_pipeline(bench::bench_config());

  const ml::Dataset& train = fw.train_set();
  const ml::Dataset malware = rows_with_label(fw.test_set(), 1);
  const ml::Dataset& clean_test = fw.test_set();
  const ml::Dataset& attacked_mix = fw.attacked_test_mix();

  // ---------------- Attack-side comparison -------------------------------
  std::printf("%s", util::banner("Attack comparison (success vs LR surrogate)").c_str());
  ml::LogisticRegression surrogate;
  surrogate.fit(train);
  const auto bounds = ml::feature_bounds(train);

  adversarial::LowProFool lowprofool(
      surrogate, bounds, adversarial::importance_from_lr(surrogate));
  adversarial::FgsmAttack fgsm(surrogate, bounds,
                               adversarial::FgsmConfig{.epsilon = 1.5});
  adversarial::RandomNoiseAttack noise(
      surrogate, bounds, adversarial::RandomNoiseConfig{.epsilon = 1.5});

  util::Table attacks({"attack", "success vs LR", "mean l-inf", "RF TPR on adversarials"});
  const ml::Classifier* rf = fw.baseline_models()[0].get();
  auto add_attack = [&](const std::string& name, const auto& attack) {
    const auto report = attack.evaluate_campaign(malware);
    const auto attacked = attack.attack_dataset(malware);
    attacks.add_row({name, util::Table::pct(report.success_rate),
                     util::Table::fmt(report.mean_linf, 3),
                     util::Table::fmt(rf->evaluate(attacked).tpr)});
  };
  add_attack("LowProFool (paper)", lowprofool);
  add_attack("FGSM (eps=1.5)", fgsm);
  add_attack("random noise (eps=1.5)", noise);
  std::printf("%s\n", attacks.to_string().c_str());

  // ---------------- Defense-side comparison ------------------------------
  std::printf("%s", util::banner("Defense comparison on the attacked mixture").c_str());

  adversarial::RandomizedEnsembleDefense randomized(
      adversarial::make_diverse_committee(7));
  randomized.fit(train);
  adversarial::MajorityVoteDefense majority(adversarial::make_diverse_committee(9));
  majority.fit(train);

  // The paper's defense: adversarially trained MLP (best defended model).
  const ml::Classifier* defended_mlp = nullptr;
  for (const auto& m : fw.defended_models())
    if (m->name() == "MLP") defended_mlp = m.get();
  const ml::Classifier* baseline_mlp = nullptr;
  for (const auto& m : fw.baseline_models())
    if (m->name() == "MLP") baseline_mlp = m.get();

  util::Table defenses({"defense", "clean-test F1", "attacked-mix F1", "attacked-mix TPR"});
  auto add_defense = [&](const std::string& name, const auto& evaluate) {
    const ml::MetricReport clean = evaluate(clean_test);
    const ml::MetricReport attacked = evaluate(attacked_mix);
    defenses.add_row({name, util::Table::fmt(clean.f1),
                      util::Table::fmt(attacked.f1),
                      util::Table::fmt(attacked.tpr)});
  };
  add_defense("undefended MLP",
              [&](const ml::Dataset& d) { return baseline_mlp->evaluate(d); });
  add_defense("randomized committee (RHMD-style)",
              [&](const ml::Dataset& d) { return randomized.evaluate(d); });
  add_defense("majority-vote committee",
              [&](const ml::Dataset& d) { return majority.evaluate(d); });
  add_defense("adversarial training (paper, MLP)",
              [&](const ml::Dataset& d) { return defended_mlp->evaluate(d); });
  std::printf("%s\n", defenses.to_string().c_str());
  std::printf("Shape: committees blunt single-surrogate attacks only partially;\n"
              "adversarial training (the paper's defense) restores detection fully.\n");
  return 0;
}
