// Reproduces Table 2: performance of the six detectors under
//   (a) regular malware detection (no adversary),
//   (b) adversarial attack,
//   (c) adversarial defense (after adversarial training),
// reporting ACC / F1 / AUC / TPR / FPR / FNR / TNR per model.
#include "bench_common.hpp"

using namespace drlhmd;

int main() {
  core::Framework fw = bench::build_pipeline(bench::bench_config());
  const auto rows = fw.evaluate_scenarios();

  std::printf("%s", util::banner("Table 2: detection under three scenarios").c_str());
  std::printf("Selected HPC features:");
  for (const auto& name : fw.selected_feature_names()) std::printf(" %s", name.c_str());
  std::printf("\nTrain/val/test: %zu/%zu/%zu windows; adversarial train pool: %zu\n\n",
              fw.train_set().size(), fw.val_set().size(), fw.test_set().size(),
              fw.adversarial_train().size());

  util::Table table({"Scenario", "ML", "ACC", "F1", "AUC", "TPR", "FPR", "FNR", "TNR"});
  auto add = [&](const std::string& scenario, const std::string& model,
                 const ml::MetricReport& m) {
    table.add_row({scenario, model, util::Table::fmt(m.accuracy),
                   util::Table::fmt(m.f1), util::Table::fmt(m.auc),
                   util::Table::fmt(m.tpr), util::Table::fmt(m.fpr),
                   util::Table::fmt(m.fnr), util::Table::fmt(m.tnr)});
  };
  for (const auto& row : rows) add("malware attack", row.model, row.regular);
  for (const auto& row : rows) add("adversarial attack", row.model, row.adversarial);
  for (const auto& row : rows) add("adversarial defense", row.model, row.defended);
  std::printf("%s\n", table.to_string().c_str());

  const auto attack = fw.attack_report();
  std::printf("LowProFool attack success rate vs LR evaluator: %s (paper: 100%%)\n",
              util::Table::pct(attack.success_rate).c_str());
  return 0;
}
