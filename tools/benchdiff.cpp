// benchdiff — perf-regression gate over BENCH_*.json documents.
//
//   benchdiff BASELINE.json CANDIDATE.json [--tolerance 0.10]
//             [--metric SUBSTR]...
//
// Loads both documents (unified drlhmd-bench/1 schema or legacy free-form
// JSON), flattens them to dotted metric paths, and compares every common
// metric.  A metric regresses when the candidate is worse than the
// baseline by more than the noise tolerance (default 10%); direction comes
// from the document's higher_is_better flags or, for legacy files, from
// the metric name.  `--metric` restricts the comparison to paths
// containing the given substring (repeatable).
//
// Exit codes: 0 = no regressions, 1 = at least one regression,
// 2 = usage / unreadable / unparsable input.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/benchdiff.hpp"
#include "obs/json.hpp"

using namespace drlhmd;

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in.is_open()) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: benchdiff BASELINE.json CANDIDATE.json\n"
               "                 [--tolerance T] [--metric SUBSTR]...\n"
               "exit: 0 ok, 1 regression beyond tolerance, 2 usage error\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::vector<std::string> filters;
  double tolerance = 0.10;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    }
    std::string value;
    const auto take_value = [&](const char* flag) -> bool {
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) {
        value = arg.substr(prefix.size());
        return true;
      }
      if (arg == flag) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "benchdiff: %s needs a value\n", flag);
          std::exit(2);
        }
        value = argv[++i];
        return true;
      }
      return false;
    };
    if (take_value("--tolerance")) {
      tolerance = std::atof(value.c_str());
      if (tolerance < 0.0) {
        std::fprintf(stderr, "benchdiff: tolerance must be >= 0\n");
        return 2;
      }
    } else if (take_value("--metric")) {
      filters.push_back(value);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "benchdiff: unknown flag %s\n", arg.c_str());
      usage(stderr);
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    usage(stderr);
    return 2;
  }

  std::string base_text, cand_text;
  if (!read_file(files[0], base_text)) {
    std::fprintf(stderr, "benchdiff: cannot read %s\n", files[0].c_str());
    return 2;
  }
  if (!read_file(files[1], cand_text)) {
    std::fprintf(stderr, "benchdiff: cannot read %s\n", files[1].c_str());
    return 2;
  }
  const auto baseline = obs::json_parse(base_text);
  if (!baseline.has_value()) {
    std::fprintf(stderr, "benchdiff: %s is not valid JSON\n", files[0].c_str());
    return 2;
  }
  const auto candidate = obs::json_parse(cand_text);
  if (!candidate.has_value()) {
    std::fprintf(stderr, "benchdiff: %s is not valid JSON\n", files[1].c_str());
    return 2;
  }

  const obs::BenchDiff diff = obs::bench_diff(*baseline, *candidate, filters);
  if (diff.compared.empty()) {
    std::fprintf(stderr, "benchdiff: no comparable metrics%s\n",
                 filters.empty() ? "" : " (check --metric filters)");
    return 2;
  }
  std::printf("%s", obs::render_bench_diff(diff, tolerance).c_str());
  return diff.regressions(tolerance).empty() ? 0 : 1;
}
