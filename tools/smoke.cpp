// Developer smoke test: runs the full pipeline on a small corpus and
// prints one line per phase output. Not part of the reproduction
// harness; use bench_table2 for paper-scale numbers.
#include <cstdio>
#include "core/framework.hpp"
#include "util/table.hpp"
using namespace drlhmd;

int main() {
  core::FrameworkConfig cfg;
  cfg.corpus.benign_apps = 120;
  cfg.corpus.malware_apps = 120;
  cfg.corpus.windows_per_app = 4;
  core::Framework fw(cfg);
  fw.acquire_data();
  std::printf("corpus: %zu records (%zu malware)\n", fw.corpus().records.size(), fw.corpus().num_malware());
  fw.engineer_features();
  std::printf("selected features:");
  for (const auto& n : fw.selected_feature_names()) std::printf(" %s", n.c_str());
  std::printf("\ntrain=%zu val=%zu test=%zu\n", fw.train_set().size(), fw.val_set().size(), fw.test_set().size());
  fw.train_baselines();
  fw.generate_attacks();
  auto rep = fw.attack_report();
  std::printf("attack: attempted=%zu success=%.3f norm=%.3f\n", rep.attempted, rep.success_rate, rep.mean_weighted_norm);
  fw.train_predictor();
  auto pm = fw.evaluate_predictor();
  std::printf("predictor: acc=%.3f f1=%.3f auc=%.3f\n", pm.accuracy, pm.f1, pm.auc);
  fw.train_defenses();
  fw.train_controllers();
  fw.protect_models();
  for (const auto& row : fw.evaluate_scenarios()) {
    std::printf("%-9s reg(F1=%.2f TPR=%.2f FPR=%.2f) adv(F1=%.2f TPR=%.2f) def(F1=%.2f TPR=%.2f)\n",
      row.model.c_str(), row.regular.f1, row.regular.tpr, row.regular.fpr,
      row.adversarial.f1, row.adversarial.tpr, row.defended.f1, row.defended.tpr);
  }
  for (auto p : {rl::ConstraintPolicy::kFastInference, rl::ConstraintPolicy::kSmallMemory, rl::ConstraintPolicy::kBestDetection}) {
    const auto& c = fw.controller(p);
    auto sel = c.selected_model();
    auto m = c.evaluate(fw.attacked_test_mix());
    std::printf("%s -> %s F1=%.3f lat=%.3fus mem=%zuB\n", rl::policy_name(p).c_str(),
      c.profile(sel).name.c_str(), m.f1, c.profile(sel).latency_us, c.profile(sel).memory_bytes);
  }
  return 0;
}
