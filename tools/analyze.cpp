// Developer tuning tool: prints the corpus MI ranking and per-family
// mean counters. Used while calibrating the workload catalogue
// (DESIGN.md section 5); kept for future re-tuning.
#include <cstdio>
#include <map>
#include "sim/dataset_builder.hpp"
#include "ml/mutual_info.hpp"
#include "ml/preprocess.hpp"
#include "util/stats.hpp"
using namespace drlhmd;

int main() {
  sim::CorpusConfig cc;
  cc.benign_apps = 120; cc.malware_apps = 120; cc.windows_per_app = 4;
  auto corpus = sim::build_corpus(cc);
  ml::Dataset raw = ml::clean(sim::corpus_to_dataset(corpus));
  auto mi = ml::mutual_information(raw, 16);
  std::printf("MI ranking:\n");
  for (size_t k = 0; k < 12; ++k) {
    size_t f = mi.ranking[k];
    std::printf("  %2zu %-24s %.4f\n", k, raw.feature_names[f].c_str(), mi.scores[f]);
  }
  // per-family means of key features
  std::map<std::string, std::map<std::string, util::RunningStats>> fam;
  std::vector<std::string> keys = {"LLC-loads","LLC-load-misses","cache-references","cache-misses","branches","instructions","L1-dcache-loads","dTLB-load-misses"};
  for (const auto& r : corpus.records) {
    for (const auto& k : keys) {
      size_t idx = 0;
      for (size_t i = 0; i < corpus.feature_names.size(); ++i) if (corpus.feature_names[i]==k) idx=i;
      fam[r.family][k].add(r.features[idx]);
    }
  }
  std::printf("\n%-14s", "family");
  for (const auto& k : keys) std::printf(" %12s", k.substr(0,12).c_str());
  std::printf("\n");
  for (const auto& [f, m] : fam) {
    std::printf("%-14s", f.c_str());
    for (const auto& k : keys) std::printf(" %12.0f", m.at(k).mean());
    std::printf("\n");
  }
  return 0;
}
