// hmdctl — command-line front end for the DRL-HMD library.
//
//   hmdctl corpus   --benign 300 --malware 300 --windows 5 --out corpus.csv
//   hmdctl corpus build --out shards/ --shards 6 [--benign N --malware N]
//                   [--windows W --seed S --limit-shards K --profiles a,b]
//   hmdctl corpus info  <dir>
//   hmdctl corpus merge <dir> --out merged.csv
//   hmdctl features --in corpus.csv [--bins 16] [--top 10]
//   hmdctl simulate --family ransomware [--windows 4] [--seed 7]
//   hmdctl pipeline [--benign 150 --malware 150] [--seed 2024] [--mi]
//   hmdctl attack   [--benign 150 --malware 150] [--margin 0.9] [--steps 150]
//   hmdctl serve    [--rate 20000] [--duration 1] [--hosts 256] [--workers 1]
//                   [--max-batch 256] [--max-wait-us 500] [--pin]
//   hmdctl telemetry [--benign 150 --malware 150] [--format json|table]
//                    [--policy fast|small|best] [--log run.jsonl]
//                    [--log-level info] [--chrome-trace trace.json]
//                    [--prom [metrics.prom]]
//   hmdctl save     --dir ckpt [--benign 150 --malware 150] [--seed 2024]
//   hmdctl resume   --dir ckpt
//   hmdctl verify   --dir ckpt
//
// Every subcommand prints plain tables (telemetry defaults to JSON); exit
// code 0 on success, 1 on runtime/integrity failures, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/framework.hpp"
#include "core/runtime.hpp"
#include "ml/mutual_info.hpp"
#include "ml/sharded_dataset.hpp"
#include "sim/corpus_shard.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/prom.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_export.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "sim/dataset_builder.hpp"
#include "util/artifact_store.hpp"
#include "util/arena.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

using namespace drlhmd;

namespace {

class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", key.c_str());
        std::exit(2);
      }
      key = key.substr(2);
      // Both spellings work: `--key value` and `--key=value`.
      if (const std::size_t eq = key.find('='); eq != std::string::npos) {
        values_[key.substr(0, eq)] = key.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "true";  // boolean flag
      }
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  long get_int(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atol(it->second.c_str());
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  bool has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

void usage(std::FILE* out);

sim::CorpusConfig corpus_config(const Args& args) {
  sim::CorpusConfig cfg;
  cfg.benign_apps = static_cast<std::size_t>(args.get_int("benign", 150));
  cfg.malware_apps = static_cast<std::size_t>(args.get_int("malware", 150));
  cfg.windows_per_app = static_cast<std::size_t>(args.get_int("windows", 5));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  return cfg;
}

int cmd_corpus(const Args& args) {
  const sim::CorpusConfig cfg = corpus_config(args);
  const std::string out = args.get("out", "corpus.csv");
  std::fprintf(stderr, "building corpus: %zu benign + %zu malware apps x %zu windows...\n",
               cfg.benign_apps, cfg.malware_apps, cfg.windows_per_app);
  const sim::HpcCorpus corpus = sim::build_corpus(cfg);
  util::write_csv_file(sim::corpus_to_csv(corpus), out);
  std::printf("wrote %zu labeled HPC samples (%zu features) to %s\n",
              corpus.records.size(), corpus.feature_names.size(), out.c_str());
  return 0;
}

int cmd_corpus_build(const Args& args) {
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "corpus build: --out DIR is required\n");
    return 2;
  }
  sim::CorpusConfig cfg = corpus_config(args);
  sim::FleetConfig fleet;
  fleet.out_dir = out;
  fleet.shards = static_cast<std::size_t>(args.get_int("shards", 4));
  fleet.limit_shards = static_cast<std::size_t>(args.get_int("limit-shards", 0));
  const std::string profiles = args.get("profiles", "");
  for (std::size_t at = 0; at < profiles.size();) {
    std::size_t comma = profiles.find(',', at);
    if (comma == std::string::npos) comma = profiles.size();
    if (comma > at) fleet.profiles.push_back(profiles.substr(at, comma - at));
    at = comma + 1;
  }

  std::fprintf(stderr,
               "building sharded corpus: %zu benign + %zu malware apps x %zu "
               "windows over %zu shards -> %s\n",
               cfg.benign_apps, cfg.malware_apps, cfg.windows_per_app,
               fleet.shards, out.c_str());
  const sim::ShardBuildStats stats = sim::build_corpus_sharded(cfg, fleet);
  std::printf("shards: %zu/%zu on disk (%zu built, %zu resumed), %zu rows in %.2fs%s\n",
              stats.shards_built + stats.shards_resumed, stats.shards_total,
              stats.shards_built, stats.shards_resumed, stats.rows,
              stats.build_seconds, stats.complete ? "" : " [INCOMPLETE]");
  for (const auto& [profile, rows] : stats.rows_per_profile)
    std::printf("  %-18s %zu rows\n", profile.c_str(), rows);
  return 0;
}

int cmd_corpus_info(const std::string& dir) {
  if (!std::filesystem::is_directory(dir)) {
    std::fprintf(stderr, "corpus info: '%s' is not a directory\n", dir.c_str());
    return 1;
  }
  const std::vector<ml::ShardInfo> infos = ml::ShardedDataset::inspect(dir);
  if (infos.empty()) {
    std::fprintf(stderr, "corpus info: no shard files in '%s'\n", dir.c_str());
    return 1;
  }
  util::Table table({"shard", "rows", "machine profile", "bytes", "CRC"});
  std::size_t rows = 0;
  bool all_ok = true;
  for (const ml::ShardInfo& info : infos) {
    table.add_row({std::to_string(info.index), std::to_string(info.rows),
                   info.profile_id, std::to_string(info.file_bytes),
                   info.crc_ok ? "ok" : "BAD"});
    if (info.crc_ok) rows += info.rows;
    all_ok = all_ok && info.crc_ok;
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("%zu shards, %zu valid rows%s\n", infos.size(), rows,
              all_ok ? "" : " (CRC FAILURES PRESENT)");
  return all_ok ? 0 : 1;
}

int cmd_corpus_merge(const std::string& dir, const Args& args) {
  const std::string out = args.get("out", "merged.csv");
  // open() verifies every shard CRC; a corrupt directory throws -> exit 1.
  const ml::ShardedDataset source = ml::ShardedDataset::open(dir);
  std::ofstream file(out, std::ios::out | std::ios::trunc);
  file << "label";
  for (const auto& name : source.feature_names()) file << ',' << name;
  file << '\n';
  // Stream shard by shard: the merge never holds more than the mmapped
  // views, so it works on corpora larger than RAM.
  for (std::size_t s = 0; s < source.num_shards(); ++s) {
    const ml::BatchView view = source.shard(s);
    const std::span<const int> labels = source.labels(s);
    for (std::size_t r = 0; r < view.rows(); ++r) {
      file << (labels[r] != 0 ? "malware" : "benign");
      for (std::size_t c = 0; c < view.cols(); ++c)
        file << ',' << util::Table::fmt(view.col(c)[r], 6);
      file << '\n';
    }
  }
  if (!file.good()) {
    std::fprintf(stderr, "corpus merge: cannot write '%s'\n", out.c_str());
    return 1;
  }
  std::printf("merged %zu shards (%zu rows, %zu features) into %s\n",
              source.num_shards(), source.rows(), source.num_features(),
              out.c_str());
  return 0;
}

/// Dispatch `hmdctl corpus [build|info|merge] ...`.  Bare `hmdctl corpus
/// --flags` keeps its original meaning (one in-RAM corpus to CSV).
int cmd_corpus_dispatch(int argc, char** argv) {
  const std::string sub = argc >= 3 ? argv[2] : "";
  if (sub.empty() || sub.rfind("--", 0) == 0)
    return cmd_corpus(Args(argc, argv, 2));  // legacy CSV build
  if (sub == "build") return cmd_corpus_build(Args(argc, argv, 3));
  if (sub == "info" || sub == "merge") {
    if (argc < 4 || std::string(argv[3]).rfind("--", 0) == 0) {
      std::fprintf(stderr, "corpus %s: a shard directory is required\n",
                   sub.c_str());
      return 2;
    }
    const std::string dir = argv[3];
    return sub == "info" ? cmd_corpus_info(dir)
                         : cmd_corpus_merge(dir, Args(argc, argv, 4));
  }
  std::fprintf(stderr, "hmdctl corpus: unknown subcommand '%s'\n", sub.c_str());
  usage(stderr);
  return 2;
}

int cmd_features(const Args& args) {
  const std::string in = args.get("in", "corpus.csv");
  const auto bins = static_cast<std::size_t>(args.get_int("bins", 16));
  const auto top = static_cast<std::size_t>(args.get_int("top", 10));
  const sim::HpcCorpus corpus = sim::corpus_from_csv(util::read_csv_file(in));
  const ml::Dataset data = sim::corpus_to_dataset(corpus);
  const auto mi = ml::mutual_information(data, bins);
  util::Table table({"rank", "event", "MI (nats)"});
  for (std::size_t k = 0; k < std::min(top, mi.ranking.size()); ++k) {
    const std::size_t f = mi.ranking[k];
    table.add_row({std::to_string(k + 1), data.feature_names[f],
                   util::Table::fmt(mi.scores[f], 4)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

int cmd_simulate(const Args& args) {
  const std::string family_name = args.get("family", "ransomware");
  const auto windows = static_cast<std::size_t>(args.get_int("windows", 4));
  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));

  sim::ProgramFamily family = sim::ProgramFamily::kCount;
  for (std::size_t f = 0; f < sim::kNumProgramFamilies; ++f) {
    if (sim::family_name(static_cast<sim::ProgramFamily>(f)) == family_name)
      family = static_cast<sim::ProgramFamily>(f);
  }
  if (family == sim::ProgramFamily::kCount) {
    std::fprintf(stderr, "unknown family '%s'; choose one of:", family_name.c_str());
    for (std::size_t f = 0; f < sim::kNumProgramFamilies; ++f)
      std::fprintf(stderr, " %s",
                   sim::family_name(static_cast<sim::ProgramFamily>(f)).c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }

  const sim::WorkloadSpec spec = sim::make_application(family, 0, rng);
  sim::Core core(sim::CoreConfig{}, sim::HierarchyConfig{},
                 sim::Workload(spec, rng.next()), rng.next());
  sim::PerfMonitor monitor(core, sim::PerfMonitorConfig{});
  monitor.warm_up();

  std::vector<std::string> header = {"window"};
  for (std::size_t e = 0; e < sim::kNumHpcEvents; ++e)
    header.emplace_back(sim::event_name(static_cast<sim::HpcEvent>(e)));
  util::Table table(std::move(header));
  for (std::size_t w = 0; w < windows; ++w) {
    const auto sample = monitor.sample_window();
    std::vector<std::string> row = {std::to_string(w)};
    for (double v : sample.values) row.push_back(util::Table::fmt(v, 0));
    table.add_row(std::move(row));
  }
  std::printf("app %s (%s)\n%s", spec.name.c_str(),
              spec.malware ? "malware" : "benign", table.to_csv().c_str());
  return 0;
}

void print_pipeline_report(const core::Framework& fw) {
  std::printf("features:");
  for (const auto& n : fw.selected_feature_names()) std::printf(" %s", n.c_str());
  std::printf("\nattack success: %s\n",
              util::Table::pct(fw.attack_report().success_rate).c_str());
  const auto pm = fw.evaluate_predictor();
  std::printf("predictor: ACC=%s F1=%s\n", util::Table::fmt(pm.accuracy).c_str(),
              util::Table::fmt(pm.f1).c_str());

  util::Table table({"ML", "regular F1", "attacked F1", "defended F1"});
  for (const auto& row : fw.evaluate_scenarios())
    table.add_row({row.model, util::Table::fmt(row.regular.f1),
                   util::Table::fmt(row.adversarial.f1),
                   util::Table::fmt(row.defended.f1)});
  std::printf("%s", table.to_string().c_str());

  for (const auto policy :
       {rl::ConstraintPolicy::kFastInference, rl::ConstraintPolicy::kSmallMemory,
        rl::ConstraintPolicy::kBestDetection}) {
    const auto& agent = fw.controller(policy);
    std::printf("%s -> %s (F1 %s)\n", rl::policy_name(policy).c_str(),
                agent.profile(agent.selected_model()).name.c_str(),
                util::Table::fmt(agent.evaluate(fw.attacked_test_mix()).f1).c_str());
  }
}

core::FrameworkConfig pipeline_config(const Args& args) {
  core::FrameworkConfig cfg;
  cfg.corpus = corpus_config(args);
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 2024));
  if (args.has("mi")) cfg.feature_mode = core::FeatureSelectionMode::kMutualInfo;
  return cfg;
}

int cmd_pipeline(const Args& args) {
  core::Framework fw(pipeline_config(args));
  fw.run_all();
  print_pipeline_report(fw);
  return 0;
}

int cmd_save(const Args& args) {
  const std::string dir = args.get("dir", "");
  if (dir.empty()) {
    std::fprintf(stderr, "save: --dir is required\n");
    return 2;
  }
  core::Framework fw(pipeline_config(args));
  fw.run_all();
  fw.save_checkpoint(dir);
  print_pipeline_report(fw);
  std::printf("checkpoint saved to %s\n", dir.c_str());
  return 0;
}

int cmd_resume(const Args& args) {
  const std::string dir = args.get("dir", "");
  if (dir.empty()) {
    std::fprintf(stderr, "resume: --dir is required\n");
    return 2;
  }
  core::Framework fw = core::Framework::resume(dir);
  for (std::size_t p = 0; p < core::kPhaseCount; ++p) {
    const auto phase = static_cast<core::Phase>(p);
    std::printf("phase %-8s %s\n", core::phase_name(phase),
                fw.phase_done(phase) ? "restored" : "pending");
  }
  fw.run_all();  // re-runs only the pending phases
  fw.save_checkpoint(dir);
  print_pipeline_report(fw);
  return 0;
}

/// Model name suffix of a "model-defended-<i>-<name>" artifact name.
std::string defended_model_name(const std::string& artifact) {
  const std::string stem = "model-defended-";
  std::size_t pos = artifact.find('-', stem.size());
  return pos == std::string::npos ? std::string() : artifact.substr(pos + 1);
}

int cmd_verify(const Args& args) {
  const std::string dir = args.get("dir", "");
  if (dir.empty()) {
    std::fprintf(stderr, "verify: --dir is required\n");
    return 2;
  }
  const util::ArtifactStore store(dir);
  bool failed = false;

  // Envelope pass: magic + declared kind + CRC of every artifact.
  std::map<std::string, util::Artifact> intact;
  for (const std::string& name : store.list()) {
    try {
      intact[name] = store.get(name);
      std::printf("%-28s ok       %s (%zu bytes)\n", name.c_str(),
                  intact[name].kind.c_str(), intact[name].payload.size());
    } catch (const std::exception& e) {
      std::printf("%-28s CORRUPT  %s\n", name.c_str(), e.what());
      failed = true;
    }
  }

  // Vault pass: each deployed model artifact must hash to its vaulted
  // SHA-256 digest (catches CRC-valid but swapped model payloads).
  const auto vault_it = intact.find("vault");
  if (vault_it != intact.end()) {
    try {
      const integrity::ModelVault vault =
          integrity::ModelVault::deserialize(vault_it->second.payload);
      for (const auto& [name, art] : intact) {
        if (name.rfind("model-defended-", 0) != 0) continue;
        const auto status =
            vault.verify(defended_model_name(name), art.payload);
        if (status == integrity::VerificationStatus::kIntact) {
          std::printf("%-28s vault digest ok\n", name.c_str());
        } else {
          std::printf("%-28s TAMPERED (vault digest mismatch)\n", name.c_str());
          failed = true;
        }
      }
    } catch (const std::exception& e) {
      std::printf("%-28s CORRUPT  %s\n", "vault", e.what());
      failed = true;
    }
  }

  std::printf("verify: %s\n", failed ? "FAILED" : "all artifacts intact");
  return failed ? 1 : 0;
}

int cmd_attack(const Args& args) {
  core::FrameworkConfig cfg;
  cfg.corpus = corpus_config(args);
  cfg.attack.max_steps = static_cast<std::size_t>(args.get_int("steps", 150));
  cfg.attack.confidence_margin = args.get_double("margin", 0.9);
  cfg.attack.lambda = args.get_double("lambda", 0.5);

  core::Framework fw(cfg);
  fw.acquire_data();
  fw.engineer_features();
  fw.train_baselines();
  fw.generate_attacks();

  const auto report = fw.attack_report();
  std::printf("success rate: %s, mean weighted norm %.4f, mean l-inf %.4f\n",
              util::Table::pct(report.success_rate).c_str(),
              report.mean_weighted_norm, report.mean_linf);
  util::Table table({"victim", "TPR regular", "TPR attacked"});
  for (const auto& model : fw.baseline_models()) {
    table.add_row({model->name(),
                   util::Table::fmt(model->evaluate(fw.test_set()).tpr),
                   util::Table::fmt(model->evaluate(fw.attacked_test_mix()).tpr)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

int cmd_serve(const Args& args) {
  // Train the pipeline, stand up the detection-as-a-service tier, and
  // drive it with one open-loop load point (serve/loadgen.hpp).  A smoke
  // sibling of bench/hmdload: same data plane, one point, table output.
  core::Framework fw(pipeline_config(args));
  fw.run_all();

  core::RuntimeConfig rt_cfg;
  rt_cfg.retrain_threshold = 0;       // frozen models: measure the data plane
  rt_cfg.integrity_check_period = 0;
  core::DetectionRuntime runtime(fw, rt_cfg);

  const ml::Dataset& rows = fw.test_set();
  serve::ServeConfig scfg;
  scfg.hosts = static_cast<std::size_t>(args.get_int("hosts", 256));
  scfg.ring_capacity = 8192;
  scfg.completion_capacity = 256;
  scfg.max_batch = static_cast<std::size_t>(args.get_int("max-batch", 256));
  scfg.max_wait_us = args.get_double("max-wait-us", 500.0);
  scfg.workers = static_cast<std::size_t>(args.get_int("workers", 1));
  scfg.pin_workers = args.has("pin");
  serve::DetectionServer server(runtime, rows.num_features(), scfg);

  serve::LoadGenConfig lcfg;
  lcfg.offered_per_sec = args.get_double("rate", 20000.0);
  lcfg.duration_s = args.get_double("duration", 1.0);
  lcfg.producers = static_cast<std::size_t>(args.get_int("producers", 1));
  std::fprintf(stderr, "serving %.0f samples/s for %.1fs over %zu hosts...\n",
               lcfg.offered_per_sec, lcfg.duration_s, scfg.hosts);
  const serve::LoadPointReport r =
      serve::run_open_loop(server, rows.X.view(), lcfg);

  util::Table table({"metric", "value"});
  table.add_row({"offered/s", util::Table::fmt(r.offered_per_sec, 0)});
  table.add_row({"sustained/s", util::Table::fmt(r.sustained_per_sec, 0)});
  table.add_row({"p50 us", util::Table::fmt(r.e2e_us.p50, 1)});
  table.add_row({"p99 us", util::Table::fmt(r.e2e_us.p99, 1)});
  table.add_row({"p999 us", util::Table::fmt(r.e2e_us.p999, 1)});
  table.add_row({"attempted", std::to_string(r.attempted)});
  table.add_row({"dropped", std::to_string(r.dropped)});
  table.add_row({"delivered", std::to_string(r.delivered)});
  table.add_row({"drop rate", util::Table::fmt(r.drop_rate, 4)});
  table.add_row({"delivered ratio", util::Table::fmt(r.delivered_ratio, 4)});
  std::printf("%s", table.to_string().c_str());
  if (!r.drained) {
    std::fprintf(stderr, "serve: drain timeout (server kept falling behind)\n");
    return 1;
  }
  return 0;
}

int cmd_telemetry(const Args& args) {
  // Structured logging first, so the pipeline's events reach the sinks.
  const std::string level_name = args.get("log-level", "warn");
  obs::LogLevel level = obs::LogLevel::kWarn;
  for (const obs::LogLevel candidate :
       {obs::LogLevel::kTrace, obs::LogLevel::kDebug, obs::LogLevel::kInfo,
        obs::LogLevel::kWarn, obs::LogLevel::kError}) {
    if (level_name == obs::level_name(candidate)) level = candidate;
  }
  obs::Logger::instance().set_level(level);
  const std::string log_path = args.get("log", "");
  if (!log_path.empty() && !obs::Logger::instance().open_jsonl(log_path)) {
    std::fprintf(stderr, "cannot open JSONL log sink: %s\n", log_path.c_str());
    return 2;
  }

  obs::Telemetry::set_enabled(true);
  obs::Telemetry::reset();

  core::FrameworkConfig cfg;
  cfg.corpus = corpus_config(args);
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 2024));
  if (args.has("mi")) cfg.feature_mode = core::FeatureSelectionMode::kMutualInfo;

  core::Framework fw(cfg);
  fw.run_all();

  core::RuntimeConfig rt_cfg;
  rt_cfg.registry = &obs::Telemetry::metrics();
  rt_cfg.retrain_threshold =
      static_cast<std::size_t>(args.get_int("retrain", 0));
  rt_cfg.integrity_check_period =
      static_cast<std::size_t>(args.get_int("integrity-period", 100));
  const std::string policy = args.get("policy", "best");
  if (policy == "fast") {
    rt_cfg.policy = rl::ConstraintPolicy::kFastInference;
  } else if (policy == "small") {
    rt_cfg.policy = rl::ConstraintPolicy::kSmallMemory;
  } else if (policy != "best") {
    std::fprintf(stderr, "unknown --policy '%s' (fast|small|best)\n",
                 policy.c_str());
    return 2;
  }

  // Drive the deployment loop over the attacked test mixture so per-stage
  // latency histograms and verdict counters have real traffic behind them.
  core::DetectionRuntime runtime(fw, rt_cfg);
  const ml::MetricReport report =
      runtime.process_stream(fw.attacked_test_mix());
  runtime.validate_integrity();

  // Serving-tier pump: route a slice of the mix through the DetectionServer
  // against the same registry, so the drlhmd.serve.* counters and gauges
  // (queue_depth, dropped_total, sessions) ride every exporter below.
  {
    const ml::Dataset& mix = fw.attacked_test_mix();
    serve::ServeConfig scfg;
    scfg.hosts = 8;
    scfg.ring_capacity = 1024;
    scfg.completion_capacity = 256;
    scfg.max_batch = 64;
    scfg.registry = &obs::Telemetry::metrics();
    serve::DetectionServer server(runtime, mix.num_features(), scfg);
    const std::size_t n = std::min<std::size_t>(mix.size(), 128);
    for (std::size_t i = 0; i < n; ++i)
      server.try_enqueue(static_cast<std::uint32_t>(i % scfg.hosts),
                         mix.row_copy(i));
    server.poll();
    serve::VerdictRecord rec;
    for (std::uint32_t host = 0; host < scfg.hosts; ++host)
      while (server.try_pop_verdict(host, rec)) {
      }
    server.publish_gauges();
  }

  // Fold the scratch-arena footprint into the registry so every exporter
  // below (Prometheus, JSON, table) carries the drlhmd.arena.* gauges.
  obs::Telemetry::publish_arena_gauges();

  // Exporters: Chrome trace-event JSON for chrome://tracing / Perfetto,
  // and Prometheus text exposition of the whole registry.
  const std::string chrome_path = args.get("chrome-trace", "");
  if (!chrome_path.empty() && chrome_path != "true") {
    if (!obs::write_chrome_trace_file(obs::Telemetry::tracer(), chrome_path)) {
      std::fprintf(stderr, "cannot write chrome trace: %s\n",
                   chrome_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "chrome trace written to %s\n", chrome_path.c_str());
  }
  if (args.has("prom")) {
    const std::string prom =
        obs::to_prometheus(obs::Telemetry::metrics().snapshot());
    const std::string prom_path = args.get("prom", "");
    if (prom_path.empty() || prom_path == "true") {
      // `--prom` with no file: the exposition document IS the output.
      std::printf("%s", prom.c_str());
      return 0;
    }
    std::ofstream out(prom_path, std::ios::out | std::ios::trunc);
    out << prom;
    if (!out.good()) {
      std::fprintf(stderr, "cannot write exposition file: %s\n",
                   prom_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "prometheus exposition written to %s\n",
                 prom_path.c_str());
  }

  const std::string format = args.get("format", "json");
  if (format == "table") {
    std::printf("%s%s", util::banner("Phase trace").c_str(),
                obs::Telemetry::tracer().to_table().c_str());
    std::printf("%s%s", util::banner("Metrics").c_str(),
                obs::Telemetry::metrics().snapshot().to_table().c_str());
    std::printf("stream: %zu samples, F1 %s\n", fw.attacked_test_mix().size(),
                util::Table::fmt(report.f1).c_str());
    const util::ParallelStats pstats = util::parallel_stats();
    std::printf(
        "parallel: %zu threads (DRLHMD_THREADS), %llu pool regions, "
        "%llu inline regions, %llu chunks, largest region %llu chunks\n",
        pstats.threads, static_cast<unsigned long long>(pstats.regions),
        static_cast<unsigned long long>(pstats.serial_regions),
        static_cast<unsigned long long>(pstats.chunks),
        static_cast<unsigned long long>(pstats.peak_region_chunks));
    const util::ArenaStats astats = util::arena_stats();
    std::printf(
        "arena: %llu scratch arenas, %llu KiB capacity, %llu KiB high water, "
        "%llu scope reuses, %llu chunk allocations\n",
        static_cast<unsigned long long>(astats.arenas),
        static_cast<unsigned long long>(astats.capacity_bytes / 1024),
        static_cast<unsigned long long>(astats.high_water_bytes / 1024),
        static_cast<unsigned long long>(astats.scope_reuses),
        static_cast<unsigned long long>(astats.chunk_allocations));
    return 0;
  }
  if (format != "json") {
    std::fprintf(stderr, "unknown --format '%s' (json|table)\n", format.c_str());
    return 2;
  }

  obs::JsonWriter w;
  w.begin_object();
  w.key("config")
      .begin_object()
      .kv("benign_apps", static_cast<std::uint64_t>(cfg.corpus.benign_apps))
      .kv("malware_apps", static_cast<std::uint64_t>(cfg.corpus.malware_apps))
      .kv("seed", cfg.seed)
      .kv("policy", std::string_view(rl::policy_name(rt_cfg.policy)))
      .end_object();
  w.key("stream")
      .begin_object()
      .kv("samples", static_cast<std::uint64_t>(fw.attacked_test_mix().size()))
      .kv("f1", report.f1)
      .kv("accuracy", report.accuracy)
      .end_object();
  const util::ParallelStats pstats = util::parallel_stats();
  w.key("parallel")
      .begin_object()
      .kv("threads", static_cast<std::uint64_t>(pstats.threads))
      .kv("pool_regions", pstats.regions)
      .kv("inline_regions", pstats.serial_regions)
      .kv("chunks", pstats.chunks)
      .kv("peak_region_chunks", pstats.peak_region_chunks)
      .end_object();
  // drlhmd.arena.* gauges: scratch-arena footprint of the serving tier
  // (zero steady-state chunk growth is the arena design's invariant).
  const util::ArenaStats astats = util::arena_stats();
  w.key("arena")
      .begin_object()
      .kv("arenas", astats.arenas)
      .kv("capacity_bytes", astats.capacity_bytes)
      .kv("high_water_bytes", astats.high_water_bytes)
      .kv("scope_reuses", astats.scope_reuses)
      .kv("chunk_allocations", astats.chunk_allocations)
      .end_object();
  w.key("trace").raw(obs::Telemetry::tracer().to_json());
  w.key("metrics").raw(obs::Telemetry::metrics().snapshot().to_json());
  w.end_object();
  std::printf("%s\n", w.str().c_str());
  return 0;
}

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: hmdctl <command> [--flag value ...]\n"
               "commands:\n"
               "  corpus    generate a labeled HPC corpus CSV\n"
               "            --benign N --malware N --windows W --seed S --out F\n"
               "  corpus build  fleet-scale sharded corpus (mmap-able .dsh files;\n"
               "            resumes per shard if interrupted)\n"
               "            --out DIR --shards N [--benign N --malware N]\n"
               "            [--windows W --seed S --limit-shards K --profiles a,b]\n"
               "  corpus info <dir>   shard table (rows, machine profile, CRC)\n"
               "  corpus merge <dir>  stream shards into one CSV  [--out F]\n"
               "  features  mutual-information report over a corpus CSV\n"
               "            --in F --bins B --top K\n"
               "  simulate  per-window counter trace for one application\n"
               "            --family NAME --windows W --seed S\n"
               "  pipeline  run the full adversarial-resilient pipeline\n"
               "            --benign N --malware N --seed S [--mi]\n"
               "  attack    attack-only study (baselines + LowProFool)\n"
               "            --benign N --malware N --steps K --margin M\n"
               "  serve     detection-as-a-service smoke: one open-loop load\n"
               "            point through the lock-free serving tier\n"
               "            --rate R --duration S --hosts N --workers W\n"
               "            --max-batch B --max-wait-us U [--pin]\n"
               "  telemetry pipeline + runtime stream with full telemetry\n"
               "            (includes drlhmd.serve.* serving-tier gauges)\n"
               "            --benign N --malware N --seed S [--mi]\n"
               "            --format json|table --policy fast|small|best\n"
               "            --retrain K --integrity-period P\n"
               "            --log FILE.jsonl --log-level LEVEL\n"
               "            --chrome-trace FILE  (trace-event JSON export)\n"
               "            --prom [FILE]  (Prometheus text exposition;\n"
               "            no FILE prints it to stdout)\n"
               "  save      run the pipeline and checkpoint it to a directory\n"
               "            --dir D --benign N --malware N --seed S [--mi]\n"
               "  resume    restore a checkpoint, run remaining phases, report\n"
               "            --dir D\n"
               "  verify    integrity-check a checkpoint (envelope CRCs +\n"
               "            vaulted SHA-256 digests of deployed models)\n"
               "            --dir D\n"
               "  help      show this listing\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    usage(stdout);
    return 0;
  }
  try {
    // corpus takes positional subcommands (build|info|merge), so it is
    // dispatched before the flags-only Args parse below.
    if (command == "corpus") return cmd_corpus_dispatch(argc, argv);
    const Args args(argc, argv, 2);
    if (command == "features") return cmd_features(args);
    if (command == "simulate") return cmd_simulate(args);
    if (command == "pipeline") return cmd_pipeline(args);
    if (command == "attack") return cmd_attack(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "telemetry") return cmd_telemetry(args);
    if (command == "save") return cmd_save(args);
    if (command == "resume") return cmd_resume(args);
    if (command == "verify") return cmd_verify(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hmdctl %s: %s\n", command.c_str(), e.what());
    return 1;
  }
  std::fprintf(stderr, "hmdctl: unknown command '%s'\n", command.c_str());
  usage(stderr);
  return 2;
}
