#include "ml/mlp.hpp"

#include <stdexcept>

#include "ml/data_source.hpp"
#include "util/arena.hpp"

namespace drlhmd::ml {
namespace {
constexpr std::uint8_t kFormatVersion = 1;

// Rows per inference block: keeps per-layer activations cache-resident
// instead of streaming whole-batch intermediates through memory.
constexpr std::size_t kBlockRows = 128;
}

MlpClassifier::MlpClassifier(MlpConfig config) : config_(std::move(config)) {
  if (config_.hidden.empty())
    throw std::invalid_argument("MlpClassifier: need at least one hidden layer");
  if (config_.epochs == 0 || config_.batch_size == 0)
    throw std::invalid_argument("MlpClassifier: epochs/batch_size must be > 0");
  if (config_.learning_rate <= 0.0)
    throw std::invalid_argument("MlpClassifier: learning_rate must be > 0");
}

void MlpClassifier::fit(const Dataset& train) {
  train.validate();
  fit_stream(DatasetSource(train));
}

void MlpClassifier::fit_stream(const DataSource& train) {
  const RowLocator rows(train);
  if (rows.rows() == 0)
    throw std::invalid_argument("MlpClassifier::fit: empty dataset");
  in_features_ = rows.num_features();

  util::Rng rng(config_.seed);
  net_ = nn::make_mlp(in_features_, config_.hidden, 2, rng);

  std::vector<std::size_t> order(rows.rows());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size(); start += config_.batch_size) {
      const std::size_t end = std::min(order.size(), start + config_.batch_size);
      Matrix batch(end - start, in_features_);
      std::vector<int> labels(end - start);
      for (std::size_t i = start; i < end; ++i) {
        const std::size_t row = order[i];
        for (std::size_t c = 0; c < in_features_; ++c)
          batch.at(i - start, c) = rows.at(row, c);
        labels[i - start] = rows.label(row);
      }
      net_.zero_grad();
      const Matrix logits = net_.forward(batch);
      const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
      net_.backward(loss.grad);
      net_.adam_step(config_.learning_rate);
    }
  }
  qnet_ = nn::QuantizedNetwork::build(net_);
}

double MlpClassifier::predict_proba(std::span<const double> features) const {
  if (!trained()) throw std::logic_error("MlpClassifier: not trained");
  if (features.size() != in_features_)
    throw std::invalid_argument("MlpClassifier: feature width mismatch");
  const Matrix logits = net_.infer(Matrix::row_vector(features));
  const Matrix probs = nn::softmax(logits);
  return probs.at(0, 1);
}

void MlpClassifier::predict_proba_batch(BatchView batch,
                                        std::span<double> out) const {
  if (!trained()) throw std::logic_error("MlpClassifier: not trained");
  check_batch_out(batch, out);
  if (batch.cols() != in_features_)
    throw std::invalid_argument("MlpClassifier: feature width mismatch");
  if (batch.rows() == 0) return;
  // Block-batched inference: infer_rows accumulates each output element
  // over ascending k in every code path, and every layer plus softmax is
  // row-local, so row r of a block's result is bitwise identical to
  // inferring row r alone — and to any other block partition.  All scratch
  // (gathered rows, activations, probabilities) comes from the per-thread
  // arena: zero heap traffic in steady state.
  util::ArenaScope scope(util::scratch_arena());
  const std::size_t block = std::min(kBlockRows, batch.rows());
  auto rows_buf = scope.alloc<double>(block * in_features_);
  auto probs = scope.alloc<double>(block * 2);
  for (std::size_t r0 = 0; r0 < batch.rows(); r0 += kBlockRows) {
    const std::size_t count = std::min(kBlockRows, batch.rows() - r0);
    for (std::size_t c = 0; c < in_features_; ++c) {
      const ColumnView colc = batch.col(c);
      for (std::size_t r = 0; r < count; ++r)
        rows_buf[r * in_features_ + c] = colc[r0 + r];
    }
    net_.infer_rows(rows_buf.data(), count, in_features_, probs.data(),
                    scope.arena());
    nn::softmax_rows(probs.data(), count, 2);
    for (std::size_t r = 0; r < count; ++r) out[r0 + r] = probs[r * 2 + 1];
  }
}

void MlpClassifier::predict_proba_batch_quantized(BatchView batch,
                                                  std::span<double> out) const {
  if (!trained()) throw std::logic_error("MlpClassifier: not trained");
  check_batch_out(batch, out);
  if (batch.cols() != in_features_)
    throw std::invalid_argument("MlpClassifier: feature width mismatch");
  if (!qnet_.ready()) {  // over-wide layer etc.: exact fallback
    predict_proba_batch(batch, out);
    return;
  }
  util::ArenaScope scope(util::scratch_arena());
  const std::size_t block = std::min(kBlockRows, batch.rows());
  auto rows_buf = scope.alloc<double>(block * in_features_);
  auto probs = scope.alloc<double>(block * 2);
  for (std::size_t r0 = 0; r0 < batch.rows(); r0 += kBlockRows) {
    const std::size_t count = std::min(kBlockRows, batch.rows() - r0);
    for (std::size_t c = 0; c < in_features_; ++c) {
      const ColumnView colc = batch.col(c);
      for (std::size_t r = 0; r < count; ++r)
        rows_buf[r * in_features_ + c] = colc[r0 + r];
    }
    qnet_.infer_rows(rows_buf.data(), count, in_features_, probs.data(),
                     scope.arena());
    nn::softmax_rows(probs.data(), count, 2);
    for (std::size_t r = 0; r < count; ++r) out[r0 + r] = probs[r * 2 + 1];
  }
}

std::vector<std::uint8_t> MlpClassifier::serialize() const {
  util::ByteWriter w;
  w.write_string("MLP");
  w.write_u8(kFormatVersion);
  w.write_u64(in_features_);
  w.write_bytes(net_.serialize());
  return w.take();
}

MlpClassifier MlpClassifier::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.read_string() != "MLP")
    throw std::invalid_argument("MlpClassifier::deserialize: bad magic");
  if (r.read_u8() != kFormatVersion)
    throw std::invalid_argument("MlpClassifier::deserialize: bad version");
  MlpClassifier model;
  model.in_features_ = static_cast<std::size_t>(r.read_u64());
  model.net_ = nn::Network::deserialize(r.read_bytes());
  model.qnet_ = nn::QuantizedNetwork::build(model.net_);  // never serialized
  return model;
}

std::unique_ptr<Classifier> MlpClassifier::clone_untrained() const {
  return std::make_unique<MlpClassifier>(config_);
}

}  // namespace drlhmd::ml
