// One-vs-rest multiclass classification on top of the binary Classifier
// interface.
//
// The paper's corpus carries malware *classes* ("Worms, Viruses, Botnets,
// Ransomware, and more"); this wrapper turns any binary detector into a
// program-family classifier, used by `bench_families` to report which
// families are hardest to detect and to attack.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.hpp"

namespace drlhmd::ml {

/// Multiclass dataset: labels are class indices into `class_names`.
struct MulticlassDataset {
  FeatureMatrix X;  // columnar, like Dataset
  std::vector<std::size_t> y;
  std::vector<std::string> class_names;

  std::size_t size() const { return X.rows(); }
  std::size_t num_classes() const { return class_names.size(); }
  std::size_t count_class(std::size_t c) const;
  void push(std::span<const double> features, std::size_t label);
  void push(std::initializer_list<double> features, std::size_t label) {
    push(std::span<const double>(features.begin(), features.size()), label);
  }
  void validate() const;
};

struct MulticlassReport {
  double accuracy = 0.0;
  /// Unweighted mean of per-class recalls (balanced accuracy).
  double macro_recall = 0.0;
  /// confusion[truth][predicted]
  std::vector<std::vector<std::size_t>> confusion;
  std::vector<double> per_class_recall;
};

/// One-vs-rest committee: one clone of the prototype per class, trained on
/// "this class vs everything else"; prediction is the argmax class score.
class OneVsRestClassifier {
 public:
  /// `prototype` supplies hyperparameters; one untrained clone is made per
  /// class at fit time.
  explicit OneVsRestClassifier(const Classifier& prototype);

  void fit(const MulticlassDataset& train);

  std::size_t predict(std::span<const double> features) const;
  /// Per-class scores (each member's P(its class)); not normalized.
  std::vector<double> scores(std::span<const double> features) const;

  MulticlassReport evaluate(const MulticlassDataset& data) const;

  bool trained() const { return !members_.empty(); }
  std::size_t class_count() const { return members_.size(); }
  const std::vector<std::string>& class_names() const { return class_names_; }

 private:
  const Classifier& prototype_;
  std::vector<std::unique_ptr<Classifier>> members_;
  std::vector<std::string> class_names_;
};

}  // namespace drlhmd::ml
