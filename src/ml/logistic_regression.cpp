#include "ml/logistic_regression.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace drlhmd::ml {
namespace {

double sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

constexpr std::uint8_t kFormatVersion = 1;

}  // namespace

LogisticRegression::LogisticRegression(LogisticRegressionConfig config)
    : config_(config) {
  if (config_.learning_rate <= 0.0)
    throw std::invalid_argument("LogisticRegression: learning_rate must be > 0");
  if (config_.epochs == 0)
    throw std::invalid_argument("LogisticRegression: epochs must be > 0");
  if (config_.l2 < 0.0)
    throw std::invalid_argument("LogisticRegression: l2 must be >= 0");
}

void LogisticRegression::fit(const Dataset& train) {
  train.validate();
  if (train.size() == 0)
    throw std::invalid_argument("LogisticRegression::fit: empty dataset");
  const std::size_t n = train.size();
  const std::size_t width = train.num_features();
  weights_.assign(width, 0.0);
  bias_ = 0.0;

  // Column-sweep epochs over the columnar storage.  Every scalar sum below
  // accumulates in the same element order as the old row-sweep (per-row
  // logits add columns ascending, per-column gradients add rows ascending),
  // so the fitted coefficients are bitwise identical — just cache-friendly.
  std::vector<double> z(n), err(n), grad(width);
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    std::fill(z.begin(), z.end(), bias_);
    for (std::size_t c = 0; c < width; ++c) {
      const ColumnView colc = train.col(c);
      const double w = weights_[c];
      for (std::size_t i = 0; i < n; ++i) z[i] += w * colc[i];
    }
    double grad_bias = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      err[i] = sigmoid(z[i]) - static_cast<double>(train.y[i]);
      grad_bias += err[i];
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t c = 0; c < width; ++c) {
      const ColumnView colc = train.col(c);
      double g = 0.0;
      for (std::size_t i = 0; i < n; ++i) g += err[i] * colc[i];
      grad[c] = g * inv_n + config_.l2 * weights_[c];
      weights_[c] -= config_.learning_rate * grad[c];
    }
    bias_ -= config_.learning_rate * grad_bias * inv_n;
  }
}

double LogisticRegression::logit(std::span<const double> features) const {
  if (features.size() != weights_.size())
    throw std::invalid_argument("LogisticRegression: feature width mismatch");
  double z = bias_;
  for (std::size_t c = 0; c < features.size(); ++c) z += weights_[c] * features[c];
  return z;
}

double LogisticRegression::predict_proba(std::span<const double> features) const {
  if (!trained()) throw std::logic_error("LogisticRegression: not trained");
  return sigmoid(logit(features));
}

void LogisticRegression::predict_proba_batch(BatchView batch,
                                             std::span<double> out) const {
  if (!trained()) throw std::logic_error("LogisticRegression: not trained");
  check_batch_out(batch, out);
  if (batch.cols() != weights_.size())
    throw std::invalid_argument("LogisticRegression: feature width mismatch");
  std::fill(out.begin(), out.end(), bias_);
  for (std::size_t c = 0; c < weights_.size(); ++c) {
    const ColumnView colc = batch.col(c);
    const double w = weights_[c];
    for (std::size_t r = 0; r < batch.rows(); ++r) out[r] += w * colc[r];
  }
  for (double& v : out) v = sigmoid(v);
}

std::vector<double> LogisticRegression::probability_gradient(
    std::span<const double> features) const {
  const double p = predict_proba(features);
  std::vector<double> grad(weights_.size());
  for (std::size_t c = 0; c < weights_.size(); ++c)
    grad[c] = p * (1.0 - p) * weights_[c];
  return grad;
}

std::vector<double> LogisticRegression::loss_gradient(
    std::span<const double> features, int target) const {
  if (target != 0 && target != 1)
    throw std::invalid_argument("LogisticRegression::loss_gradient: target must be 0/1");
  const double p = predict_proba(features);
  // d/dx BCE(sigmoid(w.x+b), t) = (p - t) * w
  std::vector<double> grad(weights_.size());
  for (std::size_t c = 0; c < weights_.size(); ++c)
    grad[c] = (p - static_cast<double>(target)) * weights_[c];
  return grad;
}

std::vector<std::uint8_t> LogisticRegression::serialize() const {
  util::ByteWriter w;
  w.write_string("LR");
  w.write_u8(kFormatVersion);
  w.write_f64(bias_);
  w.write_f64_vec(weights_);
  return w.take();
}

LogisticRegression LogisticRegression::deserialize(
    std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.read_string() != "LR")
    throw std::invalid_argument("LogisticRegression::deserialize: bad magic");
  if (r.read_u8() != kFormatVersion)
    throw std::invalid_argument("LogisticRegression::deserialize: bad version");
  LogisticRegression model;
  model.bias_ = r.read_f64();
  model.weights_ = r.read_f64_vec();
  return model;
}

std::unique_ptr<Classifier> LogisticRegression::clone_untrained() const {
  return std::make_unique<LogisticRegression>(config_);
}

}  // namespace drlhmd::ml
