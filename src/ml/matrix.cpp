#include "ml/matrix.hpp"

#include <stdexcept>
#include <string>

#include "util/parallel.hpp"

namespace drlhmd::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols_)
      throw std::invalid_argument("Matrix::from_rows: ragged input");
    for (std::size_t c = 0; c < m.cols_; ++c) m.at(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::row_vector(std::span<const double> values) {
  Matrix m(1, values.size());
  for (std::size_t c = 0; c < values.size(); ++c) m.at(0, c) = values[c];
  return m;
}

Matrix Matrix::randn(std::size_t rows, std::size_t cols, double stddev,
                     util::Rng& rng) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng.normal(0.0, stddev);
  return m;
}

void Matrix::require_same_shape(const Matrix& other, const char* op) const {
  if (!same_shape(other))
    throw std::invalid_argument(std::string("Matrix::") + op + ": shape mismatch (" +
                                std::to_string(rows_) + "x" + std::to_string(cols_) +
                                " vs " + std::to_string(other.rows_) + "x" +
                                std::to_string(other.cols_) + ")");
}

Matrix Matrix::matmul(const Matrix& other) const {
  if (cols_ != other.rows_)
    throw std::invalid_argument("Matrix::matmul: inner dimension mismatch");
  Matrix out(rows_, other.cols_);
  if (rows_ < kMatmulPackedMinDim || cols_ < kMatmulPackedMinDim ||
      other.cols_ < kMatmulPackedMinDim) {
    // Tiny product (single-sample inference etc.): skip the packing setup.
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const double a = at(i, k);
        if (a == 0.0) continue;
        const double* brow = other.data_.data() + k * other.cols_;
        double* orow = out.data_.data() + i * other.cols_;
        for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
      }
    }
    return out;
  }
  // Large product: the same i-outer / k-middle / j-inner loop as above —
  // each out(i, j) accumulates a(i, k) * b(k, j) over ascending k with the
  // same whole-row zero-skip, so results are bitwise identical to the tiny
  // path — parallelized over output rows.  The zero test sits on a(i, k)
  // once per B row, leaving the contiguous j sweep free to vectorize; rows
  // write only their own out slots, so the result is thread-count
  // invariant.
  const std::size_t n = other.cols_;
  const std::size_t depth = cols_;
  util::parallel_for("matrix.matmul", 0, rows_, kMatmulGrain,
                     [&](std::size_t i) {
                       const double* arow = data_.data() + i * depth;
                       double* orow = out.data_.data() + i * n;
                       for (std::size_t k = 0; k < depth; ++k) {
                         const double a = arow[k];
                         if (a == 0.0) continue;
                         const double* brow = other.data_.data() + k * n;
                         for (std::size_t j = 0; j < n; ++j)
                           orow[j] += a * brow[j];
                       }
                     });
  return out;
}

Matrix Matrix::transpose_matmul(const Matrix& other) const {
  if (rows_ != other.rows_)
    throw std::invalid_argument("Matrix::transpose_matmul: row mismatch");
  Matrix out(cols_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* arow = data_.data() + r * cols_;
    const double* brow = other.data_.data() + r * other.cols_;
    for (std::size_t i = 0; i < cols_; ++i) {
      const double a = arow[i];
      if (a == 0.0) continue;
      double* orow = out.data_.data() + i * other.cols_;
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::matmul_transpose(const Matrix& other) const {
  if (cols_ != other.cols_)
    throw std::invalid_argument("Matrix::matmul_transpose: column mismatch");
  Matrix out(rows_, other.rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* arow = data_.data() + i * cols_;
    for (std::size_t j = 0; j < other.rows_; ++j) {
      const double* brow = other.data_.data() + j * other.cols_;
      double acc = 0.0;
      for (std::size_t k = 0; k < cols_; ++k) acc += arow[k] * brow[k];
      out.at(i, j) = acc;
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  require_same_shape(other, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  require_same_shape(other, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Matrix Matrix::operator+(const Matrix& other) const {
  Matrix out = *this;
  out += other;
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  Matrix out = *this;
  out -= other;
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  out *= s;
  return out;
}

Matrix Matrix::hadamard(const Matrix& other) const {
  require_same_shape(other, "hadamard");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

Matrix& Matrix::add_row_broadcast(const Matrix& row_vec) {
  if (row_vec.rows_ != 1 || row_vec.cols_ != cols_)
    throw std::invalid_argument("Matrix::add_row_broadcast: need 1 x cols vector");
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) at(r, c) += row_vec.at(0, c);
  return *this;
}

Matrix Matrix::column_sums() const {
  Matrix out(1, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out.at(0, c) += at(r, c);
  return out;
}

}  // namespace drlhmd::ml
