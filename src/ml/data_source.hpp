// Streaming data-plane contract: labeled feature rows exposed shard by
// shard instead of as one monolithic in-RAM Dataset.
//
// A DataSource hands out one zero-copy BatchView (plus a label span) per
// shard; global row order is shard order (shard 0's rows first, then shard
// 1's, ...).  Trainers that can stream — the scaler's moment pass, MI
// selection's per-column histograms, the tree learners' column sorts, the
// networks' minibatch gathers — consume this interface, and the classic
// in-RAM path is the one-shard special case (DatasetSource), so streamed
// and monolithic training share a single code path and stay bit-for-bit
// identical.
//
// Access helpers layered on top:
//   * ColumnAccess — lazily materializes one global column at a time
//     (thread-safe, once per column) with a zero-copy fast path when the
//     source has exactly one shard.  Tree learners sort columns through it.
//   * RowLocator — maps a global row index to (shard, local row) so the
//     minibatch trainers can gather shuffled rows without a full matrix.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/feature_matrix.hpp"

namespace drlhmd::ml {

class DataSource {
 public:
  virtual ~DataSource() = default;

  virtual std::size_t num_shards() const = 0;
  /// Total rows across all shards.
  virtual std::size_t rows() const = 0;
  virtual std::size_t num_features() const = 0;
  virtual const std::vector<std::string>& feature_names() const = 0;

  /// Zero-copy view over shard s's feature block (column-major).
  virtual BatchView shard(std::size_t s) const = 0;
  /// Labels for shard s, aligned with shard(s)'s rows.
  virtual std::span<const int> labels(std::size_t s) const = 0;

  std::size_t shard_rows(std::size_t s) const { return shard(s).rows(); }

  /// Copy global column c (all shards, shard order) into `out`
  /// (out.size() must equal rows()).  Pure read — safe to call
  /// concurrently from parallel chunks.
  void column_into(std::size_t c, std::span<double> out) const;

  /// Throws std::invalid_argument on label values outside {0, 1} or a
  /// shard whose label span disagrees with its row count.
  void validate() const;
};

/// The whole source materialized as one in-RAM Dataset (shard order).
Dataset materialize(const DataSource& src);

/// Materialize only the listed feature columns (in the given order) —
/// the selection-aware path: after MI keeps k of `width` columns, RAM
/// holds k*rows doubles instead of width*rows.
Dataset materialize_columns(const DataSource& src,
                            std::span<const std::size_t> columns);

/// Thin adapter: one in-RAM Dataset viewed as a single-shard source.
/// Everything is zero-copy, so a streamed trainer fed through this adapter
/// reads exactly the bytes the monolithic path would have read.
class DatasetSource final : public DataSource {
 public:
  explicit DatasetSource(const Dataset& data) : data_(&data) {}

  std::size_t num_shards() const override { return 1; }
  std::size_t rows() const override { return data_->size(); }
  std::size_t num_features() const override { return data_->num_features(); }
  const std::vector<std::string>& feature_names() const override {
    return data_->feature_names;
  }
  BatchView shard(std::size_t) const override { return data_->view(); }
  std::span<const int> labels(std::size_t) const override { return data_->y; }

 private:
  const Dataset* data_;
};

/// Lazy global-column cache over a DataSource.
//
// col(c) returns the concatenated column (shard order); for a one-shard
// source it aliases the shard's storage directly (zero copy), otherwise the
// column is materialized on first use and cached.  Materialization is
// guarded by a per-column std::once_flag so concurrent tree fits (the
// random forest trains trees in parallel against one shared ColumnAccess)
// race-freely share the cache.  Labels are concatenated the same way.
class ColumnAccess {
 public:
  explicit ColumnAccess(const DataSource& src);

  std::size_t rows() const { return rows_; }
  std::size_t num_features() const { return cols_; }

  std::span<const double> col(std::size_t c) const;
  std::span<const int> labels() const { return labels_; }
  int label(std::size_t r) const { return labels_[r]; }

 private:
  const DataSource* src_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  bool single_shard_ = false;
  std::span<const int> labels_;
  std::vector<int> label_storage_;  // multi-shard only
  mutable std::vector<std::vector<double>> columns_;
  std::unique_ptr<std::once_flag[]> column_once_;
};

/// Global-row → (shard, local-row) resolver for minibatch gathers.
class RowLocator {
 public:
  explicit RowLocator(const DataSource& src);

  std::size_t rows() const { return offsets_.empty() ? 0 : offsets_.back(); }
  std::size_t num_features() const { return cols_; }

  double at(std::size_t row, std::size_t c) const {
    const Loc loc = locate(row);
    return views_[loc.shard].at(loc.local, c);
  }
  int label(std::size_t row) const {
    const Loc loc = locate(row);
    return labels_[loc.shard][loc.local];
  }

 private:
  struct Loc {
    std::size_t shard, local;
  };
  Loc locate(std::size_t row) const;

  std::size_t cols_ = 0;
  std::vector<BatchView> views_;
  std::vector<std::span<const int>> labels_;
  std::vector<std::size_t> offsets_;  // offsets_[s] = end row of shard s
};

}  // namespace drlhmd::ml
