#include "ml/data_source.hpp"

#include <algorithm>
#include <stdexcept>

namespace drlhmd::ml {

void DataSource::column_into(std::size_t c, std::span<double> out) const {
  if (c >= num_features())
    throw std::out_of_range("DataSource::column_into: bad column");
  if (out.size() != rows())
    throw std::invalid_argument("DataSource::column_into: bad out size");
  std::size_t at = 0;
  for (std::size_t s = 0; s < num_shards(); ++s) {
    const ColumnView col = shard(s).col(c);
    std::copy(col.begin(), col.end(), out.begin() + static_cast<std::ptrdiff_t>(at));
    at += col.size();
  }
}

void DataSource::validate() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < num_shards(); ++s) {
    const BatchView view = shard(s);
    const std::span<const int> y = labels(s);
    if (y.size() != view.rows())
      throw std::invalid_argument("DataSource: shard label/row count mismatch");
    if (view.cols() != num_features())
      throw std::invalid_argument("DataSource: shard width mismatch");
    for (int label : y)
      if (label != 0 && label != 1)
        throw std::invalid_argument("DataSource: labels must be 0 or 1");
    total += view.rows();
  }
  if (total != rows())
    throw std::invalid_argument("DataSource: shard rows do not sum to rows()");
}

Dataset materialize(const DataSource& src) {
  Dataset out;
  out.feature_names = src.feature_names();
  const std::size_t n = src.rows();
  const std::size_t width = src.num_features();
  out.X = FeatureMatrix(n, width);
  out.y.reserve(n);
  std::size_t at = 0;
  for (std::size_t s = 0; s < src.num_shards(); ++s) {
    const BatchView view = src.shard(s);
    for (std::size_t c = 0; c < width; ++c) {
      const ColumnView col = view.col(c);
      std::span<double> dst = out.X.col(c).subspan(at, col.size());
      std::copy(col.begin(), col.end(), dst.begin());
    }
    const std::span<const int> y = src.labels(s);
    out.y.insert(out.y.end(), y.begin(), y.end());
    at += view.rows();
  }
  return out;
}

Dataset materialize_columns(const DataSource& src,
                            std::span<const std::size_t> columns) {
  const std::size_t width = src.num_features();
  const auto& names = src.feature_names();
  Dataset out;
  for (std::size_t c : columns) {
    if (c >= width)
      throw std::out_of_range("materialize_columns: bad column index");
    if (c < names.size()) out.feature_names.push_back(names[c]);
  }
  const std::size_t n = src.rows();
  out.X = FeatureMatrix(n, columns.size());
  out.y.reserve(n);
  std::size_t at = 0;
  for (std::size_t s = 0; s < src.num_shards(); ++s) {
    const BatchView view = src.shard(s);
    for (std::size_t k = 0; k < columns.size(); ++k) {
      const ColumnView col = view.col(columns[k]);
      std::span<double> dst = out.X.col(k).subspan(at, col.size());
      std::copy(col.begin(), col.end(), dst.begin());
    }
    const std::span<const int> y = src.labels(s);
    out.y.insert(out.y.end(), y.begin(), y.end());
    at += view.rows();
  }
  return out;
}

ColumnAccess::ColumnAccess(const DataSource& src)
    : src_(&src),
      rows_(src.rows()),
      cols_(src.num_features()),
      single_shard_(src.num_shards() == 1) {
  if (single_shard_) {
    labels_ = src.labels(0);
  } else {
    label_storage_.reserve(rows_);
    for (std::size_t s = 0; s < src.num_shards(); ++s) {
      const std::span<const int> y = src.labels(s);
      label_storage_.insert(label_storage_.end(), y.begin(), y.end());
    }
    labels_ = label_storage_;
    columns_.resize(cols_);
    column_once_ = std::make_unique<std::once_flag[]>(cols_);
  }
}

std::span<const double> ColumnAccess::col(std::size_t c) const {
  if (c >= cols_) throw std::out_of_range("ColumnAccess::col: bad column");
  if (single_shard_) return src_->shard(0).col(c);
  std::call_once(column_once_[c], [&] {
    columns_[c].resize(rows_);
    src_->column_into(c, columns_[c]);
  });
  return columns_[c];
}

RowLocator::RowLocator(const DataSource& src) : cols_(src.num_features()) {
  const std::size_t n_shards = src.num_shards();
  views_.reserve(n_shards);
  labels_.reserve(n_shards);
  offsets_.reserve(n_shards);
  std::size_t end = 0;
  for (std::size_t s = 0; s < n_shards; ++s) {
    views_.push_back(src.shard(s));
    labels_.push_back(src.labels(s));
    end += views_.back().rows();
    offsets_.push_back(end);
  }
}

RowLocator::Loc RowLocator::locate(std::size_t row) const {
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), row);
  const std::size_t s = static_cast<std::size_t>(it - offsets_.begin());
  const std::size_t begin = s == 0 ? 0 : offsets_[s - 1];
  return {s, row - begin};
}

}  // namespace drlhmd::ml
