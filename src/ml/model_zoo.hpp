// Factory for the paper's detector ensemble: five classical ML models
// (RF, DT, LR, MLP, LightGBM) plus the NN, in the order Table 2 reports.
#pragma once

#include <memory>
#include <vector>

#include "ml/classifier.hpp"

namespace drlhmd::ml {

enum class ModelKind : std::uint8_t { kRf, kDt, kLr, kMlp, kLightGbm, kNn };

/// Construct one untrained model with the library's default hyperparameters.
std::unique_ptr<Classifier> make_model(ModelKind kind, std::uint64_t seed = 0);

/// The five classical models (Table 2 order: RF, DT, LR, MLP, LightGBM).
/// These are the models the constraint-aware controller schedules.
std::vector<std::unique_ptr<Classifier>> make_classical_models(std::uint64_t seed = 0);

/// All six detectors (classical + NN), Table 2 order.
std::vector<std::unique_ptr<Classifier>> make_all_models(std::uint64_t seed = 0);

/// Magic tag at the head of a serialized model ("RF", "DT", "LR", "MLP",
/// "GBDT", "NN").  Throws on unrecognized bytes.
std::string classifier_magic(std::span<const std::uint8_t> bytes);

/// Polymorphic load path: inspect the magic tag of `bytes` (produced by any
/// Classifier::serialize()) and round-trip it through the matching
/// concrete deserializer.  The returned model is inference-ready and
/// re-serializes to byte-identical output.
std::unique_ptr<Classifier> load_classifier(std::span<const std::uint8_t> bytes);

}  // namespace drlhmd::ml
