#include "ml/dataset.hpp"

#include <stdexcept>

#include "util/serialize.hpp"

namespace drlhmd::ml {

std::size_t Dataset::count_label(int label) const {
  std::size_t n = 0;
  for (int v : y) n += (v == label) ? 1 : 0;
  return n;
}

std::vector<std::vector<double>> Dataset::rows_copy() const {
  std::vector<std::vector<double>> rows;
  rows.reserve(size());
  for (std::size_t r = 0; r < size(); ++r) rows.push_back(row_copy(r));
  return rows;
}

void Dataset::push(std::span<const double> features, int label) {
  X.push_row(features);
  y.push_back(label);
}

void Dataset::push_from(const Dataset& src, std::size_t r) {
  X.push_row_from(src.X, r);
  y.push_back(src.y[r]);
}

void Dataset::append(const Dataset& other) {
  if (other.size() == 0) return;
  if (size() > 0 && other.num_features() != num_features())
    throw std::invalid_argument("Dataset::append: feature-space mismatch");
  if (!feature_names.empty() && !other.feature_names.empty() &&
      feature_names != other.feature_names)
    throw std::invalid_argument("Dataset::append: feature_names mismatch");
  X.append(other.X);
  y.insert(y.end(), other.y.begin(), other.y.end());
  if (feature_names.empty()) feature_names = other.feature_names;
}

void Dataset::shuffle(util::Rng& rng) {
  for (std::size_t i = size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.next_below(i));
    X.swap_rows(i - 1, j);
    std::swap(y[i - 1], y[j]);
  }
}

Dataset Dataset::select_features(std::span<const std::size_t> indices) const {
  Dataset out;
  out.y = y;
  for (std::size_t idx : indices) {
    if (idx >= num_features())
      throw std::out_of_range("Dataset::select_features: index out of range");
    if (!feature_names.empty()) out.feature_names.push_back(feature_names[idx]);
  }
  out.X = X.select_columns(indices);
  return out;
}

void Dataset::validate() const {
  if (size() != y.size())
    throw std::invalid_argument("Dataset: X/y size mismatch");
  for (int label : y)
    if (label != 0 && label != 1)
      throw std::invalid_argument("Dataset: labels must be 0 or 1");
  if (!feature_names.empty() && feature_names.size() != num_features())
    throw std::invalid_argument("Dataset: feature_names width mismatch");
}

std::vector<std::uint8_t> Dataset::serialize() const {
  validate();
  util::ByteWriter w;
  w.write_string("DSET");
  w.write_u8(1);  // format version
  w.write_u64(feature_names.size());
  for (const auto& name : feature_names) w.write_string(name);
  w.write_u64(size());
  w.write_u64(num_features());
  for (std::size_t i = 0; i < size(); ++i) {
    w.write_i64(y[i]);
    for (std::size_t c = 0; c < num_features(); ++c) w.write_f64(X.at(i, c));
  }
  return w.take();
}

Dataset Dataset::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.read_string() != "DSET")
    throw std::invalid_argument("Dataset::deserialize: bad magic");
  if (r.read_u8() != 1)
    throw std::invalid_argument("Dataset::deserialize: bad version");
  Dataset data;
  const std::uint64_t n_names = r.read_u64();
  data.feature_names.reserve(static_cast<std::size_t>(n_names));
  for (std::uint64_t i = 0; i < n_names; ++i)
    data.feature_names.push_back(r.read_string());
  const std::uint64_t rows = r.read_u64();
  const std::uint64_t cols = r.read_u64();
  data.X = FeatureMatrix(static_cast<std::size_t>(rows),
                         static_cast<std::size_t>(cols));
  data.y.reserve(static_cast<std::size_t>(rows));
  for (std::uint64_t i = 0; i < rows; ++i) {
    data.y.push_back(static_cast<int>(r.read_i64()));
    for (std::uint64_t c = 0; c < cols; ++c)
      data.X.at(static_cast<std::size_t>(i), static_cast<std::size_t>(c)) =
          r.read_f64();
  }
  data.validate();
  return data;
}

TrainTestSplit stratified_split(const Dataset& data, double test_fraction,
                                util::Rng& rng) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0)
    throw std::invalid_argument("stratified_split: test_fraction out of (0,1)");
  data.validate();

  TrainTestSplit split;
  split.train.feature_names = data.feature_names;
  split.test.feature_names = data.feature_names;

  for (int label : {0, 1}) {
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < data.size(); ++i)
      if (data.y[i] == label) indices.push_back(i);
    rng.shuffle(indices);
    const auto n_test = static_cast<std::size_t>(
        static_cast<double>(indices.size()) * test_fraction);
    for (std::size_t k = 0; k < indices.size(); ++k) {
      Dataset& dst = (k < n_test) ? split.test : split.train;
      dst.X.push_row_from(data.X, indices[k]);
      dst.y.push_back(label);
    }
  }
  split.train.shuffle(rng);
  split.test.shuffle(rng);
  return split;
}

TrainValTest paper_protocol_split(const Dataset& data, util::Rng& rng) {
  TrainTestSplit outer = stratified_split(data, 0.2, rng);
  TrainTestSplit inner = stratified_split(outer.train, 0.2, rng);
  return TrainValTest{std::move(inner.train), std::move(inner.test),
                      std::move(outer.test)};
}

}  // namespace drlhmd::ml
