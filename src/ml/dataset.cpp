#include "ml/dataset.hpp"

#include <stdexcept>

namespace drlhmd::ml {

std::size_t Dataset::count_label(int label) const {
  std::size_t n = 0;
  for (int v : y) n += (v == label) ? 1 : 0;
  return n;
}

void Dataset::push(std::vector<double> features, int label) {
  X.push_back(std::move(features));
  y.push_back(label);
}

void Dataset::append(const Dataset& other) {
  if (!other.X.empty() && !X.empty() && other.num_features() != num_features())
    throw std::invalid_argument("Dataset::append: feature-space mismatch");
  X.insert(X.end(), other.X.begin(), other.X.end());
  y.insert(y.end(), other.y.begin(), other.y.end());
}

void Dataset::shuffle(util::Rng& rng) {
  for (std::size_t i = X.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.next_below(i));
    std::swap(X[i - 1], X[j]);
    std::swap(y[i - 1], y[j]);
  }
}

Dataset Dataset::select_features(std::span<const std::size_t> indices) const {
  Dataset out;
  out.y = y;
  for (std::size_t idx : indices) {
    if (idx >= num_features())
      throw std::out_of_range("Dataset::select_features: index out of range");
    if (!feature_names.empty()) out.feature_names.push_back(feature_names[idx]);
  }
  out.X.reserve(X.size());
  for (const auto& row : X) {
    std::vector<double> selected;
    selected.reserve(indices.size());
    for (std::size_t idx : indices) selected.push_back(row[idx]);
    out.X.push_back(std::move(selected));
  }
  return out;
}

void Dataset::validate() const {
  if (X.size() != y.size())
    throw std::invalid_argument("Dataset: X/y size mismatch");
  const std::size_t width = num_features();
  for (const auto& row : X)
    if (row.size() != width) throw std::invalid_argument("Dataset: ragged rows");
  for (int label : y)
    if (label != 0 && label != 1)
      throw std::invalid_argument("Dataset: labels must be 0 or 1");
  if (!feature_names.empty() && feature_names.size() != width)
    throw std::invalid_argument("Dataset: feature_names width mismatch");
}

TrainTestSplit stratified_split(const Dataset& data, double test_fraction,
                                util::Rng& rng) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0)
    throw std::invalid_argument("stratified_split: test_fraction out of (0,1)");
  data.validate();

  TrainTestSplit split;
  split.train.feature_names = data.feature_names;
  split.test.feature_names = data.feature_names;

  for (int label : {0, 1}) {
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < data.size(); ++i)
      if (data.y[i] == label) indices.push_back(i);
    rng.shuffle(indices);
    const auto n_test = static_cast<std::size_t>(
        static_cast<double>(indices.size()) * test_fraction);
    for (std::size_t k = 0; k < indices.size(); ++k) {
      Dataset& dst = (k < n_test) ? split.test : split.train;
      dst.push(data.X[indices[k]], label);
    }
  }
  split.train.shuffle(rng);
  split.test.shuffle(rng);
  return split;
}

TrainValTest paper_protocol_split(const Dataset& data, util::Rng& rng) {
  TrainTestSplit outer = stratified_split(data, 0.2, rng);
  TrainTestSplit inner = stratified_split(outer.train, 0.2, rng);
  return TrainValTest{std::move(inner.train), std::move(inner.test),
                      std::move(outer.test)};
}

}  // namespace drlhmd::ml
