// Mutual-information feature selection (paper Section 2.1):
//   I(X; Y) = H(X) + H(Y) - H(X, Y)
// estimated by equal-frequency discretization of each continuous feature,
// then ranking features by I and keeping the top-k (the paper keeps the top
// four HPC events).
//
// The estimator streams: features are visited one at a time through a
// DataSource, with at most one materialized column (plus its bin ids) in
// RAM at any moment — peak memory is O(rows), not O(rows * width) — and a
// single-shard source reads its column zero-copy, so the in-RAM Dataset
// overloads are the one-shard special case of the same code path and agree
// bit for bit.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ml/data_source.hpp"
#include "ml/dataset.hpp"

namespace drlhmd::ml {

struct MutualInfoResult {
  std::vector<double> scores;            // nats, one per feature
  std::vector<std::size_t> ranking;      // feature indices, best first
};

/// Estimate I(feature; label) for every feature, shard by shard.  `bins` is
/// the number of equal-frequency buckets used to discretize each feature.
MutualInfoResult mutual_information(const DataSource& data,
                                    std::size_t bins = 16);
MutualInfoResult mutual_information(const Dataset& data, std::size_t bins = 16);

/// Indices of the top-k features by MI (k clamped to the feature count).
std::vector<std::size_t> select_top_k_features(const DataSource& data,
                                               std::size_t k,
                                               std::size_t bins = 16);
std::vector<std::size_t> select_top_k_features(const Dataset& data, std::size_t k,
                                               std::size_t bins = 16);

}  // namespace drlhmd::ml
