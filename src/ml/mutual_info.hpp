// Mutual-information feature selection (paper Section 2.1):
//   I(X; Y) = H(X) + H(Y) - H(X, Y)
// estimated by equal-frequency discretization of each continuous feature,
// then ranking features by I and keeping the top-k (the paper keeps the top
// four HPC events).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace drlhmd::ml {

struct MutualInfoResult {
  std::vector<double> scores;            // nats, one per feature
  std::vector<std::size_t> ranking;      // feature indices, best first
};

/// Estimate I(feature; label) for every feature.  `bins` is the number of
/// equal-frequency buckets used to discretize each feature.
MutualInfoResult mutual_information(const Dataset& data, std::size_t bins = 16);

/// Indices of the top-k features by MI (k clamped to the feature count).
std::vector<std::size_t> select_top_k_features(const Dataset& data, std::size_t k,
                                               std::size_t bins = 16);

}  // namespace drlhmd::ml
