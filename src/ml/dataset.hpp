// Labeled tabular dataset container with the split discipline the paper
// uses: 80:20 train/test, then a further 80:20 of train into train/val.
//
// Storage is columnar: features live in a FeatureMatrix (contiguous
// column-major block), so batch consumers — scaler, MI selection, the
// detectors' predict_proba_batch — read whole columns as contiguous spans
// and row batches travel as zero-copy BatchViews (`data.X.view()`).  The
// row-oriented accessors (row_copy, gather_row, push) are thin adapters
// kept for compatibility; hot paths should not go row-at-a-time.
//
// Rectangularity is enforced at construction: FeatureMatrix rejects
// ragged rows at push time, so num_features() is always trustworthy.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "ml/feature_matrix.hpp"
#include "util/rng.hpp"

namespace drlhmd::ml {

/// Binary labels used throughout: 1 = malware (positive class), 0 = benign.
struct Dataset {
  FeatureMatrix X;  // columnar feature block (column-major)
  std::vector<int> y;
  std::vector<std::string> feature_names;

  std::size_t size() const { return X.rows(); }
  std::size_t num_features() const { return X.cols(); }
  std::size_t count_label(int label) const;

  /// Feature value of row r, column c.
  double at(std::size_t r, std::size_t c) const { return X.at(r, c); }
  /// One feature column as a contiguous span.
  ColumnView col(std::size_t c) const { return X.col(c); }
  /// Zero-copy view over all rows.
  BatchView view() const { return X.view(); }

  /// Row adapters (copying): for span-of-row consumers only.
  std::vector<double> row_copy(std::size_t r) const { return X.row_copy(r); }
  void gather_row(std::size_t r, std::span<double> out) const {
    X.gather_row(r, out);
  }
  /// All rows materialized as vectors (compatibility adapter for legacy
  /// row-oriented consumers; hot paths should use view()).
  std::vector<std::vector<double>> rows_copy() const;

  void push(std::span<const double> features, int label);
  void push(std::initializer_list<double> features, int label) {
    push(std::span<const double>(features.begin(), features.size()), label);
  }
  /// Append row r of `src` (no intermediate row vector).
  void push_from(const Dataset& src, std::size_t r);

  /// Append all rows of another dataset.  Throws std::invalid_argument if
  /// the feature spaces disagree: mismatched column counts, or mismatched
  /// feature_names when both sides carry names (an unnamed side is
  /// compatible with anything of the same width).
  void append(const Dataset& other);
  void shuffle(util::Rng& rng);

  /// Keep only the listed feature columns (in the given order).
  Dataset select_features(std::span<const std::size_t> indices) const;

  /// Throws std::invalid_argument on bad labels or size mismatch between
  /// X and y.  (Ragged rows cannot exist: FeatureMatrix rejects them at
  /// construction.)
  void validate() const;

  /// Exact binary round trip (feature values preserved bit-for-bit, unlike
  /// the CSV path).  Used for checkpoint artifacts.
  std::vector<std::uint8_t> serialize() const;
  static Dataset deserialize(std::span<const std::uint8_t> bytes);
};

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Stratified split preserving class proportions. `test_fraction` in (0,1).
TrainTestSplit stratified_split(const Dataset& data, double test_fraction,
                                util::Rng& rng);

/// The paper's full protocol: 80:20 train/test, then 80:20 train/val.
struct TrainValTest {
  Dataset train;
  Dataset val;
  Dataset test;
};
TrainValTest paper_protocol_split(const Dataset& data, util::Rng& rng);

}  // namespace drlhmd::ml
