// Labeled tabular dataset container with the split discipline the paper
// uses: 80:20 train/test, then a further 80:20 of train into train/val.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace drlhmd::ml {

/// Binary labels used throughout: 1 = malware (positive class), 0 = benign.
struct Dataset {
  std::vector<std::vector<double>> X;
  std::vector<int> y;
  std::vector<std::string> feature_names;

  std::size_t size() const { return X.size(); }
  std::size_t num_features() const { return X.empty() ? 0 : X.front().size(); }
  std::size_t count_label(int label) const;

  void push(std::vector<double> features, int label);
  /// Append all rows of another dataset (feature spaces must match).
  void append(const Dataset& other);
  void shuffle(util::Rng& rng);

  /// Keep only the listed feature columns (in the given order).
  Dataset select_features(std::span<const std::size_t> indices) const;

  /// Throws std::invalid_argument on ragged rows, bad labels, or size
  /// mismatch between X and y.
  void validate() const;

  /// Exact binary round trip (feature values preserved bit-for-bit, unlike
  /// the CSV path).  Used for checkpoint artifacts.
  std::vector<std::uint8_t> serialize() const;
  static Dataset deserialize(std::span<const std::uint8_t> bytes);
};

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Stratified split preserving class proportions. `test_fraction` in (0,1).
TrainTestSplit stratified_split(const Dataset& data, double test_fraction,
                                util::Rng& rng);

/// The paper's full protocol: 80:20 train/test, then 80:20 train/val.
struct TrainValTest {
  Dataset train;
  Dataset val;
  Dataset test;
};
TrainValTest paper_protocol_split(const Dataset& data, util::Rng& rng);

}  // namespace drlhmd::ml
