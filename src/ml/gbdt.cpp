#include "ml/gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "ml/data_source.hpp"
#include "util/parallel.hpp"

namespace drlhmd::ml {
namespace {

constexpr std::uint8_t kFormatVersion = 1;

/// Leaf candidates at least this large scan features in parallel.  The
/// per-feature scan is unchanged (same histogram fill order, same bin scan
/// order) and the reduce walks features in ascending order with strict >,
/// so the chosen split is bitwise identical to the serial sweep.
constexpr std::size_t kParallelScanRows = 512;

double sigmoid(double z) {
  if (z >= 0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}

/// Quantile bin upper edges for one feature (ascending, deduplicated).
std::vector<double> make_bin_uppers(std::vector<double> values, std::size_t max_bins) {
  std::sort(values.begin(), values.end());
  std::vector<double> uppers;
  for (std::size_t b = 1; b <= max_bins; ++b) {
    const std::size_t q = (b * values.size()) / max_bins;
    if (q == 0) continue;
    const double v = values[q - 1];
    if (uppers.empty() || v > uppers.back()) uppers.push_back(v);
  }
  // The max value must map into the last bin.
  if (uppers.empty() || uppers.back() < values.back()) uppers.push_back(values.back());
  return uppers;
}

std::uint8_t bin_of(double v, const std::vector<double>& uppers) {
  // First bin whose upper edge >= v.
  const auto it = std::lower_bound(uppers.begin(), uppers.end(), v);
  const std::size_t idx = it == uppers.end() ? uppers.size() - 1
                                             : static_cast<std::size_t>(it - uppers.begin());
  return static_cast<std::uint8_t>(idx);
}

struct SplitDecision {
  double gain = 0.0;
  std::size_t feature = 0;
  std::size_t bin = 0;  // go left when binned value <= bin
  bool valid = false;
};

}  // namespace

Gbdt::Gbdt(GbdtConfig config) : config_(config) {
  if (config_.n_rounds == 0) throw std::invalid_argument("Gbdt: n_rounds must be > 0");
  if (config_.max_leaves < 2) throw std::invalid_argument("Gbdt: max_leaves must be >= 2");
  if (config_.max_bins < 2 || config_.max_bins > 256)
    throw std::invalid_argument("Gbdt: max_bins out of [2, 256]");
  if (config_.learning_rate <= 0.0)
    throw std::invalid_argument("Gbdt: learning_rate must be > 0");
  if (config_.lambda_l2 < 0.0) throw std::invalid_argument("Gbdt: lambda_l2 must be >= 0");
}

void Gbdt::fit(const Dataset& train) {
  train.validate();
  fit_stream(DatasetSource(train));
}

void Gbdt::fit_stream(const DataSource& train) {
  const std::size_t n = train.rows();
  if (n == 0) throw std::invalid_argument("Gbdt::fit: empty dataset");
  const std::size_t width = train.num_features();
  const bool single_shard = train.num_shards() == 1;

  // Labels concatenated once (shard order == global row order).
  std::vector<int> label_storage;
  std::span<const int> y;
  if (single_shard) {
    y = train.labels(0);
  } else {
    label_storage.reserve(n);
    for (std::size_t s = 0; s < train.num_shards(); ++s) {
      const std::span<const int> part = train.labels(s);
      label_storage.insert(label_storage.end(), part.begin(), part.end());
    }
    y = label_storage;
  }

  // Prior log-odds.
  std::size_t pos_count = 0;
  for (int label : y) pos_count += label == 1 ? 1 : 0;
  const double pos = static_cast<double>(pos_count);
  const double p0 = std::clamp(pos / static_cast<double>(n), 1e-6, 1.0 - 1e-6);
  base_score_ = std::log(p0 / (1.0 - p0));
  trees_.clear();

  // Histogram binning (column-major binned matrix).  Each feature's double
  // column is materialized into a chunk-local scratch, binned to 1-byte
  // codes, and dropped — after this pass the rest of the fit (including the
  // per-round raw-score update below) reads only the codes, so peak memory
  // is width*n bytes + one scratch column per worker, never the full double
  // matrix.
  std::vector<std::vector<double>> bin_uppers(width);
  std::vector<std::vector<std::uint8_t>> binned(width,
                                                std::vector<std::uint8_t>(n));
  util::parallel_for_chunks(
      "gbdt.binning", 0, width, 1,
      [&](std::size_t, std::size_t fb, std::size_t fe) {
        std::vector<double> scratch;
        for (std::size_t f = fb; f < fe; ++f) {
          std::span<const double> colf;
          if (single_shard) {
            colf = train.shard(0).col(f);  // zero-copy fast path
          } else {
            scratch.resize(n);
            train.column_into(f, scratch);
            colf = scratch;
          }
          bin_uppers[f] =
              make_bin_uppers({colf.begin(), colf.end()}, config_.max_bins);
          for (std::size_t i = 0; i < n; ++i)
            binned[f][i] = bin_of(colf[i], bin_uppers[f]);
        }
      });

  std::vector<double> raw(n, base_score_);
  std::vector<double> gradients(n), hessians(n);

  for (std::size_t round = 0; round < config_.n_rounds; ++round) {
    util::parallel_for("gbdt.gradients", 0, n, 0, [&](std::size_t i) {
      const double p = sigmoid(raw[i]);
      gradients[i] = p - static_cast<double>(y[i]);
      hessians[i] = std::max(p * (1.0 - p), 1e-12);
    });
    Tree tree = grow_tree(binned, bin_uppers, gradients, hessians, n);
    // Recover each internal node's split bin: grow_tree sets threshold to
    // exactly bin_uppers[feature][bin], so lower_bound lands on that bin.
    std::vector<std::size_t> node_bin(tree.size(), 0);
    for (std::size_t k = 0; k < tree.size(); ++k) {
      if (tree[k].feature == Node::kLeaf) continue;
      const std::vector<double>& uppers =
          bin_uppers[static_cast<std::size_t>(tree[k].feature)];
      node_bin[k] = static_cast<std::size_t>(
          std::lower_bound(uppers.begin(), uppers.end(), tree[k].threshold) -
          uppers.begin());
    }
    // Update raw scores by traversing the binned codes (each row touches
    // only its own slot).  Decision-identical to comparing the double value
    // against the threshold: v <= uppers[bin] iff bin_of(v) <= bin.
    util::parallel_for("gbdt.raw_update", 0, n, 0, [&](std::size_t i) {
      std::int32_t idx = 0;
      for (;;) {
        const Node& node = tree[static_cast<std::size_t>(idx)];
        if (node.feature == Node::kLeaf) {
          raw[i] += node.value;
          break;
        }
        const std::size_t f = static_cast<std::size_t>(node.feature);
        idx = binned[f][i] <= node_bin[static_cast<std::size_t>(idx)]
                  ? node.left
                  : node.right;
      }
    });
    trees_.push_back(std::move(tree));
  }
  trained_ = true;
  build_flat();
}

Gbdt::Tree Gbdt::grow_tree(const std::vector<std::vector<std::uint8_t>>& binned,
                           const std::vector<std::vector<double>>& bin_uppers,
                           std::span<const double> gradients,
                           std::span<const double> hessians,
                           std::size_t n_rows) const {
  const std::size_t width = binned.size();

  struct LeafCandidate {
    std::vector<std::size_t> rows;
    std::int32_t node_index;
    std::size_t depth;
    SplitDecision split;
    double sum_g = 0.0, sum_h = 0.0;
  };

  Tree tree;
  auto leaf_value = [&](double sum_g, double sum_h) {
    return -config_.learning_rate * sum_g / (sum_h + config_.lambda_l2);
  };
  auto score = [&](double sum_g, double sum_h) {
    return sum_g * sum_g / (sum_h + config_.lambda_l2);
  };

  auto find_best_split = [&](LeafCandidate& cand) {
    cand.split = SplitDecision{};
    if (cand.rows.size() < 2 * config_.min_samples_leaf) return;
    if (cand.depth >= config_.max_depth) return;
    const double parent_score = score(cand.sum_g, cand.sum_h);
    // Best split within one feature; histogram fill and bin scan orders
    // are fixed, so the result does not depend on where this runs.
    auto scan_feature = [&](std::size_t f) {
      SplitDecision best;
      const std::size_t n_bins = bin_uppers[f].size();
      if (n_bins < 2) return best;
      // Histogram accumulation.
      std::vector<double> hist_g(n_bins, 0.0), hist_h(n_bins, 0.0);
      std::vector<std::size_t> hist_n(n_bins, 0);
      for (std::size_t r : cand.rows) {
        const std::uint8_t b = binned[f][r];
        hist_g[b] += gradients[r];
        hist_h[b] += hessians[r];
        ++hist_n[b];
      }
      double left_g = 0.0, left_h = 0.0;
      std::size_t left_n = 0;
      for (std::size_t b = 0; b + 1 < n_bins; ++b) {
        left_g += hist_g[b];
        left_h += hist_h[b];
        left_n += hist_n[b];
        if (left_n < config_.min_samples_leaf) continue;
        if (cand.rows.size() - left_n < config_.min_samples_leaf) break;
        const double gain = score(left_g, left_h) +
                            score(cand.sum_g - left_g, cand.sum_h - left_h) -
                            parent_score;
        if (gain > best.gain && gain > config_.min_gain) {
          best.gain = gain;
          best.feature = f;
          best.bin = b;
          best.valid = true;
        }
      }
      return best;
    };
    std::vector<SplitDecision> per_feature;
    if (cand.rows.size() >= kParallelScanRows) {
      per_feature = util::parallel_map("gbdt.split_scan", 0, width, 1,
                                       scan_feature);
    } else {
      per_feature.reserve(width);
      for (std::size_t f = 0; f < width; ++f)
        per_feature.push_back(scan_feature(f));
    }
    // Ascending-feature reduce with strict >: picks the same (feature, bin)
    // the single-pass sweep would.
    for (const SplitDecision& d : per_feature) {
      if (d.valid && d.gain > cand.split.gain) cand.split = d;
    }
  };

  // Root candidate.
  LeafCandidate root;
  root.rows.resize(n_rows);
  for (std::size_t i = 0; i < n_rows; ++i) root.rows[i] = i;
  for (std::size_t i = 0; i < n_rows; ++i) {
    root.sum_g += gradients[i];
    root.sum_h += hessians[i];
  }
  root.node_index = 0;
  root.depth = 0;
  tree.emplace_back();
  tree[0].value = leaf_value(root.sum_g, root.sum_h);
  find_best_split(root);

  std::vector<LeafCandidate> leaves;
  leaves.push_back(std::move(root));
  std::size_t n_leaves = 1;

  while (n_leaves < config_.max_leaves) {
    // Leaf-wise growth: pick the candidate with the best gain.
    std::size_t best = leaves.size();
    double best_gain = config_.min_gain;
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      if (leaves[i].split.valid && leaves[i].split.gain > best_gain) {
        best_gain = leaves[i].split.gain;
        best = i;
      }
    }
    if (best == leaves.size()) break;

    LeafCandidate cand = std::move(leaves[best]);
    leaves.erase(leaves.begin() + static_cast<std::ptrdiff_t>(best));

    LeafCandidate left, right;
    left.depth = right.depth = cand.depth + 1;
    for (std::size_t r : cand.rows) {
      if (binned[cand.split.feature][r] <= cand.split.bin) {
        left.rows.push_back(r);
        left.sum_g += gradients[r];
        left.sum_h += hessians[r];
      } else {
        right.rows.push_back(r);
        right.sum_g += gradients[r];
        right.sum_h += hessians[r];
      }
    }

    // Convert the leaf into an internal node.
    Node& node = tree[static_cast<std::size_t>(cand.node_index)];
    node.feature = static_cast<std::int32_t>(cand.split.feature);
    node.threshold = bin_uppers[cand.split.feature][cand.split.bin];
    node.left = static_cast<std::int32_t>(tree.size());
    node.right = static_cast<std::int32_t>(tree.size() + 1);
    left.node_index = node.left;
    right.node_index = node.right;
    tree.emplace_back();
    tree.back().value = leaf_value(left.sum_g, left.sum_h);
    tree.emplace_back();
    tree.back().value = leaf_value(right.sum_g, right.sum_h);

    find_best_split(left);
    find_best_split(right);
    leaves.push_back(std::move(left));
    leaves.push_back(std::move(right));
    ++n_leaves;
  }

  return tree;
}

double Gbdt::raw_score(std::span<const double> features) const {
  if (!trained_) throw std::logic_error("Gbdt: not trained");
  double total = base_score_;
  for (const Tree& tree : trees_) {
    std::int32_t idx = 0;
    for (;;) {
      const Node& node = tree[static_cast<std::size_t>(idx)];
      if (node.feature == Node::kLeaf) {
        total += node.value;
        break;
      }
      if (static_cast<std::size_t>(node.feature) >= features.size())
        throw std::invalid_argument("Gbdt: feature width mismatch");
      idx = features[static_cast<std::size_t>(node.feature)] <= node.threshold
                ? node.left
                : node.right;
    }
  }
  return total;
}

double Gbdt::predict_proba(std::span<const double> features) const {
  return sigmoid(raw_score(features));
}

void Gbdt::build_flat() {
  flat_trees_.assign(trees_.size(), {});
  flat_depths_.assign(trees_.size(), 0);
  required_width_ = 0;
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    const Tree& tree = trees_[t];
    std::vector<FlatNode>& flat = flat_trees_[t];
    flat.assign(tree.size(), FlatNode{});
    for (std::uint32_t i = 0; i < tree.size(); ++i) {
      const Node& node = tree[i];
      if (node.feature == Node::kLeaf) {
        flat[i].kid[0] = flat[i].kid[1] = i;  // parked lane stays on its leaf
      } else {
        flat[i].feature = static_cast<std::uint32_t>(node.feature);
        flat[i].threshold = node.threshold;
        flat[i].kid[0] = static_cast<std::uint32_t>(node.left);
        flat[i].kid[1] = static_cast<std::uint32_t>(node.right);
        required_width_ = std::max(
            required_width_, static_cast<std::size_t>(node.feature) + 1);
      }
    }
    // Max root->leaf transition count: the lockstep sweep's trip count.
    std::size_t max_d = 0;
    std::vector<std::pair<std::int32_t, std::size_t>> stack{{0, 0}};
    while (!stack.empty()) {
      const auto [i, d] = stack.back();
      stack.pop_back();
      const Node& node = tree[static_cast<std::size_t>(i)];
      if (node.feature == Node::kLeaf) {
        max_d = std::max(max_d, d);
        continue;
      }
      stack.push_back({node.left, d + 1});
      stack.push_back({node.right, d + 1});
    }
    flat_depths_[t] = max_d;
  }

  std::vector<std::vector<KernelBuildNode>> forest(trees_.size());
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    const Tree& tree = trees_[t];
    forest[t].resize(tree.size());
    for (std::size_t i = 0; i < tree.size(); ++i) {
      const Node& node = tree[i];
      KernelBuildNode& dst = forest[t][i];
      if (node.feature == Node::kLeaf) {
        dst.leaf = true;
        dst.value = node.value;
      } else {
        dst.feature = static_cast<std::uint32_t>(node.feature);
        dst.threshold = node.threshold;
        dst.left = static_cast<std::uint32_t>(node.left);
        dst.right = static_cast<std::uint32_t>(node.right);
      }
    }
  }
  kernel_.build(forest);
}

void Gbdt::predict_proba_batch_fast(BatchView batch,
                                    std::span<double> out) const {
  if (!trained_) throw std::logic_error("Gbdt: not trained");
  check_batch_out(batch, out);
  if (!kernel_.ready()) {  // over the uint16 cut budget: exact fallback
    predict_proba_batch(batch, out);
    return;
  }
  std::fill(out.begin(), out.end(), base_score_);
  kernel_.accumulate(batch, out);
  for (double& v : out) v = sigmoid(v);
}

void Gbdt::raw_score_batch(BatchView batch, std::span<double> out) const {
  if (!trained_) throw std::logic_error("Gbdt: not trained");
  check_batch_out(batch, out);
  std::fill(out.begin(), out.end(), base_score_);
  if (batch.rows() == 0) return;
  // Width is validated once per call (precomputed by build_flat); the
  // traversal loop below carries no bounds check.
  if (required_width_ > batch.cols())
    throw std::invalid_argument("Gbdt: feature width mismatch");
  // Tree-outer, lockstep block-inner over the flat mirrors: per-row leaf
  // values accumulate in the exact tree order raw_score() uses, while up
  // to kLanes independent node->value load chains stay in flight per
  // block.  The sweep body has no data-dependent branch — the child is an
  // indexed load (kid[0/1]), leaves self-loop, and the trip count is the
  // tree's fixed depth (see DecisionTree::score_block).
  constexpr std::size_t kLanes = 16;
  const double* base = batch.col(0).data();
  const std::size_t stride = batch.stride();
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    const Tree& tree = trees_[t];
    if (tree[0].feature == Node::kLeaf) {  // stump round
      for (double& v : out) v += tree[0].value;
      continue;
    }
    const FlatNode* flat = flat_trees_[t].data();
    const std::size_t depth = flat_depths_[t];
    const Node* nodes = tree.data();
    for (std::size_t r0 = 0; r0 < batch.rows(); r0 += kLanes) {
      const std::size_t count = std::min(kLanes, batch.rows() - r0);
      std::uint32_t idx[kLanes];
      for (std::size_t l = 0; l < count; ++l) idx[l] = 0;
      if (count == kLanes) {
        for (std::size_t step = 0; step < depth; ++step) {
          for (std::size_t l = 0; l < kLanes; ++l) {
            const FlatNode& n = flat[idx[l]];
            const double v = base[n.feature * stride + r0 + l];
            idx[l] = n.kid[v <= n.threshold ? 0 : 1];
          }
        }
      } else {
        for (std::size_t step = 0; step < depth; ++step) {
          for (std::size_t l = 0; l < count; ++l) {
            const FlatNode& n = flat[idx[l]];
            const double v = base[n.feature * stride + r0 + l];
            idx[l] = n.kid[v <= n.threshold ? 0 : 1];
          }
        }
      }
      for (std::size_t l = 0; l < count; ++l) out[r0 + l] += nodes[idx[l]].value;
    }
  }
}

void Gbdt::predict_proba_batch(BatchView batch, std::span<double> out) const {
  raw_score_batch(batch, out);
  for (double& v : out) v = sigmoid(v);
}

std::vector<std::uint8_t> Gbdt::serialize() const {
  util::ByteWriter w;
  w.write_string("GBDT");
  w.write_u8(kFormatVersion);
  w.write_f64(base_score_);
  w.write_u64(trees_.size());
  for (const Tree& tree : trees_) {
    w.write_u64(tree.size());
    for (const Node& n : tree) {
      w.write_i64(n.feature);
      w.write_f64(n.threshold);
      w.write_i64(n.left);
      w.write_i64(n.right);
      w.write_f64(n.value);
    }
  }
  return w.take();
}

Gbdt Gbdt::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.read_string() != "GBDT")
    throw std::invalid_argument("Gbdt::deserialize: bad magic");
  if (r.read_u8() != kFormatVersion)
    throw std::invalid_argument("Gbdt::deserialize: bad version");
  Gbdt model;
  model.base_score_ = r.read_f64();
  const std::uint64_t n_trees = r.read_u64();
  model.trees_.resize(static_cast<std::size_t>(n_trees));
  for (auto& tree : model.trees_) {
    tree.resize(static_cast<std::size_t>(r.read_u64()));
    for (auto& n : tree) {
      n.feature = static_cast<std::int32_t>(r.read_i64());
      n.threshold = r.read_f64();
      n.left = static_cast<std::int32_t>(r.read_i64());
      n.right = static_cast<std::int32_t>(r.read_i64());
      n.value = r.read_f64();
    }
  }
  model.trained_ = true;
  model.build_flat();
  return model;
}

std::unique_ptr<Classifier> Gbdt::clone_untrained() const {
  return std::make_unique<Gbdt>(config_);
}

}  // namespace drlhmd::ml
