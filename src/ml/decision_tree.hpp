// CART decision tree with Gini impurity (binary classification).
//
// Also the building block for RandomForest, which enables per-split feature
// subsampling and bootstrap row weighting through the config.
#pragma once

#include "ml/classifier.hpp"

namespace drlhmd::ml {

struct DecisionTreeConfig {
  std::size_t max_depth = 12;
  std::size_t min_samples_split = 4;
  std::size_t min_samples_leaf = 2;
  /// 0 = consider all features at each split; otherwise sample this many.
  std::size_t max_features = 0;
  std::uint64_t seed = 13;
};

class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeConfig config = {});

  void fit(const Dataset& train) override;
  /// Fit with per-row multiplicities (bootstrap counts); rows with weight 0
  /// are ignored.  Used by RandomForest.
  void fit_weighted(const Dataset& train, std::span<const std::uint32_t> weights);

  double predict_proba(std::span<const double> features) const override;
  std::string name() const override { return "DT"; }
  std::vector<std::uint8_t> serialize() const override;
  std::unique_ptr<Classifier> clone_untrained() const override;
  bool trained() const override { return !nodes_.empty(); }

  static DecisionTree deserialize(std::span<const std::uint8_t> bytes);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t depth() const;

 private:
  struct Node {
    // Internal node when feature != kLeaf; children are indices into nodes_.
    static constexpr std::uint32_t kLeaf = 0xFFFFFFFFu;
    std::uint32_t feature = kLeaf;
    double threshold = 0.0;
    std::uint32_t left = 0;
    std::uint32_t right = 0;
    double proba = 0.0;  // P(malware) at leaf
  };

  std::uint32_t build(const Dataset& train, std::span<const std::uint32_t> weights,
                      std::vector<std::size_t>& rows, std::size_t depth,
                      util::Rng& rng);

  DecisionTreeConfig config_;
  std::vector<Node> nodes_;
};

}  // namespace drlhmd::ml
