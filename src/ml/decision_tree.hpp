// CART decision tree with Gini impurity (binary classification).
//
// Also the building block for RandomForest, which enables per-split feature
// subsampling and bootstrap row weighting through the config.
#pragma once

#include "ml/classifier.hpp"
#include "ml/forest_kernel.hpp"

namespace drlhmd::ml {

class ColumnAccess;

struct DecisionTreeConfig {
  std::size_t max_depth = 12;
  std::size_t min_samples_split = 4;
  std::size_t min_samples_leaf = 2;
  /// 0 = consider all features at each split; otherwise sample this many.
  std::size_t max_features = 0;
  std::uint64_t seed = 13;
};

class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeConfig config = {});

  void fit(const Dataset& train) override;
  /// Streamed fit: columns are pulled shard by shard through a lazy
  /// ColumnAccess.  The canonical training path — fit(Dataset) routes
  /// through it via the single-shard adapter (zero copy), so streamed and
  /// monolithic fits build byte-identical trees.
  void fit_stream(const DataSource& train) override;
  /// Fit with per-row multiplicities (bootstrap counts); rows with weight 0
  /// are ignored.  Used by RandomForest.
  void fit_weighted(const Dataset& train, std::span<const std::uint32_t> weights);
  /// Column-access flavor of fit_weighted; RandomForest shares one
  /// ColumnAccess (and its lazy column cache) across all member trees.
  void fit_weighted(const ColumnAccess& train,
                    std::span<const std::uint32_t> weights);

  double predict_proba(std::span<const double> features) const override;
  /// Block traversal: lanes of up to 16 rows walk the tree in lockstep so
  /// their dependent node loads overlap.  Bitwise identical to the row path.
  void predict_proba_batch(BatchView batch, std::span<double> out) const override;
  using Classifier::predict_proba_batch;
  /// out[r] += P(malware | batch row r).  RandomForest uses this to
  /// accumulate trees over a whole batch in row-path summation order.
  void accumulate_proba_batch(BatchView batch, std::span<double> out) const;
  /// Fast batch scoring.  A lone tree cannot amortize the kernel's
  /// per-tile encode stage, so this stays on the bitwise-exact FlatNode
  /// sweep — except when fuse_preprocess() has rewritten the kernel to
  /// consume raw columns, where the quantized kernel is the only correct
  /// reader (decisions exact; probabilities differ only by float leaf
  /// rounding).
  void predict_proba_batch_fast(BatchView batch,
                                std::span<double> out) const override;
  /// Append this tree's nodes in ForestKernel build form; RandomForest
  /// fuses all member trees into one ensemble kernel.
  void append_kernel_tree(std::vector<std::vector<KernelBuildNode>>& trees) const;
  /// Fuse scaler + feature selection into the kernel (see
  /// ForestKernel::fuse_preprocess): the fast path then consumes raw,
  /// unscaled batch columns.  The exact paths are unaffected.
  void fuse_preprocess(std::span<const double> mean,
                       std::span<const double> scale,
                       std::span<const std::uint32_t> columns) {
    kernel_.fuse_preprocess(mean, scale, columns);
  }
  const ForestKernel& kernel() const { return kernel_; }
  std::string name() const override { return "DT"; }
  std::vector<std::uint8_t> serialize() const override;
  std::unique_ptr<Classifier> clone_untrained() const override;
  bool trained() const override { return !nodes_.empty(); }

  static DecisionTree deserialize(std::span<const std::uint8_t> bytes);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t depth() const;

 private:
  struct Node {
    // Internal node when feature != kLeaf; children are indices into nodes_.
    static constexpr std::uint32_t kLeaf = 0xFFFFFFFFu;
    std::uint32_t feature = kLeaf;
    double threshold = 0.0;
    std::uint32_t left = 0;
    std::uint32_t right = 0;
    double proba = 0.0;  // P(malware) at leaf
  };

  std::uint32_t build(const ColumnAccess& train,
                      std::span<const std::uint32_t> weights,
                      std::vector<std::size_t>& rows, std::size_t depth,
                      util::Rng& rng);

  /// Batch traversal mirror of nodes_, rebuilt by fit/deserialize (never
  /// serialized).  Children sit in an indexable pair so the descent is a
  /// pure `idx = kid[v <= threshold ? 0 : 1]` — no select, no branch — and
  /// leaves self-loop (kid[0] == kid[1] == self, feature 0), so the sweep
  /// needs no leaf test: it just runs flat_depth_ levels and every lane
  /// parks on its leaf.
  struct FlatNode {
    std::uint32_t feature = 0;
    std::uint32_t kid[2] = {0, 0};
    double threshold = 0.0;
  };

  /// Rebuild flat_ / flat_depth_ / required_width_ from nodes_.
  void build_flat();

  /// Traverse rows [row0, row0 + count) in lockstep; count <= 16.  Writes
  /// (or adds to, when `accumulate`) out[row0 + l].
  void score_block(BatchView batch, std::size_t row0, std::size_t count,
                   std::span<double> out, bool accumulate) const;

  DecisionTreeConfig config_;
  std::vector<Node> nodes_;
  std::vector<FlatNode> flat_;
  ForestKernel kernel_;  // quantized mirror; rebuilt by fit/deserialize
  std::size_t flat_depth_ = 0;        // transitions from root to deepest leaf
  std::uint32_t required_width_ = 0;  // widest feature index + 1
};

}  // namespace drlhmd::ml
