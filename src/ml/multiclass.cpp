#include "ml/multiclass.hpp"

#include <stdexcept>

namespace drlhmd::ml {

std::size_t MulticlassDataset::count_class(std::size_t c) const {
  std::size_t n = 0;
  for (std::size_t label : y) n += label == c ? 1 : 0;
  return n;
}

void MulticlassDataset::push(std::span<const double> features,
                             std::size_t label) {
  X.push_row(features);
  y.push_back(label);
}

void MulticlassDataset::validate() const {
  if (X.rows() != y.size())
    throw std::invalid_argument("MulticlassDataset: X/y size mismatch");
  if (class_names.empty())
    throw std::invalid_argument("MulticlassDataset: no classes");
  // Ragged rows cannot exist: FeatureMatrix rejects them at construction.
  for (std::size_t label : y)
    if (label >= class_names.size())
      throw std::invalid_argument("MulticlassDataset: label out of range");
}

OneVsRestClassifier::OneVsRestClassifier(const Classifier& prototype)
    : prototype_(prototype) {}

void OneVsRestClassifier::fit(const MulticlassDataset& train) {
  train.validate();
  if (train.size() == 0)
    throw std::invalid_argument("OneVsRestClassifier::fit: empty dataset");

  members_.clear();
  class_names_ = train.class_names;
  for (std::size_t c = 0; c < train.num_classes(); ++c) {
    if (train.count_class(c) == 0)
      throw std::invalid_argument("OneVsRestClassifier::fit: class '" +
                                  train.class_names[c] + "' has no samples");
    Dataset binary;
    binary.X = train.X;
    binary.y.reserve(train.size());
    for (std::size_t label : train.y) binary.y.push_back(label == c ? 1 : 0);
    auto member = prototype_.clone_untrained();
    member->fit(binary);
    members_.push_back(std::move(member));
  }
}

std::vector<double> OneVsRestClassifier::scores(
    std::span<const double> features) const {
  if (!trained()) throw std::logic_error("OneVsRestClassifier: not trained");
  std::vector<double> out;
  out.reserve(members_.size());
  for (const auto& member : members_) out.push_back(member->predict_proba(features));
  return out;
}

std::size_t OneVsRestClassifier::predict(std::span<const double> features) const {
  const std::vector<double> s = scores(features);
  std::size_t best = 0;
  for (std::size_t c = 1; c < s.size(); ++c)
    if (s[c] > s[best]) best = c;
  return best;
}

MulticlassReport OneVsRestClassifier::evaluate(const MulticlassDataset& data) const {
  data.validate();
  if (data.num_classes() != members_.size())
    throw std::invalid_argument("OneVsRestClassifier::evaluate: class-count mismatch");

  MulticlassReport report;
  const std::size_t k = members_.size();
  report.confusion.assign(k, std::vector<std::size_t>(k, 0));
  // Batch-score every member over the whole set, then take per-row argmax
  // in member order — the same comparison sequence predict() runs per row.
  std::vector<std::vector<double>> member_scores(k);
  for (std::size_t c = 0; c < k; ++c)
    member_scores[c] = members_[c]->predict_proba_batch(data.X.view());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::size_t predicted = 0;
    for (std::size_t c = 1; c < k; ++c)
      if (member_scores[c][i] > member_scores[predicted][i]) predicted = c;
    ++report.confusion[data.y[i]][predicted];
    correct += predicted == data.y[i] ? 1 : 0;
  }
  report.accuracy = data.size() > 0
                        ? static_cast<double>(correct) / static_cast<double>(data.size())
                        : 0.0;

  report.per_class_recall.assign(k, 0.0);
  double recall_sum = 0.0;
  std::size_t classes_present = 0;
  for (std::size_t c = 0; c < k; ++c) {
    std::size_t total = 0;
    for (std::size_t p = 0; p < k; ++p) total += report.confusion[c][p];
    if (total == 0) continue;
    report.per_class_recall[c] =
        static_cast<double>(report.confusion[c][c]) / static_cast<double>(total);
    recall_sum += report.per_class_recall[c];
    ++classes_present;
  }
  report.macro_recall =
      classes_present > 0 ? recall_sum / static_cast<double>(classes_present) : 0.0;
  return report;
}

}  // namespace drlhmd::ml
