#include "ml/metrics.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/table.hpp"

namespace drlhmd::ml {

void ConfusionMatrix::add(int truth, int predicted) {
  if ((truth != 0 && truth != 1) || (predicted != 0 && predicted != 1))
    throw std::invalid_argument("ConfusionMatrix::add: labels must be 0/1");
  if (truth == 1) {
    predicted == 1 ? ++tp : ++fn;
  } else {
    predicted == 1 ? ++fp : ++tn;
  }
}

namespace {

double safe_div(double num, double den) { return den == 0.0 ? 0.0 : num / den; }

MetricReport from_confusion(ConfusionMatrix cm) {
  MetricReport m;
  m.confusion = cm;
  const auto tp = static_cast<double>(cm.tp);
  const auto fp = static_cast<double>(cm.fp);
  const auto tn = static_cast<double>(cm.tn);
  const auto fn = static_cast<double>(cm.fn);
  m.accuracy = safe_div(tp + tn, tp + tn + fp + fn);
  m.precision = safe_div(tp, tp + fp);
  m.recall = safe_div(tp, tp + fn);
  m.tpr = m.recall;
  m.fpr = safe_div(fp, fp + tn);
  m.fnr = safe_div(fn, fn + tp);
  m.tnr = safe_div(tn, tn + fp);
  m.f1 = safe_div(2.0 * m.precision * m.recall, m.precision + m.recall);
  return m;
}

}  // namespace

MetricReport evaluate_predictions(std::span<const int> truth,
                                  std::span<const int> predicted) {
  if (truth.size() != predicted.size())
    throw std::invalid_argument("evaluate_predictions: size mismatch");
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < truth.size(); ++i) cm.add(truth[i], predicted[i]);
  return from_confusion(cm);
}

MetricReport evaluate_scores(std::span<const int> truth,
                             std::span<const double> scores, double threshold) {
  if (truth.size() != scores.size())
    throw std::invalid_argument("evaluate_scores: size mismatch");
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < truth.size(); ++i)
    cm.add(truth[i], scores[i] >= threshold ? 1 : 0);
  MetricReport m = from_confusion(cm);
  m.auc = roc_auc(truth, scores);
  return m;
}

double roc_auc(std::span<const int> truth, std::span<const double> scores) {
  if (truth.size() != scores.size())
    throw std::invalid_argument("roc_auc: size mismatch");
  std::size_t n_pos = 0, n_neg = 0;
  for (int t : truth) (t == 1 ? n_pos : n_neg) += 1;
  if (n_pos == 0 || n_neg == 0) return 0.5;

  // Mann-Whitney U via average ranks (ties get midranks).
  std::vector<std::size_t> order(truth.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

  double rank_sum_pos = 0.0;
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double mid_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k)
      if (truth[order[k]] == 1) rank_sum_pos += mid_rank;
    i = j + 1;
  }
  const double u = rank_sum_pos -
                   static_cast<double>(n_pos) * (static_cast<double>(n_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

std::vector<std::string> metric_row(const MetricReport& m) {
  using util::Table;
  return {Table::fmt(m.accuracy), Table::fmt(m.f1),  Table::fmt(m.auc),
          Table::fmt(m.tpr),      Table::fmt(m.fpr), Table::fmt(m.fnr),
          Table::fmt(m.tnr)};
}

std::vector<std::string> metric_header() {
  return {"ACC", "F1", "AUC", "TPR", "FPR", "FNR", "TNR"};
}

void write_metric_report(util::ByteWriter& w, const MetricReport& m) {
  w.write_f64(m.accuracy);
  w.write_f64(m.precision);
  w.write_f64(m.recall);
  w.write_f64(m.f1);
  w.write_f64(m.auc);
  w.write_f64(m.tpr);
  w.write_f64(m.fpr);
  w.write_f64(m.fnr);
  w.write_f64(m.tnr);
  w.write_u64(m.confusion.tp);
  w.write_u64(m.confusion.fp);
  w.write_u64(m.confusion.tn);
  w.write_u64(m.confusion.fn);
}

MetricReport read_metric_report(util::ByteReader& r) {
  MetricReport m;
  m.accuracy = r.read_f64();
  m.precision = r.read_f64();
  m.recall = r.read_f64();
  m.f1 = r.read_f64();
  m.auc = r.read_f64();
  m.tpr = r.read_f64();
  m.fpr = r.read_f64();
  m.fnr = r.read_f64();
  m.tnr = r.read_f64();
  m.confusion.tp = r.read_u64();
  m.confusion.fp = r.read_u64();
  m.confusion.tn = r.read_u64();
  m.confusion.fn = r.read_u64();
  return m;
}

}  // namespace drlhmd::ml
