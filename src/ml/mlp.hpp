// MLP detector (paper's best-performing classical model): Dense+ReLU stack
// with a 2-way softmax head, trained with minibatch Adam.
#pragma once

#include "ml/classifier.hpp"
#include "ml/nn.hpp"

namespace drlhmd::ml {

struct MlpConfig {
  std::vector<std::size_t> hidden = {64, 64};
  std::size_t epochs = 60;
  std::size_t batch_size = 64;
  double learning_rate = 1e-3;
  std::uint64_t seed = 31;
};

class MlpClassifier final : public Classifier {
 public:
  explicit MlpClassifier(MlpConfig config = {});

  void fit(const Dataset& train) override;
  /// Streamed fit: minibatch rows are gathered straight out of the shard
  /// views through a RowLocator, so no monolithic matrix is ever built.
  /// Canonical path — fit(Dataset) routes through it via the single-shard
  /// adapter, so streamed and monolithic fits train identical networks.
  void fit_stream(const DataSource& train) override;
  double predict_proba(std::span<const double> features) const override;
  /// Whole-batch forward pass (one matmul per layer instead of N).
  void predict_proba_batch(BatchView batch, std::span<double> out) const override;
  using Classifier::predict_proba_batch;
  /// Explicit opt-in Q15 fixed-point scoring: probabilities within ~1e-3
  /// of the reference with identical argmax labels (kernel parity suite).
  /// Deliberately NOT the predict_proba_batch_fast override — the runtime
  /// decision path stays on the bitwise-exact network.
  void predict_proba_batch_quantized(BatchView batch,
                                     std::span<double> out) const;
  bool quantized_ready() const { return qnet_.ready(); }
  std::string name() const override { return "MLP"; }
  std::vector<std::uint8_t> serialize() const override;
  std::unique_ptr<Classifier> clone_untrained() const override;
  bool trained() const override { return !net_.empty(); }

  static MlpClassifier deserialize(std::span<const std::uint8_t> bytes);

  std::size_t param_count() const { return net_.param_count(); }

 private:
  MlpConfig config_;
  nn::Network net_;  // const paths use infer(), so no mutable needed
  nn::QuantizedNetwork qnet_;  // Q15 mirror; rebuilt on fit/deserialize
  std::size_t in_features_ = 0;
};

}  // namespace drlhmd::ml
