// Random forest: bagged CART trees with per-split feature subsampling.
#pragma once

#include "ml/decision_tree.hpp"

namespace drlhmd::ml {

struct RandomForestConfig {
  std::size_t n_trees = 60;
  DecisionTreeConfig tree{.max_depth = 12,
                          .min_samples_split = 4,
                          .min_samples_leaf = 2,
                          .max_features = 0,  // 0 -> sqrt(width) chosen at fit
                          .seed = 0};
  std::uint64_t seed = 17;
};

class RandomForest final : public Classifier {
 public:
  explicit RandomForest(RandomForestConfig config = {});

  void fit(const Dataset& train) override;
  /// Streamed fit: all member trees share one lazy ColumnAccess over the
  /// source (columns materialize once, under a per-column once_flag, even
  /// with tree fits running in parallel).  Canonical path — fit(Dataset)
  /// routes through it via the single-shard adapter, so streamed and
  /// monolithic fits build byte-identical forests.
  void fit_stream(const DataSource& train) override;
  double predict_proba(std::span<const double> features) const override;
  /// Tree-outer, block-inner: each tree sweeps the whole batch with
  /// 16-lane lockstep traversal; per-row tree sums accumulate in the same
  /// order as the row path, so scores are bitwise identical.
  void predict_proba_batch(BatchView batch, std::span<double> out) const override;
  using Classifier::predict_proba_batch;
  /// Quantized ensemble kernel: all member trees fused into one contiguous
  /// SoA arena sharing a single per-feature cut grid, so each batch tile
  /// quantizes its values once and every tree replays integer compares.
  /// Decisions are exact; the mean probability differs from the exact path
  /// only by float leaf rounding (well inside any 0.5-threshold margin).
  void predict_proba_batch_fast(BatchView batch,
                                std::span<double> out) const override;
  /// Fuse scaler + feature selection into the ensemble kernel (see
  /// ForestKernel::fuse_preprocess).
  void fuse_preprocess(std::span<const double> mean,
                       std::span<const double> scale,
                       std::span<const std::uint32_t> columns) {
    kernel_.fuse_preprocess(mean, scale, columns);
  }
  const ForestKernel& kernel() const { return kernel_; }
  std::string name() const override { return "RF"; }
  std::vector<std::uint8_t> serialize() const override;
  std::unique_ptr<Classifier> clone_untrained() const override;
  bool trained() const override { return !trees_.empty(); }

  static RandomForest deserialize(std::span<const std::uint8_t> bytes);

  std::size_t tree_count() const { return trees_.size(); }

 private:
  /// Rebuild the fused ensemble kernel from trees_ (fit/deserialize).
  void build_kernel();

  RandomForestConfig config_;
  std::vector<DecisionTree> trees_;
  ForestKernel kernel_;  // quantized mirror; rebuilt, never serialized
};

}  // namespace drlhmd::ml
