#include "ml/sharded_dataset.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/artifact.hpp"
#include "util/serialize.hpp"

namespace drlhmd::ml {
namespace {

// The mapped label block is aliased as std::span<const int>.
static_assert(sizeof(int) == 4, "DSH1 labels are 32-bit");
static_assert(sizeof(double) == 8, "DSH1 columns are 64-bit doubles");

constexpr std::uint32_t kMagic = 'D' | ('S' << 8) | ('H' << 16) | ('1' << 24);
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kPayloadAlign = 64;

std::size_t align_up(std::size_t n) {
  return (n + kPayloadAlign - 1) / kPayloadAlign * kPayloadAlign;
}

struct ParsedHeader {
  ShardInfo info;
  std::vector<std::string> feature_names;
  std::uint32_t payload_crc = 0;
  std::uint64_t payload_size = 0;
  std::size_t payload_offset = 0;
};

/// Parse magic + header of a mapped shard.  Throws on structural problems;
/// CRC verification is the caller's choice.
ParsedHeader parse_header(const util::MmapFile& file) {
  const std::span<const std::uint8_t> bytes = file.bytes();
  if (bytes.size() < 8)
    throw std::invalid_argument("shard '" + file.path() + "': too small");
  std::uint32_t magic = 0, header_size = 0;
  std::memcpy(&magic, bytes.data(), 4);
  std::memcpy(&header_size, bytes.data() + 4, 4);
  if (magic != kMagic)
    throw std::invalid_argument("shard '" + file.path() + "': bad magic");
  if (header_size > bytes.size() - 8)
    throw std::invalid_argument("shard '" + file.path() + "': truncated header");

  util::ByteReader r(bytes.subspan(8, header_size));
  ParsedHeader h;
  if (r.read_u8() != kVersion)
    throw std::invalid_argument("shard '" + file.path() + "': bad version");
  h.info.path = file.path();
  h.info.index = r.read_u32();
  h.info.profile_id = r.read_string();
  h.info.rows = static_cast<std::size_t>(r.read_u64());
  h.info.cols = static_cast<std::size_t>(r.read_u64());
  const std::uint64_t n_names = r.read_u64();
  if (n_names != h.info.cols)
    throw std::invalid_argument("shard '" + file.path() +
                                "': feature-name count != cols");
  h.feature_names.reserve(h.info.cols);
  for (std::uint64_t i = 0; i < n_names; ++i)
    h.feature_names.push_back(r.read_string());
  h.payload_crc = r.read_u32();
  h.payload_size = r.read_u64();
  h.payload_offset = align_up(8 + header_size);
  h.info.file_bytes = bytes.size();

  const std::uint64_t expect =
      h.info.cols * static_cast<std::uint64_t>(h.info.rows) * 8 +
      static_cast<std::uint64_t>(h.info.rows) * 4;
  if (h.payload_size != expect)
    throw std::invalid_argument("shard '" + file.path() +
                                "': payload size disagrees with shape");
  if (h.payload_offset + h.payload_size > bytes.size())
    throw std::invalid_argument("shard '" + file.path() + "': truncated payload");
  return h;
}

bool payload_crc_ok(const util::MmapFile& file, const ParsedHeader& h) {
  const std::span<const std::uint8_t> payload =
      file.bytes().subspan(h.payload_offset,
                           static_cast<std::size_t>(h.payload_size));
  return util::crc32(payload) == h.payload_crc;
}

std::vector<std::string> shard_paths(const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir))
    throw std::invalid_argument("ShardedDataset: not a directory: " + dir);
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".dsh")
      paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace

std::string shard_file_name(std::uint32_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "shard-%04u.dsh", index);
  return buf;
}

void write_shard(const std::string& path, std::uint32_t index,
                 const std::string& profile_id,
                 const std::vector<std::string>& feature_names,
                 const FeatureMatrix& X, std::span<const int> labels) {
  if (labels.size() != X.rows())
    throw std::invalid_argument("write_shard: labels/rows mismatch");
  if (feature_names.size() != X.cols())
    throw std::invalid_argument("write_shard: feature_names/cols mismatch");

  const std::size_t rows = X.rows();
  const std::size_t cols = X.cols();

  // Payload: columns back to back (stride = rows), then i32 labels.
  std::vector<std::uint8_t> payload(cols * rows * 8 + rows * 4);
  for (std::size_t c = 0; c < cols; ++c) {
    const ColumnView col = X.col(c);
    std::memcpy(payload.data() + c * rows * 8, col.data(), rows * 8);
  }
  std::memcpy(payload.data() + cols * rows * 8, labels.data(), rows * 4);

  util::ByteWriter header;
  header.write_u8(kVersion);
  header.write_u32(index);
  header.write_string(profile_id);
  header.write_u64(rows);
  header.write_u64(cols);
  header.write_u64(feature_names.size());
  for (const auto& name : feature_names) header.write_string(name);
  header.write_u32(util::crc32(payload));
  header.write_u64(payload.size());

  const std::vector<std::uint8_t>& head = header.bytes();
  const std::uint32_t header_size = static_cast<std::uint32_t>(head.size());
  const std::size_t payload_offset = align_up(8 + head.size());

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("write_shard: cannot open " + tmp);
    out.write(reinterpret_cast<const char*>(&kMagic), 4);
    out.write(reinterpret_cast<const char*>(&header_size), 4);
    out.write(reinterpret_cast<const char*>(head.data()),
              static_cast<std::streamsize>(head.size()));
    const std::vector<char> pad(payload_offset - 8 - head.size(), 0);
    out.write(pad.data(), static_cast<std::streamsize>(pad.size()));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    if (!out) throw std::runtime_error("write_shard: write failed: " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

ShardedDataset ShardedDataset::open(const std::string& dir, bool verify_crc) {
  ShardedDataset ds;
  const std::vector<std::string> paths = shard_paths(dir);
  if (paths.empty())
    throw std::invalid_argument("ShardedDataset: no *.dsh shards in " + dir);

  for (const std::string& path : paths) {
    MappedShard shard;
    shard.file = util::MmapFile(path);
    ParsedHeader h = parse_header(shard.file);
    shard.info = h.info;
    shard.info.crc_ok = !verify_crc || payload_crc_ok(shard.file, h);
    if (!shard.info.crc_ok)
      throw std::runtime_error("ShardedDataset: CRC mismatch in " + path);
    shard.payload_offset = h.payload_offset;
    if (ds.feature_names_.empty()) {
      ds.feature_names_ = std::move(h.feature_names);
    } else if (ds.feature_names_ != h.feature_names) {
      throw std::invalid_argument(
          "ShardedDataset: shard feature names disagree: " + path);
    }
    ds.rows_ += shard.info.rows;
    ds.shards_.push_back(std::move(shard));
  }
  std::sort(ds.shards_.begin(), ds.shards_.end(),
            [](const MappedShard& a, const MappedShard& b) {
              return a.info.index < b.info.index;
            });
  return ds;
}

std::vector<ShardInfo> ShardedDataset::inspect(const std::string& dir) {
  std::vector<ShardInfo> infos;
  for (const std::string& path : shard_paths(dir)) {
    ShardInfo info;
    info.path = path;
    try {
      util::MmapFile file(path);
      const ParsedHeader h = parse_header(file);
      info = h.info;
      info.crc_ok = payload_crc_ok(file, h);
    } catch (const std::exception&) {
      info.crc_ok = false;  // unreadable/garbled shard: report, don't throw
    }
    infos.push_back(std::move(info));
  }
  std::sort(infos.begin(), infos.end(),
            [](const ShardInfo& a, const ShardInfo& b) {
              return a.index < b.index || (a.index == b.index && a.path < b.path);
            });
  return infos;
}

BatchView ShardedDataset::shard(std::size_t s) const {
  const MappedShard& m = shards_[s];
  const auto* base =
      reinterpret_cast<const double*>(m.file.data() + m.payload_offset);
  return {base, m.info.rows, m.info.cols, m.info.rows};
}

std::span<const int> ShardedDataset::labels(std::size_t s) const {
  const MappedShard& m = shards_[s];
  const auto* base = reinterpret_cast<const int*>(
      m.file.data() + m.payload_offset + m.info.cols * m.info.rows * 8);
  return {base, m.info.rows};
}

std::size_t ShardedDataset::mapped_bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard.file.size();
  return total;
}

}  // namespace drlhmd::ml
