// Minimal feed-forward neural-network stack with reverse-mode gradients and
// Adam, shared by three consumers:
//   * MlpClassifier        (paper's "MLP" detector),
//   * ConvNetClassifier    (paper's "NN": 2 conv + 3 FC layers),
//   * rl::A2C              (actor and critic, 4 hidden layers each).
//
// Layers operate on row-major Matrix batches; backward() consumes dLoss/dOut
// and returns dLoss/dIn while accumulating parameter gradients internally.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/matrix.hpp"
#include "util/arena.hpp"
#include "util/serialize.hpp"

namespace drlhmd::ml::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  virtual Matrix forward(const Matrix& input) = 0;
  /// Forward pass without touching the backprop caches: const, so it is
  /// safe to call concurrently from parallel batch-inference workers.
  /// Bitwise-identical outputs to forward().
  virtual Matrix infer(const Matrix& input) const = 0;
  /// Output width for an input of `in_cols` columns; throws when the layer
  /// cannot accept that width.
  virtual std::size_t infer_out_cols(std::size_t in_cols) const = 0;
  /// Allocation-free forward over raw row-major buffers: reads
  /// rows x in_cols from `in`, writes rows x infer_out_cols(in_cols) to
  /// `out` (distinct buffers).  Bitwise-identical to infer() — same loop
  /// structure and accumulation order — so the zero-copy batch path can
  /// replace the Matrix path without perturbing results.
  virtual void infer_rows(const double* in, std::size_t rows,
                          std::size_t in_cols, double* out) const = 0;
  virtual Matrix backward(const Matrix& grad_output) = 0;

  virtual void zero_grad() {}
  /// Adam update with bias correction; `t` is the 1-based step counter.
  virtual void adam_step(double lr, double beta1, double beta2, double eps,
                         std::uint64_t t);
  virtual std::size_t param_count() const { return 0; }

  virtual std::string kind() const = 0;
  virtual std::unique_ptr<Layer> clone() const = 0;
  virtual void serialize(util::ByteWriter& w) const = 0;
};

/// Fully connected layer: out = in * W + b.
class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, util::Rng& rng);

  Matrix forward(const Matrix& input) override;
  Matrix infer(const Matrix& input) const override;
  std::size_t infer_out_cols(std::size_t in_cols) const override;
  void infer_rows(const double* in, std::size_t rows, std::size_t in_cols,
                  double* out) const override;
  Matrix backward(const Matrix& grad_output) override;
  void zero_grad() override;
  void adam_step(double lr, double beta1, double beta2, double eps,
                 std::uint64_t t) override;
  std::size_t param_count() const override;
  std::string kind() const override { return "dense"; }
  std::unique_ptr<Layer> clone() const override;
  void serialize(util::ByteWriter& w) const override;
  static std::unique_ptr<Dense> deserialize(util::ByteReader& r);

  const Matrix& weights() const { return w_; }
  const Matrix& bias() const { return b_; }

 private:
  Dense() = default;

  Matrix w_, b_;
  Matrix grad_w_, grad_b_;
  Matrix m_w_, v_w_, m_b_, v_b_;  // Adam moments
  Matrix input_cache_;
};

/// Elementwise rectifier.
class Relu final : public Layer {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix infer(const Matrix& input) const override;
  std::size_t infer_out_cols(std::size_t in_cols) const override {
    return in_cols;
  }
  void infer_rows(const double* in, std::size_t rows, std::size_t in_cols,
                  double* out) const override;
  Matrix backward(const Matrix& grad_output) override;
  std::string kind() const override { return "relu"; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Relu>(); }
  void serialize(util::ByteWriter& w) const override;

 private:
  Matrix input_cache_;
};

/// 1-D "valid" convolution over a channel-major flattened signal.
/// Input rows are laid out as [ch0: pos0..posL-1][ch1: ...]...; output rows
/// likewise with out_length = length - kernel + 1.
class Conv1D final : public Layer {
 public:
  Conv1D(std::size_t in_channels, std::size_t out_channels, std::size_t length,
         std::size_t kernel, util::Rng& rng);

  Matrix forward(const Matrix& input) override;
  Matrix infer(const Matrix& input) const override;
  std::size_t infer_out_cols(std::size_t in_cols) const override;
  void infer_rows(const double* in, std::size_t rows, std::size_t in_cols,
                  double* out) const override;
  Matrix backward(const Matrix& grad_output) override;
  void zero_grad() override;
  void adam_step(double lr, double beta1, double beta2, double eps,
                 std::uint64_t t) override;
  std::size_t param_count() const override;
  std::string kind() const override { return "conv1d"; }
  std::unique_ptr<Layer> clone() const override;
  void serialize(util::ByteWriter& w) const override;
  static std::unique_ptr<Conv1D> deserialize(util::ByteReader& r);

  std::size_t out_length() const { return length_ - kernel_ + 1; }
  std::size_t out_width() const { return out_channels_ * out_length(); }
  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }
  std::size_t length() const { return length_; }
  std::size_t kernel() const { return kernel_; }
  const Matrix& weights() const { return w_; }
  const Matrix& bias() const { return b_; }

 private:
  Conv1D() = default;

  std::size_t in_channels_ = 0, out_channels_ = 0, length_ = 0, kernel_ = 0;
  Matrix w_;  // (out_channels, in_channels * kernel)
  Matrix b_;  // (1, out_channels)
  Matrix grad_w_, grad_b_, m_w_, v_w_, m_b_, v_b_;
  Matrix input_cache_;
};

/// Layer pipeline with a shared Adam clock.
class Network {
 public:
  Network() = default;
  Network(const Network& other);
  Network& operator=(const Network& other);
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  Matrix forward(const Matrix& input);
  /// Cache-free const forward for (possibly concurrent) inference;
  /// bitwise-identical to forward().
  Matrix infer(const Matrix& input) const;
  /// Output width of the full chain for an input of `in_cols` columns.
  std::size_t infer_out_cols(std::size_t in_cols) const;
  /// Allocation-free forward over raw row-major buffers; the inter-layer
  /// ping-pong scratch comes from `arena` (scope-bounded, rewound before
  /// returning).  Bitwise-identical to infer().
  void infer_rows(const double* in, std::size_t rows, std::size_t in_cols,
                  double* out, util::Arena& arena) const;
  /// Backprop from dLoss/dOutput; returns dLoss/dInput.
  Matrix backward(const Matrix& grad_output);
  void zero_grad();
  void adam_step(double lr, double beta1 = 0.9, double beta2 = 0.999,
                 double eps = 1e-8);

  std::size_t param_count() const;
  std::size_t layer_count() const { return layers_.size(); }
  bool empty() const { return layers_.empty(); }
  const std::vector<std::unique_ptr<Layer>>& layers() const { return layers_; }

  std::vector<std::uint8_t> serialize() const;
  static Network deserialize(std::span<const std::uint8_t> bytes);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::uint64_t step_ = 0;
};

/// Row-wise softmax.
Matrix softmax(const Matrix& logits);

/// In-place row-wise softmax over a raw row-major buffer;
/// bitwise-identical to softmax().
void softmax_rows(double* data, std::size_t rows, std::size_t cols);

/// Fixed-point inference mirror of a Network (Dense/Relu/Conv1D chains):
/// per-output-unit symmetric Q15 weights (scale = max|w|/32767), per-row
/// dynamic int16 activations (32767/amax), int64 accumulation, dequantized
/// to double between layers where bias add + ReLU run in full precision.
/// (int8 weights were measured too coarse for the <1e-3 probability bound
/// on the 64x64 MLP detector — see DESIGN.md §12.)  Width guard: layers
/// wider than kQuantMaxInCols leave the mirror unbuilt (ready() == false)
/// and callers fall back to the double path.
///
/// Probabilities track the reference within ~1e-3 with identical argmax on
/// realistic detectors (enforced by the kernel parity suite) but are NOT
/// bitwise equal, so this mirror is an explicit opt-in for serving — the
/// bitwise row/batch contract keeps running through Network::infer_rows.
/// Never serialized: rebuild from the float network on fit()/deserialize().
class QuantizedNetwork {
 public:
  QuantizedNetwork() = default;

  /// Quantize `net`; leaves the mirror empty (ready() == false) when the
  /// chain contains an unsupported pattern or an over-wide layer.
  static QuantizedNetwork build(const Network& net);

  bool ready() const { return !layers_.empty(); }
  std::size_t in_cols() const { return in_cols_; }
  std::size_t out_cols() const { return out_cols_; }

  /// Allocation-free quantized forward (logits, like Network::infer_rows);
  /// quantized-activation scratch comes from `arena`.
  void infer_rows(const double* in, std::size_t rows, std::size_t in_cols,
                  double* out, util::Arena& arena) const;

 private:
  struct QLinear {
    bool conv = false;
    bool relu_after = false;
    std::size_t in_cols = 0, out_cols = 0;
    std::size_t in_channels = 0, out_channels = 0, length = 0, kernel = 0;
    std::vector<std::int16_t> w;  // Q15, row-major (out unit, fan-in weights)
    std::vector<double> scale;   // per out unit: dequant factor for w
    std::vector<double> bias;
  };

  void infer_row(const double* in, double* out, std::int16_t* qx,
                 double* ping, double* pong) const;

  std::vector<QLinear> layers_;
  std::size_t in_cols_ = 0, out_cols_ = 0;
  std::size_t peak_cols_ = 0;  // widest inter-layer activation
};

struct LossResult {
  double loss = 0.0;
  Matrix grad;  // dLoss/dLogits (already averaged over the batch)
};

/// Cross-entropy over softmax(logits); labels are class indices.
LossResult softmax_cross_entropy(const Matrix& logits,
                                 std::span<const int> labels);

/// Mean squared error against targets (same shape).
LossResult mse_loss(const Matrix& predictions, const Matrix& targets);

/// Convenience: MLP topology builder (Dense+ReLU stacks, linear head).
Network make_mlp(std::size_t in_features, const std::vector<std::size_t>& hidden,
                 std::size_t out_features, util::Rng& rng);

}  // namespace drlhmd::ml::nn
