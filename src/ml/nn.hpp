// Minimal feed-forward neural-network stack with reverse-mode gradients and
// Adam, shared by three consumers:
//   * MlpClassifier        (paper's "MLP" detector),
//   * ConvNetClassifier    (paper's "NN": 2 conv + 3 FC layers),
//   * rl::A2C              (actor and critic, 4 hidden layers each).
//
// Layers operate on row-major Matrix batches; backward() consumes dLoss/dOut
// and returns dLoss/dIn while accumulating parameter gradients internally.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/matrix.hpp"
#include "util/serialize.hpp"

namespace drlhmd::ml::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  virtual Matrix forward(const Matrix& input) = 0;
  /// Forward pass without touching the backprop caches: const, so it is
  /// safe to call concurrently from parallel batch-inference workers.
  /// Bitwise-identical outputs to forward().
  virtual Matrix infer(const Matrix& input) const = 0;
  virtual Matrix backward(const Matrix& grad_output) = 0;

  virtual void zero_grad() {}
  /// Adam update with bias correction; `t` is the 1-based step counter.
  virtual void adam_step(double lr, double beta1, double beta2, double eps,
                         std::uint64_t t);
  virtual std::size_t param_count() const { return 0; }

  virtual std::string kind() const = 0;
  virtual std::unique_ptr<Layer> clone() const = 0;
  virtual void serialize(util::ByteWriter& w) const = 0;
};

/// Fully connected layer: out = in * W + b.
class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, util::Rng& rng);

  Matrix forward(const Matrix& input) override;
  Matrix infer(const Matrix& input) const override;
  Matrix backward(const Matrix& grad_output) override;
  void zero_grad() override;
  void adam_step(double lr, double beta1, double beta2, double eps,
                 std::uint64_t t) override;
  std::size_t param_count() const override;
  std::string kind() const override { return "dense"; }
  std::unique_ptr<Layer> clone() const override;
  void serialize(util::ByteWriter& w) const override;
  static std::unique_ptr<Dense> deserialize(util::ByteReader& r);

  const Matrix& weights() const { return w_; }
  const Matrix& bias() const { return b_; }

 private:
  Dense() = default;

  Matrix w_, b_;
  Matrix grad_w_, grad_b_;
  Matrix m_w_, v_w_, m_b_, v_b_;  // Adam moments
  Matrix input_cache_;
};

/// Elementwise rectifier.
class Relu final : public Layer {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix infer(const Matrix& input) const override;
  Matrix backward(const Matrix& grad_output) override;
  std::string kind() const override { return "relu"; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Relu>(); }
  void serialize(util::ByteWriter& w) const override;

 private:
  Matrix input_cache_;
};

/// 1-D "valid" convolution over a channel-major flattened signal.
/// Input rows are laid out as [ch0: pos0..posL-1][ch1: ...]...; output rows
/// likewise with out_length = length - kernel + 1.
class Conv1D final : public Layer {
 public:
  Conv1D(std::size_t in_channels, std::size_t out_channels, std::size_t length,
         std::size_t kernel, util::Rng& rng);

  Matrix forward(const Matrix& input) override;
  Matrix infer(const Matrix& input) const override;
  Matrix backward(const Matrix& grad_output) override;
  void zero_grad() override;
  void adam_step(double lr, double beta1, double beta2, double eps,
                 std::uint64_t t) override;
  std::size_t param_count() const override;
  std::string kind() const override { return "conv1d"; }
  std::unique_ptr<Layer> clone() const override;
  void serialize(util::ByteWriter& w) const override;
  static std::unique_ptr<Conv1D> deserialize(util::ByteReader& r);

  std::size_t out_length() const { return length_ - kernel_ + 1; }
  std::size_t out_width() const { return out_channels_ * out_length(); }

 private:
  Conv1D() = default;

  std::size_t in_channels_ = 0, out_channels_ = 0, length_ = 0, kernel_ = 0;
  Matrix w_;  // (out_channels, in_channels * kernel)
  Matrix b_;  // (1, out_channels)
  Matrix grad_w_, grad_b_, m_w_, v_w_, m_b_, v_b_;
  Matrix input_cache_;
};

/// Layer pipeline with a shared Adam clock.
class Network {
 public:
  Network() = default;
  Network(const Network& other);
  Network& operator=(const Network& other);
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  Matrix forward(const Matrix& input);
  /// Cache-free const forward for (possibly concurrent) inference;
  /// bitwise-identical to forward().
  Matrix infer(const Matrix& input) const;
  /// Backprop from dLoss/dOutput; returns dLoss/dInput.
  Matrix backward(const Matrix& grad_output);
  void zero_grad();
  void adam_step(double lr, double beta1 = 0.9, double beta2 = 0.999,
                 double eps = 1e-8);

  std::size_t param_count() const;
  std::size_t layer_count() const { return layers_.size(); }
  bool empty() const { return layers_.empty(); }

  std::vector<std::uint8_t> serialize() const;
  static Network deserialize(std::span<const std::uint8_t> bytes);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::uint64_t step_ = 0;
};

/// Row-wise softmax.
Matrix softmax(const Matrix& logits);

struct LossResult {
  double loss = 0.0;
  Matrix grad;  // dLoss/dLogits (already averaged over the batch)
};

/// Cross-entropy over softmax(logits); labels are class indices.
LossResult softmax_cross_entropy(const Matrix& logits,
                                 std::span<const int> labels);

/// Mean squared error against targets (same shape).
LossResult mse_loss(const Matrix& predictions, const Matrix& targets);

/// Convenience: MLP topology builder (Dense+ReLU stacks, linear head).
Network make_mlp(std::size_t in_features, const std::vector<std::size_t>& hidden,
                 std::size_t out_features, util::Rng& rng);

}  // namespace drlhmd::ml::nn
