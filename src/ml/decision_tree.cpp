#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ml/data_source.hpp"
#include "util/parallel.hpp"

namespace drlhmd::ml {
namespace {

constexpr std::uint8_t kFormatVersion = 1;

/// Nodes at least this large scan candidate features in parallel, each
/// feature over its own sorted row copy.  That path sorts with an explicit
/// row-index tie-break so the permutation — and with it the floating-point
/// accumulation order — is unique; because the gate depends only on the
/// node size (never the thread count), every DRLHMD_THREADS value builds
/// the same tree.  Smaller nodes keep the original shared-buffer scan,
/// preserving the exact trees the seed implementation produced.
constexpr std::size_t kParallelSplitRows = 2048;

/// Rows traversed in lockstep by the batch path.  Each sweep advances every
/// pending lane one level, keeping up to this many independent dependent-load
/// chains in flight instead of serializing them row by row.
constexpr std::size_t kTraversalLanes = 16;

/// Gini impurity of a (weighted) binary count pair.
double gini(double n_pos, double n_total) {
  if (n_total <= 0.0) return 0.0;
  const double p = n_pos / n_total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

DecisionTree::DecisionTree(DecisionTreeConfig config) : config_(config) {
  if (config_.max_depth == 0)
    throw std::invalid_argument("DecisionTree: max_depth must be > 0");
  if (config_.min_samples_split < 2)
    throw std::invalid_argument("DecisionTree: min_samples_split must be >= 2");
  if (config_.min_samples_leaf == 0)
    throw std::invalid_argument("DecisionTree: min_samples_leaf must be > 0");
}

void DecisionTree::fit(const Dataset& train) {
  train.validate();
  fit_stream(DatasetSource(train));
}

void DecisionTree::fit_stream(const DataSource& train) {
  const ColumnAccess cols(train);
  const std::vector<std::uint32_t> weights(cols.rows(), 1);
  fit_weighted(cols, weights);
}

void DecisionTree::fit_weighted(const Dataset& train,
                                std::span<const std::uint32_t> weights) {
  train.validate();
  const DatasetSource source(train);
  fit_weighted(ColumnAccess(source), weights);
}

void DecisionTree::fit_weighted(const ColumnAccess& train,
                                std::span<const std::uint32_t> weights) {
  if (train.rows() == 0)
    throw std::invalid_argument("DecisionTree::fit: empty dataset");
  if (weights.size() != train.rows())
    throw std::invalid_argument("DecisionTree::fit_weighted: weight size mismatch");

  nodes_.clear();
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < train.rows(); ++i)
    if (weights[i] > 0) rows.push_back(i);
  if (rows.empty())
    throw std::invalid_argument("DecisionTree::fit_weighted: all weights zero");
  util::Rng rng(config_.seed);
  build(train, weights, rows, 0, rng);
  build_flat();
}

std::uint32_t DecisionTree::build(const ColumnAccess& train,
                                  std::span<const std::uint32_t> weights,
                                  std::vector<std::size_t>& rows, std::size_t depth,
                                  util::Rng& rng) {
  double w_total = 0.0, w_pos = 0.0;
  for (std::size_t r : rows) {
    const double w = weights[r];
    w_total += w;
    if (train.label(r) == 1) w_pos += w;
  }

  const auto node_index = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_index].proba = w_total > 0.0 ? w_pos / w_total : 0.5;

  const bool pure = w_pos == 0.0 || w_pos == w_total;
  if (pure || depth >= config_.max_depth || rows.size() < config_.min_samples_split)
    return node_index;

  // Candidate features (subsampled for random forests).
  const std::size_t width = train.num_features();
  std::vector<std::size_t> features;
  if (config_.max_features == 0 || config_.max_features >= width) {
    features.resize(width);
    std::iota(features.begin(), features.end(), 0);
  } else {
    features = rng.sample_without_replacement(width, config_.max_features);
  }

  // Exact greedy split search: sort rows per feature, scan boundaries.
  double best_gain = 1e-12;
  std::size_t best_feature = width;
  double best_threshold = 0.0;
  const double parent_impurity = gini(w_pos, w_total);

  if (rows.size() >= kParallelSplitRows) {
    struct FeatureBest {
      double gain = 0.0;
      double threshold = 0.0;
    };
    const std::vector<FeatureBest> bests = util::parallel_map(
        "decision_tree.split_scan", 0, features.size(), 1,
        [&](std::size_t fi) {
          const std::size_t f = features[fi];
          const std::span<const double> colf = train.col(f);
          std::vector<std::size_t> sorted = rows;
          std::sort(sorted.begin(), sorted.end(),
                    [&](std::size_t a, std::size_t b) {
                      const double va = colf[a];
                      const double vb = colf[b];
                      return va < vb || (va == vb && a < b);
                    });
          FeatureBest best;
          double left_total = 0.0, left_pos = 0.0;
          std::size_t left_count = 0;
          for (std::size_t k = 0; k + 1 < sorted.size(); ++k) {
            const std::size_t r = sorted[k];
            const double w = weights[r];
            left_total += w;
            left_count += 1;
            if (train.label(r) == 1) left_pos += w;
            const double v = colf[r];
            const double v_next = colf[sorted[k + 1]];
            if (v == v_next) continue;  // no boundary between equal values
            if (left_count < config_.min_samples_leaf ||
                sorted.size() - left_count < config_.min_samples_leaf)
              continue;
            const double right_total = w_total - left_total;
            const double right_pos = w_pos - left_pos;
            const double weighted_child =
                (left_total * gini(left_pos, left_total) +
                 right_total * gini(right_pos, right_total)) /
                w_total;
            const double gain = parent_impurity - weighted_child;
            if (gain > best.gain) {
              best.gain = gain;
              best.threshold = 0.5 * (v + v_next);
            }
          }
          return best;
        });
    // Reduce in candidate-feature order with strict >: the same winner the
    // single-pass scan would select.
    for (std::size_t fi = 0; fi < features.size(); ++fi) {
      if (bests[fi].gain > best_gain) {
        best_gain = bests[fi].gain;
        best_feature = features[fi];
        best_threshold = bests[fi].threshold;
      }
    }
  } else {
    std::vector<std::size_t> sorted = rows;
    for (std::size_t f : features) {
      const std::span<const double> colf = train.col(f);
      std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
        return colf[a] < colf[b];
      });
      double left_total = 0.0, left_pos = 0.0;
      std::size_t left_count = 0;
      for (std::size_t k = 0; k + 1 < sorted.size(); ++k) {
        const std::size_t r = sorted[k];
        const double w = weights[r];
        left_total += w;
        left_count += 1;
        if (train.label(r) == 1) left_pos += w;
        const double v = colf[r];
        const double v_next = colf[sorted[k + 1]];
        if (v == v_next) continue;  // no boundary between equal values
        if (left_count < config_.min_samples_leaf ||
            sorted.size() - left_count < config_.min_samples_leaf)
          continue;
        const double right_total = w_total - left_total;
        const double right_pos = w_pos - left_pos;
        const double weighted_child =
            (left_total * gini(left_pos, left_total) +
             right_total * gini(right_pos, right_total)) /
            w_total;
        const double gain = parent_impurity - weighted_child;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = f;
          best_threshold = 0.5 * (v + v_next);
        }
      }
    }
  }

  if (best_feature == width) return node_index;  // no useful split

  std::vector<std::size_t> left_rows, right_rows;
  const std::span<const double> best_col = train.col(best_feature);
  for (std::size_t r : rows) {
    (best_col[r] <= best_threshold ? left_rows : right_rows).push_back(r);
  }
  if (left_rows.empty() || right_rows.empty()) return node_index;

  rows.clear();
  rows.shrink_to_fit();  // release before recursing

  nodes_[node_index].feature = static_cast<std::uint32_t>(best_feature);
  nodes_[node_index].threshold = best_threshold;
  const std::uint32_t left = build(train, weights, left_rows, depth + 1, rng);
  nodes_[node_index].left = left;
  const std::uint32_t right = build(train, weights, right_rows, depth + 1, rng);
  nodes_[node_index].right = right;
  return node_index;
}

double DecisionTree::predict_proba(std::span<const double> features) const {
  if (!trained()) throw std::logic_error("DecisionTree: not trained");
  std::uint32_t idx = 0;
  for (;;) {
    const Node& node = nodes_[idx];
    if (node.feature == Node::kLeaf) return node.proba;
    if (node.feature >= features.size())
      throw std::invalid_argument("DecisionTree: feature width mismatch");
    idx = features[node.feature] <= node.threshold ? node.left : node.right;
  }
}

void DecisionTree::build_flat() {
  flat_.assign(nodes_.size(), FlatNode{});
  flat_depth_ = 0;
  required_width_ = 0;
  if (nodes_.empty()) return;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    FlatNode& flat = flat_[i];
    if (node.feature == Node::kLeaf) {
      // Self-loop: whichever way the (dummy) compare goes, the lane stays
      // parked on its leaf for the remaining sweeps.
      flat.kid[0] = flat.kid[1] = i;
    } else {
      flat.feature = node.feature;
      flat.threshold = node.threshold;
      flat.kid[0] = node.left;
      flat.kid[1] = node.right;
      required_width_ = std::max(required_width_, node.feature + 1);
    }
  }
  flat_depth_ = depth() - 1;  // root->leaf transitions

  std::vector<std::vector<KernelBuildNode>> trees;
  append_kernel_tree(trees);
  kernel_.build(trees);
}

void DecisionTree::append_kernel_tree(
    std::vector<std::vector<KernelBuildNode>>& trees) const {
  std::vector<KernelBuildNode> tree(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    KernelBuildNode& dst = tree[i];
    if (node.feature == Node::kLeaf) {
      dst.leaf = true;
      dst.value = node.proba;
    } else {
      dst.feature = node.feature;
      dst.threshold = node.threshold;
      dst.left = node.left;
      dst.right = node.right;
    }
  }
  trees.push_back(std::move(tree));
}

void DecisionTree::predict_proba_batch_fast(BatchView batch,
                                            std::span<double> out) const {
  if (!trained()) throw std::logic_error("DecisionTree: not trained");
  check_batch_out(batch, out);
  if (batch.rows() == 0) return;
  // A single tree never amortizes the kernel's encode stage: quantizing a
  // row costs one binary search per feature but serves only one traversal,
  // so the exact FlatNode sweep is the faster path here (ensembles reuse
  // the codes across every member tree — that is where the kernel wins).
  // The kernel still serves the fused configuration, whose contract is
  // raw, unscaled batch columns that the exact path cannot consume.
  if (kernel_.ready() && kernel_.fused()) {
    std::fill(out.begin(), out.end(), 0.0);
    kernel_.accumulate(batch, out);
    return;
  }
  predict_proba_batch(batch, out);
}

void DecisionTree::score_block(BatchView batch, std::size_t row0,
                               std::size_t count, std::span<double> out,
                               bool accumulate) const {
  // Lockstep descent over the flat mirror: every lane advances one level
  // per sweep, so up to kTraversalLanes independent node->value load
  // chains are in flight instead of one per row.  The body compiles to a
  // handful of instructions with no data-dependent branch — the child is
  // an indexed load (kid[0/1]), leaves self-loop, and the trip count is
  // the fixed flat_depth_, so the branch predictor sees only counted
  // loops.  `v <= threshold ? 0 : 1` keeps the row path's NaN behavior
  // (NaN goes right).  Callers validate feature width once per batch call
  // (required_width_) and peel root-is-leaf stumps, so column 0 is always
  // readable for the dummy load a parked lane issues.
  std::uint32_t idx[kTraversalLanes];
  for (std::size_t l = 0; l < count; ++l) idx[l] = 0;
  const FlatNode* flat = flat_.data();
  const double* base = batch.col(0).data();
  const std::size_t stride = batch.stride();
  if (count == kTraversalLanes) {
    for (std::size_t step = 0; step < flat_depth_; ++step) {
      for (std::size_t l = 0; l < kTraversalLanes; ++l) {
        const FlatNode& n = flat[idx[l]];
        const double v = base[n.feature * stride + row0 + l];
        idx[l] = n.kid[v <= n.threshold ? 0 : 1];
      }
    }
  } else {
    for (std::size_t step = 0; step < flat_depth_; ++step) {
      for (std::size_t l = 0; l < count; ++l) {
        const FlatNode& n = flat[idx[l]];
        const double v = base[n.feature * stride + row0 + l];
        idx[l] = n.kid[v <= n.threshold ? 0 : 1];
      }
    }
  }
  const Node* nodes = nodes_.data();
  if (accumulate) {
    for (std::size_t l = 0; l < count; ++l) out[row0 + l] += nodes[idx[l]].proba;
  } else {
    for (std::size_t l = 0; l < count; ++l) out[row0 + l] = nodes[idx[l]].proba;
  }
}

void DecisionTree::predict_proba_batch(BatchView batch,
                                       std::span<double> out) const {
  if (!trained()) throw std::logic_error("DecisionTree: not trained");
  check_batch_out(batch, out);
  if (batch.rows() == 0) return;
  if (required_width_ > batch.cols())
    throw std::invalid_argument("DecisionTree: feature width mismatch");
  if (nodes_[0].feature == Node::kLeaf) {
    std::fill(out.begin(), out.end(), nodes_[0].proba);
    return;
  }
  for (std::size_t r0 = 0; r0 < batch.rows(); r0 += kTraversalLanes)
    score_block(batch, r0, std::min(kTraversalLanes, batch.rows() - r0), out,
                /*accumulate=*/false);
}

void DecisionTree::accumulate_proba_batch(BatchView batch,
                                          std::span<double> out) const {
  if (!trained()) throw std::logic_error("DecisionTree: not trained");
  check_batch_out(batch, out);
  if (batch.rows() == 0) return;
  if (required_width_ > batch.cols())
    throw std::invalid_argument("DecisionTree: feature width mismatch");
  if (nodes_[0].feature == Node::kLeaf) {
    for (double& v : out) v += nodes_[0].proba;
    return;
  }
  for (std::size_t r0 = 0; r0 < batch.rows(); r0 += kTraversalLanes)
    score_block(batch, r0, std::min(kTraversalLanes, batch.rows() - r0), out,
                /*accumulate=*/true);
}

std::size_t DecisionTree::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative DFS carrying depth.
  std::vector<std::pair<std::uint32_t, std::size_t>> stack{{0, 1}};
  std::size_t max_depth = 0;
  while (!stack.empty()) {
    auto [idx, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& node = nodes_[idx];
    if (node.feature != Node::kLeaf) {
      stack.push_back({node.left, d + 1});
      stack.push_back({node.right, d + 1});
    }
  }
  return max_depth;
}

std::vector<std::uint8_t> DecisionTree::serialize() const {
  util::ByteWriter w;
  w.write_string("DT");
  w.write_u8(kFormatVersion);
  w.write_u64(nodes_.size());
  for (const Node& n : nodes_) {
    w.write_u32(n.feature);
    w.write_f64(n.threshold);
    w.write_u32(n.left);
    w.write_u32(n.right);
    w.write_f64(n.proba);
  }
  return w.take();
}

DecisionTree DecisionTree::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.read_string() != "DT")
    throw std::invalid_argument("DecisionTree::deserialize: bad magic");
  if (r.read_u8() != kFormatVersion)
    throw std::invalid_argument("DecisionTree::deserialize: bad version");
  DecisionTree tree;
  const std::uint64_t count = r.read_u64();
  tree.nodes_.resize(static_cast<std::size_t>(count));
  for (auto& n : tree.nodes_) {
    n.feature = r.read_u32();
    n.threshold = r.read_f64();
    n.left = r.read_u32();
    n.right = r.read_u32();
    n.proba = r.read_f64();
  }
  tree.build_flat();
  return tree;
}

std::unique_ptr<Classifier> DecisionTree::clone_untrained() const {
  return std::make_unique<DecisionTree>(config_);
}

}  // namespace drlhmd::ml
