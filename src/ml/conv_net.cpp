#include "ml/conv_net.hpp"

#include <stdexcept>

#include "ml/data_source.hpp"
#include "util/arena.hpp"

namespace drlhmd::ml {
namespace {
constexpr std::uint8_t kFormatVersion = 1;

// Rows per inference block: keeps per-layer activations cache-resident.
constexpr std::size_t kBlockRows = 128;
}

ConvNetClassifier::ConvNetClassifier(ConvNetConfig config) : config_(config) {
  if (config_.kernel == 0) throw std::invalid_argument("ConvNetClassifier: kernel == 0");
  if (config_.epochs == 0 || config_.batch_size == 0)
    throw std::invalid_argument("ConvNetClassifier: epochs/batch_size must be > 0");
  if (config_.learning_rate <= 0.0)
    throw std::invalid_argument("ConvNetClassifier: learning_rate must be > 0");
}

void ConvNetClassifier::fit(const Dataset& train) {
  train.validate();
  fit_stream(DatasetSource(train));
}

void ConvNetClassifier::fit_stream(const DataSource& train) {
  const RowLocator rows(train);
  if (rows.rows() == 0)
    throw std::invalid_argument("ConvNetClassifier::fit: empty dataset");
  in_features_ = rows.num_features();
  // Two valid convolutions need kernel <= (width + 1) / 2; narrower inputs
  // get a clamped kernel (degenerating to 1x1 convolutions at width 1)
  // rather than failing, so feature-count sweeps can include the NN.
  const std::size_t kernel =
      std::max<std::size_t>(1, std::min(config_.kernel, (in_features_ + 1) / 2));

  util::Rng rng(config_.seed);
  nn::Network net;
  auto conv1 = std::make_unique<nn::Conv1D>(1, config_.conv1_channels, in_features_,
                                            kernel, rng);
  const std::size_t len1 = conv1->out_length();
  net.add(std::move(conv1));
  net.add(std::make_unique<nn::Relu>());
  auto conv2 = std::make_unique<nn::Conv1D>(config_.conv1_channels,
                                            config_.conv2_channels, len1,
                                            kernel, rng);
  const std::size_t flat = conv2->out_width();
  net.add(std::move(conv2));
  net.add(std::make_unique<nn::Relu>());
  net.add(std::make_unique<nn::Dense>(flat, config_.fc1, rng));
  net.add(std::make_unique<nn::Relu>());
  net.add(std::make_unique<nn::Dense>(config_.fc1, config_.fc2, rng));
  net.add(std::make_unique<nn::Relu>());
  net.add(std::make_unique<nn::Dense>(config_.fc2, 2, rng));
  net_ = std::move(net);

  std::vector<std::size_t> order(rows.rows());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size(); start += config_.batch_size) {
      const std::size_t end = std::min(order.size(), start + config_.batch_size);
      Matrix batch(end - start, in_features_);
      std::vector<int> labels(end - start);
      for (std::size_t i = start; i < end; ++i) {
        const std::size_t row = order[i];
        for (std::size_t c = 0; c < in_features_; ++c)
          batch.at(i - start, c) = rows.at(row, c);
        labels[i - start] = rows.label(row);
      }
      net_.zero_grad();
      const Matrix logits = net_.forward(batch);
      const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
      net_.backward(loss.grad);
      net_.adam_step(config_.learning_rate);
    }
  }
  qnet_ = nn::QuantizedNetwork::build(net_);
}

double ConvNetClassifier::predict_proba(std::span<const double> features) const {
  if (!trained()) throw std::logic_error("ConvNetClassifier: not trained");
  if (features.size() != in_features_)
    throw std::invalid_argument("ConvNetClassifier: feature width mismatch");
  const Matrix logits = net_.infer(Matrix::row_vector(features));
  return nn::softmax(logits).at(0, 1);
}

void ConvNetClassifier::predict_proba_batch(BatchView batch,
                                            std::span<double> out) const {
  if (!trained()) throw std::logic_error("ConvNetClassifier: not trained");
  check_batch_out(batch, out);
  if (batch.cols() != in_features_)
    throw std::invalid_argument("ConvNetClassifier: feature width mismatch");
  if (batch.rows() == 0) return;
  // Conv1D/Relu/Dense inference and softmax are all row-local, so each
  // block's forward pass scores row r bitwise identically to a one-row
  // pass (and to any other block partition).  Scratch comes from the
  // per-thread arena: zero heap traffic in steady state.
  util::ArenaScope scope(util::scratch_arena());
  const std::size_t block = std::min(kBlockRows, batch.rows());
  auto rows_buf = scope.alloc<double>(block * in_features_);
  auto probs = scope.alloc<double>(block * 2);
  for (std::size_t r0 = 0; r0 < batch.rows(); r0 += kBlockRows) {
    const std::size_t count = std::min(kBlockRows, batch.rows() - r0);
    for (std::size_t c = 0; c < in_features_; ++c) {
      const ColumnView colc = batch.col(c);
      for (std::size_t r = 0; r < count; ++r)
        rows_buf[r * in_features_ + c] = colc[r0 + r];
    }
    net_.infer_rows(rows_buf.data(), count, in_features_, probs.data(),
                    scope.arena());
    nn::softmax_rows(probs.data(), count, 2);
    for (std::size_t r = 0; r < count; ++r) out[r0 + r] = probs[r * 2 + 1];
  }
}

void ConvNetClassifier::predict_proba_batch_quantized(
    BatchView batch, std::span<double> out) const {
  if (!trained()) throw std::logic_error("ConvNetClassifier: not trained");
  check_batch_out(batch, out);
  if (batch.cols() != in_features_)
    throw std::invalid_argument("ConvNetClassifier: feature width mismatch");
  if (!qnet_.ready()) {  // unsupported topology: exact fallback
    predict_proba_batch(batch, out);
    return;
  }
  util::ArenaScope scope(util::scratch_arena());
  const std::size_t block = std::min(kBlockRows, batch.rows());
  auto rows_buf = scope.alloc<double>(block * in_features_);
  auto probs = scope.alloc<double>(block * 2);
  for (std::size_t r0 = 0; r0 < batch.rows(); r0 += kBlockRows) {
    const std::size_t count = std::min(kBlockRows, batch.rows() - r0);
    for (std::size_t c = 0; c < in_features_; ++c) {
      const ColumnView colc = batch.col(c);
      for (std::size_t r = 0; r < count; ++r)
        rows_buf[r * in_features_ + c] = colc[r0 + r];
    }
    qnet_.infer_rows(rows_buf.data(), count, in_features_, probs.data(),
                     scope.arena());
    nn::softmax_rows(probs.data(), count, 2);
    for (std::size_t r = 0; r < count; ++r) out[r0 + r] = probs[r * 2 + 1];
  }
}

std::vector<std::uint8_t> ConvNetClassifier::serialize() const {
  util::ByteWriter w;
  w.write_string("NN");
  w.write_u8(kFormatVersion);
  w.write_u64(in_features_);
  w.write_bytes(net_.serialize());
  return w.take();
}

ConvNetClassifier ConvNetClassifier::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.read_string() != "NN")
    throw std::invalid_argument("ConvNetClassifier::deserialize: bad magic");
  if (r.read_u8() != kFormatVersion)
    throw std::invalid_argument("ConvNetClassifier::deserialize: bad version");
  ConvNetClassifier model;
  model.in_features_ = static_cast<std::size_t>(r.read_u64());
  model.net_ = nn::Network::deserialize(r.read_bytes());
  model.qnet_ = nn::QuantizedNetwork::build(model.net_);  // never serialized
  return model;
}

std::unique_ptr<Classifier> ConvNetClassifier::clone_untrained() const {
  return std::make_unique<ConvNetClassifier>(config_);
}

}  // namespace drlhmd::ml
