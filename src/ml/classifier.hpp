// Common binary-classifier interface.
//
// Every detector in the framework (RF, DT, LR, MLP, LightGBM-style GBDT,
// conv NN) implements this.  Scores are P(malware); hard predictions
// threshold at 0.5.  serialize() provides both the persistent format and
// the memory-footprint measure the constraint-aware controller uses.
//
// The interface is batch-first: predict_proba_batch(BatchView, out) is the
// hot path, fed zero-copy from columnar storage, and every detector
// overrides it with a vectorized implementation (block tree traversal for
// RF/DT/GBDT, whole-batch matmul for LR/MLP/NN) that is bit-for-bit
// identical to scoring the rows one at a time.  predict_proba(span) is the
// single-row compatibility adapter.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/feature_matrix.hpp"
#include "ml/metrics.hpp"
#include "util/serialize.hpp"

namespace drlhmd::ml {

class DataSource;

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Train on the dataset (labels 0/1). Implementations must be
  /// deterministic given their construction-time seed.
  virtual void fit(const Dataset& train) = 0;

  /// Train from a sharded/out-of-core source.  The streaming detectors
  /// (DT/RF/GBDT/MLP/NN) override this with shard-by-shard implementations
  /// and route fit(Dataset) through it via the single-shard adapter, so the
  /// two entry points share one code path and produce identical models.
  /// The default materializes the source (correct for any detector, in-RAM).
  virtual void fit_stream(const DataSource& train);

  /// P(label == 1) for one sample (row adapter over the batch path's
  /// math; kept virtual so detectors can score a single row without
  /// batch-view plumbing).
  virtual double predict_proba(std::span<const double> features) const = 0;

  int predict(std::span<const double> features) const {
    return predict_proba(features) >= 0.5 ? 1 : 0;
  }

  /// Batch-first scoring: out[i] = P(label == 1 | batch row i).
  /// `out.size()` must equal `batch.rows()`.  The default walks rows
  /// through predict_proba(); detectors override it with vectorized
  /// implementations that produce bitwise-identical scores.
  virtual void predict_proba_batch(BatchView batch,
                                   std::span<double> out) const;

  /// Serving-oriented batch scoring: same contract as predict_proba_batch
  /// but allowed to run the quantized/arena kernel layer, whose
  /// probabilities may differ from the reference path in the last float
  /// bits while hard 0.5 decisions stay exact for the tree ensembles (the
  /// kernels quantize thresholds onto the per-feature cut grid, preserving
  /// every comparison outcome — see DESIGN.md §12).  Default forwards to
  /// the bitwise-exact path; detectors with a kernel override it.
  virtual void predict_proba_batch_fast(BatchView batch,
                                        std::span<double> out) const {
    predict_proba_batch(batch, out);
  }

  std::vector<double> predict_proba_batch(BatchView batch) const;
  /// Zero-copy over the dataset's columnar storage.
  std::vector<double> predict_proba_batch(const Dataset& data) const;
  std::vector<int> predict_batch(const Dataset& data) const;

  /// Evaluate on a labeled dataset (scores -> full metric report).
  /// Routed through the batch path.
  MetricReport evaluate(const Dataset& data) const;

  /// Short identifier: "RF", "DT", "LR", "MLP", "LightGBM", "NN".
  virtual std::string name() const = 0;

  /// Model bytes; used for integrity hashing and memory-footprint metrics.
  virtual std::vector<std::uint8_t> serialize() const = 0;

  /// Untrained copy with identical hyperparameters (and seed), for
  /// retraining pipelines such as adversarial training.
  virtual std::unique_ptr<Classifier> clone_untrained() const = 0;

  virtual bool trained() const = 0;

 protected:
  /// Shared argument check for batch overrides.
  void check_batch_out(BatchView batch, std::span<const double> out) const;
};

}  // namespace drlhmd::ml
