// Common binary-classifier interface.
//
// Every detector in the framework (RF, DT, LR, MLP, LightGBM-style GBDT,
// conv NN) implements this.  Scores are P(malware); hard predictions
// threshold at 0.5.  serialize() provides both the persistent format and
// the memory-footprint measure the constraint-aware controller uses.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/metrics.hpp"
#include "util/serialize.hpp"

namespace drlhmd::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Train on the dataset (labels 0/1). Implementations must be
  /// deterministic given their construction-time seed.
  virtual void fit(const Dataset& train) = 0;

  /// P(label == 1) for one sample.
  virtual double predict_proba(std::span<const double> features) const = 0;

  int predict(std::span<const double> features) const {
    return predict_proba(features) >= 0.5 ? 1 : 0;
  }

  std::vector<double> predict_proba_batch(const Dataset& data) const;
  std::vector<int> predict_batch(const Dataset& data) const;

  /// Evaluate on a labeled dataset (scores -> full metric report).
  MetricReport evaluate(const Dataset& data) const;

  /// Short identifier: "RF", "DT", "LR", "MLP", "LightGBM", "NN".
  virtual std::string name() const = 0;

  /// Model bytes; used for integrity hashing and memory-footprint metrics.
  virtual std::vector<std::uint8_t> serialize() const = 0;

  /// Untrained copy with identical hyperparameters (and seed), for
  /// retraining pipelines such as adversarial training.
  virtual std::unique_ptr<Classifier> clone_untrained() const = 0;

  virtual bool trained() const = 0;
};

}  // namespace drlhmd::ml
