#include "ml/cross_validation.hpp"

#include <cmath>
#include <stdexcept>

#include "util/parallel.hpp"

namespace drlhmd::ml {

double CrossValidationResult::mean_accuracy() const {
  if (folds.empty()) return 0.0;
  double total = 0.0;
  for (const auto& m : folds) total += m.accuracy;
  return total / static_cast<double>(folds.size());
}

double CrossValidationResult::mean_f1() const {
  if (folds.empty()) return 0.0;
  double total = 0.0;
  for (const auto& m : folds) total += m.f1;
  return total / static_cast<double>(folds.size());
}

double CrossValidationResult::mean_auc() const {
  if (folds.empty()) return 0.0;
  double total = 0.0;
  for (const auto& m : folds) total += m.auc;
  return total / static_cast<double>(folds.size());
}

double CrossValidationResult::stddev_f1() const {
  if (folds.size() < 2) return 0.0;
  const double mean = mean_f1();
  double acc = 0.0;
  for (const auto& m : folds) acc += (m.f1 - mean) * (m.f1 - mean);
  return std::sqrt(acc / static_cast<double>(folds.size() - 1));
}

std::vector<std::size_t> stratified_folds(const Dataset& data, std::size_t k,
                                          util::Rng& rng) {
  data.validate();
  if (k < 2) throw std::invalid_argument("stratified_folds: k must be >= 2");
  std::vector<std::size_t> fold_of(data.size());
  for (int label : {0, 1}) {
    std::vector<std::size_t> rows;
    for (std::size_t i = 0; i < data.size(); ++i)
      if (data.y[i] == label) rows.push_back(i);
    rng.shuffle(rows);
    for (std::size_t r = 0; r < rows.size(); ++r) fold_of[rows[r]] = r % k;
  }
  return fold_of;
}

CrossValidationResult cross_validate(const Classifier& prototype,
                                     const Dataset& data, std::size_t k,
                                     std::uint64_t seed) {
  data.validate();
  if (k < 2) throw std::invalid_argument("cross_validate: k must be >= 2");
  if (data.size() < 2 * k)
    throw std::invalid_argument("cross_validate: dataset too small for k folds");

  util::Rng rng(seed);
  const std::vector<std::size_t> fold_of = stratified_folds(data, k, rng);

  CrossValidationResult result;
  // Folds are independent given fold_of (drawn above, before the region),
  // and each lands in its own slot — parallel and serial runs agree.
  result.folds = util::parallel_map(
      "cross_validation.folds", 0, k, 1, [&](std::size_t fold) {
        Dataset train, test;
        train.feature_names = data.feature_names;
        test.feature_names = data.feature_names;
        for (std::size_t i = 0; i < data.size(); ++i)
          (fold_of[i] == fold ? test : train).push_from(data, i);
        if (train.count_label(0) == 0 || train.count_label(1) == 0 ||
            test.size() == 0)
          throw std::invalid_argument(
              "cross_validate: degenerate fold (too few rows)");

        auto model = prototype.clone_untrained();
        model->fit(train);
        return model->evaluate(test);
      });
  return result;
}

}  // namespace drlhmd::ml
