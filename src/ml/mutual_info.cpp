#include "ml/mutual_info.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <span>
#include <stdexcept>

namespace drlhmd::ml {
namespace {

/// Discretize one feature into equal-frequency bins; returns per-row bin ids.
std::vector<std::size_t> discretize(std::span<const double> values,
                                    std::size_t bins) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<std::size_t> bin_of(n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    std::size_t b = rank * bins / n;
    // Ties must land in the same bin or the estimate becomes order-dependent:
    // inherit the bin of an equal-valued predecessor.
    if (rank > 0 && values[order[rank]] == values[order[rank - 1]]) {
      b = bin_of[order[rank - 1]];
    }
    bin_of[order[rank]] = b;
  }
  return bin_of;
}

}  // namespace

MutualInfoResult mutual_information(const DataSource& data, std::size_t bins) {
  data.validate();
  if (data.rows() == 0)
    throw std::invalid_argument("mutual_information: empty dataset");
  if (bins < 2) throw std::invalid_argument("mutual_information: bins must be >= 2");

  const std::size_t n = data.rows();
  const std::size_t width = data.num_features();
  const double dn = static_cast<double>(n);
  const bool single_shard = data.num_shards() == 1;

  // Labels concatenated once (shard order == global row order) + H(Y).
  std::vector<int> label_storage;
  std::span<const int> y;
  if (single_shard) {
    y = data.labels(0);
  } else {
    label_storage.reserve(n);
    for (std::size_t s = 0; s < data.num_shards(); ++s) {
      const std::span<const int> part = data.labels(s);
      label_storage.insert(label_storage.end(), part.begin(), part.end());
    }
    y = label_storage;
  }
  std::array<std::size_t, 2> label_counts{0, 0};
  for (int label : y) ++label_counts[static_cast<std::size_t>(label)];
  double h_y = 0.0;
  for (std::size_t c : label_counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / dn;
    h_y -= p * std::log(p);
  }

  MutualInfoResult result;
  result.scores.resize(width);
  std::vector<double> scratch;  // one materialized column at a time
  for (std::size_t f = 0; f < width; ++f) {
    std::span<const double> values;
    if (single_shard) {
      values = data.shard(0).col(f);  // zero-copy fast path
    } else {
      scratch.resize(n);
      data.column_into(f, scratch);
      values = scratch;
    }
    const auto bin_of = discretize(values, bins);
    std::vector<std::size_t> marginal(bins, 0);
    std::vector<std::size_t> joint(bins * 2, 0);
    for (std::size_t i = 0; i < n; ++i) {
      ++marginal[bin_of[i]];
      ++joint[bin_of[i] * 2 + static_cast<std::size_t>(y[i])];
    }
    double h_x = 0.0, h_xy = 0.0;
    for (std::size_t b = 0; b < bins; ++b) {
      if (marginal[b] > 0) {
        const double p = static_cast<double>(marginal[b]) / dn;
        h_x -= p * std::log(p);
      }
      for (int label = 0; label < 2; ++label) {
        const std::size_t c = joint[b * 2 + static_cast<std::size_t>(label)];
        if (c > 0) {
          const double p = static_cast<double>(c) / dn;
          h_xy -= p * std::log(p);
        }
      }
    }
    result.scores[f] = std::max(0.0, h_x + h_y - h_xy);  // clamp fp noise
  }

  result.ranking.resize(width);
  std::iota(result.ranking.begin(), result.ranking.end(), 0);
  std::stable_sort(result.ranking.begin(), result.ranking.end(),
                   [&](std::size_t a, std::size_t b) {
                     return result.scores[a] > result.scores[b];
                   });
  return result;
}

MutualInfoResult mutual_information(const Dataset& data, std::size_t bins) {
  data.validate();
  return mutual_information(DatasetSource(data), bins);
}

std::vector<std::size_t> select_top_k_features(const DataSource& data,
                                               std::size_t k, std::size_t bins) {
  const MutualInfoResult mi = mutual_information(data, bins);
  const std::size_t keep = std::min(k, mi.ranking.size());
  return {mi.ranking.begin(), mi.ranking.begin() + static_cast<std::ptrdiff_t>(keep)};
}

std::vector<std::size_t> select_top_k_features(const Dataset& data, std::size_t k,
                                               std::size_t bins) {
  return select_top_k_features(DatasetSource(data), k, bins);
}

}  // namespace drlhmd::ml
