#include "ml/mutual_info.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace drlhmd::ml {
namespace {

/// Discretize one feature into equal-frequency bins; returns per-row bin ids.
std::vector<std::size_t> discretize(const Dataset& data, std::size_t feature,
                                    std::size_t bins) {
  const std::size_t n = data.size();
  const ColumnView values = data.col(feature);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<std::size_t> bin_of(n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    std::size_t b = rank * bins / n;
    // Ties must land in the same bin or the estimate becomes order-dependent:
    // inherit the bin of an equal-valued predecessor.
    if (rank > 0 && values[order[rank]] == values[order[rank - 1]]) {
      b = bin_of[order[rank - 1]];
    }
    bin_of[order[rank]] = b;
  }
  return bin_of;
}

}  // namespace

MutualInfoResult mutual_information(const Dataset& data, std::size_t bins) {
  data.validate();
  if (data.size() == 0)
    throw std::invalid_argument("mutual_information: empty dataset");
  if (bins < 2) throw std::invalid_argument("mutual_information: bins must be >= 2");

  const std::size_t n = data.size();
  const std::size_t width = data.num_features();
  const double dn = static_cast<double>(n);

  // H(Y).
  std::array<std::size_t, 2> label_counts{data.count_label(0), data.count_label(1)};
  double h_y = 0.0;
  for (std::size_t c : label_counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / dn;
    h_y -= p * std::log(p);
  }

  MutualInfoResult result;
  result.scores.resize(width);
  for (std::size_t f = 0; f < width; ++f) {
    const auto bin_of = discretize(data, f, bins);
    std::vector<std::size_t> marginal(bins, 0);
    std::vector<std::size_t> joint(bins * 2, 0);
    for (std::size_t i = 0; i < n; ++i) {
      ++marginal[bin_of[i]];
      ++joint[bin_of[i] * 2 + static_cast<std::size_t>(data.y[i])];
    }
    double h_x = 0.0, h_xy = 0.0;
    for (std::size_t b = 0; b < bins; ++b) {
      if (marginal[b] > 0) {
        const double p = static_cast<double>(marginal[b]) / dn;
        h_x -= p * std::log(p);
      }
      for (int label = 0; label < 2; ++label) {
        const std::size_t c = joint[b * 2 + static_cast<std::size_t>(label)];
        if (c > 0) {
          const double p = static_cast<double>(c) / dn;
          h_xy -= p * std::log(p);
        }
      }
    }
    result.scores[f] = std::max(0.0, h_x + h_y - h_xy);  // clamp fp noise
  }

  result.ranking.resize(width);
  std::iota(result.ranking.begin(), result.ranking.end(), 0);
  std::stable_sort(result.ranking.begin(), result.ranking.end(),
                   [&](std::size_t a, std::size_t b) {
                     return result.scores[a] > result.scores[b];
                   });
  return result;
}

std::vector<std::size_t> select_top_k_features(const Dataset& data, std::size_t k,
                                               std::size_t bins) {
  const MutualInfoResult mi = mutual_information(data, bins);
  const std::size_t keep = std::min(k, mi.ranking.size());
  return {mi.ranking.begin(), mi.ranking.begin() + static_cast<std::ptrdiff_t>(keep)};
}

}  // namespace drlhmd::ml
