// Gradient-boosted decision trees in the LightGBM style: quantile histogram
// binning, leaf-wise (best-first) tree growth with a leaf budget, logistic
// loss, second-order (Newton) leaf values with L2 smoothing and shrinkage.
#pragma once

#include "ml/classifier.hpp"
#include "ml/forest_kernel.hpp"

namespace drlhmd::ml {

struct GbdtConfig {
  std::size_t n_rounds = 80;
  std::size_t max_leaves = 31;
  std::size_t max_depth = 8;
  std::size_t max_bins = 64;
  std::size_t min_samples_leaf = 5;
  double learning_rate = 0.1;
  double lambda_l2 = 1.0;
  double min_gain = 1e-6;
  std::uint64_t seed = 23;
};

class Gbdt final : public Classifier {
 public:
  explicit Gbdt(GbdtConfig config = {});

  void fit(const Dataset& train) override;
  /// Streamed fit: columns are binned one scratch column at a time, and
  /// every boosting round (including the raw-score update, which traverses
  /// the uint8 binned matrix — decision-identical because each split
  /// threshold sits exactly on a bin upper edge) runs off the 1-byte codes.
  /// After binning, the double feature matrix is never touched again, so
  /// training holds width*rows bytes instead of width*rows doubles.
  /// Canonical path — fit(Dataset) routes through it via the single-shard
  /// adapter, so streamed and monolithic fits build byte-identical models.
  void fit_stream(const DataSource& train) override;
  double predict_proba(std::span<const double> features) const override;
  /// Tree-outer block traversal (16-lane lockstep); bitwise identical to
  /// sigmoid(raw_score(row)) per row.
  void predict_proba_batch(BatchView batch, std::span<double> out) const override;
  using Classifier::predict_proba_batch;
  /// Quantized ensemble kernel: all boosting rounds fused into one SoA
  /// arena over a shared per-feature cut grid.  Split decisions are exact;
  /// the raw score (and hence the probability) differs from the exact path
  /// only by float rounding of the per-round leaf values (~1e-7 relative).
  void predict_proba_batch_fast(BatchView batch,
                                std::span<double> out) const override;
  /// Fuse scaler + feature selection into the ensemble kernel (see
  /// ForestKernel::fuse_preprocess).
  void fuse_preprocess(std::span<const double> mean,
                       std::span<const double> scale,
                       std::span<const std::uint32_t> columns) {
    kernel_.fuse_preprocess(mean, scale, columns);
  }
  const ForestKernel& kernel() const { return kernel_; }
  std::string name() const override { return "LightGBM"; }
  std::vector<std::uint8_t> serialize() const override;
  std::unique_ptr<Classifier> clone_untrained() const override;
  bool trained() const override { return trained_; }

  static Gbdt deserialize(std::span<const std::uint8_t> bytes);

  std::size_t tree_count() const { return trees_.size(); }

  /// Raw additive score before the sigmoid (log-odds).
  double raw_score(std::span<const double> features) const;
  /// out[r] = raw_score of batch row r (same accumulation order).
  void raw_score_batch(BatchView batch, std::span<double> out) const;

 private:
  struct Node {
    static constexpr std::int32_t kLeaf = -1;
    std::int32_t feature = kLeaf;
    double threshold = 0.0;  // real-valued: go left when x <= threshold
    std::int32_t left = 0;
    std::int32_t right = 0;
    double value = 0.0;  // leaf contribution (already shrunk)
  };
  using Tree = std::vector<Node>;

  Tree grow_tree(const std::vector<std::vector<std::uint8_t>>& binned,
                 const std::vector<std::vector<double>>& bin_uppers,
                 std::span<const double> gradients, std::span<const double> hessians,
                 std::size_t n_rows) const;

  /// Batch traversal mirror of one tree, rebuilt by fit/deserialize (never
  /// serialized).  Children sit in an indexable pair so the descent is a
  /// pure `idx = kid[v <= threshold ? 0 : 1]`, and leaves self-loop, so
  /// the lockstep sweep needs no leaf test (see DecisionTree::FlatNode).
  struct FlatNode {
    std::uint32_t feature = 0;
    std::uint32_t kid[2] = {0, 0};
    double threshold = 0.0;
  };

  /// Rebuild flat_trees_ / flat_depths_ / required_width_ from trees_.
  void build_flat();

  GbdtConfig config_;
  std::vector<Tree> trees_;
  double base_score_ = 0.0;  // prior log-odds
  bool trained_ = false;
  ForestKernel kernel_;  // quantized mirror; rebuilt, never serialized
  std::vector<std::vector<FlatNode>> flat_trees_;
  std::vector<std::size_t> flat_depths_;  // root->leaf transitions per tree
  std::size_t required_width_ = 0;        // widest feature index + 1
};

}  // namespace drlhmd::ml
