#include "ml/curves.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace drlhmd::ml {
namespace {

struct Sorted {
  std::vector<std::size_t> order;  // descending score
  std::size_t n_pos = 0;
  std::size_t n_neg = 0;
};

Sorted sort_by_score(std::span<const int> truth, std::span<const double> scores) {
  if (truth.size() != scores.size())
    throw std::invalid_argument("curves: size mismatch");
  if (truth.empty()) throw std::invalid_argument("curves: empty input");
  Sorted s;
  s.order.resize(truth.size());
  std::iota(s.order.begin(), s.order.end(), 0);
  std::sort(s.order.begin(), s.order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
  for (int t : truth) {
    if (t != 0 && t != 1) throw std::invalid_argument("curves: labels must be 0/1");
    (t == 1 ? s.n_pos : s.n_neg) += 1;
  }
  return s;
}

}  // namespace

std::vector<RocPoint> roc_curve(std::span<const int> truth,
                                std::span<const double> scores) {
  const Sorted s = sort_by_score(truth, scores);
  std::vector<RocPoint> curve;
  curve.push_back({scores[s.order.front()] + 1.0, 0.0, 0.0});

  std::size_t tp = 0, fp = 0;
  const double np = std::max<std::size_t>(1, s.n_pos);
  const double nn = std::max<std::size_t>(1, s.n_neg);
  std::size_t i = 0;
  while (i < s.order.size()) {
    const double score = scores[s.order[i]];
    // Consume the whole tie group before emitting a point.
    while (i < s.order.size() && scores[s.order[i]] == score) {
      (truth[s.order[i]] == 1 ? tp : fp) += 1;
      ++i;
    }
    curve.push_back({score, static_cast<double>(fp) / nn,
                     static_cast<double>(tp) / np});
  }
  return curve;
}

std::vector<PrPoint> pr_curve(std::span<const int> truth,
                              std::span<const double> scores) {
  const Sorted s = sort_by_score(truth, scores);
  std::vector<PrPoint> curve;
  std::size_t tp = 0, fp = 0;
  const double np = std::max<std::size_t>(1, s.n_pos);
  std::size_t i = 0;
  while (i < s.order.size()) {
    const double score = scores[s.order[i]];
    while (i < s.order.size() && scores[s.order[i]] == score) {
      (truth[s.order[i]] == 1 ? tp : fp) += 1;
      ++i;
    }
    const double denom = static_cast<double>(tp + fp);
    curve.push_back({score, static_cast<double>(tp) / np,
                     denom > 0 ? static_cast<double>(tp) / denom : 1.0});
  }
  return curve;
}

double auc_from_curve(const std::vector<RocPoint>& curve) {
  if (curve.size() < 2) return 0.5;
  double area = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double dx = curve[i].fpr - curve[i - 1].fpr;
    area += dx * 0.5 * (curve[i].tpr + curve[i - 1].tpr);
  }
  return area;
}

double threshold_for_fpr(std::span<const int> truth,
                         std::span<const double> scores, double max_fpr) {
  if (max_fpr < 0.0 || max_fpr > 1.0)
    throw std::invalid_argument("threshold_for_fpr: max_fpr out of [0,1]");
  const auto curve = roc_curve(truth, scores);
  double best_threshold = curve.front().threshold;
  for (const RocPoint& p : curve) {
    if (p.fpr <= max_fpr) best_threshold = p.threshold;
    else break;
  }
  return best_threshold;
}

}  // namespace drlhmd::ml
