#include "ml/preprocess.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ml/data_source.hpp"
#include "util/serialize.hpp"
#include "util/stats.hpp"

namespace drlhmd::ml {

void StandardScaler::fit(const Dataset& data) {
  data.validate();
  fit_stream(DatasetSource(data));
}

void StandardScaler::fit_stream(const DataSource& data) {
  if (data.rows() == 0)
    throw std::invalid_argument("StandardScaler::fit: empty data");
  const std::size_t width = data.num_features();
  mean_.resize(width);
  scale_.resize(width);
  for (std::size_t c = 0; c < width; ++c) {
    util::RunningStats stats;
    for (std::size_t s = 0; s < data.num_shards(); ++s)
      for (double v : data.shard(s).col(c)) stats.add(v);
    mean_[c] = stats.mean();
    const double sd = stats.stddev();
    scale_[c] = sd > 0.0 ? sd : 1.0;
  }
}

std::vector<double> StandardScaler::transform(std::span<const double> row) const {
  if (row.size() != mean_.size())
    throw std::invalid_argument("StandardScaler::transform: width mismatch");
  std::vector<double> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c)
    out[c] = (row[c] - mean_[c]) / scale_[c];
  return out;
}

void StandardScaler::transform_inplace(MutableBatchView batch) const {
  if (batch.cols() != mean_.size())
    throw std::invalid_argument("StandardScaler::transform_inplace: width mismatch");
  for (std::size_t c = 0; c < batch.cols(); ++c) {
    const double m = mean_[c];
    const double s = scale_[c];
    for (double& v : batch.col(c)) v = (v - m) / s;
  }
}

Dataset StandardScaler::transform(const Dataset& data) const {
  if (data.num_features() != mean_.size())
    throw std::invalid_argument("StandardScaler::transform: width mismatch");
  Dataset out;
  out.y = data.y;
  out.feature_names = data.feature_names;
  out.X = data.X;
  transform_inplace(out.X.mutable_view());
  return out;
}

std::vector<double> StandardScaler::inverse_transform(std::span<const double> row) const {
  if (row.size() != mean_.size())
    throw std::invalid_argument("StandardScaler::inverse_transform: width mismatch");
  std::vector<double> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c)
    out[c] = row[c] * scale_[c] + mean_[c];
  return out;
}

std::vector<std::uint8_t> StandardScaler::serialize() const {
  util::ByteWriter w;
  w.write_string("SCAL");
  w.write_u8(1);  // format version
  w.write_f64_vec(mean_);
  w.write_f64_vec(scale_);
  return w.take();
}

StandardScaler StandardScaler::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.read_string() != "SCAL")
    throw std::invalid_argument("StandardScaler::deserialize: bad magic");
  if (r.read_u8() != 1)
    throw std::invalid_argument("StandardScaler::deserialize: bad version");
  StandardScaler scaler;
  scaler.mean_ = r.read_f64_vec();
  scaler.scale_ = r.read_f64_vec();
  if (scaler.mean_.size() != scaler.scale_.size())
    throw std::invalid_argument("StandardScaler::deserialize: width mismatch");
  return scaler;
}

Dataset clean(const Dataset& data, double q_low, double q_high) {
  data.validate();
  if (!(q_low < q_high))
    throw std::invalid_argument("clean: q_low must be < q_high");
  Dataset out;
  out.feature_names = data.feature_names;
  const std::size_t width = data.num_features();

  // Pass 1: find rows whose every entry is finite (column sweep).
  std::vector<char> finite(data.size(), 1);
  for (std::size_t c = 0; c < width; ++c) {
    const ColumnView colc = data.col(c);
    for (std::size_t i = 0; i < colc.size(); ++i)
      if (!std::isfinite(colc[i])) finite[i] = 0;
  }
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < data.size(); ++i)
    if (finite[i]) keep.push_back(i);
  if (keep.empty()) return out;

  // Pass 2: winsorize each feature to its quantile range, writing output
  // columns directly.
  out.X = FeatureMatrix(keep.size(), width);
  out.y.reserve(keep.size());
  for (std::size_t i : keep) out.y.push_back(data.y[i]);
  std::vector<double> col(keep.size());
  for (std::size_t c = 0; c < width; ++c) {
    const ColumnView src = data.col(c);
    for (std::size_t k = 0; k < keep.size(); ++k) col[k] = src[keep[k]];
    const double lo = util::quantile(col, q_low);
    const double hi = util::quantile(col, q_high);
    const std::span<double> dst = out.X.col(c);
    for (std::size_t k = 0; k < keep.size(); ++k)
      dst[k] = std::clamp(col[k], lo, hi);
  }
  return out;
}

FeatureBounds feature_bounds(const Dataset& data) {
  data.validate();
  if (data.size() == 0) throw std::invalid_argument("feature_bounds: empty data");
  const std::size_t width = data.num_features();
  FeatureBounds b;
  b.lo.assign(width, 0.0);
  b.hi.assign(width, 0.0);
  for (std::size_t c = 0; c < width; ++c) {
    const ColumnView colc = data.col(c);
    b.lo[c] = b.hi[c] = colc[0];
    for (double v : colc) {
      b.lo[c] = std::min(b.lo[c], v);
      b.hi[c] = std::max(b.hi[c], v);
    }
  }
  return b;
}

void FeatureBounds::clip(std::span<double> row) const {
  if (row.size() != lo.size())
    throw std::invalid_argument("FeatureBounds::clip: width mismatch");
  for (std::size_t c = 0; c < row.size(); ++c)
    row[c] = std::clamp(row[c], lo[c], hi[c]);
}

}  // namespace drlhmd::ml
