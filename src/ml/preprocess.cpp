#include "ml/preprocess.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/serialize.hpp"
#include "util/stats.hpp"

namespace drlhmd::ml {

void StandardScaler::fit(const Dataset& data) {
  data.validate();
  if (data.size() == 0) throw std::invalid_argument("StandardScaler::fit: empty data");
  const std::size_t width = data.num_features();
  std::vector<util::RunningStats> stats(width);
  for (const auto& row : data.X)
    for (std::size_t c = 0; c < width; ++c) stats[c].add(row[c]);
  mean_.resize(width);
  scale_.resize(width);
  for (std::size_t c = 0; c < width; ++c) {
    mean_[c] = stats[c].mean();
    const double sd = stats[c].stddev();
    scale_[c] = sd > 0.0 ? sd : 1.0;
  }
}

std::vector<double> StandardScaler::transform(std::span<const double> row) const {
  if (row.size() != mean_.size())
    throw std::invalid_argument("StandardScaler::transform: width mismatch");
  std::vector<double> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c)
    out[c] = (row[c] - mean_[c]) / scale_[c];
  return out;
}

Dataset StandardScaler::transform(const Dataset& data) const {
  Dataset out;
  out.y = data.y;
  out.feature_names = data.feature_names;
  out.X.reserve(data.size());
  for (const auto& row : data.X) out.X.push_back(transform(row));
  return out;
}

std::vector<double> StandardScaler::inverse_transform(std::span<const double> row) const {
  if (row.size() != mean_.size())
    throw std::invalid_argument("StandardScaler::inverse_transform: width mismatch");
  std::vector<double> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c)
    out[c] = row[c] * scale_[c] + mean_[c];
  return out;
}

std::vector<std::uint8_t> StandardScaler::serialize() const {
  util::ByteWriter w;
  w.write_string("SCAL");
  w.write_u8(1);  // format version
  w.write_f64_vec(mean_);
  w.write_f64_vec(scale_);
  return w.take();
}

StandardScaler StandardScaler::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.read_string() != "SCAL")
    throw std::invalid_argument("StandardScaler::deserialize: bad magic");
  if (r.read_u8() != 1)
    throw std::invalid_argument("StandardScaler::deserialize: bad version");
  StandardScaler scaler;
  scaler.mean_ = r.read_f64_vec();
  scaler.scale_ = r.read_f64_vec();
  if (scaler.mean_.size() != scaler.scale_.size())
    throw std::invalid_argument("StandardScaler::deserialize: width mismatch");
  return scaler;
}

Dataset clean(const Dataset& data, double q_low, double q_high) {
  data.validate();
  if (!(q_low < q_high))
    throw std::invalid_argument("clean: q_low must be < q_high");
  Dataset out;
  out.feature_names = data.feature_names;

  // Pass 1: drop non-finite rows.
  std::vector<const std::vector<double>*> keep;
  std::vector<int> keep_y;
  for (std::size_t i = 0; i < data.size(); ++i) {
    bool finite = true;
    for (double v : data.X[i])
      if (!std::isfinite(v)) { finite = false; break; }
    if (finite) {
      keep.push_back(&data.X[i]);
      keep_y.push_back(data.y[i]);
    }
  }
  if (keep.empty()) return out;

  // Pass 2: winsorize each feature to its quantile range.
  const std::size_t width = keep.front()->size();
  std::vector<double> lo(width), hi(width);
  std::vector<double> col(keep.size());
  for (std::size_t c = 0; c < width; ++c) {
    for (std::size_t i = 0; i < keep.size(); ++i) col[i] = (*keep[i])[c];
    lo[c] = util::quantile(col, q_low);
    hi[c] = util::quantile(col, q_high);
  }
  for (std::size_t i = 0; i < keep.size(); ++i) {
    std::vector<double> row = *keep[i];
    for (std::size_t c = 0; c < width; ++c) row[c] = std::clamp(row[c], lo[c], hi[c]);
    out.push(std::move(row), keep_y[i]);
  }
  return out;
}

FeatureBounds feature_bounds(const Dataset& data) {
  data.validate();
  if (data.size() == 0) throw std::invalid_argument("feature_bounds: empty data");
  const std::size_t width = data.num_features();
  FeatureBounds b;
  b.lo.assign(width, 0.0);
  b.hi.assign(width, 0.0);
  for (std::size_t c = 0; c < width; ++c) {
    b.lo[c] = b.hi[c] = data.X.front()[c];
  }
  for (const auto& row : data.X) {
    for (std::size_t c = 0; c < width; ++c) {
      b.lo[c] = std::min(b.lo[c], row[c]);
      b.hi[c] = std::max(b.hi[c], row[c]);
    }
  }
  return b;
}

void FeatureBounds::clip(std::span<double> row) const {
  if (row.size() != lo.size())
    throw std::invalid_argument("FeatureBounds::clip: width mismatch");
  for (std::size_t c = 0; c < row.size(); ++c)
    row[c] = std::clamp(row[c], lo[c], hi[c]);
}

}  // namespace drlhmd::ml
