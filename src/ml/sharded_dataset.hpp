// On-disk columnar shard format ("DSH1") + the mmap-backed DataSource
// over a directory of shards.
//
// One file per shard:
//
//   offset 0   u32  magic 'D','S','H','1'
//   offset 4   u32  header_size (bytes of the ByteWriter header block)
//   offset 8   header block (ByteWriter encoding):
//                u8      format version (1)
//                u32     shard index
//                string  machine profile id
//                u64     rows
//                u64     cols
//                u64     n feature names, then that many strings
//                u32     CRC-32 of the payload
//                u64     payload size in bytes
//   ...        zero padding to the next 64-byte boundary
//   payload    cols columns of `rows` f64 each (column-major, stride =
//              rows), then `rows` i32 labels
//
// The payload starts 64-byte aligned and each column is rows*8 bytes, so
// every column and the label block stay naturally aligned — a mapped shard
// aliases directly into a BatchView (base = first payload byte, stride =
// rows) and a std::span<const int> with zero copies and zero fixups.  The
// CRC covers the payload; writes go through tmp-file + rename so a crashed
// build never leaves a half-written shard under its final name.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ml/data_source.hpp"
#include "ml/feature_matrix.hpp"
#include "util/mmap_file.hpp"

namespace drlhmd::ml {

/// Canonical shard file name inside a corpus directory: shard-0007.dsh
std::string shard_file_name(std::uint32_t index);

/// Write one shard file (atomic: tmp + rename).  `X` supplies the feature
/// block; labels.size() must equal X.rows() and feature_names.size() must
/// equal X.cols().
void write_shard(const std::string& path, std::uint32_t index,
                 const std::string& profile_id,
                 const std::vector<std::string>& feature_names,
                 const FeatureMatrix& X, std::span<const int> labels);

/// Header + integrity summary of one shard file (for `hmdctl corpus info`).
struct ShardInfo {
  std::string path;
  std::uint32_t index = 0;
  std::string profile_id;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t file_bytes = 0;
  bool crc_ok = false;
};

/// Directory of mmap'd shards exposed as a streaming DataSource.  Shards
/// are ordered by their header shard index; every shard must agree on the
/// feature-name list.
class ShardedDataset final : public DataSource {
 public:
  /// Map every *.dsh file in `dir`.  When `verify_crc` is set (the
  /// default), each shard's payload CRC is checked at open and a mismatch
  /// throws — flipping one bit anywhere in a mapped column is detected
  /// before any trainer reads it.
  static ShardedDataset open(const std::string& dir, bool verify_crc = true);

  /// Lenient per-shard inspection (never throws on a bad shard: its
  /// crc_ok is simply false).  Used by `hmdctl corpus info`.
  static std::vector<ShardInfo> inspect(const std::string& dir);

  std::size_t num_shards() const override { return shards_.size(); }
  std::size_t rows() const override { return rows_; }
  std::size_t num_features() const override { return feature_names_.size(); }
  const std::vector<std::string>& feature_names() const override {
    return feature_names_;
  }
  BatchView shard(std::size_t s) const override;
  std::span<const int> labels(std::size_t s) const override;

  const std::string& profile_id(std::size_t s) const {
    return shards_[s].info.profile_id;
  }
  const ShardInfo& info(std::size_t s) const { return shards_[s].info; }
  /// Total bytes of file data currently mapped (the out-of-core working
  /// set lives here, not on the heap).
  std::size_t mapped_bytes() const;

 private:
  struct MappedShard {
    util::MmapFile file;
    ShardInfo info;
    std::size_t payload_offset = 0;
  };

  std::vector<MappedShard> shards_;
  std::vector<std::string> feature_names_;
  std::size_t rows_ = 0;
};

}  // namespace drlhmd::ml
