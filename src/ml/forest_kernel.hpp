// Quantized SoA inference kernel for tree ensembles (DT / RF / GBDT).
//
// The per-tree pointer-chasing layouts are fused into one contiguous
// ensemble arena of 8-byte nodes, and every threshold comparison is
// replaced by an integer compare against a per-feature *cut index*:
//
//   cuts[f]  = sorted distinct thresholds used by feature f anywhere in
//              the ensemble;
//   code(x)  = #{ c in cuts[f] : c < x }   (uint16, lower_bound)
//   x <= t   <=>  code(x) <= tq            where cuts[f][tq] == t
//
// so the traversal decision `x <= threshold ? left : right` becomes
// `left + (code > tq)` — branch-free, 8 bytes of node state, and *exact*:
// every double that reaches the comparison lands on the same side as the
// reference path (NaN maps to code 0xFFFF and therefore always goes
// right, matching `v <= t ? 0 : 1`).  Codes are computed once per
// (feature, row) tile and shared by every tree in the ensemble.
//
// The speedup over the FlatNode path comes from three structural changes
// the exact path cannot make:
//   * shared encode — the binary search against the thresholds is hoisted
//     out of the traversal and paid once per (feature, row) tile instead
//     of once per tree level, as interleaved branchless searches that are
//     throughput- rather than latency-bound;
//   * register-lane traversal — 16 rows descend in lockstep as named
//     scalar indices (never spilled), and each level costs one 8-byte
//     node load plus one uint16 code load with the code-tile offset baked
//     into the node, compare, select — no branches, no multiplies;
//   * quantized state — 8-byte nodes and 2-byte codes instead of 24-byte
//     FlatNodes and 8-byte doubles keep the whole ensemble cache-resident
//     while every tree replays the tile.
//
// The kernel is a derived artifact: rebuilt on fit()/deserialize(), never
// serialized.  Scratch comes from the per-thread arena (zero heap
// allocations in steady state).  See DESIGN.md §12.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/feature_matrix.hpp"

namespace drlhmd::ml {

/// One node of a source tree handed to ForestKernel::build (root at
/// index 0; `left`/`right` are indices within the same tree).
struct KernelBuildNode {
  bool leaf = false;
  std::uint32_t feature = 0;
  double threshold = 0.0;  // decision: go left iff x <= threshold
  std::uint32_t left = 0;
  std::uint32_t right = 0;
  double value = 0.0;  // leaf payload (probability / GBDT leaf value)
};

class ForestKernel {
 public:
  ForestKernel() = default;

  /// Distinct-threshold budget per feature: one more and the uint16 cut
  /// code (with 0xFFFF reserved for NaN) could not index the grid, so
  /// build() refuses and ready() stays false (callers fall back to the
  /// exact FlatNode path).
  static constexpr std::size_t kMaxCuts = 65000;

  /// Build the quantized ensemble from per-tree node vectors.  Leaves the
  /// kernel unready (without throwing) when the ensemble exceeds the
  /// uint16 feature/cut budgets.
  void build(const std::vector<std::vector<KernelBuildNode>>& trees);

  /// Fuse a standard scaler + feature selection into the cut grid: cut c
  /// of model feature f is rewritten to the largest double X with
  /// (X - mean[f]) / scale[f] <= c (the caller's double-precision
  /// transform), and feature f is remapped to raw column columns[f].
  /// Afterwards accumulate() consumes raw, unscaled BatchView columns and
  /// makes exactly the same decisions the exact path makes on the scaled
  /// view.  mean/scale/columns are indexed by model feature and must
  /// cover required_width() entries.
  void fuse_preprocess(std::span<const double> mean,
                       std::span<const double> scale,
                       std::span<const std::uint32_t> columns);

  bool ready() const { return !roots_.empty(); }
  bool fused() const { return fused_; }
  std::size_t tree_count() const { return roots_.size(); }
  std::size_t node_count() const { return nodes_.size(); }
  /// Minimum batch width accepted by accumulate().
  std::size_t required_width() const { return required_width_; }

  /// out[r] += sum over trees of the (float) leaf value reached by row r.
  /// Caller owns the initial contents of `out` (zero for DT/RF, the base
  /// score for GBDT).  Tree-major accumulation order matches the exact
  /// batch paths.
  void accumulate(BatchView batch, std::span<double> out) const;

 private:
  // 8-byte quantized node.  Internal: children are DFS-adjacent
  // (right == left + 1), so `left + (code > tq)` selects the child.
  // Leaf: tq == kLeafTq and left == own index — code is a uint16 and can
  // never exceed 0xFFFF, so leaf lanes self-loop ("park") for the rest of
  // the fixed-depth trip.
  struct Node {
    std::uint16_t feature = 0;
    std::uint16_t tq = 0;
    std::uint32_t left = 0;
  };
  static constexpr std::uint16_t kLeafTq = 0xFFFF;

  /// Rebuild scaled_nodes_ (feature index pre-multiplied by the code-tile
  /// stride so the hot loop adds it straight to the lane offset) after the
  /// cut grid changes; clears it when feature * stride overflows uint16
  /// (ensembles wider than 64 model features fall back to the tiled path).
  void bake_scaled();
  /// Stage 1: quantize tile rows [t0, t0 + tile) onto the cut grid into a
  /// feature-major code tile, codes[f * tile_cap + r].
  void encode_tile(BatchView batch, std::size_t t0, std::size_t tile,
                   std::uint16_t* codes, std::size_t tile_cap) const;
  void accumulate_scaled(BatchView batch, std::span<double> out) const;
  void accumulate_tiled(BatchView batch, std::span<double> out) const;

  std::vector<Node> nodes_;         // all trees, DFS order, children adjacent
  std::vector<Node> scaled_nodes_;  // mirror with feature := feature * stride
  std::vector<float> leaf_values_;  // per node; 0 for internal nodes
  std::vector<std::uint32_t> roots_;
  std::vector<std::uint32_t> depths_;       // fixed trip count per tree
  std::vector<double> cuts_;                // CSR threshold grid by feature
  std::vector<std::uint32_t> cut_offsets_;  // size n_model_features + 1
  std::vector<std::uint32_t> feature_map_;  // model feature -> batch column
  std::size_t required_width_ = 0;
  bool fused_ = false;
};

}  // namespace drlhmd::ml
