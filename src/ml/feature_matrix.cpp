#include "ml/feature_matrix.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace drlhmd::ml {

void BatchView::gather_row(std::size_t r, std::span<double> out) const {
  if (out.size() != cols_)
    throw std::invalid_argument("BatchView::gather_row: width mismatch");
  for (std::size_t c = 0; c < cols_; ++c) out[c] = base_[c * stride_ + r];
}

std::vector<double> BatchView::row_copy(std::size_t r) const {
  std::vector<double> out(cols_);
  gather_row(r, out);
  return out;
}

FeatureMatrix::FeatureMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), capacity_(rows), data_(rows * cols, 0.0) {}

FeatureMatrix FeatureMatrix::from_rows(
    const std::vector<std::vector<double>>& rows) {
  FeatureMatrix m;
  if (rows.empty()) return m;
  m.rows_ = rows.size();
  m.cols_ = rows.front().size();
  m.capacity_ = m.rows_;
  m.data_.resize(m.rows_ * m.cols_);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols_)
      throw std::invalid_argument("FeatureMatrix::from_rows: ragged input");
    for (std::size_t c = 0; c < m.cols_; ++c) m.at(r, c) = rows[r][c];
  }
  return m;
}

void FeatureMatrix::grow(std::size_t min_capacity) {
  std::size_t next = capacity_ == 0 ? 8 : capacity_ * 2;
  next = std::max(next, min_capacity);
  std::vector<double> packed(next * cols_);
  for (std::size_t c = 0; c < cols_; ++c) {
    const double* src = data_.data() + c * capacity_;
    std::copy(src, src + rows_, packed.data() + c * next);
  }
  data_ = std::move(packed);
  capacity_ = next;
}

void FeatureMatrix::reserve_rows(std::size_t n) {
  // Width unknown until the first push fixes it; nothing to allocate yet.
  if (cols_ == 0) return;
  if (n > capacity_) grow(n);
}

void FeatureMatrix::push_row(std::span<const double> row) {
  if (rows_ == 0 && cols_ == 0) {
    cols_ = row.size();
  } else if (row.size() != cols_) {
    throw std::invalid_argument(
        "FeatureMatrix::push_row: row width mismatch (ragged input)");
  }
  if (rows_ == capacity_ && cols_ > 0) grow(rows_ + 1);
  for (std::size_t c = 0; c < cols_; ++c) data_[c * capacity_ + rows_] = row[c];
  ++rows_;
}

void FeatureMatrix::push_row_from(const FeatureMatrix& src, std::size_t r) {
  if (r >= src.rows_)
    throw std::out_of_range("FeatureMatrix::push_row_from: row out of range");
  if (rows_ == 0 && cols_ == 0) {
    cols_ = src.cols_;
  } else if (src.cols_ != cols_) {
    throw std::invalid_argument("FeatureMatrix::push_row_from: width mismatch");
  }
  if (rows_ == capacity_ && cols_ > 0) grow(rows_ + 1);
  for (std::size_t c = 0; c < cols_; ++c)
    data_[c * capacity_ + rows_] = src.at(r, c);
  ++rows_;
}

void FeatureMatrix::append(const FeatureMatrix& other) {
  if (other.rows_ == 0) return;
  if (rows_ == 0 && cols_ == 0) cols_ = other.cols_;
  if (other.cols_ != cols_)
    throw std::invalid_argument("FeatureMatrix::append: width mismatch");
  if (rows_ + other.rows_ > capacity_ && cols_ > 0) grow(rows_ + other.rows_);
  for (std::size_t c = 0; c < cols_; ++c) {
    const ColumnView src = other.col(c);
    std::copy(src.begin(), src.end(), data_.data() + c * capacity_ + rows_);
  }
  rows_ += other.rows_;
}

void FeatureMatrix::swap_rows(std::size_t a, std::size_t b) {
  if (a == b) return;
  for (std::size_t c = 0; c < cols_; ++c)
    std::swap(data_[c * capacity_ + a], data_[c * capacity_ + b]);
}

void FeatureMatrix::clear() {
  rows_ = 0;
  cols_ = 0;
  capacity_ = 0;
  data_.clear();
}

FeatureMatrix FeatureMatrix::select_columns(
    std::span<const std::size_t> indices) const {
  for (std::size_t idx : indices)
    if (idx >= cols_)
      throw std::out_of_range("FeatureMatrix::select_columns: index out of range");
  FeatureMatrix out(rows_, indices.size());
  for (std::size_t c = 0; c < indices.size(); ++c) {
    const ColumnView src = col(indices[c]);
    std::copy(src.begin(), src.end(), out.col(c).begin());
  }
  return out;
}

bool operator==(const FeatureMatrix& a, const FeatureMatrix& b) {
  if (a.rows_ != b.rows_ || a.cols_ != b.cols_) return false;
  for (std::size_t c = 0; c < a.cols_; ++c) {
    const ColumnView ca = a.col(c), cb = b.col(c);
    if (!std::equal(ca.begin(), ca.end(), cb.begin())) return false;
  }
  return true;
}

}  // namespace drlhmd::ml
