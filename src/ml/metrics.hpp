// Detection-quality metrics used throughout the paper's evaluation:
// ACC, F1, AUC, TPR, FPR, FNR, TNR, precision, recall.
// Convention: label 1 = malware = positive class.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/serialize.hpp"

namespace drlhmd::ml {

struct ConfusionMatrix {
  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  std::uint64_t tn = 0;
  std::uint64_t fn = 0;

  std::uint64_t total() const { return tp + fp + tn + fn; }
  void add(int truth, int predicted);
};

struct MetricReport {
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;   // == TPR
  double f1 = 0.0;
  double auc = 0.5;
  double tpr = 0.0;
  double fpr = 0.0;
  double fnr = 0.0;
  double tnr = 0.0;
  ConfusionMatrix confusion;
};

/// Metrics from hard predictions (AUC left at 0.5).
MetricReport evaluate_predictions(std::span<const int> truth,
                                  std::span<const int> predicted);

/// Metrics from scores: hard metrics at `threshold`, plus rank-based AUC
/// (Mann-Whitney with tie correction).
MetricReport evaluate_scores(std::span<const int> truth,
                             std::span<const double> scores,
                             double threshold = 0.5);

/// Rank-based ROC AUC only.
double roc_auc(std::span<const int> truth, std::span<const double> scores);

/// One formatted row "ACC F1 AUC TPR FPR FNR TNR" (paper Table 2 layout).
std::vector<std::string> metric_row(const MetricReport& m);
std::vector<std::string> metric_header();

/// Exact byte round trip of a report (used by checkpoint artifacts and by
/// tests asserting bitwise-identical evaluations across a restart).
void write_metric_report(util::ByteWriter& w, const MetricReport& m);
MetricReport read_metric_report(util::ByteReader& r);

}  // namespace drlhmd::ml
