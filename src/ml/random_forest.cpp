#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ml/data_source.hpp"
#include "util/parallel.hpp"

namespace drlhmd::ml {
namespace {
constexpr std::uint8_t kFormatVersion = 1;
}

RandomForest::RandomForest(RandomForestConfig config) : config_(config) {
  if (config_.n_trees == 0)
    throw std::invalid_argument("RandomForest: n_trees must be > 0");
}

void RandomForest::fit(const Dataset& train) {
  train.validate();
  fit_stream(DatasetSource(train));
}

void RandomForest::fit_stream(const DataSource& train) {
  const ColumnAccess cols(train);
  const std::size_t n = cols.rows();
  if (n == 0) throw std::invalid_argument("RandomForest::fit: empty dataset");

  trees_.clear();
  trees_.reserve(config_.n_trees);
  util::Rng rng(config_.seed);

  DecisionTreeConfig tree_config = config_.tree;
  if (tree_config.max_features == 0) {
    tree_config.max_features = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::lround(
               std::sqrt(static_cast<double>(cols.num_features())))));
  }

  // Draw every tree's bootstrap weights and seed serially first — the rng
  // stream is consumed in exactly the order the old per-tree loop used, so
  // the fitted forest is bitwise identical regardless of thread count.
  std::vector<std::vector<std::uint32_t>> weights(config_.n_trees);
  std::vector<std::uint64_t> seeds(config_.n_trees);
  for (std::size_t t = 0; t < config_.n_trees; ++t) {
    // Bootstrap: multinomial row multiplicities.
    weights[t].assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) ++weights[t][rng.next_below(n)];
    seeds[t] = rng.next();
  }

  // Fit trees into pre-sized slots; each slot depends only on its own
  // pre-drawn state, so scheduling order cannot affect the result.  The
  // shared ColumnAccess cache is once_flag-guarded, so concurrent tree
  // fits materialize each global column exactly once between them.
  trees_.assign(config_.n_trees, DecisionTree(tree_config));
  util::parallel_for("random_forest.fit", 0, config_.n_trees, 1,
                     [&](std::size_t t) {
                       DecisionTreeConfig cfg = tree_config;
                       cfg.seed = seeds[t];
                       DecisionTree tree(cfg);
                       tree.fit_weighted(cols, weights[t]);
                       trees_[t] = std::move(tree);
                     });
  build_kernel();
}

void RandomForest::build_kernel() {
  std::vector<std::vector<KernelBuildNode>> forest;
  forest.reserve(trees_.size());
  for (const auto& tree : trees_) tree.append_kernel_tree(forest);
  kernel_.build(forest);
}

void RandomForest::predict_proba_batch_fast(BatchView batch,
                                            std::span<double> out) const {
  if (!trained()) throw std::logic_error("RandomForest: not trained");
  check_batch_out(batch, out);
  if (!kernel_.ready()) {  // over the uint16 cut budget: exact fallback
    predict_proba_batch(batch, out);
    return;
  }
  std::fill(out.begin(), out.end(), 0.0);
  kernel_.accumulate(batch, out);
  const auto n = static_cast<double>(trees_.size());
  for (double& v : out) v = v / n;
}

double RandomForest::predict_proba(std::span<const double> features) const {
  if (!trained()) throw std::logic_error("RandomForest: not trained");
  double total = 0.0;
  for (const auto& tree : trees_) total += tree.predict_proba(features);
  return total / static_cast<double>(trees_.size());
}

void RandomForest::predict_proba_batch(BatchView batch,
                                       std::span<double> out) const {
  if (!trained()) throw std::logic_error("RandomForest: not trained");
  check_batch_out(batch, out);
  std::fill(out.begin(), out.end(), 0.0);
  for (const auto& tree : trees_) tree.accumulate_proba_batch(batch, out);
  const auto n = static_cast<double>(trees_.size());
  for (double& v : out) v = v / n;
}

std::vector<std::uint8_t> RandomForest::serialize() const {
  util::ByteWriter w;
  w.write_string("RF");
  w.write_u8(kFormatVersion);
  w.write_u64(trees_.size());
  for (const auto& tree : trees_) w.write_bytes(tree.serialize());
  return w.take();
}

RandomForest RandomForest::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.read_string() != "RF")
    throw std::invalid_argument("RandomForest::deserialize: bad magic");
  if (r.read_u8() != kFormatVersion)
    throw std::invalid_argument("RandomForest::deserialize: bad version");
  RandomForest forest;
  const std::uint64_t count = r.read_u64();
  forest.trees_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t t = 0; t < count; ++t)
    forest.trees_.push_back(DecisionTree::deserialize(r.read_bytes()));
  forest.build_kernel();  // derived artifact: never serialized
  return forest;
}

std::unique_ptr<Classifier> RandomForest::clone_untrained() const {
  return std::make_unique<RandomForest>(config_);
}

}  // namespace drlhmd::ml
