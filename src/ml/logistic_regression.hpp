// L2-regularized logistic regression trained by full-batch gradient descent.
//
// Besides being one of the paper's five detectors, LR plays two extra roles
// in the attack pipeline (Algorithm 1): the differentiable surrogate whose
// gradient drives LowProFool, and the "imperceptibility evaluator" that
// scores generated adversarial samples.  Coefficients and the input gradient
// are therefore part of the public interface.
#pragma once

#include "ml/classifier.hpp"

namespace drlhmd::ml {

struct LogisticRegressionConfig {
  double learning_rate = 0.3;
  std::size_t epochs = 1500;
  double l2 = 1e-4;
  std::uint64_t seed = 7;
};

class LogisticRegression final : public Classifier {
 public:
  explicit LogisticRegression(LogisticRegressionConfig config = {});

  void fit(const Dataset& train) override;
  double predict_proba(std::span<const double> features) const override;
  /// Column-sweep logits over the whole batch: out[r] starts at the bias
  /// and adds w[c] * x[r][c] in ascending c, the exact order logit() uses,
  /// so scores are bitwise identical to the row path.
  void predict_proba_batch(BatchView batch, std::span<double> out) const override;
  using Classifier::predict_proba_batch;
  std::string name() const override { return "LR"; }
  std::vector<std::uint8_t> serialize() const override;
  std::unique_ptr<Classifier> clone_untrained() const override;
  bool trained() const override { return !weights_.empty(); }

  static LogisticRegression deserialize(std::span<const std::uint8_t> bytes);

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

  /// d P(y=1|x) / dx — the surrogate gradient used by LowProFool.
  std::vector<double> probability_gradient(std::span<const double> features) const;

  /// d BCE(x, target) / dx for target in {0, 1}.
  std::vector<double> loss_gradient(std::span<const double> features, int target) const;

 private:
  double logit(std::span<const double> features) const;

  LogisticRegressionConfig config_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace drlhmd::ml
