#include "ml/model_zoo.hpp"

#include <stdexcept>

#include "ml/conv_net.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbdt.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/mlp.hpp"
#include "ml/random_forest.hpp"

namespace drlhmd::ml {

std::unique_ptr<Classifier> make_model(ModelKind kind, std::uint64_t seed) {
  switch (kind) {
    case ModelKind::kRf: {
      RandomForestConfig c;
      c.seed += seed;
      return std::make_unique<RandomForest>(c);
    }
    case ModelKind::kDt: {
      DecisionTreeConfig c;
      c.seed += seed;
      return std::make_unique<DecisionTree>(c);
    }
    case ModelKind::kLr: {
      LogisticRegressionConfig c;
      c.seed += seed;
      return std::make_unique<LogisticRegression>(c);
    }
    case ModelKind::kMlp: {
      MlpConfig c;
      c.seed += seed;
      return std::make_unique<MlpClassifier>(c);
    }
    case ModelKind::kLightGbm: {
      GbdtConfig c;
      c.seed += seed;
      return std::make_unique<Gbdt>(c);
    }
    case ModelKind::kNn: {
      ConvNetConfig c;
      c.seed += seed;
      return std::make_unique<ConvNetClassifier>(c);
    }
  }
  throw std::invalid_argument("make_model: bad kind");
}

std::vector<std::unique_ptr<Classifier>> make_classical_models(std::uint64_t seed) {
  std::vector<std::unique_ptr<Classifier>> models;
  for (ModelKind kind : {ModelKind::kRf, ModelKind::kDt, ModelKind::kLr,
                         ModelKind::kMlp, ModelKind::kLightGbm})
    models.push_back(make_model(kind, seed));
  return models;
}

std::vector<std::unique_ptr<Classifier>> make_all_models(std::uint64_t seed) {
  auto models = make_classical_models(seed);
  models.push_back(make_model(ModelKind::kNn, seed));
  return models;
}

std::string classifier_magic(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  const std::string magic = r.read_string();
  for (const char* known : {"RF", "DT", "LR", "MLP", "GBDT", "NN"})
    if (magic == known) return magic;
  throw std::invalid_argument("classifier_magic: unrecognized model bytes");
}

std::unique_ptr<Classifier> load_classifier(std::span<const std::uint8_t> bytes) {
  const std::string magic = classifier_magic(bytes);
  if (magic == "RF")
    return std::make_unique<RandomForest>(RandomForest::deserialize(bytes));
  if (magic == "DT")
    return std::make_unique<DecisionTree>(DecisionTree::deserialize(bytes));
  if (magic == "LR")
    return std::make_unique<LogisticRegression>(
        LogisticRegression::deserialize(bytes));
  if (magic == "MLP")
    return std::make_unique<MlpClassifier>(MlpClassifier::deserialize(bytes));
  if (magic == "GBDT") return std::make_unique<Gbdt>(Gbdt::deserialize(bytes));
  return std::make_unique<ConvNetClassifier>(ConvNetClassifier::deserialize(bytes));
}

}  // namespace drlhmd::ml
