#include "ml/model_zoo.hpp"

#include <stdexcept>

#include "ml/conv_net.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbdt.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/mlp.hpp"
#include "ml/random_forest.hpp"

namespace drlhmd::ml {

std::unique_ptr<Classifier> make_model(ModelKind kind, std::uint64_t seed) {
  switch (kind) {
    case ModelKind::kRf: {
      RandomForestConfig c;
      c.seed += seed;
      return std::make_unique<RandomForest>(c);
    }
    case ModelKind::kDt: {
      DecisionTreeConfig c;
      c.seed += seed;
      return std::make_unique<DecisionTree>(c);
    }
    case ModelKind::kLr: {
      LogisticRegressionConfig c;
      c.seed += seed;
      return std::make_unique<LogisticRegression>(c);
    }
    case ModelKind::kMlp: {
      MlpConfig c;
      c.seed += seed;
      return std::make_unique<MlpClassifier>(c);
    }
    case ModelKind::kLightGbm: {
      GbdtConfig c;
      c.seed += seed;
      return std::make_unique<Gbdt>(c);
    }
    case ModelKind::kNn: {
      ConvNetConfig c;
      c.seed += seed;
      return std::make_unique<ConvNetClassifier>(c);
    }
  }
  throw std::invalid_argument("make_model: bad kind");
}

std::vector<std::unique_ptr<Classifier>> make_classical_models(std::uint64_t seed) {
  std::vector<std::unique_ptr<Classifier>> models;
  for (ModelKind kind : {ModelKind::kRf, ModelKind::kDt, ModelKind::kLr,
                         ModelKind::kMlp, ModelKind::kLightGbm})
    models.push_back(make_model(kind, seed));
  return models;
}

std::vector<std::unique_ptr<Classifier>> make_all_models(std::uint64_t seed) {
  auto models = make_classical_models(seed);
  models.push_back(make_model(ModelKind::kNn, seed));
  return models;
}

}  // namespace drlhmd::ml
