#include "ml/nn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/parallel.hpp"

namespace drlhmd::ml::nn {
namespace {

constexpr std::uint8_t kFormatVersion = 1;

void write_matrix(util::ByteWriter& w, const Matrix& m) {
  w.write_u64(m.rows());
  w.write_u64(m.cols());
  w.write_f64_vec(m.flat());
}

Matrix read_matrix(util::ByteReader& r) {
  const auto rows = static_cast<std::size_t>(r.read_u64());
  const auto cols = static_cast<std::size_t>(r.read_u64());
  const std::vector<double> data = r.read_f64_vec();
  if (data.size() != rows * cols)
    throw std::invalid_argument("nn::read_matrix: size mismatch");
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < data.size(); ++i) m.flat()[i] = data[i];
  return m;
}

void adam_update(Matrix& param, Matrix& grad, Matrix& m, Matrix& v, double lr,
                 double beta1, double beta2, double eps, std::uint64_t t) {
  if (m.empty()) {
    m = Matrix(param.rows(), param.cols());
    v = Matrix(param.rows(), param.cols());
  }
  const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(t));
  const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(t));
  auto pm = param.flat();
  auto gm = grad.flat();
  auto mm = m.flat();
  auto vm = v.flat();
  for (std::size_t i = 0; i < pm.size(); ++i) {
    mm[i] = beta1 * mm[i] + (1.0 - beta1) * gm[i];
    vm[i] = beta2 * vm[i] + (1.0 - beta2) * gm[i] * gm[i];
    const double m_hat = mm[i] / bc1;
    const double v_hat = vm[i] / bc2;
    pm[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
  }
}

}  // namespace

void Layer::adam_step(double, double, double, double, std::uint64_t) {}

// ---------------------------------------------------------------- Dense --

Dense::Dense(std::size_t in_features, std::size_t out_features, util::Rng& rng) {
  if (in_features == 0 || out_features == 0)
    throw std::invalid_argument("Dense: zero-sized layer");
  // He initialization (ReLU-friendly).
  const double stddev = std::sqrt(2.0 / static_cast<double>(in_features));
  w_ = Matrix::randn(in_features, out_features, stddev, rng);
  b_ = Matrix(1, out_features);
  grad_w_ = Matrix(in_features, out_features);
  grad_b_ = Matrix(1, out_features);
}

Matrix Dense::forward(const Matrix& input) {
  input_cache_ = input;
  return infer(input);
}

Matrix Dense::infer(const Matrix& input) const {
  Matrix out = input.matmul(w_);
  out.add_row_broadcast(b_);
  return out;
}

std::size_t Dense::infer_out_cols(std::size_t in_cols) const {
  if (in_cols != w_.rows())
    throw std::invalid_argument("Dense::infer_rows: input width mismatch");
  return w_.cols();
}

void Dense::infer_rows(const double* in, std::size_t rows, std::size_t in_cols,
                       double* out) const {
  // Mirrors infer() == input.matmul(w_) + add_row_broadcast(b_): same
  // zero-init, i-outer/k-middle/j-inner accumulation with the whole-row
  // zero skip, same tiny/parallel split, then a separate bias pass — so
  // outputs are bitwise identical to the Matrix path.
  const std::size_t n = infer_out_cols(in_cols);
  const std::size_t depth = in_cols;
  std::fill(out, out + rows * n, 0.0);
  const double* wdata = w_.flat().data();
  auto row_product = [&](std::size_t i) {
    const double* arow = in + i * depth;
    double* orow = out + i * n;
    for (std::size_t k = 0; k < depth; ++k) {
      const double a = arow[k];
      if (a == 0.0) continue;
      const double* brow = wdata + k * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += a * brow[j];
    }
  };
  if (rows < kMatmulPackedMinDim || depth < kMatmulPackedMinDim ||
      n < kMatmulPackedMinDim) {
    for (std::size_t i = 0; i < rows; ++i) row_product(i);
  } else {
    util::parallel_for("matrix.matmul", 0, rows, kMatmulGrain, row_product);
  }
  const double* bias = b_.flat().data();
  for (std::size_t i = 0; i < rows; ++i) {
    double* orow = out + i * n;
    for (std::size_t j = 0; j < n; ++j) orow[j] += bias[j];
  }
}

Matrix Dense::backward(const Matrix& grad_output) {
  grad_w_ += input_cache_.transpose_matmul(grad_output);
  grad_b_ += grad_output.column_sums();
  return grad_output.matmul_transpose(w_);
}

void Dense::zero_grad() {
  grad_w_ *= 0.0;
  grad_b_ *= 0.0;
}

void Dense::adam_step(double lr, double beta1, double beta2, double eps,
                      std::uint64_t t) {
  adam_update(w_, grad_w_, m_w_, v_w_, lr, beta1, beta2, eps, t);
  adam_update(b_, grad_b_, m_b_, v_b_, lr, beta1, beta2, eps, t);
}

std::size_t Dense::param_count() const { return w_.size() + b_.size(); }

std::unique_ptr<Layer> Dense::clone() const {
  auto copy = std::unique_ptr<Dense>(new Dense());
  copy->w_ = w_;
  copy->b_ = b_;
  copy->grad_w_ = Matrix(w_.rows(), w_.cols());
  copy->grad_b_ = Matrix(b_.rows(), b_.cols());
  return copy;
}

void Dense::serialize(util::ByteWriter& w) const {
  w.write_string("dense");
  write_matrix(w, w_);
  write_matrix(w, b_);
}

std::unique_ptr<Dense> Dense::deserialize(util::ByteReader& r) {
  auto layer = std::unique_ptr<Dense>(new Dense());
  layer->w_ = read_matrix(r);
  layer->b_ = read_matrix(r);
  layer->grad_w_ = Matrix(layer->w_.rows(), layer->w_.cols());
  layer->grad_b_ = Matrix(layer->b_.rows(), layer->b_.cols());
  return layer;
}

// ----------------------------------------------------------------- Relu --

Matrix Relu::forward(const Matrix& input) {
  input_cache_ = input;
  return infer(input);
}

Matrix Relu::infer(const Matrix& input) const {
  Matrix out = input;
  for (auto& v : out.flat()) v = v > 0.0 ? v : 0.0;
  return out;
}

void Relu::infer_rows(const double* in, std::size_t rows, std::size_t in_cols,
                      double* out) const {
  const std::size_t total = rows * in_cols;
  for (std::size_t i = 0; i < total; ++i) {
    const double v = in[i];
    out[i] = v > 0.0 ? v : 0.0;
  }
}

Matrix Relu::backward(const Matrix& grad_output) {
  if (!grad_output.same_shape(input_cache_))
    throw std::invalid_argument("Relu::backward: shape mismatch");
  Matrix grad = grad_output;
  auto g = grad.flat();
  auto in = input_cache_.flat();
  for (std::size_t i = 0; i < g.size(); ++i)
    if (in[i] <= 0.0) g[i] = 0.0;
  return grad;
}

void Relu::serialize(util::ByteWriter& w) const { w.write_string("relu"); }

// --------------------------------------------------------------- Conv1D --

Conv1D::Conv1D(std::size_t in_channels, std::size_t out_channels,
               std::size_t length, std::size_t kernel, util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      length_(length),
      kernel_(kernel) {
  if (in_channels == 0 || out_channels == 0 || length == 0 || kernel == 0)
    throw std::invalid_argument("Conv1D: zero-sized parameter");
  if (kernel > length) throw std::invalid_argument("Conv1D: kernel longer than input");
  const double stddev =
      std::sqrt(2.0 / static_cast<double>(in_channels * kernel));
  w_ = Matrix::randn(out_channels, in_channels * kernel, stddev, rng);
  b_ = Matrix(1, out_channels);
  grad_w_ = Matrix(w_.rows(), w_.cols());
  grad_b_ = Matrix(b_.rows(), b_.cols());
}

Matrix Conv1D::forward(const Matrix& input) {
  if (input.cols() != in_channels_ * length_)
    throw std::invalid_argument("Conv1D::forward: input width mismatch");
  input_cache_ = input;
  return infer(input);
}

Matrix Conv1D::infer(const Matrix& input) const {
  if (input.cols() != in_channels_ * length_)
    throw std::invalid_argument("Conv1D::forward: input width mismatch");
  const std::size_t out_len = out_length();
  Matrix out(input.rows(), out_channels_ * out_len);
  for (std::size_t n = 0; n < input.rows(); ++n) {
    for (std::size_t o = 0; o < out_channels_; ++o) {
      for (std::size_t p = 0; p < out_len; ++p) {
        double acc = b_.at(0, o);
        for (std::size_t i = 0; i < in_channels_; ++i)
          for (std::size_t k = 0; k < kernel_; ++k)
            acc += w_.at(o, i * kernel_ + k) * input.at(n, i * length_ + p + k);
        out.at(n, o * out_len + p) = acc;
      }
    }
  }
  return out;
}

std::size_t Conv1D::infer_out_cols(std::size_t in_cols) const {
  if (in_cols != in_channels_ * length_)
    throw std::invalid_argument("Conv1D::forward: input width mismatch");
  return out_width();
}

void Conv1D::infer_rows(const double* in, std::size_t rows,
                        std::size_t in_cols, double* out) const {
  // Same n/o/p loop nest and i/k accumulation order as infer().
  const std::size_t width = infer_out_cols(in_cols);
  const std::size_t out_len = out_length();
  for (std::size_t n = 0; n < rows; ++n) {
    const double* irow = in + n * in_cols;
    double* orow = out + n * width;
    for (std::size_t o = 0; o < out_channels_; ++o) {
      for (std::size_t p = 0; p < out_len; ++p) {
        double acc = b_.at(0, o);
        for (std::size_t i = 0; i < in_channels_; ++i)
          for (std::size_t k = 0; k < kernel_; ++k)
            acc += w_.at(o, i * kernel_ + k) * irow[i * length_ + p + k];
        orow[o * out_len + p] = acc;
      }
    }
  }
}

Matrix Conv1D::backward(const Matrix& grad_output) {
  const std::size_t out_len = out_length();
  if (grad_output.cols() != out_channels_ * out_len ||
      grad_output.rows() != input_cache_.rows())
    throw std::invalid_argument("Conv1D::backward: shape mismatch");
  Matrix grad_in(input_cache_.rows(), in_channels_ * length_);
  for (std::size_t n = 0; n < grad_output.rows(); ++n) {
    for (std::size_t o = 0; o < out_channels_; ++o) {
      for (std::size_t p = 0; p < out_len; ++p) {
        const double g = grad_output.at(n, o * out_len + p);
        if (g == 0.0) continue;
        grad_b_.at(0, o) += g;
        for (std::size_t i = 0; i < in_channels_; ++i) {
          for (std::size_t k = 0; k < kernel_; ++k) {
            grad_w_.at(o, i * kernel_ + k) +=
                g * input_cache_.at(n, i * length_ + p + k);
            grad_in.at(n, i * length_ + p + k) += g * w_.at(o, i * kernel_ + k);
          }
        }
      }
    }
  }
  return grad_in;
}

void Conv1D::zero_grad() {
  grad_w_ *= 0.0;
  grad_b_ *= 0.0;
}

void Conv1D::adam_step(double lr, double beta1, double beta2, double eps,
                       std::uint64_t t) {
  adam_update(w_, grad_w_, m_w_, v_w_, lr, beta1, beta2, eps, t);
  adam_update(b_, grad_b_, m_b_, v_b_, lr, beta1, beta2, eps, t);
}

std::size_t Conv1D::param_count() const { return w_.size() + b_.size(); }

std::unique_ptr<Layer> Conv1D::clone() const {
  auto copy = std::unique_ptr<Conv1D>(new Conv1D());
  copy->in_channels_ = in_channels_;
  copy->out_channels_ = out_channels_;
  copy->length_ = length_;
  copy->kernel_ = kernel_;
  copy->w_ = w_;
  copy->b_ = b_;
  copy->grad_w_ = Matrix(w_.rows(), w_.cols());
  copy->grad_b_ = Matrix(b_.rows(), b_.cols());
  return copy;
}

void Conv1D::serialize(util::ByteWriter& w) const {
  w.write_string("conv1d");
  w.write_u64(in_channels_);
  w.write_u64(out_channels_);
  w.write_u64(length_);
  w.write_u64(kernel_);
  write_matrix(w, w_);
  write_matrix(w, b_);
}

std::unique_ptr<Conv1D> Conv1D::deserialize(util::ByteReader& r) {
  auto layer = std::unique_ptr<Conv1D>(new Conv1D());
  layer->in_channels_ = static_cast<std::size_t>(r.read_u64());
  layer->out_channels_ = static_cast<std::size_t>(r.read_u64());
  layer->length_ = static_cast<std::size_t>(r.read_u64());
  layer->kernel_ = static_cast<std::size_t>(r.read_u64());
  layer->w_ = read_matrix(r);
  layer->b_ = read_matrix(r);
  layer->grad_w_ = Matrix(layer->w_.rows(), layer->w_.cols());
  layer->grad_b_ = Matrix(layer->b_.rows(), layer->b_.cols());
  return layer;
}

// -------------------------------------------------------------- Network --

Network::Network(const Network& other) : step_(other.step_) {
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
}

Network& Network::operator=(const Network& other) {
  if (this == &other) return *this;
  Network copy(other);
  *this = std::move(copy);
  return *this;
}

Matrix Network::forward(const Matrix& input) {
  Matrix x = input;
  for (auto& layer : layers_) x = layer->forward(x);
  return x;
}

Matrix Network::infer(const Matrix& input) const {
  Matrix x = input;
  for (const auto& layer : layers_) x = layer->infer(x);
  return x;
}

std::size_t Network::infer_out_cols(std::size_t in_cols) const {
  std::size_t cols = in_cols;
  for (const auto& layer : layers_) cols = layer->infer_out_cols(cols);
  return cols;
}

void Network::infer_rows(const double* in, std::size_t rows,
                         std::size_t in_cols, double* out,
                         util::Arena& arena) const {
  if (layers_.empty()) {
    std::copy(in, in + rows * in_cols, out);
    return;
  }
  util::ArenaScope scope(arena);
  // Widest inter-layer activation decides the ping-pong buffer size (the
  // final layer writes straight into `out`).
  std::size_t peak = 0;
  {
    std::size_t cols = in_cols;
    for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
      cols = layers_[l]->infer_out_cols(cols);
      peak = std::max(peak, cols);
    }
  }
  std::span<double> ping = scope.alloc<double>(rows * peak);
  std::span<double> pong = scope.alloc<double>(rows * peak);
  double* buf[2] = {ping.data(), pong.data()};
  const double* cur = in;
  std::size_t cur_cols = in_cols;
  std::size_t which = 0;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    double* dst = (l + 1 == layers_.size()) ? out : buf[which];
    layers_[l]->infer_rows(cur, rows, cur_cols, dst);
    cur_cols = layers_[l]->infer_out_cols(cur_cols);
    cur = dst;
    which ^= 1;
  }
}

Matrix Network::backward(const Matrix& grad_output) {
  Matrix g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

void Network::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

void Network::adam_step(double lr, double beta1, double beta2, double eps) {
  ++step_;
  for (auto& layer : layers_) layer->adam_step(lr, beta1, beta2, eps, step_);
}

std::size_t Network::param_count() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) total += layer->param_count();
  return total;
}

std::vector<std::uint8_t> Network::serialize() const {
  util::ByteWriter w;
  w.write_string("NNET");
  w.write_u8(kFormatVersion);
  w.write_u64(step_);
  w.write_u64(layers_.size());
  for (const auto& layer : layers_) layer->serialize(w);
  return w.take();
}

Network Network::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.read_string() != "NNET")
    throw std::invalid_argument("Network::deserialize: bad magic");
  if (r.read_u8() != kFormatVersion)
    throw std::invalid_argument("Network::deserialize: bad version");
  Network net;
  net.step_ = r.read_u64();
  const std::uint64_t n_layers = r.read_u64();
  for (std::uint64_t i = 0; i < n_layers; ++i) {
    const std::string kind = r.read_string();
    if (kind == "dense") {
      net.add(Dense::deserialize(r));
    } else if (kind == "relu") {
      net.add(std::make_unique<Relu>());
    } else if (kind == "conv1d") {
      net.add(Conv1D::deserialize(r));
    } else {
      throw std::invalid_argument("Network::deserialize: unknown layer '" + kind + "'");
    }
  }
  return net;
}

// --------------------------------------------------------------- Losses --

Matrix softmax(const Matrix& logits) {
  Matrix out = logits;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    auto row = out.row(r);
    double max_logit = row[0];
    for (double v : row) max_logit = std::max(max_logit, v);
    double total = 0.0;
    for (auto& v : row) {
      v = std::exp(v - max_logit);
      total += v;
    }
    for (auto& v : row) v /= total;
  }
  return out;
}

void softmax_rows(double* data, std::size_t rows, std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* row = data + r * cols;
    double max_logit = row[0];
    for (std::size_t c = 0; c < cols; ++c)
      max_logit = std::max(max_logit, row[c]);
    double total = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - max_logit);
      total += row[c];
    }
    for (std::size_t c = 0; c < cols; ++c) row[c] /= total;
  }
}

LossResult softmax_cross_entropy(const Matrix& logits,
                                 std::span<const int> labels) {
  if (logits.rows() != labels.size())
    throw std::invalid_argument("softmax_cross_entropy: batch size mismatch");
  LossResult result;
  result.grad = softmax(logits);
  const double inv_n = 1.0 / static_cast<double>(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const int label = labels[r];
    if (label < 0 || static_cast<std::size_t>(label) >= logits.cols())
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    const double p = result.grad.at(r, static_cast<std::size_t>(label));
    result.loss -= std::log(std::max(p, 1e-12)) * inv_n;
    result.grad.at(r, static_cast<std::size_t>(label)) -= 1.0;
  }
  result.grad *= inv_n;
  return result;
}

LossResult mse_loss(const Matrix& predictions, const Matrix& targets) {
  if (!predictions.same_shape(targets))
    throw std::invalid_argument("mse_loss: shape mismatch");
  LossResult result;
  result.grad = predictions - targets;
  const double inv_n = 1.0 / static_cast<double>(predictions.size());
  for (double v : result.grad.flat()) result.loss += v * v * inv_n;
  result.grad *= 2.0 * inv_n;
  return result;
}

// ---------------------------------------------------- QuantizedNetwork --

namespace {

// int16 activation * int16 weight products accumulate in int64:
// |acc| <= in_cols * 32767^2 ~= in_cols * 1.07e9, exact for any sane
// width.  The cap bounds the per-row quantization scratch instead.
constexpr std::size_t kQuantMaxInCols = 4096;
constexpr double kActScale = 32767.0;

std::int16_t quantize_weight(double w, double inv_scale) {
  long q = std::lround(w * inv_scale);
  q = std::clamp(q, -32767L, 32767L);
  return static_cast<std::int16_t>(q);
}

std::int16_t quantize_activation(double x, double inv_scale) {
  long q = std::lround(x * inv_scale);
  q = std::clamp(q, -32767L, 32767L);
  return static_cast<std::int16_t>(q);
}

}  // namespace

QuantizedNetwork QuantizedNetwork::build(const Network& net) {
  QuantizedNetwork q;
  std::vector<QLinear> built;
  for (const auto& layer_ptr : net.layers()) {
    const Layer* layer = layer_ptr.get();
    if (const auto* dense = dynamic_cast<const Dense*>(layer)) {
      const Matrix& w = dense->weights();  // (in, out)
      if (w.rows() > kQuantMaxInCols) return q;
      QLinear ql;
      ql.in_cols = w.rows();
      ql.out_cols = w.cols();
      ql.w.resize(ql.out_cols * ql.in_cols);
      ql.scale.resize(ql.out_cols);
      ql.bias.resize(ql.out_cols);
      for (std::size_t j = 0; j < ql.out_cols; ++j) {
        double amax = 0.0;
        for (std::size_t k = 0; k < ql.in_cols; ++k)
          amax = std::max(amax, std::fabs(w.at(k, j)));
        const double s = amax > 0.0 ? amax / 32767.0 : 1.0;
        ql.scale[j] = s;
        const double inv = 1.0 / s;
        // Transposed to (out, in) so each output unit's fan-in is
        // contiguous for the int GEMM inner loop.
        for (std::size_t k = 0; k < ql.in_cols; ++k)
          ql.w[j * ql.in_cols + k] = quantize_weight(w.at(k, j), inv);
        ql.bias[j] = dense->bias().at(0, j);
      }
      built.push_back(std::move(ql));
    } else if (const auto* conv = dynamic_cast<const Conv1D*>(layer)) {
      if (conv->in_channels() * conv->kernel() > kQuantMaxInCols) return q;
      const Matrix& w = conv->weights();  // (out_ch, in_ch * kernel)
      QLinear ql;
      ql.conv = true;
      ql.in_channels = conv->in_channels();
      ql.out_channels = conv->out_channels();
      ql.length = conv->length();
      ql.kernel = conv->kernel();
      ql.in_cols = ql.in_channels * ql.length;
      ql.out_cols = conv->out_width();
      ql.w.resize(w.rows() * w.cols());
      ql.scale.resize(ql.out_channels);
      ql.bias.resize(ql.out_channels);
      for (std::size_t o = 0; o < ql.out_channels; ++o) {
        double amax = 0.0;
        for (std::size_t c = 0; c < w.cols(); ++c)
          amax = std::max(amax, std::fabs(w.at(o, c)));
        const double s = amax > 0.0 ? amax / 32767.0 : 1.0;
        ql.scale[o] = s;
        const double inv = 1.0 / s;
        for (std::size_t c = 0; c < w.cols(); ++c)
          ql.w[o * w.cols() + c] = quantize_weight(w.at(o, c), inv);
        ql.bias[o] = conv->bias().at(0, o);
      }
      built.push_back(std::move(ql));
    } else if (dynamic_cast<const Relu*>(layer) != nullptr) {
      // Fused into the preceding linear layer's epilogue.
      if (built.empty() || built.back().relu_after) return q;
      built.back().relu_after = true;
    } else {
      return q;  // unknown layer kind: leave the mirror unbuilt
    }
  }
  if (built.empty()) return q;
  q.in_cols_ = built.front().in_cols;
  q.out_cols_ = built.back().out_cols;
  for (const QLinear& ql : built)
    q.peak_cols_ = std::max({q.peak_cols_, ql.in_cols, ql.out_cols});
  q.layers_ = std::move(built);
  return q;
}

void QuantizedNetwork::infer_row(const double* in, double* out,
                                 std::int16_t* qx, double* ping,
                                 double* pong) const {
  const double* cur = in;
  double* buf[2] = {ping, pong};
  std::size_t which = 0;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const QLinear& ql = layers_[l];
    double* dst = (l + 1 == layers_.size()) ? out : buf[which];
    which ^= 1;
    double amax = 0.0;
    for (std::size_t c = 0; c < ql.in_cols; ++c)
      amax = std::max(amax, std::fabs(cur[c]));
    if (amax == 0.0) {
      // All-zero activation row: the GEMM contributes nothing.
      if (!ql.conv) {
        for (std::size_t j = 0; j < ql.out_cols; ++j) dst[j] = ql.bias[j];
      } else {
        const std::size_t out_len = ql.length - ql.kernel + 1;
        for (std::size_t o = 0; o < ql.out_channels; ++o)
          for (std::size_t p = 0; p < out_len; ++p)
            dst[o * out_len + p] = ql.bias[o];
      }
    } else {
      const double inv = kActScale / amax;
      for (std::size_t c = 0; c < ql.in_cols; ++c)
        qx[c] = quantize_activation(cur[c], inv);
      const double deq = amax / kActScale;
      if (!ql.conv) {
        for (std::size_t j = 0; j < ql.out_cols; ++j) {
          const std::int16_t* wrow = ql.w.data() + j * ql.in_cols;
          std::int64_t acc = 0;
          for (std::size_t c = 0; c < ql.in_cols; ++c)
            acc += static_cast<std::int64_t>(wrow[c]) * qx[c];
          dst[j] =
              static_cast<double>(acc) * (ql.scale[j] * deq) + ql.bias[j];
        }
      } else {
        const std::size_t out_len = ql.length - ql.kernel + 1;
        for (std::size_t o = 0; o < ql.out_channels; ++o) {
          const std::int16_t* wrow =
              ql.w.data() + o * ql.in_channels * ql.kernel;
          const double f = ql.scale[o] * deq;
          for (std::size_t p = 0; p < out_len; ++p) {
            std::int64_t acc = 0;
            for (std::size_t i = 0; i < ql.in_channels; ++i) {
              const std::int16_t* xw = qx + i * ql.length + p;
              const std::int16_t* ww = wrow + i * ql.kernel;
              for (std::size_t k = 0; k < ql.kernel; ++k)
                acc += static_cast<std::int64_t>(ww[k]) * xw[k];
            }
            dst[o * out_len + p] = static_cast<double>(acc) * f + ql.bias[o];
          }
        }
      }
    }
    if (ql.relu_after)
      for (std::size_t j = 0; j < ql.out_cols; ++j)
        dst[j] = dst[j] > 0.0 ? dst[j] : 0.0;
    cur = dst;
  }
}

void QuantizedNetwork::infer_rows(const double* in, std::size_t rows,
                                  std::size_t in_cols, double* out,
                                  util::Arena& arena) const {
  if (!ready())
    throw std::logic_error("QuantizedNetwork::infer_rows: mirror not built");
  if (in_cols != in_cols_)
    throw std::invalid_argument(
        "QuantizedNetwork::infer_rows: input width mismatch");
  util::ArenaScope scope(arena);
  auto qx = scope.alloc<std::int16_t>(peak_cols_);
  auto ping = scope.alloc<double>(peak_cols_);
  auto pong = scope.alloc<double>(peak_cols_);
  for (std::size_t r = 0; r < rows; ++r)
    infer_row(in + r * in_cols_, out + r * out_cols_, qx.data(), ping.data(),
              pong.data());
}

Network make_mlp(std::size_t in_features, const std::vector<std::size_t>& hidden,
                 std::size_t out_features, util::Rng& rng) {
  Network net;
  std::size_t prev = in_features;
  for (std::size_t width : hidden) {
    net.add(std::make_unique<Dense>(prev, width, rng));
    net.add(std::make_unique<Relu>());
    prev = width;
  }
  net.add(std::make_unique<Dense>(prev, out_features, rng));
  return net;
}

}  // namespace drlhmd::ml::nn
