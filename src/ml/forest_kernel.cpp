#include "ml/forest_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/arena.hpp"

namespace drlhmd::ml {
namespace {

// Rows per code tile: 4 features x 1024 codes = 8 KB of uint16 plus the
// source columns stay L1/L2-resident while every tree replays the tile.
// Also the compile-time stride of the feature-major code tile, so the hot
// loop's code address is one indexed load instead of a runtime multiply.
constexpr std::size_t kTile = 1024;
// Lockstep traversal lanes, matching the FlatNode batch paths.
constexpr std::size_t kLanes = 16;

// Independent branchless binary searches advanced in lockstep by the
// encode stage.  One search is a latency-bound chain (every probe address
// depends on the previous compare), so interleaving kProbeLanes of them
// turns the encode from log2(n) serial round-trips per row into
// throughput-bound work shared across rows — the same trick the traversal
// plays with its node chains.
constexpr std::size_t kProbeLanes = 8;

// Branchless lower_bound: #{ cuts[i] < v }.  The comparison compiles to a
// conditional move, so random probe values cost log2(n) predictable steps
// instead of log2(n) mispredicted branches.  Requires n >= 1.  NaN
// compares false everywhere and returns 0; callers special-case it.
inline std::uint32_t count_below(const double* cuts, std::uint32_t n,
                                 double v) {
  const double* base = cuts;
  std::uint32_t len = n;
  while (len > 1) {
    const std::uint32_t half = len / 2;
    base += (base[half - 1] < v) ? half : 0;
    len -= half;
  }
  return static_cast<std::uint32_t>(base - cuts) +
         (base[0] < v ? 1u : 0u);
}

// Largest double X with (X - m) / s <= t, i.e. the raw-space image of the
// scaled-space cut t under the scaler's own double arithmetic.  The seed
// t*s + m is within a few ulps of the boundary; nextafter walks the rest.
double raw_space_cut(double t, double m, double s) {
  const double inf = std::numeric_limits<double>::infinity();
  double x = t * s + m;
  if (!std::isfinite(x))
    x = std::copysign(std::numeric_limits<double>::max(), x);
  const auto below = [&](double v) { return (v - m) / s <= t; };
  if (below(x)) {
    while (below(std::nextafter(x, inf))) x = std::nextafter(x, inf);
  } else {
    do x = std::nextafter(x, -inf);
    while (!below(x));
  }
  return x;
}

}  // namespace

void ForestKernel::build(const std::vector<std::vector<KernelBuildNode>>& trees) {
  nodes_.clear();
  scaled_nodes_.clear();
  leaf_values_.clear();
  roots_.clear();
  depths_.clear();
  cuts_.clear();
  cut_offsets_.clear();
  feature_map_.clear();
  required_width_ = 0;
  fused_ = false;
  if (trees.empty()) return;

  // Pass 1: the per-feature cut grid (sorted distinct thresholds).
  std::size_t n_features = 1;  // leaves carry feature 0; always have codes
  for (const auto& tree : trees)
    for (const KernelBuildNode& node : tree)
      if (!node.leaf)
        n_features = std::max(n_features, static_cast<std::size_t>(node.feature) + 1);
  if (n_features > 0xFFFF) return;  // feature index must fit the uint16 node

  std::vector<std::vector<double>> grid(n_features);
  for (const auto& tree : trees)
    for (const KernelBuildNode& node : tree)
      if (!node.leaf) grid[node.feature].push_back(node.threshold);
  for (auto& cuts : grid) {
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    if (cuts.size() > kMaxCuts) return;  // uint16 code budget exceeded
  }
  cut_offsets_.reserve(n_features + 1);
  cut_offsets_.push_back(0);
  for (const auto& cuts : grid) {
    cuts_.insert(cuts_.end(), cuts.begin(), cuts.end());
    cut_offsets_.push_back(static_cast<std::uint32_t>(cuts_.size()));
  }

  // Pass 2: flatten each tree with DFS-adjacent children and quantized
  // thresholds; record the fixed lockstep trip count per tree.
  std::size_t total_nodes = 0;
  for (const auto& tree : trees) total_nodes += tree.size();
  nodes_.reserve(total_nodes);
  leaf_values_.reserve(total_nodes);
  roots_.reserve(trees.size());
  depths_.reserve(trees.size());

  std::vector<std::uint32_t> remap;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> stack;  // (old, depth)
  for (const auto& tree : trees) {
    if (tree.empty())
      throw std::invalid_argument("ForestKernel::build: empty tree");
    const auto base = static_cast<std::uint32_t>(nodes_.size());
    // Allocate new slots: root first, then child pairs in visit order so
    // right == left + 1 always holds.
    remap.assign(tree.size(), 0);
    std::uint32_t next = 1;
    std::uint32_t depth = 0;
    stack.clear();
    stack.push_back({0, 0});
    while (!stack.empty()) {
      const auto [old, d] = stack.back();
      stack.pop_back();
      const KernelBuildNode& node = tree[old];
      if (node.leaf) {
        depth = std::max(depth, d);
        continue;
      }
      remap[node.left] = next++;
      remap[node.right] = next++;
      stack.push_back({node.right, d + 1});
      stack.push_back({node.left, d + 1});
    }
    if (next != tree.size())
      throw std::invalid_argument("ForestKernel::build: malformed tree");
    roots_.push_back(base);
    depths_.push_back(depth);

    nodes_.resize(base + tree.size());
    leaf_values_.resize(base + tree.size(), 0.0f);
    for (std::size_t old = 0; old < tree.size(); ++old) {
      const KernelBuildNode& src = tree[old];
      Node& dst = nodes_[base + remap[old]];
      if (src.leaf) {
        dst.feature = 0;
        dst.tq = kLeafTq;
        dst.left = base + remap[old];  // self-loop: lane parks here
        leaf_values_[base + remap[old]] = static_cast<float>(src.value);
        continue;
      }
      const double* cuts = cuts_.data() + cut_offsets_[src.feature];
      const double* end = cuts_.data() + cut_offsets_[src.feature + 1];
      const double* hit = std::lower_bound(cuts, end, src.threshold);
      dst.feature = static_cast<std::uint16_t>(src.feature);
      dst.tq = static_cast<std::uint16_t>(hit - cuts);
      dst.left = base + remap[src.left];
      required_width_ = std::max(required_width_,
                                 static_cast<std::size_t>(src.feature) + 1);
    }
  }

  feature_map_.resize(n_features);
  for (std::size_t f = 0; f < n_features; ++f)
    feature_map_[f] = static_cast<std::uint32_t>(f);
  bake_scaled();
}

void ForestKernel::fuse_preprocess(std::span<const double> mean,
                                   std::span<const double> scale,
                                   std::span<const std::uint32_t> columns) {
  if (!ready()) throw std::logic_error("ForestKernel::fuse_preprocess: not built");
  const std::size_t n_features = cut_offsets_.size() - 1;
  if (mean.size() < required_width_ || scale.size() < required_width_ ||
      columns.size() < required_width_)
    throw std::invalid_argument(
        "ForestKernel::fuse_preprocess: mean/scale/columns too narrow");

  // Rewrite each feature's cut grid into raw space.  The map is monotone,
  // but two scaled cuts with no representable scaled value between them
  // collapse onto one raw cut — dedupe and remap the node tq indices.
  std::vector<double> new_cuts;
  std::vector<std::uint32_t> new_offsets{0};
  std::vector<std::uint16_t> tq_remap(cuts_.size());
  new_cuts.reserve(cuts_.size());
  for (std::size_t f = 0; f < n_features; ++f) {
    const std::uint32_t begin = cut_offsets_[f];
    const std::uint32_t end = cut_offsets_[f + 1];
    const std::uint32_t row_base = static_cast<std::uint32_t>(new_cuts.size());
    for (std::uint32_t j = begin; j < end; ++j) {
      const double raw =
          f < mean.size() ? raw_space_cut(cuts_[j], mean[f], scale[f]) : cuts_[j];
      if (new_cuts.size() == row_base || new_cuts.back() != raw)
        new_cuts.push_back(raw);
      tq_remap[j] = static_cast<std::uint16_t>(new_cuts.size() - 1 - row_base);
    }
    new_offsets.push_back(static_cast<std::uint32_t>(new_cuts.size()));
  }
  for (Node& node : nodes_)
    if (node.tq != kLeafTq)
      node.tq = tq_remap[cut_offsets_[node.feature] + node.tq];
  cuts_ = std::move(new_cuts);
  cut_offsets_ = std::move(new_offsets);

  std::size_t width = 0;
  for (std::size_t f = 0; f < n_features; ++f) {
    feature_map_[f] = f < columns.size() ? columns[f]
                                         : static_cast<std::uint32_t>(f);
    if (cut_offsets_[f + 1] > cut_offsets_[f])
      width = std::max(width, static_cast<std::size_t>(feature_map_[f]) + 1);
  }
  required_width_ = width;
  fused_ = true;
  bake_scaled();
}

void ForestKernel::bake_scaled() {
  scaled_nodes_.clear();
  const std::size_t n_features = cut_offsets_.size() - 1;
  // feature * kTile + lane must fit the uint16 field: up to 64 model
  // features at the 1024-row tile stride.
  if (n_features * kTile > 65536) return;
  scaled_nodes_ = nodes_;
  for (Node& node : scaled_nodes_)
    node.feature = static_cast<std::uint16_t>(node.feature * kTile);
}

void ForestKernel::encode_tile(BatchView batch, std::size_t t0,
                               std::size_t tile, std::uint16_t* codes,
                               std::size_t tile_cap) const {
  const std::size_t n_features = cut_offsets_.size() - 1;
  for (std::size_t f = 0; f < n_features; ++f) {
    std::uint16_t* const crow = codes + f * tile_cap;
    const std::uint32_t n_cuts = cut_offsets_[f + 1] - cut_offsets_[f];
    if (n_cuts == 0) {  // feature unused by any split: lanes never branch on it
      std::fill(crow, crow + tile, std::uint16_t{0});
      continue;
    }
    const double* const cuts = cuts_.data() + cut_offsets_[f];
    const double* const col = batch.col(feature_map_[f]).data() + t0;
    std::size_t r = 0;
    for (; r + kProbeLanes <= tile; r += kProbeLanes) {
      const double* base[kProbeLanes];
      double v[kProbeLanes];
      for (std::size_t g = 0; g < kProbeLanes; ++g) {
        v[g] = col[r + g];
        base[g] = cuts;
      }
      std::uint32_t len = n_cuts;
      while (len > 1) {
        const std::uint32_t half = len / 2;
        for (std::size_t g = 0; g < kProbeLanes; ++g)
          base[g] += (base[g][half - 1] < v[g]) ? half : 0;
        len -= half;
      }
      for (std::size_t g = 0; g < kProbeLanes; ++g) {
        const std::uint32_t code = static_cast<std::uint32_t>(base[g] - cuts) +
                                   (base[g][0] < v[g] ? 1u : 0u);
        // NaN compares false: always right, like v <= t.
        crow[r + g] = static_cast<std::uint16_t>(
            std::isnan(v[g]) ? kLeafTq : code);
      }
    }
    for (; r < tile; ++r) {
      const double v = col[r];
      crow[r] = static_cast<std::uint16_t>(
          std::isnan(v) ? kLeafTq : count_below(cuts, n_cuts, v));
    }
  }
}

// Fast path (<= 64 model features): the scaled-node mirror folds the
// feature-to-code-tile offset into the node itself, so one traversal step
// is  load node -> load code (one indexed address) -> compare -> select.
// The 16 named lane indices stay register-resident — an array would force
// the compiler to spill each index to the stack between levels, roughly
// doubling the loads per step.
void ForestKernel::accumulate_scaled(BatchView batch,
                                     std::span<double> out) const {
  const std::size_t rows = batch.rows();
  const std::size_t n_features = cut_offsets_.size() - 1;
  util::ArenaScope scope(util::scratch_arena());
  auto codes = scope.alloc<std::uint16_t>(n_features * kTile);

  const Node* const nodes = scaled_nodes_.data();
  const float* const leaves = leaf_values_.data();
  for (std::size_t t0 = 0; t0 < rows; t0 += kTile) {
    const std::size_t tile = std::min(kTile, rows - t0);
    encode_tile(batch, t0, tile, codes.data(), kTile);

    // Tree-major lockstep traversal.  Tree loop outside the lane loop
    // keeps each tree's node span streaming through cache once per tile;
    // accumulation order over trees matches the exact batch paths.
    for (std::size_t t = 0; t < roots_.size(); ++t) {
      const std::uint32_t root = roots_[t];
      const std::uint32_t depth = depths_[t];
      std::size_t r0 = 0;
      for (; r0 + kLanes <= tile; r0 += kLanes) {
        const std::uint16_t* const ctile = codes.data() + r0;
        std::uint32_t i0 = root, i1 = root, i2 = root, i3 = root, i4 = root,
                      i5 = root, i6 = root, i7 = root, i8 = root, i9 = root,
                      i10 = root, i11 = root, i12 = root, i13 = root,
                      i14 = root, i15 = root;
        for (std::uint32_t d = 0; d < depth; ++d) {
#define DRLHMD_FK_LANE(k)                                              \
  {                                                                    \
    const Node n = nodes[i##k];                                        \
    i##k = n.left + (ctile[n.feature + k] > n.tq ? 1u : 0u);           \
  }
          DRLHMD_FK_LANE(0) DRLHMD_FK_LANE(1) DRLHMD_FK_LANE(2)
          DRLHMD_FK_LANE(3) DRLHMD_FK_LANE(4) DRLHMD_FK_LANE(5)
          DRLHMD_FK_LANE(6) DRLHMD_FK_LANE(7) DRLHMD_FK_LANE(8)
          DRLHMD_FK_LANE(9) DRLHMD_FK_LANE(10) DRLHMD_FK_LANE(11)
          DRLHMD_FK_LANE(12) DRLHMD_FK_LANE(13) DRLHMD_FK_LANE(14)
          DRLHMD_FK_LANE(15)
#undef DRLHMD_FK_LANE
        }
        double* const o = out.data() + t0 + r0;
        o[0] += static_cast<double>(leaves[i0]);
        o[1] += static_cast<double>(leaves[i1]);
        o[2] += static_cast<double>(leaves[i2]);
        o[3] += static_cast<double>(leaves[i3]);
        o[4] += static_cast<double>(leaves[i4]);
        o[5] += static_cast<double>(leaves[i5]);
        o[6] += static_cast<double>(leaves[i6]);
        o[7] += static_cast<double>(leaves[i7]);
        o[8] += static_cast<double>(leaves[i8]);
        o[9] += static_cast<double>(leaves[i9]);
        o[10] += static_cast<double>(leaves[i10]);
        o[11] += static_cast<double>(leaves[i11]);
        o[12] += static_cast<double>(leaves[i12]);
        o[13] += static_cast<double>(leaves[i13]);
        o[14] += static_cast<double>(leaves[i14]);
        o[15] += static_cast<double>(leaves[i15]);
      }
      if (r0 < tile) {  // partial-lane tail (last tile only)
        const std::size_t count = tile - r0;
        const std::uint16_t* const ctile = codes.data() + r0;
        std::uint32_t idx[kLanes];
        for (std::size_t l = 0; l < count; ++l) idx[l] = root;
        for (std::uint32_t d = 0; d < depth; ++d) {
          for (std::size_t l = 0; l < count; ++l) {
            const Node n = nodes[idx[l]];
            idx[l] = n.left + (ctile[n.feature + l] > n.tq ? 1u : 0u);
          }
        }
        for (std::size_t l = 0; l < count; ++l)
          out[t0 + r0 + l] += static_cast<double>(leaves[idx[l]]);
      }
    }
  }
}

// General path (> 64 model features): same structure, but the feature
// offset into the code tile is computed per step (kTile is a compile-time
// constant, so the multiply is still a shift).
void ForestKernel::accumulate_tiled(BatchView batch,
                                    std::span<double> out) const {
  const std::size_t rows = batch.rows();
  const std::size_t n_features = cut_offsets_.size() - 1;
  util::ArenaScope scope(util::scratch_arena());
  auto codes = scope.alloc<std::uint16_t>(n_features * kTile);

  const Node* const nodes = nodes_.data();
  const float* const leaves = leaf_values_.data();
  for (std::size_t t0 = 0; t0 < rows; t0 += kTile) {
    const std::size_t tile = std::min(kTile, rows - t0);
    encode_tile(batch, t0, tile, codes.data(), kTile);

    for (std::size_t t = 0; t < roots_.size(); ++t) {
      const std::uint32_t root = roots_[t];
      const std::uint32_t depth = depths_[t];
      for (std::size_t r0 = 0; r0 < tile; r0 += kLanes) {
        const std::size_t count = std::min(kLanes, tile - r0);
        std::uint32_t idx[kLanes];
        const std::uint16_t* const ctile = codes.data() + r0;
        for (std::size_t l = 0; l < count; ++l) idx[l] = root;
        for (std::uint32_t d = 0; d < depth; ++d) {
          for (std::size_t l = 0; l < count; ++l) {
            const Node n = nodes[idx[l]];
            idx[l] =
                n.left + (ctile[n.feature * kTile + l] > n.tq ? 1u : 0u);
          }
        }
        for (std::size_t l = 0; l < count; ++l)
          out[t0 + r0 + l] += static_cast<double>(leaves[idx[l]]);
      }
    }
  }
}

void ForestKernel::accumulate(BatchView batch, std::span<double> out) const {
  if (!ready()) throw std::logic_error("ForestKernel::accumulate: not built");
  if (out.size() != batch.rows())
    throw std::invalid_argument("ForestKernel::accumulate: out size mismatch");
  if (batch.cols() < required_width_)
    throw std::invalid_argument("ForestKernel::accumulate: feature width mismatch");
  if (batch.rows() == 0) return;
  if (!scaled_nodes_.empty())
    accumulate_scaled(batch, out);
  else
    accumulate_tiled(batch, out);
}

}  // namespace drlhmd::ml
