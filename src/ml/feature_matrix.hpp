// Columnar zero-copy batch data plane (the storage half).
//
// FeatureMatrix owns contiguous column-major storage for a rows x cols
// block of feature values: column c occupies the half-open range
// [data + c*stride, data + c*stride + rows), where `stride` is the row
// capacity of the backing buffer.  Rows append in amortized O(cols)
// (capacity doubles and the columns repack, like std::vector), columns
// read as contiguous spans, and batches of rows travel through the
// pipeline as BatchView / MutableBatchView — non-owning (base, rows,
// cols, stride) descriptors that slice by row range without copying.
//
// Construction is where raggedness dies: the first row pushed into an
// empty matrix fixes the width, every later row (and every from_rows()
// input) must match it exactly, or the matrix throws.  Anything backed by
// a FeatureMatrix — Dataset included — is rectangular by construction.
//
// View lifetime rule: views borrow the owning matrix's buffer.  Any
// mutation that can reallocate (push_row, append, reserve_rows) or
// reshape (clear, operator=) invalidates every outstanding view, exactly
// like iterators into a std::vector.  Take views late, drop them early.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

namespace drlhmd::ml {

/// One feature column: contiguous, read-only.
using ColumnView = std::span<const double>;

/// Read-only view of a row range of a column-major feature block.
class BatchView {
 public:
  BatchView() = default;
  BatchView(const double* base, std::size_t rows, std::size_t cols,
            std::size_t stride)
      : base_(base), rows_(rows), cols_(cols), stride_(stride) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t stride() const { return stride_; }
  bool empty() const { return rows_ == 0; }

  double at(std::size_t r, std::size_t c) const {
    return base_[c * stride_ + r];
  }
  ColumnView col(std::size_t c) const { return {base_ + c * stride_, rows_}; }

  /// Zero-copy sub-batch of rows [begin, begin + count).
  BatchView rows_slice(std::size_t begin, std::size_t count) const {
    return {base_ + begin, count, cols_, stride_};
  }

  /// Copy row r into `out` (out.size() must equal cols()).  The one
  /// row-oriented escape hatch: compatibility adapters use it to feed
  /// span-of-row consumers from columnar storage.
  void gather_row(std::size_t r, std::span<double> out) const;
  std::vector<double> row_copy(std::size_t r) const;

 private:
  const double* base_ = nullptr;
  std::size_t rows_ = 0, cols_ = 0, stride_ = 0;
};

/// Mutable counterpart: preprocessing stages write columns in place.
class MutableBatchView {
 public:
  MutableBatchView() = default;
  MutableBatchView(double* base, std::size_t rows, std::size_t cols,
                   std::size_t stride)
      : base_(base), rows_(rows), cols_(cols), stride_(stride) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t stride() const { return stride_; }

  double& at(std::size_t r, std::size_t c) { return base_[c * stride_ + r]; }
  std::span<double> col(std::size_t c) { return {base_ + c * stride_, rows_}; }

  MutableBatchView rows_slice(std::size_t begin, std::size_t count) {
    return {base_ + begin, count, cols_, stride_};
  }

  operator BatchView() const { return {base_, rows_, cols_, stride_}; }

 private:
  double* base_ = nullptr;
  std::size_t rows_ = 0, cols_ = 0, stride_ = 0;
};

/// Owning column-major feature block.
class FeatureMatrix {
 public:
  FeatureMatrix() = default;
  /// rows x cols, zero-filled.
  FeatureMatrix(std::size_t rows, std::size_t cols);

  /// Build from row vectors.  Throws std::invalid_argument if any row's
  /// width differs from the first's — ragged input is rejected here, at
  /// the source, not at some later validate() call.
  static FeatureMatrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  double at(std::size_t r, std::size_t c) const {
    return data_[c * capacity_ + r];
  }
  double& at(std::size_t r, std::size_t c) { return data_[c * capacity_ + r]; }

  ColumnView col(std::size_t c) const {
    return {data_.data() + c * capacity_, rows_};
  }
  std::span<double> col(std::size_t c) {
    return {data_.data() + c * capacity_, rows_};
  }

  BatchView view() const { return {data_.data(), rows_, cols_, capacity_}; }
  MutableBatchView mutable_view() {
    return {data_.data(), rows_, cols_, capacity_};
  }

  /// Append one row.  The first row pushed into an empty matrix fixes the
  /// width; later rows must match it (throws std::invalid_argument).
  void push_row(std::span<const double> row);
  void push_row(std::initializer_list<double> row) {
    push_row(std::span<const double>(row.begin(), row.size()));
  }
  /// Append row r of `src` without materializing it as a vector.
  void push_row_from(const FeatureMatrix& src, std::size_t r);
  /// Append every row of `other` (throws on width mismatch, unless one
  /// side is empty).
  void append(const FeatureMatrix& other);

  void reserve_rows(std::size_t n);
  void swap_rows(std::size_t a, std::size_t b);
  void clear();

  void gather_row(std::size_t r, std::span<double> out) const {
    view().gather_row(r, out);
  }
  std::vector<double> row_copy(std::size_t r) const {
    return view().row_copy(r);
  }

  /// New matrix keeping the listed columns in the given order (throws
  /// std::out_of_range on a bad index).
  FeatureMatrix select_columns(std::span<const std::size_t> indices) const;

  /// Value equality: same shape and same feature values (capacity/stride
  /// are layout details and do not participate).
  friend bool operator==(const FeatureMatrix& a, const FeatureMatrix& b);

 private:
  void grow(std::size_t min_capacity);

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t capacity_ = 0;          // column stride of data_
  std::vector<double> data_;          // cols_ * capacity_, column-major
};

}  // namespace drlhmd::ml
