// Feature engineering: cleaning + standard scaling (paper Section 2.1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace drlhmd::ml {

/// Zero-mean/unit-variance scaler (scikit-learn StandardScaler semantics:
/// constant features scale by 1 to avoid division by zero).
class DataSource;

class StandardScaler {
 public:
  void fit(const Dataset& data);
  /// Streamed fit: one Welford accumulator per column, folded shard by
  /// shard in shard order.  The canonical implementation — fit(Dataset)
  /// routes through it via the single-shard adapter, so streamed and
  /// monolithic fits see the identical add() sequence and produce
  /// bit-identical mean/scale.
  void fit_stream(const DataSource& data);
  bool fitted() const { return !mean_.empty(); }

  std::vector<double> transform(std::span<const double> row) const;
  Dataset transform(const Dataset& data) const;
  /// Scale a columnar batch in place (column sweep; the fused batch path —
  /// Dataset transform is a copy plus this).
  void transform_inplace(MutableBatchView batch) const;
  std::vector<double> inverse_transform(std::span<const double> row) const;

  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& scale() const { return scale_; }

  /// Persist the fitted statistics (checkpoint artifacts).
  std::vector<std::uint8_t> serialize() const;
  static StandardScaler deserialize(std::span<const std::uint8_t> bytes);

 private:
  std::vector<double> mean_;
  std::vector<double> scale_;
};

/// Data cleaning: drop rows containing NaN/inf and clip each feature to the
/// [q_low, q_high] quantile range observed in the data (winsorization), the
/// usual counter-glitch treatment for perf samples.
Dataset clean(const Dataset& data, double q_low = 0.001, double q_high = 0.999);

/// Per-feature min/max over a dataset (used for adversarial clipping).
struct FeatureBounds {
  std::vector<double> lo;
  std::vector<double> hi;

  void clip(std::span<double> row) const;
};
FeatureBounds feature_bounds(const Dataset& data);

}  // namespace drlhmd::ml
