// k-fold cross-validation for detector assessment and model selection.
//
// Used by hmdctl and the ablation benches to report variance alongside the
// single-split numbers the paper's tables quote.
#pragma once

#include <functional>

#include "ml/classifier.hpp"

namespace drlhmd::ml {

struct CrossValidationResult {
  std::vector<MetricReport> folds;

  double mean_accuracy() const;
  double mean_f1() const;
  double mean_auc() const;
  /// Sample standard deviation of F1 across folds (0 for < 2 folds).
  double stddev_f1() const;
};

/// Stratified k-fold CV: for each fold, a fresh untrained clone of
/// `prototype` is trained on the remaining folds and evaluated on the held-
/// out fold.  Deterministic in `seed`.
CrossValidationResult cross_validate(const Classifier& prototype,
                                     const Dataset& data, std::size_t k,
                                     std::uint64_t seed = 101);

/// Stratified fold assignment: returns fold index (0..k-1) per row, with
/// each class distributed evenly across folds.
std::vector<std::size_t> stratified_folds(const Dataset& data, std::size_t k,
                                          util::Rng& rng);

}  // namespace drlhmd::ml
