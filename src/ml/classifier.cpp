#include "ml/classifier.hpp"

#include <stdexcept>

#include "ml/data_source.hpp"

namespace drlhmd::ml {

void Classifier::fit_stream(const DataSource& train) {
  const Dataset data = materialize(train);
  fit(data);
}

void Classifier::check_batch_out(BatchView batch,
                                 std::span<const double> out) const {
  if (out.size() != batch.rows())
    throw std::invalid_argument(name() +
                                "::predict_proba_batch: out size mismatch");
}

void Classifier::predict_proba_batch(BatchView batch,
                                     std::span<double> out) const {
  check_batch_out(batch, out);
  std::vector<double> row(batch.cols());
  for (std::size_t r = 0; r < batch.rows(); ++r) {
    batch.gather_row(r, row);
    out[r] = predict_proba(row);
  }
}

std::vector<double> Classifier::predict_proba_batch(BatchView batch) const {
  std::vector<double> scores(batch.rows());
  predict_proba_batch(batch, scores);
  return scores;
}

std::vector<double> Classifier::predict_proba_batch(const Dataset& data) const {
  return predict_proba_batch(data.X.view());
}

std::vector<int> Classifier::predict_batch(const Dataset& data) const {
  const std::vector<double> scores = predict_proba_batch(data);
  std::vector<int> preds(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i)
    preds[i] = scores[i] >= 0.5 ? 1 : 0;
  return preds;
}

MetricReport Classifier::evaluate(const Dataset& data) const {
  const std::vector<double> scores = predict_proba_batch(data);
  return evaluate_scores(data.y, scores);
}

}  // namespace drlhmd::ml
