#include "ml/classifier.hpp"

namespace drlhmd::ml {

std::vector<double> Classifier::predict_proba_batch(const Dataset& data) const {
  std::vector<double> scores;
  scores.reserve(data.size());
  for (const auto& row : data.X) scores.push_back(predict_proba(row));
  return scores;
}

std::vector<int> Classifier::predict_batch(const Dataset& data) const {
  std::vector<int> preds;
  preds.reserve(data.size());
  for (const auto& row : data.X) preds.push_back(predict(row));
  return preds;
}

MetricReport Classifier::evaluate(const Dataset& data) const {
  const std::vector<double> scores = predict_proba_batch(data);
  return evaluate_scores(data.y, scores);
}

}  // namespace drlhmd::ml
