// Dense row-major matrix of doubles — the numeric workhorse for the ML and
// RL stacks.  Deliberately small: the feature space is 4-35 wide and models
// are tiny, so a cache-friendly naive implementation is both sufficient and
// fully deterministic.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace drlhmd::ml {

/// matmul tuning constants, shared with the raw-buffer nn inference path
/// (which must replicate matmul's loop structure to stay bitwise-identical).
/// Below kMatmulPackedMinDim on any dimension the parallel setup costs more
/// than the classic serial loop; kMatmulGrain is output rows per chunk.
inline constexpr std::size_t kMatmulPackedMinDim = 8;
inline constexpr std::size_t kMatmulGrain = 16;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Build from nested vectors (each inner vector is a row).
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);
  /// 1xN row vector.
  static Matrix row_vector(std::span<const double> values);
  /// Gaussian init with the given stddev (He/Xavier handled by caller).
  static Matrix randn(std::size_t rows, std::size_t cols, double stddev,
                      util::Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  double& operator()(std::size_t r, std::size_t c) { return at(r, c); }
  double operator()(std::size_t r, std::size_t c) const { return at(r, c); }

  std::span<double> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<double> flat() { return data_; }
  std::span<const double> flat() const { return data_; }

  /// this (m x k) * other (k x n) -> (m x n). Throws on shape mismatch.
  Matrix matmul(const Matrix& other) const;
  /// this^T * other, without materializing the transpose.
  Matrix transpose_matmul(const Matrix& other) const;
  /// this * other^T.
  Matrix matmul_transpose(const Matrix& other) const;
  Matrix transposed() const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(double s) const;

  /// Elementwise product.
  Matrix hadamard(const Matrix& other) const;

  /// Add a 1 x cols row vector to every row.
  Matrix& add_row_broadcast(const Matrix& row_vec);

  /// Sum over rows -> 1 x cols.
  Matrix column_sums() const;

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  void require_same_shape(const Matrix& other, const char* op) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace drlhmd::ml
