// ROC and precision-recall curves from scores, plus threshold selection.
//
// Complements the scalar metrics: the benches can print the full operating
// curve behind any AUC they report, and deployments can pick a decision
// threshold for a target false-positive budget.
#pragma once

#include <span>
#include <vector>

namespace drlhmd::ml {

struct RocPoint {
  double threshold = 0.0;
  double fpr = 0.0;
  double tpr = 0.0;
};

struct PrPoint {
  double threshold = 0.0;
  double recall = 0.0;
  double precision = 0.0;
};

/// ROC curve points, ordered by descending threshold: starts near (0,0),
/// ends at (1,1). Ties in score collapse to a single point.
std::vector<RocPoint> roc_curve(std::span<const int> truth,
                                std::span<const double> scores);

/// Precision-recall curve, ordered by descending threshold.
std::vector<PrPoint> pr_curve(std::span<const int> truth,
                              std::span<const double> scores);

/// Trapezoidal area under a ROC curve (matches rank-based AUC up to ties).
double auc_from_curve(const std::vector<RocPoint>& curve);

/// Smallest threshold whose FPR does not exceed `max_fpr` (i.e. the most
/// sensitive operating point within the false-positive budget).
double threshold_for_fpr(std::span<const int> truth,
                         std::span<const double> scores, double max_fpr);

}  // namespace drlhmd::ml
