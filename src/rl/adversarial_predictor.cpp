#include "rl/adversarial_predictor.hpp"

#include <stdexcept>

namespace drlhmd::rl {

AdversarialPredictor::AdversarialPredictor(std::size_t feature_count,
                                           AdversarialPredictorConfig config)
    : feature_count_(feature_count),
      config_(config),
      agent_(feature_count, 2, config.a2c) {
  if (feature_count_ == 0)
    throw std::invalid_argument("AdversarialPredictor: feature_count == 0");
  if (config_.epochs == 0)
    throw std::invalid_argument("AdversarialPredictor: epochs must be > 0");
}

void AdversarialPredictor::train(const ml::Dataset& adversarial,
                                 const ml::Dataset& unlabeled) {
  adversarial.validate();
  unlabeled.validate();
  if (adversarial.size() == 0)
    throw std::invalid_argument("AdversarialPredictor::train: no adversarial data");
  if (adversarial.num_features() != feature_count_ ||
      (unlabeled.size() > 0 && unlabeled.num_features() != feature_count_))
    throw std::invalid_argument("AdversarialPredictor::train: feature width mismatch");

  // Build the training stream: (sample, is_adversarial) pairs.
  struct Item {
    const std::vector<double>* x;
    bool adversarial;
  };
  std::vector<Item> stream;
  stream.reserve(adversarial.size() + unlabeled.size());
  for (const auto& row : adversarial.X) stream.push_back({&row, true});
  for (const auto& row : unlabeled.X) stream.push_back({&row, false});

  util::Rng rng(config_.seed);
  double reward_sum = 0.0;
  std::size_t episodes = 0;

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(stream);
    for (const Item& item : stream) {
      // Single-step episode: the environment pays the adversarial reward
      // only when a truly adversarial sample is flagged as such; unlabeled
      // ("None") samples always pay reward_none.
      const std::size_t action = agent_.act(*item.x, rng);
      const bool flagged =
          action == static_cast<std::size_t>(PredictorAction::kFlagAdversarial);
      const double reward = (item.adversarial && flagged)
                                ? config_.reward_adversarial
                                : config_.reward_none;
      agent_.update(*item.x, action, reward, /*next_value=*/0.0, /*done=*/true);
      reward_sum += reward;
      ++episodes;
    }
  }
  mean_episode_reward_ = episodes > 0 ? reward_sum / static_cast<double>(episodes) : 0.0;
  trained_ = true;
}

double AdversarialPredictor::feedback_reward(std::span<const double> features) const {
  if (!trained_) throw std::logic_error("AdversarialPredictor: not trained");
  // The critic models E[reward | s]; the actor's policy determines how much
  // of the achievable reward is collected, so the feedback combines both:
  // V(s) is already the on-policy expectation.
  return agent_.value(features);
}

bool AdversarialPredictor::is_adversarial(std::span<const double> features) const {
  return feedback_reward(features) > config_.reward_threshold;
}

ml::MetricReport AdversarialPredictor::evaluate(const ml::Dataset& adversarial,
                                                const ml::Dataset& legitimate) const {
  std::vector<int> truth;
  std::vector<double> scores;
  for (const auto& row : adversarial.X) {
    truth.push_back(1);
    scores.push_back(feedback_reward(row));
  }
  for (const auto& row : legitimate.X) {
    truth.push_back(0);
    scores.push_back(feedback_reward(row));
  }
  return ml::evaluate_scores(truth, scores, config_.reward_threshold);
}

std::vector<double> AdversarialPredictor::reward_trace(
    const std::vector<std::vector<double>>& stream) const {
  std::vector<double> trace;
  trace.reserve(stream.size());
  for (const auto& row : stream) trace.push_back(feedback_reward(row));
  return trace;
}

}  // namespace drlhmd::rl
