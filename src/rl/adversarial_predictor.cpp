#include "rl/adversarial_predictor.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/arena.hpp"

namespace drlhmd::rl {

AdversarialPredictor::AdversarialPredictor(std::size_t feature_count,
                                           AdversarialPredictorConfig config)
    : feature_count_(feature_count),
      config_(config),
      agent_(feature_count, 2, config.a2c) {
  if (feature_count_ == 0)
    throw std::invalid_argument("AdversarialPredictor: feature_count == 0");
  if (config_.epochs == 0)
    throw std::invalid_argument("AdversarialPredictor: epochs must be > 0");
}

void AdversarialPredictor::train(const ml::Dataset& adversarial,
                                 const ml::Dataset& unlabeled) {
  adversarial.validate();
  unlabeled.validate();
  if (adversarial.size() == 0)
    throw std::invalid_argument("AdversarialPredictor::train: no adversarial data");
  if (adversarial.num_features() != feature_count_ ||
      (unlabeled.size() > 0 && unlabeled.num_features() != feature_count_))
    throw std::invalid_argument("AdversarialPredictor::train: feature width mismatch");

  // Build the training stream: (sample, is_adversarial) pairs, gathered
  // out of the columnar storage in the same adversarial-then-unlabeled
  // order as before so the shuffle permutes an identical sequence.
  struct Item {
    std::vector<double> x;
    bool adversarial;
  };
  std::vector<Item> stream;
  stream.reserve(adversarial.size() + unlabeled.size());
  for (std::size_t i = 0; i < adversarial.size(); ++i)
    stream.push_back({adversarial.row_copy(i), true});
  for (std::size_t i = 0; i < unlabeled.size(); ++i)
    stream.push_back({unlabeled.row_copy(i), false});

  util::Rng rng(config_.seed);
  double reward_sum = 0.0;
  std::size_t episodes = 0;

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(stream);
    for (const Item& item : stream) {
      // Single-step episode: the environment pays the adversarial reward
      // only when a truly adversarial sample is flagged as such; unlabeled
      // ("None") samples always pay reward_none.
      const std::size_t action = agent_.act(item.x, rng);
      const bool flagged =
          action == static_cast<std::size_t>(PredictorAction::kFlagAdversarial);
      const double reward = (item.adversarial && flagged)
                                ? config_.reward_adversarial
                                : config_.reward_none;
      agent_.update(item.x, action, reward, /*next_value=*/0.0, /*done=*/true);
      reward_sum += reward;
      ++episodes;
    }
  }
  mean_episode_reward_ = episodes > 0 ? reward_sum / static_cast<double>(episodes) : 0.0;
  trained_ = true;
}

double AdversarialPredictor::feedback_reward(std::span<const double> features) const {
  if (!trained_) throw std::logic_error("AdversarialPredictor: not trained");
  // The critic models E[reward | s]; the actor's policy determines how much
  // of the achievable reward is collected, so the feedback combines both:
  // V(s) is already the on-policy expectation.
  return agent_.value(features);
}

bool AdversarialPredictor::is_adversarial(std::span<const double> features) const {
  return feedback_reward(features) > config_.reward_threshold;
}

void AdversarialPredictor::feedback_reward_batch(ml::BatchView batch,
                                                 std::span<double> out) const {
  if (!trained_) throw std::logic_error("AdversarialPredictor: not trained");
  agent_.value_batch(batch, out);
}

void AdversarialPredictor::is_adversarial_batch(
    ml::BatchView batch, std::span<std::uint8_t> out) const {
  if (out.size() != batch.rows())
    throw std::invalid_argument(
        "AdversarialPredictor::is_adversarial_batch: out size mismatch");
  util::ArenaScope scope(util::scratch_arena());
  auto rewards = scope.alloc<double>(batch.rows());
  feedback_reward_batch(batch, {rewards.data(), rewards.size()});
  for (std::size_t r = 0; r < batch.rows(); ++r)
    out[r] = rewards[r] > config_.reward_threshold ? 1 : 0;
}

ml::MetricReport AdversarialPredictor::evaluate(const ml::Dataset& adversarial,
                                                const ml::Dataset& legitimate) const {
  std::vector<int> truth(adversarial.size() + legitimate.size());
  std::vector<double> scores(truth.size());
  std::fill(truth.begin(),
            truth.begin() + static_cast<std::ptrdiff_t>(adversarial.size()), 1);
  const std::span<double> all(scores);
  feedback_reward_batch(adversarial.view(), all.subspan(0, adversarial.size()));
  feedback_reward_batch(legitimate.view(), all.subspan(adversarial.size()));
  return ml::evaluate_scores(truth, scores, config_.reward_threshold);
}

std::vector<std::uint8_t> AdversarialPredictor::serialize() const {
  util::ByteWriter w;
  w.write_string("APRD");
  w.write_u8(1);  // format version
  w.write_u64(feature_count_);
  w.write_f64(config_.reward_adversarial);
  w.write_f64(config_.reward_none);
  w.write_f64(config_.reward_threshold);
  w.write_u64(config_.epochs);
  w.write_u64(config_.seed);
  w.write_u8(trained_ ? 1 : 0);
  w.write_f64(mean_episode_reward_);
  w.write_bytes(agent_.serialize());  // carries the A2C config block
  return w.take();
}

AdversarialPredictor AdversarialPredictor::deserialize(
    std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.read_string() != "APRD")
    throw std::invalid_argument("AdversarialPredictor::deserialize: bad magic");
  if (r.read_u8() != 1)
    throw std::invalid_argument("AdversarialPredictor::deserialize: bad version");
  const auto feature_count = static_cast<std::size_t>(r.read_u64());
  AdversarialPredictorConfig config;
  config.reward_adversarial = r.read_f64();
  config.reward_none = r.read_f64();
  config.reward_threshold = r.read_f64();
  config.epochs = static_cast<std::size_t>(r.read_u64());
  config.seed = r.read_u64();
  const bool trained = r.read_u8() != 0;
  const double mean_reward = r.read_f64();
  A2C agent = A2C::deserialize(r.read_bytes());
  if (agent.observation_size() != feature_count || agent.action_count() != 2)
    throw std::invalid_argument(
        "AdversarialPredictor::deserialize: agent shape mismatch");
  config.a2c = agent.config();
  AdversarialPredictor predictor(feature_count, config);
  predictor.agent_ = std::move(agent);
  predictor.trained_ = trained;
  predictor.mean_episode_reward_ = mean_reward;
  return predictor;
}

std::vector<double> AdversarialPredictor::reward_trace(
    const std::vector<std::vector<double>>& stream) const {
  std::vector<double> trace;
  trace.reserve(stream.size());
  for (const auto& row : stream) trace.push_back(feedback_reward(row));
  return trace;
}

}  // namespace drlhmd::rl
