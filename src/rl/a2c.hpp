// Advantage Actor-Critic (paper Section 2.5.2).
//
// Actor and Critic are MLPs with four hidden layers; the actor emits a
// softmax policy over actions, the critic a scalar state value trained with
// MSE.  Learning rates follow the paper: 5e-4 (actor), 1e-3 (critic);
// discount factor 0.99.  Episodes in the adversarial-predictor environment
// are single-step ("independent events"), for which the general n-step
// update below degenerates to advantage = reward - V(s).
#pragma once

#include <cstdint>
#include <vector>

#include "ml/feature_matrix.hpp"
#include "ml/nn.hpp"
#include "rl/env.hpp"

namespace drlhmd::rl {

struct A2CConfig {
  std::vector<std::size_t> hidden = {64, 64, 64, 64};  // 4 hidden layers
  double actor_lr = 5e-4;
  double critic_lr = 1e-3;
  double gamma = 0.99;
  double entropy_bonus = 1e-3;  // exploration regularizer
  std::uint64_t seed = 41;
};

struct EpisodeStats {
  double episode_reward = 0.0;
  std::size_t steps = 0;
};

class A2C {
 public:
  A2C(std::size_t observation_size, std::size_t action_count,
      A2CConfig config = {});

  /// Sample an action from the current policy.
  std::size_t act(std::span<const double> observation, util::Rng& rng) const;
  /// Greedy action (argmax of the policy).
  std::size_t act_greedy(std::span<const double> observation) const;
  /// Policy probabilities.
  std::vector<double> policy(std::span<const double> observation) const;
  /// Critic value estimate V(s).
  double value(std::span<const double> observation) const;
  /// V(s) for every row of a columnar batch: one critic pass, bitwise
  /// identical to value() per row (the critic's layers are row-local).
  void value_batch(ml::BatchView batch, std::span<double> out) const;

  /// One actor-critic update from a single transition.
  /// `next_value` must be 0 for terminal transitions.
  void update(std::span<const double> observation, std::size_t action,
              double reward, double next_value, bool done);

  /// Roll out one episode in `env`, updating after every step.
  EpisodeStats train_episode(Environment& env, util::Rng& rng,
                             std::size_t max_steps = 10'000);

  std::size_t observation_size() const { return obs_size_; }
  std::size_t action_count() const { return n_actions_; }
  const A2CConfig& config() const { return config_; }

  std::vector<std::uint8_t> serialize() const;
  static A2C deserialize(std::span<const std::uint8_t> bytes);

 private:
  std::size_t obs_size_;
  std::size_t n_actions_;
  A2CConfig config_;
  ml::nn::Network actor_;
  ml::nn::Network critic_;
};

}  // namespace drlhmd::rl
