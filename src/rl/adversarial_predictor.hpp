// DRL-based adversarial-attack predictor (paper Section 2.5).
//
// Trained from *unlabeled* data: known adversarial samples carry a feedback
// reward of 100; legitimate malware and benign samples are treated as
// unlabeled ("None") and yield reward 0.  Each incoming sample is an
// independent single-step episode (MDP: state = top-4 HPC tuple, actions =
// {adversarial, nan}, rewards = {100, 0}, gamma = 0.99).
//
// At inference the paper "relies on feedback through the reward value
// rather than predictions from the DRL agent": the learned critic provides
// the expected feedback reward for a state, and a sample is flagged
// adversarial when that reward is positive (above `reward_threshold`).
#pragma once

#include "ml/dataset.hpp"
#include "ml/metrics.hpp"
#include "rl/a2c.hpp"

namespace drlhmd::rl {

/// Actions in the predictor MDP.
enum class PredictorAction : std::size_t { kFlagAdversarial = 0, kNan = 1 };

struct AdversarialPredictorConfig {
  A2CConfig a2c{};                      // paper: 4 hidden layers, 5e-4 / 1e-3
  double reward_adversarial = 100.0;
  double reward_none = 0.0;
  double reward_threshold = 50.0;       // positive-feedback decision boundary
  std::size_t epochs = 8;               // passes over the training stream
  std::uint64_t seed = 43;
};

class AdversarialPredictor {
 public:
  explicit AdversarialPredictor(std::size_t feature_count,
                                AdversarialPredictorConfig config = {});

  /// Train from labeled adversarial samples plus an unlabeled pool
  /// (legitimate malware + benign, labels ignored).  The streams are
  /// interleaved uniformly at random each epoch.
  void train(const ml::Dataset& adversarial, const ml::Dataset& unlabeled);

  /// Expected feedback reward for a sample (critic value).
  double feedback_reward(std::span<const double> features) const;
  /// Feedback rewards for a whole columnar batch (one critic pass).
  void feedback_reward_batch(ml::BatchView batch, std::span<double> out) const;

  /// Positive-feedback decision: adversarial iff reward > threshold.
  bool is_adversarial(std::span<const double> features) const;
  /// Batch decisions: out[r] != 0 iff batch row r is flagged adversarial.
  void is_adversarial_batch(ml::BatchView batch, std::span<std::uint8_t> out) const;

  /// Evaluate as a binary classifier: `adversarial` rows are positives,
  /// `legitimate` rows negatives.
  ml::MetricReport evaluate(const ml::Dataset& adversarial,
                            const ml::Dataset& legitimate) const;

  /// Reward trace over a stream of samples (Figure 3(b)).
  std::vector<double> reward_trace(const std::vector<std::vector<double>>& stream) const;

  bool trained() const { return trained_; }
  const A2C& agent() const { return agent_; }
  double mean_training_episode_reward() const { return mean_episode_reward_; }

  /// Full state (config, training flag, A2C weights); round-trips to
  /// identical bytes, so a restored predictor scores traffic identically.
  std::vector<std::uint8_t> serialize() const;
  static AdversarialPredictor deserialize(std::span<const std::uint8_t> bytes);

 private:
  std::size_t feature_count_;
  AdversarialPredictorConfig config_;
  A2C agent_;
  bool trained_ = false;
  double mean_episode_reward_ = 0.0;
};

}  // namespace drlhmd::rl
