// Upper Confidence Bound (UCB1) bandit — the lightweight RL algorithm the
// constraint-aware controller uses for run-time model scheduling
// (paper Section 2.6: chosen for its minimal parameter size and latency).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace drlhmd::rl {

struct UcbConfig {
  double exploration = 1.4142135623730951;  // sqrt(2), classic UCB1
};

class UcbBandit {
 public:
  explicit UcbBandit(std::size_t n_arms, UcbConfig config = {});

  /// Arm with the highest upper confidence bound; unexplored arms first.
  std::size_t select() const;

  void update(std::size_t arm, double reward);

  std::size_t arm_count() const { return counts_.size(); }
  std::uint64_t total_pulls() const { return total_; }
  std::uint64_t pulls(std::size_t arm) const;
  double mean_reward(std::size_t arm) const;
  /// Upper confidence bound of an arm (infinity when unexplored).
  double ucb(std::size_t arm) const;

  void reset();

  /// Full learned state (pull counts, reward sums, exploration constant);
  /// round-trips to identical bytes.
  std::vector<std::uint8_t> serialize() const;
  static UcbBandit deserialize(std::span<const std::uint8_t> bytes);

 private:
  std::vector<std::uint64_t> counts_;
  std::vector<double> sums_;
  std::uint64_t total_ = 0;
  UcbConfig config_;
};

}  // namespace drlhmd::rl
