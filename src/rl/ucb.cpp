#include "rl/ucb.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/serialize.hpp"

namespace drlhmd::rl {

UcbBandit::UcbBandit(std::size_t n_arms, UcbConfig config)
    : counts_(n_arms, 0), sums_(n_arms, 0.0), config_(config) {
  if (n_arms == 0) throw std::invalid_argument("UcbBandit: need at least one arm");
  if (config_.exploration < 0.0)
    throw std::invalid_argument("UcbBandit: exploration must be >= 0");
}

std::uint64_t UcbBandit::pulls(std::size_t arm) const {
  if (arm >= counts_.size()) throw std::out_of_range("UcbBandit::pulls: bad arm");
  return counts_[arm];
}

double UcbBandit::mean_reward(std::size_t arm) const {
  if (arm >= counts_.size()) throw std::out_of_range("UcbBandit::mean_reward: bad arm");
  return counts_[arm] == 0 ? 0.0 : sums_[arm] / static_cast<double>(counts_[arm]);
}

double UcbBandit::ucb(std::size_t arm) const {
  if (arm >= counts_.size()) throw std::out_of_range("UcbBandit::ucb: bad arm");
  if (counts_[arm] == 0) return std::numeric_limits<double>::infinity();
  const double bonus = config_.exploration *
                       std::sqrt(std::log(static_cast<double>(total_)) /
                                 static_cast<double>(counts_[arm]));
  return mean_reward(arm) + bonus;
}

std::size_t UcbBandit::select() const {
  std::size_t best = 0;
  double best_value = -std::numeric_limits<double>::infinity();
  for (std::size_t arm = 0; arm < counts_.size(); ++arm) {
    if (counts_[arm] == 0) return arm;  // round-robin through unexplored arms
    const double value = ucb(arm);
    if (value > best_value) {
      best_value = value;
      best = arm;
    }
  }
  return best;
}

void UcbBandit::update(std::size_t arm, double reward) {
  if (arm >= counts_.size()) throw std::out_of_range("UcbBandit::update: bad arm");
  ++counts_[arm];
  ++total_;
  sums_[arm] += reward;
}

void UcbBandit::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  std::fill(sums_.begin(), sums_.end(), 0.0);
  total_ = 0;
}

std::vector<std::uint8_t> UcbBandit::serialize() const {
  util::ByteWriter w;
  w.write_string("UCB1");
  w.write_u8(1);  // format version
  w.write_f64(config_.exploration);
  w.write_u64_vec(counts_);
  w.write_f64_vec(sums_);
  w.write_u64(total_);
  return w.take();
}

UcbBandit UcbBandit::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.read_string() != "UCB1")
    throw std::invalid_argument("UcbBandit::deserialize: bad magic");
  if (r.read_u8() != 1)
    throw std::invalid_argument("UcbBandit::deserialize: bad version");
  UcbConfig config;
  config.exploration = r.read_f64();
  std::vector<std::uint64_t> counts = r.read_u64_vec();
  std::vector<double> sums = r.read_f64_vec();
  if (counts.empty() || counts.size() != sums.size())
    throw std::invalid_argument("UcbBandit::deserialize: arm count mismatch");
  UcbBandit bandit(counts.size(), config);
  bandit.counts_ = std::move(counts);
  bandit.sums_ = std::move(sums);
  bandit.total_ = r.read_u64();
  return bandit;
}

}  // namespace drlhmd::rl
