#include "rl/ucb.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace drlhmd::rl {

UcbBandit::UcbBandit(std::size_t n_arms, UcbConfig config)
    : counts_(n_arms, 0), sums_(n_arms, 0.0), config_(config) {
  if (n_arms == 0) throw std::invalid_argument("UcbBandit: need at least one arm");
  if (config_.exploration < 0.0)
    throw std::invalid_argument("UcbBandit: exploration must be >= 0");
}

std::uint64_t UcbBandit::pulls(std::size_t arm) const {
  if (arm >= counts_.size()) throw std::out_of_range("UcbBandit::pulls: bad arm");
  return counts_[arm];
}

double UcbBandit::mean_reward(std::size_t arm) const {
  if (arm >= counts_.size()) throw std::out_of_range("UcbBandit::mean_reward: bad arm");
  return counts_[arm] == 0 ? 0.0 : sums_[arm] / static_cast<double>(counts_[arm]);
}

double UcbBandit::ucb(std::size_t arm) const {
  if (arm >= counts_.size()) throw std::out_of_range("UcbBandit::ucb: bad arm");
  if (counts_[arm] == 0) return std::numeric_limits<double>::infinity();
  const double bonus = config_.exploration *
                       std::sqrt(std::log(static_cast<double>(total_)) /
                                 static_cast<double>(counts_[arm]));
  return mean_reward(arm) + bonus;
}

std::size_t UcbBandit::select() const {
  std::size_t best = 0;
  double best_value = -std::numeric_limits<double>::infinity();
  for (std::size_t arm = 0; arm < counts_.size(); ++arm) {
    if (counts_[arm] == 0) return arm;  // round-robin through unexplored arms
    const double value = ucb(arm);
    if (value > best_value) {
      best_value = value;
      best = arm;
    }
  }
  return best;
}

void UcbBandit::update(std::size_t arm, double reward) {
  if (arm >= counts_.size()) throw std::out_of_range("UcbBandit::update: bad arm");
  ++counts_[arm];
  ++total_;
  sums_[arm] += reward;
}

void UcbBandit::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  std::fill(sums_.begin(), sums_.end(), 0.0);
  total_ = 0;
}

}  // namespace drlhmd::rl
