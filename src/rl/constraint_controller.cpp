#include "rl/constraint_controller.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/arena.hpp"

namespace drlhmd::rl {

std::string policy_name(ConstraintPolicy policy) {
  switch (policy) {
    case ConstraintPolicy::kFastInference: return "Agent 1 (faster inference)";
    case ConstraintPolicy::kSmallMemory: return "Agent 2 (smaller memory)";
    case ConstraintPolicy::kBestDetection: return "Agent 3 (efficient detection)";
  }
  throw std::invalid_argument("policy_name: bad policy");
}

ConstraintController::ConstraintController(std::vector<ml::Classifier*> models,
                                           std::vector<ModelProfile> profiles,
                                           ConstraintControllerConfig config)
    : models_(std::move(models)),
      profiles_(std::move(profiles)),
      config_(config),
      bandit_(models_.empty() ? 1 : models_.size(), config.ucb) {
  if (models_.empty())
    throw std::invalid_argument("ConstraintController: no models");
  if (profiles_.size() != models_.size())
    throw std::invalid_argument("ConstraintController: profile/model count mismatch");
  for (const auto* m : models_) {
    if (m == nullptr || !m->trained())
      throw std::invalid_argument("ConstraintController: models must be trained");
  }

  min_latency_ = std::numeric_limits<double>::infinity();
  min_memory_ = std::numeric_limits<std::size_t>::max();
  for (const auto& p : profiles_) {
    min_latency_ = std::min(min_latency_, p.latency_us);
    min_memory_ = std::min(min_memory_, p.memory_bytes);
  }

  if (config_.accuracy_weight >= 0.0) {
    accuracy_weight_ = config_.accuracy_weight;
  } else {
    switch (config_.policy) {
      case ConstraintPolicy::kFastInference: accuracy_weight_ = 0.30; break;
      case ConstraintPolicy::kSmallMemory: accuracy_weight_ = 0.30; break;
      case ConstraintPolicy::kBestDetection: accuracy_weight_ = 0.97; break;
    }
  }
  if (accuracy_weight_ > 1.0)
    throw std::invalid_argument("ConstraintController: accuracy_weight > 1");
}

double ConstraintController::constraint_score(std::size_t index) const {
  if (index >= profiles_.size())
    throw std::out_of_range("ConstraintController::constraint_score: bad index");
  const ModelProfile& p = profiles_[index];
  const double lat_score = p.latency_us > 0.0 ? min_latency_ / p.latency_us : 1.0;
  const double mem_score =
      p.memory_bytes > 0 ? static_cast<double>(min_memory_) /
                               static_cast<double>(p.memory_bytes)
                         : 1.0;
  switch (config_.policy) {
    case ConstraintPolicy::kFastInference: return lat_score;
    case ConstraintPolicy::kSmallMemory: return mem_score;
    case ConstraintPolicy::kBestDetection:
      return 0.5 * (lat_score + mem_score);  // soft overhead tiebreak
  }
  return 0.0;
}

double ConstraintController::reward(std::size_t arm, bool correct) const {
  if (!correct) return 0.0;  // paper: reward 0 for incorrect predictions
  return accuracy_weight_ + (1.0 - accuracy_weight_) * constraint_score(arm);
}

void ConstraintController::train(const ml::Dataset& stream) {
  stream.validate();
  if (stream.size() == 0)
    throw std::invalid_argument("ConstraintController::train: empty stream");

  util::Rng rng(config_.seed);
  std::vector<std::size_t> order(stream.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<double> features(stream.num_features());
  for (std::size_t epoch = 0; epoch < config_.training_epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t row : order) {
      const std::size_t arm = bandit_.select();
      stream.gather_row(row, features);
      const int pred = models_[arm]->predict(features);
      bandit_.update(arm, reward(arm, pred == stream.y[row]));
    }
  }
}

std::size_t ConstraintController::selected_model() const {
  std::size_t best = 0;
  double best_mean = -1.0;
  for (std::size_t arm = 0; arm < bandit_.arm_count(); ++arm) {
    const double mean = bandit_.mean_reward(arm);
    if (mean > best_mean) {
      best_mean = mean;
      best = arm;
    }
  }
  return best;
}

const ml::Classifier& ConstraintController::model(std::size_t index) const {
  if (index >= models_.size())
    throw std::out_of_range("ConstraintController::model: bad index");
  return *models_[index];
}

const ModelProfile& ConstraintController::profile(std::size_t index) const {
  if (index >= profiles_.size())
    throw std::out_of_range("ConstraintController::profile: bad index");
  return profiles_[index];
}

int ConstraintController::predict(std::span<const double> features) const {
  return models_[selected_model()]->predict(features);
}

double ConstraintController::predict_proba(std::span<const double> features) const {
  return models_[selected_model()]->predict_proba(features);
}

void ConstraintController::predict_batch(ml::BatchView batch,
                                         std::span<int> out) const {
  if (out.size() != batch.rows())
    throw std::invalid_argument(
        "ConstraintController::predict_batch: out size mismatch");
  if (batch.rows() == 0) return;
  // Score through the quantized fast path (exact split decisions for the
  // tree ensembles, so the >= 0.5 labels match the exact path; see
  // DESIGN.md §12) with arena scratch: zero heap traffic in steady state.
  util::ArenaScope scope(util::scratch_arena());
  auto scores = scope.alloc<double>(batch.rows());
  models_[selected_model()]->predict_proba_batch_fast(
      batch, {scores.data(), scores.size()});
  for (std::size_t r = 0; r < batch.rows(); ++r)
    out[r] = scores[r] >= 0.5 ? 1 : 0;
}

int ConstraintController::observe(std::span<const double> features, int truth) {
  const std::size_t arm = bandit_.select();
  const int pred = models_[arm]->predict(features);
  bandit_.update(arm, reward(arm, pred == truth));
  return pred;
}

ml::MetricReport ConstraintController::evaluate(const ml::Dataset& data) const {
  data.validate();
  const std::size_t arm = selected_model();
  return models_[arm]->evaluate(data);
}

std::vector<std::uint8_t> ConstraintController::serialize() const {
  util::ByteWriter w;
  w.write_string("CTRL");
  w.write_u8(1);  // format version
  w.write_u8(static_cast<std::uint8_t>(config_.policy));
  w.write_f64(config_.accuracy_weight);
  w.write_f64(config_.ucb.exploration);
  w.write_u64(config_.training_epochs);
  w.write_u64(config_.seed);
  w.write_u64(profiles_.size());
  for (const ModelProfile& profile : profiles_) write_model_profile(w, profile);
  w.write_bytes(bandit_.serialize());
  return w.take();
}

ConstraintController ConstraintController::deserialize(
    std::span<const std::uint8_t> bytes, std::vector<ml::Classifier*> models) {
  util::ByteReader r(bytes);
  if (r.read_string() != "CTRL")
    throw std::invalid_argument("ConstraintController::deserialize: bad magic");
  if (r.read_u8() != 1)
    throw std::invalid_argument("ConstraintController::deserialize: bad version");
  ConstraintControllerConfig config;
  config.policy = static_cast<ConstraintPolicy>(r.read_u8());
  config.accuracy_weight = r.read_f64();
  config.ucb.exploration = r.read_f64();
  config.training_epochs = static_cast<std::size_t>(r.read_u64());
  config.seed = r.read_u64();
  const std::uint64_t n_profiles = r.read_u64();
  std::vector<ModelProfile> profiles;
  profiles.reserve(static_cast<std::size_t>(n_profiles));
  for (std::uint64_t i = 0; i < n_profiles; ++i)
    profiles.push_back(read_model_profile(r));
  UcbBandit bandit = UcbBandit::deserialize(r.read_bytes());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    if (i < models.size() && models[i] != nullptr &&
        models[i]->name() != profiles[i].name)
      throw std::invalid_argument(
          "ConstraintController::deserialize: model/profile order mismatch");
  }
  // The constructor re-derives accuracy_weight_ and the min latency/memory
  // normalizers from config + profiles, exactly as at training time.
  ConstraintController controller(std::move(models), std::move(profiles), config);
  if (bandit.arm_count() != controller.models_.size())
    throw std::invalid_argument(
        "ConstraintController::deserialize: bandit arm count mismatch");
  controller.bandit_ = std::move(bandit);
  return controller;
}

std::vector<double> ConstraintController::build_state(
    std::span<const double> features) const {
  std::vector<double> state;
  state.reserve(features.size() + 2 * models_.size());
  state.insert(state.end(), features.begin(), features.end());
  for (const auto* model : models_)
    state.push_back(static_cast<double>(model->predict(features)));
  for (std::size_t arm = 0; arm < models_.size(); ++arm)
    state.push_back(constraint_score(arm) >= 0.5 ? 1.0 : 0.0);
  return state;
}

}  // namespace drlhmd::rl
