#include "rl/a2c.hpp"

#include <cmath>
#include <stdexcept>

#include "util/arena.hpp"

namespace drlhmd::rl {

using ml::Matrix;

A2C::A2C(std::size_t observation_size, std::size_t action_count, A2CConfig config)
    : obs_size_(observation_size), n_actions_(action_count), config_(std::move(config)) {
  if (obs_size_ == 0) throw std::invalid_argument("A2C: observation_size == 0");
  if (n_actions_ < 2) throw std::invalid_argument("A2C: need at least 2 actions");
  if (config_.hidden.empty()) throw std::invalid_argument("A2C: empty hidden spec");
  if (config_.actor_lr <= 0 || config_.critic_lr <= 0)
    throw std::invalid_argument("A2C: learning rates must be > 0");
  if (config_.gamma < 0 || config_.gamma > 1)
    throw std::invalid_argument("A2C: gamma out of [0,1]");
  util::Rng rng(config_.seed);
  actor_ = ml::nn::make_mlp(obs_size_, config_.hidden, n_actions_, rng);
  critic_ = ml::nn::make_mlp(obs_size_, config_.hidden, 1, rng);
}

std::vector<double> A2C::policy(std::span<const double> observation) const {
  if (observation.size() != obs_size_)
    throw std::invalid_argument("A2C::policy: observation width mismatch");
  const Matrix logits = actor_.infer(Matrix::row_vector(observation));
  const Matrix probs = ml::nn::softmax(logits);
  return {probs.row(0).begin(), probs.row(0).end()};
}

std::size_t A2C::act(std::span<const double> observation, util::Rng& rng) const {
  const std::vector<double> probs = policy(observation);
  return rng.categorical(probs);
}

std::size_t A2C::act_greedy(std::span<const double> observation) const {
  const std::vector<double> probs = policy(observation);
  std::size_t best = 0;
  for (std::size_t a = 1; a < probs.size(); ++a)
    if (probs[a] > probs[best]) best = a;
  return best;
}

double A2C::value(std::span<const double> observation) const {
  if (observation.size() != obs_size_)
    throw std::invalid_argument("A2C::value: observation width mismatch");
  return critic_.infer(Matrix::row_vector(observation)).at(0, 0);
}

void A2C::value_batch(ml::BatchView batch, std::span<double> out) const {
  if (batch.cols() != obs_size_)
    throw std::invalid_argument("A2C::value_batch: observation width mismatch");
  if (out.size() != batch.rows())
    throw std::invalid_argument("A2C::value_batch: out size mismatch");
  if (batch.rows() == 0) return;
  // Gather + forward run out of the per-thread arena (zero heap traffic);
  // infer_rows is bitwise-identical to the Matrix infer() path.
  util::ArenaScope scope(util::scratch_arena());
  auto rows = scope.alloc<double>(batch.rows() * obs_size_);
  for (std::size_t c = 0; c < obs_size_; ++c) {
    const ml::ColumnView colc = batch.col(c);
    for (std::size_t r = 0; r < batch.rows(); ++r)
      rows[r * obs_size_ + c] = colc[r];
  }
  auto values = scope.alloc<double>(batch.rows());
  critic_.infer_rows(rows.data(), batch.rows(), obs_size_, values.data(),
                     scope.arena());
  for (std::size_t r = 0; r < batch.rows(); ++r) out[r] = values[r];
}

void A2C::update(std::span<const double> observation, std::size_t action,
                 double reward, double next_value, bool done) {
  if (action >= n_actions_) throw std::invalid_argument("A2C::update: bad action");
  const Matrix obs = Matrix::row_vector(observation);

  // Critic: V(s) toward the TD target (MSE, per the paper).
  const double td_target = reward + (done ? 0.0 : config_.gamma * next_value);
  critic_.zero_grad();
  const Matrix v = critic_.forward(obs);
  Matrix target(1, 1);
  target.at(0, 0) = td_target;
  const ml::nn::LossResult critic_loss = ml::nn::mse_loss(v, target);
  critic_.backward(critic_loss.grad);
  critic_.adam_step(config_.critic_lr);

  const double advantage = td_target - v.at(0, 0);

  // Actor: policy gradient with entropy bonus.
  actor_.zero_grad();
  const Matrix logits = actor_.forward(obs);
  const Matrix probs = ml::nn::softmax(logits);
  // d/dlogits of [-log pi(a|s) * A - beta * H(pi)]:
  //   A * (pi - onehot(a))  +  beta * dH/dlogits  folded below.
  Matrix grad(1, n_actions_);
  for (std::size_t j = 0; j < n_actions_; ++j) {
    const double p = probs.at(0, j);
    const double onehot = (j == action) ? 1.0 : 0.0;
    grad.at(0, j) = advantage * (p - onehot);
    // Entropy H = -sum p log p; dH/dlogit_j = -p_j (log p_j + 1 - sum_k p_k(log p_k + 1))
    // Simplified gradient of -beta*H:
    double entropy_term = std::log(std::max(p, 1e-12)) + 1.0;
    double expectation = 0.0;
    for (std::size_t k = 0; k < n_actions_; ++k) {
      const double pk = probs.at(0, k);
      expectation += pk * (std::log(std::max(pk, 1e-12)) + 1.0);
    }
    grad.at(0, j) += config_.entropy_bonus * p * (entropy_term - expectation);
  }
  actor_.backward(grad);
  actor_.adam_step(config_.actor_lr);
}

EpisodeStats A2C::train_episode(Environment& env, util::Rng& rng,
                                std::size_t max_steps) {
  EpisodeStats stats;
  std::vector<double> obs = env.reset();
  for (std::size_t t = 0; t < max_steps; ++t) {
    const std::size_t action = act(obs, rng);
    StepResult result = env.step(action);
    const double next_value = result.done ? 0.0 : value(result.observation);
    update(obs, action, result.reward, next_value, result.done);
    stats.episode_reward += result.reward;
    ++stats.steps;
    if (result.done) break;
    obs = std::move(result.observation);
  }
  return stats;
}

std::vector<std::uint8_t> A2C::serialize() const {
  util::ByteWriter w;
  w.write_string("A2C");
  w.write_u8(2);  // format version (v2 added the config block)
  std::vector<std::uint64_t> hidden(config_.hidden.begin(), config_.hidden.end());
  w.write_u64_vec(hidden);
  w.write_f64(config_.actor_lr);
  w.write_f64(config_.critic_lr);
  w.write_f64(config_.gamma);
  w.write_f64(config_.entropy_bonus);
  w.write_u64(config_.seed);
  w.write_u64(obs_size_);
  w.write_u64(n_actions_);
  w.write_bytes(actor_.serialize());
  w.write_bytes(critic_.serialize());
  return w.take();
}

A2C A2C::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.read_string() != "A2C")
    throw std::invalid_argument("A2C::deserialize: bad magic");
  if (r.read_u8() != 2)
    throw std::invalid_argument("A2C::deserialize: bad version");
  A2CConfig config;
  const std::vector<std::uint64_t> hidden = r.read_u64_vec();
  config.hidden.assign(hidden.begin(), hidden.end());
  config.actor_lr = r.read_f64();
  config.critic_lr = r.read_f64();
  config.gamma = r.read_f64();
  config.entropy_bonus = r.read_f64();
  config.seed = r.read_u64();
  const auto obs = static_cast<std::size_t>(r.read_u64());
  const auto actions = static_cast<std::size_t>(r.read_u64());
  A2C agent(obs, actions, config);
  agent.actor_ = ml::nn::Network::deserialize(r.read_bytes());
  agent.critic_ = ml::nn::Network::deserialize(r.read_bytes());
  return agent;
}

}  // namespace drlhmd::rl
