// Metric Monitor (paper Figure 1): measures each detector's detection
// metrics on a validation set, its mean single-sample inference latency,
// and its memory footprint (serialized model size).  These profiles feed
// the constraint-aware controller's reward function.
#pragma once

#include <string>
#include <vector>

#include "ml/classifier.hpp"

namespace drlhmd::rl {

struct ModelProfile {
  std::string name;
  double latency_us = 0.0;        // mean per-sample predict latency
  std::size_t memory_bytes = 0;   // serialized model size
  ml::MetricReport metrics;       // on the validation set
};

/// Profile one model: evaluates on `validation`, times `repeats` full
/// passes for the latency estimate, and serializes for the footprint.
ModelProfile profile_model(const ml::Classifier& model,
                           const ml::Dataset& validation,
                           std::size_t repeats = 3);

/// Profile a set of models against the same validation data.
std::vector<ModelProfile> profile_models(
    const std::vector<ml::Classifier*>& models, const ml::Dataset& validation,
    std::size_t repeats = 3);

/// Persist a measured profile.  Checkpoints restore profiles verbatim (no
/// re-measurement), so constraint scores are identical across a restart.
void write_model_profile(util::ByteWriter& w, const ModelProfile& profile);
ModelProfile read_model_profile(util::ByteReader& r);

}  // namespace drlhmd::rl
