// Alternative bandit algorithms for the constraint-aware controller.
//
// The paper chooses UCB for its lightweight footprint; these comparators
// let `bench_bandit_ablation` quantify that choice: epsilon-greedy (the
// simplest baseline) and Thompson sampling (Beta-Bernoulli posterior, the
// usual regret-optimal contender).  All three share one interface so the
// controller logic is interchangeable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rl/ucb.hpp"
#include "util/rng.hpp"

namespace drlhmd::rl {

/// Common multi-armed-bandit interface.
class Bandit {
 public:
  virtual ~Bandit() = default;

  virtual std::size_t select() = 0;
  virtual void update(std::size_t arm, double reward) = 0;
  virtual std::size_t arm_count() const = 0;
  virtual double mean_reward(std::size_t arm) const = 0;
  virtual std::uint64_t pulls(std::size_t arm) const = 0;
  virtual std::string name() const = 0;

  /// Arm with the highest empirical mean.
  std::size_t best_arm() const;
};

/// Adapter exposing UcbBandit through the common interface.
class UcbBanditAdapter final : public Bandit {
 public:
  explicit UcbBanditAdapter(std::size_t n_arms, UcbConfig config = {});

  std::size_t select() override { return inner_.select(); }
  void update(std::size_t arm, double reward) override { inner_.update(arm, reward); }
  std::size_t arm_count() const override { return inner_.arm_count(); }
  double mean_reward(std::size_t arm) const override { return inner_.mean_reward(arm); }
  std::uint64_t pulls(std::size_t arm) const override { return inner_.pulls(arm); }
  std::string name() const override { return "UCB1"; }

 private:
  UcbBandit inner_;
};

struct EpsilonGreedyConfig {
  double epsilon = 0.1;
  std::uint64_t seed = 89;
};

class EpsilonGreedyBandit final : public Bandit {
 public:
  explicit EpsilonGreedyBandit(std::size_t n_arms, EpsilonGreedyConfig config = {});

  std::size_t select() override;
  void update(std::size_t arm, double reward) override;
  std::size_t arm_count() const override { return counts_.size(); }
  double mean_reward(std::size_t arm) const override;
  std::uint64_t pulls(std::size_t arm) const override;
  std::string name() const override { return "epsilon-greedy"; }

 private:
  std::vector<std::uint64_t> counts_;
  std::vector<double> sums_;
  EpsilonGreedyConfig config_;
  util::Rng rng_;
};

struct ThompsonConfig {
  /// Rewards in [0, 1] are treated as Bernoulli success probabilities
  /// (fractional rewards update the posterior fractionally).
  double prior_alpha = 1.0;
  double prior_beta = 1.0;
  std::uint64_t seed = 97;
};

class ThompsonBandit final : public Bandit {
 public:
  explicit ThompsonBandit(std::size_t n_arms, ThompsonConfig config = {});

  std::size_t select() override;
  void update(std::size_t arm, double reward) override;
  std::size_t arm_count() const override { return alpha_.size(); }
  double mean_reward(std::size_t arm) const override;
  std::uint64_t pulls(std::size_t arm) const override;
  std::string name() const override { return "Thompson"; }

 private:
  double sample_beta(double alpha, double beta);

  std::vector<double> alpha_, beta_;
  std::vector<std::uint64_t> counts_;
  std::vector<double> sums_;
  ThompsonConfig config_;
  util::Rng rng_;
};

std::unique_ptr<Bandit> make_bandit(const std::string& kind, std::size_t n_arms,
                                    std::uint64_t seed = 0);

}  // namespace drlhmd::rl
