// Gym-style environment interface (paper customizes OpenAI Gym's baseline
// class; this is the C++ equivalent).
#pragma once

#include <cstddef>
#include <vector>

namespace drlhmd::rl {

struct StepResult {
  std::vector<double> observation;  // next state (empty when done)
  double reward = 0.0;
  bool done = false;
};

class Environment {
 public:
  virtual ~Environment() = default;

  /// Start a new episode; returns the initial observation.
  virtual std::vector<double> reset() = 0;

  /// Apply an action; returns next observation, reward, done flag.
  virtual StepResult step(std::size_t action) = 0;

  virtual std::size_t observation_size() const = 0;
  virtual std::size_t action_count() const = 0;
};

}  // namespace drlhmd::rl
