#include "rl/bandits.hpp"

#include <algorithm>
#include <limits>
#include <cmath>
#include <stdexcept>

namespace drlhmd::rl {

std::size_t Bandit::best_arm() const {
  std::size_t best = 0;
  double best_mean = -std::numeric_limits<double>::infinity();
  for (std::size_t arm = 0; arm < arm_count(); ++arm) {
    const double mean = mean_reward(arm);
    if (mean > best_mean) {
      best_mean = mean;
      best = arm;
    }
  }
  return best;
}

UcbBanditAdapter::UcbBanditAdapter(std::size_t n_arms, UcbConfig config)
    : inner_(n_arms, config) {}

EpsilonGreedyBandit::EpsilonGreedyBandit(std::size_t n_arms,
                                         EpsilonGreedyConfig config)
    : counts_(n_arms, 0), sums_(n_arms, 0.0), config_(config), rng_(config.seed) {
  if (n_arms == 0) throw std::invalid_argument("EpsilonGreedyBandit: no arms");
  if (config_.epsilon < 0.0 || config_.epsilon > 1.0)
    throw std::invalid_argument("EpsilonGreedyBandit: epsilon out of [0,1]");
}

std::size_t EpsilonGreedyBandit::select() {
  // Unexplored arms first.
  for (std::size_t arm = 0; arm < counts_.size(); ++arm)
    if (counts_[arm] == 0) return arm;
  if (rng_.bernoulli(config_.epsilon))
    return static_cast<std::size_t>(rng_.next_below(counts_.size()));
  std::size_t best = 0;
  for (std::size_t arm = 1; arm < counts_.size(); ++arm)
    if (mean_reward(arm) > mean_reward(best)) best = arm;
  return best;
}

void EpsilonGreedyBandit::update(std::size_t arm, double reward) {
  if (arm >= counts_.size())
    throw std::out_of_range("EpsilonGreedyBandit::update: bad arm");
  ++counts_[arm];
  sums_[arm] += reward;
}

double EpsilonGreedyBandit::mean_reward(std::size_t arm) const {
  if (arm >= counts_.size())
    throw std::out_of_range("EpsilonGreedyBandit::mean_reward: bad arm");
  return counts_[arm] == 0 ? 0.0 : sums_[arm] / static_cast<double>(counts_[arm]);
}

std::uint64_t EpsilonGreedyBandit::pulls(std::size_t arm) const {
  if (arm >= counts_.size())
    throw std::out_of_range("EpsilonGreedyBandit::pulls: bad arm");
  return counts_[arm];
}

ThompsonBandit::ThompsonBandit(std::size_t n_arms, ThompsonConfig config)
    : alpha_(n_arms, config.prior_alpha),
      beta_(n_arms, config.prior_beta),
      counts_(n_arms, 0),
      sums_(n_arms, 0.0),
      config_(config),
      rng_(config.seed) {
  if (n_arms == 0) throw std::invalid_argument("ThompsonBandit: no arms");
  if (config.prior_alpha <= 0.0 || config.prior_beta <= 0.0)
    throw std::invalid_argument("ThompsonBandit: priors must be > 0");
}

double ThompsonBandit::sample_beta(double alpha, double beta) {
  // Beta(a,b) via two Gamma draws (Marsaglia-Tsang for shape >= 1; the
  // boost trick Gamma(a) = Gamma(a+1) * U^(1/a) covers shape < 1).
  auto gamma_draw = [&](double shape) {
    double boost = 1.0;
    if (shape < 1.0) {
      double u = rng_.uniform();
      while (u <= 0.0) u = rng_.uniform();
      boost = std::pow(u, 1.0 / shape);
      shape += 1.0;
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x = rng_.normal();
      double v = 1.0 + c * x;
      if (v <= 0.0) continue;
      v = v * v * v;
      const double u = rng_.uniform();
      if (u < 1.0 - 0.0331 * x * x * x * x) return boost * d * v;
      if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
        return boost * d * v;
    }
  };
  const double ga = gamma_draw(alpha);
  const double gb = gamma_draw(beta);
  const double total = ga + gb;
  return total > 0.0 ? ga / total : 0.5;
}

std::size_t ThompsonBandit::select() {
  std::size_t best = 0;
  double best_sample = -1.0;
  for (std::size_t arm = 0; arm < alpha_.size(); ++arm) {
    const double sample = sample_beta(alpha_[arm], beta_[arm]);
    if (sample > best_sample) {
      best_sample = sample;
      best = arm;
    }
  }
  return best;
}

void ThompsonBandit::update(std::size_t arm, double reward) {
  if (arm >= alpha_.size())
    throw std::out_of_range("ThompsonBandit::update: bad arm");
  const double r = std::clamp(reward, 0.0, 1.0);
  alpha_[arm] += r;
  beta_[arm] += 1.0 - r;
  ++counts_[arm];
  sums_[arm] += reward;
}

double ThompsonBandit::mean_reward(std::size_t arm) const {
  if (arm >= alpha_.size())
    throw std::out_of_range("ThompsonBandit::mean_reward: bad arm");
  return counts_[arm] == 0 ? 0.0 : sums_[arm] / static_cast<double>(counts_[arm]);
}

std::uint64_t ThompsonBandit::pulls(std::size_t arm) const {
  if (arm >= alpha_.size())
    throw std::out_of_range("ThompsonBandit::pulls: bad arm");
  return counts_[arm];
}

std::unique_ptr<Bandit> make_bandit(const std::string& kind, std::size_t n_arms,
                                    std::uint64_t seed) {
  if (kind == "ucb") return std::make_unique<UcbBanditAdapter>(n_arms);
  if (kind == "epsilon-greedy") {
    EpsilonGreedyConfig cfg;
    cfg.seed += seed;
    return std::make_unique<EpsilonGreedyBandit>(n_arms, cfg);
  }
  if (kind == "thompson") {
    ThompsonConfig cfg;
    cfg.seed += seed;
    return std::make_unique<ThompsonBandit>(n_arms, cfg);
  }
  throw std::invalid_argument("make_bandit: unknown kind '" + kind + "'");
}

}  // namespace drlhmd::rl
