#include "rl/model_profile.hpp"

#include <stdexcept>

#include "util/timer.hpp"

namespace drlhmd::rl {

ModelProfile profile_model(const ml::Classifier& model,
                           const ml::Dataset& validation, std::size_t repeats) {
  if (!model.trained())
    throw std::logic_error("profile_model: model must be trained");
  validation.validate();
  if (validation.size() == 0)
    throw std::invalid_argument("profile_model: empty validation set");
  if (repeats == 0) throw std::invalid_argument("profile_model: repeats must be > 0");

  ModelProfile profile;
  profile.name = model.name();
  profile.metrics = model.evaluate(validation);
  profile.memory_bytes = model.serialize().size();

  // Latency: average over repeats x validation passes; a volatile sink
  // prevents the calls from being optimized away.
  util::Timer timer;
  volatile double sink = 0.0;
  for (std::size_t rep = 0; rep < repeats; ++rep)
    for (const auto& row : validation.X) sink = sink + model.predict_proba(row);
  (void)sink;
  profile.latency_us =
      timer.elapsed_us() / static_cast<double>(repeats * validation.size());
  return profile;
}

std::vector<ModelProfile> profile_models(const std::vector<ml::Classifier*>& models,
                                         const ml::Dataset& validation,
                                         std::size_t repeats) {
  std::vector<ModelProfile> profiles;
  profiles.reserve(models.size());
  for (const ml::Classifier* model : models) {
    if (model == nullptr) throw std::invalid_argument("profile_models: null model");
    profiles.push_back(profile_model(*model, validation, repeats));
  }
  return profiles;
}

}  // namespace drlhmd::rl
