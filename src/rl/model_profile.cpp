#include "rl/model_profile.hpp"

#include <stdexcept>

#include "util/timer.hpp"

namespace drlhmd::rl {

ModelProfile profile_model(const ml::Classifier& model,
                           const ml::Dataset& validation, std::size_t repeats) {
  if (!model.trained())
    throw std::logic_error("profile_model: model must be trained");
  validation.validate();
  if (validation.size() == 0)
    throw std::invalid_argument("profile_model: empty validation set");
  if (repeats == 0) throw std::invalid_argument("profile_model: repeats must be > 0");

  ModelProfile profile;
  profile.name = model.name();
  profile.metrics = model.evaluate(validation);
  profile.memory_bytes = model.serialize().size();

  // Latency: average over repeats x validation passes; a volatile sink
  // prevents the calls from being optimized away.  Rows are materialized
  // before the timer starts so the measurement covers only inference.
  std::vector<std::vector<double>> rows;
  rows.reserve(validation.size());
  for (std::size_t i = 0; i < validation.size(); ++i)
    rows.push_back(validation.row_copy(i));
  util::Timer timer;
  volatile double sink = 0.0;
  for (std::size_t rep = 0; rep < repeats; ++rep)
    for (const auto& row : rows) sink = sink + model.predict_proba(row);
  (void)sink;
  profile.latency_us =
      timer.elapsed_us() / static_cast<double>(repeats * validation.size());
  return profile;
}

std::vector<ModelProfile> profile_models(const std::vector<ml::Classifier*>& models,
                                         const ml::Dataset& validation,
                                         std::size_t repeats) {
  std::vector<ModelProfile> profiles;
  profiles.reserve(models.size());
  for (const ml::Classifier* model : models) {
    if (model == nullptr) throw std::invalid_argument("profile_models: null model");
    profiles.push_back(profile_model(*model, validation, repeats));
  }
  return profiles;
}

void write_model_profile(util::ByteWriter& w, const ModelProfile& profile) {
  w.write_string(profile.name);
  w.write_f64(profile.latency_us);
  w.write_u64(profile.memory_bytes);
  ml::write_metric_report(w, profile.metrics);
}

ModelProfile read_model_profile(util::ByteReader& r) {
  ModelProfile profile;
  profile.name = r.read_string();
  profile.latency_us = r.read_f64();
  profile.memory_bytes = static_cast<std::size_t>(r.read_u64());
  profile.metrics = ml::read_metric_report(r);
  return profile;
}

}  // namespace drlhmd::rl
