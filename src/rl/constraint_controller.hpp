// Constraint-aware controller (paper Section 2.6).
//
// A UCB bandit schedules one of the five classical detectors per incoming
// sample.  Three specializations mirror the paper's agents:
//   Agent 1 — fastest inference while keeping detection accuracy,
//   Agent 2 — smallest memory footprint with accurate predictions,
//   Agent 3 — best detection, with latency/memory as a soft tiebreak.
//
// The MDP state the paper describes is the 14-tuple [4 HPC features,
// 5 model predictions, 5 constraint-pass flags]; UCB1 conditions only on
// accumulated rewards, so the state is exposed for observation/logging and
// enters learning through the reward function, exactly as in Section 2.6.2
// (reward 1 for a correct prediction scaled by constraint satisfaction,
// 0 otherwise).
#pragma once

#include "ml/classifier.hpp"
#include "rl/model_profile.hpp"
#include "rl/ucb.hpp"

namespace drlhmd::rl {

enum class ConstraintPolicy : std::uint8_t {
  kFastInference = 0,  // Agent 1
  kSmallMemory,        // Agent 2
  kBestDetection,      // Agent 3
};

std::string policy_name(ConstraintPolicy policy);

struct ConstraintControllerConfig {
  ConstraintPolicy policy = ConstraintPolicy::kBestDetection;
  /// Weight of raw correctness vs. the constraint score inside the reward.
  /// Defaults are policy-dependent when left negative.
  double accuracy_weight = -1.0;
  UcbConfig ucb{};
  std::size_t training_epochs = 3;
  std::uint64_t seed = 47;
};

class ConstraintController {
 public:
  /// `models` must all be trained on the merged (adversarially augmented)
  /// dataset; `profiles` must align index-wise with `models`.
  ConstraintController(std::vector<ml::Classifier*> models,
                       std::vector<ModelProfile> profiles,
                       ConstraintControllerConfig config = {});

  /// Offline training over a labeled stream (the merged DB).
  void train(const ml::Dataset& stream);

  /// Current scheduled model (greedy arm).
  std::size_t selected_model() const;
  const ml::Classifier& model(std::size_t index) const;
  const ModelProfile& profile(std::size_t index) const;
  std::size_t model_count() const { return models_.size(); }

  /// Route one sample through the scheduled model.
  int predict(std::span<const double> features) const;
  double predict_proba(std::span<const double> features) const;
  /// Route a whole columnar batch through the scheduled model's vectorized
  /// path; out[r] equals predict(row r).
  void predict_batch(ml::BatchView batch, std::span<int> out) const;

  /// Online adaptation: route, observe ground truth, update the bandit.
  int observe(std::span<const double> features, int truth);

  /// Evaluate the controller's routed predictions on a labeled set.
  ml::MetricReport evaluate(const ml::Dataset& data) const;

  /// Constraint score in [0, 1] for a model under this policy.
  double constraint_score(std::size_t index) const;

  /// The paper's 14-tuple state for one sample: 4 HPCs, 5 predictions,
  /// 5 constraint flags (score >= 0.5).
  std::vector<double> build_state(std::span<const double> features) const;

  const UcbBandit& bandit() const { return bandit_; }

  /// Learned state (policy config, measured profiles, bandit statistics).
  /// Model pointers are NOT serialized — deserialize() re-attaches the
  /// caller's live models, which must match the stored profiles in count
  /// and name order (index-aligned, as in the constructor contract).
  std::vector<std::uint8_t> serialize() const;
  static ConstraintController deserialize(std::span<const std::uint8_t> bytes,
                                          std::vector<ml::Classifier*> models);

 private:
  double reward(std::size_t arm, bool correct) const;

  std::vector<ml::Classifier*> models_;
  std::vector<ModelProfile> profiles_;
  ConstraintControllerConfig config_;
  UcbBandit bandit_;
  double accuracy_weight_ = 0.9;
  double min_latency_ = 0.0;
  std::size_t min_memory_ = 0;
};

}  // namespace drlhmd::rl
