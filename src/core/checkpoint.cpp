// Framework checkpointing: save_checkpoint() persists the config, the
// phase-completion mask, and every completed phase's outputs as named
// artifacts in a directory-backed ArtifactStore; resume() reconstructs a
// Framework from such a directory, restoring state up to the last completed
// phase so run_all() re-runs only the rest.
//
// Artifact map (name -> kind), written per completed phase:
//   manifest                   drlhmd.manifest        mask + FrameworkConfig
//   corpus                     drlhmd.sim.corpus      acquire
//   preprocess                 drlhmd.ml.preprocess   engineer (scaler +
//                                                     selected features)
//   dataset-{train,val,test}   drlhmd.ml.dataset      engineer
//   model-baseline-<i>-<name>  drlhmd.ml.classifier   baseline
//   attack-surrogate           drlhmd.ml.classifier   attack
//   dataset-adv_{train,val,test}, dataset-attacked_test_mix,
//   dataset-defense_val_mix    drlhmd.ml.dataset      attack
//   predictor                  drlhmd.rl.predictor    predict
//   dataset-merged_train       drlhmd.ml.dataset      defend
//   model-defended-<i>-<name>  drlhmd.ml.classifier   defend
//   profiles                   drlhmd.rl.profiles     defend
//   controller-{fast,small,best} drlhmd.rl.controller control
//   vault                      drlhmd.integrity.vault protect
//   monitor                    drlhmd.integrity.monitor protect
//
// Derived state is recomputed instead of persisted: feature bounds come
// from the restored train split, and the LowProFool attacker is rebuilt
// from the restored surrogate + config (all deterministic).  raw_all_ (the
// pre-split engineered dataset) feeds nothing downstream and is not saved.
//
// Scope note: the nested simulator configs (CorpusConfig.monitor /
// .hierarchy / .core) only shape acquire_data, whose output corpus is
// persisted whole, so they are not serialized; a resume that still needs to
// run the acquire phase uses their defaults.
#include <stdexcept>
#include <string>

#include "adversarial/feature_importance.hpp"
#include "core/framework.hpp"
#include "obs/log.hpp"
#include "util/artifact_store.hpp"

namespace drlhmd::core {
namespace {

constexpr std::uint32_t kFormatVersion = 1;
// Manifest payload versions: v1 = mask + config; v2 appends the fleet
// fields (sharded-corpus mode).  v1 manifests resume with fleet defaults.
constexpr std::uint32_t kManifestVersion = 2;

constexpr const char* kKindManifest = "drlhmd.manifest";
constexpr const char* kKindCorpus = "drlhmd.sim.corpus";
constexpr const char* kKindPreprocess = "drlhmd.ml.preprocess";
constexpr const char* kKindDataset = "drlhmd.ml.dataset";
constexpr const char* kKindClassifier = "drlhmd.ml.classifier";
constexpr const char* kKindPredictor = "drlhmd.rl.predictor";
constexpr const char* kKindProfiles = "drlhmd.rl.profiles";
constexpr const char* kKindController = "drlhmd.rl.controller";
constexpr const char* kKindVault = "drlhmd.integrity.vault";
constexpr const char* kKindMonitor = "drlhmd.integrity.monitor";

struct PolicySlot {
  rl::ConstraintPolicy policy;
  const char* artifact;
};
constexpr PolicySlot kPolicySlots[] = {
    {rl::ConstraintPolicy::kFastInference, "controller-fast"},
    {rl::ConstraintPolicy::kSmallMemory, "controller-small"},
    {rl::ConstraintPolicy::kBestDetection, "controller-best"},
};

void write_config(util::ByteWriter& w, const FrameworkConfig& c) {
  w.write_u64(c.corpus.benign_apps);
  w.write_u64(c.corpus.malware_apps);
  w.write_u64(c.corpus.windows_per_app);
  w.write_u64(c.corpus.seed);
  w.write_u8(static_cast<std::uint8_t>(c.feature_mode));
  w.write_u64(c.top_k_features);
  w.write_u64(c.mi_bins);
  w.write_u64(c.attack.max_steps);
  w.write_f64(c.attack.step_size);
  w.write_f64(c.attack.lambda);
  w.write_f64(c.attack.p_norm);
  w.write_i64(c.attack.target_label);
  w.write_f64(c.attack.momentum);
  w.write_f64(c.attack.confidence_margin);
  {
    std::vector<std::uint64_t> hidden(c.predictor.a2c.hidden.begin(),
                                      c.predictor.a2c.hidden.end());
    w.write_u64_vec(hidden);
  }
  w.write_f64(c.predictor.a2c.actor_lr);
  w.write_f64(c.predictor.a2c.critic_lr);
  w.write_f64(c.predictor.a2c.gamma);
  w.write_f64(c.predictor.a2c.entropy_bonus);
  w.write_u64(c.predictor.a2c.seed);
  w.write_f64(c.predictor.reward_adversarial);
  w.write_f64(c.predictor.reward_none);
  w.write_f64(c.predictor.reward_threshold);
  w.write_u64(c.predictor.epochs);
  w.write_u64(c.predictor.seed);
  w.write_u8(static_cast<std::uint8_t>(c.controller.policy));
  w.write_f64(c.controller.accuracy_weight);
  w.write_f64(c.controller.ucb.exploration);
  w.write_u64(c.controller.training_epochs);
  w.write_u64(c.controller.seed);
  w.write_u64(c.controller_epochs);
  w.write_f64(c.metric_tolerance);
  w.write_u64(c.seed);
  // Manifest v2: fleet (sharded-corpus) fields.
  w.write_u64(c.fleet.shards);
  w.write_u64(c.fleet.limit_shards);
  w.write_string(c.fleet.out_dir);
  w.write_u64(c.fleet.profiles.size());
  for (const auto& id : c.fleet.profiles) w.write_string(id);
}

FrameworkConfig read_config(util::ByteReader& r, std::uint32_t version) {
  FrameworkConfig c;
  c.corpus.benign_apps = static_cast<std::size_t>(r.read_u64());
  c.corpus.malware_apps = static_cast<std::size_t>(r.read_u64());
  c.corpus.windows_per_app = static_cast<std::size_t>(r.read_u64());
  c.corpus.seed = r.read_u64();
  c.feature_mode = static_cast<FeatureSelectionMode>(r.read_u8());
  c.top_k_features = static_cast<std::size_t>(r.read_u64());
  c.mi_bins = static_cast<std::size_t>(r.read_u64());
  c.attack.max_steps = static_cast<std::size_t>(r.read_u64());
  c.attack.step_size = r.read_f64();
  c.attack.lambda = r.read_f64();
  c.attack.p_norm = r.read_f64();
  c.attack.target_label = static_cast<int>(r.read_i64());
  c.attack.momentum = r.read_f64();
  c.attack.confidence_margin = r.read_f64();
  {
    c.predictor.a2c.hidden.clear();
    for (std::uint64_t h : r.read_u64_vec())
      c.predictor.a2c.hidden.push_back(static_cast<std::size_t>(h));
  }
  c.predictor.a2c.actor_lr = r.read_f64();
  c.predictor.a2c.critic_lr = r.read_f64();
  c.predictor.a2c.gamma = r.read_f64();
  c.predictor.a2c.entropy_bonus = r.read_f64();
  c.predictor.a2c.seed = r.read_u64();
  c.predictor.reward_adversarial = r.read_f64();
  c.predictor.reward_none = r.read_f64();
  c.predictor.reward_threshold = r.read_f64();
  c.predictor.epochs = static_cast<std::size_t>(r.read_u64());
  c.predictor.seed = r.read_u64();
  c.controller.policy = static_cast<rl::ConstraintPolicy>(r.read_u8());
  c.controller.accuracy_weight = r.read_f64();
  c.controller.ucb.exploration = r.read_f64();
  c.controller.training_epochs = static_cast<std::size_t>(r.read_u64());
  c.controller.seed = r.read_u64();
  c.controller_epochs = static_cast<std::size_t>(r.read_u64());
  c.metric_tolerance = r.read_f64();
  c.seed = r.read_u64();
  if (version >= 2) {
    c.fleet.shards = static_cast<std::size_t>(r.read_u64());
    c.fleet.limit_shards = static_cast<std::size_t>(r.read_u64());
    c.fleet.out_dir = r.read_string();
    const std::uint64_t n_profiles = r.read_u64();
    c.fleet.profiles.clear();
    for (std::uint64_t i = 0; i < n_profiles; ++i)
      c.fleet.profiles.push_back(r.read_string());
  }
  return c;
}

void put_dataset(const util::ArtifactStore& store, const std::string& name,
                 const ml::Dataset& data) {
  store.put(name, kKindDataset, kFormatVersion, data.serialize());
}

ml::Dataset get_dataset(const util::ArtifactStore& store, const std::string& name) {
  const util::Artifact art = store.get(name);
  if (art.kind != kKindDataset)
    throw std::invalid_argument("checkpoint: artifact '" + name +
                                "' has kind '" + art.kind + "', expected dataset");
  return ml::Dataset::deserialize(art.payload);
}

std::vector<std::uint8_t> expect_payload(const util::ArtifactStore& store,
                                         const std::string& name,
                                         const char* kind) {
  util::Artifact art = store.get(name);
  if (art.kind != kind)
    throw std::invalid_argument("checkpoint: artifact '" + name + "' has kind '" +
                                art.kind + "', expected '" + kind + "'");
  return std::move(art.payload);
}

/// First stored artifact whose name starts with `prefix`; empty if none.
std::string find_with_prefix(const std::vector<std::string>& names,
                             const std::string& prefix) {
  for (const auto& n : names)
    if (n.rfind(prefix, 0) == 0) return n;
  return {};
}

/// Load the indexed model artifacts "<stem>-<0..>-<name>" in index order.
std::vector<std::unique_ptr<ml::Classifier>> load_model_set(
    const util::ArtifactStore& store, const std::string& stem) {
  const std::vector<std::string> names = store.list();
  std::vector<std::unique_ptr<ml::Classifier>> models;
  for (std::size_t i = 0;; ++i) {
    const std::string hit =
        find_with_prefix(names, stem + "-" + std::to_string(i) + "-");
    if (hit.empty()) break;
    models.push_back(ml::load_classifier(expect_payload(store, hit, kKindClassifier)));
  }
  return models;
}

void put_model_set(const util::ArtifactStore& store, const std::string& stem,
                   const std::vector<std::unique_ptr<ml::Classifier>>& models) {
  for (std::size_t i = 0; i < models.size(); ++i)
    store.put(stem + "-" + std::to_string(i) + "-" + models[i]->name(),
              kKindClassifier, kFormatVersion, models[i]->serialize());
}

}  // namespace

void Framework::save_checkpoint(const std::string& dir) const {
  const util::ArtifactStore store(dir);

  {
    util::ByteWriter w;
    w.write_u32(completed_phases_);
    write_config(w, config_);
    store.put("manifest", kKindManifest, kManifestVersion, w.bytes());
  }

  // Fleet mode leaves corpus_ empty — the corpus lives in the shard
  // directory (with its own per-shard resume state), not the checkpoint.
  if (phase_done(Phase::kAcquire) && corpus_.has_value())
    store.put("corpus", kKindCorpus, kFormatVersion, sim::serialize_corpus(*corpus_));

  if (phase_done(Phase::kEngineer)) {
    util::ByteWriter w;
    w.write_bytes(scaler_.serialize());
    {
      std::vector<std::uint64_t> indices(feature_indices_.begin(),
                                         feature_indices_.end());
      w.write_u64_vec(indices);
    }
    w.write_u64(feature_names_.size());
    for (const auto& name : feature_names_) w.write_string(name);
    store.put("preprocess", kKindPreprocess, kFormatVersion, w.bytes());
    put_dataset(store, "dataset-train", train_);
    put_dataset(store, "dataset-val", val_);
    put_dataset(store, "dataset-test", test_);
  }

  if (phase_done(Phase::kBaseline))
    put_model_set(store, "model-baseline", baseline_models_);

  if (phase_done(Phase::kAttack)) {
    store.put("attack-surrogate", kKindClassifier, kFormatVersion,
              surrogate_->serialize());
    put_dataset(store, "dataset-adv_train", adversarial_train_);
    put_dataset(store, "dataset-adv_val", adversarial_val_);
    put_dataset(store, "dataset-adv_test", adversarial_test_);
    put_dataset(store, "dataset-attacked_test_mix", attacked_test_mix_);
    put_dataset(store, "dataset-defense_val_mix", defense_val_mix_);
  }

  if (phase_done(Phase::kPredict))
    store.put("predictor", kKindPredictor, kFormatVersion, predictor_->serialize());

  if (phase_done(Phase::kDefend)) {
    put_dataset(store, "dataset-merged_train", merged_train_);
    put_model_set(store, "model-defended", defended_models_);
    util::ByteWriter w;
    w.write_u64(defended_profiles_.size());
    for (const auto& profile : defended_profiles_)
      rl::write_model_profile(w, profile);
    store.put("profiles", kKindProfiles, kFormatVersion, w.bytes());
  }

  if (phase_done(Phase::kControl)) {
    for (const PolicySlot& slot : kPolicySlots) {
      const auto it = controllers_.find(slot.policy);
      require(it != controllers_.end(),
              "save_checkpoint: control phase marked done but a controller is missing");
      store.put(slot.artifact, kKindController, kFormatVersion,
                it->second->serialize());
    }
  }

  if (phase_done(Phase::kProtect)) {
    store.put("vault", kKindVault, kFormatVersion, vault_.serialize());
    store.put("monitor", kKindMonitor, kFormatVersion, monitor_.serialize());
  }

  DRLHMD_LOG(Info) << "checkpoint saved to " << store.directory() << " ("
                   << store.list().size() << " artifacts)";
}

Framework Framework::resume(const std::string& dir) {
  const util::ArtifactStore store(dir);

  std::uint32_t mask = 0;
  FrameworkConfig config;
  {
    // get() rather than expect_payload: the payload layout depends on the
    // artifact version (v2 appends the fleet fields).
    const util::Artifact manifest = store.get("manifest");
    if (manifest.kind != kKindManifest)
      throw std::invalid_argument("checkpoint: artifact 'manifest' has kind '" +
                                  manifest.kind + "', expected manifest");
    if (manifest.version == 0 || manifest.version > kManifestVersion)
      throw std::invalid_argument("Framework::resume: unsupported manifest version " +
                                  std::to_string(manifest.version));
    util::ByteReader r(manifest.payload);
    mask = r.read_u32();
    config = read_config(r, manifest.version);
  }
  if (mask >= (1u << kPhaseCount))
    throw std::invalid_argument("Framework::resume: manifest phase mask invalid");

  Framework fw(config);
  const auto done = [mask](Phase phase) {
    return ((mask >> static_cast<unsigned>(phase)) & 1u) != 0;
  };

  // Fleet checkpoints carry no corpus artifact: the sharded corpus stays
  // in fleet.out_dir and engineer re-opens it from there on demand.
  if (done(Phase::kAcquire) && store.contains("corpus"))
    fw.corpus_ = sim::deserialize_corpus(expect_payload(store, "corpus", kKindCorpus));

  if (done(Phase::kEngineer)) {
    const std::vector<std::uint8_t> preprocess =
        expect_payload(store, "preprocess", kKindPreprocess);
    util::ByteReader r(preprocess);
    fw.scaler_ = ml::StandardScaler::deserialize(r.read_bytes());
    fw.feature_indices_.clear();
    for (std::uint64_t idx : r.read_u64_vec())
      fw.feature_indices_.push_back(static_cast<std::size_t>(idx));
    const std::uint64_t n_names = r.read_u64();
    fw.feature_names_.clear();
    for (std::uint64_t i = 0; i < n_names; ++i)
      fw.feature_names_.push_back(r.read_string());
    fw.train_ = get_dataset(store, "dataset-train");
    fw.val_ = get_dataset(store, "dataset-val");
    fw.test_ = get_dataset(store, "dataset-test");
    // Derived from the train split, not persisted.
    fw.bounds_ = ml::feature_bounds(fw.train_);
  }

  if (done(Phase::kBaseline)) {
    fw.baseline_models_ = load_model_set(store, "model-baseline");
    if (fw.baseline_models_.empty())
      throw std::invalid_argument("Framework::resume: no baseline model artifacts");
  }

  if (done(Phase::kAttack)) {
    const std::vector<std::uint8_t> bytes =
        expect_payload(store, "attack-surrogate", kKindClassifier);
    fw.surrogate_ = std::make_unique<ml::LogisticRegression>(
        ml::LogisticRegression::deserialize(bytes));
    // The attacker holds no learned state beyond the surrogate: rebuild it
    // from the restored surrogate, recomputed bounds and the config.
    fw.attacker_ = std::make_unique<adversarial::LowProFool>(
        *fw.surrogate_, fw.bounds_,
        adversarial::importance_from_lr(*fw.surrogate_), config.attack);
    fw.adversarial_train_ = get_dataset(store, "dataset-adv_train");
    fw.adversarial_val_ = get_dataset(store, "dataset-adv_val");
    fw.adversarial_test_ = get_dataset(store, "dataset-adv_test");
    fw.attacked_test_mix_ = get_dataset(store, "dataset-attacked_test_mix");
    fw.defense_val_mix_ = get_dataset(store, "dataset-defense_val_mix");
  }

  if (done(Phase::kPredict))
    fw.predictor_ = std::make_unique<rl::AdversarialPredictor>(
        rl::AdversarialPredictor::deserialize(
            expect_payload(store, "predictor", kKindPredictor)));

  if (done(Phase::kDefend)) {
    fw.merged_train_ = get_dataset(store, "dataset-merged_train");
    fw.defended_models_ = load_model_set(store, "model-defended");
    if (fw.defended_models_.empty())
      throw std::invalid_argument("Framework::resume: no defended model artifacts");
    const std::vector<std::uint8_t> profiles =
        expect_payload(store, "profiles", kKindProfiles);
    util::ByteReader r(profiles);
    const std::uint64_t count = r.read_u64();
    fw.defended_profiles_.clear();
    for (std::uint64_t i = 0; i < count; ++i)
      fw.defended_profiles_.push_back(rl::read_model_profile(r));
  }

  if (done(Phase::kControl)) {
    std::vector<ml::Classifier*> classical;
    for (std::size_t i = 0; i + 1 < fw.defended_models_.size(); ++i)
      classical.push_back(fw.defended_models_[i].get());
    for (const PolicySlot& slot : kPolicySlots)
      fw.controllers_[slot.policy] = std::make_unique<rl::ConstraintController>(
          rl::ConstraintController::deserialize(
              expect_payload(store, slot.artifact, kKindController), classical));
  }

  if (done(Phase::kProtect)) {
    fw.vault_ = integrity::ModelVault::deserialize(
        expect_payload(store, "vault", kKindVault));
    fw.monitor_ = integrity::MetricMonitor::deserialize(
        expect_payload(store, "monitor", kKindMonitor));
    // Mandatory deployment gate: every restored defended model must hash to
    // its vaulted digest.  A swapped model-* artifact passes its envelope
    // CRC (the CRC covers whatever bytes were written) but cannot match the
    // SHA-256 the vault recorded at deployment.
    for (const auto& model : fw.defended_models_) {
      if (fw.vault_.verify(model->name(), model->serialize()) !=
          integrity::VerificationStatus::kIntact)
        throw std::runtime_error(
            "Framework::resume: model '" + model->name() +
            "' does not match its vaulted SHA-256 digest — checkpoint "
            "tampered, refusing to deploy");
    }
  }

  fw.completed_phases_ = mask;
  DRLHMD_LOG(Info) << "resumed checkpoint from " << store.directory()
                   << " (phase mask " << mask << ")";
  return fw;
}

}  // namespace drlhmd::core
