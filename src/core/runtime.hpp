// Run-time deployment loop (paper Figure 1, right-hand side).
//
// Incoming HPC windows flow through the deployed defense:
//   1. the DRL adversarial predictor inspects the sample; positive feedback
//      reward => the sample is labeled adversarial and quarantined into the
//      incremental database (it is, by the threat model, malware);
//   2. otherwise the constraint-aware controller routes the sample to the
//      scheduled ML detector for the malware/benign verdict;
//   3. once enough fresh adversarial samples accumulate, the defense
//      retrains on the enlarged merged DB (adaptive defense);
//   4. periodically, deployed model bytes are re-hashed against the vault
//      and the metric monitor re-assesses on the reserved validation set
//      (Section 2.7); alarms are raised on deviation.
//
// Every counter lives in an obs::MetricsRegistry (`drlhmd.runtime.*`), so
// hmdctl, the benches, and RuntimeStats all read one source of truth.
// Per-stage latency histograms (predictor / detector / integrity / total)
// are recorded only while obs::Telemetry is enabled.
#pragma once

#include "core/framework.hpp"
#include "obs/metrics.hpp"

namespace drlhmd::core {

enum class TrafficVerdict : std::uint8_t {
  kBenign = 0,
  kMalware,
  kAdversarialMalware,  // flagged by the predictor's feedback reward
  // Backpressure verdict: the serving tier shed this sample at a full
  // ingestion ring before it ever reached the models.  The runtime itself
  // never emits kDropped — serve::DetectionServer synthesizes it so a
  // host's verdict stream stays gap-free under overload.
  kDropped,
};

std::string verdict_name(TrafficVerdict verdict);

/// Row tally of one batch entry (what the serving tier folds into its
/// per-session and drlhmd.serve.* accounting).
struct BatchOutcome {
  std::uint64_t benign = 0;
  std::uint64_t malware = 0;
  std::uint64_t adversarial = 0;
  std::uint64_t retrains = 0;  // adaptive retrains fired inside the batch
};

struct RuntimeConfig {
  /// Fresh quarantined adversarial samples that trigger a defense retrain
  /// (0 disables adaptive retraining).
  std::size_t retrain_threshold = 250;
  /// Samples between integrity validations (0 disables).
  std::size_t integrity_check_period = 1000;
  /// Which constraint agent serves detection traffic.
  rl::ConstraintPolicy policy = rl::ConstraintPolicy::kBestDetection;
  /// Registry receiving this runtime's metrics.  Null keeps a registry
  /// private to the runtime; pass &obs::Telemetry::metrics() to publish
  /// into the process-wide telemetry snapshot.
  obs::MetricsRegistry* registry = nullptr;
};

/// Cheap accessor view over the runtime's registry counters.
struct RuntimeStats {
  std::uint64_t processed = 0;
  std::uint64_t benign = 0;
  std::uint64_t malware = 0;
  std::uint64_t adversarial = 0;
  std::uint64_t retrains = 0;
  std::uint64_t integrity_checks = 0;
  std::uint64_t integrity_alarms = 0;
};

/// Stateful deployment loop over a fully trained Framework.
///
/// The runtime owns no models; it drives the framework's deployed artifacts
/// and, on retrain, asks the framework to fold the quarantined samples into
/// the merged database and refresh defenses/controllers/vault records.
class DetectionRuntime {
 public:
  DetectionRuntime(Framework& framework, RuntimeConfig config = {});

  /// Process one HPC sample (engineered, scaled feature space).
  TrafficVerdict process(std::span<const double> features);

  /// Process a columnar batch of samples: exactly the verdicts, counters,
  /// quarantine contents, and retrain/integrity side effects that calling
  /// process() on each row in order would produce.  Rows are scored against
  /// the frozen deployed models through the detectors' vectorized batch
  /// paths as a two-stage pipeline ("runtime.batch_score" region: predictor
  /// feedback rewards, then detector routing, fused per chunk so the stages
  /// overlap across chunks); side effects then commit serially in row
  /// order.  If an adaptive retrain fires mid-batch, the remaining rows are
  /// re-scored against the updated models via a zero-copy row slice.
  /// Per-stage latency histograms are not recorded on this path — the
  /// parallel region's span carries the batch scoring time instead.
  std::vector<TrafficVerdict> process_batch(ml::BatchView batch);
  /// Allocation-free variant: verdicts land in caller-owned storage
  /// (out.size() == batch.rows()) and all scoring scratch comes from the
  /// per-thread arenas, so a warmed-up runtime serving already-quarantined
  /// traffic performs zero heap allocations per call (asserted by the
  /// `alloc`-labeled ctest).
  void process_batch(ml::BatchView batch, std::span<TrafficVerdict> out);
  /// Compatibility adapter: packs the rows into a FeatureMatrix (one copy)
  /// and runs the columnar path.
  std::vector<TrafficVerdict> process_batch(
      std::span<const std::vector<double>> rows);
  /// Allocation-free batch entry that also reports what happened: verdict
  /// counts and whether an adaptive retrain fired mid-batch.  Computed as
  /// registry counter deltas around process_batch, which is exact as long
  /// as the caller serializes batch entry (the serving drain loop scores
  /// under one lock, so this holds by construction).
  BatchOutcome process_batch_tally(ml::BatchView batch,
                                   std::span<TrafficVerdict> out);

  /// Process a labeled stream; returns detection metrics where adversarial
  /// verdicts count as "malware" (they are malware by construction).  Uses
  /// process_batch() normally; when telemetry is enabled it walks the rows
  /// through process() instead so the per-stage latency histograms see
  /// every sample.
  ml::MetricReport process_stream(const ml::Dataset& stream);

  /// Force an integrity validation pass now.
  bool validate_integrity();

  /// Snapshot of the registry counters as the legacy flat struct.
  RuntimeStats stats() const;
  /// The registry backing this runtime's metrics (private or injected).
  const obs::MetricsRegistry& metrics() const { return *registry_; }
  std::size_t quarantine_size() const { return quarantine_.size(); }
  const RuntimeConfig& config() const { return config_; }

 private:
  void maybe_retrain();
  void maybe_validate_integrity();

  Framework& framework_;
  RuntimeConfig config_;
  ml::Dataset quarantine_;  // predictor-labeled adversarial samples

  obs::MetricsRegistry local_registry_;  // used when no registry is injected
  obs::MetricsRegistry* registry_;
  // Cached handles: one atomic op per update on the hot path.
  obs::Counter* processed_;
  obs::Counter* benign_;
  obs::Counter* malware_;
  obs::Counter* adversarial_;
  obs::Counter* retrains_;
  obs::Counter* integrity_checks_;
  obs::Counter* integrity_alarms_;
  obs::Gauge* quarantine_gauge_;
  obs::Gauge* retrain_gauge_;
  obs::Histogram* latency_predictor_;
  obs::Histogram* latency_detector_;
  obs::Histogram* latency_integrity_;
  obs::Histogram* latency_total_;
  // Exact tail histograms alongside the legacy P² stage histograms:
  // drlhmd.runtime.stage_tail_us{stage=} per stage, and per-batch wall
  // time in drlhmd.runtime.batch_tail_us.
  obs::ShardedTailHistogram* tail_predictor_;
  obs::ShardedTailHistogram* tail_detector_;
  obs::ShardedTailHistogram* tail_integrity_;
  obs::ShardedTailHistogram* tail_total_;
  obs::ShardedTailHistogram* tail_batch_;
};

/// A framework plus serving runtime reconstructed from a checkpoint.
struct ColdStart {
  std::unique_ptr<Framework> framework;
  std::unique_ptr<DetectionRuntime> runtime;
};

/// Cold-start the deployment loop from a checkpoint directory: resume the
/// framework (which verifies every defended model against its vaulted
/// SHA-256 digest and refuses tampered checkpoints), require the pipeline
/// to have completed through the protect phase, and attach a
/// DetectionRuntime ready to serve traffic.
ColdStart cold_start(const std::string& checkpoint_dir, RuntimeConfig config = {});

}  // namespace drlhmd::core
