#include "core/framework.hpp"

#include <stdexcept>

#include "ml/data_source.hpp"
#include "ml/mutual_info.hpp"
#include "ml/sharded_dataset.hpp"
#include "obs/log.hpp"
#include "obs/telemetry.hpp"
#include "util/timer.hpp"

namespace drlhmd::core {
namespace {

/// Subset of a dataset by label.
ml::Dataset rows_with_label(const ml::Dataset& data, int label) {
  ml::Dataset out;
  out.feature_names = data.feature_names;
  for (std::size_t i = 0; i < data.size(); ++i)
    if (data.y[i] == label) out.push_from(data, i);
  return out;
}

/// Publish the completed phase's duration as a gauge; spans carry the same
/// timing hierarchically in the trace.
void finish_phase(const char* phase, const util::Timer& timer) {
  if (!obs::Telemetry::enabled()) return;
  obs::Telemetry::metrics()
      .gauge("drlhmd.pipeline.phase_seconds", {{"phase", phase}})
      .set(timer.elapsed_seconds());
  DRLHMD_LOG(Debug) << "pipeline phase '" << phase << "' finished in "
                    << timer.elapsed_ms() << " ms";
}

void set_size_gauge(const char* split, std::size_t size) {
  if (!obs::Telemetry::enabled()) return;
  obs::Telemetry::metrics()
      .gauge("drlhmd.pipeline.dataset_size", {{"split", split}})
      .set(static_cast<double>(size));
}

/// drlhmd.corpus.* fleet-build telemetry: shard progress, build throughput
/// and the per-machine-profile row mix.
void publish_corpus_stats(const sim::ShardBuildStats& stats) {
  if (!obs::Telemetry::enabled()) return;
  auto& reg = obs::Telemetry::metrics();
  reg.counter("drlhmd.corpus.shards_built").inc(stats.shards_built);
  reg.gauge("drlhmd.corpus.shards_total").set(static_cast<double>(stats.shards_total));
  reg.gauge("drlhmd.corpus.shards_resumed").set(static_cast<double>(stats.shards_resumed));
  reg.gauge("drlhmd.corpus.rows").set(static_cast<double>(stats.rows));
  if (stats.build_seconds > 0.0)
    reg.gauge("drlhmd.corpus.rows_per_sec")
        .set(static_cast<double>(stats.rows) / stats.build_seconds);
  for (const auto& [profile, rows] : stats.rows_per_profile)
    reg.gauge("drlhmd.corpus.profile_rows", {{"profile", profile}})
        .set(static_cast<double>(rows));
}

}  // namespace

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kAcquire: return "acquire";
    case Phase::kEngineer: return "engineer";
    case Phase::kBaseline: return "baseline";
    case Phase::kAttack: return "attack";
    case Phase::kPredict: return "predict";
    case Phase::kDefend: return "defend";
    case Phase::kControl: return "control";
    case Phase::kProtect: return "protect";
  }
  return "unknown";
}

Framework::Framework(FrameworkConfig config)
    : config_(std::move(config)), monitor_(config_.metric_tolerance) {
  if (config_.top_k_features == 0)
    throw std::invalid_argument("Framework: top_k_features must be > 0");
}

void Framework::require(bool condition, const char* message) const {
  if (!condition) throw std::logic_error(std::string("Framework: ") + message);
}

bool Framework::phase_done(Phase phase) const {
  return (completed_phases_ >> static_cast<unsigned>(phase)) & 1u;
}

void Framework::mark_phase(Phase phase) {
  const unsigned bit = static_cast<unsigned>(phase);
  // Keep bits at or below `phase`, set this one: re-running any phase
  // invalidates every downstream phase's recorded completion.
  completed_phases_ =
      (completed_phases_ & ((1u << (bit + 1)) - 1u)) | (1u << bit);
}

void Framework::acquire_data() {
  const obs::Span span = obs::phase_span("pipeline.acquire");
  const util::Timer timer;
  if (fleet_mode()) {
    // Sharded out-of-core build (or per-shard resume of one).  The phase
    // only counts as done once every shard is on disk with a valid CRC, so
    // a limit_shards-interrupted build re-enters here on the next run.
    const sim::ShardBuildStats stats =
        sim::build_corpus_sharded(config_.corpus, config_.fleet);
    publish_corpus_stats(stats);
    set_size_gauge("corpus", stats.rows);
    require(stats.complete,
            "acquire_data: fleet build incomplete (limit_shards interrupted "
            "it); run again to resume the remaining shards");
  } else {
    corpus_ = sim::build_corpus(config_.corpus);
    set_size_gauge("corpus", corpus_->records.size());
  }
  mark_phase(Phase::kAcquire);
  finish_phase("acquire", timer);
}

void Framework::engineer_features() {
  if (fleet_mode()) {
    engineer_features_fleet();
    return;
  }
  require(corpus_.has_value(), "acquire_data must run before engineer_features");
  const obs::Span span = obs::phase_span("pipeline.engineer");
  const util::Timer timer;

  // Raw columnar dataset over all HPC events.
  ml::Dataset raw = sim::corpus_to_dataset(*corpus_);

  // Cleaning (drop non-finite rows, winsorize counter glitches).
  raw = ml::clean(raw);
  raw_all_ = raw;

  // Paper protocol: 80:20 train/test, then 80:20 train/val — split before
  // fitting anything so no statistic leaks from test into training.
  util::Rng rng(config_.seed);
  ml::TrainValTest split = ml::paper_protocol_split(raw, rng);

  if (config_.feature_mode == FeatureSelectionMode::kPaperFeatures) {
    // The paper's MI-selected feature set, pinned by event name.
    feature_indices_.clear();
    for (const char* name :
         {"LLC-load-misses", "LLC-loads", "cache-misses", "cache-references"}) {
      const auto event = sim::event_from_name(name);
      feature_indices_.push_back(static_cast<std::size_t>(event));
    }
    if (feature_indices_.size() > config_.top_k_features)
      feature_indices_.resize(config_.top_k_features);
  } else {
    // MI-based selection of the top-k features, estimated on train only.
    feature_indices_ = ml::select_top_k_features(split.train, config_.top_k_features,
                                                 config_.mi_bins);
  }
  feature_names_.clear();
  for (std::size_t idx : feature_indices_)
    feature_names_.push_back(raw.feature_names[idx]);

  // Column selection then standard scaling fitted on train, applied in
  // place on the selected columnar storage — one copy per split instead of
  // select + a second full transform copy.
  train_ = split.train.select_features(feature_indices_);
  val_ = split.val.select_features(feature_indices_);
  test_ = split.test.select_features(feature_indices_);
  scaler_.fit(train_);
  scaler_.transform_inplace(train_.X.mutable_view());
  scaler_.transform_inplace(val_.X.mutable_view());
  scaler_.transform_inplace(test_.X.mutable_view());

  // Clipping bounds for the attack (Algorithm 1 line 1), in scaled space.
  bounds_ = ml::feature_bounds(train_);

  set_size_gauge("train", train_.size());
  set_size_gauge("val", val_.size());
  set_size_gauge("test", test_.size());
  mark_phase(Phase::kEngineer);
  finish_phase("engineer", timer);
}

void Framework::engineer_features_fleet() {
  require(phase_done(Phase::kAcquire),
          "acquire_data must run before engineer_features");
  const obs::Span span = obs::phase_span("pipeline.engineer");
  const util::Timer timer;

  // Map the shard directory read-only; selection walks every row through
  // the mmapped column views one scratch column at a time, so the only
  // full-height allocation before the top-k cut is a single column.
  const ml::ShardedDataset source =
      ml::ShardedDataset::open(config_.fleet.out_dir);
  if (obs::Telemetry::enabled())
    obs::Telemetry::metrics()
        .gauge("drlhmd.corpus.mmap_bytes")
        .set(static_cast<double>(source.mapped_bytes()));

  if (config_.feature_mode == FeatureSelectionMode::kPaperFeatures) {
    feature_indices_.clear();
    for (const char* name :
         {"LLC-load-misses", "LLC-loads", "cache-misses", "cache-references"}) {
      const auto event = sim::event_from_name(name);
      feature_indices_.push_back(static_cast<std::size_t>(event));
    }
    if (feature_indices_.size() > config_.top_k_features)
      feature_indices_.resize(config_.top_k_features);
  } else {
    // Streamed MI over the whole shard set.  Out-of-core selection
    // necessarily ranks on all rows rather than the train split only: the
    // corpus cannot be row-split until the selected columns fit in RAM.
    feature_indices_ = ml::select_top_k_features(source, config_.top_k_features,
                                                 config_.mi_bins);
  }
  feature_names_.clear();
  for (std::size_t idx : feature_indices_)
    feature_names_.push_back(source.feature_names()[idx]);

  // Materialize only the selected k columns — the full-width corpus never
  // exists in RAM.  Cleaning, the paper split and scaling then run on the
  // k-wide slice exactly as the in-RAM path does post-selection.
  ml::Dataset raw = ml::materialize_columns(source, feature_indices_);
  raw = ml::clean(raw);
  raw_all_ = raw;

  util::Rng rng(config_.seed);
  ml::TrainValTest split = ml::paper_protocol_split(raw, rng);
  train_ = std::move(split.train);
  val_ = std::move(split.val);
  test_ = std::move(split.test);
  scaler_.fit(train_);
  scaler_.transform_inplace(train_.X.mutable_view());
  scaler_.transform_inplace(val_.X.mutable_view());
  scaler_.transform_inplace(test_.X.mutable_view());
  bounds_ = ml::feature_bounds(train_);

  set_size_gauge("train", train_.size());
  set_size_gauge("val", val_.size());
  set_size_gauge("test", test_.size());
  mark_phase(Phase::kEngineer);
  finish_phase("engineer", timer);
}

void Framework::train_baselines() {
  require(train_.size() > 0, "engineer_features must run before train_baselines");
  const obs::Span span = obs::phase_span("pipeline.baseline");
  const util::Timer timer;
  baseline_models_ = ml::make_all_models(config_.seed);
  for (auto& model : baseline_models_) model->fit(train_);
  mark_phase(Phase::kBaseline);
  finish_phase("baseline", timer);
}

void Framework::generate_attacks() {
  require(train_.size() > 0, "engineer_features must run before generate_attacks");
  const obs::Span span = obs::phase_span("pipeline.attack");
  const util::Timer timer;

  // Attacker's surrogate: an LR trained the same way the defenders train
  // (threat model: attacker gathers its own HPC data with the same process).
  surrogate_ = std::make_unique<ml::LogisticRegression>();
  surrogate_->fit(train_);
  attacker_ = std::make_unique<adversarial::LowProFool>(
      *surrogate_, bounds_, adversarial::importance_from_lr(*surrogate_),
      config_.attack);

  adversarial_train_ = attacker_->attack_dataset(rows_with_label(train_, 1));
  adversarial_val_ = attacker_->attack_dataset(rows_with_label(val_, 1));
  adversarial_test_ = attacker_->attack_dataset(rows_with_label(test_, 1));

  // Inference mixture under attack: benign traffic plus adversarial malware
  // (the attacker rewrites every malware HPC vector it launches).
  attacked_test_mix_ = rows_with_label(test_, 0);
  attacked_test_mix_.append(adversarial_test_);

  // Validation mixture for profiling defended models: benign + legitimate
  // malware + adversarial malware from the validation split.
  defense_val_mix_ = val_;
  defense_val_mix_.append(adversarial_val_);

  if (obs::Telemetry::enabled()) {
    set_size_gauge("adversarial_train", adversarial_train_.size());
    set_size_gauge("adversarial_test", adversarial_test_.size());
    // Attack success against the surrogate evaluator: how many generated
    // vectors the imperceptibility LR now calls benign.
    obs::Counter& generated =
        obs::Telemetry::metrics().counter("drlhmd.pipeline.attack.generated");
    obs::Counter& success =
        obs::Telemetry::metrics().counter("drlhmd.pipeline.attack.success");
    for (const ml::Dataset* pool :
         {&adversarial_train_, &adversarial_val_, &adversarial_test_}) {
      const std::vector<int> predictions = surrogate_->predict_batch(*pool);
      for (const int prediction : predictions) {
        generated.inc();
        if (prediction == config_.attack.target_label) success.inc();
      }
    }
  }
  mark_phase(Phase::kAttack);
  finish_phase("attack", timer);
}

void Framework::train_predictor() {
  require(adversarial_train_.size() > 0,
          "generate_attacks must run before train_predictor");
  const obs::Span span = obs::phase_span("pipeline.predict");
  const util::Timer timer;
  rl::AdversarialPredictorConfig cfg = config_.predictor;
  cfg.seed += config_.seed;
  predictor_ = std::make_unique<rl::AdversarialPredictor>(
      config_.top_k_features, cfg);
  // Labeled adversarial pool vs. unlabeled ("None") legitimate pool.
  predictor_->train(adversarial_train_, train_);
  mark_phase(Phase::kPredict);
  finish_phase("predict", timer);
}

void Framework::train_defenses() {
  require(adversarial_train_.size() > 0,
          "generate_attacks must run before train_defenses");
  const obs::Span span = obs::phase_span("pipeline.defend");
  const util::Timer timer;

  // Merged HPC database [malware, benign, adversarial]: adversarial samples
  // are labeled by the predictor's positive feedback in deployment; here the
  // freshly generated pool is merged with ground-truth label "malware".
  merged_train_ = train_;
  merged_train_.append(adversarial_train_);

  defended_models_ = ml::make_all_models(config_.seed + 1);
  for (auto& model : defended_models_) model->fit(merged_train_);

  // Metric Monitor inputs for the controller (classical models only).
  std::vector<ml::Classifier*> classical;
  for (std::size_t i = 0; i + 1 < defended_models_.size(); ++i)
    classical.push_back(defended_models_[i].get());
  defended_profiles_ = rl::profile_models(classical, defense_val_mix_);

  set_size_gauge("merged_train", merged_train_.size());
  mark_phase(Phase::kDefend);
  finish_phase("defend", timer);
}

void Framework::train_controllers() {
  require(!defended_models_.empty(),
          "train_defenses must run before train_controllers");
  const obs::Span span = obs::phase_span("pipeline.control");
  const util::Timer timer;

  std::vector<ml::Classifier*> classical;
  for (std::size_t i = 0; i + 1 < defended_models_.size(); ++i)
    classical.push_back(defended_models_[i].get());

  controllers_.clear();
  for (rl::ConstraintPolicy policy :
       {rl::ConstraintPolicy::kFastInference, rl::ConstraintPolicy::kSmallMemory,
        rl::ConstraintPolicy::kBestDetection}) {
    rl::ConstraintControllerConfig cfg = config_.controller;
    cfg.policy = policy;
    cfg.training_epochs = config_.controller_epochs;
    cfg.seed += config_.seed + static_cast<std::uint64_t>(policy);
    auto controller = std::make_unique<rl::ConstraintController>(
        classical, defended_profiles_, cfg);
    // Reward the bandit on held-out data: trees memorize their training
    // rows, so a merged-train stream would make every arm look perfect.
    controller->train(defense_val_mix_);
    controllers_[policy] = std::move(controller);
  }
  mark_phase(Phase::kControl);
  finish_phase("control", timer);
}

void Framework::protect_models(std::uint64_t deploy_timestamp) {
  require(!defended_models_.empty(), "train_defenses must run before protect_models");
  const obs::Span span = obs::phase_span("pipeline.protect");
  const util::Timer timer;
  for (const auto& model : defended_models_) {
    vault_.deploy(model->name(), model->serialize(), deploy_timestamp);
    monitor_.record_baseline(*model, defense_val_mix_);
  }
  mark_phase(Phase::kProtect);
  finish_phase("protect", timer);
}

void Framework::incremental_defense_update(const ml::Dataset& new_adversarial) {
  require(!defended_models_.empty(),
          "train_defenses must run before incremental_defense_update");
  new_adversarial.validate();
  if (new_adversarial.size() == 0) return;
  const obs::Span span = obs::phase_span("pipeline.incremental_update");
  DRLHMD_LOG(Info) << "incremental defense update: +" << new_adversarial.size()
                   << " adversarial samples (merged DB -> "
                   << merged_train_.size() + new_adversarial.size() << ")";
  for (int label : new_adversarial.y)
    if (label != 1)
      throw std::invalid_argument(
          "incremental_defense_update: quarantined samples must be label 1");

  merged_train_.append(new_adversarial);
  for (auto& model : defended_models_) {
    auto fresh = model->clone_untrained();
    fresh->fit(merged_train_);
    model = std::move(fresh);
  }

  std::vector<ml::Classifier*> classical;
  for (std::size_t i = 0; i + 1 < defended_models_.size(); ++i)
    classical.push_back(defended_models_[i].get());
  defended_profiles_ = rl::profile_models(classical, defense_val_mix_);

  if (!controllers_.empty()) train_controllers();
  if (vault_.size() > 0) {
    // Re-deploy with a bumped timestamp so the vault tracks the new bytes.
    const std::uint64_t stamp =
        vault_.record(defended_models_.front()->name())
            ? vault_.record(defended_models_.front()->name())->deployed_at + 1
            : 1;
    protect_models(stamp);
  }
}

void Framework::run_all() {
  const obs::Span span = obs::phase_span("pipeline");
  if (!phase_done(Phase::kAcquire)) acquire_data();
  if (!phase_done(Phase::kEngineer)) engineer_features();
  if (!phase_done(Phase::kBaseline)) train_baselines();
  if (!phase_done(Phase::kAttack)) generate_attacks();
  if (!phase_done(Phase::kPredict)) train_predictor();
  if (!phase_done(Phase::kDefend)) train_defenses();
  if (!phase_done(Phase::kControl)) train_controllers();
  if (!phase_done(Phase::kProtect)) protect_models();
}

std::vector<ScenarioEvaluation> Framework::evaluate_scenarios() const {
  require(!baseline_models_.empty() && !defended_models_.empty(),
          "baselines and defenses must be trained before evaluate_scenarios");
  std::vector<ScenarioEvaluation> rows;
  rows.reserve(baseline_models_.size());
  for (std::size_t i = 0; i < baseline_models_.size(); ++i) {
    ScenarioEvaluation row;
    row.model = baseline_models_[i]->name();
    row.regular = baseline_models_[i]->evaluate(test_);
    row.adversarial = baseline_models_[i]->evaluate(attacked_test_mix_);
    row.defended = defended_models_[i]->evaluate(attacked_test_mix_);
    rows.push_back(std::move(row));
  }
  return rows;
}

ml::MetricReport Framework::evaluate_predictor() const {
  require(predictor_ != nullptr, "train_predictor must run first");
  return predictor_->evaluate(adversarial_test_, test_);
}

std::vector<double> Framework::predictor_reward_trace() const {
  require(predictor_ != nullptr, "train_predictor must run first");
  std::vector<std::vector<double>> stream;
  stream.reserve(adversarial_test_.size() + test_.size());
  for (std::size_t i = 0; i < adversarial_test_.size(); ++i)
    stream.push_back(adversarial_test_.row_copy(i));
  for (std::size_t i = 0; i < test_.size(); ++i)
    stream.push_back(test_.row_copy(i));
  return predictor_->reward_trace(stream);
}

adversarial::AttackCampaignReport Framework::attack_report() const {
  require(attacker_ != nullptr, "generate_attacks must run first");
  return attacker_->evaluate_campaign(rows_with_label(test_, 1));
}

const sim::HpcCorpus& Framework::corpus() const {
  require(corpus_.has_value(), "acquire_data must run first");
  return *corpus_;
}

const ml::Dataset& Framework::train_set() const { return train_; }
const ml::Dataset& Framework::val_set() const { return val_; }
const ml::Dataset& Framework::test_set() const { return test_; }
const ml::Dataset& Framework::adversarial_train() const { return adversarial_train_; }
const ml::Dataset& Framework::adversarial_test() const { return adversarial_test_; }
const ml::Dataset& Framework::merged_train() const { return merged_train_; }
const ml::Dataset& Framework::attacked_test_mix() const { return attacked_test_mix_; }
const ml::Dataset& Framework::defense_val_mix() const { return defense_val_mix_; }

const std::vector<std::string>& Framework::selected_feature_names() const {
  return feature_names_;
}
const std::vector<std::size_t>& Framework::selected_feature_indices() const {
  return feature_indices_;
}

const std::vector<std::unique_ptr<ml::Classifier>>& Framework::baseline_models()
    const {
  return baseline_models_;
}
const std::vector<std::unique_ptr<ml::Classifier>>& Framework::defended_models()
    const {
  return defended_models_;
}

const rl::AdversarialPredictor& Framework::predictor() const {
  require(predictor_ != nullptr, "train_predictor must run first");
  return *predictor_;
}

const rl::ConstraintController& Framework::controller(
    rl::ConstraintPolicy policy) const {
  const auto it = controllers_.find(policy);
  require(it != controllers_.end(), "train_controllers must run first");
  return *it->second;
}

const std::vector<rl::ModelProfile>& Framework::defended_profiles() const {
  return defended_profiles_;
}

}  // namespace drlhmd::core
