#include "core/runtime.hpp"

#include <stdexcept>

#include "ml/feature_matrix.hpp"
#include "obs/log.hpp"
#include "obs/telemetry.hpp"
#include "util/arena.hpp"
#include "util/parallel.hpp"

namespace drlhmd::core {

std::string verdict_name(TrafficVerdict verdict) {
  switch (verdict) {
    case TrafficVerdict::kBenign: return "benign";
    case TrafficVerdict::kMalware: return "malware";
    case TrafficVerdict::kAdversarialMalware: return "adversarial-malware";
    case TrafficVerdict::kDropped: return "dropped";
  }
  throw std::invalid_argument("verdict_name: bad verdict");
}

DetectionRuntime::DetectionRuntime(Framework& framework, RuntimeConfig config)
    : framework_(framework),
      config_(config),
      registry_(config.registry != nullptr ? config.registry : &local_registry_) {
  // Deployment prerequisites: the pipeline must be fully trained.
  (void)framework_.predictor();
  (void)framework_.controller(config_.policy);

  obs::MetricsRegistry& reg = *registry_;
  processed_ = &reg.counter("drlhmd.runtime.processed");
  benign_ = &reg.counter("drlhmd.runtime.verdicts", {{"verdict", "benign"}});
  malware_ = &reg.counter("drlhmd.runtime.verdicts", {{"verdict", "malware"}});
  adversarial_ =
      &reg.counter("drlhmd.runtime.verdicts", {{"verdict", "adversarial"}});
  retrains_ = &reg.counter("drlhmd.runtime.retrains");
  integrity_checks_ = &reg.counter("drlhmd.runtime.integrity.checks");
  integrity_alarms_ = &reg.counter("drlhmd.runtime.integrity.alarms");
  quarantine_gauge_ = &reg.gauge("drlhmd.runtime.quarantine_size");
  retrain_gauge_ = &reg.gauge("drlhmd.runtime.retrain_count");
  latency_predictor_ =
      &reg.histogram("drlhmd.runtime.stage_latency_us", {}, {{"stage", "predictor"}});
  latency_detector_ =
      &reg.histogram("drlhmd.runtime.stage_latency_us", {}, {{"stage", "detector"}});
  latency_integrity_ =
      &reg.histogram("drlhmd.runtime.stage_latency_us", {}, {{"stage", "integrity"}});
  latency_total_ =
      &reg.histogram("drlhmd.runtime.stage_latency_us", {}, {{"stage", "total"}});
  const obs::TailConfig& tail_cfg = obs::default_latency_tail_config();
  tail_predictor_ = &reg.tail("drlhmd.runtime.stage_tail_us", tail_cfg,
                              {{"stage", "predictor"}});
  tail_detector_ = &reg.tail("drlhmd.runtime.stage_tail_us", tail_cfg,
                             {{"stage", "detector"}});
  tail_integrity_ = &reg.tail("drlhmd.runtime.stage_tail_us", tail_cfg,
                              {{"stage", "integrity"}});
  tail_total_ =
      &reg.tail("drlhmd.runtime.stage_tail_us", tail_cfg, {{"stage", "total"}});
  tail_batch_ = &reg.tail("drlhmd.runtime.batch_tail_us", tail_cfg);
}

RuntimeStats DetectionRuntime::stats() const {
  RuntimeStats stats;
  stats.processed = processed_->value();
  stats.benign = benign_->value();
  stats.malware = malware_->value();
  stats.adversarial = adversarial_->value();
  stats.retrains = retrains_->value();
  stats.integrity_checks = integrity_checks_->value();
  stats.integrity_alarms = integrity_alarms_->value();
  return stats;
}

TrafficVerdict DetectionRuntime::process(std::span<const double> features) {
  const bool timed = obs::Telemetry::enabled();
  const obs::ScopedLatency total(timed ? latency_total_ : nullptr,
                                 timed ? tail_total_ : nullptr);
  processed_->inc();

  // Line of defense 1: the DRL predictor's feedback reward.
  bool flagged;
  {
    const obs::ScopedLatency t(timed ? latency_predictor_ : nullptr,
                               timed ? tail_predictor_ : nullptr);
    flagged = framework_.predictor().is_adversarial(features);
  }
  if (flagged) {
    adversarial_->inc();
    // Adversarial vectors are malware masquerading as benign: label and
    // quarantine them for the next adversarial-training round.
    quarantine_.push(features, 1);
    quarantine_gauge_->set(static_cast<double>(quarantine_.size()));
    maybe_retrain();
    maybe_validate_integrity();
    return TrafficVerdict::kAdversarialMalware;
  }

  // Line of defense 2: the constraint-aware controller's scheduled model.
  int prediction;
  {
    const obs::ScopedLatency t(timed ? latency_detector_ : nullptr,
                               timed ? tail_detector_ : nullptr);
    prediction = framework_.controller(config_.policy).predict(features);
  }
  if (prediction == 1) {
    malware_->inc();
  } else {
    benign_->inc();
  }
  maybe_validate_integrity();
  return prediction == 1 ? TrafficVerdict::kMalware : TrafficVerdict::kBenign;
}

void DetectionRuntime::maybe_retrain() {
  if (config_.retrain_threshold == 0) return;
  if (quarantine_.size() < config_.retrain_threshold) return;
  DRLHMD_LOG(Info) << "adaptive retrain: folding " << quarantine_.size()
                   << " quarantined adversarial samples into the merged DB";
  framework_.incremental_defense_update(quarantine_);
  quarantine_ = ml::Dataset{};
  quarantine_gauge_->set(0.0);
  retrains_->inc();
  retrain_gauge_->set(static_cast<double>(retrains_->value()));
}

void DetectionRuntime::maybe_validate_integrity() {
  if (config_.integrity_check_period == 0) return;
  if (processed_->value() % config_.integrity_check_period == 0)
    validate_integrity();
}

bool DetectionRuntime::validate_integrity() {
  const bool timed = obs::Telemetry::enabled();
  const obs::ScopedLatency t(timed ? latency_integrity_ : nullptr,
                             timed ? tail_integrity_ : nullptr);
  integrity_checks_->inc();
  bool all_intact = true;
  for (const auto& model : framework_.defended_models()) {
    const auto status =
        framework_.vault().verify(model->name(), model->serialize());
    if (status != integrity::VerificationStatus::kIntact) {
      all_intact = false;
      integrity_alarms_->inc();
      DRLHMD_LOG(Warn) << "integrity alarm: model '" << model->name()
                       << "' bytes deviate from the vault record";
    }
  }
  return all_intact;
}

std::vector<TrafficVerdict> DetectionRuntime::process_batch(ml::BatchView batch) {
  std::vector<TrafficVerdict> verdicts(batch.rows());
  process_batch(batch, verdicts);
  return verdicts;
}

void DetectionRuntime::process_batch(ml::BatchView batch,
                                     std::span<TrafficVerdict> out) {
  if (out.size() != batch.rows())
    throw std::invalid_argument(
        "DetectionRuntime::process_batch: out size mismatch");
  // Whole-batch wall time into the exact tail histogram (the per-stage
  // histograms cannot be recorded inside the parallel scoring region).
  const obs::ScopedLatency batch_timer(
      nullptr, obs::Telemetry::enabled() ? tail_batch_ : nullptr);
  // All scoring scratch is arena-backed: a warmed-up runtime allocates
  // nothing on this path (the quarantine push below only allocates while
  // its ring grows toward the retrain threshold).
  util::ArenaScope scope(util::scratch_arena());
  auto row = scope.alloc<double>(batch.cols());
  std::size_t start = 0;
  while (start < batch.rows()) {
    // Speculatively score every remaining row against the currently
    // deployed (frozen) models.  Both stages are const and cache-free, so
    // concurrent scoring matches what the sequential loop would compute.
    // The stages are fused per chunk: each worker runs the predictor's
    // critic and the scheduled detector back to back on its zero-copy row
    // slice, so predictor and detector work overlap across chunks with no
    // barrier in between.  Detector routing is computed for flagged rows
    // too — it is pure and the commit loop simply ignores those slots.
    const auto& predictor = framework_.predictor();
    const auto& controller = framework_.controller(config_.policy);
    const std::size_t pending = batch.rows() - start;
    const ml::BatchView remaining = batch.rows_slice(start, pending);
    auto flagged = scope.alloc<std::uint8_t>(pending);
    auto predictions = scope.alloc<int>(pending);
    util::parallel_pipeline(
        "runtime.batch_score", std::size_t{0}, pending, 0,
        [&](std::size_t, std::size_t begin, std::size_t end) {
          predictor.is_adversarial_batch(
              remaining.rows_slice(begin, end - begin),
              std::span<std::uint8_t>(flagged.data() + begin, end - begin));
        },
        [&](std::size_t, std::size_t begin, std::size_t end) {
          controller.predict_batch(
              remaining.rows_slice(begin, end - begin),
              std::span<int>(predictions.data() + begin, end - begin));
        });

    // Serial commit in row order: exactly process()'s side effects.  When
    // a retrain swaps the deployed models, the speculative scores for the
    // rows after it are stale — break out and re-score the remainder.
    const std::uint64_t retrains_before = retrains_->value();
    std::size_t i = start;
    for (; i < batch.rows(); ++i) {
      processed_->inc();
      if (flagged[i - start] != 0) {
        adversarial_->inc();
        batch.gather_row(i, {row.data(), row.size()});
        quarantine_.push({row.data(), row.size()}, 1);
        quarantine_gauge_->set(static_cast<double>(quarantine_.size()));
        maybe_retrain();
        maybe_validate_integrity();
        out[i] = TrafficVerdict::kAdversarialMalware;
        if (retrains_->value() != retrains_before) {
          ++i;
          break;
        }
      } else {
        const int prediction = predictions[i - start];
        if (prediction == 1) {
          malware_->inc();
        } else {
          benign_->inc();
        }
        maybe_validate_integrity();
        out[i] = prediction == 1 ? TrafficVerdict::kMalware
                                 : TrafficVerdict::kBenign;
      }
    }
    start = i;
  }
}

BatchOutcome DetectionRuntime::process_batch_tally(
    ml::BatchView batch, std::span<TrafficVerdict> out) {
  const std::uint64_t benign0 = benign_->value();
  const std::uint64_t malware0 = malware_->value();
  const std::uint64_t adversarial0 = adversarial_->value();
  const std::uint64_t retrains0 = retrains_->value();
  process_batch(batch, out);
  BatchOutcome outcome;
  outcome.benign = benign_->value() - benign0;
  outcome.malware = malware_->value() - malware0;
  outcome.adversarial = adversarial_->value() - adversarial0;
  outcome.retrains = retrains_->value() - retrains0;
  return outcome;
}

std::vector<TrafficVerdict> DetectionRuntime::process_batch(
    std::span<const std::vector<double>> rows) {
  ml::FeatureMatrix packed;
  packed.reserve_rows(rows.size());
  for (const auto& r : rows) packed.push_row(r);
  return process_batch(packed.view());
}

ml::MetricReport DetectionRuntime::process_stream(const ml::Dataset& stream) {
  stream.validate();
  std::vector<TrafficVerdict> verdicts;
  if (obs::Telemetry::enabled()) {
    // Per-row path so the stage latency histograms see every sample;
    // the batch path cannot time individual stages inside its parallel
    // scoring region.
    verdicts.reserve(stream.size());
    std::vector<double> row(stream.num_features());
    for (std::size_t i = 0; i < stream.size(); ++i) {
      stream.gather_row(i, row);
      verdicts.push_back(process(row));
    }
  } else {
    verdicts = process_batch(stream.X.view());
  }
  std::vector<int> predictions;
  predictions.reserve(verdicts.size());
  for (const TrafficVerdict verdict : verdicts)
    predictions.push_back(verdict == TrafficVerdict::kBenign ? 0 : 1);
  return ml::evaluate_predictions(stream.y, predictions);
}

ColdStart cold_start(const std::string& checkpoint_dir, RuntimeConfig config) {
  ColdStart out;
  out.framework =
      std::make_unique<Framework>(Framework::resume(checkpoint_dir));
  if (!out.framework->phase_done(Phase::kProtect))
    throw std::runtime_error(
        "cold_start: checkpoint has not completed the protect phase — run "
        "the pipeline (or resume + run_all) to deployment before serving");
  out.runtime = std::make_unique<DetectionRuntime>(*out.framework, config);
  return out;
}

}  // namespace drlhmd::core
