#include "core/runtime.hpp"

#include <stdexcept>

namespace drlhmd::core {

std::string verdict_name(TrafficVerdict verdict) {
  switch (verdict) {
    case TrafficVerdict::kBenign: return "benign";
    case TrafficVerdict::kMalware: return "malware";
    case TrafficVerdict::kAdversarialMalware: return "adversarial-malware";
  }
  throw std::invalid_argument("verdict_name: bad verdict");
}

DetectionRuntime::DetectionRuntime(Framework& framework, RuntimeConfig config)
    : framework_(framework), config_(config) {
  // Deployment prerequisites: the pipeline must be fully trained.
  (void)framework_.predictor();
  (void)framework_.controller(config_.policy);
}

TrafficVerdict DetectionRuntime::process(std::span<const double> features) {
  ++stats_.processed;

  // Line of defense 1: the DRL predictor's feedback reward.
  if (framework_.predictor().is_adversarial(features)) {
    ++stats_.adversarial;
    // Adversarial vectors are malware masquerading as benign: label and
    // quarantine them for the next adversarial-training round.
    quarantine_.push(std::vector<double>(features.begin(), features.end()), 1);
    maybe_retrain();
    if (config_.integrity_check_period > 0 &&
        stats_.processed % config_.integrity_check_period == 0)
      validate_integrity();
    return TrafficVerdict::kAdversarialMalware;
  }

  // Line of defense 2: the constraint-aware controller's scheduled model.
  const int prediction = framework_.controller(config_.policy).predict(features);
  if (prediction == 1) {
    ++stats_.malware;
  } else {
    ++stats_.benign;
  }
  if (config_.integrity_check_period > 0 &&
      stats_.processed % config_.integrity_check_period == 0)
    validate_integrity();
  return prediction == 1 ? TrafficVerdict::kMalware : TrafficVerdict::kBenign;
}

void DetectionRuntime::maybe_retrain() {
  if (config_.retrain_threshold == 0) return;
  if (quarantine_.size() < config_.retrain_threshold) return;
  framework_.incremental_defense_update(quarantine_);
  quarantine_ = ml::Dataset{};
  ++stats_.retrains;
}

bool DetectionRuntime::validate_integrity() {
  ++stats_.integrity_checks;
  bool all_intact = true;
  for (const auto& model : framework_.defended_models()) {
    const auto status =
        framework_.vault().verify(model->name(), model->serialize());
    if (status != integrity::VerificationStatus::kIntact) {
      all_intact = false;
      ++stats_.integrity_alarms;
    }
  }
  return all_intact;
}

ml::MetricReport DetectionRuntime::process_stream(const ml::Dataset& stream) {
  stream.validate();
  std::vector<int> predictions;
  predictions.reserve(stream.size());
  for (const auto& row : stream.X) {
    const TrafficVerdict verdict = process(row);
    predictions.push_back(verdict == TrafficVerdict::kBenign ? 0 : 1);
  }
  return ml::evaluate_predictions(stream.y, predictions);
}

}  // namespace drlhmd::core
