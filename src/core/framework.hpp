// End-to-end adversarial-resilient HMD framework (paper Figure 1).
//
// Orchestrates the full multi-phase pipeline:
//   1. acquire  — simulate the application corpus, collect HPC windows
//   2. engineer — clean, standard-scale, MI-select the top-k HPC features
//   3. baseline — train the six detectors on legitimate malware/benign data
//   4. attack   — generate LowProFool adversarial malware (train & test pools)
//   5. predict  — train the A2C adversarial predictor on unlabeled data
//   6. defend   — adversarial training: retrain detectors on the merged DB
//   7. control  — train the three UCB constraint-aware agents
//   8. protect  — vault deployed models (SHA-256) + metric baselines
//
// Each phase is callable on its own (phases check their prerequisites), or
// run_all() executes the whole pipeline.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "adversarial/lowprofool.hpp"
#include "integrity/metric_monitor.hpp"
#include "integrity/model_vault.hpp"
#include "ml/model_zoo.hpp"
#include "ml/preprocess.hpp"
#include "rl/adversarial_predictor.hpp"
#include "rl/constraint_controller.hpp"
#include "sim/corpus_shard.hpp"
#include "sim/dataset_builder.hpp"

namespace drlhmd::core {

enum class FeatureSelectionMode : std::uint8_t {
  /// Use the four HPC events the paper reports as its MI-selected feature
  /// set (LLC-load-misses, LLC-loads, cache-misses, cache-references), so
  /// the detection problem is identical to the paper's.  The MI ranking of
  /// the synthetic corpus is still computed and can be inspected.
  kPaperFeatures = 0,
  /// Select the top-k features of the synthetic corpus by mutual
  /// information (the paper's procedure applied to our data).
  kMutualInfo,
};

struct FrameworkConfig {
  sim::CorpusConfig corpus{};
  /// Fleet mode (enabled when fleet.out_dir is non-empty): acquire builds a
  /// sharded out-of-core corpus under fleet.out_dir across heterogeneous
  /// machine profiles instead of one in-RAM corpus, and engineer streams
  /// feature selection over the mmap-backed shards, materializing only the
  /// selected top-k columns.
  sim::FleetConfig fleet{};
  FeatureSelectionMode feature_mode = FeatureSelectionMode::kPaperFeatures;
  std::size_t top_k_features = 4;      // paper: top four HPCs by MI
  std::size_t mi_bins = 16;
  adversarial::LowProFoolConfig attack{};
  rl::AdversarialPredictorConfig predictor{};
  rl::ConstraintControllerConfig controller{};  // policy overridden per agent
  std::size_t controller_epochs = 6;
  double metric_tolerance = 0.05;
  std::uint64_t seed = 2024;
};

/// Per-model metrics across the paper's three scenarios (Table 2 rows).
struct ScenarioEvaluation {
  std::string model;
  ml::MetricReport regular;      // (a) malware attack, no adversary
  ml::MetricReport adversarial;  // (b) under adversarial attack
  ml::MetricReport defended;     // (c) after adversarial training
};

/// The eight pipeline phases, in run_all() order.  Each phase's outputs are
/// persistable as named artifacts; a checkpoint records which phases have
/// completed so resume() re-runs only the rest.
enum class Phase : std::uint8_t {
  kAcquire = 0,
  kEngineer,
  kBaseline,
  kAttack,
  kPredict,
  kDefend,
  kControl,
  kProtect,
};
inline constexpr std::size_t kPhaseCount = 8;
const char* phase_name(Phase phase);

class Framework {
 public:
  explicit Framework(FrameworkConfig config = {});

  // -- Phases ------------------------------------------------------------
  void acquire_data();
  void engineer_features();
  void train_baselines();
  void generate_attacks();
  void train_predictor();
  void train_defenses();
  void train_controllers();
  void protect_models(std::uint64_t deploy_timestamp = 20240623);

  /// Run phases 1-8 in order, skipping any already completed (e.g. after
  /// resume() from a partial checkpoint).
  void run_all();

  // -- Checkpointing -----------------------------------------------------
  /// True once the phase has completed (and no earlier phase has been
  /// re-run since — re-running a phase invalidates everything downstream).
  bool phase_done(Phase phase) const;

  /// Persist the config, phase-completion state and every completed
  /// phase's outputs as artifacts under `dir` (created if missing).
  void save_checkpoint(const std::string& dir) const;

  /// Reconstruct a framework from a checkpoint directory.  Completed
  /// phases are restored from artifacts; run_all() then re-runs only the
  /// remaining ones.  If the protect phase had completed, every defended
  /// model is re-verified against its vaulted SHA-256 digest before use —
  /// a mismatch throws std::runtime_error (tampered checkpoint).
  static Framework resume(const std::string& dir);

  /// Adaptive defense update (run-time loop): fold freshly quarantined
  /// adversarial samples (label 1) into the merged database, retrain the
  /// defended models, refresh profiles, controllers, vault records and
  /// metric baselines.  Requires train_defenses to have run.
  void incremental_defense_update(const ml::Dataset& new_adversarial);

  // -- Evaluation --------------------------------------------------------
  /// Table 2: each detector under the three scenarios.
  std::vector<ScenarioEvaluation> evaluate_scenarios() const;

  /// Adversarial predictor quality (paper: 100% across the board).
  ml::MetricReport evaluate_predictor() const;

  /// Figure 3(b): critic feedback-reward trace over a stream of
  /// adversarial-then-legitimate samples.
  std::vector<double> predictor_reward_trace() const;

  /// LowProFool campaign statistics on the test malware pool.
  adversarial::AttackCampaignReport attack_report() const;

  // -- Accessors ---------------------------------------------------------
  const FrameworkConfig& config() const { return config_; }
  /// True when the pipeline runs against a sharded on-disk corpus.
  bool fleet_mode() const { return !config_.fleet.out_dir.empty(); }
  const sim::HpcCorpus& corpus() const;
  const ml::Dataset& train_set() const;       // engineered top-k space
  const ml::Dataset& val_set() const;
  const ml::Dataset& test_set() const;
  const ml::Dataset& adversarial_train() const;  // attacked train malware
  const ml::Dataset& adversarial_test() const;   // attacked test malware
  const ml::Dataset& merged_train() const;       // defense DB
  /// Test mixture for scenarios (b)/(c): benign + adversarial malware.
  const ml::Dataset& attacked_test_mix() const;
  /// Validation mixture used for profiling defended models (benign +
  /// legitimate malware + adversarial malware from the validation split).
  const ml::Dataset& defense_val_mix() const;
  const std::vector<std::string>& selected_feature_names() const;
  const std::vector<std::size_t>& selected_feature_indices() const;
  const ml::StandardScaler& scaler() const { return scaler_; }

  const std::vector<std::unique_ptr<ml::Classifier>>& baseline_models() const;
  const std::vector<std::unique_ptr<ml::Classifier>>& defended_models() const;
  const rl::AdversarialPredictor& predictor() const;
  const rl::ConstraintController& controller(rl::ConstraintPolicy policy) const;
  const std::vector<rl::ModelProfile>& defended_profiles() const;
  integrity::ModelVault& vault() { return vault_; }
  const integrity::ModelVault& vault() const { return vault_; }
  integrity::MetricMonitor& metric_monitor() { return monitor_; }

 private:
  void require(bool condition, const char* message) const;
  /// Mark `phase` complete and invalidate all downstream phases.
  void mark_phase(Phase phase);
  /// Fleet-mode engineer: streamed selection over the shard directory,
  /// then materialize only the selected top-k columns.
  void engineer_features_fleet();

  FrameworkConfig config_;
  std::uint32_t completed_phases_ = 0;  // bit i == Phase i done

  std::optional<sim::HpcCorpus> corpus_;
  ml::Dataset raw_all_;  // full engineered-feature dataset pre-split

  ml::StandardScaler scaler_;
  std::vector<std::size_t> feature_indices_;
  std::vector<std::string> feature_names_;
  ml::Dataset train_, val_, test_;
  ml::FeatureBounds bounds_;

  std::vector<std::unique_ptr<ml::Classifier>> baseline_models_;
  std::unique_ptr<ml::LogisticRegression> surrogate_;
  std::unique_ptr<adversarial::LowProFool> attacker_;
  ml::Dataset adversarial_train_, adversarial_val_, adversarial_test_;
  ml::Dataset attacked_test_mix_;
  ml::Dataset defense_val_mix_;
  ml::Dataset merged_train_;

  std::unique_ptr<rl::AdversarialPredictor> predictor_;
  std::vector<std::unique_ptr<ml::Classifier>> defended_models_;
  std::vector<rl::ModelProfile> defended_profiles_;
  std::map<rl::ConstraintPolicy, std::unique_ptr<rl::ConstraintController>> controllers_;

  integrity::ModelVault vault_;
  integrity::MetricMonitor monitor_;
};

}  // namespace drlhmd::core
