// Detection-as-a-service: multi-tenant streaming front end over a trained
// DetectionRuntime (ROADMAP item 1, DESIGN.md §13).
//
// Thousands of simulated hosts push fixed-size HPC samples into per-shard
// lock-free MPSC rings (serve/ring.hpp) — the enqueue path is one CAS plus
// one release store, never a lock, never a heap allocation.  Drain workers
// (optionally CPU-pinned) pull their shards through an *adaptive batcher*:
// rows accumulate into a pre-sized columnar staging tile until either
// `max_batch` rows are staged or the oldest staged sample has waited
// `max_wait_us` microseconds, whichever happens first; the tile is then
// scored in one DetectionRuntime::process_batch pass (the speculative
// parallel path, arena-backed and zero-heap at steady state) and verdicts
// are routed back to per-host SPSC completion queues.
//
// Session discipline: every host has a HostSession tracking its sample
// sequence, enqueue/drop/delivery counters and last verdict.  Sequence
// numbers are stamped on *arrival* — a sample shed at a full ring burns
// its sequence number, so gaps in the delivered stream are exactly the
// backpressure drops (which the caller reports as TrafficVerdict::kDropped).
// Host → shard → worker mapping is static (host % shards, shard % workers),
// which is what makes each completion queue single-producer.
//
// Latency accounting: samples carry a caller-supplied enqueue tick (defaults
// to "now") measured in nanoseconds since the shared obs telemetry epoch;
// the flush path stamps a verdict tick from the same epoch and records the
// end-to-end enqueue→verdict time into the drlhmd.serve.e2e_us exact tail
// histogram.  An open-loop load generator passes the *scheduled* arrival
// tick instead of the actual push time, which makes the recorded tails
// coordinated-omission-safe.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/runtime.hpp"
#include "ml/feature_matrix.hpp"
#include "obs/metrics.hpp"
#include "serve/ring.hpp"

namespace drlhmd::serve {

/// Widest sample the wire format carries; the engineered feature space is
/// 4-wide, so 16 leaves headroom without bloating the ring slots.
inline constexpr std::size_t kMaxSampleFeatures = 16;

/// Nanoseconds since the shared obs telemetry epoch (steady clock).
std::uint64_t now_ns();

/// One HPC sample on the ingestion ring (trivially copyable wire format).
struct HpcSample {
  std::uint32_t host = 0;
  std::uint32_t seq = 0;
  std::uint64_t enqueue_tick_ns = 0;
  double features[kMaxSampleFeatures] = {};
};

/// One verdict on a host's completion queue.
struct VerdictRecord {
  std::uint32_t host = 0;
  std::uint32_t seq = 0;
  core::TrafficVerdict verdict = core::TrafficVerdict::kBenign;
  std::uint64_t enqueue_tick_ns = 0;
  std::uint64_t verdict_tick_ns = 0;
};

/// Read-only copy of one host's session counters.
struct HostSessionSnapshot {
  std::uint32_t host = 0;
  std::uint32_t next_seq = 0;        // sequence the next arrival will get
  std::uint64_t enqueued = 0;        // samples accepted into the ring
  std::uint64_t dropped = 0;         // samples shed at a full ring
  std::uint64_t delivered = 0;       // verdicts routed to the completion queue
  std::uint64_t completion_dropped = 0;  // verdicts shed at a full completion queue
  core::TrafficVerdict last_verdict = core::TrafficVerdict::kBenign;
};

struct ServeConfig {
  std::size_t hosts = 64;
  std::size_t shards = 1;            // ingestion rings (hosts map host % shards)
  std::size_t ring_capacity = 4096;  // per shard; rounded up to a power of two
  std::size_t completion_capacity = 256;  // per host; rounded up likewise
  std::size_t max_batch = 256;       // adaptive batcher: row cap per flush
  double max_wait_us = 500.0;        // adaptive batcher: oldest-sample age cap
  std::size_t workers = 1;           // background drain threads (start())
  bool pin_workers = false;          // pin drain workers to CPUs round-robin
  /// Registry receiving drlhmd.serve.* metrics; null keeps one private.
  obs::MetricsRegistry* registry = nullptr;
};

/// Aggregate serving counters (relaxed snapshot; exact when quiescent).
struct ServeStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dropped = 0;
  std::uint64_t scored = 0;
  std::uint64_t delivered = 0;
  std::uint64_t completion_dropped = 0;
  std::uint64_t batches = 0;
  std::uint64_t flush_full = 0;   // flushes triggered by max_batch
  std::uint64_t flush_wait = 0;   // flushes triggered by max_wait_us
  std::uint64_t flush_drain = 0;  // forced flushes (poll() / shutdown)
  std::uint64_t retrains = 0;     // adaptive retrains fired while serving
  std::uint64_t queue_depth = 0;  // ring occupancy sampled at stats() time
};

/// Long-lived multi-tenant serving front end over one DetectionRuntime.
///
/// Threading contract: each host must be fed by exactly one producer
/// thread (any number of hosts per producer; the per-shard rings are MPSC
/// so producers never coordinate), each host's completion queue must be
/// drained by exactly one consumer thread, and either the background
/// workers run (start()/stop()) or a single thread pumps poll() — never
/// both at once.
class DetectionServer {
 public:
  DetectionServer(core::DetectionRuntime& runtime, std::size_t feature_width,
                  ServeConfig config = {});
  ~DetectionServer();
  DetectionServer(const DetectionServer&) = delete;
  DetectionServer& operator=(const DetectionServer&) = delete;

  struct EnqueueResult {
    bool accepted = false;
    std::uint32_t seq = 0;  // stamped even when the sample was shed
  };

  /// Producer path: stamp the host's next sequence number and push the
  /// sample onto its shard's ring.  Lock-free and allocation-free; on a
  /// full ring the sample is counted as dropped (callers surface it as
  /// TrafficVerdict::kDropped).  `enqueue_tick_ns` = 0 stamps "now"; an
  /// open-loop load generator passes the scheduled arrival tick instead so
  /// recorded latencies stay coordinated-omission-safe.
  EnqueueResult try_enqueue(std::uint32_t host,
                            std::span<const double> features,
                            std::uint64_t enqueue_tick_ns = 0);

  /// Manual pump (tests, smoke modes): drain every ring on the calling
  /// thread, force-flushing staged rows in max_batch-sized tiles until the
  /// rings are empty.  Returns the number of verdicts produced.  Must not
  /// be called while the background workers run.
  std::size_t poll();

  /// Start/stop the background drain workers.  stop() drains the rings and
  /// flushes any staged rows before joining, so every accepted sample gets
  /// a verdict (producers must be quiesced first).
  void start();
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Consumer path for one host's completion queue (single consumer).
  bool try_pop_verdict(std::uint32_t host, VerdictRecord& out);

  HostSessionSnapshot session(std::uint32_t host) const;
  ServeStats stats() const;

  /// Fold current depth/drop totals into drlhmd.serve.* gauges
  /// (queue_depth, dropped_total, sessions) — pull-based, like
  /// obs::Telemetry::publish_arena_gauges().
  void publish_gauges();

  const ServeConfig& config() const { return config_; }
  std::size_t feature_width() const { return cols_; }
  const obs::MetricsRegistry& metrics() const { return *registry_; }
  std::size_t shard_of(std::uint32_t host) const {
    return host % config_.shards;
  }

 private:
  enum class FlushReason { kFull, kWait, kDrain };

  /// Mutable per-host session state (single-writer fields, relaxed atomics
  /// so stats() can read them from any thread); padded so one host's
  /// producer and its drain worker never share a line.
  struct alignas(kCacheLineBytes) HostSession {
    std::atomic<std::uint32_t> next_seq{0};
    std::atomic<std::uint64_t> enqueued{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<std::uint64_t> completion_dropped{0};
    std::atomic<std::uint8_t> last_verdict{0};
  };

  /// One drain worker's staging state: a fixed-shape columnar tile plus
  /// row metadata, pre-sized so the steady-state drain loop never touches
  /// the heap.
  struct Worker {
    std::size_t index = 0;
    ml::FeatureMatrix tile;                    // max_batch x cols, fixed
    std::vector<HpcSample> meta;               // staged row -> wire metadata
    std::vector<core::TrafficVerdict> verdicts;  // max_batch slots
    std::size_t staged = 0;
    std::uint64_t oldest_tick_ns = 0;          // enqueue tick of first staged row
    std::size_t next_shard = 0;                // round-robin cursor
    std::thread thread;
  };

  std::size_t stage(Worker& worker, bool all_shards);
  std::size_t flush(Worker& worker, FlushReason reason);
  void worker_main(Worker& worker);

  core::DetectionRuntime& runtime_;
  ServeConfig config_;
  std::size_t cols_;
  std::uint64_t max_wait_ns_;

  std::vector<std::unique_ptr<MpscRing<HpcSample>>> rings_;        // per shard
  std::vector<std::unique_ptr<SpscRing<VerdictRecord>>> completions_;  // per host
  std::unique_ptr<HostSession[]> sessions_;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex score_mu_;  // serializes process_batch across drain workers
  std::atomic<bool> running_{false};

  obs::MetricsRegistry local_registry_;
  obs::MetricsRegistry* registry_;
  // Cached handles: one relaxed atomic op per update on the hot path.
  obs::Counter* enqueued_;
  obs::Counter* dropped_;
  obs::Counter* scored_;
  obs::Counter* delivered_;
  obs::Counter* completion_dropped_;
  obs::Counter* batches_;
  obs::Counter* flush_full_;
  obs::Counter* flush_wait_;
  obs::Counter* flush_drain_;
  obs::Counter* retrains_;
  // Always-on serving SLO recorders (wait-free, allocation-free once each
  // recording thread's shard exists): end-to-end enqueue→verdict latency,
  // per-flush batch size, and per-flush scoring wall time.
  obs::ShardedTailHistogram* e2e_us_;
  obs::ShardedTailHistogram* batch_rows_;
  obs::ShardedTailHistogram* score_us_;
};

}  // namespace drlhmd::serve
