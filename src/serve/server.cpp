#include "serve/server.hpp"

#include <chrono>
#include <stdexcept>

#include "obs/clock.hpp"
#include "obs/telemetry.hpp"
#include "util/parallel.hpp"

namespace drlhmd::serve {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - obs::telemetry_epoch())
          .count());
}

DetectionServer::DetectionServer(core::DetectionRuntime& runtime,
                                 std::size_t feature_width, ServeConfig config)
    : runtime_(runtime),
      config_(config),
      cols_(feature_width),
      max_wait_ns_(static_cast<std::uint64_t>(config.max_wait_us * 1e3)),
      registry_(config.registry != nullptr ? config.registry
                                           : &local_registry_) {
  if (cols_ == 0 || cols_ > kMaxSampleFeatures)
    throw std::invalid_argument(
        "DetectionServer: feature_width must be in [1, kMaxSampleFeatures]");
  if (config_.hosts == 0) throw std::invalid_argument("DetectionServer: hosts");
  if (config_.shards == 0)
    throw std::invalid_argument("DetectionServer: shards");
  if (config_.max_batch == 0)
    throw std::invalid_argument("DetectionServer: max_batch");
  if (config_.workers == 0) config_.workers = 1;
  // A worker with no shards would spin forever; shards bound the useful
  // drain parallelism.
  if (config_.workers > config_.shards) config_.workers = config_.shards;

  rings_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s)
    rings_.push_back(std::make_unique<MpscRing<HpcSample>>(config_.ring_capacity));
  completions_.reserve(config_.hosts);
  for (std::size_t h = 0; h < config_.hosts; ++h)
    completions_.push_back(
        std::make_unique<SpscRing<VerdictRecord>>(config_.completion_capacity));
  sessions_ = std::make_unique<HostSession[]>(config_.hosts);

  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->index = w;
    worker->tile = ml::FeatureMatrix(config_.max_batch, cols_);
    worker->meta.resize(config_.max_batch);
    worker->verdicts.resize(config_.max_batch);
    worker->next_shard = w;
    workers_.push_back(std::move(worker));
  }

  obs::MetricsRegistry& reg = *registry_;
  enqueued_ = &reg.counter("drlhmd.serve.enqueued");
  dropped_ = &reg.counter("drlhmd.serve.dropped");
  scored_ = &reg.counter("drlhmd.serve.scored");
  delivered_ = &reg.counter("drlhmd.serve.delivered");
  completion_dropped_ = &reg.counter("drlhmd.serve.completion_dropped");
  batches_ = &reg.counter("drlhmd.serve.batches");
  flush_full_ = &reg.counter("drlhmd.serve.flushes", {{"reason", "full"}});
  flush_wait_ = &reg.counter("drlhmd.serve.flushes", {{"reason", "wait"}});
  flush_drain_ = &reg.counter("drlhmd.serve.flushes", {{"reason", "drain"}});
  retrains_ = &reg.counter("drlhmd.serve.retrains");
  const obs::TailConfig& tail_cfg = obs::default_latency_tail_config();
  e2e_us_ = &reg.tail("drlhmd.serve.e2e_us", tail_cfg);
  batch_rows_ = &reg.tail("drlhmd.serve.batch_rows", tail_cfg);
  score_us_ = &reg.tail("drlhmd.serve.score_us", tail_cfg);
}

DetectionServer::~DetectionServer() { stop(); }

DetectionServer::EnqueueResult DetectionServer::try_enqueue(
    std::uint32_t host, std::span<const double> features,
    std::uint64_t enqueue_tick_ns) {
  if (host >= config_.hosts)
    throw std::out_of_range("DetectionServer::try_enqueue: bad host id");
  if (features.size() != cols_)
    throw std::invalid_argument(
        "DetectionServer::try_enqueue: feature width mismatch");

  HostSession& session = sessions_[host];
  EnqueueResult result;
  // The sequence is burned whether or not the push lands: the gap a
  // consumer sees in delivered sequence numbers is exactly its drop count.
  result.seq = session.next_seq.fetch_add(1, std::memory_order_relaxed);

  HpcSample sample;
  sample.host = host;
  sample.seq = result.seq;
  sample.enqueue_tick_ns = enqueue_tick_ns != 0 ? enqueue_tick_ns : now_ns();
  for (std::size_t c = 0; c < cols_; ++c) sample.features[c] = features[c];

  if (rings_[shard_of(host)]->try_push(sample)) {
    session.enqueued.fetch_add(1, std::memory_order_relaxed);
    enqueued_->inc();
    result.accepted = true;
  } else {
    session.dropped.fetch_add(1, std::memory_order_relaxed);
    session.last_verdict.store(
        static_cast<std::uint8_t>(core::TrafficVerdict::kDropped),
        std::memory_order_relaxed);
    dropped_->inc();
  }
  return result;
}

std::size_t DetectionServer::stage(Worker& worker, bool all_shards) {
  std::size_t popped = 0;
  const std::size_t n_shards = rings_.size();
  for (std::size_t visited = 0;
       visited < n_shards && worker.staged < config_.max_batch; ++visited) {
    const std::size_t s = (worker.next_shard + visited) % n_shards;
    if (!all_shards && s % config_.workers != worker.index) continue;
    HpcSample sample;
    while (worker.staged < config_.max_batch && rings_[s]->try_pop(sample)) {
      if (worker.staged == 0) worker.oldest_tick_ns = sample.enqueue_tick_ns;
      for (std::size_t c = 0; c < cols_; ++c)
        worker.tile.at(worker.staged, c) = sample.features[c];
      worker.meta[worker.staged] = sample;
      ++worker.staged;
      ++popped;
    }
  }
  // Rotate the starting shard so a hot shard cannot starve the others of
  // tile space when the batcher is saturated.
  worker.next_shard = (worker.next_shard + 1) % n_shards;
  return popped;
}

std::size_t DetectionServer::flush(Worker& worker, FlushReason reason) {
  const std::size_t n = worker.staged;
  if (n == 0) return 0;

  const bool traced = obs::Telemetry::enabled();
  const double start_us = obs::now_us_since_epoch();
  {
    // The runtime is single-threaded by contract; with the default one
    // drain worker this lock is uncontended and the fast path stays
    // lock-free end to end (the lock only serializes multi-worker flushes).
    std::lock_guard<std::mutex> lock(score_mu_);
    const core::BatchOutcome outcome = runtime_.process_batch_tally(
        worker.tile.view().rows_slice(0, n),
        std::span<core::TrafficVerdict>(worker.verdicts.data(), n));
    if (outcome.retrains != 0) retrains_->inc(outcome.retrains);
  }
  const std::uint64_t verdict_tick = now_ns();
  score_us_->observe(obs::now_us_since_epoch() - start_us);
  batch_rows_->observe(static_cast<double>(n));
  scored_->inc(n);
  batches_->inc();
  switch (reason) {
    case FlushReason::kFull: flush_full_->inc(); break;
    case FlushReason::kWait: flush_wait_->inc(); break;
    case FlushReason::kDrain: flush_drain_->inc(); break;
  }

  std::uint64_t routed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const HpcSample& meta = worker.meta[i];
    HostSession& session = sessions_[meta.host];
    VerdictRecord record;
    record.host = meta.host;
    record.seq = meta.seq;
    record.verdict = worker.verdicts[i];
    record.enqueue_tick_ns = meta.enqueue_tick_ns;
    record.verdict_tick_ns = verdict_tick;
    if (completions_[meta.host]->try_push(record)) {
      session.delivered.fetch_add(1, std::memory_order_relaxed);
      ++routed;
    } else {
      session.completion_dropped.fetch_add(1, std::memory_order_relaxed);
      completion_dropped_->inc();
    }
    session.last_verdict.store(static_cast<std::uint8_t>(worker.verdicts[i]),
                               std::memory_order_relaxed);
    // End-to-end latency from the (possibly scheduled) enqueue tick; a
    // tick stamped "in the future" by a jittery producer clamps to zero
    // rather than wrapping.
    const double e2e_us =
        verdict_tick >= meta.enqueue_tick_ns
            ? static_cast<double>(verdict_tick - meta.enqueue_tick_ns) / 1e3
            : 0.0;
    e2e_us_->observe(e2e_us);
  }
  if (routed != 0) delivered_->inc(routed);
  if (traced) {
    obs::Telemetry::tracer().complete_event(
        "serve.flush", "serve", start_us,
        obs::now_us_since_epoch() - start_us);
  }
  worker.staged = 0;
  return n;
}

std::size_t DetectionServer::poll() {
  if (running())
    throw std::logic_error(
        "DetectionServer::poll: background workers are running");
  Worker& worker = *workers_[0];
  std::size_t total = 0;
  for (;;) {
    stage(worker, /*all_shards=*/true);
    if (worker.staged == 0) break;
    total += flush(worker, worker.staged >= config_.max_batch
                               ? FlushReason::kFull
                               : FlushReason::kDrain);
  }
  return total;
}

void DetectionServer::worker_main(Worker& worker) {
  if (config_.pin_workers) util::pin_current_thread(worker.index);
  while (running_.load(std::memory_order_acquire)) {
    const std::size_t popped = stage(worker, /*all_shards=*/false);
    if (worker.staged >= config_.max_batch) {
      flush(worker, FlushReason::kFull);
      continue;
    }
    if (worker.staged > 0 &&
        static_cast<std::int64_t>(now_ns() - worker.oldest_tick_ns) >=
            static_cast<std::int64_t>(max_wait_ns_)) {
      flush(worker, FlushReason::kWait);
      continue;
    }
    if (popped == 0) {
      // Idle backoff: short enough to keep the max_wait_us promise, long
      // enough not to burn the core the scoring path needs.
      std::this_thread::sleep_for(std::chrono::microseconds(
          worker.staged > 0 ? 5 : 20));
    }
  }
  // Shutdown drain: every accepted sample still gets a verdict.
  for (;;) {
    stage(worker, /*all_shards=*/false);
    if (worker.staged == 0) break;
    flush(worker, worker.staged >= config_.max_batch ? FlushReason::kFull
                                                     : FlushReason::kDrain);
  }
}

void DetectionServer::start() {
  if (running()) return;
  running_.store(true, std::memory_order_release);
  for (auto& worker : workers_)
    worker->thread = std::thread([this, w = worker.get()] { worker_main(*w); });
}

void DetectionServer::stop() {
  if (!running()) return;
  running_.store(false, std::memory_order_release);
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

bool DetectionServer::try_pop_verdict(std::uint32_t host, VerdictRecord& out) {
  if (host >= config_.hosts)
    throw std::out_of_range("DetectionServer::try_pop_verdict: bad host id");
  return completions_[host]->try_pop(out);
}

HostSessionSnapshot DetectionServer::session(std::uint32_t host) const {
  if (host >= config_.hosts)
    throw std::out_of_range("DetectionServer::session: bad host id");
  const HostSession& s = sessions_[host];
  HostSessionSnapshot snap;
  snap.host = host;
  snap.next_seq = s.next_seq.load(std::memory_order_relaxed);
  snap.enqueued = s.enqueued.load(std::memory_order_relaxed);
  snap.dropped = s.dropped.load(std::memory_order_relaxed);
  snap.delivered = s.delivered.load(std::memory_order_relaxed);
  snap.completion_dropped =
      s.completion_dropped.load(std::memory_order_relaxed);
  snap.last_verdict = static_cast<core::TrafficVerdict>(
      s.last_verdict.load(std::memory_order_relaxed));
  return snap;
}

ServeStats DetectionServer::stats() const {
  ServeStats stats;
  stats.enqueued = enqueued_->value();
  stats.dropped = dropped_->value();
  stats.scored = scored_->value();
  stats.delivered = delivered_->value();
  stats.completion_dropped = completion_dropped_->value();
  stats.batches = batches_->value();
  stats.flush_full = flush_full_->value();
  stats.flush_wait = flush_wait_->value();
  stats.flush_drain = flush_drain_->value();
  stats.retrains = retrains_->value();
  for (const auto& ring : rings_) stats.queue_depth += ring->size();
  return stats;
}

void DetectionServer::publish_gauges() {
  std::size_t depth = 0;
  for (const auto& ring : rings_) depth += ring->size();
  obs::MetricsRegistry& reg = *registry_;
  reg.gauge("drlhmd.serve.queue_depth").set(static_cast<double>(depth));
  reg.gauge("drlhmd.serve.dropped_total")
      .set(static_cast<double>(dropped_->value() +
                              completion_dropped_->value()));
  reg.gauge("drlhmd.serve.sessions")
      .set(static_cast<double>(config_.hosts));
}

}  // namespace drlhmd::serve
