// Lock-free ingestion rings for the detection-as-a-service data plane.
//
// Two bounded rings with the same shape discipline — power-of-two capacity,
// cache-line-padded indices, no locks anywhere on the enqueue path:
//
//   * SpscRing: classic single-producer/single-consumer ring.  Each side
//     owns one index and keeps a *cached* copy of the other side's index,
//     so the steady-state push/pop pays one relaxed load + one release
//     store and touches the far cache line only when its cached view says
//     the ring might be full/empty.  Used for the per-host completion
//     queues (one drain worker produces, one collector consumes).
//
//   * MpscRing: bounded multi-producer/single-consumer ring in the Vyukov
//     per-cell-sequence style.  Producers claim a slot with one CAS on the
//     enqueue cursor and publish it with a release store on the cell's
//     sequence number; the consumer never blocks a producer and vice
//     versa.  Used for the per-shard ingestion rings, where any number of
//     host threads feed one drain worker.
//
// Both rings are *lossy by contract*: try_push returns false when the ring
// is full and the caller does the drop accounting (backpressure is a
// counted verdict, not a wait).  Elements must be trivially copyable —
// slots are raw storage that wraps around, nothing is ever destroyed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>

namespace drlhmd::serve {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Smallest power of two >= n (and >= 2).
constexpr std::size_t ring_capacity_for(std::size_t n) {
  std::size_t cap = 2;
  while (cap < n) cap <<= 1;
  return cap;
}

/// Single-producer / single-consumer bounded ring.
template <typename T>
class SpscRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "ring slots are raw wrapping storage");

 public:
  explicit SpscRing(std::size_t min_capacity)
      : capacity_(ring_capacity_for(min_capacity)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<T[]>(capacity_)) {}

  std::size_t capacity() const { return capacity_; }

  /// Producer side.  False when the ring is full (caller counts the drop).
  bool try_push(const T& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= capacity_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= capacity_) return false;
    }
    slots_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  False when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: pop up to out.size() elements; returns the count.
  std::size_t pop_bulk(std::span<T> out) {
    std::size_t n = 0;
    while (n < out.size() && try_pop(out[n])) ++n;
    return n;
  }

  /// Approximate occupancy (exact for the consumer, racy for observers).
  std::size_t size() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

 private:
  std::size_t capacity_;
  std::size_t mask_;
  std::unique_ptr<T[]> slots_;
  // Consumer-owned index + its cached view of the producer's index.
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> head_{0};
  std::uint64_t cached_tail_ = 0;
  // Producer-owned index + its cached view of the consumer's index.
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t cached_head_ = 0;
};

/// Multi-producer / single-consumer bounded ring (Vyukov cell sequencing).
template <typename T>
class MpscRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "ring slots are raw wrapping storage");

 public:
  explicit MpscRing(std::size_t min_capacity)
      : capacity_(ring_capacity_for(min_capacity)),
        mask_(capacity_ - 1),
        cells_(std::make_unique<Cell[]>(capacity_)) {
    for (std::size_t i = 0; i < capacity_; ++i)
      cells_[i].sequence.store(i, std::memory_order_relaxed);
  }

  std::size_t capacity() const { return capacity_; }

  /// Any-producer side: one CAS claims a cell, one release store publishes
  /// it.  False when the ring is full.
  bool try_push(const T& value) {
    std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.sequence.load(std::memory_order_acquire);
      const std::int64_t diff =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          cell.value = value;
          cell.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS lost: pos was reloaded by compare_exchange, retry.
      } else if (diff < 0) {
        return false;  // consumer has not yet freed this cell: full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer side.  False when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::uint64_t seq = cell.sequence.load(std::memory_order_acquire);
    if (static_cast<std::int64_t>(seq) -
            static_cast<std::int64_t>(pos + 1) < 0)
      return false;
    out = cell.value;
    cell.sequence.store(pos + capacity_, std::memory_order_release);
    dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  std::size_t pop_bulk(std::span<T> out) {
    std::size_t n = 0;
    while (n < out.size() && try_pop(out[n])) ++n;
    return n;
  }

  /// Approximate occupancy (claimed-but-unpublished cells count as full).
  std::size_t size() const {
    const std::uint64_t enq = enqueue_pos_.load(std::memory_order_acquire);
    const std::uint64_t deq = dequeue_pos_.load(std::memory_order_acquire);
    return enq >= deq ? static_cast<std::size_t>(enq - deq) : 0;
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> sequence{0};
    T value{};
  };

  std::size_t capacity_;
  std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> enqueue_pos_{0};
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> dequeue_pos_{0};
};

}  // namespace drlhmd::serve
