#include "serve/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <queue>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace drlhmd::serve {

namespace {

/// One scheduled arrival: min-heap orders by tick.
struct Arrival {
  std::uint64_t tick_ns = 0;
  std::uint32_t host = 0;
  bool operator>(const Arrival& other) const { return tick_ns > other.tick_ns; }
};

/// Sleep coarsely, then yield, until the scheduled tick.  When the producer
/// has fallen behind (tick already past) this returns immediately and the
/// sample goes out back-to-back — the open-loop schedule never slows down
/// because the server (or the producer) is slow.
void wait_until(std::uint64_t tick_ns) {
  for (;;) {
    const std::uint64_t now = now_ns();
    if (now >= tick_ns) return;
    const std::uint64_t ahead = tick_ns - now;
    if (ahead > 200'000) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(ahead - 100'000));
    } else {
      std::this_thread::yield();
    }
  }
}

}  // namespace

LoadPointReport run_open_loop(DetectionServer& server, ml::BatchView rows,
                              const LoadGenConfig& config) {
  if (rows.rows() == 0)
    throw std::invalid_argument("run_open_loop: empty row pool");
  if (rows.cols() != server.feature_width())
    throw std::invalid_argument("run_open_loop: row width mismatch");
  if (server.running())
    throw std::logic_error("run_open_loop: server already running");
  if (!(config.offered_per_sec > 0.0) || !(config.duration_s > 0.0))
    throw std::invalid_argument("run_open_loop: bad rate/duration");

  const std::size_t hosts = server.config().hosts;
  const std::size_t producers = std::max<std::size_t>(
      1, std::min(config.producers, hosts));
  const double per_host_rate =
      config.offered_per_sec / static_cast<double>(hosts);

  // Counters are cumulative registry state: a sweep reuses one server, so
  // every point reports deltas against its entry snapshot.
  const ServeStats base = server.stats();
  server.start();

  const std::uint64_t start_tick = now_ns();
  const std::uint64_t end_tick =
      start_tick + static_cast<std::uint64_t>(config.duration_s * 1e9);

  // ---- collector: the single consumer of every completion queue. -------
  std::atomic<bool> collector_stop{false};
  obs::TailHistogram e2e(obs::default_latency_tail_config());
  std::uint64_t collected = 0;
  std::uint64_t last_verdict_tick = start_tick;
  std::thread collector([&] {
    VerdictRecord record;
    bool final_sweep = false;
    for (;;) {
      // Observe the stop flag *before* sweeping: everything published
      // before the flag was set is caught by this last pass.
      if (collector_stop.load(std::memory_order_acquire)) final_sweep = true;
      bool any = false;
      for (std::uint32_t h = 0; h < hosts; ++h) {
        while (server.try_pop_verdict(h, record)) {
          any = true;
          ++collected;
          if (record.verdict_tick_ns > last_verdict_tick)
            last_verdict_tick = record.verdict_tick_ns;
          e2e.observe(record.verdict_tick_ns >= record.enqueue_tick_ns
                          ? static_cast<double>(record.verdict_tick_ns -
                                                record.enqueue_tick_ns) /
                                1e3
                          : 0.0);
        }
      }
      if (final_sweep) break;
      if (!any)
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  // ---- producers: exponential inter-arrival per host, scheduled ticks. -
  std::vector<std::thread> producer_threads;
  producer_threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    producer_threads.emplace_back([&, p] {
      util::Rng rng(util::splitmix64(config.seed ^ (p + 1)));
      std::vector<double> row(rows.cols());
      std::priority_queue<Arrival, std::vector<Arrival>, std::greater<>> heap;
      for (std::uint32_t h = static_cast<std::uint32_t>(p); h < hosts;
           h += static_cast<std::uint32_t>(producers)) {
        heap.push({start_tick + static_cast<std::uint64_t>(
                                    rng.exponential(per_host_rate) * 1e9),
                   h});
      }
      while (!heap.empty()) {
        Arrival next = heap.top();
        if (next.tick_ns >= end_tick) break;
        heap.pop();
        wait_until(next.tick_ns);
        const std::size_t r = rng.next_below(rows.rows());
        rows.gather_row(r, row);
        // The *scheduled* tick is the latency origin (coordinated-omission
        // safety) — not the instant the push actually happened.
        server.try_enqueue(next.host, row, next.tick_ns);
        next.tick_ns += static_cast<std::uint64_t>(
            rng.exponential(per_host_rate) * 1e9);
        heap.push(next);
      }
    });
  }
  for (auto& t : producer_threads) t.join();

  // ---- drain: every accepted sample gets its verdict (or we time out). -
  const std::uint64_t drain_deadline =
      now_ns() + static_cast<std::uint64_t>(config.drain_timeout_s * 1e9);
  bool drained = false;
  for (;;) {
    const ServeStats cur = server.stats();
    if (cur.scored - base.scored >= cur.enqueued - base.enqueued) {
      drained = true;
      break;
    }
    if (now_ns() >= drain_deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.stop();  // flushes anything still staged, then joins

  collector_stop.store(true, std::memory_order_release);
  collector.join();

  // ---- report. ---------------------------------------------------------
  const ServeStats cur = server.stats();
  LoadPointReport report;
  report.offered_per_sec = config.offered_per_sec;
  report.duration_s = config.duration_s;
  report.enqueued = cur.enqueued - base.enqueued;
  report.dropped = cur.dropped - base.dropped;
  report.attempted = report.enqueued + report.dropped;
  report.delivered = collected;
  report.drained = drained;
  report.wall_s =
      last_verdict_tick > start_tick
          ? static_cast<double>(last_verdict_tick - start_tick) / 1e9
          : config.duration_s;
  report.sustained_per_sec =
      report.wall_s > 0.0
          ? static_cast<double>(report.delivered) / report.wall_s
          : 0.0;
  if (report.attempted != 0) {
    report.drop_rate = static_cast<double>(report.dropped) /
                       static_cast<double>(report.attempted);
    report.delivered_ratio = static_cast<double>(report.delivered) /
                             static_cast<double>(report.attempted);
  }
  report.e2e_us = e2e.snapshot();
  return report;
}

}  // namespace drlhmd::serve
