// Open-loop load generation for DetectionServer (the measurement half of
// detection-as-a-service; DESIGN.md §13).
//
// Each simulated host emits samples as a Poisson process: inter-arrival
// times are exponential draws at rate offered_per_sec / hosts, scheduled on
// a per-producer min-heap of (next_tick, host).  The generator is *open
// loop* — a host's next arrival is scheduled from the previous arrival's
// scheduled tick, never from when the server accepted it — and every sample
// is stamped with its **scheduled** tick, so a sample that queues behind a
// slow flush is charged the full time it would have waited in the real
// world.  That is what makes the recorded tails coordinated-omission-safe:
// a closed-loop recorder stops sampling exactly when the server is slow,
// and its p999 lies.
//
// One collector thread is the single consumer of every per-host completion
// queue; it computes enqueue-tick → verdict-tick latency from the record
// itself into a private (single-writer) TailHistogram, so each load point
// reports its own isolated tail, independent of the server's cumulative
// drlhmd.serve.e2e_us recorder.
#pragma once

#include <cstdint>

#include "ml/feature_matrix.hpp"
#include "obs/tail_histogram.hpp"
#include "serve/server.hpp"

namespace drlhmd::serve {

struct LoadGenConfig {
  double offered_per_sec = 10000.0;  // aggregate arrival rate across hosts
  double duration_s = 1.0;           // producer run time
  std::size_t producers = 1;         // producer threads (hosts partition)
  std::uint64_t seed = 42;           // row choice + inter-arrival draws
  double drain_timeout_s = 30.0;     // max wait for in-flight samples
};

/// One offered-load point of a sweep.
struct LoadPointReport {
  double offered_per_sec = 0.0;   // configured arrival rate
  double duration_s = 0.0;        // configured producer run time
  double wall_s = 0.0;            // first scheduled tick -> last verdict
  std::uint64_t attempted = 0;    // try_enqueue calls (accepted + shed)
  std::uint64_t enqueued = 0;     // accepted into the rings
  std::uint64_t dropped = 0;      // shed at full rings (backpressure)
  std::uint64_t delivered = 0;    // verdicts collected
  double sustained_per_sec = 0.0; // delivered / wall_s
  double drop_rate = 0.0;         // dropped / attempted
  double delivered_ratio = 0.0;   // delivered / attempted
  bool drained = false;           // all accepted samples got verdicts in time
  /// Scheduled-enqueue -> verdict latency (us), isolated to this point.
  obs::TailHistogram::Snapshot e2e_us;
};

/// Drive one offered-load point against the server: start its drain
/// workers, run the producers open-loop over `rows` (each arrival sends a
/// uniformly drawn row) for duration_s, wait for the rings to drain, stop
/// the workers, and report.  The server must be idle (not running, empty
/// completion queues, this thread the only user) on entry; it is returned
/// idle.
LoadPointReport run_open_loop(DetectionServer& server, ml::BatchView rows,
                              const LoadGenConfig& config);

}  // namespace drlhmd::serve
