#include "sim/branch_predictor.hpp"

#include <stdexcept>

namespace drlhmd::sim {
namespace {

std::uint8_t saturate(std::uint8_t counter, bool taken) {
  if (taken) return counter < 3 ? static_cast<std::uint8_t>(counter + 1) : counter;
  return counter > 0 ? static_cast<std::uint8_t>(counter - 1) : counter;
}

}  // namespace

bool BranchPredictor::observe(std::uint64_t pc, bool taken) {
  const bool predicted = predict(pc);
  ++stats_.predictions;
  if (predicted != taken) ++stats_.mispredictions;
  update(pc, taken);
  return predicted == taken;
}

BimodalPredictor::BimodalPredictor(std::size_t table_bits) {
  if (table_bits == 0 || table_bits > 24)
    throw std::invalid_argument("BimodalPredictor: table_bits out of (0, 24]");
  counters_.assign(std::size_t{1} << table_bits, 1);  // weakly not-taken
  mask_ = counters_.size() - 1;
}

bool BimodalPredictor::predict(std::uint64_t pc) const {
  return counters_[index(pc)] >= 2;
}

void BimodalPredictor::update(std::uint64_t pc, bool taken) {
  auto& c = counters_[index(pc)];
  c = saturate(c, taken);
}

GsharePredictor::GsharePredictor(std::size_t table_bits, std::size_t history_bits) {
  if (table_bits == 0 || table_bits > 24)
    throw std::invalid_argument("GsharePredictor: table_bits out of (0, 24]");
  if (history_bits == 0 || history_bits > 32)
    throw std::invalid_argument("GsharePredictor: history_bits out of (0, 32]");
  counters_.assign(std::size_t{1} << table_bits, 1);
  mask_ = counters_.size() - 1;
  history_mask_ = (std::uint64_t{1} << history_bits) - 1;
}

bool GsharePredictor::predict(std::uint64_t pc) const {
  return counters_[index(pc)] >= 2;
}

void GsharePredictor::update(std::uint64_t pc, bool taken) {
  auto& c = counters_[index(pc)];
  c = saturate(c, taken);
  history_ = ((history_ << 1) | (taken ? 1u : 0u)) & history_mask_;
}

std::unique_ptr<BranchPredictor> make_bimodal(std::size_t table_bits) {
  return std::make_unique<BimodalPredictor>(table_bits);
}

std::unique_ptr<BranchPredictor> make_gshare(std::size_t table_bits,
                                             std::size_t history_bits) {
  return std::make_unique<GsharePredictor>(table_bits, history_bits);
}

}  // namespace drlhmd::sim
