// perf-style sampling monitor.
//
// The paper samples HPCs every 10 ms with Linux `perf`.  Here a sampling
// window is a fixed cycle budget (window_cycles ~ 10 ms at the nominal
// clock); each sample is the vector of per-window event deltas.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/core.hpp"
#include "sim/events.hpp"
#include "util/rng.hpp"

namespace drlhmd::sim {

/// One sampling window worth of counter deltas.
struct HpcSample {
  std::vector<double> values;  // one per HpcEvent, in enum order
};

struct PerfMonitorConfig {
  std::uint64_t window_cycles = 500'000;  // "10 ms" at the nominal clock
  std::uint64_t warmup_cycles = 250'000;  // discard cold-cache transient

  /// perf event multiplexing: with more events than hardware counters the
  /// kernel time-slices them and scales the counts, which adds
  /// multiplicative estimation noise.  `pmu_counters` = simultaneously
  /// countable events (0 disables the model); 37 events over 8 PMCs means
  /// each event is observed ~8/37 of the window.
  std::uint32_t pmu_counters = 0;
  double multiplex_noise = 0.02;  // per-sqrt(groups-1) relative sigma
  std::uint64_t noise_seed = 0xA11CE;
};

/// Drives a Core and snapshots counter deltas per window.
class PerfMonitor {
 public:
  PerfMonitor(Core& core, const PerfMonitorConfig& config);

  /// Run the warm-up budget (no sample emitted).  Idempotent per call site:
  /// simply executes more cycles.
  void warm_up();

  /// Run one window and return its counter deltas.
  HpcSample sample_window();

  /// Collect n consecutive windows.
  std::vector<HpcSample> collect(std::size_t n);

  static std::vector<std::string> feature_names();

 private:
  Core& core_;
  PerfMonitorConfig config_;
  EventCounts last_snapshot_;
  util::Rng noise_rng_;
};

}  // namespace drlhmd::sim
