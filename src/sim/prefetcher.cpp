#include "sim/prefetcher.hpp"

#include <bit>
#include <stdexcept>

namespace drlhmd::sim {

NextLinePrefetcher::NextLinePrefetcher(std::uint32_t line_bytes, std::uint32_t degree)
    : line_bytes_(line_bytes), degree_(degree) {
  if (line_bytes == 0 || !std::has_single_bit(static_cast<std::uint64_t>(line_bytes)))
    throw std::invalid_argument("NextLinePrefetcher: bad line size");
  if (degree == 0 || degree > 16)
    throw std::invalid_argument("NextLinePrefetcher: degree out of (0,16]");
}

std::vector<std::uint64_t> NextLinePrefetcher::observe(std::uint64_t addr) {
  std::vector<std::uint64_t> out;
  out.reserve(degree_);
  const std::uint64_t line = addr & ~static_cast<std::uint64_t>(line_bytes_ - 1);
  for (std::uint32_t d = 1; d <= degree_; ++d)
    out.push_back(line + static_cast<std::uint64_t>(d) * line_bytes_);
  record(out.size());
  return out;
}

StridePrefetcher::StridePrefetcher(std::uint32_t table_entries, std::uint32_t degree,
                                   std::uint32_t line_bytes)
    : table_(table_entries), degree_(degree), line_bytes_(line_bytes) {
  if (table_entries == 0)
    throw std::invalid_argument("StridePrefetcher: empty table");
  if (degree == 0 || degree > 16)
    throw std::invalid_argument("StridePrefetcher: degree out of (0,16]");
  if (line_bytes == 0 || !std::has_single_bit(static_cast<std::uint64_t>(line_bytes)))
    throw std::invalid_argument("StridePrefetcher: bad line size");
}

std::size_t StridePrefetcher::index_of(std::uint64_t addr) const {
  // Streams are distinguished by their 1 MiB region: the workload model
  // allocates logically distinct buffers in distinct regions.
  const std::uint64_t region = addr >> 20;
  return static_cast<std::size_t>((region * 0x9E3779B97F4A7C15ull) >> 32) %
         table_.size();
}

std::vector<std::uint64_t> StridePrefetcher::observe(std::uint64_t addr) {
  Entry& entry = table_[index_of(addr)];
  const std::uint64_t tag = addr >> 20;
  std::vector<std::uint64_t> out;

  if (!entry.valid || entry.tag != tag) {
    entry = Entry{.tag = tag, .last_addr = addr, .stride = 0, .confidence = 0,
                  .valid = true};
    record(0);
    return out;
  }

  const std::int64_t stride =
      static_cast<std::int64_t>(addr) - static_cast<std::int64_t>(entry.last_addr);
  if (stride == entry.stride && stride != 0) {
    if (entry.confidence < 3) ++entry.confidence;
  } else {
    entry.stride = stride;
    entry.confidence = entry.confidence > 0 ? static_cast<std::uint8_t>(entry.confidence - 1) : 0;
  }
  entry.last_addr = addr;

  // Reference-prediction-table style: allocate -> transient (stride
  // recorded) -> steady (stride repeated once) -> prefetch.
  if (entry.confidence >= 1 && entry.stride != 0) {
    out.reserve(degree_);
    std::int64_t next = static_cast<std::int64_t>(addr);
    for (std::uint32_t d = 0; d < degree_; ++d) {
      next += entry.stride;
      if (next < 0) break;
      out.push_back(static_cast<std::uint64_t>(next));
    }
  }
  record(out.size());
  return out;
}

}  // namespace drlhmd::sim
