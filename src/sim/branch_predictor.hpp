// Dynamic branch predictors: bimodal (per-PC 2-bit counters) and gshare
// (global-history XOR PC indexing).  Used by the in-order core to produce
// the `branches` / `branch-misses` HPC events.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace drlhmd::sim {

struct BranchStats {
  std::uint64_t predictions = 0;
  std::uint64_t mispredictions = 0;

  double misprediction_rate() const {
    return predictions == 0
               ? 0.0
               : static_cast<double>(mispredictions) / static_cast<double>(predictions);
  }
};

/// Common predictor interface: predict, then update with the real outcome.
class BranchPredictor {
 public:
  virtual ~BranchPredictor() = default;

  /// Predicted direction for the branch at `pc`.
  virtual bool predict(std::uint64_t pc) const = 0;

  /// Learn the actual outcome; records a misprediction when the prior
  /// prediction disagreed. Returns whether the prediction was correct.
  bool observe(std::uint64_t pc, bool taken);

  const BranchStats& stats() const { return stats_; }
  void reset_stats() { stats_ = BranchStats{}; }

 protected:
  virtual void update(std::uint64_t pc, bool taken) = 0;

 private:
  BranchStats stats_;
};

/// Table of 2-bit saturating counters indexed by PC bits.
class BimodalPredictor final : public BranchPredictor {
 public:
  explicit BimodalPredictor(std::size_t table_bits = 12);

  bool predict(std::uint64_t pc) const override;

 protected:
  void update(std::uint64_t pc, bool taken) override;

 private:
  std::size_t index(std::uint64_t pc) const { return (pc >> 2) & mask_; }

  std::vector<std::uint8_t> counters_;  // 0..3, taken when >= 2
  std::size_t mask_;
};

/// gshare: counters indexed by (PC >> 2) XOR global history.
class GsharePredictor final : public BranchPredictor {
 public:
  explicit GsharePredictor(std::size_t table_bits = 14, std::size_t history_bits = 12);

  bool predict(std::uint64_t pc) const override;

 protected:
  void update(std::uint64_t pc, bool taken) override;

 private:
  std::size_t index(std::uint64_t pc) const {
    return ((pc >> 2) ^ history_) & mask_;
  }

  std::vector<std::uint8_t> counters_;
  std::size_t mask_;
  std::uint64_t history_ = 0;
  std::uint64_t history_mask_;
};

std::unique_ptr<BranchPredictor> make_bimodal(std::size_t table_bits = 12);
std::unique_ptr<BranchPredictor> make_gshare(std::size_t table_bits = 14,
                                             std::size_t history_bits = 12);

}  // namespace drlhmd::sim
