#include "sim/tlb.hpp"

#include <stdexcept>

namespace drlhmd::sim {
namespace {

CacheConfig to_cache_config(const TlbConfig& t) {
  if (t.entries == 0 || t.associativity == 0 || t.page_bytes == 0)
    throw std::invalid_argument(t.name + ": zero TLB parameter");
  if (t.entries % t.associativity != 0)
    throw std::invalid_argument(t.name + ": entries not divisible by ways");
  CacheConfig c;
  c.name = t.name;
  c.line_bytes = t.page_bytes;
  c.associativity = t.associativity;
  c.size_bytes = static_cast<std::uint64_t>(t.entries) * t.page_bytes;
  c.policy = ReplacementPolicy::kLru;
  return c;
}

}  // namespace

Tlb::Tlb(const TlbConfig& config) : config_(config), cache_(to_cache_config(config)) {}

}  // namespace drlhmd::sim
