// Synthetic application models.
//
// The paper's corpus is >3,000 real benign programs plus VirusShare/
// VirusTotal malware executed under Linux `perf`.  We cannot ship malware;
// instead each application is a stochastic micro-op generator whose
// parameters (working-set size, stride mix, branch entropy, phase structure)
// encode the published microarchitectural signatures of each program family.
// The timing core executes these micro-ops against the cache/branch/TLB
// models, so HPC features emerge from simulated microarchitecture rather
// than from sampled distributions.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace drlhmd::sim {

enum class OpKind : std::uint8_t { kAlu, kLoad, kStore, kBranch };

/// One dynamic micro-operation produced by a workload.
struct MicroOp {
  OpKind kind = OpKind::kAlu;
  std::uint64_t addr = 0;        // effective address for kLoad/kStore
  std::uint32_t branch_site = 0; // stable branch identity for kBranch
  bool taken = false;            // branch outcome for kBranch
  std::int32_t jump_bytes = 0;   // fetch-stream displacement when taken
};

/// One execution phase of a program (e.g. ransomware: sweep-read ->
/// encrypt -> write-back).  All fractions are of total micro-ops; the
/// remainder is ALU work.
struct PhaseSpec {
  std::string name = "phase";
  double weight = 1.0;             // relative likelihood of entering the phase
  std::uint64_t mean_ops = 20000;  // geometric mean phase length in micro-ops

  double load_frac = 0.25;
  double store_frac = 0.10;
  double branch_frac = 0.15;

  // Memory-pattern parameters.
  double sequential_frac = 0.5;    // of memory ops: streaming vs random
  std::uint32_t stride_bytes = 64; // streaming stride
  std::uint64_t stream_bytes = 8ull << 20;  // streaming region extent (wraps)
  std::uint64_t working_set_bytes = 1ull << 20;  // random-access region
  double hot_frac = 0.0;           // of random ops: hit the hot subset
  std::uint64_t hot_bytes = 64ull << 10;
  bool pointer_chase = false;      // random ops become dependent chains

  // Control-flow parameters.
  std::uint32_t branch_sites = 256;
  double taken_bias = 0.6;         // average P(taken)
  double branch_entropy = 0.2;     // fraction of sites with ~coin-flip outcome
  std::int32_t jump_span_bytes = 4096;  // taken-branch fetch displacement span
};

/// A complete synthetic application.
struct WorkloadSpec {
  std::string name = "app";
  std::string family = "unknown";
  bool malware = false;
  std::uint64_t code_footprint_bytes = 128ull << 10;
  std::vector<PhaseSpec> phases;

  /// Throws std::invalid_argument on inconsistent fractions or empty phases.
  void validate() const;
};

/// Stateful generator executing a WorkloadSpec: tracks the current phase,
/// stream cursor, pointer-chase cursor, and per-site branch biases.
class Workload {
 public:
  Workload(WorkloadSpec spec, std::uint64_t seed);

  /// Produce the next dynamic micro-op.
  MicroOp next();

  const WorkloadSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }
  bool is_malware() const { return spec_.malware; }
  const std::string& family() const { return spec_.family; }
  std::size_t current_phase_index() const { return phase_index_; }

 private:
  struct PhaseState {
    std::vector<double> site_taken_prob;
    std::uint64_t stream_cursor = 0;
    std::uint64_t chase_cursor = 0;
  };

  void enter_phase(std::size_t index);
  std::uint64_t gen_data_address(const PhaseSpec& phase, PhaseState& st, bool sequential);

  WorkloadSpec spec_;
  util::Rng rng_;
  std::vector<PhaseState> phase_states_;
  std::vector<double> phase_weights_;
  std::size_t phase_index_ = 0;
  std::uint64_t ops_left_in_phase_ = 0;

  // Region bases: disjoint so streaming/random/hot traffic maps to different
  // cache sets and pages, as it would for distinct allocations.
  static constexpr std::uint64_t kStreamBase = 0x1000'0000ull;
  static constexpr std::uint64_t kHeapBase = 0x4000'0000ull;
  static constexpr std::uint64_t kHotBase = 0x7000'0000ull;
};

}  // namespace drlhmd::sim
