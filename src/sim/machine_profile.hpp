// Fleet machine-profile registry.
//
// A fleet-scale corpus build runs the same application population across a
// set of heterogeneous machines so the detector sees counter distributions
// from more than one microarchitecture.  Each MachineProfile bundles a
// complete HierarchyConfig + CoreConfig variant (cache geometry, replacement
// policy, TLB reach, prefetcher, branch predictor, latency profile) under a
// stable string id that is stamped into every shard it produces, so a
// trained model's provenance — which machines contributed which rows — is
// recoverable from the shard headers alone.
#pragma once

#include <string>
#include <vector>

#include "sim/core.hpp"
#include "sim/memory_hierarchy.hpp"

namespace drlhmd::sim {

struct MachineProfile {
  std::string id;           // stable key, stamped into shard headers
  std::string description;  // one-line human summary
  HierarchyConfig hierarchy;
  CoreConfig core;
};

/// The built-in registry, in a fixed order (shard s of a fleet build uses
/// profile s % n unless FleetConfig restricts the set).  Ids are stable
/// across releases: shard files reference them by name.
const std::vector<MachineProfile>& machine_profiles();

/// Lookup by id; throws std::invalid_argument (listing the known ids) when
/// the id is not in the registry.
const MachineProfile& machine_profile(const std::string& id);

}  // namespace drlhmd::sim
