// Corpus construction: instantiate applications across program families,
// run each on a cold core, and collect labeled per-window HPC samples.
// This is the stand-in for the paper's perf-scripted data acquisition over
// >3,000 benign/malware applications.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "sim/core.hpp"
#include "sim/perf_monitor.hpp"
#include "sim/workload_profiles.hpp"
#include "util/csv.hpp"

namespace drlhmd::sim {

struct CorpusConfig {
  std::size_t benign_apps = 300;
  std::size_t malware_apps = 300;
  std::size_t windows_per_app = 5;
  PerfMonitorConfig monitor{};
  HierarchyConfig hierarchy{};
  CoreConfig core{};
  std::uint64_t seed = 42;
};

/// One labeled HPC observation.
struct HpcRecord {
  std::string app;
  std::string family;
  bool malware = false;
  std::vector<double> features;  // per HpcEvent, enum order
};

struct HpcCorpus {
  std::vector<std::string> feature_names;
  std::vector<HpcRecord> records;

  std::size_t num_malware() const;
  std::size_t num_benign() const;
};

/// Build the full labeled corpus. Deterministic in `config.seed`.
HpcCorpus build_corpus(const CorpusConfig& config);

/// Labeled columnar dataset over all HPC events (label 1 = malware).  The
/// entry point into the ml data plane: rows land in contiguous column-major
/// FeatureMatrix storage with a single up-front reservation, so everything
/// downstream (selection, scaling, training, attacks, runtime) can run on
/// zero-copy BatchViews.
ml::Dataset corpus_to_dataset(const HpcCorpus& corpus);

/// Export/import CSV (one row per record: app, family, label, features...).
util::CsvDocument corpus_to_csv(const HpcCorpus& corpus);
HpcCorpus corpus_from_csv(const util::CsvDocument& doc);

/// Exact binary round trip of a corpus (counter values preserved
/// bit-for-bit, unlike the CSV path).  Used for checkpoint artifacts.
std::vector<std::uint8_t> serialize_corpus(const HpcCorpus& corpus);
HpcCorpus deserialize_corpus(std::span<const std::uint8_t> bytes);

}  // namespace drlhmd::sim
