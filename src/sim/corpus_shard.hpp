// Fleet-scale sharded corpus builds.
//
// build_corpus holds one in-RAM corpus from one simulated machine; a fleet
// build instead partitions the application population across N shards, runs
// each shard on a (possibly different) MachineProfile, and writes every
// shard straight to a memory-mappable DSH1 file (ml/sharded_dataset.hpp).
// The corpus therefore never has to fit in RAM — training and feature
// selection stream the shard directory through ml::ShardedDataset.
//
// Determinism and resume:
//   * Shard s draws all of its workload specs and seeds from a dedicated
//     counter-seeded rng stream (util::chunk_rng(seed, s)), so a shard's
//     bytes depend only on (CorpusConfig, FleetConfig, s) — never on thread
//     count, build order, or which other shards were built in the same run.
//   * Finished shards are checkpointed into an ArtifactStore under
//     <out_dir>/state; an interrupted build resumes per-shard, skipping any
//     shard whose completion marker AND on-disk CRC both check out.
//   * The store also pins a build fingerprint (config + fleet layout); a
//     resume with different parameters is refused rather than silently
//     mixing incompatible shards.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/dataset_builder.hpp"
#include "sim/machine_profile.hpp"

namespace drlhmd::sim {

struct FleetConfig {
  /// Number of shards the application population is partitioned into.
  std::size_t shards = 4;
  /// Machine-profile ids, assigned round-robin (shard s uses
  /// profiles[s % size]).  Empty = the full machine_profiles() registry.
  std::vector<std::string> profiles;
  /// Shard directory; created if missing.  Holds shard-NNNN.dsh files plus
  /// a state/ artifact store for resume bookkeeping.
  std::string out_dir;
  /// Build at most this many *new* shards this invocation (0 = no limit).
  /// Lets tests and operators simulate an interrupted fleet: run with a
  /// limit, then run again without one to resume.
  std::size_t limit_shards = 0;
};

struct ShardBuildStats {
  std::size_t shards_total = 0;
  std::size_t shards_built = 0;    // newly simulated this invocation
  std::size_t shards_resumed = 0;  // found complete on disk and kept
  std::size_t rows = 0;            // valid rows on disk after this call
  double build_seconds = 0.0;      // wall time spent in this call
  std::map<std::string, std::size_t> rows_per_profile;
  bool complete = false;  // every shard present with a valid CRC
};

/// Partition sizes: shard s of a fleet build owns `shard_app_count(total,
/// shards, s)` of the `total` applications (remainder spread over the
/// leading shards), with globally contiguous app ids.
std::size_t shard_app_count(std::size_t total, std::size_t shards, std::size_t s);

/// Build (or resume) a sharded corpus under fleet.out_dir.  Deterministic
/// per shard in (config, fleet, shard index); see the header comment.
/// Throws std::invalid_argument on bad config and std::runtime_error when
/// out_dir holds shards built with different parameters.
ShardBuildStats build_corpus_sharded(const CorpusConfig& config,
                                     const FleetConfig& fleet);

}  // namespace drlhmd::sim
