#include "sim/workload_profiles.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace drlhmd::sim {
namespace {

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * 1024;

PhaseSpec phase(std::string name, double weight, std::uint64_t mean_ops) {
  PhaseSpec p;
  p.name = std::move(name);
  p.weight = weight;
  p.mean_ops = mean_ops;
  return p;
}

}  // namespace

std::string family_name(ProgramFamily family) {
  switch (family) {
    case ProgramFamily::kWebServer: return "web-server";
    case ProgramFamily::kDatabase: return "database";
    case ProgramFamily::kCompression: return "compression";
    case ProgramFamily::kMediaCodec: return "media-codec";
    case ProgramFamily::kScientific: return "scientific";
    case ProgramFamily::kInteractive: return "interactive";
    case ProgramFamily::kRansomware: return "ransomware";
    case ProgramFamily::kWorm: return "worm";
    case ProgramFamily::kBotnet: return "botnet";
    case ProgramFamily::kVirus: return "virus";
    case ProgramFamily::kSpyware: return "spyware";
    case ProgramFamily::kRootkit: return "rootkit";
    case ProgramFamily::kCryptominer: return "cryptominer";
    case ProgramFamily::kCount: break;
  }
  throw std::out_of_range("family_name: bad family");
}

bool family_is_malware(ProgramFamily family) {
  return static_cast<std::size_t>(family) >= kNumBenignFamilies &&
         static_cast<std::size_t>(family) < kNumProgramFamilies;
}

std::vector<ProgramFamily> benign_families() {
  std::vector<ProgramFamily> v;
  for (std::size_t i = 0; i < kNumBenignFamilies; ++i)
    v.push_back(static_cast<ProgramFamily>(i));
  return v;
}

std::vector<ProgramFamily> malware_families() {
  std::vector<ProgramFamily> v;
  for (std::size_t i = kNumBenignFamilies; i < kNumProgramFamilies; ++i)
    v.push_back(static_cast<ProgramFamily>(i));
  return v;
}

// Working-set placement relative to the (scaled) hierarchy bands:
//   fits-L2      < 128 KiB   -> little LLC traffic
//   LLC-resident 128K..1 MiB -> LLC loads that mostly HIT
//   beyond LLC   > 1 MiB     -> LLC loads that mostly MISS
// Malware families are skewed toward extreme LLC behaviour (sweeping
// streams, giant sparse probes, LLC-resident scratchpads), which is exactly
// the published HMD signal; benign families cover the middle ground so the
// classes overlap realistically.
WorkloadSpec family_template(ProgramFamily family) {
  WorkloadSpec spec;
  spec.family = family_name(family);
  spec.malware = family_is_malware(family);
  spec.name = spec.family;

  switch (family) {
    case ProgramFamily::kWebServer: {
      spec.code_footprint_bytes = 128 * KiB;
      PhaseSpec serve = phase("serve", 3.0, 30000);
      serve.load_frac = 0.30; serve.store_frac = 0.08; serve.branch_frac = 0.15;
      serve.sequential_frac = 0.25; serve.stream_bytes = 96 * KiB;
      serve.working_set_bytes = 96 * KiB; serve.hot_frac = 0.35; serve.hot_bytes = 24 * KiB;
      serve.branch_sites = 1024; serve.taken_bias = 0.62; serve.branch_entropy = 0.30;
      serve.jump_span_bytes = 16384;
      PhaseSpec parse = phase("parse", 1.0, 12000);
      parse.load_frac = 0.33; parse.store_frac = 0.12; parse.branch_frac = 0.20;
      parse.sequential_frac = 0.7; parse.stride_bytes = 16; parse.stream_bytes = 48 * KiB;
      parse.working_set_bytes = 64 * KiB;
      parse.branch_sites = 512; parse.taken_bias = 0.55; parse.branch_entropy = 0.40;
      spec.phases = {serve, parse};
      break;
    }
    case ProgramFamily::kDatabase: {
      spec.code_footprint_bytes = 256 * KiB;
      PhaseSpec lookup = phase("lookup", 3.0, 25000);
      lookup.load_frac = 0.34; lookup.store_frac = 0.06; lookup.branch_frac = 0.15;
      lookup.sequential_frac = 0.10; lookup.working_set_bytes = 2304 * KiB;
      lookup.hot_frac = 0.58; lookup.hot_bytes = 48 * KiB; lookup.pointer_chase = true;
      lookup.branch_sites = 768; lookup.taken_bias = 0.58; lookup.branch_entropy = 0.35;
      PhaseSpec scan = phase("scan", 0.6, 40000);
      scan.load_frac = 0.40; scan.store_frac = 0.04; scan.branch_frac = 0.13;
      scan.sequential_frac = 0.92; scan.stride_bytes = 64; scan.stream_bytes = 4 * MiB;
      scan.working_set_bytes = 1 * MiB;
      scan.branch_sites = 128; scan.taken_bias = 0.90; scan.branch_entropy = 0.05;
      spec.phases = {lookup, scan};
      break;
    }
    case ProgramFamily::kCompression: {
      spec.code_footprint_bytes = 32 * KiB;
      PhaseSpec pack = phase("pack", 1.0, 50000);
      pack.load_frac = 0.32; pack.store_frac = 0.14; pack.branch_frac = 0.15;
      pack.sequential_frac = 0.80; pack.stride_bytes = 16; pack.stream_bytes = 96 * KiB;
      pack.working_set_bytes = 80 * KiB; pack.hot_frac = 0.45; pack.hot_bytes = 32 * KiB;
      pack.branch_sites = 256; pack.taken_bias = 0.70; pack.branch_entropy = 0.25;
      spec.phases = {pack};
      break;
    }
    case ProgramFamily::kMediaCodec: {
      spec.code_footprint_bytes = 64 * KiB;
      PhaseSpec decode = phase("decode", 3.0, 35000);
      decode.load_frac = 0.30; decode.store_frac = 0.12; decode.branch_frac = 0.12;
      decode.sequential_frac = 0.88; decode.stride_bytes = 16;
      decode.stream_bytes = 112 * KiB; decode.working_set_bytes = 64 * KiB;
      decode.branch_sites = 128; decode.taken_bias = 0.85; decode.branch_entropy = 0.08;
      PhaseSpec filter = phase("filter", 1.0, 20000);
      filter.load_frac = 0.27; filter.store_frac = 0.10; filter.branch_frac = 0.08;
      filter.sequential_frac = 0.95; filter.stride_bytes = 8; filter.stream_bytes = 96 * KiB;
      filter.working_set_bytes = 48 * KiB;
      filter.branch_sites = 64; filter.taken_bias = 0.92; filter.branch_entropy = 0.03;
      spec.phases = {decode, filter};
      break;
    }
    case ProgramFamily::kScientific: {
      spec.code_footprint_bytes = 24 * KiB;
      PhaseSpec stencil = phase("stencil", 1.0, 60000);
      stencil.load_frac = 0.33; stencil.store_frac = 0.12; stencil.branch_frac = 0.12;
      stencil.sequential_frac = 0.75; stencil.stride_bytes = 8;
      stencil.stream_bytes = 512 * KiB; stencil.working_set_bytes = 256 * KiB;
      stencil.branch_sites = 64; stencil.taken_bias = 0.95; stencil.branch_entropy = 0.02;
      spec.phases = {stencil};
      break;
    }
    case ProgramFamily::kInteractive: {
      spec.code_footprint_bytes = 192 * KiB;
      PhaseSpec idle = phase("idle", 2.0, 15000);
      idle.load_frac = 0.24; idle.store_frac = 0.06; idle.branch_frac = 0.15;
      idle.sequential_frac = 0.30; idle.stream_bytes = 64 * KiB;
      idle.working_set_bytes = 64 * KiB; idle.hot_frac = 0.5; idle.hot_bytes = 16 * KiB;
      idle.branch_sites = 2048; idle.taken_bias = 0.55; idle.branch_entropy = 0.45;
      idle.jump_span_bytes = 32768;
      PhaseSpec burst = phase("event-burst", 1.0, 8000);
      burst.load_frac = 0.30; burst.store_frac = 0.12; burst.branch_frac = 0.18;
      burst.sequential_frac = 0.40; burst.stream_bytes = 96 * KiB;
      burst.working_set_bytes = 112 * KiB;
      burst.branch_sites = 1024; burst.taken_bias = 0.60; burst.branch_entropy = 0.35;
      spec.phases = {idle, burst};
      break;
    }

    case ProgramFamily::kRansomware: {
      spec.code_footprint_bytes = 48 * KiB;
      PhaseSpec sweep = phase("sweep-read", 1.2, 30000);
      sweep.load_frac = 0.45; sweep.store_frac = 0.05; sweep.branch_frac = 0.13;
      sweep.sequential_frac = 0.95; sweep.stride_bytes = 64; sweep.stream_bytes = 24 * MiB;
      sweep.working_set_bytes = 256 * KiB;
      sweep.branch_sites = 96; sweep.taken_bias = 0.9; sweep.branch_entropy = 0.05;
      PhaseSpec encrypt = phase("encrypt", 1.0, 20000);
      encrypt.load_frac = 0.24; encrypt.store_frac = 0.10; encrypt.branch_frac = 0.13;
      encrypt.sequential_frac = 0.35; encrypt.stream_bytes = 384 * KiB;
      encrypt.working_set_bytes = 320 * KiB; encrypt.hot_frac = 0.6; encrypt.hot_bytes = 16 * KiB;
      encrypt.branch_sites = 64; encrypt.taken_bias = 0.93; encrypt.branch_entropy = 0.03;
      PhaseSpec writeback = phase("write-back", 1.0, 25000);
      writeback.load_frac = 0.12; writeback.store_frac = 0.45; writeback.branch_frac = 0.12;
      writeback.sequential_frac = 0.95; writeback.stride_bytes = 64;
      writeback.stream_bytes = 24 * MiB; writeback.working_set_bytes = 128 * KiB;
      writeback.branch_sites = 96; writeback.taken_bias = 0.9; writeback.branch_entropy = 0.05;
      spec.phases = {sweep, encrypt, writeback};
      break;
    }
    case ProgramFamily::kWorm: {
      spec.code_footprint_bytes = 64 * KiB;
      PhaseSpec probe = phase("probe", 2.0, 18000);
      probe.load_frac = 0.32; probe.store_frac = 0.10; probe.branch_frac = 0.15;
      probe.sequential_frac = 0.08; probe.working_set_bytes = 12 * MiB;
      probe.branch_sites = 1536; probe.taken_bias = 0.52; probe.branch_entropy = 0.55;
      probe.jump_span_bytes = 24576;
      PhaseSpec replicate = phase("replicate", 1.0, 14000);
      replicate.load_frac = 0.30; replicate.store_frac = 0.26; replicate.branch_frac = 0.12;
      replicate.sequential_frac = 0.85; replicate.stride_bytes = 64;
      replicate.stream_bytes = 4 * MiB; replicate.working_set_bytes = 512 * KiB;
      replicate.branch_sites = 256; replicate.taken_bias = 0.8; replicate.branch_entropy = 0.15;
      spec.phases = {probe, replicate};
      break;
    }
    case ProgramFamily::kBotnet: {
      spec.code_footprint_bytes = 96 * KiB;
      PhaseSpec dormant = phase("dormant", 2.2, 18000);
      dormant.load_frac = 0.26; dormant.store_frac = 0.06; dormant.branch_frac = 0.14;
      dormant.sequential_frac = 0.2; dormant.stream_bytes = 192 * KiB;
      dormant.working_set_bytes = 512 * KiB; dormant.hot_frac = 0.35; dormant.hot_bytes = 16 * KiB;
      dormant.branch_sites = 1024; dormant.taken_bias = 0.6; dormant.branch_entropy = 0.40;
      PhaseSpec beacon = phase("beacon", 1.8, 11000);
      beacon.load_frac = 0.32; beacon.store_frac = 0.15; beacon.branch_frac = 0.15;
      beacon.sequential_frac = 0.30; beacon.stream_bytes = 512 * KiB;
      beacon.working_set_bytes = 6 * MiB;
      beacon.branch_sites = 512; beacon.taken_bias = 0.55; beacon.branch_entropy = 0.45;
      spec.phases = {dormant, beacon};
      break;
    }
    case ProgramFamily::kVirus: {
      spec.code_footprint_bytes = 128 * KiB;
      PhaseSpec hunt = phase("hunt", 1.5, 16000);
      hunt.load_frac = 0.34; hunt.store_frac = 0.06; hunt.branch_frac = 0.14;
      hunt.sequential_frac = 0.55; hunt.stride_bytes = 64; hunt.stream_bytes = 5 * MiB;
      hunt.working_set_bytes = 3 * MiB;
      hunt.branch_sites = 768; hunt.taken_bias = 0.6; hunt.branch_entropy = 0.35;
      PhaseSpec infect = phase("infect", 1.0, 12000);
      infect.load_frac = 0.26; infect.store_frac = 0.22; infect.branch_frac = 0.13;
      infect.sequential_frac = 0.65; infect.stride_bytes = 32; infect.stream_bytes = 2 * MiB;
      infect.working_set_bytes = 768 * KiB;
      infect.branch_sites = 384; infect.taken_bias = 0.7; infect.branch_entropy = 0.25;
      spec.phases = {hunt, infect};
      break;
    }
    case ProgramFamily::kSpyware: {
      spec.code_footprint_bytes = 112 * KiB;
      PhaseSpec poll = phase("poll", 3.0, 22000);
      poll.load_frac = 0.28; poll.store_frac = 0.06; poll.branch_frac = 0.15;
      poll.sequential_frac = 0.25; poll.stream_bytes = 256 * KiB;
      poll.working_set_bytes = 640 * KiB; poll.hot_frac = 0.30; poll.hot_bytes = 24 * KiB;
      poll.branch_sites = 1280; poll.taken_bias = 0.58; poll.branch_entropy = 0.38;
      PhaseSpec exfil = phase("exfiltrate", 1.6, 12000);
      exfil.load_frac = 0.30; exfil.store_frac = 0.20; exfil.branch_frac = 0.11;
      exfil.sequential_frac = 0.88; exfil.stride_bytes = 64; exfil.stream_bytes = 8 * MiB;
      exfil.working_set_bytes = 256 * KiB;
      exfil.branch_sites = 192; exfil.taken_bias = 0.82; exfil.branch_entropy = 0.12;
      spec.phases = {poll, exfil};
      break;
    }
    case ProgramFamily::kRootkit: {
      spec.code_footprint_bytes = 384 * KiB;
      PhaseSpec hook = phase("hook-walk", 1.0, 20000);
      hook.load_frac = 0.34; hook.store_frac = 0.08; hook.branch_frac = 0.16;
      hook.sequential_frac = 0.12; hook.working_set_bytes = 1792 * KiB;
      hook.pointer_chase = true;
      hook.branch_sites = 1024; hook.taken_bias = 0.56; hook.branch_entropy = 0.40;
      hook.jump_span_bytes = 65536;
      PhaseSpec conceal = phase("conceal", 1.0, 15000);
      conceal.load_frac = 0.30; conceal.store_frac = 0.12; conceal.branch_frac = 0.15;
      conceal.sequential_frac = 0.35; conceal.stream_bytes = 256 * KiB;
      conceal.working_set_bytes = 1280 * KiB;
      conceal.branch_sites = 640; conceal.taken_bias = 0.6; conceal.branch_entropy = 0.30;
      spec.phases = {hook, conceal};
      break;
    }
    case ProgramFamily::kCryptominer: {
      spec.code_footprint_bytes = 16 * KiB;
      PhaseSpec hash = phase("hash", 1.0, 80000);
      hash.load_frac = 0.42; hash.store_frac = 0.14; hash.branch_frac = 0.11;
      hash.sequential_frac = 0.10; hash.working_set_bytes = 1280 * KiB;
      hash.branch_sites = 48; hash.taken_bias = 0.96; hash.branch_entropy = 0.02;
      spec.phases = {hash};
      break;
    }
    case ProgramFamily::kCount:
      throw std::out_of_range("family_template: bad family");
  }
  spec.validate();
  return spec;
}

namespace {

double jitter_frac(double value, util::Rng& rng, double rel = 0.18) {
  return std::clamp(value * rng.uniform(1.0 - rel, 1.0 + rel), 0.0, 0.95);
}

std::uint64_t jitter_size(std::uint64_t value, util::Rng& rng, double sigma = 0.18) {
  const double scaled = static_cast<double>(value) * rng.lognormal(0.0, sigma);
  return std::max<std::uint64_t>(64, static_cast<std::uint64_t>(scaled));
}

}  // namespace

WorkloadSpec make_application(ProgramFamily family, std::uint32_t app_id,
                              util::Rng& rng) {
  WorkloadSpec spec = family_template(family);
  spec.name = spec.family + "-" + std::to_string(app_id);
  spec.code_footprint_bytes = jitter_size(spec.code_footprint_bytes, rng, 0.25);

  for (auto& p : spec.phases) {
    p.weight *= rng.uniform(0.7, 1.4);
    p.mean_ops = std::max<std::uint64_t>(
        500, static_cast<std::uint64_t>(static_cast<double>(p.mean_ops) *
                                        rng.uniform(0.7, 1.4)));
    // Keep the op-mix sum below 1 after jitter.
    for (int attempt = 0; attempt < 8; ++attempt) {
      const double lf = jitter_frac(p.load_frac, rng, 0.25);
      const double sf = jitter_frac(p.store_frac, rng, 0.25);
      const double bf = jitter_frac(p.branch_frac, rng, 0.35);
      if (lf + sf + bf < 0.97) {
        p.load_frac = lf;
        p.store_frac = sf;
        p.branch_frac = bf;
        break;
      }
    }
    p.sequential_frac = jitter_frac(p.sequential_frac, rng, 0.12);
    p.hot_frac = jitter_frac(p.hot_frac, rng, 0.15);
    p.taken_bias = std::clamp(jitter_frac(p.taken_bias, rng, 0.08), 0.0, 1.0);
    p.branch_entropy = std::clamp(jitter_frac(p.branch_entropy, rng, 0.20), 0.0, 1.0);
    p.working_set_bytes = jitter_size(p.working_set_bytes, rng);
    p.stream_bytes = jitter_size(p.stream_bytes, rng);
    p.hot_bytes = jitter_size(p.hot_bytes, rng, 0.20);
  }
  spec.validate();
  return spec;
}

}  // namespace drlhmd::sim
