// In-order timing core.
//
// Executes workload micro-ops against the memory hierarchy and a branch
// predictor, advancing a cycle counter with a simple additive stall model
// (base CPI 1, plus fetch stalls, plus load-to-use stalls beyond L1, plus
// branch-misprediction penalties).  All HPC events accumulate in a single
// EventCounts file, which the PerfMonitor snapshots per sampling window.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/branch_predictor.hpp"
#include "sim/events.hpp"
#include "sim/memory_hierarchy.hpp"
#include "sim/workload.hpp"
#include "util/rng.hpp"

namespace drlhmd::sim {

enum class PredictorKind : std::uint8_t { kBimodal, kGshare };

struct CoreConfig {
  PredictorKind predictor = PredictorKind::kGshare;
  std::uint32_t mispredict_penalty = 15;

  /// Memory-level parallelism: modern cores overlap outstanding misses, so
  /// the visible load-to-use stall is the raw latency divided by this
  /// factor.  1.0 models a fully blocking core.
  double memory_parallelism = 4.0;

  // OS-noise model: occasional page faults on TLB misses and periodic
  // context switches, so counters carry the same low-level noise floor a
  // real perf session sees.
  double page_fault_prob = 5e-4;          // per data-TLB miss
  std::uint32_t page_fault_penalty = 4000;
  std::uint64_t context_switch_period = 2'000'000;  // cycles
  std::uint32_t context_switch_penalty = 1500;

  std::uint64_t code_base = 0x0040'0000ull;
};

/// Single-context core bound to one workload for its lifetime.
class Core {
 public:
  Core(const CoreConfig& config, const HierarchyConfig& hierarchy,
       Workload workload, std::uint64_t seed);

  /// Execute exactly one micro-op.
  void step();

  /// Run until at least `budget` more cycles have elapsed.
  void run_cycles(std::uint64_t budget);

  /// Run exactly `n` micro-ops.
  void run_instructions(std::uint64_t n);

  std::uint64_t cycles() const { return counts_[HpcEvent::kCycles]; }
  std::uint64_t instructions() const { return counts_[HpcEvent::kInstructions]; }
  double ipc() const;

  const EventCounts& counts() const { return counts_; }
  const MemoryHierarchy& hierarchy() const { return hierarchy_; }
  const BranchPredictor& predictor() const { return *predictor_; }
  const Workload& workload() const { return workload_; }

 private:
  void charge_cycles(std::uint64_t n);

  CoreConfig config_;
  MemoryHierarchy hierarchy_;
  std::unique_ptr<BranchPredictor> predictor_;
  Workload workload_;
  util::Rng rng_;
  EventCounts counts_;
  std::uint64_t fetch_offset_ = 0;       // instruction pointer within footprint
  std::uint64_t next_context_switch_ = 0;
};

}  // namespace drlhmd::sim
