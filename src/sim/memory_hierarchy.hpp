// Three-level cache hierarchy + TLBs with a simple latency model.
//
// Geometry defaults approximate the paper's 11th-gen Intel Core i7 testbed
// (per-core L1/L2 plus a shared LLC).  Every access walks L1 -> L2 -> LLC,
// increments the corresponding HPC events, and returns the load-to-use
// latency in cycles for the timing core.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/cache.hpp"
#include "sim/events.hpp"
#include "sim/prefetcher.hpp"
#include "sim/tlb.hpp"

namespace drlhmd::sim {

// The geometry is a capacity-scaled model of the testbed's hierarchy: the
// level ratios (L1:L2:LLC = 1:8:64) match an 11th-gen core, but absolute
// sizes are divided by ~4 so that cache residency reaches steady state
// within the simulated sampling windows (a "10 ms" window here is a few
// hundred thousand cycles rather than tens of millions).
struct HierarchyConfig {
  CacheConfig l1i{.name = "L1I", .size_bytes = 16 * 1024, .line_bytes = 64,
                  .associativity = 8, .policy = ReplacementPolicy::kLru};
  CacheConfig l1d{.name = "L1D", .size_bytes = 16 * 1024, .line_bytes = 64,
                  .associativity = 8, .policy = ReplacementPolicy::kLru};
  CacheConfig l2{.name = "L2", .size_bytes = 128 * 1024, .line_bytes = 64,
                 .associativity = 8, .policy = ReplacementPolicy::kLru};
  CacheConfig llc{.name = "LLC", .size_bytes = 1024 * 1024, .line_bytes = 64,
                  .associativity = 16, .policy = ReplacementPolicy::kLru};
  TlbConfig dtlb{.name = "dTLB", .entries = 64, .associativity = 4, .page_bytes = 4096};
  TlbConfig itlb{.name = "iTLB", .entries = 128, .associativity = 8, .page_bytes = 4096};

  /// L2-side hardware prefetcher.  The nominal platform runs without one
  /// (the detector tuning in DESIGN.md assumes demand-only LLC traffic);
  /// bench_ablation_sim measures the effect of enabling each kind.
  enum class Prefetch : std::uint8_t { kNone, kNextLine, kStride };
  Prefetch prefetch = Prefetch::kNone;
  std::uint32_t prefetch_degree = 4;

  // Load-to-use latencies (cycles).
  std::uint32_t l1_latency = 4;
  std::uint32_t l2_latency = 13;
  std::uint32_t llc_latency = 42;
  std::uint32_t mem_latency = 220;
  std::uint32_t tlb_miss_penalty = 30;  // page-walk cost
};

/// Walks data and instruction accesses through the hierarchy, updating the
/// shared EventCounts file.
class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const HierarchyConfig& config);

  /// Data access; returns total access latency in cycles.
  std::uint32_t access_data(std::uint64_t addr, bool is_store, EventCounts& counts);

  /// Instruction fetch; returns fetch latency in cycles.
  std::uint32_t access_instruction(std::uint64_t pc, EventCounts& counts);

  const Cache& l1i() const { return l1i_; }
  const Cache& l1d() const { return l1d_; }
  const Cache& l2() const { return l2_; }
  const Cache& llc() const { return llc_; }
  const Tlb& dtlb() const { return dtlb_; }
  const Tlb& itlb() const { return itlb_; }
  const HierarchyConfig& config() const { return config_; }

  void flush_all();

  const Prefetcher* prefetcher() const { return prefetcher_.get(); }

 private:
  void issue_prefetches(std::uint64_t addr, EventCounts& counts);

  HierarchyConfig config_;
  Cache l1i_, l1d_, l2_, llc_;
  Tlb dtlb_, itlb_;
  std::unique_ptr<Prefetcher> prefetcher_;
};

}  // namespace drlhmd::sim
