#include "sim/cache.hpp"

#include <bit>
#include <stdexcept>

namespace drlhmd::sim {

std::uint64_t CacheConfig::num_sets() const {
  if (line_bytes == 0 || associativity == 0) return 0;
  return size_bytes / (static_cast<std::uint64_t>(line_bytes) * associativity);
}

void CacheConfig::validate() const {
  if (size_bytes == 0 || line_bytes == 0 || associativity == 0)
    throw std::invalid_argument(name + ": zero-sized cache parameter");
  if (!std::has_single_bit(static_cast<std::uint64_t>(line_bytes)))
    throw std::invalid_argument(name + ": line size must be a power of two");
  if (size_bytes % (static_cast<std::uint64_t>(line_bytes) * associativity) != 0)
    throw std::invalid_argument(name + ": size not divisible by line*ways");
  const std::uint64_t sets = num_sets();
  if (sets == 0 || !std::has_single_bit(sets))
    throw std::invalid_argument(name + ": set count must be a power of two");
}

Cache::Cache(CacheConfig config, util::Rng rng)
    : config_(std::move(config)), rng_(rng) {
  config_.validate();
  sets_ = config_.num_sets();
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(
      static_cast<std::uint64_t>(config_.line_bytes)));
  ways_.assign(sets_ * config_.associativity, Way{});
}

std::uint64_t Cache::set_index(std::uint64_t addr) const {
  return (addr >> line_shift_) & (sets_ - 1);
}

std::uint64_t Cache::tag_of(std::uint64_t addr) const {
  return addr >> line_shift_;  // full line address as tag; set bits redundant but harmless
}

bool Cache::access(std::uint64_t addr) {
  ++stats_.accesses;
  const std::uint64_t tag = tag_of(addr);
  const std::uint64_t base = set_index(addr) * config_.associativity;
  ++tick_;
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    Way& way = ways_[base + w];
    if (way.valid && way.tag == tag) {
      ++stats_.hits;
      if (config_.policy == ReplacementPolicy::kLru) way.order = tick_;
      if (config_.policy == ReplacementPolicy::kSrrip) way.order = 0;  // near re-reference
      return true;
    }
  }
  ++stats_.misses;
  const std::size_t victim = victim_way(base);
  Way& way = ways_[base + victim];
  if (way.valid) ++stats_.evictions;
  way.valid = true;
  way.tag = tag;
  // LRU recency / FIFO insertion time; SRRIP inserts with a long
  // re-reference prediction (RRPV = 2 of 3) so scans age out quickly.
  way.order = config_.policy == ReplacementPolicy::kSrrip ? 2 : tick_;
  return false;
}

bool Cache::contains(std::uint64_t addr) const {
  const std::uint64_t tag = tag_of(addr);
  const std::uint64_t base = set_index(addr) * config_.associativity;
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    const Way& way = ways_[base + w];
    if (way.valid && way.tag == tag) return true;
  }
  return false;
}

bool Cache::invalidate(std::uint64_t addr) {
  const std::uint64_t tag = tag_of(addr);
  const std::uint64_t base = set_index(addr) * config_.associativity;
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    Way& way = ways_[base + w];
    if (way.valid && way.tag == tag) {
      way.valid = false;
      return true;
    }
  }
  return false;
}

void Cache::flush() {
  for (auto& way : ways_) way.valid = false;
}

std::size_t Cache::victim_way(std::uint64_t set_base) {
  // Prefer an invalid way.
  for (std::uint32_t w = 0; w < config_.associativity; ++w)
    if (!ways_[set_base + w].valid) return w;
  switch (config_.policy) {
    case ReplacementPolicy::kRandom:
      return static_cast<std::size_t>(rng_.next_below(config_.associativity));
    case ReplacementPolicy::kSrrip: {
      // Find a way with RRPV == 3, aging every way until one appears.
      for (;;) {
        for (std::uint32_t w = 0; w < config_.associativity; ++w)
          if (ways_[set_base + w].order >= 3) return w;
        for (std::uint32_t w = 0; w < config_.associativity; ++w)
          ++ways_[set_base + w].order;
      }
    }
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo: {
      std::size_t victim = 0;
      std::uint64_t oldest = ways_[set_base].order;
      for (std::uint32_t w = 1; w < config_.associativity; ++w) {
        if (ways_[set_base + w].order < oldest) {
          oldest = ways_[set_base + w].order;
          victim = w;
        }
      }
      return victim;
    }
  }
  return 0;  // unreachable
}

}  // namespace drlhmd::sim
